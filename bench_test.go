// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations of the design choices called out in
// DESIGN.md. Each benchmark runs a complete experiment per iteration, so
// they are best invoked with:
//
//	go test -bench=. -benchmem -benchtime=1x
//
// Custom metrics carry the experimental results (tpmC, puts, ms, ...);
// ns/op is just the harness cost. Absolute values depend on the machine
// and the time-compressed network simulation; the paper-relevant output
// is the *relation* between configurations.
package ginja_test

import (
	"context"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"github.com/ginja-dr/ginja"
	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/costmodel"
	"github.com/ginja-dr/ginja/internal/experiments"
)

// benchCell is the measurement window per configuration cell. Override
// with GINJA_BENCH_CELL (e.g. GINJA_BENCH_CELL=5s for paper-grade runs).
func benchCell() time.Duration {
	if v := os.Getenv("GINJA_BENCH_CELL"); v != "" {
		if d, err := time.ParseDuration(v); err == nil {
			return d
		}
	}
	return 250 * time.Millisecond
}

// --- Cost model (Figures 1 and 4, Table 2, §7.3) -----------------------

// BenchmarkFigure1OneDollarFrontier regenerates the $1/month capacity
// frontier (paper Figure 1) and reports the three named setups.
func BenchmarkFigure1OneDollarFrontier(b *testing.B) {
	prices := cloud.AmazonS3May2017()
	var a50, b120, c240 float64
	for i := 0; i < b.N; i++ {
		points := costmodel.OneDollarFrontier(1.0, 250, prices)
		a50 = points[49].MaxDBSizeGB
		b120 = points[119].MaxDBSizeGB
		c240 = points[239].MaxDBSizeGB
	}
	b.ReportMetric(a50, "GB@50/h")
	b.ReportMetric(b120, "GB@120/h")
	b.ReportMetric(c240, "GB@240/h")
}

// BenchmarkFigure4CostVsWorkload regenerates the cost-vs-workload curves.
func BenchmarkFigure4CostVsWorkload(b *testing.B) {
	prices := cloud.AmazonS3May2017()
	var lo, hi float64
	for i := 0; i < b.N; i++ {
		for _, w := range []float64{10, 100, 1000} {
			for _, batch := range []float64{10, 100, 1000} {
				d := costmodel.PaperEvaluationDeployment()
				d.UpdatesPerMinute = w
				d.Batch = batch
				total := costmodel.Monthly(d, prices).Total()
				if w == 10 && batch == 1000 {
					lo = total
				}
				if w == 1000 && batch == 10 {
					hi = total
				}
			}
		}
	}
	b.ReportMetric(lo, "$low")
	b.ReportMetric(hi, "$high")
}

// BenchmarkTable2RealApplications regenerates the Laboratory/Hospital
// comparison of Table 2.
func BenchmarkTable2RealApplications(b *testing.B) {
	prices := cloud.AmazonS3May2017()
	var rows []costmodel.Table2Row
	for i := 0; i < b.N; i++ {
		rows = costmodel.Table2(prices)
	}
	b.ReportMetric(rows[0].Ginja, "$lab1m")
	b.ReportMetric(rows[1].Ginja, "$lab6m")
	b.ReportMetric(rows[2].Ginja, "$hosp1m")
	b.ReportMetric(rows[2].Savings, "hosp-savings-x")
}

// BenchmarkRecoveryCostModel regenerates §7.3's recovery costs.
func BenchmarkRecoveryCostModel(b *testing.B) {
	prices := cloud.AmazonS3May2017()
	var lab, hosp float64
	for i := 0; i < b.N; i++ {
		lab = costmodel.RecoveryCost(costmodel.Laboratory(1).Deployment(), prices, false)
		hosp = costmodel.RecoveryCost(costmodel.Hospital(1).Deployment(), prices, false)
	}
	b.ReportMetric(lab, "$lab")
	b.ReportMetric(hosp, "$hospital")
}

// --- Semantics (Figure 2) ----------------------------------------------

// BenchmarkFigure2BatchSafetySemantics runs the B=2/S=20 demonstration:
// the reported metric is which update first blocked (21 when correct).
func BenchmarkFigure2BatchSafetySemantics(b *testing.B) {
	var first int
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure2(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		first = res.FirstBlockedUpdate
	}
	b.ReportMetric(float64(first), "first-blocked-update")
}

// --- Throughput (Figures 5 and 6) ---------------------------------------

func benchFigure5(b *testing.B, engine string) {
	cell := benchCell()
	var rows []experiments.Figure5Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Figure5(context.Background(), engine, cell)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.TpmTotal, "tpm:"+metricLabel(r.Cell.Label))
	}
	b.Log("\n" + renderFigure5(engine, rows))
}

// metricLabel makes a configuration label legal as a benchmark unit
// (no whitespace allowed).
func metricLabel(label string) string {
	return strings.NewReplacer(" ", "_", "(", "", ")", "").Replace(label)
}

func renderFigure5(engine string, rows []experiments.Figure5Row) string {
	out := fmt.Sprintf("Figure 5 (%s):\n", engine)
	for _, r := range rows {
		out += fmt.Sprintf("  %-22s TpmC %8.0f  TpmTotal %8.0f\n", r.Cell.Label, r.TpmC, r.TpmTotal)
	}
	return out
}

// BenchmarkFigure5ThroughputPostgreSQL regenerates Figure 5a.
func BenchmarkFigure5ThroughputPostgreSQL(b *testing.B) { benchFigure5(b, "postgresql") }

// BenchmarkFigure5ThroughputMySQL regenerates Figure 5b.
func BenchmarkFigure5ThroughputMySQL(b *testing.B) { benchFigure5(b, "mysql") }

func benchFigure6(b *testing.B, engine string) {
	cell := benchCell()
	var rows []experiments.Figure6Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Figure6(context.Background(), engine, cell)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.TpmTotal, "tpm:"+metricLabel(r.Cell.Label))
	}
}

// BenchmarkFigure6SealerThroughputPostgreSQL regenerates Figure 6a.
func BenchmarkFigure6SealerThroughputPostgreSQL(b *testing.B) { benchFigure6(b, "postgresql") }

// BenchmarkFigure6SealerThroughputMySQL regenerates Figure 6b.
func BenchmarkFigure6SealerThroughputMySQL(b *testing.B) { benchFigure6(b, "mysql") }

// --- Cloud usage and resources (Tables 3 and 4) --------------------------

// BenchmarkTable3CloudUsage regenerates Table 3 (PostgreSQL side).
func BenchmarkTable3CloudUsage(b *testing.B) {
	cell := benchCell()
	var rows []experiments.Table3Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table3(context.Background(), "postgresql", cell)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.NumPUTs), "puts5min:"+metricLabel(r.Config))
		b.ReportMetric(r.ObjectSizeKB, "kB:"+metricLabel(r.Config))
		b.ReportMetric(r.PutLatencyMS, "ms:"+metricLabel(r.Config))
	}
}

// BenchmarkTable4ResourceUsage regenerates Table 4 (PostgreSQL side).
func BenchmarkTable4ResourceUsage(b *testing.B) {
	cell := benchCell()
	var rows []experiments.Table4Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table4(context.Background(), "postgresql", cell)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.CPUPercent, "cpu%:"+metricLabel(r.Config))
		b.ReportMetric(r.MemPercent, "mem%:"+metricLabel(r.Config))
	}
}

// --- Recovery time (Figure 7) -------------------------------------------

// BenchmarkFigure7RecoveryTime regenerates the recovery-time series at
// reduced scale (W ∈ {1, 3}; set GINJA_BENCH_CELL higher and edit the
// scales for paper-grade runs).
func BenchmarkFigure7RecoveryTime(b *testing.B) {
	var rows []experiments.Figure7Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Figure7(context.Background(), []int{1, 3}, benchCell())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.OnPremises.Seconds(), fmt.Sprintf("s-onprem-W%d", r.Warehouses))
		b.ReportMetric(r.InRegionVM.Seconds(), fmt.Sprintf("s-inregion-W%d", r.Warehouses))
	}
}

// --- Ablations (DESIGN.md §5) --------------------------------------------

// ablationRig runs count same-page WAL writes through a full Ginja stack
// and reports the resulting upload counters.
func ablationRig(b *testing.B, params ginja.Params, writes int, samePage bool) ginja.Stats {
	b.Helper()
	store := ginja.NewMemStore()
	g, err := ginja.New(ginja.NewMemFS(), store, ginja.NewPGProcessor(), params)
	if err != nil {
		b.Fatal(err)
	}
	if err := g.Boot(context.Background()); err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	f, err := g.FS().OpenFile("pg_xlog/000000010000000000000000", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	page := make([]byte, 8192)
	for i := 0; i < writes; i++ {
		off := int64(0)
		if !samePage {
			off = int64(i%1024) * 8192
		}
		if _, err := f.WriteAt(page, off); err != nil {
			b.Fatal(err)
		}
	}
	if !g.Flush(time.Minute) {
		b.Fatal("flush")
	}
	return g.Stats()
}

// BenchmarkAblationAggregation quantifies what write aggregation saves:
// the same page-rewrite workload with coalescing on vs off.
func BenchmarkAblationAggregation(b *testing.B) {
	const writes = 2000
	var with, without ginja.Stats
	for i := 0; i < b.N; i++ {
		p := ginja.DefaultParams()
		p.Batch = 100
		p.Safety = 10000
		with = ablationRig(b, p, writes, true)
		p.DisableAggregation = true
		without = ablationRig(b, p, writes, true)
	}
	b.ReportMetric(float64(with.WALObjectsUploaded), "puts-aggregated")
	b.ReportMetric(float64(without.WALObjectsUploaded), "puts-naive")
	b.ReportMetric(float64(without.WALObjectsUploaded)/float64(with.WALObjectsUploaded), "savings-x")
}

// BenchmarkAblationUploaders sweeps the uploader-pool size (the paper
// found 5 best in its environment): time to drain a burst of uploads
// through the WAN latency model.
func BenchmarkAblationUploaders(b *testing.B) {
	for _, uploaders := range []int{1, 5, 16} {
		b.Run(fmt.Sprintf("uploaders=%d", uploaders), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := ginja.DefaultParams()
				p.Batch = 1 // one object per write: pool parallelism dominates
				p.Safety = 10000
				p.Uploaders = uploaders
				store := ginja.NewSimStore(ginja.NewMemStore(), ginja.SimOptions{
					Profile:   ginja.WANProfile(),
					TimeScale: 400,
				})
				g, err := ginja.New(ginja.NewMemFS(), store, ginja.NewPGProcessor(), p)
				if err != nil {
					b.Fatal(err)
				}
				if err := g.Boot(context.Background()); err != nil {
					b.Fatal(err)
				}
				f, err := g.FS().OpenFile("pg_xlog/000000010000000000000000", os.O_RDWR|os.O_CREATE, 0o644)
				if err != nil {
					b.Fatal(err)
				}
				page := make([]byte, 8192)
				start := time.Now()
				for w := 0; w < 200; w++ {
					if _, err := f.WriteAt(page, int64(w)*8192); err != nil {
						b.Fatal(err)
					}
				}
				if !g.Flush(time.Minute) {
					b.Fatal("flush")
				}
				b.ReportMetric(time.Since(start).Seconds()*1000, "ms-drain")
				f.Close()
				g.Close()
			}
		})
	}
}

// BenchmarkAblationObjectSplit sweeps the object-size cap for a large
// contiguous upload (the 20 MB split of §5.2).
func BenchmarkAblationObjectSplit(b *testing.B) {
	for _, maxMB := range []int64{1, 20, 1024} {
		b.Run(fmt.Sprintf("cap=%dMB", maxMB), func(b *testing.B) {
			var stats ginja.Stats
			for i := 0; i < b.N; i++ {
				p := ginja.DefaultParams()
				p.Batch = 1024
				p.Safety = 100000
				p.BatchTimeout = 50 * time.Millisecond
				p.MaxObjectSize = maxMB << 20
				stats = ablationRig(b, p, 1024, false) // 1024 distinct pages = 8 MiB run
			}
			b.ReportMetric(float64(stats.WALObjectsUploaded), "objects")
			b.ReportMetric(float64(stats.WALBytesUploaded)/(1<<20), "MiB")
		})
	}
}

// BenchmarkAblationDumpThreshold sweeps the dump trigger (150 % in the
// paper): lower thresholds dump more often (more upload bytes, less cloud
// storage held); higher thresholds accumulate incremental checkpoints.
func BenchmarkAblationDumpThreshold(b *testing.B) {
	for _, threshold := range []float64{1.2, 1.5, 3.0} {
		b.Run(fmt.Sprintf("threshold=%.1f", threshold), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := ginja.DefaultParams()
				p.Batch = 8
				p.Safety = 1024
				p.BatchTimeout = 20 * time.Millisecond
				p.DumpThreshold = threshold
				store := ginja.NewMemStore()
				metered := ginja.NewMeteredStore(store, ginja.AmazonS3Prices())
				g, err := ginja.New(ginja.NewMemFS(), metered, ginja.NewPGProcessor(), p)
				if err != nil {
					b.Fatal(err)
				}
				if err := g.Boot(context.Background()); err != nil {
					b.Fatal(err)
				}
				db, err := ginja.OpenDB(g.FS(), ginja.NewPostgresEngine(), ginja.DBOptions{})
				if err != nil {
					b.Fatal(err)
				}
				if err := db.CreateTable("kv", 8); err != nil {
					b.Fatal(err)
				}
				for round := 0; round < 6; round++ {
					for k := 0; k < 16; k++ {
						if err := db.Update(func(tx *ginja.Txn) error {
							return tx.Put("kv", []byte(fmt.Sprintf("k%02d", k)),
								[]byte(fmt.Sprintf("round-%d-%s", round, string(make([]byte, 256)))))
						}); err != nil {
							b.Fatal(err)
						}
					}
					if !g.Flush(time.Minute) {
						b.Fatal("flush")
					}
					if err := db.Checkpoint(); err != nil {
						b.Fatal(err)
					}
					waitCkpt(b, g, int64(round+1))
				}
				counts := metered.Counts()
				s := g.Stats()
				b.ReportMetric(float64(counts.StoredBytes)/1024, "kB-held")
				b.ReportMetric(float64(s.DBBytesUploaded)/1024, "kB-uploaded")
				b.ReportMetric(float64(s.Dumps), "dumps")
				db.Close()
				g.Close()
			}
		})
	}
}

func waitCkpt(b *testing.B, g *ginja.Ginja, want int64) {
	b.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		s := g.Stats()
		if s.Checkpoints+s.Dumps >= want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	b.Fatalf("checkpoint %d never uploaded", want)
}
