package main

import (
	"path/filepath"
	"testing"
)

// TestCLILifecycle drives the real subcommands end to end on temp
// directories: boot → run → status → verify → recover → pitr list.
func TestCLILifecycle(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "db")
	bucket := filepath.Join(dir, "bucket")
	common := []string{"-data", data, "-cloud", bucket, "-batch", "8", "-safety", "128"}

	if err := run(append([]string{"boot"}, common...)); err != nil {
		t.Fatalf("boot: %v", err)
	}
	if err := run(append([]string{"run"}, append(common, "-duration", "500ms")...)); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run([]string{"status", "-cloud", bucket}); err != nil {
		t.Fatalf("status: %v", err)
	}
	if err := run([]string{"verify", "-cloud", bucket}); err != nil {
		t.Fatalf("verify: %v", err)
	}
	restored := filepath.Join(dir, "restored")
	if err := run([]string{"recover", "-data", restored, "-cloud", bucket}); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if err := run([]string{"pitr", "-cloud", bucket, "list"}); err != nil {
		t.Fatalf("pitr list: %v", err)
	}
}

func TestCLIRejectsBadInput(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing subcommand accepted")
	}
	if err := run([]string{"frobnicate"}); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	if err := run([]string{"boot", "-engine", "oracle", "-data", t.TempDir(), "-cloud", t.TempDir()}); err == nil {
		t.Fatal("unknown engine accepted")
	}
	if err := run([]string{"pitr", "-cloud", t.TempDir()}); err == nil {
		t.Fatal("pitr without action accepted")
	}
	if err := run([]string{"pitr", "-cloud", t.TempDir(), "restore"}); err == nil {
		t.Fatal("pitr restore without generation accepted")
	}
}

func TestCLIRecoverEmptyCloudFails(t *testing.T) {
	if err := run([]string{"recover", "-data", t.TempDir(), "-cloud", t.TempDir()}); err == nil {
		t.Fatal("recover from an empty bucket succeeded")
	}
}
