// Command ginja operates a Ginja-protected embedded database from the
// command line: boot the initial cloud copy, run a demo workload under
// protection, recover after a disaster, verify the backup, and inspect
// the cloud state.
//
// The cloud can be a local directory (an object store on another disk),
// or an HTTP endpoint served by cmd/cloudsim (an S3-style server).
//
// Usage:
//
//	ginja boot    -data ./db -cloud ./bucket [-engine postgresql]
//	ginja run     -data ./db -cloud ./bucket -duration 30s [-batch 100 -safety 1000]
//	ginja run     -data ./db -cloud ./bucket -metrics-addr :9090   # + /metrics /healthz /statusz /tracez
//	ginja recover -data ./db-restored -cloud ./bucket
//	ginja follow  -data ./db-replica -cloud ./bucket [-promote]
//	ginja verify  -cloud ./bucket
//	ginja status  -cloud ./bucket
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/cloud/s3http"
	"github.com/ginja-dr/ginja/internal/core"
	"github.com/ginja-dr/ginja/internal/dbevent"
	"github.com/ginja-dr/ginja/internal/minidb"
	"github.com/ginja-dr/ginja/internal/minidb/innoengine"
	"github.com/ginja-dr/ginja/internal/minidb/pgengine"
	"github.com/ginja-dr/ginja/internal/obs"
	"github.com/ginja-dr/ginja/internal/vfs"
	"github.com/ginja-dr/ginja/internal/workload/tpcc"
)

type options struct {
	dataDir     string
	cloudSpec   string
	cloudToken  string
	engine      string
	batch       int
	safety      int
	uploaders   int
	compress    bool
	encrypt     bool
	password    string
	duration    time.Duration
	verbose     bool
	metricsAddr string
	retainFor   time.Duration
	retainMax   int
	followEvery time.Duration
	promote     bool
	adaptive    bool
	costCeiling float64
	deltas      bool
	deltaChain  int
	deltaRatio  float64
	prefix      string

	// registry is non-nil when -metrics-addr is set; store() and params()
	// route telemetry through it.
	registry *obs.Registry
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ginja:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	sub, rest := args[0], args[1:]
	fs := flag.NewFlagSet(sub, flag.ContinueOnError)
	var o options
	fs.StringVar(&o.dataDir, "data", "./ginja-data", "local database directory")
	fs.StringVar(&o.cloudSpec, "cloud", "./ginja-bucket", "object store: a directory or an http:// endpoint")
	fs.StringVar(&o.cloudToken, "cloud-token", "", "bearer token for an http:// object store")
	fs.StringVar(&o.engine, "engine", "postgresql", "DBMS personality: postgresql or mysql")
	fs.IntVar(&o.batch, "batch", core.DefaultBatch, "B: updates per cloud synchronization")
	fs.IntVar(&o.safety, "safety", core.DefaultSafety, "S: maximum updates lost in a disaster")
	fs.IntVar(&o.uploaders, "uploaders", core.DefaultUploaders, "parallel upload threads")
	fs.BoolVar(&o.compress, "compress", false, "compress objects before upload")
	fs.BoolVar(&o.encrypt, "encrypt", false, "encrypt objects (requires -password)")
	fs.StringVar(&o.password, "password", "", "password for encryption / MAC keys")
	fs.DurationVar(&o.duration, "duration", 30*time.Second, "how long to run the demo workload")
	fs.BoolVar(&o.verbose, "v", false, "log replication events to stderr")
	fs.StringVar(&o.metricsAddr, "metrics-addr", "",
		"serve /metrics (Prometheus), /healthz, /statusz and /tracez on this address (e.g. :9090)")
	fs.DurationVar(&o.retainFor, "retain", 0,
		"keep superseded cloud objects this long so `pitr restore` can hit any point in the window (0 = GC immediately)")
	fs.IntVar(&o.retainMax, "retain-objects", 0,
		"cap on retained superseded objects (0 = default cap; only meaningful with -retain)")
	fs.DurationVar(&o.followEvery, "follow-interval", 0,
		"follow only: poll cadence for tailing the bucket (0 = default)")
	fs.BoolVar(&o.promote, "promote", false,
		"follow only: on interrupt, promote the warm replica to a live site instead of just stopping")
	fs.BoolVar(&o.adaptive, "adaptive", false,
		"retune B and the batch timeout online from measured PUT latency and commit rate (-batch becomes the initial value, -safety the hard cap)")
	fs.Float64Var(&o.costCeiling, "cost-ceiling", 0,
		"adaptive only: $/day the retuned knobs may spend on WAL PUTs at S3 prices (0 = the one-dollar-per-month default)")
	fs.BoolVar(&o.deltas, "deltas", false,
		"serve dump-threshold crossings with incremental delta checkpoints (dirty pages only) instead of full re-dumps")
	fs.IntVar(&o.deltaChain, "max-delta-chain", 0,
		"deltas only: fold the chain into a fresh full dump after this many deltas (0 = default)")
	fs.Float64Var(&o.deltaRatio, "delta-compact-ratio", 0,
		"deltas only: fold early once the chain's summed payload exceeds this fraction of the database (0 = default)")
	fs.StringVar(&o.prefix, "prefix", "",
		"root every cloud object under this key prefix so many databases share one bucket (e.g. tenants/db7)")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if o.metricsAddr != "" {
		o.registry = obs.NewRegistry()
		obs.RegisterRuntimeMetrics(o.registry)
	}

	ctx := context.Background()
	switch sub {
	case "boot":
		return cmdBoot(ctx, o)
	case "run":
		return cmdRun(ctx, o)
	case "recover":
		return cmdRecover(ctx, o)
	case "verify":
		return cmdVerify(ctx, o)
	case "status":
		return cmdStatus(ctx, o)
	case "pitr":
		return cmdPITR(ctx, o, fs.Args())
	case "follow":
		return cmdFollow(ctx, o)
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", sub)
	}
}

func (o options) store() (cloud.ObjectStore, error) {
	var store cloud.ObjectStore
	var err error
	if strings.HasPrefix(o.cloudSpec, "http://") || strings.HasPrefix(o.cloudSpec, "https://") {
		if o.cloudToken != "" {
			store = s3http.NewClientWithToken(o.cloudSpec, o.cloudToken, nil)
		} else {
			store = s3http.NewClient(o.cloudSpec, nil)
		}
	} else {
		store, err = cloud.NewDiskStore(o.cloudSpec)
		if err != nil {
			return nil, err
		}
	}
	if o.registry != nil {
		store = obs.InstrumentStore(store, o.registry, "cloud")
	}
	return store, nil
}

func (o options) params() core.Params {
	p := core.DefaultParams()
	p.Batch = o.batch
	p.Safety = o.safety
	p.Uploaders = o.uploaders
	p.Compress = o.compress
	p.Encrypt = o.encrypt
	p.Password = o.password
	if o.verbose {
		p.Logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelDebug}))
	}
	p.Metrics = o.registry
	p.RetainFor = o.retainFor
	if o.retainMax > 0 {
		p.RetainObjects = o.retainMax
	}
	if o.followEvery > 0 {
		p.FollowInterval = o.followEvery
	}
	p.AdaptiveBatching = o.adaptive
	p.CostCeilingPerDay = o.costCeiling
	p.DeltaCheckpoints = o.deltas
	if o.deltaChain > 0 {
		p.MaxDeltaChain = o.deltaChain
	}
	if o.deltaRatio > 0 {
		p.DeltaCompactRatio = o.deltaRatio
	}
	p.Prefix = o.prefix
	return p
}

// serveMetrics exposes the observability endpoints for the lifetime of
// the surrounding subcommand. It returns a shutdown func (a no-op when
// -metrics-addr is unset) and fails fast when the address is unusable.
func serveMetrics(o options, status func() any) (func(), error) {
	if o.registry == nil {
		return func() {}, nil
	}
	ln, err := net.Listen("tcp", o.metricsAddr)
	if err != nil {
		return nil, fmt.Errorf("metrics listener: %w", err)
	}
	srv := &http.Server{Handler: obs.Handler(o.registry, status)}
	go srv.Serve(ln) //nolint:errcheck // closed via srv.Close
	fmt.Printf("observability: http://%s/metrics /healthz /statusz /tracez\n", ln.Addr())
	return func() { srv.Close() }, nil
}

func (o options) engineAndProc() (minidb.Engine, dbevent.Processor, error) {
	proc := dbevent.ForEngine(o.engine)
	if proc == nil {
		return nil, nil, fmt.Errorf("unknown engine %q", o.engine)
	}
	switch o.engine {
	case "postgresql":
		return pgengine.New(), proc, nil
	default:
		return innoengine.New(), proc, nil
	}
}

// newGinja builds the middleware plus the store it replicates to. The
// store must be constructed exactly once per process: InstrumentStore
// binds the "store:cloud" health check to the instance it wraps, so a
// second wrap would point /healthz at a store the pipeline never uses.
func (o options) newGinja() (*core.Ginja, vfs.FS, cloud.ObjectStore, error) {
	localFS, err := vfs.NewOSFS(o.dataDir)
	if err != nil {
		return nil, nil, nil, err
	}
	store, err := o.store()
	if err != nil {
		return nil, nil, nil, err
	}
	_, proc, err := o.engineAndProc()
	if err != nil {
		return nil, nil, nil, err
	}
	g, err := core.New(localFS, store, proc, o.params())
	return g, localFS, store, err
}

func cmdBoot(ctx context.Context, o options) error {
	g, _, _, err := o.newGinja()
	if err != nil {
		return err
	}
	if err := g.Boot(ctx); err != nil {
		return err
	}
	defer g.Close()
	view := g.View()
	fmt.Printf("booted: %d WAL objects and %d DB objects uploaded to %s\n",
		len(view.WALObjects()), len(view.DBObjects()), o.cloudSpec)
	return nil
}

func cmdRun(ctx context.Context, o options) error {
	g, _, store, err := o.newGinja()
	if err != nil {
		return err
	}
	stopMetrics, err := serveMetrics(o, func() any { return g.Stats() })
	if err != nil {
		return err
	}
	defer stopMetrics()
	// Boot if the cloud is empty, otherwise reboot. With -prefix set only
	// this database's subtree counts — another tenant's objects in a
	// shared bucket must not turn a first boot into a reboot.
	infos, err := cloud.NewPrefixStore(store, o.prefix).List(ctx, "")
	if err != nil {
		return err
	}
	if len(infos) == 0 {
		fmt.Println("empty cloud: booting")
		if err := g.Boot(ctx); err != nil {
			return err
		}
	} else {
		fmt.Println("existing cloud state: rebooting")
		if err := g.Reboot(ctx); err != nil {
			return err
		}
	}
	defer g.Close()

	engine, _, err := o.engineAndProc()
	if err != nil {
		return err
	}
	db, err := minidb.Open(g.FS(), engine, minidb.Options{})
	if err != nil {
		return err
	}
	cfg := tpcc.DefaultConfig()
	fmt.Printf("loading TPC-C (%d warehouse) ...\n", cfg.Warehouses)
	if err := tpcc.Load(db, cfg); err != nil {
		return err
	}
	fmt.Printf("running TPC-C for %s with B=%d S=%d ...\n", o.duration, o.batch, o.safety)
	res, err := tpcc.NewDriver(db, cfg).Run(ctx, o.duration)
	if err != nil {
		return err
	}
	if err := db.Close(); err != nil {
		return err
	}
	if !g.Flush(time.Minute) {
		return fmt.Errorf("pending uploads did not drain")
	}
	s := g.Stats()
	fmt.Printf("Tpm-C %.0f, Tpm-Total %.0f\n", res.TpmC, res.TpmTotal)
	fmt.Printf("replication: %d updates → %d batches → %d WAL objects (%d KB), %d checkpoints, %d dumps\n",
		s.UpdatesObserved, s.Batches, s.WALObjectsUploaded, s.WALBytesUploaded/1024,
		s.Checkpoints, s.Dumps)
	fmt.Printf("commit-path blocked time: %s\n", s.BlockedTime.Round(time.Millisecond))
	return nil
}

func cmdRecover(ctx context.Context, o options) error {
	g, _, _, err := o.newGinja()
	if err != nil {
		return err
	}
	stopMetrics, err := serveMetrics(o, func() any { return g.Stats() })
	if err != nil {
		return err
	}
	defer stopMetrics()
	start := time.Now()
	if err := g.Recover(ctx); err != nil {
		return err
	}
	defer g.Close()
	engine, _, err := o.engineAndProc()
	if err != nil {
		return err
	}
	// Restart the database so its own crash recovery validates the files.
	db, err := minidb.Open(g.FS(), engine, minidb.Options{})
	if err != nil {
		return fmt.Errorf("recovered files failed DBMS restart: %w", err)
	}
	tables := db.Tables()
	if err := db.Close(); err != nil {
		return err
	}
	fmt.Printf("recovered %d tables into %s in %s\n", len(tables), o.dataDir, time.Since(start).Round(time.Millisecond))
	return nil
}

func cmdVerify(ctx context.Context, o options) error {
	store, err := o.store()
	if err != nil {
		return err
	}
	_, proc, err := o.engineAndProc()
	if err != nil {
		return err
	}
	g, err := core.New(vfs.NewMemFS(), store, proc, o.params())
	if err != nil {
		return err
	}
	engine, _, err := o.engineAndProc()
	if err != nil {
		return err
	}
	res, err := g.Verify(ctx, vfs.NewMemFS(),
		func(fsys vfs.FS) error {
			db, err := minidb.Open(fsys, engine, minidb.Options{})
			if err != nil {
				return err
			}
			return db.Close()
		},
		func(fsys vfs.FS) error {
			db, err := minidb.Open(fsys, engine, minidb.Options{})
			if err != nil {
				return err
			}
			defer db.Close()
			fmt.Printf("probe: %d tables restored\n", len(db.Tables()))
			return nil
		})
	if err != nil {
		return fmt.Errorf("backup verification FAILED: %w", err)
	}
	fmt.Printf("backup verified: %d objects checked (%d KB downloaded), DBMS restart ok=%v, probe ok=%v, took %s\n",
		res.ObjectsChecked, res.BytesDownloaded/1024, res.RestartOK, res.ProbeOK, res.Duration.Round(time.Millisecond))
	return nil
}

func cmdStatus(ctx context.Context, o options) error {
	store, err := o.store()
	if err != nil {
		return err
	}
	// With -prefix set, report on that tenant's subtree only, with the
	// prefix stripped so the WAL/DB classification below still applies.
	metered := cloud.NewMeteredStore(cloud.NewPrefixStore(store, o.prefix), cloud.AmazonS3May2017())
	infos, err := metered.List(ctx, "")
	if err != nil {
		return err
	}
	var walCount, dbCount int
	var total int64
	for _, info := range infos {
		total += info.Size
		if strings.HasPrefix(info.Name, "WAL/") {
			walCount++
		} else {
			dbCount++
		}
	}
	fmt.Printf("cloud %s: %d WAL objects, %d DB objects, %.2f MB total\n",
		o.cloudSpec, walCount, dbCount, float64(total)/(1<<20))
	prices := cloud.AmazonS3May2017()
	fmt.Printf("storage cost at S3 prices: $%.4f/month\n", prices.StorageCost(total))
	return nil
}

// cmdPITR lists or restores point-in-time recovery points. Dump
// generations are retained when the protected instance runs with
// PITRGenerations > 0; with -retain set, superseded WAL and checkpoint
// objects are kept too, so restore hits ANY commit timestamp inside the
// retention window (RecoverAt's exact consistent prefix), not just dump
// boundaries.
func cmdPITR(ctx context.Context, o options, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: ginja pitr [flags] list | restore <timestamp>")
	}
	store, err := o.store()
	if err != nil {
		return err
	}
	_, proc, err := o.engineAndProc()
	if err != nil {
		return err
	}
	g, err := core.New(vfs.NewMemFS(), store, proc, o.params())
	if err != nil {
		return err
	}
	switch args[0] {
	case "list":
		// g's store was prefixed inside core.New; this direct listing
		// must strip the same prefix for LoadFromList to parse names.
		infos, err := cloud.NewPrefixStore(store, o.prefix).List(ctx, "")
		if err != nil {
			return err
		}
		if err := g.View().LoadFromList(infos); err != nil {
			return err
		}
		fmt.Println("retained recovery points (dump generations, oldest first):")
		for _, d := range g.View().DBObjects() {
			if d.Type != core.Dump {
				continue
			}
			fmt.Printf("  generation ts=%d (%.1f KB)\n", d.Ts, float64(d.Size)/1024)
		}
		fmt.Println("restore accepts any commit timestamp >= the oldest generation (exact prefix within the retention window)")
		return nil
	case "restore":
		if len(args) < 2 {
			return fmt.Errorf("usage: ginja pitr [flags] restore <timestamp>")
		}
		var ts int64
		if _, err := fmt.Sscanf(args[1], "%d", &ts); err != nil {
			return fmt.Errorf("bad timestamp %q: %w", args[1], err)
		}
		target, err := vfs.NewOSFS(o.dataDir)
		if err != nil {
			return err
		}
		start := time.Now()
		if err := g.RecoverAt(ctx, target, ts); err != nil {
			return err
		}
		fmt.Printf("restored to ts=%d into %s in %s\n",
			ts, o.dataDir, time.Since(start).Round(time.Millisecond))
		return nil
	default:
		return fmt.Errorf("unknown pitr action %q (want list or restore)", args[0])
	}
}

// cmdFollow runs a warm standby: it tails the bucket into -data until
// interrupted, printing the replication lag; with -promote the interrupt
// is treated as the disaster and the replica is promoted to a live site
// (the database engine then validates the files via its own restart).
func cmdFollow(ctx context.Context, o options) error {
	localFS, err := vfs.NewOSFS(o.dataDir)
	if err != nil {
		return err
	}
	store, err := o.store()
	if err != nil {
		return err
	}
	engine, proc, err := o.engineAndProc()
	if err != nil {
		return err
	}
	fol, err := core.NewFollower(localFS, store, proc, o.params())
	if err != nil {
		return err
	}
	stopMetrics, err := serveMetrics(o, func() any { return fol.Stats() })
	if err != nil {
		return err
	}
	defer stopMetrics()
	if err := fol.Start(ctx); err != nil {
		return err
	}
	fmt.Printf("following %s into %s (interrupt to %s)\n",
		o.cloudSpec, o.dataDir, map[bool]string{true: "promote", false: "stop"}[o.promote])

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)
	tick := time.NewTicker(5 * time.Second)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			s := fol.Stats()
			fmt.Printf("lag %s, applied ts %d (%d WAL / %d DB objects, %d polls)\n",
				s.Lag.Round(time.Millisecond), s.AppliedTs, s.AppliedWALObjects, s.AppliedDBObjects, s.Polls)
		case <-sigs:
			if !o.promote {
				return fol.Close()
			}
			start := time.Now()
			g, err := fol.Promote(ctx)
			if err != nil {
				return err
			}
			defer g.Close()
			db, err := minidb.Open(g.FS(), engine, minidb.Options{})
			if err != nil {
				return fmt.Errorf("promoted files failed DBMS restart: %w", err)
			}
			tables := db.Tables()
			if err := db.Close(); err != nil {
				return err
			}
			fmt.Printf("promoted: %d tables live in %s after %s\n",
				len(tables), o.dataDir, time.Since(start).Round(time.Millisecond))
			return nil
		}
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: ginja <subcommand> [flags]

subcommands:
  boot      upload the initial copy of a database and enable protection
  run       boot/reboot, then run a TPC-C demo workload under protection
  recover   rebuild the database from the cloud after a disaster
  verify    check the backup (MACs, DBMS restart, probe queries)
  status    summarise the cloud objects and their storage cost
  pitr      list / restore retained point-in-time recovery points
  follow    run a warm standby tailing the bucket (-promote for handoff)

common flags: -data DIR -cloud DIR|URL -engine postgresql|mysql
              -batch B -safety S -compress -encrypt -password PW
              -adaptive -cost-ceiling $/DAY   retune B/TB online under a spend ceiling
              -deltas -max-delta-chain N -delta-compact-ratio F   incremental delta checkpoints
              -retain 24h -retain-objects N   point-in-time retention window
              -metrics-addr :9090   serve /metrics /healthz /statusz /tracez`)
}
