// Command ginja-bench regenerates the paper's experimental tables and
// figures (§8) by running the full Ginja stack — minidb with a PostgreSQL
// or MySQL I/O personality, the interception layer, the commit pipeline —
// under a TPC-C workload against the simulated storage cloud.
//
// Usage:
//
//	ginja-bench figure2
//	ginja-bench figure5  [-engine postgresql|mysql|both] [-duration 3s]
//	ginja-bench figure6  [-engine ...] [-duration 3s]
//	ginja-bench table1
//	ginja-bench table3   [-engine ...] [-duration 3s]
//	ginja-bench table4   [-engine ...] [-duration 3s]
//	ginja-bench figure7  [-warehouses 1,5,10] [-workload 2s]
//	ginja-bench all      [-duration 2s]
//
// Absolute numbers depend on the machine and the time-compressed network
// model; the shapes (who wins, by what factor) reproduce the paper's.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/ginja-dr/ginja/internal/dbevent"
	"github.com/ginja-dr/ginja/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ginja-bench:", err)
		os.Exit(1)
	}
}

func enginesOf(flagValue string) ([]string, error) {
	switch flagValue {
	case "both":
		return []string{"postgresql", "mysql"}, nil
	case "postgresql", "mysql":
		return []string{flagValue}, nil
	default:
		return nil, fmt.Errorf("unknown engine %q (want postgresql, mysql or both)", flagValue)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	ctx := context.Background()
	sub, rest := args[0], args[1:]

	fs := flag.NewFlagSet(sub, flag.ContinueOnError)
	engine := fs.String("engine", "both", "postgresql, mysql or both")
	duration := fs.Duration("duration", 3*time.Second, "measurement window per configuration cell")
	warehousesFlag := fs.String("warehouses", "1,5,10", "comma-separated warehouse scales (figure7)")
	workload := fs.Duration("workload", 2*time.Second, "pre-disaster workload duration (figure7)")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	engines, err := enginesOf(*engine)
	if err != nil {
		return err
	}

	switch sub {
	case "figure2":
		res, err := experiments.Figure2(ctx)
		if err != nil {
			return err
		}
		experiments.FprintFigure2(os.Stdout, res)
	case "table1":
		printTable1(os.Stdout)
	case "figure5":
		for _, e := range engines {
			rows, err := experiments.Figure5(ctx, e, *duration)
			if err != nil {
				return err
			}
			experiments.FprintFigure5(os.Stdout, e, rows)
			fmt.Println()
		}
	case "figure6":
		for _, e := range engines {
			rows, err := experiments.Figure6(ctx, e, *duration)
			if err != nil {
				return err
			}
			experiments.FprintFigure6(os.Stdout, e, rows)
			fmt.Println()
		}
	case "table3":
		for _, e := range engines {
			rows, err := experiments.Table3(ctx, e, *duration)
			if err != nil {
				return err
			}
			experiments.FprintTable3(os.Stdout, e, rows, *duration)
			fmt.Println()
		}
	case "table4":
		for _, e := range engines {
			rows, err := experiments.Table4(ctx, e, *duration)
			if err != nil {
				return err
			}
			experiments.FprintTable4(os.Stdout, e, rows)
			fmt.Println()
		}
	case "ablations":
		return experiments.FprintAblations(ctx, os.Stdout)
	case "figure7":
		warehouses, err := parseInts(*warehousesFlag)
		if err != nil {
			return err
		}
		rows, err := experiments.Figure7(ctx, warehouses, *workload)
		if err != nil {
			return err
		}
		experiments.FprintFigure7(os.Stdout, rows)
	case "all":
		return runAll(ctx, engines, *duration, *workload)
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", sub)
	}
	return nil
}

func runAll(ctx context.Context, engines []string, duration, workload time.Duration) error {
	experiments.FprintFigure1(os.Stdout, 1.0)
	fmt.Println()
	res, err := experiments.Figure2(ctx)
	if err != nil {
		return err
	}
	experiments.FprintFigure2(os.Stdout, res)
	fmt.Println()
	printTable1(os.Stdout)
	fmt.Println()
	experiments.FprintFigure4(os.Stdout)
	fmt.Println()
	experiments.FprintTable2(os.Stdout)
	fmt.Println()
	experiments.FprintRecoveryCosts(os.Stdout)
	fmt.Println()
	for _, e := range engines {
		f5, err := experiments.Figure5(ctx, e, duration)
		if err != nil {
			return err
		}
		experiments.FprintFigure5(os.Stdout, e, f5)
		fmt.Println()
		f6, err := experiments.Figure6(ctx, e, duration)
		if err != nil {
			return err
		}
		experiments.FprintFigure6(os.Stdout, e, f6)
		fmt.Println()
		t3, err := experiments.Table3(ctx, e, duration)
		if err != nil {
			return err
		}
		experiments.FprintTable3(os.Stdout, e, t3, duration)
		fmt.Println()
		t4, err := experiments.Table4(ctx, e, duration)
		if err != nil {
			return err
		}
		experiments.FprintTable4(os.Stdout, e, t4)
		fmt.Println()
	}
	f7, err := experiments.Figure7(ctx, []int{1, 5, 10}, workload)
	if err != nil {
		return err
	}
	experiments.FprintFigure7(os.Stdout, f7)
	fmt.Println()
	return experiments.FprintAblations(ctx, os.Stdout)
}

// printTable1 demonstrates the event detection of paper Table 1 on
// representative writes for both processors.
func printTable1(w *os.File) {
	fmt.Fprintln(w, "Table 1 — how Ginja detects the three DBMS events")
	type probe struct {
		path string
		off  int64
	}
	cases := []struct {
		engine string
		proc   dbevent.Processor
		probes []probe
	}{
		{"postgresql", dbevent.NewPGProcessor(), []probe{
			{"pg_xlog/000000010000000000000001", 0},
			{"pg_clog/0000", 0},
			{"base/16384/accounts", 8192},
			{"global/pg_control", 0},
		}},
		{"mysql", dbevent.NewInnoProcessor(), []probe{
			{"ib_logfile0", 2048},
			{"accounts.ibd", 0},
			{"ibdata1", 16384},
			{"ib_logfile0", 512},
		}},
	}
	for _, c := range cases {
		fmt.Fprintf(w, "%s:\n", c.engine)
		for _, p := range c.probes {
			ev := c.proc.Classify(p.path, p.off, nil)
			fmt.Fprintf(w, "  write(%s, offset=%d) → %s\n", p.path, p.off, ev.Type)
		}
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad warehouse list %q: %w", s, err)
		}
		out = append(out, n)
	}
	return out, nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: ginja-bench <subcommand> [flags]

subcommands (each regenerates one paper table/figure):
  figure2   Batch/Safety blocking semantics (B=2, S=20)
  table1    event detection per DBMS
  figure5   TPC-C throughput across the B×S grid (+ ext4/FUSE baselines)
  figure6   compression & encryption effect on throughput
  table3    cloud usage: PUTs, object size, PUT latency
  table4    database server CPU/memory usage
  figure7   recovery time by database size, on-premises vs in-region VM
  ablations aggregation / uploader-pool / dump-threshold ablations
  all       everything above plus the cost figures`)
}
