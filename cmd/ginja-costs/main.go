// Command ginja-costs explores Ginja's monetary cost model (paper §3 and
// §7): the $1/month capacity frontier (Figure 1), the cost-vs-workload
// curves (Figure 4), the real-application comparison (Table 2), the §7.3
// recovery costs, and arbitrary custom deployments.
//
// Usage:
//
//	ginja-costs figure1 [-budget 1.0]
//	ginja-costs figure4
//	ginja-costs table2
//	ginja-costs recovery
//	ginja-costs custom -size 10 -updates 100 -batch 100 [-cr 1.43]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/costmodel"
	"github.com/ginja-dr/ginja/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ginja-costs:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "figure1":
		fs := flag.NewFlagSet("figure1", flag.ContinueOnError)
		budget := fs.Float64("budget", 1.0, "monthly budget in dollars")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		experiments.FprintFigure1(os.Stdout, *budget)
	case "figure4":
		experiments.FprintFigure4(os.Stdout)
	case "table2":
		experiments.FprintTable2(os.Stdout)
	case "recovery":
		experiments.FprintRecoveryCosts(os.Stdout)
	case "custom":
		fs := flag.NewFlagSet("custom", flag.ContinueOnError)
		size := fs.Float64("size", 10, "database size in GB")
		updates := fs.Float64("updates", 100, "updates per minute (W)")
		batch := fs.Float64("batch", 100, "updates per synchronization (B)")
		cr := fs.Float64("cr", 1.43, "compression ratio (1 = none)")
		ckptPeriod := fs.Float64("ckpt-period", 60, "checkpoint period (minutes)")
		ckptSize := fs.Float64("ckpt-size", 100, "checkpoint size (MB)")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		d := costmodel.PaperEvaluationDeployment()
		d.DBSizeGB = *size
		d.UpdatesPerMinute = *updates
		d.Batch = *batch
		d.CompressionRatio = *cr
		d.CheckpointPeriodMin = *ckptPeriod
		d.CheckpointSizeMB = *ckptSize
		prices := cloud.AmazonS3May2017()
		c := costmodel.Monthly(d, prices)
		fmt.Println(c)
		fmt.Printf("recovery to on-premises: $%.3f (free to an in-region VM)\n",
			costmodel.RecoveryCost(d, prices, false))
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: ginja-costs <subcommand> [flags]

subcommands:
  figure1    the $1/month capacity frontier (paper Figure 1)
  figure4    monthly cost vs workload for B ∈ {10,100,1000} (Figure 4)
  table2     Laboratory/Hospital vs EC2 VM comparison (Table 2)
  recovery   cost of recovering from a disaster (§7.3)
  custom     price an arbitrary deployment (see -h)`)
}
