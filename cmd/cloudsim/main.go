// Command cloudsim serves an S3-style object store over HTTP, backed by a
// local directory, optionally behind the WAN latency model — a stand-in
// for Amazon S3 that cmd/ginja can point at with -cloud http://...
//
// Usage:
//
//	cloudsim -addr :9000 -dir ./bucket [-wan] [-timescale 10] [-failure 0.01]
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"github.com/ginja-dr/ginja/internal/cloud"
	cs "github.com/ginja-dr/ginja/internal/cloud/cloudsim"
	"github.com/ginja-dr/ginja/internal/cloud/s3http"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cloudsim:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":9000", "listen address")
	dir := flag.String("dir", "./cloudsim-bucket", "backing directory")
	wan := flag.Bool("wan", false, "simulate WAN latency (the paper's Lisbon → S3 profile)")
	timescale := flag.Float64("timescale", 1, "divide simulated latency by this factor")
	failure := flag.Float64("failure", 0, "transient failure probability (0..1)")
	token := flag.String("token", "", "require this bearer token on every request")
	flag.Parse()

	disk, err := cloud.NewDiskStore(*dir)
	if err != nil {
		return err
	}
	var store cloud.ObjectStore = disk
	if *wan || *failure > 0 {
		store = cs.New(disk, cs.Options{
			Profile:     profileFor(*wan),
			TimeScale:   *timescale,
			FailureRate: *failure,
		})
	}
	fmt.Printf("cloudsim: serving %s on %s (wan=%v, failure=%.2f, auth=%v)\n",
		*dir, *addr, *wan, *failure, *token != "")
	return http.ListenAndServe(*addr, s3http.NewHandlerWithToken(store, *token))
}

func profileFor(wan bool) cs.Profile {
	if wan {
		return cs.WANProfile()
	}
	return cs.LANProfile()
}
