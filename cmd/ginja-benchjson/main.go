// Command ginja-benchjson benchmarks the cloud data path — multi-part
// dump upload, disaster-recovery prefetch, sealer allocation profile —
// on the deterministic simulated WAN and writes the result as JSON.
//
// Usage:
//
//	ginja-benchjson [-out BENCH_datapath.json] [-parallel 5] [-smoke]
//
// All latencies are virtual time on the simulated clock, so the numbers
// are exact and machine-independent: the serial-vs-parallel speedup is
// purely the latency hiding won by the bounded-concurrency I/O pool.
// -smoke runs a smaller scenario and prints to stdout without writing a
// file (used by `make verify` as a cheap end-to-end check).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/ginja-dr/ginja/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ginja-benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ginja-benchjson", flag.ContinueOnError)
	out := fs.String("out", "BENCH_datapath.json", "output file")
	parallel := fs.Int("parallel", 5, "parallelism of the parallel run (serial run is always 1)")
	smoke := fs.Bool("smoke", false, "small scenario, print to stdout, write no file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := experiments.DatapathOptions{Parallel: *parallel}
	if *smoke {
		opts.Rows = 60
		opts.MaxObjectSize = 8 << 10
	}
	res, err := experiments.RunDatapath(opts)
	if err != nil {
		return err
	}

	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')

	fmt.Printf("dump upload: %8.1f ms serial -> %8.1f ms at parallelism %d (%.2fx, %d parts)\n",
		res.Serial.DumpUploadMs, res.Parallel.DumpUploadMs, res.Parallel.Parallelism,
		res.DumpSpeedup, res.Parallel.DumpParts)
	fmt.Printf("recovery:    %8.1f ms serial -> %8.1f ms at parallelism %d (%.2fx, %d objects)\n",
		res.Serial.RecoveryMs, res.Parallel.RecoveryMs, res.Parallel.Parallelism,
		res.RecoverySpeedup, res.Parallel.RecoveryObjects)
	fmt.Printf("sealer:      %.1f allocs/op seal, %.1f allocs/op open (compressed path)\n",
		res.SealAllocsPerOp, res.OpenAllocsPerOp)

	if *smoke {
		os.Stdout.Write(data)
		return nil
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", *out)
	return nil
}
