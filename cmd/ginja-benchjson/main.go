// Command ginja-benchjson benchmarks one of Ginja's cloud paths on the
// deterministic simulated WAN and writes the result as JSON:
//
//   - -path datapath (default): multi-part dump upload, disaster-recovery
//     prefetch and the sealer allocation profile → BENCH_datapath.json
//   - -path commit: WAL batch packing — commit throughput, batch-latency
//     quantiles, PUTs-per-batch, allocs-per-commit and the costmodel
//     $/day projection, packed vs unpacked → BENCH_commitpath.json
//   - -path recovery: measured RPO/RTO — deterministic sim fault schedules
//     (crash mid-batch, outage then crash, crash during dump) replayed
//     across seeds; data-loss-window and recovery-time percentiles plus
//     the per-phase RTO budget → BENCH_recovery.json
//   - -path fleet: fleet mode — per-tenant goroutine/heap footprint and
//     hot-tenant commit quantiles under a dumping antagonist, swept over
//     1/10/100/1000 tenants in one process → BENCH_fleet.json
//
// Usage:
//
//	ginja-benchjson [-path datapath|commit|recovery|fleet] [-out FILE] [-parallel 5] [-smoke]
//
// All latencies are virtual time on the simulated clock, so the numbers
// are exact and machine-independent; only the allocation profiles run on
// the real clock (they count allocations, not time). -smoke runs a
// smaller scenario and prints to stdout without writing a file (used by
// `make verify` as a cheap end-to-end check).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/ginja-dr/ginja/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ginja-benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ginja-benchjson", flag.ContinueOnError)
	path := fs.String("path", "datapath", "which path to benchmark: datapath, commit, recovery or fleet")
	out := fs.String("out", "", "output file (default BENCH_<path>.json)")
	parallel := fs.Int("parallel", 5, "datapath only: parallelism of the parallel run (serial run is always 1)")
	smoke := fs.Bool("smoke", false, "small scenario, print to stdout, write no file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		res        any
		defaultOut string
		err        error
	)
	switch *path {
	case "datapath":
		defaultOut = "BENCH_datapath.json"
		opts := experiments.DatapathOptions{Parallel: *parallel}
		if *smoke {
			opts.Rows = 60
			opts.MaxObjectSize = 8 << 10
		}
		var r *experiments.DatapathResult
		if r, err = experiments.RunDatapath(opts); err != nil {
			return err
		}
		fmt.Printf("dump upload: %8.1f ms serial -> %8.1f ms at parallelism %d (%.2fx, %d parts)\n",
			r.Serial.DumpUploadMs, r.Parallel.DumpUploadMs, r.Parallel.Parallelism,
			r.DumpSpeedup, r.Parallel.DumpParts)
		fmt.Printf("recovery:    %8.1f ms serial -> %8.1f ms at parallelism %d (%.2fx, %d objects)\n",
			r.Serial.RecoveryMs, r.Parallel.RecoveryMs, r.Parallel.Parallelism,
			r.RecoverySpeedup, r.Parallel.RecoveryObjects)
		fmt.Printf("sealer:      %.1f allocs/op seal, %.1f allocs/op open (compressed path)\n",
			r.SealAllocsPerOp, r.OpenAllocsPerOp)
		s := r.Streaming
		fmt.Printf("streaming:   peak %d B resident of %d B bound (db %d B, %d parts); legacy recovery ok=%v\n",
			s.PeakStreamBytes, s.BoundBytes, s.LocalDBBytes, s.DumpParts, s.LegacyRecoveryOK)
		// The streamed data path's contract is enforced here so that
		// `make verify` (bench-json-smoke / bench-data-smoke) fails the
		// build when the memory bound or the legacy format regresses.
		if !s.WithinBound || s.DumpParts < 2 || !s.LegacyRecoveryOK || s.QueueBytesAfter != 0 {
			return fmt.Errorf(
				"streaming data path regressed: within_bound=%v (peak=%d bound=%d) parts=%d legacy_recovery_ok=%v queue_bytes_after=%d",
				s.WithinBound, s.PeakStreamBytes, s.BoundBytes, s.DumpParts, s.LegacyRecoveryOK, s.QueueBytesAfter)
		}
		d := r.DeltaCheckpoint
		fmt.Printf("delta ckpt:  %d B delta vs %d B full re-dump (%.1f%%, %d/%d rows dirty); gate %d B vs %d B (%.1f%%)\n",
			d.DeltaBytes, d.FullRedumpBytes, 100*d.BytesRatio, d.DirtyRows, d.Rows,
			d.GateBytesDelta, d.GateBytesFull, 100*d.GateRatio)
		fmt.Printf("             chain(%d) recovery %.1f ms vs base-only %.1f ms (%.2fx); saved %d B; identical=%v\n",
			d.ChainLen, d.ChainRecoveryMs, d.BaseRecoveryMs, d.RecoveryRatio, d.CheckpointBytesSaved, d.RecoveredIdentical)
		// The delta checkpoints' contract: a 1 %-dirty crossing ships and
		// gates a small fraction of a full re-dump, recovering through a
		// maximum-length chain stays within 2x of a fresh base, the two
		// formats materialize byte-identical machines, and the streaming
		// memory bound is unchanged.
		if d.BytesRatio > 0.15 || d.GateRatio > 0.15 || d.ChainLen < 1 ||
			d.RecoveryRatio > 2 || !d.RecoveredIdentical || !d.WithinBound {
			return fmt.Errorf(
				"delta checkpoints regressed: bytes_ratio=%.3f gate_ratio=%.3f (want <= 0.15) chain_len=%d recovery_ratio=%.2f (want <= 2) identical=%v within_bound=%v (peak=%d bound=%d)",
				d.BytesRatio, d.GateRatio, d.ChainLen, d.RecoveryRatio,
				d.RecoveredIdentical, d.WithinBound, d.PeakStreamBytes, d.BoundBytes)
		}
		res = r
	case "recovery":
		defaultOut = "BENCH_recovery.json"
		opts := experiments.RecoveryBenchOptions{}
		if *smoke {
			opts.Seeds = 3
		}
		var r *experiments.RecoveryBenchResult
		if r, err = experiments.RunRecoveryBench(opts); err != nil {
			return err
		}
		anyLoss := false
		for _, sc := range r.Scenarios {
			fmt.Printf("%-18s RPO p50/p99 %7.1f/%7.1f ms  RTO p50/p99 %7.1f/%7.1f ms  (%d runs, %.0f objects, %.1f KiB)\n",
				sc.Name+":", sc.RPOp50Ms, sc.RPOp99Ms, sc.RTOp50Ms, sc.RTOp99Ms,
				sc.Runs, sc.MeanObjects, sc.MeanFetchedKB)
			fmt.Printf("%-18s phases list %.1f, view %.1f, fetch %.1f, decode %.1f, apply %.1f, verify %.1f, total %.1f ms\n",
				"", sc.Phases.List, sc.Phases.View, sc.Phases.Fetch,
				sc.Phases.Decode, sc.Phases.Apply, sc.Phases.Verify, sc.Phases.Total)
			// The RTO budget must be a real measurement: recovery happened
			// (total > 0), fetched actual objects, and every run completed.
			if sc.Runs != r.Seeds || sc.RTOp50Ms <= 0 || sc.Phases.Total <= 0 || sc.MeanObjects <= 0 {
				return fmt.Errorf("recovery bench regressed: scenario %s runs=%d rto_p50=%.3f total=%.3f objects=%.1f",
					sc.Name, sc.Runs, sc.RTOp50Ms, sc.Phases.Total, sc.MeanObjects)
			}
			if sc.RPOMaxMs > 0 {
				anyLoss = true
			}
		}
		// The disasters are scripted to strike with work in flight; a sweep
		// where no run ever had a non-zero data-loss window means the RPO
		// watermark (or the schedules) broke.
		if !anyLoss {
			return fmt.Errorf("recovery bench regressed: no scenario measured a non-zero RPO")
		}
		w := r.WarmStandby
		fmt.Printf("%-18s cold RTO p50/p99 %7.1f/%7.1f ms -> warm promote %7.1f/%7.1f ms (%.1fx, lag %.0f ms, %.0f vs %.0f objects)\n",
			"warm-standby:", w.ColdRTOp50Ms, w.ColdRTOp99Ms, w.WarmRTOp50Ms, w.WarmRTOp99Ms,
			w.Speedup, w.MeanFollowerLagMs, w.MeanColdObjects, w.MeanWarmObjects)
		fmt.Printf("%-18s promote-during-outage drill RTO %.1f ms (rides a 1 s provider outage)\n",
			"", w.OutageDrillRTOMs)
		// The warm standby's reason to exist: promoting the tailed replica
		// must beat re-downloading the database by a wide margin. Enforced
		// here so `make verify` fails the build when the follower regresses
		// to cold-restore behaviour.
		if w.Runs != r.Seeds || w.WarmRTOp50Ms <= 0 || w.Speedup < 5 {
			return fmt.Errorf("warm standby regressed: runs=%d warm_rto_p50=%.3f speedup=%.2f (want >= 5x over cold)",
				w.Runs, w.WarmRTOp50Ms, w.Speedup)
		}
		res = r
	case "commit":
		defaultOut = "BENCH_commitpath.json"
		opts := experiments.CommitpathOptions{}
		if *smoke {
			opts.Commits = 150
			opts.AdaptiveCommits = 896    // 7 batches of 128, 28 of 32, 112 of 8
			opts.ThroughputCommits = 8192 // shorter runs don't outlive controller convergence
			opts.PipelineCommits = 512    // fewer batches would be startup-dominated
		}
		var r *experiments.CommitpathResult
		if r, err = experiments.RunCommitpath(opts); err != nil {
			return err
		}
		fmt.Printf("commit path: %7.0f commits/s unpacked -> %7.0f commits/s packed (%.2fx)\n",
			r.Unpacked.CommitsPerSec, r.Packed.CommitsPerSec, r.ThroughputSpeedup)
		fmt.Printf("PUTs/batch:  %7.1f unpacked -> %7.1f packed (%.1fx fewer PUTs)\n",
			r.Unpacked.PutsPerBatch, r.Packed.PutsPerBatch, r.PutReduction)
		fmt.Printf("batch p50/p99: %.0f/%.0f ms unpacked -> %.0f/%.0f ms packed\n",
			r.Unpacked.P50BatchMs, r.Unpacked.P99BatchMs, r.Packed.P50BatchMs, r.Packed.P99BatchMs)
		fmt.Printf("cost model:  $%.3f/day unpacked -> $%.3f/day packed; %.2f allocs/commit\n",
			r.Unpacked.DollarsPerDay, r.Packed.DollarsPerDay, r.AllocsPerCommit)
		for _, reg := range r.AdaptiveRegimes {
			a := reg.Adaptive
			fmt.Printf("adaptive rtt=%3.0fms ceiling=$%.2f/day: B->%d TB->%.0fms p50 %.0f ms (best feasible fixed %.0f ms), steady $%.3f/day\n",
				reg.RTTMs, reg.CeilingPerDay, a.EffectiveBatch, a.EffectiveTimeoutMs,
				a.P50BatchMs, reg.BestFeasibleFixedP50Ms, a.SteadyDollarsPerDay)
			// The controller's contract, enforced per regime: the solved
			// knobs stay inside [1, Safety], the steady-state spend fits the
			// ceiling, and the median commit latency is within 10% of the
			// best fixed configuration that also fits the ceiling.
			if a.EffectiveBatch < 1 || a.EffectiveBatch > 1024 {
				return fmt.Errorf("adaptive regime rtt=%.0fms: effective batch %d outside [1, 1024]",
					reg.RTTMs, a.EffectiveBatch)
			}
			if a.SteadyDollarsPerDay > reg.CeilingPerDay*1.001 {
				return fmt.Errorf("adaptive regime rtt=%.0fms: steady spend $%.3f/day exceeds ceiling $%.3f/day",
					reg.RTTMs, a.SteadyDollarsPerDay, reg.CeilingPerDay)
			}
			if reg.BestFeasibleFixedP50Ms > 0 && a.P50BatchMs > 1.1*reg.BestFeasibleFixedP50Ms {
				return fmt.Errorf("adaptive regime rtt=%.0fms ceiling=$%.2f: p50 %.1f ms worse than 1.1x best feasible fixed %.1f ms",
					reg.RTTMs, reg.CeilingPerDay, a.P50BatchMs, reg.BestFeasibleFixedP50Ms)
			}
		}
		tg := r.AdaptiveThroughput
		fmt.Printf("adaptive throughput: %7.0f commits/s default -> %7.0f commits/s adaptive (%.2fx), $%.2f -> $%.2f/day\n",
			tg.FixedDefault.CommitsPerSec, tg.Adaptive.CommitsPerSec, tg.Speedup,
			tg.FixedDefault.DollarsPerDay, tg.Adaptive.DollarsPerDay)
		// The unpaced gate: adaptive must beat the default fixed knobs on
		// throughput at equal-or-lower $/day, or the controller regressed.
		if tg.Adaptive.CommitsPerSec < tg.FixedDefault.CommitsPerSec {
			return fmt.Errorf("adaptive throughput regressed: %.0f commits/s < fixed default %.0f commits/s",
				tg.Adaptive.CommitsPerSec, tg.FixedDefault.CommitsPerSec)
		}
		if tg.Adaptive.DollarsPerDay > tg.FixedDefault.DollarsPerDay {
			return fmt.Errorf("adaptive throughput gate overspends: $%.3f/day > fixed default $%.3f/day",
				tg.Adaptive.DollarsPerDay, tg.FixedDefault.DollarsPerDay)
		}
		pl := r.Pipelined
		fmt.Printf("pipelined uploader: %7.0f commits/s serial -> %7.0f commits/s pipelined (%.2fx at %.0f ms RTT)\n",
			pl.SerialCommitsPerSec, pl.PipelinedCommitsPerSec, pl.Speedup, pl.RTTMs)
		// Overlapping seal with the in-flight PUT must show a real
		// wall-clock win over the serial seal→PUT loop.
		if pl.Speedup < 1.15 {
			return fmt.Errorf("pipelined uploader regressed: %.2fx speedup over serial (want >= 1.15x)", pl.Speedup)
		}
		res = r
	case "fleet":
		defaultOut = "BENCH_fleet.json"
		opts := experiments.FleetBenchOptions{}
		if *smoke {
			opts.Sizes = []int{1, 10, 100}
			opts.Commits = 12
		}
		var r *experiments.FleetBenchResult
		if r, err = experiments.RunFleetBench(opts); err != nil {
			return err
		}
		for _, row := range r.Rows {
			fmt.Printf("fleet %5d tenants: %.2f goroutines, %6.1f KiB heap per tenant; commit p50/p99 %6.1f/%6.1f ms; %d safety misses\n",
				row.Tenants, row.GoroutinesPerTenant, row.HeapBytesPerTenant/1024,
				row.CommitP50Ms, row.CommitP99Ms, row.SafetyDeadlineMisses)
			// The fairness contract: with a dumping antagonist saturating
			// the bulk path at every sweep point, no tenant's Safety-class
			// PUT ever out-waits its TS window in the shared queue.
			if row.SafetyDeadlineMisses != 0 {
				return fmt.Errorf("fleet bench regressed: %d safety deadline misses at %d tenants (want 0)",
					row.SafetyDeadlineMisses, row.Tenants)
			}
			if row.GoroutinesPerTenant <= 0 || row.GoroutinesPerTenant > 12 {
				return fmt.Errorf("fleet bench regressed: %.2f goroutines per tenant at %d tenants (want (0, 12])",
					row.GoroutinesPerTenant, row.Tenants)
			}
		}
		fmt.Printf("fleet gates: p50 ratio at 100 tenants %.2fx of solo; per-tenant growth 10->1000: goroutines %+.1f%%, heap %+.1f%%\n",
			r.P50RatioAt100, 100*r.GoroutineGrowth10To1000, 100*r.HeapGrowth10To1000)
		// Contention gate: a shared fleet must not tax the hot tenant's
		// commit latency beyond 1.5x of running alone.
		if r.P50RatioAt100 > 1.5 {
			return fmt.Errorf("fleet bench regressed: commit p50 at 100 tenants is %.2fx solo (want <= 1.5x)", r.P50RatioAt100)
		}
		// Flat-overhead gate (full sweep only — the smoke sweep has no
		// 1000-tenant row and reports zero growth).
		if r.GoroutineGrowth10To1000 > 0.10 || r.HeapGrowth10To1000 > 0.10 {
			return fmt.Errorf("fleet bench regressed: per-tenant overhead grew 10->1000 tenants: goroutines %+.1f%% heap %+.1f%% (want <= +10%%)",
				100*r.GoroutineGrowth10To1000, 100*r.HeapGrowth10To1000)
		}
		res = r
	default:
		return fmt.Errorf("unknown -path %q (want datapath, commit, recovery or fleet)", *path)
	}

	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')

	if *smoke {
		os.Stdout.Write(data)
		return nil
	}
	file := *out
	if file == "" {
		file = defaultOut
	}
	if err := os.WriteFile(file, data, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", file)
	return nil
}
