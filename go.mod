module github.com/ginja-dr/ginja

go 1.22
