package ginja_test

import (
	"context"
	"fmt"
	"time"

	"github.com/ginja-dr/ginja"
)

// Example shows the full protect → disaster → recover loop through the
// public API.
func Example() {
	ctx := context.Background()
	store := ginja.NewMemStore() // use NewDiskStore / NewS3Client in production

	params := ginja.DefaultParams()
	params.BatchTimeout = 50 * time.Millisecond // flush single commits quickly

	// Protect a database.
	g, err := ginja.New(ginja.NewMemFS(), store, ginja.NewPGProcessor(), params)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if err := g.Boot(ctx); err != nil {
		fmt.Println("error:", err)
		return
	}
	db, err := ginja.OpenDB(g.FS(), ginja.NewPostgresEngine(), ginja.DBOptions{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if err := db.Update(func(tx *ginja.Txn) error {
		return tx.Put("accounts", []byte("alice"), []byte("100"))
	}); err != nil {
		fmt.Println("error:", err)
		return
	}
	g.Flush(10 * time.Second) // wait for cloud acknowledgement
	g.Close()

	// Disaster: recover on a fresh machine.
	g2, err := ginja.New(ginja.NewMemFS(), store, ginja.NewPGProcessor(), params)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if err := g2.Recover(ctx); err != nil {
		fmt.Println("error:", err)
		return
	}
	defer g2.Close()
	db2, err := ginja.OpenDB(g2.FS(), ginja.NewPostgresEngine(), ginja.DBOptions{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	v, err := db2.Get("accounts", []byte("alice"))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("alice = %s\n", v)
	// Output: alice = 100
}

// ExampleNoLossParams demonstrates the synchronous-replication setting.
func ExampleNoLossParams() {
	p := ginja.NoLossParams()
	fmt.Printf("B=%d S=%d\n", p.Batch, p.Safety)
	// Output: B=1 S=1
}
