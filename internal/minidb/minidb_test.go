package minidb_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"github.com/ginja-dr/ginja/internal/minidb"
	"github.com/ginja-dr/ginja/internal/minidb/innoengine"
	"github.com/ginja-dr/ginja/internal/minidb/pgengine"
	"github.com/ginja-dr/ginja/internal/vfs"
)

// engines returns small-geometry engine instances for each personality so
// tests exercise segment switching and circular wrap cheaply.
func engines() map[string]func() minidb.Engine {
	return map[string]func() minidb.Engine{
		"postgresql": func() minidb.Engine {
			return pgengine.NewWithSizes(1024 /* wal page */, 16*1024 /* segment */, 1024 /* data page */)
		},
		"mysql": func() minidb.Engine {
			return innoengine.NewWithSizes(512 /* block */, 2048+512*32 /* log file */, 1024 /* data page */, 4 /* batch */)
		},
	}
}

func mustOpen(t *testing.T, fsys vfs.FS, e minidb.Engine) *minidb.DB {
	t.Helper()
	db, err := minidb.Open(fsys, e, minidb.Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return db
}

func put(t *testing.T, db *minidb.DB, table, key, value string) {
	t.Helper()
	err := db.Update(func(tx *minidb.Txn) error {
		return tx.Put(table, []byte(key), []byte(value))
	})
	if err != nil {
		t.Fatalf("put %s/%s: %v", table, key, err)
	}
}

func get(t *testing.T, db *minidb.DB, table, key string) string {
	t.Helper()
	v, err := db.Get(table, []byte(key))
	if err != nil {
		t.Fatalf("get %s/%s: %v", table, key, err)
	}
	return string(v)
}

func TestPutGetAcrossEngines(t *testing.T) {
	for name, mk := range engines() {
		t.Run(name, func(t *testing.T) {
			db := mustOpen(t, vfs.NewMemFS(), mk())
			if err := db.CreateTable("kv", 0); err != nil {
				t.Fatal(err)
			}
			put(t, db, "kv", "alpha", "1")
			put(t, db, "kv", "beta", "2")
			if got := get(t, db, "kv", "alpha"); got != "1" {
				t.Fatalf("alpha = %q", got)
			}
			if got := get(t, db, "kv", "beta"); got != "2" {
				t.Fatalf("beta = %q", got)
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestGetMissingKey(t *testing.T) {
	db := mustOpen(t, vfs.NewMemFS(), pgengine.New())
	if err := db.CreateTable("kv", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get("kv", []byte("nope")); !errors.Is(err, minidb.ErrNotFound) {
		t.Fatalf("Get = %v, want ErrNotFound", err)
	}
	if _, err := db.Get("ghost-table", []byte("k")); !errors.Is(err, minidb.ErrNoTable) {
		t.Fatalf("Get = %v, want ErrNoTable", err)
	}
}

func TestTxnReadYourWrites(t *testing.T) {
	db := mustOpen(t, vfs.NewMemFS(), pgengine.New())
	if err := db.CreateTable("kv", 0); err != nil {
		t.Fatal(err)
	}
	put(t, db, "kv", "k", "old")
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Put("kv", []byte("k"), []byte("new")); err != nil {
		t.Fatal(err)
	}
	v, err := tx.Get("kv", []byte("k"))
	if err != nil || string(v) != "new" {
		t.Fatalf("tx.Get = %q, %v; want new", v, err)
	}
	// Other readers still see the old value before commit.
	if got := get(t, db, "kv", "k"); got != "old" {
		t.Fatalf("outside view = %q, want old", got)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := get(t, db, "kv", "k"); got != "new" {
		t.Fatalf("after commit = %q, want new", got)
	}
}

func TestTxnDeleteVisibility(t *testing.T) {
	db := mustOpen(t, vfs.NewMemFS(), pgengine.New())
	if err := db.CreateTable("kv", 0); err != nil {
		t.Fatal(err)
	}
	put(t, db, "kv", "k", "v")
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete("kv", []byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Get("kv", []byte("k")); !errors.Is(err, minidb.ErrNotFound) {
		t.Fatalf("tx sees deleted key: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get("kv", []byte("k")); !errors.Is(err, minidb.ErrNotFound) {
		t.Fatalf("key survived delete: %v", err)
	}
}

func TestTxnRollbackDiscardsWrites(t *testing.T) {
	db := mustOpen(t, vfs.NewMemFS(), pgengine.New())
	if err := db.CreateTable("kv", 0); err != nil {
		t.Fatal(err)
	}
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Put("kv", []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	tx.Rollback()
	if _, err := db.Get("kv", []byte("k")); !errors.Is(err, minidb.ErrNotFound) {
		t.Fatalf("rolled-back write visible: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, minidb.ErrTxDone) {
		t.Fatalf("Commit after Rollback = %v, want ErrTxDone", err)
	}
}

func TestCrashRecoveryCommittedSurvive(t *testing.T) {
	for name, mk := range engines() {
		t.Run(name, func(t *testing.T) {
			fsys := vfs.NewMemFS()
			db := mustOpen(t, fsys, mk())
			if err := db.CreateTable("kv", 0); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 30; i++ {
				put(t, db, "kv", fmt.Sprintf("k%02d", i), fmt.Sprintf("v%02d", i))
			}
			// Crash: no Close, no checkpoint — reopen straight from files.
			db2 := mustOpen(t, fsys, mk())
			for i := 0; i < 30; i++ {
				if got := get(t, db2, "kv", fmt.Sprintf("k%02d", i)); got != fmt.Sprintf("v%02d", i) {
					t.Fatalf("k%02d = %q after recovery", i, got)
				}
			}
		})
	}
}

func TestCrashRecoveryUncommittedLost(t *testing.T) {
	fsys := vfs.NewMemFS()
	db := mustOpen(t, fsys, pgengine.New())
	if err := db.CreateTable("kv", 0); err != nil {
		t.Fatal(err)
	}
	put(t, db, "kv", "committed", "yes")
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Put("kv", []byte("uncommitted"), []byte("no")); err != nil {
		t.Fatal(err)
	}
	// Crash with the transaction still open.
	db2 := mustOpen(t, fsys, pgengine.New())
	if got := get(t, db2, "kv", "committed"); got != "yes" {
		t.Fatalf("committed = %q", got)
	}
	if _, err := db2.Get("kv", []byte("uncommitted")); !errors.Is(err, minidb.ErrNotFound) {
		t.Fatalf("uncommitted write survived crash: %v", err)
	}
}

func TestRecoveryAfterCheckpoint(t *testing.T) {
	for name, mk := range engines() {
		t.Run(name, func(t *testing.T) {
			fsys := vfs.NewMemFS()
			db := mustOpen(t, fsys, mk())
			if err := db.CreateTable("kv", 0); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 20; i++ {
				put(t, db, "kv", fmt.Sprintf("pre%02d", i), "x")
			}
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 20; i++ {
				put(t, db, "kv", fmt.Sprintf("post%02d", i), "y")
			}
			db2 := mustOpen(t, fsys, mk())
			for i := 0; i < 20; i++ {
				if get(t, db2, "kv", fmt.Sprintf("pre%02d", i)) != "x" {
					t.Fatalf("pre%02d lost", i)
				}
				if get(t, db2, "kv", fmt.Sprintf("post%02d", i)) != "y" {
					t.Fatalf("post%02d lost", i)
				}
			}
			if db2.LastCheckpointLSN() == 0 {
				t.Fatal("checkpoint LSN not recovered")
			}
		})
	}
}

func TestCleanCloseAndReopen(t *testing.T) {
	for name, mk := range engines() {
		t.Run(name, func(t *testing.T) {
			fsys := vfs.NewMemFS()
			db := mustOpen(t, fsys, mk())
			if err := db.CreateTable("kv", 0); err != nil {
				t.Fatal(err)
			}
			put(t, db, "kv", "k", "v")
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			if _, err := db.Begin(); !errors.Is(err, minidb.ErrClosed) {
				t.Fatalf("Begin after Close = %v", err)
			}
			db2 := mustOpen(t, fsys, mk())
			if got := get(t, db2, "kv", "k"); got != "v" {
				t.Fatalf("k = %q after reopen", got)
			}
		})
	}
}

func TestOverflowPages(t *testing.T) {
	// One bucket + values near the page size forces overflow chains.
	db, err := minidb.Open(vfs.NewMemFS(), pgengine.NewWithSizes(1024, 16*1024, 1024), minidb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("fat", 1); err != nil {
		t.Fatal(err)
	}
	val := make([]byte, 300)
	for i := 0; i < 20; i++ {
		if err := db.Update(func(tx *minidb.Txn) error {
			return tx.Put("fat", []byte(fmt.Sprintf("key%02d", i)), val)
		}); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := db.Keys("fat")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 20 {
		t.Fatalf("Keys = %d, want 20", len(keys))
	}
	for i := 0; i < 20; i++ {
		if _, err := db.Get("fat", []byte(fmt.Sprintf("key%02d", i))); err != nil {
			t.Fatalf("key%02d unreadable: %v", i, err)
		}
	}
}

func TestOverflowSurvivesCheckpointAndRecovery(t *testing.T) {
	fsys := vfs.NewMemFS()
	e := pgengine.NewWithSizes(1024, 16*1024, 1024)
	db, err := minidb.Open(fsys, e, minidb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("fat", 1); err != nil {
		t.Fatal(err)
	}
	val := make([]byte, 300)
	for i := 0; i < 15; i++ {
		if err := db.Update(func(tx *minidb.Txn) error {
			return tx.Put("fat", []byte(fmt.Sprintf("key%02d", i)), val)
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db2, err := minidb.Open(fsys, pgengine.NewWithSizes(1024, 16*1024, 1024), minidb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 15; i++ {
		if _, err := db2.Get("fat", []byte(fmt.Sprintf("key%02d", i))); err != nil {
			t.Fatalf("key%02d lost after checkpoint+reopen: %v", i, err)
		}
	}
}

func TestCircularLogForcesCheckpoint(t *testing.T) {
	// Log capacity = 2 files × 512×8 bytes usable; heavy writing must
	// force checkpoints instead of corrupting the wrapped log.
	e := innoengine.NewWithSizes(512, 2048+512*8, 1024, 2)
	fsys := vfs.NewMemFS()
	db, err := minidb.Open(fsys, e, minidb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("kv", 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		put(t, db, "kv", fmt.Sprintf("k%03d", i), fmt.Sprintf("value-%03d", i))
	}
	if db.Stats().Checkpoints == 0 {
		t.Fatal("no checkpoint was forced by the circular log")
	}
	// Crash-reopen and verify everything committed survived.
	db2, err := minidb.Open(fsys, innoengine.NewWithSizes(512, 2048+512*8, 1024, 2), minidb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if got := get(t, db2, "kv", fmt.Sprintf("k%03d", i)); got != fmt.Sprintf("value-%03d", i) {
			t.Fatalf("k%03d = %q after wrap recovery", i, got)
		}
	}
}

func TestAutoCheckpointByCommits(t *testing.T) {
	db, err := minidb.Open(vfs.NewMemFS(), pgengine.New(), minidb.Options{AutoCheckpointCommits: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("kv", 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		put(t, db, "kv", fmt.Sprintf("k%d", i), "v")
	}
	if got := db.Stats().Checkpoints; got != 2 {
		t.Fatalf("Checkpoints = %d, want 2 (12 commits / 5)", got)
	}
}

func TestConcurrentCommits(t *testing.T) {
	for name, mk := range engines() {
		t.Run(name, func(t *testing.T) {
			fsys := vfs.NewMemFS()
			db := mustOpen(t, fsys, mk())
			if err := db.CreateTable("kv", 0); err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 25; i++ {
						key := fmt.Sprintf("g%d-k%02d", g, i)
						if err := db.Update(func(tx *minidb.Txn) error {
							return tx.Put("kv", []byte(key), []byte(key))
						}); err != nil {
							t.Errorf("update: %v", err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			if got := db.Stats().Commits; got != 200 {
				t.Fatalf("Commits = %d, want 200", got)
			}
			// Crash-recover and verify all 200 writes.
			db2 := mustOpen(t, fsys, mk())
			for g := 0; g < 8; g++ {
				for i := 0; i < 25; i++ {
					key := fmt.Sprintf("g%d-k%02d", g, i)
					if got := get(t, db2, "kv", key); got != key {
						t.Fatalf("%s = %q after recovery", key, got)
					}
				}
			}
		})
	}
}

func TestTableDiscoveryOnReopen(t *testing.T) {
	for name, mk := range engines() {
		t.Run(name, func(t *testing.T) {
			fsys := vfs.NewMemFS()
			db := mustOpen(t, fsys, mk())
			for _, tbl := range []string{"orders", "stock", "customer"} {
				if err := db.CreateTable(tbl, 0); err != nil {
					t.Fatal(err)
				}
				put(t, db, tbl, "k", tbl)
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			db2 := mustOpen(t, fsys, mk())
			tables := db2.Tables()
			if len(tables) != 3 {
				t.Fatalf("Tables = %v, want 3", tables)
			}
			for _, tbl := range []string{"orders", "stock", "customer"} {
				if got := get(t, db2, tbl, "k"); got != tbl {
					t.Fatalf("%s/k = %q", tbl, got)
				}
			}
		})
	}
}

func TestEmptyCommitWritesNothing(t *testing.T) {
	fsys := vfs.NewMemFS()
	db := mustOpen(t, fsys, pgengine.New())
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := db.Stats().Commits; got != 0 {
		t.Fatalf("empty commit counted: %d", got)
	}
}

func TestImplicitTableCreationOnCommit(t *testing.T) {
	db := mustOpen(t, vfs.NewMemFS(), pgengine.New())
	// Writing to a never-created table must create it implicitly.
	put(t, db, "fresh", "k", "v")
	if got := get(t, db, "fresh", "k"); got != "v" {
		t.Fatalf("fresh/k = %q", got)
	}
}

func TestOnDiskFS(t *testing.T) {
	// Full cycle on a real directory (OSFS), PostgreSQL personality.
	dir := t.TempDir()
	fsys, err := vfs.NewOSFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := pgengine.NewWithSizes(1024, 16*1024, 1024)
	db, err := minidb.Open(fsys, e, minidb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("kv", 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		put(t, db, "kv", fmt.Sprintf("k%02d", i), fmt.Sprintf("v%02d", i))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := minidb.Open(fsys, e, minidb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if got := get(t, db2, "kv", fmt.Sprintf("k%02d", i)); got != fmt.Sprintf("v%02d", i) {
			t.Fatalf("k%02d = %q", i, got)
		}
	}
}

// TestPropertyRandomOpsThenCrash: arbitrary sequences of puts/deletes
// followed by a crash-recovery always converge to the model map.
func TestPropertyRandomOpsThenCrash(t *testing.T) {
	type op struct {
		Key byte
		Val []byte
		Del bool
	}
	prop := func(ops []op, checkpointAt uint8) bool {
		fsys := vfs.NewMemFS()
		e := pgengine.NewWithSizes(1024, 16*1024, 1024)
		db, err := minidb.Open(fsys, e, minidb.Options{})
		if err != nil {
			return false
		}
		if err := db.CreateTable("t", 4); err != nil {
			return false
		}
		model := make(map[string][]byte)
		for i, o := range ops {
			key := []byte{byte('a' + o.Key%16)}
			if o.Del {
				if err := db.Update(func(tx *minidb.Txn) error { return tx.Delete("t", key) }); err != nil {
					return false
				}
				delete(model, string(key))
			} else {
				if err := db.Update(func(tx *minidb.Txn) error { return tx.Put("t", key, o.Val) }); err != nil {
					return false
				}
				model[string(key)] = o.Val
			}
			if i == int(checkpointAt)%8 {
				if err := db.Checkpoint(); err != nil {
					return false
				}
			}
		}
		// Crash and recover.
		db2, err := minidb.Open(fsys, e, minidb.Options{})
		if err != nil {
			return false
		}
		for k, v := range model {
			got, err := db2.Get("t", []byte(k))
			if err != nil || string(got) != string(v) {
				return false
			}
		}
		keys, err := db2.Keys("t")
		if err != nil {
			return false
		}
		return len(keys) == len(model)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAndTables(t *testing.T) {
	db := mustOpen(t, vfs.NewMemFS(), pgengine.New())
	if err := db.CreateTable("a", 0); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("b", 0); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("a", 0); err != nil { // idempotent
		t.Fatal(err)
	}
	put(t, db, "a", "k", "v")
	s := db.Stats()
	if s.Tables != 2 || s.Commits != 1 {
		t.Fatalf("Stats = %+v", s)
	}
}
