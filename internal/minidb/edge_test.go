package minidb_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/ginja-dr/ginja/internal/minidb"
	"github.com/ginja-dr/ginja/internal/minidb/pgengine"
	"github.com/ginja-dr/ginja/internal/vfs"
)

func TestValueLargerThanPageRejected(t *testing.T) {
	db, err := minidb.Open(vfs.NewMemFS(), pgengine.NewWithSizes(1024, 16*1024, 1024), minidb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	err = db.Update(func(tx *minidb.Txn) error {
		return tx.Put("kv", []byte("k"), make([]byte, 4096)) // > 1 KiB page
	})
	if err == nil {
		t.Fatal("oversized value accepted")
	}
	if !strings.Contains(err.Error(), "larger than page") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestValueNearPageLimitAccepted(t *testing.T) {
	db, err := minidb.Open(vfs.NewMemFS(), pgengine.NewWithSizes(1024, 16*1024, 1024), minidb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Page is 1024 bytes with a 16-byte header and 6-byte entry header:
	// a ~900-byte value must fit alone in a page.
	big := make([]byte, 900)
	if err := db.Update(func(tx *minidb.Txn) error {
		return tx.Put("kv", []byte("k"), big)
	}); err != nil {
		t.Fatalf("near-limit value rejected: %v", err)
	}
	got, err := db.Get("kv", []byte("k"))
	if err != nil || len(got) != 900 {
		t.Fatalf("Get = %d bytes, %v", len(got), err)
	}
}

func TestDeleteMissingKeyIsNoop(t *testing.T) {
	db := mustOpen(t, vfs.NewMemFS(), pgengine.New())
	if err := db.CreateTable("kv", 0); err != nil {
		t.Fatal(err)
	}
	if err := db.Update(func(tx *minidb.Txn) error {
		return tx.Delete("kv", []byte("never-existed"))
	}); err != nil {
		t.Fatalf("deleting a missing key failed: %v", err)
	}
}

func TestKeysOnMissingTable(t *testing.T) {
	db := mustOpen(t, vfs.NewMemFS(), pgengine.New())
	if _, err := db.Keys("ghost"); !errors.Is(err, minidb.ErrNoTable) {
		t.Fatalf("Keys = %v, want ErrNoTable", err)
	}
}

func TestTxnUseAfterFinish(t *testing.T) {
	db := mustOpen(t, vfs.NewMemFS(), pgengine.New())
	if err := db.CreateTable("kv", 0); err != nil {
		t.Fatal(err)
	}
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Put("kv", []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Put("kv", []byte("k2"), []byte("v")); !errors.Is(err, minidb.ErrTxDone) {
		t.Fatalf("Put after commit = %v", err)
	}
	if _, err := tx.Get("kv", []byte("k")); !errors.Is(err, minidb.ErrTxDone) {
		t.Fatalf("Get after commit = %v", err)
	}
	if err := tx.Delete("kv", []byte("k")); !errors.Is(err, minidb.ErrTxDone) {
		t.Fatalf("Delete after commit = %v", err)
	}
}

func TestUpdateRollsBackOnError(t *testing.T) {
	db := mustOpen(t, vfs.NewMemFS(), pgengine.New())
	if err := db.CreateTable("kv", 0); err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("boom")
	err := db.Update(func(tx *minidb.Txn) error {
		if err := tx.Put("kv", []byte("k"), []byte("v")); err != nil {
			return err
		}
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Update = %v", err)
	}
	if _, err := db.Get("kv", []byte("k")); !errors.Is(err, minidb.ErrNotFound) {
		t.Fatalf("aborted write visible: %v", err)
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	db := mustOpen(t, vfs.NewMemFS(), pgengine.New())
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
	if err := db.Checkpoint(); !errors.Is(err, minidb.ErrClosed) {
		t.Fatalf("Checkpoint after Close = %v", err)
	}
}

func TestManyTablesManyKeys(t *testing.T) {
	fsys := vfs.NewMemFS()
	e := pgengine.NewWithSizes(1024, 64*1024, 1024)
	db, err := minidb.Open(fsys, e, minidb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const tables, keys = 8, 50
	for ti := 0; ti < tables; ti++ {
		table := fmt.Sprintf("t%02d", ti)
		if err := db.CreateTable(table, 8); err != nil {
			t.Fatal(err)
		}
		if err := db.Update(func(tx *minidb.Txn) error {
			for k := 0; k < keys; k++ {
				if err := tx.Put(table, []byte(fmt.Sprintf("k%03d", k)), []byte(table)); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Crash-recover and verify the whole matrix.
	db2, err := minidb.Open(fsys, e, minidb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for ti := 0; ti < tables; ti++ {
		table := fmt.Sprintf("t%02d", ti)
		got, err := db2.Keys(table)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != keys {
			t.Fatalf("%s has %d keys, want %d", table, len(got), keys)
		}
	}
}

func TestLastCheckpointAdvances(t *testing.T) {
	db := mustOpen(t, vfs.NewMemFS(), pgengine.New())
	if err := db.CreateTable("kv", 0); err != nil {
		t.Fatal(err)
	}
	put(t, db, "kv", "a", "1")
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	first := db.LastCheckpointLSN()
	put(t, db, "kv", "b", "2")
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if second := db.LastCheckpointLSN(); second <= first {
		t.Fatalf("checkpoint LSN did not advance: %d → %d", first, second)
	}
}

func TestScanByPrefix(t *testing.T) {
	db := mustOpen(t, vfs.NewMemFS(), pgengine.New())
	if err := db.CreateTable("kv", 0); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"a:1", "a:2", "b:1", "a:3", "c:9"} {
		put(t, db, "kv", k, "v-"+k)
	}
	got, err := db.Scan("kv", "a:")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("Scan(a:) = %d entries, want 3", len(got))
	}
	for i, kv := range got {
		want := fmt.Sprintf("a:%d", i+1)
		if kv.Key != want || string(kv.Value) != "v-"+want {
			t.Fatalf("entry %d = %q/%q", i, kv.Key, kv.Value)
		}
	}
	all, err := db.Scan("kv", "")
	if err != nil || len(all) != 5 {
		t.Fatalf("Scan(\"\") = %d, %v", len(all), err)
	}
	if _, err := db.Scan("ghost", ""); !errors.Is(err, minidb.ErrNoTable) {
		t.Fatalf("Scan(ghost) = %v", err)
	}
}
