package pgengine

import (
	"testing"

	"github.com/ginja-dr/ginja/internal/vfs"
)

func TestSegmentPathNaming(t *testing.T) {
	tests := []struct {
		idx  int64
		want string
	}{
		{0, "pg_xlog/000000010000000000000000"},
		{1, "pg_xlog/000000010000000000000001"},
		{1 << 32, "pg_xlog/000000010000000100000000"},
	}
	for _, tt := range tests {
		if got := SegmentPath(tt.idx); got != tt.want {
			t.Errorf("SegmentPath(%d) = %s, want %s", tt.idx, got, tt.want)
		}
	}
}

func TestControlFileRoundTrip(t *testing.T) {
	e := New()
	fsys := vfs.NewMemFS()
	lsn, err := e.ReadCheckpointLSN(fsys)
	if err != nil || lsn != 0 {
		t.Fatalf("fresh ReadCheckpointLSN = %d, %v; want 0, nil", lsn, err)
	}
	if err := e.CheckpointEnd(fsys, 123456, 1); err != nil {
		t.Fatal(err)
	}
	lsn, err = e.ReadCheckpointLSN(fsys)
	if err != nil || lsn != 123456 {
		t.Fatalf("ReadCheckpointLSN = %d, %v; want 123456", lsn, err)
	}
	// Overwrite with a newer checkpoint.
	if err := e.CheckpointEnd(fsys, 999999, 2); err != nil {
		t.Fatal(err)
	}
	lsn, err = e.ReadCheckpointLSN(fsys)
	if err != nil || lsn != 999999 {
		t.Fatalf("ReadCheckpointLSN = %d, %v; want 999999", lsn, err)
	}
}

func TestControlFileCorruptionDetected(t *testing.T) {
	e := New()
	fsys := vfs.NewMemFS()
	if err := e.CheckpointEnd(fsys, 42, 1); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the LSN field.
	data, err := vfs.ReadFile(fsys, ControlPath)
	if err != nil {
		t.Fatal(err)
	}
	data[10] ^= 0xFF
	if err := vfs.WriteFile(fsys, ControlPath, data); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ReadCheckpointLSN(fsys); err == nil {
		t.Fatal("corrupted pg_control accepted")
	}
}

func TestTableOfRoundTrip(t *testing.T) {
	e := New()
	p := e.DataPath("warehouse")
	name, ok := e.TableOf(p)
	if !ok || name != "warehouse" {
		t.Fatalf("TableOf(%s) = %q, %v", p, name, ok)
	}
	for _, bad := range []string{"pg_xlog/0001", "global/pg_control", "base/16384/sub/dir", "other"} {
		if _, ok := e.TableOf(bad); ok {
			t.Errorf("TableOf(%q) accepted a non-table path", bad)
		}
	}
}

func TestCheckpointBeginWritesCLog(t *testing.T) {
	e := New()
	fsys := vfs.NewMemFS()
	if err := e.CheckpointBegin(fsys, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.Stat(CLogPath); err != nil {
		t.Fatalf("pg_clog not written: %v", err)
	}
}
