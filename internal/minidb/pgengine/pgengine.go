// Package pgengine gives minidb a PostgreSQL-like I/O personality: 8 KiB
// WAL pages in 16 MiB pg_xlog segments, table files under base/, a
// pg_clog transaction-status write at the start of every (sharp)
// checkpoint, and a global/pg_control write pointing at the last
// checkpoint — the exact events Ginja's PostgreSQL processor detects
// (paper Table 1).
package pgengine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"strings"

	"github.com/ginja-dr/ginja/internal/minidb"
	"github.com/ginja-dr/ginja/internal/vfs"
	"github.com/ginja-dr/ginja/internal/wal"
)

// File-layout constants mirroring PostgreSQL 9.3.
const (
	// WALDir holds the log segments.
	WALDir = "pg_xlog"
	// CLogPath is the transaction-status file whose write marks the
	// beginning of a checkpoint.
	CLogPath = "pg_clog/0000"
	// ControlPath stores the pointer to the last checkpoint record; its
	// write marks the end of a checkpoint.
	ControlPath = "global/pg_control"
	// DataDir holds the table files.
	DataDir = "base/16384"

	// DefaultWALPageSize is PostgreSQL's 8 KiB WAL page.
	DefaultWALPageSize = 8 * 1024
	// DefaultSegmentSize is PostgreSQL's 16 MiB WAL segment.
	DefaultSegmentSize = 16 * 1024 * 1024
	// DefaultDataPageSize is PostgreSQL's 8 KiB heap page.
	DefaultDataPageSize = 8 * 1024
)

const (
	controlMagic = "PGCTRL01"
	controlSize  = 8 + 8 + 8 + 4 // magic, lsn, seq, crc
	clogPageSize = 256
)

// Engine implements minidb.Engine with PostgreSQL's write pattern.
type Engine struct {
	walPageSize  int
	segmentSize  int64
	dataPageSize int
}

var _ minidb.Engine = (*Engine)(nil)

// New returns an engine with PostgreSQL's real sizes.
func New() *Engine {
	return &Engine{
		walPageSize:  DefaultWALPageSize,
		segmentSize:  DefaultSegmentSize,
		dataPageSize: DefaultDataPageSize,
	}
}

// NewWithSizes returns an engine with custom geometry (tests use small
// segments to exercise multi-segment behaviour cheaply).
func NewWithSizes(walPageSize int, segmentSize int64, dataPageSize int) *Engine {
	return &Engine{walPageSize: walPageSize, segmentSize: segmentSize, dataPageSize: dataPageSize}
}

// Name implements minidb.Engine.
func (*Engine) Name() string { return "postgresql" }

// WALLayout implements minidb.Engine: linear segments named like
// PostgreSQL's 24-hex-digit segment files.
func (e *Engine) WALLayout() wal.Layout {
	return wal.Layout{
		PageSize:    e.walPageSize,
		SegmentSize: e.segmentSize,
		SegmentPath: SegmentPath,
	}
}

// SegmentPath names WAL segment idx the way PostgreSQL does
// (timeline 1, high/low split of the segment number).
func SegmentPath(idx int64) string {
	return fmt.Sprintf("%s/%08X%08X%08X", WALDir, 1, uint32(idx>>32), uint32(idx))
}

// PageSize implements minidb.Engine.
func (e *Engine) PageSize() int { return e.dataPageSize }

// DataPath implements minidb.Engine.
func (*Engine) DataPath(tableName string) string { return DataDir + "/" + tableName }

// TableOf implements minidb.Engine.
func (*Engine) TableOf(p string) (string, bool) {
	rest, ok := strings.CutPrefix(p, DataDir+"/")
	if !ok || rest == "" || strings.Contains(rest, "/") {
		return "", false
	}
	return rest, true
}

// CheckpointBegin implements minidb.Engine: a synchronous write to the
// pg_clog transaction-status file.
func (*Engine) CheckpointBegin(fsys vfs.FS, committedTx uint64) error {
	page := make([]byte, clogPageSize)
	binary.LittleEndian.PutUint64(page, committedTx)
	// The status page for the current transaction range, like pg_clog's
	// 256-byte granularity growth.
	off := int64(committedTx/1024) * clogPageSize
	return vfs.WriteAt(fsys, CLogPath, off, page)
}

// CheckpointEnd implements minidb.Engine: a synchronous write to
// global/pg_control recording the checkpoint record's LSN.
func (*Engine) CheckpointEnd(fsys vfs.FS, lsn int64, seq uint64) error {
	buf := make([]byte, controlSize)
	copy(buf, controlMagic)
	binary.LittleEndian.PutUint64(buf[8:16], uint64(lsn))
	binary.LittleEndian.PutUint64(buf[16:24], seq)
	crc := crc32.ChecksumIEEE(buf[:24])
	binary.LittleEndian.PutUint32(buf[24:28], crc)
	return vfs.WriteAt(fsys, ControlPath, 0, buf)
}

// ReadCheckpointLSN implements minidb.Engine.
func (*Engine) ReadCheckpointLSN(fsys vfs.FS) (int64, error) {
	f, err := fsys.OpenFile(ControlPath, os.O_RDONLY, 0)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()
	buf := make([]byte, controlSize)
	if _, err := f.ReadAt(buf, 0); err != nil && !errors.Is(err, io.EOF) {
		return 0, err
	}
	if string(buf[:8]) != controlMagic {
		return 0, fmt.Errorf("pgengine: bad pg_control magic")
	}
	if crc32.ChecksumIEEE(buf[:24]) != binary.LittleEndian.Uint32(buf[24:28]) {
		return 0, fmt.Errorf("pgengine: pg_control checksum mismatch")
	}
	return int64(binary.LittleEndian.Uint64(buf[8:16])), nil
}

// FlushBatchPages implements minidb.Engine: PostgreSQL checkpoints are
// sharp — everything is flushed in one pass.
func (*Engine) FlushBatchPages() int { return 0 }
