package minidb

import (
	"github.com/ginja-dr/ginja/internal/vfs"
	"github.com/ginja-dr/ginja/internal/wal"
)

// Engine defines a DBMS "personality": the file layout and checkpoint
// protocol minidb reproduces, so that the write pattern Ginja intercepts
// matches a real database (paper Table 1). Two implementations exist:
// pgengine (PostgreSQL-like) and innoengine (MySQL/InnoDB-like).
type Engine interface {
	// Name identifies the engine ("postgresql", "mysql").
	Name() string
	// WALLayout is the log geometry and segment naming.
	WALLayout() wal.Layout
	// PageSize is the data-page size (8 KiB for pg, 16 KiB for InnoDB).
	PageSize() int
	// DataPath maps a table name to its data file path.
	DataPath(table string) string
	// TableOf is the inverse of DataPath; ok is false for non-table paths.
	TableOf(path string) (table string, ok bool)
	// CheckpointBegin performs the engine-specific write that marks the
	// start of a checkpoint (pg: a pg_clog write). Engines whose begin is
	// implicit in the first data write (InnoDB) may do nothing.
	CheckpointBegin(fsys vfs.FS, committedTx uint64) error
	// CheckpointEnd durably records lsn as the new checkpoint location
	// (pg: global/pg_control; InnoDB: ib_logfile0 offsets 512/1536).
	CheckpointEnd(fsys vfs.FS, lsn int64, seq uint64) error
	// ReadCheckpointLSN returns the last recorded checkpoint location, or
	// (0, nil) when no checkpoint has ever completed.
	ReadCheckpointLSN(fsys vfs.FS) (int64, error)
	// FlushBatchPages is the number of dirty pages flushed per write+sync
	// batch during a checkpoint. 0 flushes everything in one pass (pg's
	// sharp checkpoint); a small value reproduces InnoDB's fuzzy
	// checkpoints that trickle pages out in small batches (§4).
	FlushBatchPages() int
}
