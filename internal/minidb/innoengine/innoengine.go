// Package innoengine gives minidb a MySQL/InnoDB-like I/O personality:
// 512-byte log blocks in a circular pair of ib_logfile0/ib_logfile1
// files, per-table .ibd data files flushed by fuzzy checkpoints in small
// batches, and checkpoint headers written alternately at offsets 512 and
// 1536 of ib_logfile0 — the events Ginja's MySQL processor detects (paper
// Table 1, including the "except the header of the ib_logfile0" footnote).
package innoengine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"strings"

	"github.com/ginja-dr/ginja/internal/minidb"
	"github.com/ginja-dr/ginja/internal/vfs"
	"github.com/ginja-dr/ginja/internal/wal"
)

// File-layout constants mirroring MySQL 5.7 / InnoDB.
const (
	// LogFile0 and LogFile1 are the circular redo-log pair.
	LogFile0 = "ib_logfile0"
	LogFile1 = "ib_logfile1"

	// HeaderSize is the reserved region at the head of each log file; the
	// two checkpoint blocks live inside it.
	HeaderSize = 2048
	// CheckpointOffset1 and CheckpointOffset2 are the alternating
	// checkpoint block locations in ib_logfile0.
	CheckpointOffset1 = 512
	CheckpointOffset2 = 1536

	// DefaultLogBlockSize is InnoDB's 512-byte log block.
	DefaultLogBlockSize = 512
	// DefaultLogFileSize is InnoDB's default 48 MiB per log file.
	DefaultLogFileSize = 48 * 1024 * 1024
	// DefaultDataPageSize is InnoDB's 16 KiB page.
	DefaultDataPageSize = 16 * 1024
	// DefaultFlushBatch is the fuzzy-checkpoint batch size in pages.
	DefaultFlushBatch = 8
)

const (
	checkpointMagic = "IBCKPT01"
	checkpointSize  = 8 + 8 + 8 + 4 // magic, seq, lsn, crc
)

// Engine implements minidb.Engine with InnoDB's write pattern.
type Engine struct {
	blockSize    int
	logFileSize  int64
	dataPageSize int
	flushBatch   int
}

var _ minidb.Engine = (*Engine)(nil)

// New returns an engine with InnoDB's real sizes.
func New() *Engine {
	return &Engine{
		blockSize:    DefaultLogBlockSize,
		logFileSize:  DefaultLogFileSize,
		dataPageSize: DefaultDataPageSize,
		flushBatch:   DefaultFlushBatch,
	}
}

// NewWithSizes returns an engine with custom geometry. Tests use small log
// files to force circular wrap-around and the checkpoint it requires.
func NewWithSizes(blockSize int, logFileSize int64, dataPageSize, flushBatch int) *Engine {
	return &Engine{
		blockSize:    blockSize,
		logFileSize:  logFileSize,
		dataPageSize: dataPageSize,
		flushBatch:   flushBatch,
	}
}

// Name implements minidb.Engine.
func (*Engine) Name() string { return "mysql" }

// WALLayout implements minidb.Engine: a circular pair of log files with a
// 2048-byte reserved header each.
func (e *Engine) WALLayout() wal.Layout {
	return wal.Layout{
		PageSize:    e.blockSize,
		SegmentSize: e.logFileSize,
		HeaderSize:  HeaderSize,
		Circular:    true,
		NumFiles:    2,
		SegmentPath: func(idx int64) string { return fmt.Sprintf("ib_logfile%d", idx) },
	}
}

// PageSize implements minidb.Engine.
func (e *Engine) PageSize() int { return e.dataPageSize }

// DataPath implements minidb.Engine: file-per-table .ibd files.
func (*Engine) DataPath(tableName string) string { return tableName + ".ibd" }

// TableOf implements minidb.Engine.
func (*Engine) TableOf(p string) (string, bool) {
	name, ok := strings.CutSuffix(p, ".ibd")
	if !ok || name == "" || strings.Contains(name, "/") {
		return "", false
	}
	return name, true
}

// CheckpointBegin implements minidb.Engine. InnoDB checkpoints are fuzzy:
// there is no dedicated begin write — the first data-file flush *is* the
// begin event (paper Table 1) — so this is a no-op.
func (*Engine) CheckpointBegin(vfs.FS, uint64) error { return nil }

// CheckpointEnd implements minidb.Engine: write the checkpoint block at
// offset 512 or 1536 of ib_logfile0, alternating by sequence number like
// real InnoDB.
func (*Engine) CheckpointEnd(fsys vfs.FS, lsn int64, seq uint64) error {
	buf := make([]byte, checkpointSize)
	copy(buf, checkpointMagic)
	binary.LittleEndian.PutUint64(buf[8:16], seq)
	binary.LittleEndian.PutUint64(buf[16:24], uint64(lsn))
	binary.LittleEndian.PutUint32(buf[24:28], crc32.ChecksumIEEE(buf[:24]))
	off := int64(CheckpointOffset1)
	if seq%2 == 1 {
		off = CheckpointOffset2
	}
	return vfs.WriteAt(fsys, LogFile0, off, buf)
}

// ReadCheckpointLSN implements minidb.Engine: read both checkpoint blocks
// and return the LSN of the one with the highest valid sequence number.
func (*Engine) ReadCheckpointLSN(fsys vfs.FS) (int64, error) {
	f, err := fsys.OpenFile(LogFile0, os.O_RDONLY, 0)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()
	bestSeq := uint64(0)
	bestLSN := int64(0)
	for _, off := range []int64{CheckpointOffset1, CheckpointOffset2} {
		buf := make([]byte, checkpointSize)
		if _, err := f.ReadAt(buf, off); err != nil && !errors.Is(err, io.EOF) {
			return 0, err
		}
		if string(buf[:8]) != checkpointMagic {
			continue
		}
		if crc32.ChecksumIEEE(buf[:24]) != binary.LittleEndian.Uint32(buf[24:28]) {
			continue
		}
		seq := binary.LittleEndian.Uint64(buf[8:16])
		if seq >= bestSeq {
			bestSeq = seq
			bestLSN = int64(binary.LittleEndian.Uint64(buf[16:24]))
		}
	}
	return bestLSN, nil
}

// FlushBatchPages implements minidb.Engine: fuzzy checkpoints flush dirty
// pages in small batches.
func (e *Engine) FlushBatchPages() int { return e.flushBatch }
