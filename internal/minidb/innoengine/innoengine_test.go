package innoengine

import (
	"testing"

	"github.com/ginja-dr/ginja/internal/vfs"
)

func TestCheckpointBlocksAlternate(t *testing.T) {
	e := New()
	fsys := vfs.NewMemFS()

	if err := e.CheckpointEnd(fsys, 1000, 1); err != nil { // odd seq → offset 1536
		t.Fatal(err)
	}
	if err := e.CheckpointEnd(fsys, 2000, 2); err != nil { // even seq → offset 512
		t.Fatal(err)
	}
	lsn, err := e.ReadCheckpointLSN(fsys)
	if err != nil || lsn != 2000 {
		t.Fatalf("ReadCheckpointLSN = %d, %v; want 2000 (highest seq wins)", lsn, err)
	}
	// A third checkpoint overwrites the *older* block; the newest must
	// still win.
	if err := e.CheckpointEnd(fsys, 3000, 3); err != nil {
		t.Fatal(err)
	}
	lsn, err = e.ReadCheckpointLSN(fsys)
	if err != nil || lsn != 3000 {
		t.Fatalf("ReadCheckpointLSN = %d, %v; want 3000", lsn, err)
	}
}

func TestFreshLogReadsZero(t *testing.T) {
	e := New()
	lsn, err := e.ReadCheckpointLSN(vfs.NewMemFS())
	if err != nil || lsn != 0 {
		t.Fatalf("fresh = %d, %v", lsn, err)
	}
}

func TestCorruptBlockIgnored(t *testing.T) {
	e := New()
	fsys := vfs.NewMemFS()
	if err := e.CheckpointEnd(fsys, 1000, 2); err != nil { // block at 512
		t.Fatal(err)
	}
	// Corrupt the block at 512; reader should fall back to zero since the
	// other block was never written.
	if err := vfs.WriteAt(fsys, LogFile0, CheckpointOffset1+8, []byte{0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	lsn, err := e.ReadCheckpointLSN(fsys)
	if err != nil || lsn != 0 {
		t.Fatalf("corrupt block not ignored: %d, %v", lsn, err)
	}
}

func TestWALLayoutGeometry(t *testing.T) {
	e := NewWithSizes(512, 2048+512*16, 1024, 4)
	l := e.WALLayout()
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if !l.Circular || l.NumFiles != 2 {
		t.Fatalf("layout = %+v, want circular pair", l)
	}
	p, off := l.Locate(0)
	if p != LogFile0 || off != HeaderSize {
		t.Fatalf("Locate(0) = %s, %d; log data must start after the header", p, off)
	}
}

func TestTableOfRoundTrip(t *testing.T) {
	e := New()
	p := e.DataPath("stock")
	if p != "stock.ibd" {
		t.Fatalf("DataPath = %s", p)
	}
	name, ok := e.TableOf(p)
	if !ok || name != "stock" {
		t.Fatalf("TableOf(%s) = %q, %v", p, name, ok)
	}
	for _, bad := range []string{"ib_logfile0", "ibdata1", "dir/t.ibd", ".ibd"} {
		if _, ok := e.TableOf(bad); ok {
			t.Errorf("TableOf(%q) accepted a non-table path", bad)
		}
	}
}
