package minidb_test

import (
	"fmt"
	"testing"

	"github.com/ginja-dr/ginja/internal/minidb"
	"github.com/ginja-dr/ginja/internal/minidb/innoengine"
	"github.com/ginja-dr/ginja/internal/minidb/pgengine"
	"github.com/ginja-dr/ginja/internal/vfs"
)

func benchEngines() map[string]func() minidb.Engine {
	return map[string]func() minidb.Engine{
		"postgresql": func() minidb.Engine { return pgengine.New() },
		"mysql":      func() minidb.Engine { return innoengine.New() },
	}
}

func BenchmarkCommit(b *testing.B) {
	for name, mk := range benchEngines() {
		b.Run(name, func(b *testing.B) {
			db, err := minidb.Open(vfs.NewMemFS(), mk(), minidb.Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			if err := db.CreateTable("kv", 256); err != nil {
				b.Fatal(err)
			}
			value := make([]byte, 128)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := db.Update(func(tx *minidb.Txn) error {
					return tx.Put("kv", []byte(fmt.Sprintf("key-%08d", i)), value)
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkGet(b *testing.B) {
	db, err := minidb.Open(vfs.NewMemFS(), pgengine.New(), minidb.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if err := db.CreateTable("kv", 256); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := db.Update(func(tx *minidb.Txn) error {
			return tx.Put("kv", []byte(fmt.Sprintf("key-%04d", i)), make([]byte, 128))
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Get("kv", []byte(fmt.Sprintf("key-%04d", i%1000))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckpoint(b *testing.B) {
	db, err := minidb.Open(vfs.NewMemFS(), pgengine.New(), minidb.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if err := db.CreateTable("kv", 256); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for k := 0; k < 100; k++ { // dirty 100 keys between checkpoints
			if err := db.Update(func(tx *minidb.Txn) error {
				return tx.Put("kv", []byte(fmt.Sprintf("key-%04d", k)), make([]byte, 128))
			}); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if err := db.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCrashRecovery(b *testing.B) {
	// 2000 committed updates after the last checkpoint; measure replay.
	fsys := vfs.NewMemFS()
	db, err := minidb.Open(fsys, pgengine.New(), minidb.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if err := db.CreateTable("kv", 256); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := db.Update(func(tx *minidb.Txn) error {
			return tx.Put("kv", []byte(fmt.Sprintf("key-%06d", i)), make([]byte, 64))
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db2, err := minidb.Open(fsys, pgengine.New(), minidb.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if db2.Stats().Tables != 1 {
			b.Fatal("table missing after recovery")
		}
	}
}
