package minidb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"io/fs"
	"os"
	"path"
	"sort"
	"sync"

	"github.com/ginja-dr/ginja/internal/vfs"
)

// Table file header (page 0) layout.
const (
	tableMagic      = "MDBTBL01"
	tableHeaderSize = 8 + 4 + 4 + 8 // magic, nBuckets, pageSize, nextPage
)

// DefaultBuckets is the bucket count used when a table is created without
// an explicit size hint.
const DefaultBuckets = 64

// table is one heap file of hash-bucketed slotted pages with overflow
// chains, kept memory-resident in a per-table buffer pool ("all the table
// pages remain in memory until a periodic checkpoint occurs", §4).
type table struct {
	name     string
	path     string
	pageSize int
	nBuckets uint32

	mu       sync.RWMutex
	nextPage uint64           // next free page id for overflow allocation
	pool     map[uint64]*page // buffer pool: pageID -> parsed page
	metaDirt bool             // header page needs rewriting
}

// createTable initialises a new table file with nBuckets hash buckets.
func createTable(fsys vfs.FS, name, filePath string, pageSize int, nBuckets uint32) (*table, error) {
	if nBuckets == 0 {
		nBuckets = DefaultBuckets
	}
	t := &table{
		name:     name,
		path:     filePath,
		pageSize: pageSize,
		nBuckets: nBuckets,
		nextPage: uint64(nBuckets) + 1, // page 0 is the header
		pool:     make(map[uint64]*page),
		metaDirt: true,
	}
	if dir := path.Dir(filePath); dir != "." && dir != "/" {
		if err := fsys.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("minidb: create table %s: %w", name, err)
		}
	}
	if err := t.writeHeader(fsys); err != nil {
		return nil, err
	}
	return t, nil
}

// openTable loads an existing table's header.
func openTable(fsys vfs.FS, name, filePath string, pageSize int) (*table, error) {
	f, err := fsys.OpenFile(filePath, os.O_RDONLY, 0)
	if err != nil {
		return nil, fmt.Errorf("minidb: open table %s: %w", name, err)
	}
	defer f.Close()
	hdr := make([]byte, tableHeaderSize)
	if _, err := f.ReadAt(hdr, 0); err != nil && !errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("minidb: read table header %s: %w", name, err)
	}
	if string(hdr[:8]) != tableMagic {
		return nil, fmt.Errorf("minidb: table %s: bad header magic", name)
	}
	gotPageSize := int(binary.LittleEndian.Uint32(hdr[12:16]))
	if gotPageSize != pageSize {
		return nil, fmt.Errorf("minidb: table %s: page size %d != engine page size %d",
			name, gotPageSize, pageSize)
	}
	return &table{
		name:     name,
		path:     filePath,
		pageSize: pageSize,
		nBuckets: binary.LittleEndian.Uint32(hdr[8:12]),
		nextPage: binary.LittleEndian.Uint64(hdr[16:24]),
		pool:     make(map[uint64]*page),
	}, nil
}

func (t *table) writeHeader(fsys vfs.FS) error {
	hdr := make([]byte, tableHeaderSize)
	copy(hdr, tableMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], t.nBuckets)
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(t.pageSize))
	binary.LittleEndian.PutUint64(hdr[16:24], t.nextPage)
	if err := vfs.WriteAt(fsys, t.path, 0, hdr); err != nil {
		return fmt.Errorf("minidb: write table header %s: %w", t.name, err)
	}
	t.metaDirt = false
	return nil
}

func (t *table) bucketOf(key []byte) uint64 {
	h := fnv.New32a()
	h.Write(key) //nolint:errcheck // fnv never fails
	return uint64(h.Sum32()%t.nBuckets) + 1
}

// pageOffset maps a page id to its byte offset in the table file. Page 0
// is the header; data pages start right after it, each pageSize bytes.
func (t *table) pageOffset(id uint64) int64 {
	return tableHeaderSize + int64(id-1)*int64(t.pageSize)
}

// loadPage returns the parsed page with the given id, reading it from the
// file on first access.
func (t *table) loadPage(fsys vfs.FS, id uint64) (*page, error) {
	if p, ok := t.pool[id]; ok {
		return p, nil
	}
	buf := make([]byte, t.pageSize)
	f, err := fsys.OpenFile(t.path, os.O_RDONLY, 0)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			p := newPage()
			t.pool[id] = p
			return p, nil
		}
		return nil, fmt.Errorf("minidb: load page %d of %s: %w", id, t.name, err)
	}
	_, rerr := f.ReadAt(buf, t.pageOffset(id))
	f.Close()
	if rerr != nil && !errors.Is(rerr, io.EOF) {
		return nil, fmt.Errorf("minidb: load page %d of %s: %w", id, t.name, rerr)
	}
	p, err := parsePage(buf)
	if err != nil {
		return nil, fmt.Errorf("minidb: page %d of %s: %w", id, t.name, err)
	}
	t.pool[id] = p
	return p, nil
}

// get returns the value for key, walking the bucket's overflow chain.
func (t *table) get(fsys vfs.FS, key []byte) ([]byte, bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.bucketOf(key)
	for id != noOverflow && id != 0 {
		p, err := t.loadPage(fsys, id)
		if err != nil {
			return nil, false, err
		}
		if v, ok := p.entries[string(key)]; ok {
			return append([]byte(nil), v...), true, nil
		}
		id = p.overflow
	}
	return nil, false, nil
}

// put inserts or updates key in the buffer pool, spilling to overflow
// pages as needed. Pages touched are marked dirty; nothing hits the file
// until the next checkpoint.
func (t *table) put(fsys vfs.FS, key, value []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.bucketOf(key)
	for {
		p, err := t.loadPage(fsys, id)
		if err != nil {
			return err
		}
		_, present := p.entries[string(key)]
		if present || p.overflow == noOverflow {
			p.entries[string(key)] = append([]byte(nil), value...)
			p.dirty = true
			if !p.fits(t.pageSize) {
				return t.spill(fsys, p)
			}
			return nil
		}
		id = p.overflow
	}
}

// spill moves entries out of an overfull page into a fresh overflow page
// appended to the chain.
func (t *table) spill(fsys vfs.FS, p *page) error {
	for !p.fits(t.pageSize) {
		// Allocate (or reuse) an overflow page and move entries until the
		// page fits. Move the largest entries first for fewer hops.
		ovID := p.overflow
		var ov *page
		if ovID == noOverflow {
			ovID = t.nextPage
			t.nextPage++
			t.metaDirt = true
			ov = newPage()
			t.pool[ovID] = ov
			p.overflow = ovID
		} else {
			var err error
			ov, err = t.loadPage(fsys, ovID)
			if err != nil {
				return err
			}
		}
		moved := false
		for k, v := range p.entries {
			if p.fits(t.pageSize) {
				break
			}
			entrySize := entryHeader + len(k) + len(v)
			if ov.byteSize()+entrySize > t.pageSize {
				continue
			}
			ov.entries[k] = v
			ov.dirty = true
			delete(p.entries, k)
			moved = true
		}
		if !moved {
			if len(p.entries) == 1 && p.byteSize() > t.pageSize {
				return fmt.Errorf("minidb: entry larger than page size %d in table %s", t.pageSize, t.name)
			}
			// The existing overflow page is full too: push down the chain
			// by spilling into *its* overflow.
			if err := t.spill(fsys, ov); err != nil {
				return err
			}
		}
	}
	p.dirty = true
	return nil
}

// delete removes key; returns whether it existed.
func (t *table) delete(fsys vfs.FS, key []byte) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.bucketOf(key)
	for id != noOverflow && id != 0 {
		p, err := t.loadPage(fsys, id)
		if err != nil {
			return false, err
		}
		if _, ok := p.entries[string(key)]; ok {
			delete(p.entries, string(key))
			p.dirty = true
			return true, nil
		}
		id = p.overflow
	}
	return false, nil
}

// dirtyPages returns the ids of pages (plus the header if meta changed)
// that need flushing, sorted ascending for a sequential write pattern.
func (t *table) dirtyPages() []uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var ids []uint64
	for id, p := range t.pool {
		if p.dirty {
			ids = append(ids, id)
		}
	}
	sortUint64(ids)
	return ids
}

// flushPages writes the given pages to the table file (without syncing;
// the caller syncs once per batch) and clears their dirty bits.
func (t *table) flushPages(fsys vfs.FS, f vfs.File, ids []uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.metaDirt {
		hdr := make([]byte, tableHeaderSize)
		copy(hdr, tableMagic)
		binary.LittleEndian.PutUint32(hdr[8:12], t.nBuckets)
		binary.LittleEndian.PutUint32(hdr[12:16], uint32(t.pageSize))
		binary.LittleEndian.PutUint64(hdr[16:24], t.nextPage)
		if _, err := f.WriteAt(hdr, 0); err != nil {
			return fmt.Errorf("minidb: flush header of %s: %w", t.name, err)
		}
		t.metaDirt = false
	}
	for _, id := range ids {
		p, ok := t.pool[id]
		if !ok || !p.dirty {
			continue
		}
		buf, err := p.serialize(t.pageSize)
		if err != nil {
			return fmt.Errorf("minidb: flush page %d of %s: %w", id, t.name, err)
		}
		if _, err := f.WriteAt(buf, t.pageOffset(id)); err != nil {
			return fmt.Errorf("minidb: flush page %d of %s: %w", id, t.name, err)
		}
		p.dirty = false
	}
	return nil
}

// keys returns every key in the table (scanning pool + file pages).
func (t *table) keys(fsys vfs.FS) ([]string, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	seen := make(map[string]struct{})
	for id := uint64(1); id <= uint64(t.nBuckets); id++ {
		cur := id
		for cur != noOverflow && cur != 0 {
			p, err := t.loadPage(fsys, cur)
			if err != nil {
				return nil, err
			}
			for k := range p.entries {
				seen[k] = struct{}{}
			}
			cur = p.overflow
		}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sortStrings(out)
	return out, nil
}

func sortUint64(s []uint64) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

func sortStrings(s []string) { sort.Strings(s) }
