// Package minidb implements the embedded transactional database engine
// Ginja protects in this reproduction. It follows the model the paper
// assumes of PostgreSQL and MySQL (§4): durability comes from synchronous
// page-granular writes to a write-ahead log at commit time; table pages
// stay in memory until a periodic checkpoint writes them to the table
// files and stamps a checkpoint marker; crash recovery replays the WAL
// from the last checkpoint.
//
// The engine is redo-only (a "no-steal" buffer policy: only committed data
// ever reaches a table page), so recovery is a single forward replay.
package minidb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Page layout constants.
const (
	pageMagic      = 0xB0D1
	pageHeaderSize = 2 + 2 + 4 + 8 // magic, nEntries, used, overflow page id
	entryHeader    = 2 + 4         // keyLen, valueLen
	// noOverflow marks the end of a bucket's overflow chain.
	noOverflow = ^uint64(0)
)

// errPageFull reports that a serialized page exceeds the page size; the
// caller must spill entries to an overflow page.
var errPageFull = errors.New("minidb: page full")

// page is the in-memory (parsed) form of one slotted data page. Entries
// live in a map; serialization is deterministic (sorted by key).
type page struct {
	entries  map[string][]byte
	overflow uint64 // next page in the bucket chain, or noOverflow
	dirty    bool
}

func newPage() *page {
	return &page{entries: make(map[string][]byte), overflow: noOverflow}
}

// fits reports whether the page would serialize within size bytes.
func (p *page) fits(size int) bool { return p.byteSize() <= size }

func (p *page) byteSize() int {
	n := pageHeaderSize
	for k, v := range p.entries {
		n += entryHeader + len(k) + len(v)
	}
	return n
}

// serialize renders the page into a buffer of exactly size bytes.
func (p *page) serialize(size int) ([]byte, error) {
	if !p.fits(size) {
		return nil, fmt.Errorf("%w: %d bytes into %d-byte page", errPageFull, p.byteSize(), size)
	}
	buf := make([]byte, size)
	binary.LittleEndian.PutUint16(buf[0:2], pageMagic)
	binary.LittleEndian.PutUint16(buf[2:4], uint16(len(p.entries)))
	binary.LittleEndian.PutUint64(buf[8:16], p.overflow)
	keys := make([]string, 0, len(p.entries))
	for k := range p.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	off := pageHeaderSize
	for _, k := range keys {
		v := p.entries[k]
		binary.LittleEndian.PutUint16(buf[off:off+2], uint16(len(k)))
		binary.LittleEndian.PutUint32(buf[off+2:off+6], uint32(len(v)))
		off += entryHeader
		copy(buf[off:], k)
		off += len(k)
		copy(buf[off:], v)
		off += len(v)
	}
	binary.LittleEndian.PutUint32(buf[4:8], uint32(off))
	return buf, nil
}

// parsePage decodes a serialized page. An all-zero buffer (a never-written
// page) parses as an empty page.
func parsePage(buf []byte) (*page, error) {
	p := newPage()
	if len(buf) < pageHeaderSize {
		return nil, fmt.Errorf("minidb: page buffer too small (%d bytes)", len(buf))
	}
	magic := binary.LittleEndian.Uint16(buf[0:2])
	if magic == 0 {
		return p, nil // fresh page
	}
	if magic != pageMagic {
		return nil, fmt.Errorf("minidb: bad page magic %#x", magic)
	}
	n := int(binary.LittleEndian.Uint16(buf[2:4]))
	used := int(binary.LittleEndian.Uint32(buf[4:8]))
	p.overflow = binary.LittleEndian.Uint64(buf[8:16])
	if used > len(buf) {
		return nil, fmt.Errorf("minidb: page used %d exceeds page size %d", used, len(buf))
	}
	off := pageHeaderSize
	for i := 0; i < n; i++ {
		if off+entryHeader > used {
			return nil, errors.New("minidb: truncated page entry header")
		}
		kl := int(binary.LittleEndian.Uint16(buf[off : off+2]))
		vl := int(binary.LittleEndian.Uint32(buf[off+2 : off+6]))
		off += entryHeader
		if off+kl+vl > used {
			return nil, errors.New("minidb: truncated page entry payload")
		}
		k := string(buf[off : off+kl])
		off += kl
		v := append([]byte(nil), buf[off:off+vl]...)
		off += vl
		p.entries[k] = v
	}
	return p, nil
}
