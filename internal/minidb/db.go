package minidb

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"

	"github.com/ginja-dr/ginja/internal/vfs"
	"github.com/ginja-dr/ginja/internal/wal"
)

// Common errors.
var (
	ErrClosed   = errors.New("minidb: database is closed")
	ErrTxDone   = errors.New("minidb: transaction already finished")
	ErrNoTable  = errors.New("minidb: table does not exist")
	ErrNotFound = errors.New("minidb: key not found")
)

// Options tunes a DB instance.
type Options struct {
	// AutoCheckpointCommits triggers a checkpoint every N commits
	// (0 disables; checkpoints then happen only via Checkpoint or when a
	// circular log nears its capacity).
	AutoCheckpointCommits int
	// DefaultBuckets is the hash-bucket count for tables created without
	// an explicit hint.
	DefaultBuckets uint32
}

// Stats reports cumulative engine activity.
type Stats struct {
	Commits     uint64
	Checkpoints uint64
	Tables      int
}

// DB is the embedded transactional database. All I/O flows through the
// vfs.FS it was opened with, which is how Ginja observes it.
type DB struct {
	fs     vfs.FS
	engine Engine
	opts   Options

	mu          sync.Mutex
	walW        *wal.Writer
	tables      map[string]*table
	nextTx      uint64
	lastCkptLSN int64
	ckptSeq     uint64
	commits     uint64
	checkpoints uint64
	sinceCkpt   int
	closed      bool
}

// Open opens (or creates) a database on fsys with the given engine
// personality. It always runs crash recovery: it reads the engine's
// control information for the last checkpoint location and replays every
// committed transaction the WAL holds after it — which is exactly the
// procedure a Ginja-recovered file set is designed to satisfy (§4).
func Open(fsys vfs.FS, engine Engine, opts Options) (*DB, error) {
	if opts.DefaultBuckets == 0 {
		opts.DefaultBuckets = DefaultBuckets
	}
	db := &DB{
		fs:     fsys,
		engine: engine,
		opts:   opts,
		tables: make(map[string]*table),
		nextTx: 1,
	}
	if err := db.discoverTables(); err != nil {
		return nil, err
	}
	ckptLSN, err := engine.ReadCheckpointLSN(fsys)
	if err != nil {
		return nil, fmt.Errorf("minidb: read checkpoint: %w", err)
	}
	db.lastCkptLSN = ckptLSN
	recs, endLSN, err := wal.ReadFrom(fsys, engine.WALLayout(), ckptLSN)
	if err != nil {
		return nil, fmt.Errorf("minidb: scan wal: %w", err)
	}
	if err := db.replay(recs); err != nil {
		return nil, err
	}
	w, err := wal.NewWriter(fsys, engine.WALLayout(), endLSN)
	if err != nil {
		return nil, err
	}
	db.walW = w
	return db, nil
}

// discoverTables opens every data file the engine recognises.
func (db *DB) discoverTables() error {
	files, err := vfs.Walk(db.fs, "")
	if err != nil {
		return fmt.Errorf("minidb: discover tables: %w", err)
	}
	for _, p := range files {
		name, ok := db.engine.TableOf(p)
		if !ok {
			continue
		}
		t, err := openTable(db.fs, name, p, db.engine.PageSize())
		if err != nil {
			return err
		}
		db.tables[name] = t
	}
	return nil
}

// replay applies the committed suffix of the WAL to the buffer pools.
// Uncommitted transactions are discarded (no-steal policy means their
// writes never reached the table files).
func (db *DB) replay(recs []wal.Record) error {
	committed := make(map[uint64]bool)
	maxTx := uint64(0)
	for _, r := range recs {
		if r.TxID > maxTx {
			maxTx = r.TxID
		}
		if r.Type == wal.RecordCommit {
			committed[r.TxID] = true
		}
	}
	for _, r := range recs {
		if !committed[r.TxID] {
			continue
		}
		switch r.Type {
		case wal.RecordUpdate:
			t, err := db.ensureTable(r.Table)
			if err != nil {
				return err
			}
			if err := t.put(db.fs, r.Key, r.Value); err != nil {
				return fmt.Errorf("minidb: replay update: %w", err)
			}
		case wal.RecordDelete:
			t, err := db.ensureTable(r.Table)
			if err != nil {
				return err
			}
			if _, err := t.delete(db.fs, r.Key); err != nil {
				return fmt.Errorf("minidb: replay delete: %w", err)
			}
		}
	}
	db.nextTx = maxTx + 1
	return nil
}

func (db *DB) ensureTable(name string) (*table, error) {
	if t, ok := db.tables[name]; ok {
		return t, nil
	}
	t, err := createTable(db.fs, name, db.engine.DataPath(name), db.engine.PageSize(), db.opts.DefaultBuckets)
	if err != nil {
		return nil, err
	}
	db.tables[name] = t
	return t, nil
}

// Engine returns the DBMS personality this database runs with.
func (db *DB) Engine() Engine { return db.engine }

// CreateTable creates a table with the given hash-bucket count (0 uses the
// default). Creating an existing table is a no-op.
func (db *DB) CreateTable(name string, buckets uint32) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if _, ok := db.tables[name]; ok {
		return nil
	}
	if buckets == 0 {
		buckets = db.opts.DefaultBuckets
	}
	t, err := createTable(db.fs, name, db.engine.DataPath(name), db.engine.PageSize(), buckets)
	if err != nil {
		return err
	}
	db.tables[name] = t
	return nil
}

// Tables returns the sorted table names.
func (db *DB) Tables() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sortStrings(names)
	return names
}

// Get reads a key outside any transaction (read committed).
func (db *DB) Get(tableName string, key []byte) ([]byte, error) {
	db.mu.Lock()
	t, ok := db.tables[tableName]
	db.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	v, found, err := t.get(db.fs, key)
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, fmt.Errorf("get %s/%q: %w", tableName, key, ErrNotFound)
	}
	return v, nil
}

// Keys lists every key of a table.
func (db *DB) Keys(tableName string) ([]string, error) {
	db.mu.Lock()
	t, ok := db.tables[tableName]
	db.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	return t.keys(db.fs)
}

// KV is one key/value pair returned by Scan.
type KV struct {
	Key   string
	Value []byte
}

// Scan returns every entry whose key starts with prefix, sorted by key.
// It reads committed state (like Get).
func (db *DB) Scan(tableName, prefix string) ([]KV, error) {
	db.mu.Lock()
	t, ok := db.tables[tableName]
	db.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	keys, err := t.keys(db.fs)
	if err != nil {
		return nil, err
	}
	var out []KV
	for _, k := range keys {
		if !strings.HasPrefix(k, prefix) {
			continue
		}
		v, found, err := t.get(db.fs, []byte(k))
		if err != nil {
			return nil, err
		}
		if !found {
			continue // deleted concurrently
		}
		out = append(out, KV{Key: k, Value: v})
	}
	return out, nil
}

// Begin starts a transaction.
func (db *DB) Begin() (*Txn, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, ErrClosed
	}
	id := db.nextTx
	db.nextTx++
	return &Txn{db: db, id: id}, nil
}

// Update runs fn inside a transaction, committing when fn returns nil.
func (db *DB) Update(fn func(tx *Txn) error) error {
	tx, err := db.Begin()
	if err != nil {
		return err
	}
	if err := fn(tx); err != nil {
		tx.Rollback()
		return err
	}
	return tx.Commit()
}

// commit serializes the transaction's writes into the WAL (one durable
// flush — "the only important I/O performed is a synchronous write to a
// WAL file segment", §4), then applies them to the buffer pools.
func (db *DB) commit(tx *Txn) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	for _, w := range tx.writes {
		typ := wal.RecordUpdate
		if w.del {
			typ = wal.RecordDelete
		}
		rec := wal.Record{Type: typ, TxID: tx.id, Table: w.table, Key: w.key, Value: w.value}
		if _, err := db.walW.Append(rec); err != nil {
			return err
		}
	}
	if _, err := db.walW.Append(wal.Record{Type: wal.RecordCommit, TxID: tx.id}); err != nil {
		return err
	}
	if err := db.walW.Flush(); err != nil {
		return err
	}
	for _, w := range tx.writes {
		t, err := db.ensureTable(w.table)
		if err != nil {
			return err
		}
		if w.del {
			if _, err := t.delete(db.fs, w.key); err != nil {
				return err
			}
		} else if err := t.put(db.fs, w.key, w.value); err != nil {
			return err
		}
	}
	db.commits++
	db.sinceCkpt++
	return db.maybeCheckpointLocked()
}

// maybeCheckpointLocked triggers a checkpoint when the auto-checkpoint
// threshold is reached or a circular log is running out of reusable space
// (InnoDB forces a checkpoint rather than overwrite un-checkpointed log).
func (db *DB) maybeCheckpointLocked() error {
	layout := db.engine.WALLayout()
	if layout.Circular {
		used := db.walW.AppendLSN() - db.lastCkptLSN
		if used > layout.Capacity()*7/10 {
			return db.checkpointLocked()
		}
	}
	if db.opts.AutoCheckpointCommits > 0 && db.sinceCkpt >= db.opts.AutoCheckpointCommits {
		return db.checkpointLocked()
	}
	return nil
}

// Checkpoint flushes every dirty page to the table files and durably
// records the new checkpoint location via the engine's protocol.
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	return db.checkpointLocked()
}

func (db *DB) checkpointLocked() error {
	// 1. Engine-specific begin marker (pg: pg_clog write).
	if err := db.engine.CheckpointBegin(db.fs, db.nextTx); err != nil {
		return fmt.Errorf("minidb: checkpoint begin: %w", err)
	}
	// 2. Flush dirty pages, in engine-sized batches (sharp vs fuzzy).
	batch := db.engine.FlushBatchPages()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sortStrings(names)
	for _, name := range names {
		t := db.tables[name]
		ids := t.dirtyPages()
		if len(ids) == 0 && !t.metaDirt {
			continue
		}
		f, err := db.fs.OpenFile(t.path, os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			return fmt.Errorf("minidb: checkpoint open %s: %w", t.path, err)
		}
		for start := 0; start < len(ids) || start == 0; {
			end := len(ids)
			if batch > 0 && start+batch < end {
				end = start + batch
			}
			if err := t.flushPages(db.fs, f, ids[start:end]); err != nil {
				f.Close()
				return err
			}
			if err := f.Sync(); err != nil {
				f.Close()
				return fmt.Errorf("minidb: checkpoint sync %s: %w", t.path, err)
			}
			start = end
			if len(ids) == 0 {
				break
			}
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("minidb: checkpoint close %s: %w", t.path, err)
		}
	}
	// 3. Stamp the WAL with a checkpoint record.
	lsn, err := db.walW.Append(wal.Record{Type: wal.RecordCheckpoint})
	if err != nil {
		return err
	}
	if err := db.walW.Flush(); err != nil {
		return err
	}
	// 4. Engine-specific end marker pointing recovery at the record.
	db.ckptSeq++
	if err := db.engine.CheckpointEnd(db.fs, lsn, db.ckptSeq); err != nil {
		return fmt.Errorf("minidb: checkpoint end: %w", err)
	}
	db.lastCkptLSN = lsn
	db.checkpoints++
	db.sinceCkpt = 0
	return nil
}

// Stats returns cumulative counters.
func (db *DB) Stats() Stats {
	db.mu.Lock()
	defer db.mu.Unlock()
	return Stats{Commits: db.commits, Checkpoints: db.checkpoints, Tables: len(db.tables)}
}

// LastCheckpointLSN returns the location recovery would start from.
func (db *DB) LastCheckpointLSN() int64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.lastCkptLSN
}

// Close checkpoints (making shutdown "safe" in the paper's Reboot sense)
// and releases the WAL writer.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	if err := db.checkpointLocked(); err != nil {
		return err
	}
	db.closed = true
	return db.walW.Close()
}

// Txn is a read-your-writes transaction. Writes are buffered privately and
// reach the WAL only on Commit (redo-only logging).
type Txn struct {
	db     *DB
	id     uint64
	writes []txWrite
	done   bool
}

type txWrite struct {
	table string
	key   []byte
	value []byte
	del   bool
}

// ID returns the transaction id.
func (tx *Txn) ID() uint64 { return tx.id }

// Put buffers an upsert of key into table.
func (tx *Txn) Put(table string, key, value []byte) error {
	if tx.done {
		return ErrTxDone
	}
	tx.writes = append(tx.writes, txWrite{
		table: table,
		key:   append([]byte(nil), key...),
		value: append([]byte(nil), value...),
	})
	return nil
}

// Delete buffers a deletion of key from table.
func (tx *Txn) Delete(table string, key []byte) error {
	if tx.done {
		return ErrTxDone
	}
	tx.writes = append(tx.writes, txWrite{table: table, key: append([]byte(nil), key...), del: true})
	return nil
}

// Get reads a key, observing the transaction's own buffered writes first.
func (tx *Txn) Get(table string, key []byte) ([]byte, error) {
	if tx.done {
		return nil, ErrTxDone
	}
	for i := len(tx.writes) - 1; i >= 0; i-- {
		w := tx.writes[i]
		if w.table == table && string(w.key) == string(key) {
			if w.del {
				return nil, fmt.Errorf("get %s/%q: %w", table, key, ErrNotFound)
			}
			return append([]byte(nil), w.value...), nil
		}
	}
	return tx.db.Get(table, key)
}

// Commit makes the transaction durable. An empty transaction commits
// without touching the log.
func (tx *Txn) Commit() error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	if len(tx.writes) == 0 {
		return nil
	}
	return tx.db.commit(tx)
}

// Rollback abandons the transaction. Buffered writes are discarded.
func (tx *Txn) Rollback() {
	tx.done = true
	tx.writes = nil
}
