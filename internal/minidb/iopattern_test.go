package minidb_test

import (
	"strings"
	"sync"
	"testing"

	"github.com/ginja-dr/ginja/internal/minidb"
	"github.com/ginja-dr/ginja/internal/minidb/innoengine"
	"github.com/ginja-dr/ginja/internal/minidb/pgengine"
	"github.com/ginja-dr/ginja/internal/vfs"
)

// syncCounter tallies fsyncs per file class.
type syncCounter struct {
	vfs.NopObserver

	mu        sync.Mutex
	walSyncs  int
	dataSyncs int
	isWAL     func(string) bool
}

func (c *syncCounter) OnSync(path string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.isWAL(path) {
		c.walSyncs++
	} else {
		c.dataSyncs++
	}
}

// TestCommitSyncsExactlyOneWALFile verifies the I/O discipline the paper
// relies on (§4): "Every time a transaction is committed, the only
// important I/O performed is a synchronous write to a WAL file segment.
// All the table pages remain in memory until a periodic checkpoint."
func TestCommitSyncsExactlyOneWALFile(t *testing.T) {
	cases := []struct {
		name   string
		engine minidb.Engine
		isWAL  func(string) bool
	}{
		{"postgresql", pgengine.NewWithSizes(1024, 64*1024, 1024),
			func(p string) bool { return strings.HasPrefix(p, "pg_xlog/") }},
		{"mysql", innoengine.NewWithSizes(512, 2048+512*1024, 1024, 4),
			func(p string) bool { return strings.HasPrefix(p, "ib_logfile") }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			counter := &syncCounter{isWAL: tc.isWAL}
			fsys := vfs.NewInterceptFS(vfs.NewMemFS(), counter)
			db, err := minidb.Open(fsys, tc.engine, minidb.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := db.CreateTable("kv", 8); err != nil {
				t.Fatal(err)
			}
			counter.mu.Lock()
			counter.walSyncs, counter.dataSyncs = 0, 0
			counter.mu.Unlock()

			const commits = 25
			for i := 0; i < commits; i++ {
				if err := db.Update(func(tx *minidb.Txn) error {
					return tx.Put("kv", []byte{byte(i)}, []byte("value"))
				}); err != nil {
					t.Fatal(err)
				}
			}
			counter.mu.Lock()
			wal, data := counter.walSyncs, counter.dataSyncs
			counter.mu.Unlock()
			if wal != commits {
				t.Fatalf("WAL syncs = %d for %d commits, want exactly one each", wal, commits)
			}
			if data != 0 {
				t.Fatalf("%d data-file syncs before any checkpoint; pages must stay in memory", data)
			}

			// The checkpoint is where data files finally sync.
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			counter.mu.Lock()
			data = counter.dataSyncs
			counter.mu.Unlock()
			if data == 0 {
				t.Fatal("checkpoint synced no data files")
			}
		})
	}
}
