package baselines

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/core"
	"github.com/ginja-dr/ginja/internal/dbevent"
	"github.com/ginja-dr/ginja/internal/vfs"
)

// segPrefix names archived WAL segments: ARCH/<n>_<path>.
const segPrefix = "ARCH/"

// SegmentArchiver is the Continuous-Archiving strategy (paper §9): it
// observes the database's writes like Ginja does, but only ships a WAL
// segment once the database moves on to the *next* segment — exactly the
// granularity of PostgreSQL's archiver process. Combine it with an
// initial SnapshotBackup base backup.
//
// Use FS() for the database, like Ginja's.
type SegmentArchiver struct {
	localFS vfs.FS
	store   cloud.ObjectStore
	proc    dbevent.Processor

	mu         sync.Mutex
	currentSeg string
	archived   map[string]bool
	seq        int64
	errs       []error
}

var _ vfs.Observer = (*SegmentArchiver)(nil)

// NewSegmentArchiver builds an archiver for the database in localFS.
func NewSegmentArchiver(localFS vfs.FS, store cloud.ObjectStore, proc dbevent.Processor) *SegmentArchiver {
	return &SegmentArchiver{
		localFS:  localFS,
		store:    store,
		proc:     proc,
		archived: make(map[string]bool),
	}
}

// FS returns the interposed file system the database must be opened on.
func (a *SegmentArchiver) FS() vfs.FS { return vfs.NewInterceptFS(a.localFS, a) }

// OnBeforeWrite implements vfs.Observer (the archiver never holds writes
// back).
func (a *SegmentArchiver) OnBeforeWrite(string, int64, []byte) {}

// OnWrite implements vfs.Observer: a write to a WAL file different from
// the current one means the previous segment completed — archive it.
func (a *SegmentArchiver) OnWrite(path string, off int64, data []byte) {
	if a.proc.FileKind(path) != dbevent.KindWAL {
		return
	}
	a.mu.Lock()
	prev := a.currentSeg
	a.currentSeg = path
	shouldArchive := prev != "" && prev != path && !a.archived[prev]
	if shouldArchive {
		a.archived[prev] = true
		a.seq++
	}
	seq := a.seq
	a.mu.Unlock()
	if !shouldArchive {
		return
	}
	// Synchronous, like archive_command: the segment is fully written
	// and will not change again (PostgreSQL recycles, it never rewrites
	// a completed segment in place).
	if err := a.archiveSegment(context.Background(), prev, seq); err != nil {
		a.mu.Lock()
		a.errs = append(a.errs, err)
		a.mu.Unlock()
	}
}

// OnSync implements vfs.Observer.
func (a *SegmentArchiver) OnSync(string) {}

// OnTruncate implements vfs.Observer.
func (a *SegmentArchiver) OnTruncate(string, int64) {}

// OnRemove implements vfs.Observer.
func (a *SegmentArchiver) OnRemove(string) {}

// Err returns the first archiving failure, if any.
func (a *SegmentArchiver) Err() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.errs) == 0 {
		return nil
	}
	return a.errs[0]
}

// ArchivedSegments returns how many segments were shipped.
func (a *SegmentArchiver) ArchivedSegments() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.seq
}

func (a *SegmentArchiver) archiveSegment(ctx context.Context, path string, seq int64) error {
	content, err := vfs.ReadFile(a.localFS, path)
	if err != nil {
		return fmt.Errorf("baselines: archive read %s: %w", path, err)
	}
	name := fmt.Sprintf("%s%d_%s", segPrefix, seq, path)
	payload := core.EncodeWrites([]core.FileWrite{{Path: path, Data: content, Whole: true}})
	if err := a.store.Put(ctx, name, payload); err != nil {
		return fmt.Errorf("baselines: archive upload %s: %w", name, err)
	}
	return nil
}

// Restore rebuilds target from the base backup plus every archived
// segment, in archive order.
func (a *SegmentArchiver) Restore(ctx context.Context, base *SnapshotBackup, target vfs.FS) error {
	if err := base.Restore(ctx, target); err != nil {
		return err
	}
	infos, err := a.store.List(ctx, segPrefix)
	if err != nil {
		return fmt.Errorf("baselines: restore list: %w", err)
	}
	type seg struct {
		seq  int64
		name string
	}
	var segs []seg
	for _, info := range infos {
		rest := strings.TrimPrefix(info.Name, segPrefix)
		i := strings.IndexByte(rest, '_')
		if i < 0 {
			continue
		}
		var n int64
		if _, err := fmt.Sscanf(rest[:i], "%d", &n); err != nil {
			continue
		}
		segs = append(segs, seg{seq: n, name: info.Name})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	for _, s := range segs {
		data, err := a.store.Get(ctx, s.name)
		if err != nil {
			return fmt.Errorf("baselines: restore %s: %w", s.name, err)
		}
		writes, err := core.DecodeWrites(data)
		if err != nil {
			return fmt.Errorf("baselines: %s corrupt: %w", s.name, err)
		}
		for _, w := range writes {
			if err := vfs.WriteFile(target, w.Path, w.Data); err != nil {
				return err
			}
		}
	}
	return nil
}
