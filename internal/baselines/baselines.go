// Package baselines implements the two classical disaster-recovery
// strategies the paper positions Ginja against (§2 and §9):
//
//   - SnapshotBackup — the "Backup and Restore" strategy: periodically
//     upload a full, consistent copy of the database directory. Cheap,
//     but the recovery point is the age of the last snapshot.
//
//   - SegmentArchiver — PostgreSQL-style "Continuous Archiving" (§9): a
//     base backup plus every *completed* WAL segment, shipped when the
//     database switches to a new segment. Better than snapshots, but the
//     recovery point is still up to one whole WAL segment ("the archiver
//     process only operates over completed WAL segments, and thus it does
//     not provide any fine-grained control over the RPO").
//
// They exist so experiments can quantify Ginja's RPO advantage at
// comparable cloud cost (see the comparison tests and benchmarks).
package baselines

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/core"
	"github.com/ginja-dr/ginja/internal/dbevent"
	"github.com/ginja-dr/ginja/internal/vfs"
)

// snapPrefix names snapshot objects: SNAP/<seq>.
const snapPrefix = "SNAP/"

// SnapshotBackup is the Backup-and-Restore strategy.
type SnapshotBackup struct {
	localFS vfs.FS
	store   cloud.ObjectStore
	proc    dbevent.Processor

	mu  sync.Mutex
	seq int64
}

// NewSnapshotBackup builds a snapshotter for the database in localFS.
func NewSnapshotBackup(localFS vfs.FS, store cloud.ObjectStore, proc dbevent.Processor) *SnapshotBackup {
	return &SnapshotBackup{localFS: localFS, store: store, proc: proc}
}

// Snapshot uploads a full copy of every database file (data and WAL) as
// one object set and returns the snapshot sequence number. The database
// should be quiesced or checkpointed first for a consistent image — the
// operational burden the paper's §1 complains about.
func (s *SnapshotBackup) Snapshot(ctx context.Context) (int64, error) {
	s.mu.Lock()
	s.seq++
	seq := s.seq
	s.mu.Unlock()

	files, err := vfs.Walk(s.localFS, "")
	if err != nil {
		return 0, fmt.Errorf("baselines: snapshot walk: %w", err)
	}
	sort.Strings(files)
	var writes []core.FileWrite
	for _, p := range files {
		if s.proc.FileKind(p) == dbevent.KindOther {
			continue
		}
		content, err := vfs.ReadFile(s.localFS, p)
		if err != nil {
			return 0, fmt.Errorf("baselines: snapshot read %s: %w", p, err)
		}
		writes = append(writes, core.FileWrite{Path: p, Data: content, Whole: true})
	}
	name := fmt.Sprintf("%s%d", snapPrefix, seq)
	if err := s.store.Put(ctx, name, core.EncodeWrites(writes)); err != nil {
		return 0, fmt.Errorf("baselines: snapshot upload: %w", err)
	}
	// Classical backup rotation: drop the previous snapshot.
	if seq > 1 {
		prev := fmt.Sprintf("%s%d", snapPrefix, seq-1)
		if err := s.store.Delete(ctx, prev); err != nil && err != cloud.ErrNotFound {
			// Rotation failure is not fatal for durability; surface it
			// anyway so operators notice the growing bill.
			return seq, fmt.Errorf("baselines: rotate %s: %w", prev, err)
		}
	}
	return seq, nil
}

// Restore rebuilds target from the newest snapshot in the cloud.
func (s *SnapshotBackup) Restore(ctx context.Context, target vfs.FS) error {
	infos, err := s.store.List(ctx, snapPrefix)
	if err != nil {
		return fmt.Errorf("baselines: restore list: %w", err)
	}
	best := int64(-1)
	for _, info := range infos {
		n, err := strconv.ParseInt(strings.TrimPrefix(info.Name, snapPrefix), 10, 64)
		if err != nil {
			continue
		}
		if n > best {
			best = n
		}
	}
	if best < 0 {
		return fmt.Errorf("baselines: no snapshot to restore")
	}
	data, err := s.store.Get(ctx, fmt.Sprintf("%s%d", snapPrefix, best))
	if err != nil {
		return fmt.Errorf("baselines: restore snapshot %d: %w", best, err)
	}
	writes, err := core.DecodeWrites(data)
	if err != nil {
		return fmt.Errorf("baselines: snapshot %d corrupt: %w", best, err)
	}
	for _, w := range writes {
		if err := vfs.WriteFile(target, w.Path, w.Data); err != nil {
			return err
		}
	}
	return nil
}
