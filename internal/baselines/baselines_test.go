package baselines

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/core"
	"github.com/ginja-dr/ginja/internal/dbevent"
	"github.com/ginja-dr/ginja/internal/minidb"
	"github.com/ginja-dr/ginja/internal/minidb/pgengine"
	"github.com/ginja-dr/ginja/internal/vfs"
)

// smallEngine uses tiny WAL segments so the archiver sees completed
// segments quickly.
func smallEngine() minidb.Engine { return pgengine.NewWithSizes(512, 4096, 1024) }

func put(t *testing.T, db *minidb.DB, key string) {
	t.Helper()
	if err := db.Update(func(tx *minidb.Txn) error {
		return tx.Put("kv", []byte(key), []byte("value-"+key))
	}); err != nil {
		t.Fatal(err)
	}
}

func countSurvivors(t *testing.T, fsys vfs.FS, n int) int {
	t.Helper()
	db, err := minidb.Open(fsys, smallEngine(), minidb.Options{})
	if err != nil {
		t.Fatalf("restored files failed DBMS recovery: %v", err)
	}
	survived := 0
	for i := 0; i < n; i++ {
		if _, err := db.Get("kv", []byte(fmt.Sprintf("k%03d", i))); err == nil {
			survived++
		}
	}
	return survived
}

func TestSnapshotBackupRestore(t *testing.T) {
	ctx := context.Background()
	store := cloud.NewMemStore()
	localFS := vfs.NewMemFS()
	db, err := minidb.Open(localFS, smallEngine(), minidb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("kv", 8); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		put(t, db, fmt.Sprintf("k%03d", i))
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	snap := NewSnapshotBackup(localFS, store, dbevent.NewPGProcessor())
	if _, err := snap.Snapshot(ctx); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot writes are doomed.
	for i := 10; i < 20; i++ {
		put(t, db, fmt.Sprintf("k%03d", i))
	}
	target := vfs.NewMemFS()
	if err := snap.Restore(ctx, target); err != nil {
		t.Fatal(err)
	}
	if got := countSurvivors(t, target, 20); got != 10 {
		t.Fatalf("survivors = %d, want exactly the 10 snapshotted keys", got)
	}
}

func TestSnapshotRotationKeepsOne(t *testing.T) {
	ctx := context.Background()
	store := cloud.NewMemStore()
	localFS := vfs.NewMemFS()
	db, err := minidb.Open(localFS, smallEngine(), minidb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("kv", 8); err != nil {
		t.Fatal(err)
	}
	snap := NewSnapshotBackup(localFS, store, dbevent.NewPGProcessor())
	for round := 0; round < 3; round++ {
		put(t, db, fmt.Sprintf("k%03d", round))
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if _, err := snap.Snapshot(ctx); err != nil {
			t.Fatal(err)
		}
	}
	infos, err := store.List(ctx, snapPrefix)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 {
		t.Fatalf("rotation left %d snapshots, want 1", len(infos))
	}
}

func TestSnapshotRestoreEmptyCloudFails(t *testing.T) {
	snap := NewSnapshotBackup(vfs.NewMemFS(), cloud.NewMemStore(), dbevent.NewPGProcessor())
	if err := snap.Restore(context.Background(), vfs.NewMemFS()); err == nil {
		t.Fatal("restore from empty cloud succeeded")
	}
}

func TestSegmentArchiverShipsCompletedSegments(t *testing.T) {
	ctx := context.Background()
	store := cloud.NewMemStore()
	localFS := vfs.NewMemFS()
	proc := dbevent.NewPGProcessor()
	arch := NewSegmentArchiver(localFS, store, proc)

	db, err := minidb.Open(arch.FS(), smallEngine(), minidb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("kv", 8); err != nil {
		t.Fatal(err)
	}
	base := NewSnapshotBackup(localFS, store, proc)
	if _, err := base.Snapshot(ctx); err != nil {
		t.Fatal(err)
	}
	// Enough commits to complete several 4 KiB segments.
	const n = 60
	for i := 0; i < n; i++ {
		put(t, db, fmt.Sprintf("k%03d", i))
	}
	if err := arch.Err(); err != nil {
		t.Fatal(err)
	}
	if arch.ArchivedSegments() == 0 {
		t.Fatal("no segments archived")
	}

	// Crash: restore base + archived segments elsewhere.
	target := vfs.NewMemFS()
	if err := arch.Restore(ctx, base, target); err != nil {
		t.Fatal(err)
	}
	survived := countSurvivors(t, target, n)
	if survived == 0 {
		t.Fatal("nothing survived despite archived segments")
	}
	if survived == n {
		t.Fatal("everything survived — the incomplete tail segment should be lost")
	}
	// The survivors must be a prefix (no torn middle).
	db2, err := minidb.Open(target, smallEngine(), minidb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < survived; i++ {
		if _, err := db2.Get("kv", []byte(fmt.Sprintf("k%03d", i))); err != nil {
			t.Fatalf("hole at k%03d with %d survivors", i, survived)
		}
	}
}

// TestRPOComparison quantifies the paper's positioning: after the same
// workload and a crash, Ginja (flushed) loses nothing, continuous
// archiving loses the incomplete tail segment, and backup-and-restore
// loses everything since the snapshot.
func TestRPOComparison(t *testing.T) {
	ctx := context.Background()
	// Enough commits (with the ~80 bytes each contributes to the log) to
	// complete several of the 4 KiB test segments.
	const n = 120
	keys := func(i int) string { return fmt.Sprintf("k%03d", i) }

	// --- Ginja ---
	ginjaStore := cloud.NewMemStore()
	params := core.DefaultParams()
	params.Batch = 4
	params.Safety = 64
	params.BatchTimeout = 10 * time.Millisecond
	g, err := core.New(vfs.NewMemFS(), ginjaStore, dbevent.NewPGProcessor(), params)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Boot(ctx); err != nil {
		t.Fatal(err)
	}
	dbG, err := minidb.Open(g.FS(), smallEngine(), minidb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := dbG.CreateTable("kv", 8); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := dbG.Update(func(tx *minidb.Txn) error {
			return tx.Put("kv", []byte(keys(i)), []byte("value-"+keys(i)))
		}); err != nil {
			t.Fatal(err)
		}
	}
	if !g.Flush(10 * time.Second) {
		t.Fatal("flush")
	}
	g.Close()
	gRec, err := core.New(vfs.NewMemFS(), ginjaStore, dbevent.NewPGProcessor(), params)
	if err != nil {
		t.Fatal(err)
	}
	targetG := vfs.NewMemFS()
	if err := gRec.RecoverAt(ctx, targetG, -1); err != nil {
		// RecoverAt(-1) restores the newest state without starting threads.
		t.Fatal(err)
	}
	ginjaSurvived := countSurvivors(t, targetG, n)

	// --- Continuous archiving ---
	archStore := cloud.NewMemStore()
	archFS := vfs.NewMemFS()
	proc := dbevent.NewPGProcessor()
	arch := NewSegmentArchiver(archFS, archStore, proc)
	dbA, err := minidb.Open(arch.FS(), smallEngine(), minidb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := dbA.CreateTable("kv", 8); err != nil {
		t.Fatal(err)
	}
	baseA := NewSnapshotBackup(archFS, archStore, proc)
	if _, err := baseA.Snapshot(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := dbA.Update(func(tx *minidb.Txn) error {
			return tx.Put("kv", []byte(keys(i)), []byte("value-"+keys(i)))
		}); err != nil {
			t.Fatal(err)
		}
	}
	targetA := vfs.NewMemFS()
	if err := arch.Restore(ctx, baseA, targetA); err != nil {
		t.Fatal(err)
	}
	archSurvived := countSurvivors(t, targetA, n)

	// --- Backup and restore ---
	snapStore := cloud.NewMemStore()
	snapFS := vfs.NewMemFS()
	dbS, err := minidb.Open(snapFS, smallEngine(), minidb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := dbS.CreateTable("kv", 8); err != nil {
		t.Fatal(err)
	}
	snap := NewSnapshotBackup(snapFS, snapStore, proc)
	if _, err := snap.Snapshot(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := dbS.Update(func(tx *minidb.Txn) error {
			return tx.Put("kv", []byte(keys(i)), []byte("value-"+keys(i)))
		}); err != nil {
			t.Fatal(err)
		}
	}
	targetS := vfs.NewMemFS()
	if err := snap.Restore(ctx, targetS); err != nil {
		t.Fatal(err)
	}
	snapSurvived := countSurvivors(t, targetS, n)

	t.Logf("survivors out of %d: ginja=%d, archiver=%d, snapshot=%d",
		n, ginjaSurvived, archSurvived, snapSurvived)
	if ginjaSurvived != n {
		t.Fatalf("ginja (flushed) lost %d commits", n-ginjaSurvived)
	}
	if archSurvived >= ginjaSurvived || archSurvived == 0 {
		t.Fatalf("archiver survived %d, want strictly between 0 and %d", archSurvived, ginjaSurvived)
	}
	if snapSurvived != 0 {
		t.Fatalf("snapshot baseline survived %d post-snapshot commits", snapSurvived)
	}
}
