package simclock

import (
	"container/heap"
	"sync"
	"time"
)

// Wheel is a Clock that multiplexes any number of timers onto a single
// goroutine: one deadline heap, one arming of the inner clock at a time.
// It exists for fleet deployments — one process protecting thousands of
// databases — where per-instance Batch/Safety timeouts, tuner ticks and
// retention-trimmer ticks would otherwise each arm their own runtime
// timer (and, historically, their own goroutine). A Fleet installs one
// Wheel as every tenant's Params.Clock, so the whole fleet's timer load
// is a heap and a goroutine, independent of tenant count.
//
// Timestamps (Now/Since/Until) delegate to the inner clock, so a Wheel
// over a SimClock keeps virtual-time determinism: the wheel's single
// pending inner timer is fired by the SimClock driver like any other.
//
// AfterFunc callbacks run inline on the wheel goroutine (the same
// contract as SimClock's advancing goroutine): they must be brief and
// must not block, or they delay every other timer in the process. All of
// Ginja's internal callbacks (TB/TS expiry, tuner ticks, trimmer ticks)
// follow that rule.
type Wheel struct {
	inner Clock

	mu  sync.Mutex
	h   wheelHeap
	seq uint64

	wake chan struct{}
	done chan struct{}
	wg   sync.WaitGroup

	stopOnce sync.Once
}

var _ Clock = (*Wheel)(nil)

// NewWheel returns a running Wheel over inner (nil = the wall clock).
// Call Stop when the wheel is abandoned.
func NewWheel(inner Clock) *Wheel {
	if inner == nil {
		inner = Real()
	}
	w := &Wheel{
		inner: inner,
		wake:  make(chan struct{}, 1),
		done:  make(chan struct{}),
	}
	w.wg.Add(1)
	go w.loop()
	return w
}

// Stop terminates the wheel goroutine. Pending timers never fire after
// Stop returns; timers scheduled after Stop are accepted but dormant.
func (w *Wheel) Stop() {
	w.stopOnce.Do(func() { close(w.done) })
	w.wg.Wait()
}

// Now returns the inner clock's current time.
func (w *Wheel) Now() time.Time { return w.inner.Now() }

// Since returns the inner clock's elapsed time since t.
func (w *Wheel) Since(t time.Time) time.Duration { return w.inner.Since(t) }

// Until returns the inner clock's remaining time until t.
func (w *Wheel) Until(t time.Time) time.Duration { return w.inner.Until(t) }

// Sleep blocks the calling goroutine for d on the wheel.
func (w *Wheel) Sleep(d time.Duration) {
	if d <= 0 {
		w.inner.Sleep(d)
		return
	}
	<-w.After(d)
}

// After returns a channel that receives the time once d has elapsed.
func (w *Wheel) After(d time.Duration) <-chan time.Time {
	return w.NewTimer(d).C()
}

// NewTimer returns a Timer multiplexed onto the wheel.
func (w *Wheel) NewTimer(d time.Duration) Timer {
	t := &wheelTimer{w: w, ch: make(chan time.Time, 1), idx: -1}
	w.schedule(t, d)
	return t
}

// AfterFunc returns a Timer that invokes f on the wheel goroutine once d
// has elapsed. f must be brief and non-blocking.
func (w *Wheel) AfterFunc(d time.Duration, f func()) Timer {
	t := &wheelTimer{w: w, fn: f, idx: -1}
	w.schedule(t, d)
	return t
}

// PendingTimers returns the number of timers currently scheduled (tests).
func (w *Wheel) PendingTimers() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.h)
}

func (w *Wheel) schedule(t *wheelTimer, d time.Duration) {
	if d < 0 {
		d = 0
	}
	deadline := w.inner.Now().Add(d)
	w.mu.Lock()
	t.deadline = deadline
	w.seq++
	t.seq = w.seq
	heap.Push(&w.h, t)
	w.mu.Unlock()
	w.poke()
}

// poke nudges the wheel goroutine to re-examine the heap (the earliest
// deadline may have changed). Non-blocking: one pending nudge is enough.
func (w *Wheel) poke() {
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

func (w *Wheel) loop() {
	defer w.wg.Done()
	for {
		// Fire everything due, then find how long until the next deadline.
		var arm Timer
		var armCh <-chan time.Time
		w.mu.Lock()
		for len(w.h) > 0 {
			next := w.h[0]
			d := w.inner.Until(next.deadline)
			if d > 0 {
				arm = w.inner.NewTimer(d)
				armCh = arm.C()
				break
			}
			heap.Pop(&w.h)
			w.mu.Unlock()
			w.fire(next)
			w.mu.Lock()
		}
		w.mu.Unlock()

		if armCh == nil {
			select {
			case <-w.wake:
			case <-w.done:
				return
			}
			continue
		}
		select {
		case <-armCh:
		case <-w.wake:
			arm.Stop()
		case <-w.done:
			arm.Stop()
			return
		}
	}
}

func (w *Wheel) fire(t *wheelTimer) {
	if t.fn != nil {
		t.fn()
		return
	}
	select {
	case t.ch <- w.inner.Now():
	default:
	}
}

// wheelTimer is one timer multiplexed onto a Wheel.
type wheelTimer struct {
	w        *Wheel
	deadline time.Time
	seq      uint64 // creation order breaks deadline ties deterministically
	idx      int    // heap index, -1 when not scheduled
	fn       func()
	ch       chan time.Time
}

func (t *wheelTimer) C() <-chan time.Time {
	if t.fn != nil {
		return nil
	}
	return t.ch
}

func (t *wheelTimer) Stop() bool {
	t.w.mu.Lock()
	active := t.idx >= 0
	if active {
		heap.Remove(&t.w.h, t.idx)
	}
	t.w.mu.Unlock()
	if active {
		t.w.poke()
	}
	return active
}

func (t *wheelTimer) Reset(d time.Duration) bool {
	if d < 0 {
		d = 0
	}
	deadline := t.w.inner.Now().Add(d)
	t.w.mu.Lock()
	active := t.idx >= 0
	if active {
		heap.Remove(&t.w.h, t.idx)
	}
	t.deadline = deadline
	t.w.seq++
	t.seq = t.w.seq
	heap.Push(&t.w.h, t)
	t.w.mu.Unlock()
	t.w.poke()
	return active
}

// wheelHeap orders timers by (deadline, seq).
type wheelHeap []*wheelTimer

func (h wheelHeap) Len() int { return len(h) }

func (h wheelHeap) Less(i, j int) bool {
	if !h[i].deadline.Equal(h[j].deadline) {
		return h[i].deadline.Before(h[j].deadline)
	}
	return h[i].seq < h[j].seq
}

func (h wheelHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}

func (h *wheelHeap) Push(x any) {
	t := x.(*wheelTimer)
	t.idx = len(*h)
	*h = append(*h, t)
}

func (h *wheelHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.idx = -1
	*h = old[:n-1]
	return t
}
