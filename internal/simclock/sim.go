package simclock

import (
	"container/heap"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// simEpoch is the fixed start of virtual time, so failing runs print
// identical timestamps on every machine.
var simEpoch = time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)

// SimClock is a virtual Clock for deterministic simulation testing. Time
// never passes on its own: it advances only when the test driver (or the
// Pump) fires pending timers, and the Pump fires them only once every
// goroutine interacting with the clock has gone idle. Goroutines register
// with the clock implicitly — every clock operation (Now, After, Sleep,
// timer resets …) bumps an activity generation, and the Pump treats a
// stable generation across several scheduler yields as "all registered
// goroutines are idle".
type SimClock struct {
	mu  sync.Mutex
	now time.Time
	seq uint64
	h   timerHeap

	// gen is the activity generation: bumped by every clock operation the
	// system under test performs, never by Advance itself.
	gen atomic.Uint64
}

var _ Clock = (*SimClock)(nil)

// NewSim returns a virtual clock starting at a fixed epoch
// (2000-01-01T00:00:00Z).
func NewSim() *SimClock {
	return &SimClock{now: simEpoch}
}

func (c *SimClock) bump() { c.gen.Add(1) }

// Gen returns the current activity generation (see Pump).
func (c *SimClock) Gen() uint64 { return c.gen.Load() }

// Now returns the current virtual time.
func (c *SimClock) Now() time.Time {
	c.bump()
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Since returns the virtual time elapsed since t.
func (c *SimClock) Since(t time.Time) time.Duration { return c.Now().Sub(t) }

// Until returns the virtual time remaining until t.
func (c *SimClock) Until(t time.Time) time.Duration { return t.Sub(c.Now()) }

// Sleep blocks the calling goroutine until virtual time advances by d.
func (c *SimClock) Sleep(d time.Duration) {
	if d <= 0 {
		runtime.Gosched()
		return
	}
	t := c.NewTimer(d)
	<-t.C()
	c.bump() // signal the Pump that a sleeper woke and is running again
}

// After returns a channel that receives the virtual time once it has
// advanced by d.
func (c *SimClock) After(d time.Duration) <-chan time.Time {
	return c.NewTimer(d).C()
}

// NewTimer returns a Timer that fires its channel when virtual time
// reaches now+d.
func (c *SimClock) NewTimer(d time.Duration) Timer {
	t := &simTimer{c: c, ch: make(chan time.Time, 1)}
	c.schedule(t, d)
	return t
}

// AfterFunc returns a Timer that invokes f when virtual time reaches
// now+d. f runs synchronously on the goroutine advancing the clock, with
// no clock lock held.
func (c *SimClock) AfterFunc(d time.Duration, f func()) Timer {
	t := &simTimer{c: c, fn: f}
	c.schedule(t, d)
	return t
}

func (c *SimClock) schedule(t *simTimer, d time.Duration) {
	c.bump()
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	t.deadline = c.now.Add(d)
	c.seq++
	t.seq = c.seq
	heap.Push(&c.h, t)
	c.mu.Unlock()
}

// PendingTimers returns the number of timers currently scheduled.
func (c *SimClock) PendingTimers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.h)
}

// NextDeadline returns the deadline of the earliest pending timer.
func (c *SimClock) NextDeadline() (time.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.h) == 0 {
		return time.Time{}, false
	}
	return c.h[0].deadline, true
}

// Advance moves virtual time forward by d, firing every timer whose
// deadline falls within the window in deadline order.
func (c *SimClock) Advance(d time.Duration) {
	c.mu.Lock()
	target := c.now.Add(d)
	for {
		t := c.popDueLocked(target)
		if t == nil {
			break
		}
		c.fireUnlockedRelock(t)
	}
	if c.now.Before(target) {
		c.now = target
	}
	c.mu.Unlock()
}

// AdvanceToNext jumps virtual time to the earliest pending deadline and
// fires that timer (plus any sharing the same deadline), reporting how
// far time moved and whether any timer was pending.
func (c *SimClock) AdvanceToNext() (time.Duration, bool) {
	c.mu.Lock()
	if len(c.h) == 0 {
		c.mu.Unlock()
		return 0, false
	}
	deadline := c.h[0].deadline
	moved := deadline.Sub(c.now)
	for {
		t := c.popDueLocked(deadline)
		if t == nil {
			break
		}
		c.fireUnlockedRelock(t)
	}
	c.mu.Unlock()
	return moved, true
}

// popDueLocked removes and returns the earliest timer with deadline ≤
// target, advancing now to its deadline, or returns nil.
func (c *SimClock) popDueLocked(target time.Time) *simTimer {
	if len(c.h) == 0 || c.h[0].deadline.After(target) {
		return nil
	}
	t := heap.Pop(&c.h).(*simTimer)
	if c.now.Before(t.deadline) {
		c.now = t.deadline
	}
	return t
}

// fireUnlockedRelock releases the clock lock, delivers the timer, and
// re-acquires the lock — callbacks are free to schedule new timers.
func (c *SimClock) fireUnlockedRelock(t *simTimer) {
	now := c.now
	c.mu.Unlock()
	if t.fn != nil {
		t.fn()
	} else {
		select {
		case t.ch <- now:
		default:
		}
	}
	c.mu.Lock()
}

// Pump drives virtual time from a background goroutine: whenever the
// activity generation stays stable across a few scheduler yields (all
// goroutines registered with the clock are idle — blocked in virtual
// sleeps, condition variables or channels) and timers are pending, it
// fires the earliest timer. It returns a stop function that must be
// called before the clock is abandoned.
func (c *SimClock) Pump() (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		last := c.Gen()
		idle := 0
		for {
			select {
			case <-done:
				return
			default:
			}
			runtime.Gosched()
			if g := c.Gen(); g != last {
				last, idle = g, 0
				continue
			}
			if idle++; idle < 3 {
				continue
			}
			idle = 0
			if _, ok := c.AdvanceToNext(); !ok {
				// No timers pending: either the run is over or the stack
				// is progressing without the clock. Back off briefly so
				// an idle pump does not burn the only CPU.
				time.Sleep(20 * time.Microsecond)
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}

// simTimer is one scheduled virtual timer.
type simTimer struct {
	c        *SimClock
	deadline time.Time
	seq      uint64 // creation order breaks deadline ties deterministically
	idx      int    // heap index, -1 when not scheduled
	fn       func()
	ch       chan time.Time
}

func (t *simTimer) C() <-chan time.Time {
	if t.fn != nil {
		return nil
	}
	return t.ch
}

func (t *simTimer) Stop() bool {
	t.c.bump()
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	if t.idx < 0 {
		return false
	}
	heap.Remove(&t.c.h, t.idx)
	return true
}

func (t *simTimer) Reset(d time.Duration) bool {
	t.c.bump()
	if d < 0 {
		d = 0
	}
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	active := t.idx >= 0
	if active {
		heap.Remove(&t.c.h, t.idx)
	}
	t.deadline = t.c.now.Add(d)
	t.c.seq++
	t.seq = t.c.seq
	heap.Push(&t.c.h, t)
	return active
}

// timerHeap orders timers by (deadline, seq).
type timerHeap []*simTimer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if !h[i].deadline.Equal(h[j].deadline) {
		return h[i].deadline.Before(h[j].deadline)
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *timerHeap) Push(x any) {
	t := x.(*simTimer)
	t.idx = len(*h)
	*h = append(*h, t)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.idx = -1
	*h = old[:n-1]
	return t
}
