package simclock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWheelFiresInDeadlineOrderOnSimClock(t *testing.T) {
	sim := NewSim()
	w := NewWheel(sim)
	defer w.Stop()

	var mu sync.Mutex
	var order []int
	record := func(i int) func() {
		return func() {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}
	}
	w.AfterFunc(30*time.Millisecond, record(3))
	w.AfterFunc(10*time.Millisecond, record(1))
	w.AfterFunc(20*time.Millisecond, record(2))

	stop := sim.Pump()
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(order)
		mu.Unlock()
		if n == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("timers did not all fire; order so far %v", order)
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	mu.Lock()
	defer mu.Unlock()
	if order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fired out of deadline order: %v", order)
	}
}

func TestWheelTimerChannelAndStop(t *testing.T) {
	w := NewWheel(Real())
	defer w.Stop()

	tm := w.NewTimer(time.Millisecond)
	select {
	case <-tm.C():
	case <-time.After(5 * time.Second):
		t.Fatal("wheel timer never fired on the real clock")
	}
	if tm.Stop() {
		t.Fatal("Stop on a fired timer reported active")
	}

	// A stopped timer must not fire.
	var fired atomic.Bool
	tm2 := w.AfterFunc(30*time.Millisecond, func() { fired.Store(true) })
	if !tm2.Stop() {
		t.Fatal("Stop on a pending timer reported inactive")
	}
	time.Sleep(60 * time.Millisecond)
	if fired.Load() {
		t.Fatal("stopped timer fired anyway")
	}

	// Reset re-arms to an earlier deadline than the one the wheel is
	// currently sleeping toward.
	var early atomic.Bool
	w.AfterFunc(10*time.Second, func() {}) // arms a far-future inner timer
	tm3 := w.AfterFunc(5*time.Second, func() { early.Store(true) })
	tm3.Reset(time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for !early.Load() {
		if time.Now().After(deadline) {
			t.Fatal("Reset to an earlier deadline did not fire")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestWheelSleepAndAfter(t *testing.T) {
	sim := NewSim()
	w := NewWheel(sim)
	defer w.Stop()
	stop := sim.Pump()
	defer stop()

	start := w.Now()
	w.Sleep(42 * time.Millisecond)
	if got := w.Since(start); got < 42*time.Millisecond {
		t.Fatalf("Sleep advanced virtual time by %v, want >= 42ms", got)
	}

	ch := w.After(7 * time.Millisecond)
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("After channel never fired under the pump")
	}
}

func TestWheelManyTimersOneGoroutine(t *testing.T) {
	sim := NewSim()
	w := NewWheel(sim)
	defer w.Stop()

	const n = 1000
	var fired atomic.Int32
	for i := 0; i < n; i++ {
		w.AfterFunc(time.Duration(i%17+1)*time.Millisecond, func() { fired.Add(1) })
	}
	if got := w.PendingTimers(); got != n {
		t.Fatalf("PendingTimers = %d, want %d", got, n)
	}
	stop := sim.Pump()
	deadline := time.Now().Add(10 * time.Second)
	for fired.Load() != n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d timers fired", fired.Load(), n)
		}
		time.Sleep(time.Millisecond)
	}
	stop()
}
