// Package simclock abstracts time so that every timer and timestamp in
// Ginja can be driven either by the wall clock (production) or by a
// virtual clock (deterministic simulation testing). The commit pipeline's
// Batch/Safety timeouts, upload-retry backoff and the simulated cloud's
// latency model all draw from a Clock, which lets the internal/sim driver
// explore timer-and-failure interleavings — TB expiry, TS blocking,
// mid-checkpoint crashes — in virtual time, hundreds of seeds per second,
// with no wall-clock sleeps.
package simclock

import (
	"context"
	"time"
)

// Timer is the subset of *time.Timer Ginja uses, expressed as an
// interface so a virtual clock can supply its own implementation.
type Timer interface {
	// C returns the channel the timer fires on. For AfterFunc timers the
	// channel is nil.
	C() <-chan time.Time
	// Stop cancels the timer, reporting whether it was still pending.
	Stop() bool
	// Reset re-arms the timer for d from now, reporting whether it was
	// still pending.
	Reset(d time.Duration) bool
}

// Clock supplies current time and timers. Implementations: Real (wall
// clock) and SimClock (virtual time).
type Clock interface {
	Now() time.Time
	Since(t time.Time) time.Duration
	Until(t time.Time) time.Duration
	Sleep(d time.Duration)
	After(d time.Duration) <-chan time.Time
	AfterFunc(d time.Duration, f func()) Timer
	NewTimer(d time.Duration) Timer
}

// Real returns the wall-clock Clock backed by the time package.
func Real() Clock { return realClock{} }

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) Since(t time.Time) time.Duration        { return time.Since(t) }
func (realClock) Until(t time.Time) time.Duration        { return time.Until(t) }
func (realClock) Sleep(d time.Duration)                  { time.Sleep(d) }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

func (realClock) AfterFunc(d time.Duration, f func()) Timer {
	return realTimer{t: time.AfterFunc(d, f)}
}

func (realClock) NewTimer(d time.Duration) Timer {
	return realTimer{t: time.NewTimer(d)}
}

type realTimer struct{ t *time.Timer }

func (r realTimer) C() <-chan time.Time        { return r.t.C }
func (r realTimer) Stop() bool                 { return r.t.Stop() }
func (r realTimer) Reset(d time.Duration) bool { return r.t.Reset(d) }

// SleepCtx sleeps d on clk, returning early with ctx.Err() if the context
// is cancelled first. It is the cancellable sleep used by retry backoff
// and the simulated cloud's latency model.
func SleepCtx(ctx context.Context, clk Clock, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := clk.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C():
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
