package simclock

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSimClockAdvanceFiresInDeadlineOrder(t *testing.T) {
	clk := NewSim()
	var mu sync.Mutex
	var order []string
	clk.AfterFunc(30*time.Millisecond, func() { mu.Lock(); order = append(order, "c"); mu.Unlock() })
	clk.AfterFunc(10*time.Millisecond, func() { mu.Lock(); order = append(order, "a"); mu.Unlock() })
	clk.AfterFunc(20*time.Millisecond, func() { mu.Lock(); order = append(order, "b"); mu.Unlock() })

	clk.Advance(15 * time.Millisecond)
	mu.Lock()
	if len(order) != 1 || order[0] != "a" {
		t.Fatalf("after 15ms, fired %v", order)
	}
	mu.Unlock()

	clk.Advance(50 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 || order[1] != "b" || order[2] != "c" {
		t.Fatalf("fired %v", order)
	}
	if got := clk.Since(simEpoch); got != 65*time.Millisecond {
		t.Fatalf("virtual now = %v, want 65ms", got)
	}
}

func TestSimClockSameDeadlineFiresInCreationOrder(t *testing.T) {
	clk := NewSim()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		clk.AfterFunc(time.Second, func() { order = append(order, i) })
	}
	clk.Advance(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("fire order %v", order)
		}
	}
}

func TestSimClockTimerStopAndReset(t *testing.T) {
	clk := NewSim()
	fired := 0
	tm := clk.AfterFunc(time.Second, func() { fired++ })
	if !tm.Stop() {
		t.Fatal("Stop on pending timer should report true")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	clk.Advance(2 * time.Second)
	if fired != 0 {
		t.Fatal("stopped timer fired")
	}
	tm.Reset(time.Second)
	clk.Advance(time.Second)
	if fired != 1 {
		t.Fatalf("reset timer fired %d times", fired)
	}
	// Reset from inside the callback (how the TB timer re-arms itself).
	var rearm Timer
	count := 0
	rearm = clk.AfterFunc(time.Second, func() {
		count++
		if count < 3 {
			rearm.Reset(time.Second)
		}
	})
	clk.Advance(10 * time.Second)
	if count != 3 {
		t.Fatalf("self-rearming timer fired %d times, want 3", count)
	}
}

func TestSimClockAfterAndNewTimer(t *testing.T) {
	clk := NewSim()
	ch := clk.After(time.Minute)
	select {
	case <-ch:
		t.Fatal("After fired before any advance")
	default:
	}
	clk.Advance(time.Minute)
	select {
	case ts := <-ch:
		if want := simEpoch.Add(time.Minute); !ts.Equal(want) {
			t.Fatalf("After delivered %v, want %v", ts, want)
		}
	default:
		t.Fatal("After did not fire at its deadline")
	}
}

func TestSimClockAdvanceToNext(t *testing.T) {
	clk := NewSim()
	if _, ok := clk.AdvanceToNext(); ok {
		t.Fatal("AdvanceToNext with no timers reported ok")
	}
	fired := false
	clk.AfterFunc(42*time.Second, func() { fired = true })
	moved, ok := clk.AdvanceToNext()
	if !ok || moved != 42*time.Second || !fired {
		t.Fatalf("AdvanceToNext: moved=%v ok=%v fired=%v", moved, ok, fired)
	}
	if clk.PendingTimers() != 0 {
		t.Fatal("timer still pending after firing")
	}
}

func TestSimClockSleepWithPump(t *testing.T) {
	clk := NewSim()
	stop := clk.Pump()
	defer stop()
	start := clk.Now()
	done := make(chan time.Duration, 3)
	for i := 1; i <= 3; i++ {
		d := time.Duration(i) * time.Hour
		go func() {
			clk.Sleep(d)
			done <- clk.Since(start)
		}()
	}
	for i := 0; i < 3; i++ {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("virtual sleepers never woke under the pump")
		}
	}
	if got := clk.Since(start); got < 3*time.Hour {
		t.Fatalf("virtual time advanced only %v", got)
	}
}

func TestSleepCtxHonoursCancellation(t *testing.T) {
	clk := NewSim()
	ctx, cancel := context.WithCancel(context.Background())
	var ret atomic.Value
	done := make(chan struct{})
	go func() {
		defer close(done)
		ret.Store(SleepCtx(ctx, clk, time.Hour) == context.Canceled)
	}()
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("SleepCtx ignored context cancellation")
	}
	if ret.Load() != true {
		t.Fatal("SleepCtx did not return the context error")
	}
	// And the timer must not linger.
	if clk.PendingTimers() != 0 {
		t.Fatalf("%d timers leaked after cancelled SleepCtx", clk.PendingTimers())
	}
}

func TestSleepCtxRealClockZeroDuration(t *testing.T) {
	if err := SleepCtx(context.Background(), Real(), 0); err != nil {
		t.Fatal(err)
	}
}
