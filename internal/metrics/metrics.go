// Package metrics provides the lightweight counters, histograms and
// process-resource sampling the experiment harness uses to reproduce the
// paper's Tables 3 and 4.
//
// For always-on production telemetry use internal/obs instead: its
// instruments are fixed-size and lock-free on the hot path. This
// package's Histogram keeps (a bounded reservoir of) raw samples for the
// exact-percentile reporting the experiment tables need.
package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// maxSamples bounds Histogram memory: beyond it, new observations replace
// random reservoir slots (Vitter's Algorithm R), keeping the retained set
// a uniform sample of everything observed. 16k float64s is 128 KiB.
const maxSamples = 16384

// Histogram aggregates duration or size samples with quantile support.
// Count, Mean, Min and Max are exact over all observations; quantiles are
// computed from the reservoir (exact until maxSamples observations, a
// uniform-sample estimate after).
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	sorted  bool
	n       int64
	sum     float64
	min     float64
	max     float64
	rng     *rand.Rand
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	// The fixed seed keeps experiment reruns comparable; uniformity of
	// the reservoir does not depend on seed choice.
	return &Histogram{rng: rand.New(rand.NewSource(0x617269a))}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.n++
	h.sum += v
	if h.n == 1 || v < h.min {
		h.min = v
	}
	if h.n == 1 || v > h.max {
		h.max = v
	}
	if len(h.samples) < maxSamples {
		h.samples = append(h.samples, v)
		h.sorted = false
		return
	}
	if j := h.rng.Int63n(h.n); j < maxSamples {
		h.samples[j] = v
		h.sorted = false
	}
}

// ObserveDuration records a duration in milliseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d) / float64(time.Millisecond))
}

// Count returns the number of samples observed (not capped by the
// reservoir size).
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return int(h.n)
}

// Mean returns the exact sample mean, or 0 when empty.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1), or 0 when empty. The
// reservoir is sorted lazily, so alternating Observe/Quantile re-sorts at
// most maxSamples values — bounded work, unlike the unbounded slice this
// histogram used to retain.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	idx := int(math.Ceil(q*float64(len(h.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.samples) {
		idx = len(h.samples) - 1
	}
	return h.samples[idx]
}

// Min returns the smallest sample (exact), or 0 when empty.
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest sample (exact), or 0 when empty.
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Summary renders count/mean/p50/p99 in one line.
func (h *Histogram) Summary(unit string) string {
	return fmt.Sprintf("n=%d mean=%.1f%s p50=%.1f%s p99=%.1f%s",
		h.Count(), h.Mean(), unit, h.Quantile(0.5), unit, h.Quantile(0.99), unit)
}

// Throughput tracks an event rate over a measured window (the Tpm-C /
// Tpm-Total reporting of the TPC-C harness).
type Throughput struct {
	mu    sync.Mutex
	count int64
	start time.Time
	end   time.Time
}

// minWindow is the smallest elapsed window PerMinute will extrapolate
// from. Dividing by a few microseconds of elapsed time — routine in fast
// tests — reports absurd rates, so shorter windows are clamped to this.
const minWindow = time.Millisecond

// NewThroughput starts a measurement window now.
func NewThroughput() *Throughput {
	return &Throughput{start: time.Now()}
}

// Add records n events.
func (t *Throughput) Add(n int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.count += n
}

// Stop freezes the window.
func (t *Throughput) Stop() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.end.IsZero() {
		t.end = time.Now()
	}
}

// Count returns the number of recorded events.
func (t *Throughput) Count() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

// PerMinute returns the rate in events/minute over the window. Windows
// shorter than one millisecond are treated as one millisecond, so the
// reported rate never exceeds 60000 × count.
func (t *Throughput) PerMinute() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	end := t.end
	if end.IsZero() {
		end = time.Now()
	}
	elapsed := end.Sub(t.start)
	if elapsed <= 0 {
		return 0
	}
	if elapsed < minWindow {
		elapsed = minWindow
	}
	return float64(t.count) / elapsed.Minutes()
}
