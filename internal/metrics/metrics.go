// Package metrics provides the lightweight counters, histograms and
// process-resource sampling the experiment harness uses to reproduce the
// paper's Tables 3 and 4.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Histogram aggregates duration or size samples with quantile support.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	sorted  bool
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples = append(h.samples, v)
	h.sorted = false
}

// ObserveDuration records a duration in milliseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d) / float64(time.Millisecond))
}

// Count returns the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Mean returns the sample mean, or 0 when empty.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range h.samples {
		sum += v
	}
	return sum / float64(len(h.samples))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1), or 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	idx := int(math.Ceil(q*float64(len(h.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.samples) {
		idx = len(h.samples) - 1
	}
	return h.samples[idx]
}

// Min returns the smallest sample, or 0 when empty.
func (h *Histogram) Min() float64 { return h.Quantile(0) }

// Max returns the largest sample, or 0 when empty.
func (h *Histogram) Max() float64 { return h.Quantile(1) }

// Summary renders count/mean/p50/p99 in one line.
func (h *Histogram) Summary(unit string) string {
	return fmt.Sprintf("n=%d mean=%.1f%s p50=%.1f%s p99=%.1f%s",
		h.Count(), h.Mean(), unit, h.Quantile(0.5), unit, h.Quantile(0.99), unit)
}

// Throughput tracks an event rate over a measured window (the Tpm-C /
// Tpm-Total reporting of the TPC-C harness).
type Throughput struct {
	mu    sync.Mutex
	count int64
	start time.Time
	end   time.Time
}

// NewThroughput starts a measurement window now.
func NewThroughput() *Throughput {
	return &Throughput{start: time.Now()}
}

// Add records n events.
func (t *Throughput) Add(n int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.count += n
}

// Stop freezes the window.
func (t *Throughput) Stop() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.end.IsZero() {
		t.end = time.Now()
	}
}

// Count returns the number of recorded events.
func (t *Throughput) Count() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

// PerMinute returns the rate in events/minute over the window.
func (t *Throughput) PerMinute() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	end := t.end
	if end.IsZero() {
		end = time.Now()
	}
	elapsed := end.Sub(t.start)
	if elapsed <= 0 {
		return 0
	}
	return float64(t.count) / elapsed.Minutes()
}
