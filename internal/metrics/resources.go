package metrics

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// ResourceUsage is one sample of process resource consumption, the raw
// material of the paper's Table 4 (server CPU % and memory %).
type ResourceUsage struct {
	// CPUPercent is process CPU utilisation over the sampling window
	// (100 % = one core fully busy).
	CPUPercent float64
	// HeapBytes is the live Go heap.
	HeapBytes uint64
	// SysBytes is the total memory obtained from the OS by the runtime.
	SysBytes uint64
	// Goroutines is the current goroutine count.
	Goroutines int
	// Window is the sampling interval the CPU figure covers.
	Window time.Duration
}

// MemoryPercent expresses SysBytes as a percentage of totalBytes (e.g. the
// paper's 32 GB server).
func (r ResourceUsage) MemoryPercent(totalBytes uint64) float64 {
	if totalBytes == 0 {
		return 0
	}
	return float64(r.SysBytes) / float64(totalBytes) * 100
}

// String implements fmt.Stringer.
func (r ResourceUsage) String() string {
	return fmt.Sprintf("cpu=%.1f%% heap=%.1fMB sys=%.1fMB goroutines=%d",
		r.CPUPercent, float64(r.HeapBytes)/(1<<20), float64(r.SysBytes)/(1<<20), r.Goroutines)
}

// ResourceSampler measures process CPU time (via /proc/self/stat on Linux)
// and Go runtime memory between Start and Sample calls.
type ResourceSampler struct {
	startCPU  time.Duration
	startWall time.Time
	ticksPerS float64
}

// NewResourceSampler starts a sampling window.
func NewResourceSampler() *ResourceSampler {
	s := &ResourceSampler{ticksPerS: 100} // Linux USER_HZ
	s.Reset()
	return s
}

// Reset restarts the sampling window.
func (s *ResourceSampler) Reset() {
	s.startCPU = processCPUTime(s.ticksPerS)
	s.startWall = time.Now()
}

// Sample returns resource usage over the window since the last Reset.
func (s *ResourceSampler) Sample() ResourceUsage {
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	wall := time.Since(s.startWall)
	cpu := processCPUTime(s.ticksPerS) - s.startCPU
	usage := ResourceUsage{
		HeapBytes:  mem.HeapAlloc,
		SysBytes:   mem.Sys,
		Goroutines: runtime.NumGoroutine(),
		Window:     wall,
	}
	if wall > 0 {
		usage.CPUPercent = float64(cpu) / float64(wall) * 100
	}
	return usage
}

// processCPUTime reads utime+stime from /proc/self/stat. On platforms
// without procfs it returns 0 (CPU percentages read as 0 rather than
// failing the experiment).
func processCPUTime(ticksPerSecond float64) time.Duration {
	data, err := os.ReadFile("/proc/self/stat")
	if err != nil {
		return 0
	}
	// Field 2 (comm) may contain spaces; skip past the closing paren.
	s := string(data)
	i := strings.LastIndexByte(s, ')')
	if i < 0 || i+2 > len(s) {
		return 0
	}
	fields := strings.Fields(s[i+2:])
	// utime and stime are fields 14 and 15 of the full stat line; after
	// comm they are at index 11 and 12.
	if len(fields) < 13 {
		return 0
	}
	utime, err1 := strconv.ParseFloat(fields[11], 64)
	stime, err2 := strconv.ParseFloat(fields[12], 64)
	if err1 != nil || err2 != nil {
		return 0
	}
	seconds := (utime + stime) / ticksPerSecond
	return time.Duration(seconds * float64(time.Second))
}
