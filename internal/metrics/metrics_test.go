package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should read zero")
	}
	for _, v := range []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} {
		h.Observe(v)
	}
	if h.Count() != 10 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != 5.5 {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if got := h.Quantile(0.5); got != 5 {
		t.Fatalf("p50 = %v, want 5", got)
	}
	if h.Min() != 1 || h.Max() != 10 {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	if h.Summary("ms") == "" {
		t.Fatal("empty summary")
	}
}

func TestHistogramObserveAfterQuantile(t *testing.T) {
	h := NewHistogram()
	h.Observe(10)
	_ = h.Quantile(0.5)
	h.Observe(1) // must re-sort lazily
	if got := h.Min(); got != 1 {
		t.Fatalf("Min = %v after post-quantile insert", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				h.Observe(float64(i))
				_ = h.Quantile(0.9)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 800 {
		t.Fatalf("Count = %d", h.Count())
	}
}

func TestHistogramBoundedMemory(t *testing.T) {
	h := NewHistogram()
	const n = 4 * maxSamples
	for i := 0; i < n; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != n {
		t.Fatalf("Count = %d, want %d (must count beyond the reservoir)", h.Count(), n)
	}
	if len(h.samples) != maxSamples {
		t.Fatalf("reservoir holds %d samples, want cap %d", len(h.samples), maxSamples)
	}
	if h.Min() != 0 || h.Max() != float64(n-1) {
		t.Fatalf("Min/Max = %v/%v, want exact 0/%d", h.Min(), h.Max(), n-1)
	}
	if got, want := h.Mean(), float64(n-1)/2; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Mean = %v, want exact %v", got, want)
	}
	// Uniform input 0..n-1: the reservoir p50 must land near the middle.
	if p50 := h.Quantile(0.5); p50 < float64(n)*0.4 || p50 > float64(n)*0.6 {
		t.Fatalf("p50 = %v, implausible for uniform 0..%d", p50, n-1)
	}
}

func TestHistogramDuration(t *testing.T) {
	h := NewHistogram()
	h.ObserveDuration(1500 * time.Millisecond)
	if got := h.Mean(); got != 1500 {
		t.Fatalf("Mean = %v ms, want 1500", got)
	}
}

func TestThroughput(t *testing.T) {
	tp := NewThroughput()
	tp.Add(30)
	time.Sleep(20 * time.Millisecond)
	tp.Stop()
	if tp.Count() != 30 {
		t.Fatalf("Count = %d", tp.Count())
	}
	rate := tp.PerMinute()
	if rate <= 0 {
		t.Fatalf("PerMinute = %v", rate)
	}
	// 30 events in ≥20 ms → at most 90k/minute, sanity bound.
	if rate > 100000 {
		t.Fatalf("PerMinute = %v, implausible", rate)
	}
	// Rate stays frozen after Stop.
	r1 := tp.PerMinute()
	time.Sleep(5 * time.Millisecond)
	if r2 := tp.PerMinute(); r1 != r2 {
		t.Fatalf("rate moved after Stop: %v → %v", r1, r2)
	}
}

// TestThroughputClampsTinyWindow is the regression test for PerMinute
// extrapolating from a sub-millisecond window: 10 events observed in a
// few microseconds must not report millions per minute.
func TestThroughputClampsTinyWindow(t *testing.T) {
	tp := NewThroughput()
	tp.Add(10)
	tp.Stop() // window is microseconds at most
	rate := tp.PerMinute()
	if rate <= 0 {
		t.Fatalf("PerMinute = %v, want > 0", rate)
	}
	// With the 1 ms clamp the ceiling is count × 60000.
	if max := 10 * 60000.0; rate > max {
		t.Fatalf("PerMinute = %v exceeds clamped ceiling %v", rate, max)
	}
}

func TestResourceSampler(t *testing.T) {
	s := NewResourceSampler()
	// Burn a little CPU so the sample is non-trivial on Linux.
	x := 0
	for i := 0; i < 5_000_000; i++ {
		x += i % 7
	}
	_ = x
	u := s.Sample()
	if u.HeapBytes == 0 || u.SysBytes == 0 {
		t.Fatalf("memory stats empty: %+v", u)
	}
	if u.Goroutines <= 0 {
		t.Fatalf("Goroutines = %d", u.Goroutines)
	}
	if u.CPUPercent < 0 {
		t.Fatalf("CPUPercent = %v", u.CPUPercent)
	}
	if u.String() == "" {
		t.Fatal("empty String()")
	}
	if pct := u.MemoryPercent(32 << 30); pct <= 0 || pct > 100 {
		t.Fatalf("MemoryPercent = %v", pct)
	}
	if u.MemoryPercent(0) != 0 {
		t.Fatal("MemoryPercent(0) should be 0")
	}
}
