package costmodel

import (
	"math"
	"testing"

	"github.com/ginja-dr/ginja/internal/cloud"
)

func s3() cloud.PriceSheet { return cloud.AmazonS3May2017() }

func TestDBStorageMatchesPaperExample(t *testing.T) {
	// §7.2: "the size of our database (10GB) implies in a fixed
	// CDB_Storage of $0.20" (with CR 1.43 and the 1.25 overhead).
	d := PaperEvaluationDeployment()
	c := Monthly(d, s3())
	if c.DBStorage < 0.18 || c.DBStorage > 0.22 {
		t.Fatalf("CDB_Storage = %.3f, paper says ≈$0.20", c.DBStorage)
	}
	// "a 10× bigger database, this cost will be $2".
	d.DBSizeGB = 100
	c = Monthly(d, s3())
	if c.DBStorage < 1.8 || c.DBStorage > 2.2 {
		t.Fatalf("CDB_Storage(100GB) = %.3f, paper says ≈$2", c.DBStorage)
	}
}

func TestFigure4Shape(t *testing.T) {
	// Figure 4: for each workload, bigger B → cheaper; at high update
	// rates cost scales ≈10× per 10× of B; at low rates it flattens to
	// the storage floor.
	p := s3()
	for _, w := range []float64{10, 100, 1000} {
		var prev float64 = math.Inf(1)
		for _, b := range []float64{10, 100, 1000} {
			d := PaperEvaluationDeployment()
			d.UpdatesPerMinute = w
			d.Batch = b
			total := Monthly(d, p).Total()
			if total >= prev {
				t.Fatalf("W=%v: cost not decreasing in B (B=%v: %.3f ≥ %.3f)", w, b, total, prev)
			}
			prev = total
		}
	}
	// W=1000, B=10: dominated by PUTs — 1000*43200/10 = 4.32M PUTs = $21.6.
	d := PaperEvaluationDeployment()
	d.UpdatesPerMinute = 1000
	d.Batch = 10
	c := Monthly(d, p)
	if c.WALPut < 20 || c.WALPut > 23 {
		t.Fatalf("CWAL_PUT(W=1000,B=10) = %.2f, want ≈21.6", c.WALPut)
	}
	// W=10, B=1000: close to the $0.20 storage floor.
	d.UpdatesPerMinute = 10
	d.Batch = 1000
	total := Monthly(d, p).Total()
	if total > 0.5 {
		t.Fatalf("low-rate large-batch cost = %.3f, want ≈ storage floor", total)
	}
}

func TestManyConfigsUnderOneDollar(t *testing.T) {
	// §7.2: "there are plenty of possible configurations that cost less
	// than $1 per month".
	p := s3()
	under := 0
	for _, w := range []float64{10, 50, 100} {
		for _, b := range []float64{100, 1000} {
			d := PaperEvaluationDeployment()
			d.UpdatesPerMinute = w
			d.Batch = b
			if Monthly(d, p).Total() < 1 {
				under++
			}
		}
	}
	if under < 4 {
		t.Fatalf("only %d/6 sampled configurations under $1", under)
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	rows := Table2(s3())
	if len(rows) != 4 {
		t.Fatalf("Table2 has %d rows", len(rows))
	}
	want := []struct {
		ginjaLo, ginjaHi float64
		vm               float64
	}{
		{0.35, 0.50, EC2LaboratoryVMMonthly}, // Lab 1 sync/min ≈ $0.42
		{1.30, 1.70, EC2LaboratoryVMMonthly}, // Lab 6 sync/min ≈ $1.50
		{18.0, 23.0, EC2HospitalVMMonthly},   // Hospital 1/min ≈ $20.3
		{19.0, 24.0, EC2HospitalVMMonthly},   // Hospital 6/min ≈ $21.4
	}
	for i, row := range rows {
		if row.Ginja < want[i].ginjaLo || row.Ginja > want[i].ginjaHi {
			t.Errorf("row %d (%s %v/min): Ginja = $%.2f, want [%.2f, %.2f]",
				i, row.Scenario, row.SyncsMin, row.Ginja, want[i].ginjaLo, want[i].ginjaHi)
		}
		if row.VM != want[i].vm {
			t.Errorf("row %d: VM = %.1f", i, row.VM)
		}
	}
}

func TestTable2SavingsFactors(t *testing.T) {
	// §7.2: laboratory 62×–222× cheaper; hospital ≈14× cheaper.
	p := s3()
	if f := Laboratory(1).SavingsFactor(p); f < 150 || f > 260 {
		t.Errorf("Laboratory 1/min savings = %.0f×, paper says ≈222×", f)
	}
	if f := Laboratory(6).SavingsFactor(p); f < 50 || f > 75 {
		t.Errorf("Laboratory 6/min savings = %.0f×, paper says ≈62×", f)
	}
	if f := Hospital(1).SavingsFactor(p); f < 11 || f > 17 {
		t.Errorf("Hospital savings = %.0f×, paper says ≈14×", f)
	}
}

func TestOneDollarFrontierMatchesFigure1(t *testing.T) {
	// Figure 1's named setups: A ≈ 35 GB at 50 syncs/h (one per 72 s),
	// B ≈ 20 GB at 120/h, C ≈ 4.3 GB at 240/h. Validate the shape within
	// a generous band (the paper reads values off a plot).
	p := s3()
	cases := []struct {
		syncsPerHour float64
		wantGB       float64
		tolerance    float64
	}{
		{50, 35, 10},
		{120, 20, 6},
		{240, 4.3, 3},
	}
	for _, tc := range cases {
		got := OneDollarMaxDBSizeGB(1.0, tc.syncsPerHour, p)
		if math.Abs(got-tc.wantGB) > tc.tolerance {
			t.Errorf("frontier(%v/h) = %.1f GB, want %v ± %v", tc.syncsPerHour, got, tc.wantGB, tc.tolerance)
		}
	}
}

func TestOneDollarFrontierMonotonic(t *testing.T) {
	points := OneDollarFrontier(1.0, 250, s3())
	if len(points) != 250 {
		t.Fatalf("%d points", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].MaxDBSizeGB > points[i-1].MaxDBSizeGB {
			t.Fatalf("frontier not monotonically decreasing at %v/h", points[i].SyncsPerHour)
		}
	}
	// Beyond the budget's PUT capacity the frontier hits zero.
	exhausted := OneDollarMaxDBSizeGB(1.0, 1000, s3())
	if exhausted != 0 {
		t.Fatalf("frontier(1000/h) = %v, want 0", exhausted)
	}
}

func TestRecoveryCostMatchesPaper(t *testing.T) {
	// §7.3: recovering the laboratory costs ≈$1.125 and the hospital
	// ≈$112.5; in-region recovery is free.
	p := s3()
	lab := RecoveryCost(Laboratory(1).Deployment(), p, false)
	if lab < 0.7 || lab > 1.6 {
		t.Errorf("laboratory recovery = $%.2f, paper says ≈$1.125", lab)
	}
	hosp := RecoveryCost(Hospital(1).Deployment(), p, false)
	if hosp < 75 || hosp > 130 {
		t.Errorf("hospital recovery = $%.2f, paper says ≈$112.5", hosp)
	}
	if free := RecoveryCost(Hospital(1).Deployment(), p, true); free != 0 {
		t.Errorf("in-region recovery = $%.2f, want 0", free)
	}
}

func TestCostStringer(t *testing.T) {
	c := Monthly(PaperEvaluationDeployment(), s3())
	if c.String() == "" {
		t.Fatal("empty string")
	}
}

func TestNormalizedDefaults(t *testing.T) {
	d := Deployment{DBSizeGB: 5, UpdatesPerMinute: 10}.normalized()
	if d.Batch != 1 || d.CompressionRatio != 1 || d.WALPageBytes == 0 {
		t.Fatalf("normalized = %+v", d)
	}
}

// TestPropertyCostMonotonicity: the monthly cost must be monotone in each
// input — up with database size and update rate, down with batch size and
// compression ratio.
func TestPropertyCostMonotonicity(t *testing.T) {
	p := s3()
	base := PaperEvaluationDeployment()
	baseline := Monthly(base, p).Total()

	bigger := base
	bigger.DBSizeGB *= 2
	if Monthly(bigger, p).Total() <= baseline {
		t.Fatal("cost not increasing in DB size")
	}
	busier := base
	busier.UpdatesPerMinute *= 2
	if Monthly(busier, p).Total() <= baseline {
		t.Fatal("cost not increasing in update rate")
	}
	batched := base
	batched.Batch *= 2
	if Monthly(batched, p).Total() >= baseline {
		t.Fatal("cost not decreasing in batch size")
	}
	squeezed := base
	squeezed.CompressionRatio *= 2
	if Monthly(squeezed, p).Total() >= baseline {
		t.Fatal("cost not decreasing in compression ratio")
	}
}

func TestCostComponentsNonNegative(t *testing.T) {
	p := s3()
	for _, w := range []float64{0, 1, 10000} {
		for _, b := range []float64{1, 1000000} {
			d := PaperEvaluationDeployment()
			d.UpdatesPerMinute = w
			d.Batch = b
			c := Monthly(d, p)
			if c.DBStorage < 0 || c.DBPut < 0 || c.WALStorage < 0 || c.WALPut < 0 {
				t.Fatalf("negative component at W=%v B=%v: %+v", w, b, c)
			}
		}
	}
}
