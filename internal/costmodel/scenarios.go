package costmodel

import "github.com/ginja-dr/ginja/internal/cloud"

// EC2 comparison constants (Table 2, computed by the authors with the AWS
// calculator in May 2017, and §3's m3.medium quote).
const (
	// EC2M3MediumMonthly is the cheapest EC2 VM indicated for small to
	// mid-size databases (m3.medium with Linux), $/month.
	EC2M3MediumMonthly = 48.24
	// EC2LaboratoryVMMonthly is m3.medium + VPN + EBS 100 IOPS.
	EC2LaboratoryVMMonthly = 93.4
	// EC2HospitalVMMonthly is m3.large + VPN + EBS 500 IOPS.
	EC2HospitalVMMonthly = 291.5
)

// Scenario is a real-application configuration from Table 2.
type Scenario struct {
	Name string
	// DBSizeGB and UpdatesPerMinute describe the protected database.
	DBSizeGB         float64
	UpdatesPerMinute float64
	// SyncsPerMinute is the Ginja synchronization rate (1/min → RPO ≈ 1
	// minute; 6/min → RPO ≈ 10 s).
	SyncsPerMinute float64
	// VMMonthly is the cost of the EC2 Pilot-Light alternative.
	VMMonthly float64
}

// Laboratory returns the clinical-laboratory scenario: 10 GB database,
// 30 transactions/minute of which 20 % are updates (6 updates/minute).
func Laboratory(syncsPerMinute float64) Scenario {
	return Scenario{
		Name:             "Laboratory",
		DBSizeGB:         10,
		UpdatesPerMinute: 6,
		SyncsPerMinute:   syncsPerMinute,
		VMMonthly:        EC2LaboratoryVMMonthly,
	}
}

// Hospital returns the hospital scenario: 1 TB database, 630
// transactions/minute with ~138 updates/minute.
func Hospital(syncsPerMinute float64) Scenario {
	return Scenario{
		Name:             "Hospital",
		DBSizeGB:         1000,
		UpdatesPerMinute: 138,
		SyncsPerMinute:   syncsPerMinute,
		VMMonthly:        EC2HospitalVMMonthly,
	}
}

// Deployment converts the scenario into cost-model inputs: the Batch is
// derived from the synchronization rate (B = W / syncs-per-minute, so one
// upload happens per synchronization interval).
func (s Scenario) Deployment() Deployment {
	d := PaperEvaluationDeployment()
	d.DBSizeGB = s.DBSizeGB
	d.UpdatesPerMinute = s.UpdatesPerMinute
	d.Batch = s.UpdatesPerMinute / s.SyncsPerMinute
	return d
}

// GinjaMonthly returns the scenario's Ginja cost under the price sheet.
func (s Scenario) GinjaMonthly(p cloud.PriceSheet) Cost {
	return Monthly(s.Deployment(), p)
}

// SavingsFactor returns how many times cheaper Ginja is than the VM
// alternative.
func (s Scenario) SavingsFactor(p cloud.PriceSheet) float64 {
	total := s.GinjaMonthly(p).Total()
	if total == 0 {
		return 0
	}
	return s.VMMonthly / total
}

// Table2Row is one line of the paper's Table 2.
type Table2Row struct {
	Scenario  string
	SyncsMin  float64
	Ginja     float64
	VM        float64
	Savings   float64
	Breakdown Cost
}

// Table2 regenerates the paper's Table 2 rows (Laboratory and Hospital,
// each at 1 and 6 synchronizations per minute).
func Table2(p cloud.PriceSheet) []Table2Row {
	scenarios := []Scenario{Laboratory(1), Laboratory(6), Hospital(1), Hospital(6)}
	rows := make([]Table2Row, 0, len(scenarios))
	for _, s := range scenarios {
		c := s.GinjaMonthly(p)
		rows = append(rows, Table2Row{
			Scenario:  s.Name,
			SyncsMin:  s.SyncsPerMinute,
			Ginja:     c.Total(),
			VM:        s.VMMonthly,
			Savings:   s.SavingsFactor(p),
			Breakdown: c,
		})
	}
	return rows
}
