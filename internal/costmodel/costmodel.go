// Package costmodel implements the paper's monetary cost model (§7): the
// four-component monthly cost equation for running Ginja, the $1/month
// capacity frontier of Figure 1, the cost-vs-workload curves of Figure 4,
// the real-application comparison of Table 2, and the recovery-cost
// estimate of §7.3.
package costmodel

import (
	"fmt"
	"math"

	"github.com/ginja-dr/ginja/internal/cloud"
)

// Time constants used by the paper's formulas.
const (
	hoursPerMonth   = 30 * 24
	minutesPerMonth = 30 * 24 * 60
)

// Deployment describes one protected database and its Ginja configuration,
// in the units the paper's §7.1 formulas use.
type Deployment struct {
	// DBSizeGB is the local database size in GB.
	DBSizeGB float64
	// UpdatesPerMinute is the workload's update rate (W).
	UpdatesPerMinute float64
	// Batch is Ginja's B parameter: updates per cloud synchronization.
	Batch float64
	// WALPageBytes is the WAL page size (8 KiB for PostgreSQL).
	WALPageBytes float64
	// RecordsPerPage is how many update records fit one WAL page
	// (RecPerPage; the paper's evaluation uses 75).
	RecordsPerPage float64
	// CheckpointPeriodMin is the DBMS checkpoint period in minutes.
	CheckpointPeriodMin float64
	// CheckpointDurationMin is the checkpoint duration plus its upload
	// time, in minutes (CkptTime = period + duration in the paper's
	// WAL-storage term).
	CheckpointDurationMin float64
	// CheckpointSizeMB is the average incremental checkpoint size in MB.
	CheckpointSizeMB float64
	// CompressionRatio (CR) divides stored data sizes; 1 = no compression,
	// 1.43 = the paper's ZLIB ratio ("every 1MB becomes 700kB").
	CompressionRatio float64
	// MaxObjectMB caps each uploaded object (20 MB in the paper).
	MaxObjectMB float64
	// DumpOverhead is the average cloud-DB-size multiplier due to
	// incremental checkpoints: the 150 % cap makes the average 125 %.
	DumpOverhead float64
}

// PaperEvaluationDeployment returns the configuration behind Figure 4:
// a 10 GB database, 8 KiB pages holding 75 records, checkpoints every 60
// minutes taking 20 minutes, compression ratio 1.43.
func PaperEvaluationDeployment() Deployment {
	return Deployment{
		DBSizeGB:              10,
		UpdatesPerMinute:      100,
		Batch:                 100,
		WALPageBytes:          8 * 1024,
		RecordsPerPage:        75,
		CheckpointPeriodMin:   60,
		CheckpointDurationMin: 20,
		CheckpointSizeMB:      100,
		CompressionRatio:      1.43,
		MaxObjectMB:           20,
		DumpOverhead:          1.25,
	}
}

// normalized fills zero fields with the paper's defaults.
func (d Deployment) normalized() Deployment {
	def := PaperEvaluationDeployment()
	if d.WALPageBytes == 0 {
		d.WALPageBytes = def.WALPageBytes
	}
	if d.RecordsPerPage == 0 {
		d.RecordsPerPage = def.RecordsPerPage
	}
	if d.CheckpointPeriodMin == 0 {
		d.CheckpointPeriodMin = def.CheckpointPeriodMin
	}
	if d.CheckpointDurationMin == 0 {
		d.CheckpointDurationMin = def.CheckpointDurationMin
	}
	if d.CheckpointSizeMB == 0 {
		d.CheckpointSizeMB = def.CheckpointSizeMB
	}
	if d.CompressionRatio == 0 {
		d.CompressionRatio = 1
	}
	if d.MaxObjectMB == 0 {
		d.MaxObjectMB = def.MaxObjectMB
	}
	if d.DumpOverhead == 0 {
		d.DumpOverhead = def.DumpOverhead
	}
	if d.Batch == 0 {
		d.Batch = 1
	}
	return d
}

// Cost is the itemised monthly operational cost (§7.1):
// CTotal = CDB_Storage + CDB_PUT + CWAL_Storage + CWAL_PUT.
type Cost struct {
	DBStorage  float64
	DBPut      float64
	WALStorage float64
	WALPut     float64
}

// Total returns CTotal in dollars per month.
func (c Cost) Total() float64 { return c.DBStorage + c.DBPut + c.WALStorage + c.WALPut }

// String implements fmt.Stringer.
func (c Cost) String() string {
	return fmt.Sprintf("$%.3f/month (DB storage $%.3f + DB PUTs $%.3f + WAL storage $%.3f + WAL PUTs $%.3f)",
		c.Total(), c.DBStorage, c.DBPut, c.WALStorage, c.WALPut)
}

// Monthly evaluates the §7.1 cost model for a deployment under the given
// price sheet.
func Monthly(d Deployment, p cloud.PriceSheet) Cost {
	d = d.normalized()
	var c Cost

	// CDB_Storage = DBSize × 1.25 / CR × CStorage
	c.DBStorage = d.DBSizeGB * d.DumpOverhead / d.CompressionRatio * p.StoragePerGBMonth

	// CDB_PUT = (month / CkptPeriod) × (CkptSize / 20MB) × CPUT
	checkpointsPerMonth := minutesPerMonth / d.CheckpointPeriodMin
	putsPerCheckpoint := math.Ceil(d.CheckpointSizeMB / d.MaxObjectMB)
	c.DBPut = checkpointsPerMonth * putsPerCheckpoint * p.PerPUT

	// CWAL_Storage = (W × CkptTime / RecPerPage + 1) × PageSize/CR × CStorage
	ckptTime := d.CheckpointPeriodMin + d.CheckpointDurationMin
	pages := d.UpdatesPerMinute*ckptTime/d.RecordsPerPage + 1
	pageGB := d.WALPageBytes / float64(cloud.GB)
	c.WALStorage = pages * pageGB / d.CompressionRatio * p.StoragePerGBMonth

	// CWAL_PUT = W × month / B × CPUT
	c.WALPut = d.UpdatesPerMinute * minutesPerMonth / d.Batch * p.PerPUT

	return c
}

// RecoveryCost estimates the cost of recovering the database (§7.3):
// downloading all DB and WAL objects costs about 4× their monthly storage
// (egress pricing), and is free when recovering to a VM in the same cloud
// region.
func RecoveryCost(d Deployment, p cloud.PriceSheet, inRegion bool) float64 {
	if inRegion {
		return 0
	}
	c := Monthly(d, p)
	storageMonthly := c.DBStorage + c.WALStorage
	if p.StoragePerGBMonth == 0 {
		return 0
	}
	return storageMonthly / p.StoragePerGBMonth * p.EgressPerGB
}

// OneDollarMaxDBSizeGB returns the largest database (in GB) protectable
// within the monthly budget given syncsPerHour cloud synchronizations —
// the frontier of Figure 1. The WAL-side terms are negligible at these
// scales; the budget splits between PUT operations and DB storage, with
// the paper's 1.25 average dump overhead.
func OneDollarMaxDBSizeGB(budget float64, syncsPerHour float64, p cloud.PriceSheet) float64 {
	putCost := syncsPerHour * hoursPerMonth * p.PerPUT
	remaining := budget - putCost
	if remaining <= 0 {
		return 0
	}
	return remaining / (p.StoragePerGBMonth * 1.25)
}

// FrontierPoint is one sample of the Figure 1 curve.
type FrontierPoint struct {
	SyncsPerHour float64
	MaxDBSizeGB  float64
}

// OneDollarFrontier samples the Figure 1 frontier from 1 to maxSyncsPerHour.
func OneDollarFrontier(budget float64, maxSyncsPerHour int, p cloud.PriceSheet) []FrontierPoint {
	points := make([]FrontierPoint, 0, maxSyncsPerHour)
	for s := 1; s <= maxSyncsPerHour; s++ {
		points = append(points, FrontierPoint{
			SyncsPerHour: float64(s),
			MaxDBSizeGB:  OneDollarMaxDBSizeGB(budget, float64(s), p),
		})
	}
	return points
}
