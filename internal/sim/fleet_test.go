package sim

import (
	"testing"
)

// TestRunFleetSmall drives the fleet drill across several seeds at a
// size where every seed still finishes quickly: admission churn, the
// single-tenant crash, recovery, and the survivors' health all run on
// each seed's deterministic schedule.
func TestRunFleetSmall(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		res, err := RunFleet(FleetConfig{
			Seed:           seed,
			Tenants:        12,
			Writers:        4,
			StepsPerWriter: 30,
			Churn:          3,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Commits == 0 {
			t.Fatalf("seed %d: no commits", seed)
		}
		if res.ChurnEvicted == 0 || res.ChurnAdmitted != res.ChurnEvicted {
			t.Fatalf("seed %d: churn evicted=%d admitted=%d", seed, res.ChurnEvicted, res.ChurnAdmitted)
		}
		if res.CrashedTenant == "" || res.CrashedCut < -1 {
			t.Fatalf("seed %d: crash drill incomplete: %+v", seed, res)
		}
		t.Logf("seed %d: %d commits across %d writers, crash %s cut=%d flushed=%d, misses=%d, virtual %s",
			seed, res.Commits, res.Writers, res.CrashedTenant, res.CrashedCut,
			res.CrashedFlushed, res.SafetyDeadlineMisses, res.VirtualElapsed)
	}
}

// TestRunFleetThousand is the scale drill: a thousand tenant databases
// in one process over one bucket — most idle, their timers multiplexed
// on the shared clock — with churn, a crash and a recovery running in
// the middle of them. The idle tenants must cost nothing: zero Safety
// deadline misses fleet-wide.
func TestRunFleetThousand(t *testing.T) {
	if testing.Short() {
		t.Skip("1k-tenant drill skipped in -short")
	}
	res, err := RunFleet(FleetConfig{
		Seed:           7,
		Tenants:        1000,
		Writers:        8,
		StepsPerWriter: 25,
		Churn:          20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tenants != 1000 {
		t.Fatalf("Tenants = %d", res.Tenants)
	}
	if res.ChurnEvicted != 20 && res.ChurnEvicted != res.ChurnAdmitted {
		t.Fatalf("churn evicted=%d admitted=%d", res.ChurnEvicted, res.ChurnAdmitted)
	}
	if res.SafetyDeadlineMisses != 0 {
		t.Fatalf("SafetyDeadlineMisses = %d, want 0 (idle tenants starved)", res.SafetyDeadlineMisses)
	}
	t.Logf("1000 tenants: %d commits, crash %s cut=%d flushed=%d, churn %d, virtual %s",
		res.Commits, res.CrashedTenant, res.CrashedCut, res.CrashedFlushed,
		res.ChurnEvicted, res.VirtualElapsed)
}
