// Package sim is Ginja's deterministic simulation testing (DST) driver:
// it runs the full stack — minidb on an intercepted FS, the commit
// pipeline, the checkpointer, and a latency-modelled simulated cloud —
// entirely in virtual time on a simclock.SimClock, executes a seed-derived
// fault schedule (provider outages, transient-failure windows, a primary
// crash), recovers on a fresh machine, and checks the consistent-prefix
// invariant: the recovered database must equal the state after some prefix
// of the commit history, and that prefix must cover everything the last
// successful Flush guaranteed.
//
// Because TB/TS timeouts, retry backoff and cloud latency all run on the
// virtual clock, a simulated run that spans minutes of modelled time
// finishes in milliseconds of wall time, and rare interleavings — TB
// expiry on a quiet queue, TS blocking through an outage, a crash with a
// checkpoint upload in flight — are reached on purpose instead of by
// winning wall-clock races.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"time"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/cloud/cloudsim"
	"github.com/ginja-dr/ginja/internal/core"
	"github.com/ginja-dr/ginja/internal/dbevent"
	"github.com/ginja-dr/ginja/internal/minidb"
	"github.com/ginja-dr/ginja/internal/minidb/pgengine"
	"github.com/ginja-dr/ginja/internal/simclock"
	"github.com/ginja-dr/ginja/internal/vfs"
)

// Config selects what to simulate.
type Config struct {
	// Seed drives everything: the fault schedule, the Batch/Safety
	// parameters and the workload.
	Seed int64
	// Schedule overrides the generated fault schedule (nil = Generate(Seed)).
	Schedule *Schedule
	// CrashDuringCheckpoint issues one final DBMS checkpoint right before
	// the crash and kills the primary a few virtual milliseconds in — long
	// enough for the first part PUTs of the multi-part upload to land, short
	// enough that the rest never do. The crash lands mid part-stream by
	// construction instead of by winning a race.
	CrashDuringCheckpoint bool
	// Follower runs a warm standby tailing the bucket (on its own seed-drawn
	// poll interval) throughout the workload, and recovers by Promote
	// instead of a cold Recover — the warm-standby drill.
	Follower bool
	// PromoteDuringOutage (requires Follower) starts a provider outage at
	// the instant of the disaster and ends it one virtual second later:
	// Promote's final catch-up must ride the outage out under the retry
	// policy rather than fail.
	PromoteDuringOutage bool
	// FillerRows pre-populates this many untracked rows before the workload
	// so the database (and its dumps) carry real bulk: the cold-vs-warm RTO
	// comparison in the experiments depends on recovery work scaling with
	// database size while promote scales with lag.
	FillerRows int
	// Adaptive runs the primary with the AdaptiveBatching controller: the
	// effective (B, TB) move during the workload (shrinking TB on think
	// lulls, re-solving as PUT latency samples arrive), so faults land
	// while knobs are mid-flight — the schedule's outages and the crash
	// must still yield a consistent prefix.
	Adaptive bool
	// Deltas runs the primary with delta checkpoints on a seed-drawn small
	// MaxDeltaChain (so chains fold into fresh bases during the run): the
	// 150 % rule ships sparse chain elements instead of full re-dumps, and
	// the crash/recovery invariants must hold across chains, folds, and
	// crashes that land mid-delta upload.
	Deltas bool
}

// Result summarises one simulation run.
type Result struct {
	Schedule *Schedule
	// Params actually used (derived from the seed).
	Batch         int
	Safety        int
	BatchTimeout  time.Duration
	SafetyTimeout time.Duration
	UploadRetries int
	// Data-path parallelism knobs (also seed-derived). MaxObjectSize is
	// drawn small enough that dumps split into several parts, so the
	// concurrent part-upload path is exercised under faults.
	MaxObjectSize       int64
	CheckpointUploaders int
	RecoveryFetchers    int
	// Workload outcome.
	Commits     int
	Checkpoints int64
	FlushedUpTo int // last commit seq guaranteed durable by a Flush (-1: none)
	Cut         int // recovered prefix cut point (-1: empty state)
	// Fault-path activity.
	BlockedTime time.Duration // virtual time commits spent blocked on Safety/TS
	Retries     int64
	PipelineErr string // fatal replication error on the crashed primary, if any
	// Commit-path packing activity on the crashed primary: total WAL
	// objects uploaded and how many carried a packed multi-write body.
	WALObjects       int64
	PackedWALObjects int64
	// Deltas / Dumps are the chain elements the crashed primary shipped
	// durably (the delta drills assert the chain path actually ran).
	Deltas int64
	Dumps  int64
	// OrphanParts is how many stranded DB parts the recovery instance's
	// cloud listing pruned and recorded (leftovers of an upload the crash
	// cut off mid part-stream).
	OrphanParts int
	// VirtualElapsed is how much virtual time the run spanned.
	VirtualElapsed time.Duration
	// RPO is the measured data-loss window at the instant of the crash:
	// the age (virtual clock) of the oldest update the cloud had not yet
	// acknowledged when the primary died. Zero means the disaster struck a
	// fully synchronized instance.
	RPO time.Duration
	// RTO is the measured recovery time (virtual clock) of the replacement
	// site's Recover call — or, when Promoted, of the warm standby's
	// Promote; Recovery is its per-phase budget either way.
	RTO      time.Duration
	Recovery *core.RecoveryBreakdown
	// Promoted reports that recovery went through the warm standby.
	Promoted bool
	// FollowerLag is the standby's replication lag at the instant of the
	// crash (how long ago it last held everything the bucket listed).
	FollowerLag time.Duration
}

// chaosWrite is one committed write in history order.
type chaosWrite struct {
	seq     int
	key     string
	deleted bool
}

// simProfile is the network model used in simulation: WAN-shaped (fixed
// RTT plus bandwidth terms) but an order of magnitude faster than the
// paper's Lisbon→S3 link so virtual timers stay small relative to the
// TB/TS ranges the seeds draw.
func simProfile() cloudsim.Profile {
	return cloudsim.Profile{
		BaseLatency:       40 * time.Millisecond,
		UploadBandwidth:   8e6,
		DownloadBandwidth: 30e6,
		JitterFraction:    0.10,
	}
}

// errCrashed is what the killable store returns once the primary is dead.
var errCrashed = errors.New("sim: primary site crashed")

// killableStore cuts the crashed primary off from the cloud: a real dead
// machine stops mid-upload, it does not keep draining its queue while the
// replacement site recovers.
type killableStore struct {
	inner cloud.ObjectStore
	dead  atomic.Bool
}

func (k *killableStore) kill() { k.dead.Store(true) }

func (k *killableStore) Put(ctx context.Context, name string, data []byte) error {
	if k.dead.Load() {
		return errCrashed
	}
	return k.inner.Put(ctx, name, data)
}

func (k *killableStore) Get(ctx context.Context, name string) ([]byte, error) {
	if k.dead.Load() {
		return nil, errCrashed
	}
	return k.inner.Get(ctx, name)
}

func (k *killableStore) List(ctx context.Context, prefix string) ([]cloud.ObjectInfo, error) {
	if k.dead.Load() {
		return nil, errCrashed
	}
	return k.inner.List(ctx, prefix)
}

func (k *killableStore) Delete(ctx context.Context, name string) error {
	if k.dead.Load() {
		return errCrashed
	}
	return k.inner.Delete(ctx, name)
}

// Run executes one simulated disaster-recovery scenario and checks the
// consistent-prefix invariant. The returned error, if any, embeds the
// schedule so the run can be replayed from its seed.
func Run(cfg Config) (*Result, error) {
	sched := cfg.Schedule
	if sched == nil {
		sched = Generate(cfg.Seed)
	}
	res := &Result{Schedule: sched, FlushedUpTo: -1, Cut: -2}
	fail := func(format string, args ...any) (*Result, error) {
		return res, fmt.Errorf("sim: [%s] %s", sched, fmt.Sprintf(format, args...))
	}

	// Workload/parameter randomness is a separate deterministic stream
	// from the schedule's, so tweaking Generate never re-rolls workloads.
	rng := rand.New(rand.NewSource(sched.Seed ^ 0x5ee1e55edBeef))

	clk := simclock.NewSim()
	start := clk.Now()
	stopPump := clk.Pump()
	defer stopPump()

	simStore := cloudsim.New(cloud.NewMemStore(), cloudsim.Options{
		Profile: simProfile(),
		Clock:   clk,
		Seed:    sched.Seed,
	})
	kill := &killableStore{inner: simStore}

	params := core.DefaultParams()
	params.Clock = clk
	params.Batch = 1 + rng.Intn(8)
	params.Safety = params.Batch * (2 + rng.Intn(16))
	params.BatchTimeout = time.Duration(50+rng.Intn(1950)) * time.Millisecond
	params.SafetyTimeout = time.Duration(1+rng.Intn(14)) * time.Second
	params.RetryBaseDelay = 20 * time.Millisecond
	params.DumpThreshold = 1.1 + rng.Float64()
	if rng.Intn(3) == 0 {
		// Bounded retries: a long enough outage exhausts them and drives
		// the pipeline down the fatal path.
		params.UploadRetries = 2 + rng.Intn(8)
	} else {
		params.UploadRetries = 0 // retry forever, ride the outage out
	}
	// The data-path knobs draw from their own stream so that adding them
	// did not re-roll every existing seed's workload above.
	prng := rand.New(rand.NewSource(sched.Seed ^ 0x9a7a11e1))
	params.MaxObjectSize = int64(1024 * (2 + prng.Intn(7))) // 2–8 KiB: dumps split into parts
	params.CheckpointUploaders = 1 + prng.Intn(5)
	params.RecoveryFetchers = 1 + prng.Intn(5)
	if cfg.Adaptive {
		// Gated behind the flag (and drawing from a third stream) so that
		// non-adaptive seeds keep their exact workloads. The tight/loose
		// ceiling split makes some seeds clamp B to Safety and others run
		// the cost-bound solver, so faults land on both regimes.
		arng := rand.New(rand.NewSource(sched.Seed ^ 0xada97e))
		params.AdaptiveBatching = true
		params.CostCeilingPerDay = []float64{0.25, 1.0, 4.0}[arng.Intn(3)]
	}
	if cfg.Deltas {
		// Gated and on a fourth stream for the same reason as Adaptive: seeds
		// that don't opt in keep their exact workloads. Compression is off and
		// the threshold sits just above 1 so cloud bytes track raw bytes and
		// most checkpoints cross it — short runs then actually build chains,
		// which the small MaxDeltaChain folds mid-run.
		drng := rand.New(rand.NewSource(sched.Seed ^ 0xde17a5))
		params.DeltaCheckpoints = true
		params.MaxDeltaChain = 2 + drng.Intn(5) // 2–6: chains fold mid-run
		params.Compress = false
		params.DumpThreshold = 1.05 + drng.Float64()*0.3
	}
	res.Batch, res.Safety = params.Batch, params.Safety
	res.BatchTimeout, res.SafetyTimeout = params.BatchTimeout, params.SafetyTimeout
	res.UploadRetries = params.UploadRetries
	res.MaxObjectSize = params.MaxObjectSize
	res.CheckpointUploaders = params.CheckpointUploaders
	res.RecoveryFetchers = params.RecoveryFetchers

	// Arm the fault schedule on the virtual clock.
	applyEvent := func(ev Event) {
		switch ev.Kind {
		case OutageStart:
			simStore.StartOutage()
		case OutageEnd:
			simStore.EndOutage()
		case TransientStart:
			simStore.SetFailureRate(ev.Rate)
		case TransientEnd:
			simStore.SetFailureRate(0)
		}
	}
	timers := make([]simclock.Timer, 0, len(sched.Events))
	for _, ev := range sched.Events {
		ev := ev
		timers = append(timers, clk.AfterFunc(ev.At, func() { applyEvent(ev) }))
	}

	ctx := context.Background()
	localFS := vfs.NewMemFS()
	g, err := core.New(localFS, kill, dbevent.NewPGProcessor(), params)
	if err != nil {
		return fail("new: %v", err)
	}
	if err := g.Boot(ctx); err != nil {
		return fail("boot: %v", err)
	}
	engine := func() minidb.Engine { return pgengine.NewWithSizes(512, 8192, 1024) }
	db, err := minidb.Open(g.FS(), engine(), minidb.Options{})
	if err != nil {
		return fail("open db: %v", err)
	}
	if err := db.CreateTable("kv", 4); err != nil {
		return fail("create table: %v", err)
	}
	if cfg.FillerRows > 0 {
		// Bulk outside the tracked key set: it weighs down dumps and cold
		// restores without touching the prefix check.
		pad := strings.Repeat("b", 128)
		for i := 0; i < cfg.FillerRows; i++ {
			if err := db.Update(func(tx *minidb.Txn) error {
				return tx.Put("kv", []byte(fmt.Sprintf("pad-%05d", i)), []byte(pad))
			}); err != nil {
				return fail("filler put %d: %v", i, err)
			}
		}
		if err := db.Checkpoint(); err != nil {
			return fail("filler checkpoint: %v", err)
		}
		if !g.Flush(2 * time.Minute) {
			return fail("filler flush timed out")
		}
	}

	// The warm standby tails the same bucket from a second site on its own
	// cadence; the primary's crash does not touch it.
	var fol *core.Follower
	if cfg.Follower {
		fparams := params
		fparams.FollowInterval = time.Duration(100+prng.Intn(800)) * time.Millisecond
		fparams.UploadRetries = 0 // Promote's catch-up rides outages out
		fol, err = core.NewFollower(vfs.NewMemFS(), simStore, dbevent.NewPGProcessor(), fparams)
		if err != nil {
			return fail("new follower: %v", err)
		}
		if err := fol.Start(ctx); err != nil {
			return fail("follower start: %v", err)
		}
	}

	keys := make([]string, 6)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	var (
		history []chaosWrite
		seq     int
		ckpts   int64
	)
	for i := 0; i < sched.Steps; i++ {
		if i == sched.CrashAfterStep {
			break
		}
		switch r := rng.Intn(100); {
		case r < 60: // put
			key := keys[rng.Intn(len(keys))]
			value := fmt.Sprintf("%s#%d", key, seq)
			if err := db.Update(func(tx *minidb.Txn) error {
				return tx.Put("kv", []byte(key), []byte(value))
			}); err != nil {
				return fail("step %d put: %v", i, err)
			}
			history = append(history, chaosWrite{seq: seq, key: key})
			seq++
		case r < 72: // delete
			key := keys[rng.Intn(len(keys))]
			if err := db.Update(func(tx *minidb.Txn) error {
				return tx.Delete("kv", []byte(key))
			}); err != nil {
				return fail("step %d delete: %v", i, err)
			}
			history = append(history, chaosWrite{seq: seq, key: key, deleted: true})
			seq++
		case r < 84: // checkpoint (a crash right after leaves it in flight)
			if err := db.Checkpoint(); err != nil {
				return fail("step %d checkpoint: %v", i, err)
			}
			ckpts++
		case r < 94: // flush: everything so far becomes guaranteed-durable
			if g.Flush(2 * time.Minute) {
				covered := true
				for tries := 0; func() int64 {
					s := g.Stats()
					return s.Checkpoints + s.Dumps + s.Deltas
				}() < ckpts; tries++ {
					if g.Err() != nil || tries > 5000 {
						covered = false
						break
					}
					clk.Sleep(50 * time.Millisecond)
				}
				if covered {
					res.FlushedUpTo = seq - 1
				}
			}
		default: // think: let TB (and sometimes TS) expire on a quiet queue
			clk.Sleep(time.Duration(rng.Int63n(int64(2 * params.BatchTimeout))))
		}
	}
	res.Commits = seq
	res.Checkpoints = ckpts

	// CRASH: the primary site dies with whatever is in flight. Cut it off
	// from the cloud, then shut its goroutines down (bounded in virtual
	// time); a fatal pipeline error here is a legitimate outcome.
	if cfg.CrashDuringCheckpoint && seq > 0 {
		// Fresh keys dirty enough pages that the checkpoint's upload spans
		// several parts at the seed-drawn MaxObjectSize (2–8 KiB). The keys
		// are outside the tracked set, so the prefix check is unaffected.
		filler := strings.Repeat("s", 120)
		for i := 0; i < 96; i++ {
			if err := db.Update(func(tx *minidb.Txn) error {
				return tx.Put("kv", []byte(fmt.Sprintf("stride-%03d", i)), []byte(filler))
			}); err != nil {
				return fail("pre-crash filler put %d: %v", i, err)
			}
		}
		if err := db.Checkpoint(); err != nil {
			return fail("pre-crash checkpoint: %v", err)
		}
		// One base cloud latency is enough for the first wave of part PUTs
		// to land but not the stragglers behind them in the uploader pool.
		clk.Sleep(simProfile().BaseLatency + 20*time.Millisecond)
	}
	// Measure the realized data-loss window at the instant of the
	// disaster, then cut the primary off.
	res.RPO = g.RPO()
	if fol != nil {
		res.FollowerLag = fol.Lag()
	}
	kill.kill()
	for _, t := range timers {
		t.Stop()
	}
	stats := g.Stats()
	res.BlockedTime = stats.BlockedTime
	res.Retries = stats.UploadRetries
	res.PipelineErr = stats.LastError
	res.WALObjects = stats.WALObjectsUploaded
	res.PackedWALObjects = stats.PackedWALObjects
	res.Deltas = stats.Deltas
	res.Dumps = stats.Dumps
	_ = g.Close()

	// The replacement site sees a healthy provider (the schedule's faults
	// hit the primary's lifetime; recovery-time faults are exercised by
	// the retry-path tests and the promote-during-outage drill below).
	simStore.EndOutage()
	simStore.SetFailureRate(0)

	var g2 *core.Ginja
	if fol != nil {
		if cfg.PromoteDuringOutage {
			// The disaster window: the provider is dark when promote starts
			// and comes back one virtual second in. The final catch-up LIST
			// and GETs must ride it out under the retry policy.
			simStore.StartOutage()
			clk.AfterFunc(time.Second, simStore.EndOutage)
		}
		recoverStart := clk.Now()
		g2, err = fol.Promote(ctx)
		if err != nil {
			return fail("promote: %v", err)
		}
		res.RTO = clk.Since(recoverStart)
		res.Promoted = true
	} else {
		freshFS := vfs.NewMemFS()
		g2, err = core.New(freshFS, simStore, dbevent.NewPGProcessor(), params)
		if err != nil {
			return fail("new recovery instance: %v", err)
		}
		recoverStart := clk.Now()
		if err := g2.Recover(ctx); err != nil {
			return fail("recover: %v", err)
		}
		res.RTO = clk.Since(recoverStart)
	}
	res.Recovery = g2.Stats().LastRecovery
	defer g2.Close()
	res.OrphanParts = len(g2.View().OrphanParts())
	db2, err := minidb.Open(g2.FS(), engine(), minidb.Options{})
	if err != nil {
		return fail("DBMS restart after recovery: %v", err)
	}

	// A crash can predate even the CreateTable WAL write reaching the
	// cloud; a missing table is simply the empty prefix.
	recovered := make(map[string]string)
	for _, key := range keys {
		v, err := db2.Get("kv", []byte(key))
		switch {
		case err == nil:
			recovered[key] = string(v)
		case errors.Is(err, minidb.ErrNotFound):
		case errors.Is(err, minidb.ErrNoTable):
		default:
			return fail("get %s: %v", key, err)
		}
	}

	// stateAt computes the expected per-key state after the first cut+1
	// committed writes.
	stateAt := func(cut int) map[string]string {
		state := make(map[string]string)
		for _, w := range history {
			if w.seq > cut {
				break
			}
			if w.deleted {
				delete(state, w.key)
			} else {
				state[w.key] = fmt.Sprintf("%s#%d", w.key, w.seq)
			}
		}
		return state
	}
	matches := func(cut int) bool {
		want := stateAt(cut)
		if len(want) != len(recovered) {
			return false
		}
		for k, v := range want {
			if recovered[k] != v {
				return false
			}
		}
		return true
	}

	// Property 2: some cut point reproduces the recovered state exactly.
	for c := len(history) - 1; c >= -1; c-- {
		if matches(c) {
			res.Cut = c
			break
		}
	}
	res.VirtualElapsed = clk.Since(start)
	if res.Cut == -2 {
		return fail("recovered state matches no prefix of the commit history.\nrecovered: %v\nhistory: %+v",
			recovered, history)
	}
	// Property 1: the cut covers everything the last Flush guaranteed.
	if res.Cut < res.FlushedUpTo {
		return fail("recovered cut %d is older than the flushed frontier %d", res.Cut, res.FlushedUpTo)
	}
	return res, nil
}
