package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/cloud/cloudsim"
	"github.com/ginja-dr/ginja/internal/core"
	"github.com/ginja-dr/ginja/internal/dbevent"
	"github.com/ginja-dr/ginja/internal/minidb"
	"github.com/ginja-dr/ginja/internal/minidb/pgengine"
	"github.com/ginja-dr/ginja/internal/simclock"
	"github.com/ginja-dr/ginja/internal/vfs"
)

// FleetConfig selects the shape of a fleet simulation drill: many tenant
// databases in one process over one simulated bucket, with admission
// churn and a single-tenant crash mid-run.
type FleetConfig struct {
	// Seed drives the workload, the churn choices and the crash victim.
	Seed int64
	// Tenants is how many databases are admitted up front.
	Tenants int
	// Writers is how many of them run a commit workload (the rest are
	// idle: booted, timers armed, pipelines empty — the common shape of
	// a big fleet). 0 means min(Tenants, 16).
	Writers int
	// StepsPerWriter is the workload length per writing tenant.
	StepsPerWriter int
	// Churn evicts this many idle tenants mid-run and admits the same
	// number of fresh ones, while the writers keep committing.
	Churn int
}

// FleetResult summarises one fleet drill.
type FleetResult struct {
	Tenants              int
	Writers              int
	Commits              int
	ChurnEvicted         int
	ChurnAdmitted        int
	CrashedTenant        string
	CrashedCut           int // recovered prefix cut for the crashed tenant (-1: empty)
	CrashedFlushed       int // flushed frontier the cut must cover (-1: none)
	SafetyDeadlineMisses int64
	VirtualElapsed       time.Duration
}

// prefixKillStore fails every operation on names under a killed prefix:
// one tenant's machine dies mid-upload while the rest of the fleet —
// sharing the same bucket — keeps working.
type prefixKillStore struct {
	inner cloud.ObjectStore

	mu   sync.Mutex
	dead map[string]bool // "/"-terminated prefixes
}

func (p *prefixKillStore) kill(prefix string)   { p.setDead(prefix, true) }
func (p *prefixKillStore) revive(prefix string) { p.setDead(prefix, false) }

func (p *prefixKillStore) setDead(prefix string, dead bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dead == nil {
		p.dead = make(map[string]bool)
	}
	p.dead[prefix+"/"] = dead
}

func (p *prefixKillStore) check(name string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for pre, dead := range p.dead {
		if dead && strings.HasPrefix(name, pre) {
			return errCrashed
		}
	}
	return nil
}

func (p *prefixKillStore) Put(ctx context.Context, name string, data []byte) error {
	if err := p.check(name); err != nil {
		return err
	}
	return p.inner.Put(ctx, name, data)
}

func (p *prefixKillStore) Get(ctx context.Context, name string) ([]byte, error) {
	if err := p.check(name); err != nil {
		return nil, err
	}
	return p.inner.Get(ctx, name)
}

func (p *prefixKillStore) List(ctx context.Context, prefix string) ([]cloud.ObjectInfo, error) {
	if err := p.check(prefix); err != nil {
		return nil, err
	}
	return p.inner.List(ctx, prefix)
}

func (p *prefixKillStore) Delete(ctx context.Context, name string) error {
	if err := p.check(name); err != nil {
		return err
	}
	return p.inner.Delete(ctx, name)
}

// fleetWriter is one tenant running a workload.
type fleetWriter struct {
	id      string
	g       *core.Ginja
	db      *minidb.DB
	history []chaosWrite
	seq     int
	flushed int
}

// RunFleet executes one fleet drill in virtual time: admit Tenants
// databases over one simulated bucket, run commit workloads on Writers
// of them, churn admissions mid-run, crash one writing tenant (its
// subtree of the bucket goes dark mid-upload), recover it on a fresh
// machine, and check (a) the crashed tenant's consistent-prefix
// invariant and (b) that every other tenant sailed through untouched.
func RunFleet(cfg FleetConfig) (*FleetResult, error) {
	if cfg.Tenants < 2 {
		return nil, fmt.Errorf("sim: fleet needs ≥ 2 tenants, got %d", cfg.Tenants)
	}
	writers := cfg.Writers
	if writers == 0 {
		writers = cfg.Tenants
		if writers > 16 {
			writers = 16
		}
	}
	if writers > cfg.Tenants {
		writers = cfg.Tenants
	}
	steps := cfg.StepsPerWriter
	if steps == 0 {
		steps = 40
	}
	res := &FleetResult{Tenants: cfg.Tenants, Writers: writers, CrashedCut: -2, CrashedFlushed: -1}
	fail := func(format string, args ...any) (*FleetResult, error) {
		return res, fmt.Errorf("sim: fleet seed %d: %s", cfg.Seed, fmt.Sprintf(format, args...))
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0xf1ee7))

	clk := simclock.NewSim()
	start := clk.Now()
	stopPump := clk.Pump()
	defer stopPump()

	simStore := cloudsim.New(cloud.NewMemStore(), cloudsim.Options{
		Profile: simProfile(),
		Clock:   clk,
		Seed:    cfg.Seed,
	})
	kill := &prefixKillStore{inner: simStore}
	fleet, err := core.NewFleet(core.FleetParams{
		Store:       kill,
		Clock:       clk,
		UploadSlots: 32,
		FetchSlots:  16,
		TenantCap:   2,
	})
	if err != nil {
		return fail("new fleet: %v", err)
	}
	defer fleet.Close()

	tenantParams := func() core.Params {
		p := core.DefaultParams()
		p.Batch = 1 + rng.Intn(4)
		p.Safety = p.Batch * (4 + rng.Intn(8))
		p.BatchTimeout = time.Duration(100+rng.Intn(900)) * time.Millisecond
		p.SafetyTimeout = time.Duration(2+rng.Intn(8)) * time.Second
		p.RetryBaseDelay = 20 * time.Millisecond
		p.Uploaders = 1 // fleet shape: per-tenant goroutines stay minimal
		return p
	}

	ctx := context.Background()
	tenantID := func(i int) string { return fmt.Sprintf("t%04d", i) }
	admit := func(id string) (*core.Ginja, error) {
		g, err := fleet.Admit(id, vfs.NewMemFS(), dbevent.NewPGProcessor(), tenantParams())
		if err != nil {
			return nil, err
		}
		if err := g.Boot(ctx); err != nil {
			return nil, err
		}
		return g, nil
	}
	for i := 0; i < cfg.Tenants; i++ {
		if _, err := admit(tenantID(i)); err != nil {
			return fail("admit %d: %v", i, err)
		}
	}

	// The first `writers` tenants get databases and workloads; everyone
	// else stays idle with timers armed.
	engine := func() minidb.Engine { return pgengine.NewWithSizes(512, 8192, 1024) }
	ws := make([]*fleetWriter, writers)
	for i := range ws {
		id := tenantID(i)
		g := fleet.Tenant(id)
		db, err := minidb.Open(g.FS(), engine(), minidb.Options{})
		if err != nil {
			return fail("open db %s: %v", id, err)
		}
		if err := db.CreateTable("kv", 4); err != nil {
			return fail("create table %s: %v", id, err)
		}
		ws[i] = &fleetWriter{id: id, g: g, db: db, flushed: -1}
	}

	// Interleave the writers' workloads step by step so their traffic
	// actually contends on the shared pools, with the churn landing in
	// the middle of the run.
	keys := []string{"k0", "k1", "k2", "k3"}
	step := func(w *fleetWriter) error {
		switch r := rng.Intn(100); {
		case r < 65:
			key := keys[rng.Intn(len(keys))]
			value := fmt.Sprintf("%s#%d", key, w.seq)
			if err := w.db.Update(func(tx *minidb.Txn) error {
				return tx.Put("kv", []byte(key), []byte(value))
			}); err != nil {
				return err
			}
			w.history = append(w.history, chaosWrite{seq: w.seq, key: key})
			w.seq++
		case r < 75:
			key := keys[rng.Intn(len(keys))]
			if err := w.db.Update(func(tx *minidb.Txn) error {
				return tx.Delete("kv", []byte(key))
			}); err != nil {
				return err
			}
			w.history = append(w.history, chaosWrite{seq: w.seq, key: key, deleted: true})
			w.seq++
		case r < 85:
			if err := w.db.Checkpoint(); err != nil {
				return err
			}
		case r < 95:
			if w.g.Flush(2 * time.Minute) {
				w.flushed = w.seq - 1
			}
		default:
			clk.Sleep(time.Duration(rng.Int63n(int64(500 * time.Millisecond))))
		}
		return nil
	}
	churnAt := steps / 2
	for s := 0; s < steps; s++ {
		if s == churnAt && cfg.Churn > 0 {
			// Evict idle tenants and admit replacements while the
			// writers keep committing around this loop.
			for c := 0; c < cfg.Churn; c++ {
				victim := tenantID(writers + rng.Intn(cfg.Tenants-writers))
				if fleet.Tenant(victim) == nil {
					continue // already churned out this round
				}
				if err := fleet.Evict(victim); err != nil {
					return fail("churn evict %s: %v", victim, err)
				}
				res.ChurnEvicted++
				fresh := fmt.Sprintf("churn%04d", c)
				if _, err := admit(fresh); err != nil {
					return fail("churn admit %s: %v", fresh, err)
				}
				res.ChurnAdmitted++
			}
		}
		for _, w := range ws {
			if err := step(w); err != nil {
				return fail("step %d tenant %s: %v", s, w.id, err)
			}
		}
	}
	for _, w := range ws {
		res.Commits += w.seq
	}

	// CRASH one writing tenant: its bucket subtree goes dark with
	// whatever its pipeline had in flight, then the dead instance is
	// evicted (its Close surfaces the cut-off upload errors — a
	// legitimate crash outcome, not a drill failure).
	victim := ws[rng.Intn(len(ws))]
	res.CrashedTenant = victim.id
	victimPrefix := core.DefaultFleetPrefixRoot + "/" + victim.id
	kill.kill(victimPrefix)
	_ = fleet.Evict(victim.id)
	kill.revive(victimPrefix)

	// Every survivor keeps committing and flushing cleanly after the
	// crash — the blast radius of one tenant's death is that tenant.
	for _, w := range ws {
		if w == victim {
			continue
		}
		if err := w.db.Update(func(tx *minidb.Txn) error {
			return tx.Put("kv", []byte("post-crash"), []byte(w.id))
		}); err != nil {
			return fail("post-crash put %s: %v", w.id, err)
		}
		if !w.g.Flush(2 * time.Minute) {
			return fail("post-crash flush %s timed out", w.id)
		}
		if err := w.g.Err(); err != nil {
			return fail("survivor %s broken after %s crashed: %v", w.id, victim.id, err)
		}
	}

	// Recover the crashed tenant on a fresh machine, same prefix.
	g2, err := fleet.Admit(victim.id, vfs.NewMemFS(), dbevent.NewPGProcessor(), tenantParams())
	if err != nil {
		return fail("re-admit %s: %v", victim.id, err)
	}
	if err := g2.Recover(ctx); err != nil {
		return fail("recover %s: %v", victim.id, err)
	}
	db2, err := minidb.Open(g2.FS(), engine(), minidb.Options{})
	if err != nil {
		return fail("DBMS restart %s: %v", victim.id, err)
	}
	recovered := make(map[string]string)
	for _, key := range keys {
		v, err := db2.Get("kv", []byte(key))
		switch {
		case err == nil:
			recovered[key] = string(v)
		case errors.Is(err, minidb.ErrNotFound):
		case errors.Is(err, minidb.ErrNoTable):
		default:
			return fail("get %s: %v", key, err)
		}
	}
	stateAt := func(cut int) map[string]string {
		state := make(map[string]string)
		for _, w := range victim.history {
			if w.seq > cut {
				break
			}
			if w.deleted {
				delete(state, w.key)
			} else {
				state[w.key] = fmt.Sprintf("%s#%d", w.key, w.seq)
			}
		}
		return state
	}
	matches := func(cut int) bool {
		want := stateAt(cut)
		if len(want) != len(recovered) {
			return false
		}
		for k, v := range want {
			if recovered[k] != v {
				return false
			}
		}
		return true
	}
	for c := len(victim.history) - 1; c >= -1; c-- {
		if matches(c) {
			res.CrashedCut = c
			break
		}
	}
	res.CrashedFlushed = victim.flushed
	res.SafetyDeadlineMisses = fleet.Stats().SafetyDeadlineMisses
	res.VirtualElapsed = clk.Since(start)
	if res.CrashedCut == -2 {
		return fail("recovered state of %s matches no prefix of its history.\nrecovered: %v\nhistory: %+v",
			victim.id, recovered, victim.history)
	}
	if res.CrashedCut < res.CrashedFlushed {
		return fail("recovered cut %d of %s is older than its flushed frontier %d",
			res.CrashedCut, victim.id, res.CrashedFlushed)
	}
	return res, nil
}
