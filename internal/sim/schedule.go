package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"time"
)

// EventKind names one scripted fault transition.
type EventKind string

// Fault-schedule event kinds.
const (
	// OutageStart takes the whole provider down (every operation fails).
	OutageStart EventKind = "outage-start"
	// OutageEnd restores the provider.
	OutageEnd EventKind = "outage-end"
	// TransientStart opens a flaky window: operations fail with
	// probability Rate.
	TransientStart EventKind = "transient-start"
	// TransientEnd closes the flaky window.
	TransientEnd EventKind = "transient-end"
)

// Event is one fault transition at a virtual timestamp.
type Event struct {
	// At is the virtual time offset from simulation start.
	At   time.Duration
	Kind EventKind
	// Rate is the failure probability for TransientStart events.
	Rate float64
}

// Schedule is a fully deterministic description of one simulation run:
// how many workload steps to execute, when the primary site crashes, and
// which cloud faults occur at which virtual timestamps. Everything is
// derived from Seed, so printing the schedule is enough to replay a
// failing run.
type Schedule struct {
	Seed int64
	// Steps is the number of workload steps (puts, deletes, checkpoints,
	// flushes, think pauses).
	Steps int
	// CrashAfterStep crashes the primary after this many steps have
	// completed (Steps means "no mid-run crash": the disaster strikes
	// after the workload, with whatever is still in flight).
	CrashAfterStep int
	// Events are the cloud fault transitions, sorted by At.
	Events []Event
}

// eventHorizon bounds the virtual window fault events are drawn from.
const eventHorizon = 30 * time.Second

// Generate derives the fault schedule for a seed. The same seed always
// yields the same schedule.
func Generate(seed int64) *Schedule {
	rng := rand.New(rand.NewSource(seed))
	steps := 30 + rng.Intn(60)
	s := &Schedule{
		Seed:           seed,
		Steps:          steps,
		CrashAfterStep: rng.Intn(steps + 1),
	}
	// Non-overlapping outage windows. Durations are drawn long enough, on
	// some seeds, to outlast the Safety timeout and force TS blocking.
	cursor := time.Duration(0)
	for n := rng.Intn(3); n > 0; n-- {
		start := cursor + time.Duration(rng.Int63n(int64(eventHorizon/2)))
		dur := 500*time.Millisecond + time.Duration(rng.Int63n(int64(15*time.Second)))
		s.Events = append(s.Events,
			Event{At: start, Kind: OutageStart},
			Event{At: start + dur, Kind: OutageEnd})
		cursor = start + dur + 100*time.Millisecond
	}
	// Non-overlapping transient-failure windows (independent cursor: a
	// flaky window may coincide with an outage; the outage dominates).
	cursor = 0
	for n := rng.Intn(3); n > 0; n-- {
		start := cursor + time.Duration(rng.Int63n(int64(eventHorizon/2)))
		dur := 200*time.Millisecond + time.Duration(rng.Int63n(int64(8*time.Second)))
		rate := 0.2 + 0.6*rng.Float64()
		s.Events = append(s.Events,
			Event{At: start, Kind: TransientStart, Rate: rate},
			Event{At: start + dur, Kind: TransientEnd})
		cursor = start + dur + 100*time.Millisecond
	}
	sortEvents(s.Events)
	return s
}

func sortEvents(evs []Event) {
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && evs[j].At < evs[j-1].At; j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
}

// String renders the schedule as a single replayable line.
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d steps=%d crash-after-step=%d", s.Seed, s.Steps, s.CrashAfterStep)
	if len(s.Events) == 0 {
		b.WriteString(" events=none")
		return b.String()
	}
	b.WriteString(" events=[")
	for i, ev := range s.Events {
		if i > 0 {
			b.WriteString("; ")
		}
		switch ev.Kind {
		case TransientStart:
			fmt.Fprintf(&b, "%s(%.2f)@%s", ev.Kind, ev.Rate, ev.At)
		default:
			fmt.Fprintf(&b, "%s@%s", ev.Kind, ev.At)
		}
	}
	b.WriteString("]")
	return b.String()
}
