package sim

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestGenerateDeterministic: the same seed must always produce the same
// schedule — that is the whole replay story.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a, b := Generate(seed), Generate(seed)
		if a.String() != b.String() {
			t.Fatalf("seed %d: schedule not deterministic:\n%s\n%s", seed, a, b)
		}
		if a.Steps < 30 || a.Steps >= 90 {
			t.Fatalf("seed %d: steps %d out of range", seed, a.Steps)
		}
		if a.CrashAfterStep < 0 || a.CrashAfterStep > a.Steps {
			t.Fatalf("seed %d: crash-after-step %d out of [0,%d]", seed, a.CrashAfterStep, a.Steps)
		}
	}
}

// TestGenerateWellFormed: fault windows must be properly paired and
// ordered so outages always end.
func TestGenerateWellFormed(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		s := Generate(seed)
		outageOpen, transientOpen := 0, 0
		last := time.Duration(-1)
		for _, ev := range s.Events {
			if ev.At < last {
				t.Fatalf("seed %d: events not sorted: %s", seed, s)
			}
			last = ev.At
			switch ev.Kind {
			case OutageStart:
				outageOpen++
			case OutageEnd:
				outageOpen--
			case TransientStart:
				transientOpen++
				if ev.Rate < 0.2 || ev.Rate > 0.8 {
					t.Fatalf("seed %d: transient rate %v out of range", seed, ev.Rate)
				}
			case TransientEnd:
				transientOpen--
			}
			if outageOpen < 0 || outageOpen > 1 || transientOpen < 0 || transientOpen > 1 {
				t.Fatalf("seed %d: unbalanced fault windows: %s", seed, s)
			}
		}
		if outageOpen != 0 || transientOpen != 0 {
			t.Fatalf("seed %d: fault window left open: %s", seed, s)
		}
	}
}

// TestScheduleString renders a replayable one-liner.
func TestScheduleString(t *testing.T) {
	s := &Schedule{
		Seed:           7,
		Steps:          40,
		CrashAfterStep: 12,
		Events: []Event{
			{At: 2 * time.Second, Kind: OutageStart},
			{At: 5 * time.Second, Kind: OutageEnd},
		},
	}
	got := s.String()
	for _, want := range []string{"seed=7", "steps=40", "crash-after-step=12", "outage-start@2s", "outage-end@5s"} {
		if !strings.Contains(got, want) {
			t.Fatalf("String() = %q, missing %q", got, want)
		}
	}
	if got := (&Schedule{Seed: 1, Steps: 3}).String(); !strings.Contains(got, "events=none") {
		t.Fatalf("empty schedule String() = %q", got)
	}
}

// TestRunCleanSchedule: no faults at all — the invariant must hold and the
// flushed frontier must be honoured.
func TestRunCleanSchedule(t *testing.T) {
	res, err := Run(Config{Seed: 3, Schedule: &Schedule{Seed: 3, Steps: 60, CrashAfterStep: 60}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits == 0 {
		t.Fatal("clean run committed nothing")
	}
	if res.Cut < res.FlushedUpTo {
		t.Fatalf("cut %d < flushed %d", res.Cut, res.FlushedUpTo)
	}
}

// TestRunOutageAcrossCrash: the provider is down from early on and stays
// down until after the primary would have crashed, so the crash happens
// with uploads retrying into the void. Recovery on a healed provider must
// still see a consistent prefix.
func TestRunOutageAcrossCrash(t *testing.T) {
	sched := &Schedule{
		Seed:           11,
		Steps:          50,
		CrashAfterStep: 25,
		Events: []Event{
			{At: 100 * time.Millisecond, Kind: OutageStart},
			{At: 25 * time.Second, Kind: OutageEnd},
		},
	}
	res, err := Run(Config{Seed: 11, Schedule: sched})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("outage run: commits=%d cut=%d flushed=%d blocked=%v retries=%d pipelineErr=%q",
		res.Commits, res.Cut, res.FlushedUpTo, res.BlockedTime, res.Retries, res.PipelineErr)
}

// TestRunImmediateCrash: crash before any workload step — recovery of an
// empty history must yield the empty prefix.
func TestRunImmediateCrash(t *testing.T) {
	res, err := Run(Config{Seed: 5, Schedule: &Schedule{Seed: 5, Steps: 30, CrashAfterStep: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits != 0 || res.Cut != -1 {
		t.Fatalf("immediate crash: commits=%d cut=%d, want 0 and -1", res.Commits, res.Cut)
	}
}

// TestRunTransientFlaky: a long flaky window with a high failure rate; the
// retry path must absorb it without violating the invariant.
func TestRunTransientFlaky(t *testing.T) {
	sched := &Schedule{
		Seed:           21,
		Steps:          60,
		CrashAfterStep: 40,
		Events: []Event{
			{At: 50 * time.Millisecond, Kind: TransientStart, Rate: 0.7},
			{At: 20 * time.Second, Kind: TransientEnd},
		},
	}
	res, err := Run(Config{Seed: 21, Schedule: sched})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries == 0 {
		t.Log("warning: flaky window absorbed no retries (workload may have ended early)")
	}
}

// TestRunVirtualTimeCompression: a run spanning many virtual seconds must
// finish in a small fraction of that wall-clock time — the point of the
// simulation harness.
func TestRunVirtualTimeCompression(t *testing.T) {
	wallStart := time.Now()
	res, err := Run(Config{Seed: 13})
	wall := time.Since(wallStart)
	if err != nil {
		t.Fatal(err)
	}
	if res.VirtualElapsed < 100*time.Millisecond {
		t.Fatalf("suspiciously little virtual time elapsed: %v", res.VirtualElapsed)
	}
	if wall > res.VirtualElapsed {
		t.Fatalf("no time compression: wall %v >= virtual %v", wall, res.VirtualElapsed)
	}
	t.Logf("virtual %v in wall %v (%.0fx compression)",
		res.VirtualElapsed, wall, float64(res.VirtualElapsed)/float64(wall))
}

// TestRunErrorMentionsSchedule: failures must print the replayable
// schedule line.
func TestRunErrorMentionsSchedule(t *testing.T) {
	// An impossible schedule isn't constructible from the outside, so
	// exercise the error path with a config that fails fast: crash
	// immediately cannot fail, so instead check the fail() formatting via
	// the Schedule string embedded in Run's own errors by simulating one.
	sched := Generate(99)
	_, err := Run(Config{Seed: 99, Schedule: sched})
	if err != nil {
		if !strings.Contains(err.Error(), sched.String()) {
			t.Fatalf("error does not embed schedule: %v", err)
		}
	}
}

// TestRunCrashMidPackedBatch: an outage stalls WAL uploads so packed
// multi-write objects pile up in flight, then the primary crashes while
// the provider is still down — the packed batch dies mid-upload. The
// consistent-prefix invariant (checked inside Run) must hold: recovery
// applies only the consecutive-ts object prefix, so the recovered state
// is some prefix of the commit history and never older than the flushed
// frontier, bounding the loss to S. The seeds draw Batch 2–8, so the
// aggregator packs several writes per object; the test additionally
// requires that the workload really produced packed objects.
func TestRunCrashMidPackedBatch(t *testing.T) {
	seeds := []int64{17, 23, 42, 57, 91, 137}
	if testing.Short() {
		seeds = seeds[:3]
	}
	var packed int64
	for _, seed := range seeds {
		sched := &Schedule{
			Seed:           seed,
			Steps:          60,
			CrashAfterStep: 45,
			Events: []Event{
				// The outage opens early and outlives the crash: whatever
				// packed objects are in flight at the crash never land.
				{At: 2 * time.Second, Kind: OutageStart},
				{At: 10 * time.Minute, Kind: OutageEnd},
			},
		}
		res, err := Run(Config{Seed: seed, Schedule: sched})
		if err != nil {
			t.Fatal(err)
		}
		packed += res.PackedWALObjects
		t.Logf("seed=%d: batch=%d walObjects=%d packed=%d commits=%d cut=%d flushed=%d",
			seed, res.Batch, res.WALObjects, res.PackedWALObjects,
			res.Commits, res.Cut, res.FlushedUpTo)
	}
	if packed == 0 {
		t.Fatal("no seed produced packed WAL objects; the schedule no longer exercises packing")
	}
}

// TestRunCrashMidPartStream: the primary dies with a multi-part DB upload
// in flight — a final checkpoint is issued and the machine is killed one
// cloud round-trip later, so the first part PUTs land and the rest never
// do. The recovered replacement must prune the stranded parts from its
// listing (recording them as orphans so the next dump's GC can sweep them
// and their generation slot is never re-issued) while the
// consistent-prefix invariant, checked inside Run, still holds. At least
// one seed must actually strand parts, or the schedule stopped exercising
// the mid-stream crash.
func TestRunCrashMidPartStream(t *testing.T) {
	seeds := []int64{7, 19, 31, 53, 77, 113, 151, 211}
	if testing.Short() {
		seeds = seeds[:4]
	}
	totalOrphans := 0
	for _, seed := range seeds {
		sched := &Schedule{Seed: seed, Steps: 50, CrashAfterStep: 50}
		res, err := Run(Config{Seed: seed, Schedule: sched, CrashDuringCheckpoint: true})
		if err != nil {
			t.Fatal(err)
		}
		totalOrphans += res.OrphanParts
		t.Logf("seed=%d: maxObj=%d uploaders=%d commits=%d orphanParts=%d cut=%d flushed=%d",
			seed, res.MaxObjectSize, res.CheckpointUploaders,
			res.Commits, res.OrphanParts, res.Cut, res.FlushedUpTo)
	}
	if totalOrphans == 0 {
		t.Fatal("no seed stranded orphan parts; the crash no longer lands mid part-stream")
	}
}

// TestRunFlappingProviderDuringDumps: repeated short outages while the
// workload checkpoints, with the seed-derived small MaxObjectSize forcing
// every dump to split into several concurrently-uploaded parts. An outage
// landing between part PUTs leaves orphan parts in the bucket; the
// consistent-prefix invariant must survive them (the recovery listing
// prunes incomplete objects instead of trusting them).
func TestRunFlappingProviderDuringDumps(t *testing.T) {
	seeds := []int64{101, 202, 303, 404, 505, 606, 707, 808}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			var events []Event
			for i := 0; i < 6; i++ {
				start := time.Duration(i)*4*time.Second + 500*time.Millisecond
				events = append(events,
					Event{At: start, Kind: OutageStart},
					Event{At: start + 900*time.Millisecond, Kind: OutageEnd})
			}
			sched := &Schedule{Seed: seed, Steps: 70, CrashAfterStep: 55, Events: events}
			res, err := Run(Config{Seed: seed, Schedule: sched})
			if err != nil {
				t.Fatal(err)
			}
			if res.MaxObjectSize > 8192 {
				t.Fatalf("MaxObjectSize = %d; the schedule relies on dumps splitting", res.MaxObjectSize)
			}
			t.Logf("flapping run: maxObj=%d ckptUploaders=%d fetchers=%d commits=%d ckpts=%d cut=%d flushed=%d retries=%d",
				res.MaxObjectSize, res.CheckpointUploaders, res.RecoveryFetchers,
				res.Commits, res.Checkpoints, res.Cut, res.FlushedUpTo, res.Retries)
		})
	}
}

// TestRunWarmStandbyDrill: a follower tails the bucket across seeded
// workloads (checkpoint churn, GC, flaky windows included) and recovery
// goes through Promote. The consistent-prefix invariant and the flushed
// floor must hold exactly as for cold recovery.
func TestRunWarmStandbyDrill(t *testing.T) {
	seeds := []int64{7, 23, 42, 77, 131}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			res, err := Run(Config{Seed: seed, Follower: true})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Promoted {
				t.Fatal("warm drill did not promote")
			}
			if res.Recovery == nil || res.Recovery.Mode != "promote" {
				t.Fatalf("Recovery = %+v, want promote breakdown", res.Recovery)
			}
			t.Logf("warm drill: commits=%d cut=%d flushed=%d lag=%v rto=%v",
				res.Commits, res.Cut, res.FlushedUpTo, res.FollowerLag, res.RTO)
		})
	}
}

// TestRunPromoteDuringOutage: the disaster takes the provider down with
// it; Promote starts against a dark bucket and must ride the outage out
// through the retry policy instead of failing the handoff.
func TestRunPromoteDuringOutage(t *testing.T) {
	res, err := Run(Config{Seed: 57, Follower: true, PromoteDuringOutage: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Promoted {
		t.Fatal("promote-during-outage drill did not promote")
	}
	// The outage spans the first virtual second of the handoff, so the
	// promote RTO must reflect riding it out.
	if res.RTO < time.Second {
		t.Fatalf("RTO = %v; promote cannot have finished inside the outage window", res.RTO)
	}
	t.Logf("promote-during-outage: cut=%d flushed=%d rto=%v", res.Cut, res.FlushedUpTo, res.RTO)
}

// TestRunFillerScalesColdNotWarm: with heavy untracked bulk in the
// database, cold recovery pays for the whole dump while promote pays only
// for the lag — the separation the warm-standby experiment measures.
func TestRunFillerScalesColdNotWarm(t *testing.T) {
	cold, err := Run(Config{Seed: 99, FillerRows: 600})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Run(Config{Seed: 99, FillerRows: 600, Follower: true})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Promoted || !warm.Promoted {
		t.Fatalf("modes crossed: cold.Promoted=%v warm.Promoted=%v", cold.Promoted, warm.Promoted)
	}
	t.Logf("filler drill: cold rto=%v (%d objects) vs warm rto=%v (%d objects)",
		cold.RTO, cold.Recovery.Objects, warm.RTO, warm.Recovery.Objects)
	if warm.RTO >= cold.RTO {
		t.Fatalf("warm promote (%v) not faster than cold recover (%v) despite %d filler rows",
			warm.RTO, cold.RTO, 600)
	}
}

// TestRunAdaptiveOutageDuringShrunkTB: with the adaptive controller on,
// the workload's think pauses make the tuner shrink the effective batch
// timeout, so sealed-ahead batches are in flight when the outage opens —
// and the outage outlives the crash, so those batches die mid-PUT with
// the knobs mid-flight. The consistent-prefix invariant (checked inside
// Run) must hold exactly as with fixed knobs.
func TestRunAdaptiveOutageDuringShrunkTB(t *testing.T) {
	sched := &Schedule{
		Seed:           11,
		Steps:          50,
		CrashAfterStep: 25,
		Events: []Event{
			{At: 100 * time.Millisecond, Kind: OutageStart},
			{At: 25 * time.Second, Kind: OutageEnd},
		},
	}
	res, err := Run(Config{Seed: 11, Schedule: sched, Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("adaptive outage run: commits=%d cut=%d flushed=%d blocked=%v retries=%d",
		res.Commits, res.Cut, res.FlushedUpTo, res.BlockedTime, res.Retries)
}

// TestRunAdaptiveSeeds: the full seeded fault matrix (generated outage
// and flaky windows, random crash points) with moving knobs. Every seed
// must keep the consistent prefix and honour the flushed floor — the
// controller may retune B and TB but never weakens durability.
func TestRunAdaptiveSeeds(t *testing.T) {
	seeds := []int64{1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377, 610, 987, 1597, 2584, 4181, 6765, 10946}
	if testing.Short() {
		seeds = seeds[:5]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			res, err := Run(Config{Seed: seed, Adaptive: true})
			if err != nil {
				t.Fatal(err)
			}
			if res.Cut < res.FlushedUpTo {
				t.Fatalf("cut %d < flushed %d", res.Cut, res.FlushedUpTo)
			}
			t.Logf("adaptive seed=%d: batch=%d safety=%d commits=%d cut=%d flushed=%d retries=%d",
				seed, res.Batch, res.Safety, res.Commits, res.Cut, res.FlushedUpTo, res.Retries)
		})
	}
}

// TestRunDeltaSeeds: the seeded fault matrix with delta checkpoints on —
// the 150 % rule ships sparse chain elements, chains fold at the
// seed-drawn MaxDeltaChain, and GC retires superseded checkpoints as
// deltas land. Every seed must keep the consistent prefix and the
// flushed floor, and across the matrix at least one seed must actually
// ship a delta (otherwise the drill degraded into plain full re-dumps).
func TestRunDeltaSeeds(t *testing.T) {
	seeds := []int64{1, 3, 7, 13, 23, 42, 77, 131, 211, 377}
	if testing.Short() {
		seeds = seeds[:4]
	}
	var deltas atomic.Int64
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			// A longer run than the generated schedules, with filler bulk:
			// chains need checkpoints to build on and a mostly-clean database
			// for deltas to stay under the compact ratio. The crash lands with
			// a live chain; recovery resolves it.
			sched := &Schedule{Seed: seed, Steps: 120, CrashAfterStep: 100}
			res, err := Run(Config{Seed: seed, Schedule: sched, Deltas: true, FillerRows: 200})
			if err != nil {
				t.Fatal(err)
			}
			if res.Cut < res.FlushedUpTo {
				t.Fatalf("cut %d < flushed %d", res.Cut, res.FlushedUpTo)
			}
			deltas.Add(res.Deltas)
			t.Logf("delta seed=%d: deltas=%d ckpts=%d commits=%d cut=%d flushed=%d",
				seed, res.Deltas, res.Checkpoints, res.Commits, res.Cut, res.FlushedUpTo)
		})
	}
	t.Cleanup(func() {
		if deltas.Load() == 0 {
			t.Error("no seed shipped a delta; the drill no longer exercises chains")
		}
	})
}

// TestRunCrashMidDeltaUpload: the primary dies with a delta (or the fold
// dump replacing a maxed-out chain) mid part-stream — the final
// checkpoint is issued and the machine killed one cloud round-trip in.
// The replacement's listing must treat the truncated chain element like
// any incomplete group (prune it, record orphans) and recover a
// consistent prefix that honours the flushed floor.
func TestRunCrashMidDeltaUpload(t *testing.T) {
	seeds := []int64{7, 19, 31, 53, 77, 113, 151, 211}
	if testing.Short() {
		seeds = seeds[:4]
	}
	totalOrphans := 0
	var totalDeltas int64
	for _, seed := range seeds {
		sched := &Schedule{Seed: seed, Steps: 120, CrashAfterStep: 120}
		res, err := Run(Config{Seed: seed, Schedule: sched, Deltas: true, FillerRows: 200, CrashDuringCheckpoint: true})
		if err != nil {
			t.Fatal(err)
		}
		totalOrphans += res.OrphanParts
		totalDeltas += res.Deltas
		t.Logf("seed=%d: deltas=%d orphanParts=%d commits=%d cut=%d flushed=%d",
			seed, res.Deltas, res.OrphanParts, res.Commits, res.Cut, res.FlushedUpTo)
	}
	if totalOrphans == 0 {
		t.Fatal("no seed stranded orphan parts; the crash no longer lands mid-stream")
	}
	if totalDeltas == 0 {
		t.Fatal("no seed shipped a delta before the crash; the drill no longer exercises chains")
	}
}

// TestRunFollowerTailsCompactingChain: a warm standby tails a bucket
// whose primary ships delta chains that fold and garbage-collect under
// the follower's feet (superseded checkpoints retired as deltas land,
// chains replaced by fresh bases at MaxDeltaChain). Promote must still
// produce the consistent prefix — the tracker's base-before-delta
// ordering and the follower's GC-race tolerance carry the weight.
func TestRunFollowerTailsCompactingChain(t *testing.T) {
	seeds := []int64{7, 23, 42, 77, 131, 211}
	if testing.Short() {
		seeds = seeds[:3]
	}
	var deltas atomic.Int64
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			sched := &Schedule{Seed: seed, Steps: 120, CrashAfterStep: 100}
			res, err := Run(Config{Seed: seed, Schedule: sched, Deltas: true, FillerRows: 200, Follower: true})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Promoted {
				t.Fatal("delta follower drill did not promote")
			}
			deltas.Add(res.Deltas)
			t.Logf("seed=%d: deltas=%d lag=%v commits=%d cut=%d flushed=%d",
				seed, res.Deltas, res.FollowerLag, res.Commits, res.Cut, res.FlushedUpTo)
		})
	}
	t.Cleanup(func() {
		if deltas.Load() == 0 {
			t.Error("no seed shipped a delta; the follower drill no longer sees chains")
		}
	})
}
