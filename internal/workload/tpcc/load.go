package tpcc

import (
	"fmt"
	"math/rand"

	"github.com/ginja-dr/ginja/internal/minidb"
)

// Load populates the database with the initial TPC-C data set at the
// configured scale. It creates every table and fills warehouses,
// districts, customers, items and stock; orders start empty (they are
// produced by the workload itself).
func Load(db *minidb.DB, cfg Config) error {
	cfg = cfg.normalized()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Bucket counts scale with the warehouse count so the database's
	// on-disk size grows with the TPC-C scale factor, like a real
	// deployment — this is what makes the recovery-time experiment
	// (paper Figure 7) sensitive to the number of warehouses.
	w := uint32(cfg.Warehouses)
	for _, table := range Tables() {
		var buckets uint32
		switch table {
		case TableWarehouse:
			buckets = 4
		case TableItem:
			buckets = uint32(cfg.Items/4 + 1)
		case TableDistrict:
			buckets = 4 * w
		case TableCustomer, TableStock:
			buckets = 32 * w
		case TableOrders, TableNewOrder, TableHistory:
			buckets = 64 * w
		case TableOrderLine:
			buckets = 128 * w
		}
		if err := db.CreateTable(table, buckets); err != nil {
			return fmt.Errorf("tpcc: create %s: %w", table, err)
		}
	}

	// Items are global.
	for i := 1; i <= cfg.Items; i++ {
		item := Item{ID: i, Name: randName(rng, "ITEM-"), Price: 1 + rng.Float64()*99}
		if err := db.Update(func(tx *minidb.Txn) error {
			return tx.Put(TableItem, itemKey(i), encode(item))
		}); err != nil {
			return fmt.Errorf("tpcc: load item %d: %w", i, err)
		}
	}

	for w := 1; w <= cfg.Warehouses; w++ {
		wh := Warehouse{ID: w, Name: randName(rng, "WH-"), Tax: rng.Float64() * 0.2}
		if err := db.Update(func(tx *minidb.Txn) error {
			return tx.Put(TableWarehouse, warehouseKey(w), encode(wh))
		}); err != nil {
			return fmt.Errorf("tpcc: load warehouse %d: %w", w, err)
		}
		// Stock for every item in this warehouse, loaded in chunks to
		// keep transactions reasonably sized.
		const chunk = 50
		for start := 1; start <= cfg.Items; start += chunk {
			end := start + chunk
			if end > cfg.Items+1 {
				end = cfg.Items + 1
			}
			w := w
			if err := db.Update(func(tx *minidb.Txn) error {
				for i := start; i < end; i++ {
					s := Stock{IID: i, WID: w, Quantity: 50 + rng.Intn(50)}
					if err := tx.Put(TableStock, stockKey(w, i), encode(s)); err != nil {
						return err
					}
				}
				return nil
			}); err != nil {
				return fmt.Errorf("tpcc: load stock w%d: %w", w, err)
			}
		}
		for d := 1; d <= cfg.Districts; d++ {
			dist := District{ID: d, WID: w, Tax: rng.Float64() * 0.2, NextOID: 1, LastDlvO: 0}
			if err := db.Update(func(tx *minidb.Txn) error {
				return tx.Put(TableDistrict, districtKey(w, d), encode(dist))
			}); err != nil {
				return fmt.Errorf("tpcc: load district %d/%d: %w", w, d, err)
			}
			for c := 1; c <= cfg.Customers; c++ {
				cust := Customer{ID: c, DID: d, WID: w, Name: randName(rng, "CUST-"), Balance: -10}
				if err := db.Update(func(tx *minidb.Txn) error {
					return tx.Put(TableCustomer, customerKey(w, d, c), encode(cust))
				}); err != nil {
					return fmt.Errorf("tpcc: load customer %d/%d/%d: %w", w, d, c, err)
				}
			}
		}
	}
	return nil
}
