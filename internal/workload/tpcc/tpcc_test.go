package tpcc

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"github.com/ginja-dr/ginja/internal/minidb"
	"github.com/ginja-dr/ginja/internal/minidb/pgengine"
	"github.com/ginja-dr/ginja/internal/vfs"
)

func testDB(t *testing.T) *minidb.DB {
	t.Helper()
	db, err := minidb.Open(vfs.NewMemFS(), pgengine.NewWithSizes(1024, 64*1024, 1024), minidb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func smallConfig() Config {
	return Config{Warehouses: 1, Districts: 2, Customers: 5, Items: 20, Terminals: 2, Seed: 42}
}

func TestLoadCreatesSchema(t *testing.T) {
	db := testDB(t)
	cfg := smallConfig()
	if err := Load(db, cfg); err != nil {
		t.Fatal(err)
	}
	tables := db.Tables()
	if len(tables) != len(Tables()) {
		t.Fatalf("tables = %v", tables)
	}
	// Spot-check rows.
	raw, err := db.Get(TableWarehouse, warehouseKey(1))
	if err != nil {
		t.Fatal(err)
	}
	var wh Warehouse
	if err := decode(raw, &wh); err != nil {
		t.Fatal(err)
	}
	if wh.ID != 1 {
		t.Fatalf("warehouse = %+v", wh)
	}
	for d := 1; d <= cfg.Districts; d++ {
		var dist District
		raw, err := db.Get(TableDistrict, districtKey(1, d))
		if err != nil {
			t.Fatal(err)
		}
		if err := decode(raw, &dist); err != nil {
			t.Fatal(err)
		}
		if dist.NextOID != 1 {
			t.Fatalf("district %d NextOID = %d", d, dist.NextOID)
		}
	}
	for i := 1; i <= cfg.Items; i++ {
		if _, err := db.Get(TableStock, stockKey(1, i)); err != nil {
			t.Fatalf("stock %d missing: %v", i, err)
		}
	}
}

func TestNewOrderCreatesRows(t *testing.T) {
	db := testDB(t)
	cfg := smallConfig()
	if err := Load(db, cfg); err != nil {
		t.Fatal(err)
	}
	term := &terminal{db: db, cfg: cfg.normalized(), rng: rand.New(rand.NewSource(1)), home: home{w: 1, d: 1}}
	if err := term.newOrder(); err != nil {
		t.Fatal(err)
	}
	// District counter advanced.
	var dist District
	raw, err := db.Get(TableDistrict, districtKey(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := decode(raw, &dist); err != nil {
		t.Fatal(err)
	}
	if dist.NextOID != 2 {
		t.Fatalf("NextOID = %d, want 2", dist.NextOID)
	}
	// Order and its lines exist.
	rawOrder, err := db.Get(TableOrders, orderKey(1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	var order Order
	if err := decode(rawOrder, &order); err != nil {
		t.Fatal(err)
	}
	if order.LineCount < 5 || order.LineCount > 15 {
		t.Fatalf("LineCount = %d", order.LineCount)
	}
	for n := 1; n <= order.LineCount; n++ {
		if _, err := db.Get(TableOrderLine, orderLineKey(1, 1, 1, n)); err != nil {
			t.Fatalf("order line %d missing: %v", n, err)
		}
	}
	if _, err := db.Get(TableNewOrder, newOrderKey(1, 1, 1)); err != nil {
		t.Fatalf("new_order marker missing: %v", err)
	}
}

func TestPaymentMovesMoney(t *testing.T) {
	db := testDB(t)
	cfg := smallConfig()
	if err := Load(db, cfg); err != nil {
		t.Fatal(err)
	}
	term := &terminal{db: db, cfg: cfg.normalized(), rng: rand.New(rand.NewSource(2)), home: home{w: 1, d: 1}}
	if err := term.payment(); err != nil {
		t.Fatal(err)
	}
	var wh Warehouse
	raw, err := db.Get(TableWarehouse, warehouseKey(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := decode(raw, &wh); err != nil {
		t.Fatal(err)
	}
	if wh.YTD <= 0 {
		t.Fatalf("warehouse YTD = %v after payment", wh.YTD)
	}
	keys, err := db.Keys(TableHistory)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 {
		t.Fatalf("history rows = %d", len(keys))
	}
}

func TestDeliveryConsumesNewOrders(t *testing.T) {
	db := testDB(t)
	cfg := smallConfig()
	if err := Load(db, cfg); err != nil {
		t.Fatal(err)
	}
	term := &terminal{db: db, cfg: cfg.normalized(), rng: rand.New(rand.NewSource(3)), home: home{w: 1, d: 1}}
	for i := 0; i < 3; i++ {
		if err := term.newOrder(); err != nil {
			t.Fatal(err)
		}
	}
	if err := term.delivery(); err != nil {
		t.Fatal(err)
	}
	// Oldest order delivered; marker gone.
	if _, err := db.Get(TableNewOrder, newOrderKey(1, 1, 1)); err == nil {
		t.Fatal("new_order marker for order 1 still present")
	}
	var order Order
	raw, err := db.Get(TableOrders, orderKey(1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := decode(raw, &order); err != nil {
		t.Fatal(err)
	}
	if !order.Delivered || order.Carrier == 0 {
		t.Fatalf("order = %+v, want delivered", order)
	}
	// Empty district: delivery is a no-op, not an error.
	term2 := &terminal{db: db, cfg: cfg.normalized(), rng: rand.New(rand.NewSource(4)), home: home{w: 1, d: 2}}
	if err := term2.delivery(); err != nil {
		t.Fatalf("delivery on empty district: %v", err)
	}
}

func TestReadOnlyTransactions(t *testing.T) {
	db := testDB(t)
	cfg := smallConfig()
	if err := Load(db, cfg); err != nil {
		t.Fatal(err)
	}
	term := &terminal{db: db, cfg: cfg.normalized(), rng: rand.New(rand.NewSource(5)), home: home{w: 1, d: 1}}
	if err := term.newOrder(); err != nil {
		t.Fatal(err)
	}
	if err := term.orderStatus(); err != nil {
		t.Fatal(err)
	}
	if err := term.stockLevel(); err != nil {
		t.Fatal(err)
	}
	// orderStatus for a customer with no orders must not fail.
	commits := db.Stats().Commits
	for i := 0; i < 10; i++ {
		if err := term.stockLevel(); err != nil {
			t.Fatal(err)
		}
	}
	if got := db.Stats().Commits; got != commits {
		t.Fatalf("read-only tx committed: %d → %d", commits, got)
	}
}

func TestDriverRunProducesThroughput(t *testing.T) {
	db := testDB(t)
	cfg := smallConfig()
	if err := Load(db, cfg); err != nil {
		t.Fatal(err)
	}
	dr := NewDriver(db, cfg)
	res, err := dr.Run(context.Background(), 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.TpmTotal <= 0 {
		t.Fatalf("TpmTotal = %v", res.TpmTotal)
	}
	if res.TpmC <= 0 {
		t.Fatalf("TpmC = %v", res.TpmC)
	}
	if res.TpmC >= res.TpmTotal {
		t.Fatalf("TpmC (%v) must be below TpmTotal (%v)", res.TpmC, res.TpmTotal)
	}
	if res.Errors > res.Counts[NewOrderTx]/10 {
		t.Fatalf("too many errors: %d (counts %v)", res.Errors, res.Counts)
	}
	// The mix should roughly favour newOrder+payment (88 %).
	var total int64
	for _, v := range res.Counts {
		total += v
	}
	heavy := res.Counts[NewOrderTx] + res.Counts[PaymentTx]
	if float64(heavy) < 0.7*float64(total) {
		t.Fatalf("newOrder+payment = %d of %d, want ≈88%%", heavy, total)
	}
}

func TestHomeAssignmentCoversDistricts(t *testing.T) {
	cfg := Config{Warehouses: 2, Districts: 3}
	seen := make(map[home]bool)
	for t := 0; t < 6; t++ {
		seen[homeOf(t, cfg)] = true
	}
	if len(seen) != 6 {
		t.Fatalf("6 terminals covered %d homes", len(seen))
	}
	for h := range seen {
		if h.w < 1 || h.w > 2 || h.d < 1 || h.d > 3 {
			t.Fatalf("home out of range: %+v", h)
		}
	}
}

func TestPickTxDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	counts := make(map[TxType]int)
	const n = 20000
	for i := 0; i < n; i++ {
		counts[pickTx(rng)]++
	}
	frac := func(t TxType) float64 { return float64(counts[t]) / n }
	if f := frac(NewOrderTx); f < 0.42 || f > 0.48 {
		t.Fatalf("newOrder fraction = %v, want ≈0.45", f)
	}
	if f := frac(PaymentTx); f < 0.40 || f > 0.46 {
		t.Fatalf("payment fraction = %v, want ≈0.43", f)
	}
	for _, typ := range []TxType{OrderStatusTx, DeliveryTx, StockLevelTx} {
		if f := frac(typ); f < 0.025 || f > 0.055 {
			t.Fatalf("%v fraction = %v, want ≈0.04", typ, f)
		}
	}
}

func TestTxTypeString(t *testing.T) {
	for _, typ := range []TxType{NewOrderTx, PaymentTx, OrderStatusTx, DeliveryTx, StockLevelTx} {
		if typ.String() == "unknown" {
			t.Fatalf("missing String for %d", typ)
		}
	}
}
