package tpcc

import (
	"math/rand"
	"testing"

	"github.com/ginja-dr/ginja/internal/minidb"
	"github.com/ginja-dr/ginja/internal/minidb/pgengine"
	"github.com/ginja-dr/ginja/internal/vfs"
)

func benchTerminal(b *testing.B) *terminal {
	b.Helper()
	db, err := minidb.Open(vfs.NewMemFS(), pgengine.New(), minidb.Options{})
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig().normalized()
	if err := Load(db, cfg); err != nil {
		b.Fatal(err)
	}
	return &terminal{db: db, cfg: cfg, rng: rand.New(rand.NewSource(7)), home: home{w: 1, d: 1}}
}

func BenchmarkNewOrder(b *testing.B) {
	term := benchTerminal(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := term.newOrder(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPayment(b *testing.B) {
	term := benchTerminal(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := term.payment(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullMix(b *testing.B) {
	term := benchTerminal(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := term.execute(pickTx(term.rng)); err != nil {
			b.Fatal(err)
		}
	}
}
