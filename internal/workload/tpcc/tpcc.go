// Package tpcc implements a TPC-C-style workload generator over minidb,
// reproducing the role TPC-C plays in the paper's evaluation (§8): an
// update-heavy OLTP commit generator (≈90 % updates) whose throughput is
// reported as Tpm-C (newOrder transactions per minute) and Tpm-Total.
//
// The schema and transaction mix follow the TPC-C specification
// (warehouse/district/customer/item/stock/orders/order-line/new-order/
// history; 45 % newOrder, 43 % payment, 4 % each orderStatus, delivery,
// stockLevel), with scale factors configurable far below the standard
// (3000 customers/district etc.) so laptop-scale experiments stay fast.
package tpcc

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"time"
)

// Table names.
const (
	TableWarehouse = "warehouse"
	TableDistrict  = "district"
	TableCustomer  = "customer"
	TableItem      = "item"
	TableStock     = "stock"
	TableOrders    = "orders"
	TableOrderLine = "order_line"
	TableNewOrder  = "new_order"
	TableHistory   = "history"
)

// Tables lists every TPC-C table.
func Tables() []string {
	return []string{
		TableWarehouse, TableDistrict, TableCustomer, TableItem, TableStock,
		TableOrders, TableOrderLine, TableNewOrder, TableHistory,
	}
}

// Config scales the benchmark.
type Config struct {
	// Warehouses is the TPC-C scale factor (the paper uses 1 for
	// PostgreSQL, 2 for MySQL, and 1/5/10 in the recovery experiment).
	Warehouses int
	// Districts per warehouse (10 in the spec).
	Districts int
	// Customers per district (3000 in the spec; default 30 for
	// laptop-scale runs).
	Customers int
	// Items in the catalogue (100000 in the spec; default 100).
	Items int
	// Terminals is the number of concurrent client threads.
	Terminals int
	// Seed makes runs reproducible.
	Seed int64
	// ThinkTime paces each terminal between transactions (0 = flat out).
	// A paced run keeps the CPU unsaturated, which is how the paper's
	// Table 4 resource percentages were measured (their DBMS was
	// I/O-bound, not CPU-bound).
	ThinkTime time.Duration
}

// DefaultConfig returns a laptop-scale configuration.
func DefaultConfig() Config {
	return Config{
		Warehouses: 1,
		Districts:  10,
		Customers:  30,
		Items:      100,
		Terminals:  5,
		Seed:       1,
	}
}

func (c Config) normalized() Config {
	d := DefaultConfig()
	if c.Warehouses == 0 {
		c.Warehouses = d.Warehouses
	}
	if c.Districts == 0 {
		c.Districts = d.Districts
	}
	if c.Customers == 0 {
		c.Customers = d.Customers
	}
	if c.Items == 0 {
		c.Items = d.Items
	}
	if c.Terminals == 0 {
		c.Terminals = d.Terminals
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	return c
}

// Row types. JSON-encoded into minidb values; fields are abbreviated like
// the TPC-C column names.
type (
	// Warehouse row.
	Warehouse struct {
		ID   int     `json:"id"`
		Name string  `json:"name"`
		Tax  float64 `json:"tax"`
		YTD  float64 `json:"ytd"`
	}
	// District row.
	District struct {
		ID       int     `json:"id"`
		WID      int     `json:"w_id"`
		Tax      float64 `json:"tax"`
		YTD      float64 `json:"ytd"`
		NextOID  int     `json:"next_o_id"`
		LastDlvO int     `json:"last_dlv_o"` // delivery cursor
	}
	// Customer row.
	Customer struct {
		ID        int     `json:"id"`
		DID       int     `json:"d_id"`
		WID       int     `json:"w_id"`
		Name      string  `json:"name"`
		Balance   float64 `json:"balance"`
		YTDPay    float64 `json:"ytd_pay"`
		PayCnt    int     `json:"pay_cnt"`
		LastOID   int     `json:"last_o_id"`
		DeliveryC int     `json:"delivery_cnt"`
	}
	// Item row.
	Item struct {
		ID    int     `json:"id"`
		Name  string  `json:"name"`
		Price float64 `json:"price"`
	}
	// Stock row.
	Stock struct {
		IID      int `json:"i_id"`
		WID      int `json:"w_id"`
		Quantity int `json:"quantity"`
		YTD      int `json:"ytd"`
		OrderCnt int `json:"order_cnt"`
	}
	// Order row.
	Order struct {
		ID        int  `json:"id"`
		DID       int  `json:"d_id"`
		WID       int  `json:"w_id"`
		CID       int  `json:"c_id"`
		LineCount int  `json:"line_count"`
		Carrier   int  `json:"carrier"`
		Delivered bool `json:"delivered"`
	}
	// OrderLine row.
	OrderLine struct {
		OID      int     `json:"o_id"`
		Number   int     `json:"number"`
		IID      int     `json:"i_id"`
		Quantity int     `json:"quantity"`
		Amount   float64 `json:"amount"`
	}
	// History row.
	History struct {
		CID    int     `json:"c_id"`
		DID    int     `json:"d_id"`
		WID    int     `json:"w_id"`
		Amount float64 `json:"amount"`
	}
)

// Key builders.
func warehouseKey(w int) []byte      { return []byte(fmt.Sprintf("w:%04d", w)) }
func districtKey(w, d int) []byte    { return []byte(fmt.Sprintf("d:%04d:%02d", w, d)) }
func customerKey(w, d, c int) []byte { return []byte(fmt.Sprintf("c:%04d:%02d:%05d", w, d, c)) }
func itemKey(i int) []byte           { return []byte(fmt.Sprintf("i:%06d", i)) }
func stockKey(w, i int) []byte       { return []byte(fmt.Sprintf("s:%04d:%06d", w, i)) }
func orderKey(w, d, o int) []byte    { return []byte(fmt.Sprintf("o:%04d:%02d:%08d", w, d, o)) }
func orderLineKey(w, d, o, n int) []byte {
	return []byte(fmt.Sprintf("ol:%04d:%02d:%08d:%02d", w, d, o, n))
}
func newOrderKey(w, d, o int) []byte  { return []byte(fmt.Sprintf("no:%04d:%02d:%08d", w, d, o)) }
func historyKey(w, d, seq int) []byte { return []byte(fmt.Sprintf("h:%04d:%02d:%08d", w, d, seq)) }

func encode(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("tpcc: marshal %T: %v", v, err)) // rows are always marshalable
	}
	return data
}

func decode(data []byte, v any) error {
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("tpcc: corrupt row: %w", err)
	}
	return nil
}

// randName produces short string payloads.
func randName(rng *rand.Rand, prefix string) string {
	const letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	n := 6 + rng.Intn(6)
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rng.Intn(len(letters))]
	}
	return prefix + string(b)
}
