package tpcc

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/ginja-dr/ginja/internal/minidb"
)

// TxType enumerates the five TPC-C transaction profiles.
type TxType int

// Transaction profiles with the standard mix weights.
const (
	NewOrderTx TxType = iota
	PaymentTx
	OrderStatusTx
	DeliveryTx
	StockLevelTx
)

// String implements fmt.Stringer.
func (t TxType) String() string {
	switch t {
	case NewOrderTx:
		return "newOrder"
	case PaymentTx:
		return "payment"
	case OrderStatusTx:
		return "orderStatus"
	case DeliveryTx:
		return "delivery"
	case StockLevelTx:
		return "stockLevel"
	default:
		return "unknown"
	}
}

// pickTx draws a transaction type with the TPC-C mix: 45 % newOrder,
// 43 % payment, 4 % each for the rest.
func pickTx(rng *rand.Rand) TxType {
	r := rng.Intn(100)
	switch {
	case r < 45:
		return NewOrderTx
	case r < 88:
		return PaymentTx
	case r < 92:
		return OrderStatusTx
	case r < 96:
		return DeliveryTx
	default:
		return StockLevelTx
	}
}

// Result summarises one benchmark run.
type Result struct {
	// TpmC is the newOrder rate (transactions/minute) — the paper's
	// headline metric.
	TpmC float64
	// TpmTotal is the rate across all five transaction types.
	TpmTotal float64
	// Counts per transaction type.
	Counts map[TxType]int64
	// Duration is the measured wall-clock window.
	Duration time.Duration
	// Errors counts failed transactions (excluded from rates).
	Errors int64
}

// Driver runs the TPC-C workload against one database.
type Driver struct {
	db  *minidb.DB
	cfg Config
}

// NewDriver wraps db; Load must have been called with the same Config.
func NewDriver(db *minidb.DB, cfg Config) *Driver {
	return &Driver{db: db, cfg: cfg.normalized()}
}

// Run drives the configured number of terminals for the given duration
// (or until ctx is cancelled) and reports throughput. Each terminal has a
// home (warehouse, district) — like real TPC-C terminals — which also
// serialises the district's order-number counter without a lock manager.
func (dr *Driver) Run(ctx context.Context, duration time.Duration) (Result, error) {
	cfg := dr.cfg
	ctx, cancel := context.WithTimeout(ctx, duration)
	defer cancel()

	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		counts = make(map[TxType]int64)
		errs   int64
	)
	start := time.Now()
	for t := 0; t < cfg.Terminals; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			term := &terminal{
				db:   dr.db,
				cfg:  cfg,
				rng:  rand.New(rand.NewSource(cfg.Seed + int64(t)*7919)),
				home: homeOf(t, cfg),
				seq:  t * 1_000_000,
			}
			local := make(map[TxType]int64)
			var localErrs int64
			for ctx.Err() == nil {
				typ := pickTx(term.rng)
				if err := term.execute(typ); err != nil {
					if errors.Is(err, minidb.ErrClosed) || ctx.Err() != nil {
						break
					}
					localErrs++
					continue
				}
				local[typ]++
				if cfg.ThinkTime > 0 {
					timer := time.NewTimer(cfg.ThinkTime)
					select {
					case <-timer.C:
					case <-ctx.Done():
						timer.Stop()
					}
				}
			}
			mu.Lock()
			for k, v := range local {
				counts[k] += v
			}
			errs += localErrs
			mu.Unlock()
		}(t)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := Result{Counts: counts, Duration: elapsed, Errors: errs}
	minutes := elapsed.Minutes()
	if minutes > 0 {
		var total int64
		for _, v := range counts {
			total += v
		}
		res.TpmC = float64(counts[NewOrderTx]) / minutes
		res.TpmTotal = float64(total) / minutes
	}
	return res, nil
}

// homeOf assigns terminal t a home (warehouse, district) round-robin.
type home struct{ w, d int }

func homeOf(t int, cfg Config) home {
	slot := t % (cfg.Warehouses * cfg.Districts)
	return home{w: slot/cfg.Districts + 1, d: slot%cfg.Districts + 1}
}

// terminal is one client thread.
type terminal struct {
	db   *minidb.DB
	cfg  Config
	rng  *rand.Rand
	home home
	seq  int // history-row sequence
}

func (t *terminal) execute(typ TxType) error {
	switch typ {
	case NewOrderTx:
		return t.newOrder()
	case PaymentTx:
		return t.payment()
	case OrderStatusTx:
		return t.orderStatus()
	case DeliveryTx:
		return t.delivery()
	case StockLevelTx:
		return t.stockLevel()
	default:
		return fmt.Errorf("tpcc: unknown tx type %d", typ)
	}
}

// newOrder implements the TPC-C newOrder profile: allocate an order id
// from the home district, pick 5–15 items, decrement stock, insert the
// order, its lines, and the new-order marker.
func (t *terminal) newOrder() error {
	w, d := t.home.w, t.home.d
	cid := 1 + t.rng.Intn(t.cfg.Customers)
	lines := 5 + t.rng.Intn(11)
	return t.db.Update(func(tx *minidb.Txn) error {
		var dist District
		raw, err := tx.Get(TableDistrict, districtKey(w, d))
		if err != nil {
			return err
		}
		if err := decode(raw, &dist); err != nil {
			return err
		}
		oid := dist.NextOID
		dist.NextOID++
		if err := tx.Put(TableDistrict, districtKey(w, d), encode(dist)); err != nil {
			return err
		}

		order := Order{ID: oid, DID: d, WID: w, CID: cid, LineCount: lines}
		for n := 1; n <= lines; n++ {
			iid := 1 + t.rng.Intn(t.cfg.Items)
			rawItem, err := tx.Get(TableItem, itemKey(iid))
			if err != nil {
				return err
			}
			var item Item
			if err := decode(rawItem, &item); err != nil {
				return err
			}
			rawStock, err := tx.Get(TableStock, stockKey(w, iid))
			if err != nil {
				return err
			}
			var stock Stock
			if err := decode(rawStock, &stock); err != nil {
				return err
			}
			qty := 1 + t.rng.Intn(10)
			if stock.Quantity >= qty+10 {
				stock.Quantity -= qty
			} else {
				stock.Quantity = stock.Quantity - qty + 91 // restock, per spec
			}
			stock.YTD += qty
			stock.OrderCnt++
			if err := tx.Put(TableStock, stockKey(w, iid), encode(stock)); err != nil {
				return err
			}
			ol := OrderLine{OID: oid, Number: n, IID: iid, Quantity: qty, Amount: float64(qty) * item.Price}
			if err := tx.Put(TableOrderLine, orderLineKey(w, d, oid, n), encode(ol)); err != nil {
				return err
			}
		}
		if err := tx.Put(TableOrders, orderKey(w, d, oid), encode(order)); err != nil {
			return err
		}
		if err := tx.Put(TableNewOrder, newOrderKey(w, d, oid), encode(order.ID)); err != nil {
			return err
		}
		// Track the customer's latest order for orderStatus.
		rawCust, err := tx.Get(TableCustomer, customerKey(w, d, cid))
		if err != nil {
			return err
		}
		var cust Customer
		if err := decode(rawCust, &cust); err != nil {
			return err
		}
		cust.LastOID = oid
		return tx.Put(TableCustomer, customerKey(w, d, cid), encode(cust))
	})
}

// payment updates warehouse/district YTD and the customer balance, and
// appends a history row.
func (t *terminal) payment() error {
	w, d := t.home.w, t.home.d
	cid := 1 + t.rng.Intn(t.cfg.Customers)
	amount := 1 + t.rng.Float64()*4999
	t.seq++
	seq := t.seq
	return t.db.Update(func(tx *minidb.Txn) error {
		var wh Warehouse
		raw, err := tx.Get(TableWarehouse, warehouseKey(w))
		if err != nil {
			return err
		}
		if err := decode(raw, &wh); err != nil {
			return err
		}
		wh.YTD += amount
		if err := tx.Put(TableWarehouse, warehouseKey(w), encode(wh)); err != nil {
			return err
		}

		var dist District
		raw, err = tx.Get(TableDistrict, districtKey(w, d))
		if err != nil {
			return err
		}
		if err := decode(raw, &dist); err != nil {
			return err
		}
		dist.YTD += amount
		if err := tx.Put(TableDistrict, districtKey(w, d), encode(dist)); err != nil {
			return err
		}

		var cust Customer
		raw, err = tx.Get(TableCustomer, customerKey(w, d, cid))
		if err != nil {
			return err
		}
		if err := decode(raw, &cust); err != nil {
			return err
		}
		cust.Balance -= amount
		cust.YTDPay += amount
		cust.PayCnt++
		if err := tx.Put(TableCustomer, customerKey(w, d, cid), encode(cust)); err != nil {
			return err
		}
		h := History{CID: cid, DID: d, WID: w, Amount: amount}
		return tx.Put(TableHistory, historyKey(w, d, seq), encode(h))
	})
}

// orderStatus reads a customer's most recent order and its lines
// (read-only).
func (t *terminal) orderStatus() error {
	w, d := t.home.w, t.home.d
	cid := 1 + t.rng.Intn(t.cfg.Customers)
	raw, err := t.db.Get(TableCustomer, customerKey(w, d, cid))
	if err != nil {
		return err
	}
	var cust Customer
	if err := decode(raw, &cust); err != nil {
		return err
	}
	if cust.LastOID == 0 {
		return nil // no orders yet
	}
	rawOrder, err := t.db.Get(TableOrders, orderKey(w, d, cust.LastOID))
	if err != nil {
		return err
	}
	var order Order
	if err := decode(rawOrder, &order); err != nil {
		return err
	}
	for n := 1; n <= order.LineCount; n++ {
		if _, err := t.db.Get(TableOrderLine, orderLineKey(w, d, order.ID, n)); err != nil {
			return err
		}
	}
	return nil
}

// delivery delivers the oldest undelivered order of the home district.
func (t *terminal) delivery() error {
	w, d := t.home.w, t.home.d
	carrier := 1 + t.rng.Intn(10)
	return t.db.Update(func(tx *minidb.Txn) error {
		var dist District
		raw, err := tx.Get(TableDistrict, districtKey(w, d))
		if err != nil {
			return err
		}
		if err := decode(raw, &dist); err != nil {
			return err
		}
		oid := dist.LastDlvO + 1
		if oid >= dist.NextOID {
			return nil // nothing to deliver
		}
		rawOrder, err := tx.Get(TableOrders, orderKey(w, d, oid))
		if err != nil {
			return nil // order lost to a disaster window; skip
		}
		var order Order
		if err := decode(rawOrder, &order); err != nil {
			return err
		}
		order.Carrier = carrier
		order.Delivered = true
		if err := tx.Put(TableOrders, orderKey(w, d, oid), encode(order)); err != nil {
			return err
		}
		if err := tx.Delete(TableNewOrder, newOrderKey(w, d, oid)); err != nil {
			return err
		}
		dist.LastDlvO = oid
		if err := tx.Put(TableDistrict, districtKey(w, d), encode(dist)); err != nil {
			return err
		}
		var cust Customer
		rawCust, err := tx.Get(TableCustomer, customerKey(w, d, order.CID))
		if err != nil {
			return err
		}
		if err := decode(rawCust, &cust); err != nil {
			return err
		}
		cust.DeliveryC++
		return tx.Put(TableCustomer, customerKey(w, d, order.CID), encode(cust))
	})
}

// stockLevel examines the order lines of the home district's last 20
// orders and counts distinct items below the stock threshold (the TPC-C
// stockLevel profile; read-only).
func (t *terminal) stockLevel() error {
	w, d := t.home.w, t.home.d
	raw, err := t.db.Get(TableDistrict, districtKey(w, d))
	if err != nil {
		return err
	}
	var dist District
	if err := decode(raw, &dist); err != nil {
		return err
	}
	lowFrom := dist.NextOID - 20
	if lowFrom < 1 {
		lowFrom = 1
	}
	// Scan the district's order lines and keep those of recent orders.
	prefix := fmt.Sprintf("ol:%04d:%02d:", w, d)
	lines, err := t.db.Scan(TableOrderLine, prefix)
	if err != nil {
		return err
	}
	seen := make(map[int]bool)
	low := 0
	for _, kv := range lines {
		var ol OrderLine
		if err := decode(kv.Value, &ol); err != nil {
			return err
		}
		if ol.OID < lowFrom || seen[ol.IID] {
			continue
		}
		seen[ol.IID] = true
		rawStock, err := t.db.Get(TableStock, stockKey(w, ol.IID))
		if err != nil {
			return err
		}
		var stock Stock
		if err := decode(rawStock, &stock); err != nil {
			return err
		}
		if stock.Quantity < 15 {
			low++
		}
	}
	_ = low
	return nil
}
