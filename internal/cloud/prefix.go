package cloud

import (
	"context"
	"strings"
)

// PrefixStore exposes the subtree of an ObjectStore under a fixed key
// prefix as a complete store of its own: every name is transparently
// prefixed on the way in and stripped on the way out. It is how fleet
// tenants share one bucket — each tenant's Ginja runs against a
// PrefixStore and never sees (or can touch) another tenant's objects,
// because every operation it can express stays inside its prefix.
//
// List ignores objects outside the prefix entirely, so a tenant's LIST
// diffing, CloudView reconstruction and garbage collection operate on a
// namespace that looks exactly like a private bucket. The prefix itself
// is validated by core.Params (no "..", no leading "/", restricted
// alphabet), which — together with the fleet's no-nesting admission rule
// — makes aliasing another tenant's objects inexpressible.
type PrefixStore struct {
	inner ObjectStore
	// prefix always ends in "/" so concatenation can never splice two
	// tenants' names together ("a"+"b/x" vs "ab"+"/x").
	prefix string
}

var _ ObjectStore = (*PrefixStore)(nil)

// NewPrefixStore returns a view of inner rooted at prefix. A trailing
// "/" is appended if missing; an empty prefix returns inner unchanged.
func NewPrefixStore(inner ObjectStore, prefix string) ObjectStore {
	if prefix == "" {
		return inner
	}
	if !strings.HasSuffix(prefix, "/") {
		prefix += "/"
	}
	return &PrefixStore{inner: inner, prefix: prefix}
}

// Prefix returns the normalized ("/"-terminated) key prefix.
func (p *PrefixStore) Prefix() string { return p.prefix }

// Put implements ObjectStore.
func (p *PrefixStore) Put(ctx context.Context, name string, data []byte) error {
	return p.inner.Put(ctx, p.prefix+name, data)
}

// Get implements ObjectStore.
func (p *PrefixStore) Get(ctx context.Context, name string) ([]byte, error) {
	return p.inner.Get(ctx, p.prefix+name)
}

// List implements ObjectStore: it lists inner under prefix+listPrefix and
// returns the names with the store prefix stripped, so callers see the
// same namespace they wrote.
func (p *PrefixStore) List(ctx context.Context, listPrefix string) ([]ObjectInfo, error) {
	infos, err := p.inner.List(ctx, p.prefix+listPrefix)
	if err != nil {
		return nil, err
	}
	out := make([]ObjectInfo, 0, len(infos))
	for _, info := range infos {
		name, ok := strings.CutPrefix(info.Name, p.prefix)
		if !ok {
			// Defensive: an inner List that returns names outside the
			// requested prefix is broken; hiding the object is safer than
			// leaking a foreign (other-tenant) name into LIST diffing.
			continue
		}
		out = append(out, ObjectInfo{Name: name, Size: info.Size})
	}
	return out, nil
}

// Delete implements ObjectStore.
func (p *PrefixStore) Delete(ctx context.Context, name string) error {
	return p.inner.Delete(ctx, p.prefix+name)
}
