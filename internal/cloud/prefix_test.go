package cloud

import (
	"context"
	"errors"
	"testing"
)

func TestPrefixStoreRoundTrip(t *testing.T) {
	ctx := context.Background()
	inner := NewMemStore()
	a := NewPrefixStore(inner, "tenants/a") // no trailing slash: normalized
	b := NewPrefixStore(inner, "tenants/b/")

	if err := a.Put(ctx, "WAL/1_seg_0", []byte("aaa")); err != nil {
		t.Fatal(err)
	}
	if err := b.Put(ctx, "WAL/1_seg_0", []byte("bbbb")); err != nil {
		t.Fatal(err)
	}

	// Each view reads back its own object despite the identical logical name.
	got, err := a.Get(ctx, "WAL/1_seg_0")
	if err != nil || string(got) != "aaa" {
		t.Fatalf("a.Get = %q, %v", got, err)
	}
	got, err = b.Get(ctx, "WAL/1_seg_0")
	if err != nil || string(got) != "bbbb" {
		t.Fatalf("b.Get = %q, %v", got, err)
	}

	// The underlying bucket holds both, fully prefixed.
	all, err := inner.List(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 || all[0].Name != "tenants/a/WAL/1_seg_0" || all[1].Name != "tenants/b/WAL/1_seg_0" {
		t.Fatalf("inner listing = %+v", all)
	}

	// Each view lists only its own subtree, with stripped names and
	// correct sizes.
	infos, err := a.List(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "WAL/1_seg_0" || infos[0].Size != 3 {
		t.Fatalf("a listing = %+v", infos)
	}
	infos, err = a.List(ctx, "WAL/")
	if err != nil || len(infos) != 1 {
		t.Fatalf("a WAL/ listing = %+v, %v", infos, err)
	}
	infos, err = a.List(ctx, "DB/")
	if err != nil || len(infos) != 0 {
		t.Fatalf("a DB/ listing = %+v, %v", infos, err)
	}

	// Delete through one view cannot touch the other tenant's object.
	if err := a.Delete(ctx, "WAL/1_seg_0"); err != nil {
		t.Fatal(err)
	}
	if err := a.Delete(ctx, "WAL/1_seg_0"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second delete = %v, want ErrNotFound", err)
	}
	if _, err := b.Get(ctx, "WAL/1_seg_0"); err != nil {
		t.Fatalf("b's object gone after a's delete: %v", err)
	}
}

func TestPrefixStoreEmptyPrefixIsIdentity(t *testing.T) {
	inner := NewMemStore()
	if got := NewPrefixStore(inner, ""); got != ObjectStore(inner) {
		t.Fatalf("empty prefix should return the inner store unchanged, got %T", got)
	}
}

func TestPrefixStoreSiblingPrefixesDisjoint(t *testing.T) {
	// "tenants/a" must not observe "tenants/ab": the normalized trailing
	// slash keeps sibling prefixes that share a byte prefix disjoint.
	ctx := context.Background()
	inner := NewMemStore()
	a := NewPrefixStore(inner, "tenants/a")
	ab := NewPrefixStore(inner, "tenants/ab")
	if err := ab.Put(ctx, "WAL/1_seg_0", []byte("x")); err != nil {
		t.Fatal(err)
	}
	infos, err := a.List(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 0 {
		t.Fatalf("tenants/a sees tenants/ab's objects: %+v", infos)
	}
	if _, err := a.Get(ctx, "WAL/1_seg_0"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cross-prefix Get = %v, want ErrNotFound", err)
	}
}
