package cloudsim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/simclock"
)

// ErrOutage is returned for every operation while the simulated provider
// is down (see Store.StartOutage), modelling the cloud outages of [28].
var ErrOutage = errors.New("cloudsim: provider outage")

// ErrInjected is the transient failure injected with FailureRate.
var ErrInjected = errors.New("cloudsim: injected transient failure")

// Options configures a simulated cloud store.
type Options struct {
	// Profile is the network behaviour model. Defaults to WANProfile.
	Profile Profile
	// TimeScale divides every simulated sleep: a PUT modelled at 700 ms
	// with TimeScale 100 sleeps 7 ms but still *reports* 700 ms. 0 or 1
	// means real time; a negative TimeScale disables sleeping entirely.
	TimeScale float64
	// FailureRate is the probability (0..1) that an operation fails with
	// ErrInjected before reaching the backing store.
	FailureRate float64
	// Seed seeds the jitter/failure RNG for reproducible runs.
	Seed int64
	// Clock supplies the latency-model sleeps. nil means the wall clock;
	// deterministic simulations install a *simclock.SimClock so modelled
	// latency costs virtual time instead of real time.
	Clock simclock.Clock
}

// Store wraps an ObjectStore with the behavioural model. It also keeps a
// record of the *modelled* (unscaled) latencies so experiments can report
// realistic numbers even when TimeScale compresses real time.
type Store struct {
	inner cloud.ObjectStore
	opts  Options
	rng   *lockedRand
	clk   simclock.Clock

	down     atomic.Bool
	failBits atomic.Uint64 // current FailureRate as math.Float64bits

	mu          sync.Mutex
	putModelled cloud.LatencyStats
	getModelled cloud.LatencyStats
}

var _ cloud.ObjectStore = (*Store)(nil)

// New wraps inner with the simulated network behaviour in opts.
func New(inner cloud.ObjectStore, opts Options) *Store {
	if opts.Profile == (Profile{}) {
		opts.Profile = WANProfile()
	}
	if opts.TimeScale == 0 {
		opts.TimeScale = 1
	}
	if opts.Clock == nil {
		opts.Clock = simclock.Real()
	}
	s := &Store{inner: inner, opts: opts, rng: newLockedRand(opts.Seed), clk: opts.Clock}
	s.failBits.Store(math.Float64bits(opts.FailureRate))
	return s
}

// StartOutage makes every subsequent operation fail with ErrOutage until
// EndOutage is called. This models a provider-scale disaster.
func (s *Store) StartOutage() { s.down.Store(true) }

// EndOutage restores service.
func (s *Store) EndOutage() { s.down.Store(false) }

// Down reports whether the simulated provider is currently unavailable.
func (s *Store) Down() bool { return s.down.Load() }

// SetFailureRate changes the transient-failure probability at runtime, so
// fault schedules can open and close flaky windows mid-run.
func (s *Store) SetFailureRate(rate float64) { s.failBits.Store(math.Float64bits(rate)) }

// FailureRate returns the current transient-failure probability.
func (s *Store) FailureRate() float64 { return math.Float64frombits(s.failBits.Load()) }

// PutLatencyModel returns the aggregated *modelled* PUT latencies, i.e.
// what a real WAN deployment would have observed, independent of TimeScale.
func (s *Store) PutLatencyModel() cloud.LatencyStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.putModelled
}

// GetLatencyModel returns the aggregated modelled GET latencies.
func (s *Store) GetLatencyModel() cloud.LatencyStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.getModelled
}

// ResetLatencyModel clears the modelled latency aggregates.
func (s *Store) ResetLatencyModel() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.putModelled = cloud.LatencyStats{}
	s.getModelled = cloud.LatencyStats{}
}

func (s *Store) gate(ctx context.Context, op string) error {
	if s.down.Load() {
		return fmt.Errorf("%s: %w", op, ErrOutage)
	}
	if rate := s.FailureRate(); rate > 0 && s.rng.Float64() < rate {
		return fmt.Errorf("%s: %w", op, ErrInjected)
	}
	return ctx.Err()
}

// sleepScaled sleeps d/TimeScale (no sleep when TimeScale < 0) and honours
// context cancellation.
func (s *Store) sleepScaled(ctx context.Context, d time.Duration) error {
	if s.opts.TimeScale < 0 {
		return ctx.Err()
	}
	scaled := time.Duration(float64(d) / s.opts.TimeScale)
	if scaled <= 0 {
		return ctx.Err()
	}
	return simclock.SleepCtx(ctx, s.clk, scaled)
}

func (s *Store) recordPut(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	addLatency(&s.putModelled, d)
}

func (s *Store) recordGet(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	addLatency(&s.getModelled, d)
}

func addLatency(l *cloud.LatencyStats, d time.Duration) {
	if l.Count == 0 || d < l.Min {
		l.Min = d
	}
	if d > l.Max {
		l.Max = d
	}
	l.Count++
	l.Total += d
}

// Put implements cloud.ObjectStore with modelled upload latency.
func (s *Store) Put(ctx context.Context, name string, data []byte) error {
	if err := s.gate(ctx, "put"); err != nil {
		return err
	}
	d := s.rng.jitter(s.opts.Profile, s.opts.Profile.PutLatency(int64(len(data))))
	if err := s.sleepScaled(ctx, d); err != nil {
		return err
	}
	if err := s.inner.Put(ctx, name, data); err != nil {
		return err
	}
	s.recordPut(d)
	return nil
}

// Get implements cloud.ObjectStore with modelled download latency.
func (s *Store) Get(ctx context.Context, name string) ([]byte, error) {
	if err := s.gate(ctx, "get"); err != nil {
		return nil, err
	}
	data, err := s.inner.Get(ctx, name)
	if err != nil {
		return nil, err
	}
	d := s.rng.jitter(s.opts.Profile, s.opts.Profile.GetLatency(int64(len(data))))
	if err := s.sleepScaled(ctx, d); err != nil {
		return nil, err
	}
	s.recordGet(d)
	return data, nil
}

// List implements cloud.ObjectStore; LISTs pay only the base latency.
func (s *Store) List(ctx context.Context, prefix string) ([]cloud.ObjectInfo, error) {
	if err := s.gate(ctx, "list"); err != nil {
		return nil, err
	}
	if err := s.sleepScaled(ctx, s.opts.Profile.BaseLatency); err != nil {
		return nil, err
	}
	return s.inner.List(ctx, prefix)
}

// Delete implements cloud.ObjectStore; DELETEs pay only the base latency.
func (s *Store) Delete(ctx context.Context, name string) error {
	if err := s.gate(ctx, "delete"); err != nil {
		return err
	}
	if err := s.sleepScaled(ctx, s.opts.Profile.BaseLatency); err != nil {
		return err
	}
	return s.inner.Delete(ctx, name)
}
