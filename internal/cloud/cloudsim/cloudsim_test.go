package cloudsim

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/ginja-dr/ginja/internal/cloud"
)

func newFast(t *testing.T, opts Options) *Store {
	t.Helper()
	if opts.TimeScale == 0 {
		opts.TimeScale = -1 // never sleep in unit tests
	}
	return New(cloud.NewMemStore(), opts)
}

func TestProfileLatencyShape(t *testing.T) {
	p := WANProfile()
	// The model must reproduce Table 3's shape: ≈692 ms for 386 kB and
	// ≈7.7 s for ≈10 MB objects (±35 %).
	cases := []struct {
		sizeKB int64
		wantMS float64
	}{
		{386, 692},
		{3018, 2880},
		{10081, 7707},
	}
	for _, tc := range cases {
		got := p.PutLatency(tc.sizeKB*1000).Seconds() * 1000
		if got < tc.wantMS*0.65 || got > tc.wantMS*1.35 {
			t.Errorf("PutLatency(%dkB) = %.0fms, want ≈%.0fms", tc.sizeKB, got, tc.wantMS)
		}
	}
}

func TestProfileMonotonicInSize(t *testing.T) {
	for _, p := range []Profile{WANProfile(), LANProfile()} {
		prev := time.Duration(0)
		for size := int64(0); size <= 20<<20; size += 4 << 20 {
			d := p.PutLatency(size)
			if d < prev {
				t.Fatalf("PutLatency not monotonic at size %d", size)
			}
			prev = d
		}
	}
}

func TestLANFasterThanWAN(t *testing.T) {
	size := int64(1 << 20)
	if LANProfile().GetLatency(size) >= WANProfile().GetLatency(size) {
		t.Fatal("LAN profile should be faster than WAN")
	}
}

func TestStorePassthrough(t *testing.T) {
	s := newFast(t, Options{})
	ctx := context.Background()
	if err := s.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v" {
		t.Fatalf("Get = %q", got)
	}
	infos, err := s.List(ctx, "")
	if err != nil || len(infos) != 1 {
		t.Fatalf("List = %v, %v", infos, err)
	}
	if err := s.Delete(ctx, "k"); err != nil {
		t.Fatal(err)
	}
}

func TestStoreOutage(t *testing.T) {
	s := newFast(t, Options{})
	ctx := context.Background()
	if err := s.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	s.StartOutage()
	if !s.Down() {
		t.Fatal("Down() should be true during outage")
	}
	if err := s.Put(ctx, "k2", []byte("v")); !errors.Is(err, ErrOutage) {
		t.Fatalf("Put during outage = %v, want ErrOutage", err)
	}
	if _, err := s.Get(ctx, "k"); !errors.Is(err, ErrOutage) {
		t.Fatalf("Get during outage = %v, want ErrOutage", err)
	}
	if _, err := s.List(ctx, ""); !errors.Is(err, ErrOutage) {
		t.Fatalf("List during outage = %v, want ErrOutage", err)
	}
	if err := s.Delete(ctx, "k"); !errors.Is(err, ErrOutage) {
		t.Fatalf("Delete during outage = %v, want ErrOutage", err)
	}
	s.EndOutage()
	if _, err := s.Get(ctx, "k"); err != nil {
		t.Fatalf("Get after outage = %v", err)
	}
}

func TestStoreInjectedFailures(t *testing.T) {
	s := newFast(t, Options{FailureRate: 1.0})
	if err := s.Put(context.Background(), "k", []byte("v")); !errors.Is(err, ErrInjected) {
		t.Fatalf("Put = %v, want ErrInjected", err)
	}
}

func TestStoreFailureRateApproximate(t *testing.T) {
	s := newFast(t, Options{FailureRate: 0.3, Seed: 7})
	ctx := context.Background()
	fails := 0
	const n = 1000
	for i := 0; i < n; i++ {
		if err := s.Put(ctx, "k", []byte("v")); err != nil {
			fails++
		}
	}
	if fails < n*20/100 || fails > n*40/100 {
		t.Fatalf("failure count %d/%d, want ≈30%%", fails, n)
	}
}

func TestStoreModelledLatencyRecorded(t *testing.T) {
	s := newFast(t, Options{Profile: WANProfile()})
	ctx := context.Background()
	if err := s.Put(ctx, "k", make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
	stats := s.PutLatencyModel()
	if stats.Count != 1 {
		t.Fatalf("Count = %d", stats.Count)
	}
	// 1 MiB at ≈1.4 MB/s + 400 ms base ≈ 1.1 s modelled, even though the
	// test slept zero real time.
	if stats.Mean() < 500*time.Millisecond || stats.Mean() > 3*time.Second {
		t.Fatalf("modelled mean = %v, want ≈1.1s", stats.Mean())
	}
	s.ResetLatencyModel()
	if s.PutLatencyModel().Count != 0 {
		t.Fatal("ResetLatencyModel did not clear stats")
	}
}

func TestStoreTimeScaleCompressesRealTime(t *testing.T) {
	s := New(cloud.NewMemStore(), Options{
		Profile:   Profile{BaseLatency: 200 * time.Millisecond, UploadBandwidth: 1e9, DownloadBandwidth: 1e9},
		TimeScale: 100,
	})
	start := time.Now()
	if err := s.Put(context.Background(), "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if real := time.Since(start); real > 100*time.Millisecond {
		t.Fatalf("scaled Put took %v of real time, want ≈2ms", real)
	}
	if m := s.PutLatencyModel().Mean(); m < 150*time.Millisecond {
		t.Fatalf("modelled latency %v should stay unscaled", m)
	}
}

func TestStoreContextCancellation(t *testing.T) {
	s := New(cloud.NewMemStore(), Options{
		Profile:   Profile{BaseLatency: 10 * time.Second, UploadBandwidth: 1, DownloadBandwidth: 1},
		TimeScale: 1,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Put(ctx, "k", []byte("v")); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Put = %v, want DeadlineExceeded", err)
	}
}

func TestJitterBounded(t *testing.T) {
	p := WANProfile()
	rng := newLockedRand(42)
	base := p.PutLatency(1 << 20)
	for i := 0; i < 100; i++ {
		d := rng.jitter(p, base)
		lo := time.Duration(float64(base) * (1 - p.JitterFraction - 1e-9))
		hi := time.Duration(float64(base) * (1 + p.JitterFraction + 1e-9))
		if d < lo || d > hi {
			t.Fatalf("jittered %v outside [%v, %v]", d, lo, hi)
		}
	}
}
