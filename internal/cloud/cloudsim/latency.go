// Package cloudsim turns a plain ObjectStore into a behavioural model of a
// remote storage cloud: size-dependent PUT/GET latency, jitter, transient
// failures and whole-provider outages.
//
// The latency model is calibrated from the paper's Table 3 (PostgreSQL,
// plain objects, Lisbon → S3 US East): 386 kB objects took ≈692 ms and
// 10 081 kB objects ≈7 707 ms, i.e. a fixed per-request cost of roughly
// 400 ms plus ≈1.4 MB/s of effective upload bandwidth. A TimeScale factor
// lets experiments compress simulated wall-clock time while metrics report
// the full modelled latency.
package cloudsim

import (
	"math/rand"
	"sync"
	"time"
)

// Profile describes the network behaviour between the primary site and the
// storage cloud.
type Profile struct {
	// BaseLatency is the fixed per-operation round-trip cost.
	BaseLatency time.Duration
	// UploadBandwidth is the effective PUT throughput in bytes/second.
	UploadBandwidth float64
	// DownloadBandwidth is the effective GET throughput in bytes/second.
	DownloadBandwidth float64
	// JitterFraction adds ±fraction of uniform noise to each latency.
	JitterFraction float64
}

// WANProfile models the paper's testbed: an academic network in Lisbon
// talking to Amazon S3 in US East (N. Virginia).
func WANProfile() Profile {
	return Profile{
		BaseLatency:       400 * time.Millisecond,
		UploadBandwidth:   1.4e6, // ≈1.4 MB/s effective, fitted from Table 3
		DownloadBandwidth: 6.0e6, // downloads are a few× faster than uploads
		JitterFraction:    0.10,
	}
}

// LANProfile models recovering inside the provider's region (an EC2 VM in
// the same region as the bucket), as used by Figure 7's second series.
func LANProfile() Profile {
	return Profile{
		BaseLatency:       8 * time.Millisecond,
		UploadBandwidth:   80e6,
		DownloadBandwidth: 120e6,
		JitterFraction:    0.05,
	}
}

// PutLatency returns the modelled latency for uploading size bytes.
func (p Profile) PutLatency(size int64) time.Duration {
	return p.BaseLatency + time.Duration(float64(size)/p.UploadBandwidth*float64(time.Second))
}

// GetLatency returns the modelled latency for downloading size bytes.
func (p Profile) GetLatency(size int64) time.Duration {
	return p.BaseLatency + time.Duration(float64(size)/p.DownloadBandwidth*float64(time.Second))
}

// jittered applies the profile's jitter to d using rng.
func (p Profile) jittered(d time.Duration, rng *rand.Rand) time.Duration {
	if p.JitterFraction <= 0 {
		return d
	}
	f := 1 + p.JitterFraction*(2*rng.Float64()-1)
	return time.Duration(float64(d) * f)
}

// lockedRand is a rand.Rand safe for concurrent use.
type lockedRand struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newLockedRand(seed int64) *lockedRand {
	return &lockedRand{rng: rand.New(rand.NewSource(seed))}
}

func (l *lockedRand) Float64() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rng.Float64()
}

func (l *lockedRand) jitter(p Profile, d time.Duration) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return p.jittered(d, l.rng)
}
