package cloud

import (
	"context"
	"sync"
	"time"
)

// OpCounts is a snapshot of the operations a MeteredStore has served.
type OpCounts struct {
	Puts, Gets, Lists, Deletes int64
	// BytesUp / BytesDown are total payload bytes uploaded and downloaded.
	BytesUp, BytesDown int64
	// StoredBytes is the current total payload held by the store.
	StoredBytes int64
	// PeakStoredBytes is the maximum StoredBytes observed since creation
	// (or the last Reset).
	PeakStoredBytes int64
	// PutLatency aggregates the observed latency of Put calls.
	PutLatency LatencyStats
}

// LatencyStats summarises a latency distribution.
type LatencyStats struct {
	Count int64
	Total time.Duration
	Min   time.Duration
	Max   time.Duration
}

// Mean returns the average latency, or zero when no samples exist.
func (l LatencyStats) Mean() time.Duration {
	if l.Count == 0 {
		return 0
	}
	return l.Total / time.Duration(l.Count)
}

func (l *LatencyStats) add(d time.Duration) {
	if l.Count == 0 || d < l.Min {
		l.Min = d
	}
	if d > l.Max {
		l.Max = d
	}
	l.Count++
	l.Total += d
}

// MeteredStore wraps an ObjectStore, counting operations, payload bytes and
// Put latency, and tracking the store's occupancy so that a monthly bill
// can be computed against a PriceSheet. This is the accounting substrate
// behind the reproduction of Figure 4 and Tables 2–3.
type MeteredStore struct {
	inner  ObjectStore
	prices PriceSheet

	mu     sync.Mutex
	counts OpCounts
	sizes  map[string]int64
}

var _ ObjectStore = (*MeteredStore)(nil)

// NewMeteredStore wraps inner, pricing operations with prices.
func NewMeteredStore(inner ObjectStore, prices PriceSheet) *MeteredStore {
	return &MeteredStore{inner: inner, prices: prices, sizes: make(map[string]int64)}
}

// Put implements ObjectStore.
func (m *MeteredStore) Put(ctx context.Context, name string, data []byte) error {
	start := time.Now()
	if err := m.inner.Put(ctx, name, data); err != nil {
		return err
	}
	elapsed := time.Since(start)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.counts.Puts++
	m.counts.BytesUp += int64(len(data))
	m.counts.PutLatency.add(elapsed)
	m.counts.StoredBytes += int64(len(data)) - m.sizes[name]
	m.sizes[name] = int64(len(data))
	if m.counts.StoredBytes > m.counts.PeakStoredBytes {
		m.counts.PeakStoredBytes = m.counts.StoredBytes
	}
	return nil
}

// Get implements ObjectStore.
func (m *MeteredStore) Get(ctx context.Context, name string) ([]byte, error) {
	data, err := m.inner.Get(ctx, name)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.counts.Gets++
	m.counts.BytesDown += int64(len(data))
	return data, nil
}

// List implements ObjectStore.
func (m *MeteredStore) List(ctx context.Context, prefix string) ([]ObjectInfo, error) {
	infos, err := m.inner.List(ctx, prefix)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.counts.Lists++
	m.mu.Unlock()
	return infos, nil
}

// Delete implements ObjectStore.
func (m *MeteredStore) Delete(ctx context.Context, name string) error {
	if err := m.inner.Delete(ctx, name); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.counts.Deletes++
	m.counts.StoredBytes -= m.sizes[name]
	delete(m.sizes, name)
	return nil
}

// Counts returns a snapshot of the metering counters.
func (m *MeteredStore) Counts() OpCounts {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counts
}

// Reset zeroes the operation counters. Occupancy tracking is preserved so
// storage cost remains correct across benchmark phases.
func (m *MeteredStore) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	stored := m.counts.StoredBytes
	m.counts = OpCounts{StoredBytes: stored, PeakStoredBytes: stored}
}

// Bill prices the recorded activity: operation charges plus one month of
// storage for the *current* occupancy. It answers "what would a month of
// exactly this behaviour cost".
func (m *MeteredStore) Bill() Bill {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.counts
	return Bill{
		Storage:    m.prices.StorageCost(c.StoredBytes),
		Uploads:    m.prices.UploadCost(c.Puts, c.BytesUp),
		Downloads:  m.prices.DownloadCost(c.Gets, c.BytesDown),
		Lists:      float64(c.Lists) * m.prices.PerLIST,
		Deletes:    float64(c.Deletes) * m.prices.PerDELETE,
		priceSheet: m.prices,
	}
}

// Bill is an itemised monthly invoice for a MeteredStore.
type Bill struct {
	Storage   float64 // $ for one month of current occupancy
	Uploads   float64 // $ for PUT operations + ingress
	Downloads float64 // $ for GET operations + egress
	Lists     float64
	Deletes   float64

	priceSheet PriceSheet
}

// Total returns the invoice total in dollars.
func (b Bill) Total() float64 {
	return b.Storage + b.Uploads + b.Downloads + b.Lists + b.Deletes
}
