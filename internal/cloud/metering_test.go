package cloud

import (
	"context"
	"math"
	"testing"
)

func TestMeteredStoreCounts(t *testing.T) {
	m := NewMeteredStore(NewMemStore(), AmazonS3May2017())
	ctx := context.Background()

	if err := m.Put(ctx, "a", make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	if err := m.Put(ctx, "b", make([]byte, 500)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.List(ctx, ""); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete(ctx, "b"); err != nil {
		t.Fatal(err)
	}

	c := m.Counts()
	if c.Puts != 2 || c.Gets != 1 || c.Lists != 1 || c.Deletes != 1 {
		t.Fatalf("counts = %+v", c)
	}
	if c.BytesUp != 1500 {
		t.Fatalf("BytesUp = %d, want 1500", c.BytesUp)
	}
	if c.BytesDown != 1000 {
		t.Fatalf("BytesDown = %d, want 1000", c.BytesDown)
	}
	if c.StoredBytes != 1000 {
		t.Fatalf("StoredBytes = %d, want 1000 (after delete)", c.StoredBytes)
	}
	if c.PeakStoredBytes != 1500 {
		t.Fatalf("PeakStoredBytes = %d, want 1500", c.PeakStoredBytes)
	}
	if c.PutLatency.Count != 2 {
		t.Fatalf("PutLatency.Count = %d, want 2", c.PutLatency.Count)
	}
}

func TestMeteredStoreOverwriteOccupancy(t *testing.T) {
	m := NewMeteredStore(NewMemStore(), AmazonS3May2017())
	ctx := context.Background()
	if err := m.Put(ctx, "k", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := m.Put(ctx, "k", make([]byte, 40)); err != nil {
		t.Fatal(err)
	}
	if got := m.Counts().StoredBytes; got != 40 {
		t.Fatalf("StoredBytes = %d, want 40 after overwrite", got)
	}
}

func TestBillMatchesPriceSheet(t *testing.T) {
	prices := AmazonS3May2017()
	m := NewMeteredStore(NewMemStore(), prices)
	ctx := context.Background()

	// 10 GB stored via one PUT (conceptually), downloaded once.
	payload := make([]byte, 1<<20) // 1 MiB per op to keep the test light
	const ops = 10
	for i := 0; i < ops; i++ {
		if err := m.Put(ctx, string(rune('a'+i)), payload); err != nil {
			t.Fatal(err)
		}
	}
	bill := m.Bill()

	wantStorage := prices.StorageCost(int64(ops * len(payload)))
	if math.Abs(bill.Storage-wantStorage) > 1e-12 {
		t.Fatalf("Storage = %v, want %v", bill.Storage, wantStorage)
	}
	wantUploads := float64(ops) * prices.PerPUT
	if math.Abs(bill.Uploads-wantUploads) > 1e-12 {
		t.Fatalf("Uploads = %v, want %v", bill.Uploads, wantUploads)
	}
	if bill.Total() <= 0 {
		t.Fatal("Total should be positive")
	}
}

func TestMeteredStoreReset(t *testing.T) {
	m := NewMeteredStore(NewMemStore(), AmazonS3May2017())
	ctx := context.Background()
	if err := m.Put(ctx, "k", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	m.Reset()
	c := m.Counts()
	if c.Puts != 0 || c.BytesUp != 0 {
		t.Fatalf("after Reset counts = %+v", c)
	}
	if c.StoredBytes != 100 {
		t.Fatalf("Reset must preserve occupancy, StoredBytes = %d", c.StoredBytes)
	}
}

func TestPriceSheetHelpers(t *testing.T) {
	p := AmazonS3May2017()
	if got := p.StorageCost(10 * GB); math.Abs(got-0.23) > 1e-9 {
		t.Fatalf("StorageCost(10GB) = %v, want 0.23", got)
	}
	// 1000 PUTs cost $0.005 on S3.
	if got := p.UploadCost(1000, 0); math.Abs(got-0.005) > 1e-12 {
		t.Fatalf("UploadCost(1000) = %v, want 0.005", got)
	}
	// Downloading a GB is ≈3.9× storing it for a month (paper §7.3 "almost 4×").
	ratio := p.EgressPerGB / p.StoragePerGBMonth
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("egress/storage ratio = %v, want ≈4", ratio)
	}
}

func TestLatencyStatsMean(t *testing.T) {
	var l LatencyStats
	if l.Mean() != 0 {
		t.Fatal("empty Mean should be 0")
	}
	l.add(10)
	l.add(30)
	if l.Mean() != 20 {
		t.Fatalf("Mean = %v, want 20", l.Mean())
	}
	if l.Min != 10 || l.Max != 30 {
		t.Fatalf("Min/Max = %v/%v", l.Min, l.Max)
	}
}
