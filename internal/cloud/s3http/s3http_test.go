package s3http

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/ginja-dr/ginja/internal/cloud"
)

func newPair(t *testing.T) (*Client, *cloud.MemStore) {
	t.Helper()
	store := cloud.NewMemStore()
	srv := httptest.NewServer(NewHandler(store))
	t.Cleanup(srv.Close)
	return NewClient(srv.URL, srv.Client()), store
}

func TestClientRoundTrip(t *testing.T) {
	c, _ := newPair(t)
	ctx := context.Background()
	if err := c.Put(ctx, "WAL/0_seg_0", []byte("payload")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := c.Get(ctx, "WAL/0_seg_0")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(got) != "payload" {
		t.Fatalf("Get = %q", got)
	}
}

func TestClientNotFound(t *testing.T) {
	c, _ := newPair(t)
	ctx := context.Background()
	if _, err := c.Get(ctx, "missing"); !errors.Is(err, cloud.ErrNotFound) {
		t.Fatalf("Get = %v, want ErrNotFound", err)
	}
	if err := c.Delete(ctx, "missing"); !errors.Is(err, cloud.ErrNotFound) {
		t.Fatalf("Delete = %v, want ErrNotFound", err)
	}
}

func TestClientListPrefix(t *testing.T) {
	c, _ := newPair(t)
	ctx := context.Background()
	for _, n := range []string{"WAL/1_a_0", "WAL/2_b_8192", "DB/0_dump_77"} {
		if err := c.Put(ctx, n, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	infos, err := c.List(ctx, "WAL/")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("List(WAL/) = %v, want 2 objects", infos)
	}
	all, err := c.List(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("List(\"\") = %d objects, want 3", len(all))
	}
}

func TestClientDelete(t *testing.T) {
	c, store := newPair(t)
	ctx := context.Background()
	if err := c.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 0 {
		t.Fatalf("store still holds %d objects", store.Len())
	}
}

func TestClientSpecialCharacterNames(t *testing.T) {
	c, _ := newPair(t)
	ctx := context.Background()
	// Ginja names embed underscores and numbers; also exercise spaces and
	// percent signs, which must survive the URL round trip.
	names := []string{
		"WAL/42_000000010000000000000007_16384",
		"DB/9_checkpoint_1048576",
		"odd name/with space_0",
		"pct%25sign/x_1",
	}
	for _, n := range names {
		if err := c.Put(ctx, n, []byte(n)); err != nil {
			t.Fatalf("Put(%q): %v", n, err)
		}
		got, err := c.Get(ctx, n)
		if err != nil {
			t.Fatalf("Get(%q): %v", n, err)
		}
		if string(got) != n {
			t.Fatalf("Get(%q) = %q", n, got)
		}
	}
}

func TestClientEmptyPayload(t *testing.T) {
	c, _ := newPair(t)
	ctx := context.Background()
	if err := c.Put(ctx, "empty", nil); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(ctx, "empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("Get = %d bytes, want 0", len(got))
	}
}

func TestClientLargeObject(t *testing.T) {
	c, _ := newPair(t)
	ctx := context.Background()
	payload := make([]byte, 5<<20) // a typical aggregated WAL object
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	if err := c.Put(ctx, "big", payload); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(ctx, "big")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(payload) {
		t.Fatalf("size = %d, want %d", len(got), len(payload))
	}
	for i := range got {
		if got[i] != payload[i] {
			t.Fatalf("payload corrupted at byte %d", i)
		}
	}
}

func TestClientConcurrentUploads(t *testing.T) {
	c, store := newPair(t)
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				name := fmt.Sprintf("WAL/%d_%d_0", g, i)
				if err := c.Put(ctx, name, []byte(name)); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if store.Len() != 120 {
		t.Fatalf("store holds %d objects, want 120", store.Len())
	}
}

func TestServerRejectsUnknownRoutes(t *testing.T) {
	srv := httptest.NewServer(NewHandler(cloud.NewMemStore()))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

func TestServerRejectsWrongMethod(t *testing.T) {
	srv := httptest.NewServer(NewHandler(cloud.NewMemStore()))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/o/key", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/list", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("list status = %d, want 405", resp.StatusCode)
	}
}

func TestServerRejectsOversizedObject(t *testing.T) {
	srv := httptest.NewServer(NewHandler(cloud.NewMemStore()))
	defer srv.Close()
	req, err := http.NewRequest(http.MethodPut, srv.URL+"/o/huge", strings.NewReader(strings.Repeat("x", maxObjectBytes+1)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
}

func TestClientSurfacesServerErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	c := NewClient(srv.URL, nil)
	err := c.Put(context.Background(), "k", []byte("v"))
	var se *statusError
	if !errors.As(err, &se) || se.status != http.StatusInternalServerError {
		t.Fatalf("err = %v, want statusError 500", err)
	}
}

func TestBearerTokenAuth(t *testing.T) {
	store := cloud.NewMemStore()
	srv := httptest.NewServer(NewHandlerWithToken(store, "sesame"))
	defer srv.Close()
	ctx := context.Background()

	good := NewClientWithToken(srv.URL, "sesame", srv.Client())
	if err := good.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatalf("authorized Put: %v", err)
	}
	if _, err := good.Get(ctx, "k"); err != nil {
		t.Fatalf("authorized Get: %v", err)
	}
	if _, err := good.List(ctx, ""); err != nil {
		t.Fatalf("authorized List: %v", err)
	}

	for name, bad := range map[string]*Client{
		"no token":    NewClient(srv.URL, srv.Client()),
		"wrong token": NewClientWithToken(srv.URL, "guess", srv.Client()),
	} {
		err := bad.Put(ctx, "k2", []byte("v"))
		var se *statusError
		if !errors.As(err, &se) || se.status != http.StatusUnauthorized {
			t.Fatalf("%s: Put = %v, want 401", name, err)
		}
	}
	// Token on the server, none needed when unset.
	open := httptest.NewServer(NewHandlerWithToken(store, ""))
	defer open.Close()
	if err := NewClient(open.URL, open.Client()).Put(ctx, "k3", []byte("v")); err != nil {
		t.Fatalf("open server rejected: %v", err)
	}
}
