// Package s3http exposes an ObjectStore over an S3-style REST interface
// (PUT/GET/DELETE an object; GET with ?list= for prefix listing) and
// provides a client that implements cloud.ObjectStore against such a
// server. It lets examples and experiments push Ginja's uploads through a
// real network socket, like the paper's prototype did.
package s3http

import (
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"github.com/ginja-dr/ginja/internal/cloud"
)

// maxObjectBytes bounds a single uploaded object. Ginja splits objects at
// 20 MB (paper §5.2 footnote); 64 MiB leaves generous headroom.
const maxObjectBytes = 64 << 20

// Handler serves an ObjectStore over HTTP.
//
// The wire protocol:
//
//	PUT    /o/<key>        body = payload        → 200
//	GET    /o/<key>                              → 200 payload | 404
//	DELETE /o/<key>                              → 200 | 404
//	GET    /list?prefix=p                        → 200 JSON [{name,size}...]
//
// With a token configured (NewHandlerWithToken), every request must carry
// "Authorization: Bearer <token>".
type Handler struct {
	store cloud.ObjectStore
	token string
}

var _ http.Handler = (*Handler)(nil)

// NewHandler wraps store in an HTTP handler with no authentication.
func NewHandler(store cloud.ObjectStore) *Handler {
	return &Handler{store: store}
}

// NewHandlerWithToken wraps store in an HTTP handler requiring the given
// bearer token on every request. An empty token disables authentication.
func NewHandlerWithToken(store cloud.ObjectStore, token string) *Handler {
	return &Handler{store: store, token: token}
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h.token != "" {
		// Constant-time-ish compare is unnecessary at this trust level,
		// but avoid leaking length via prefix matching anyway.
		if subtle.ConstantTimeCompare([]byte(r.Header.Get("Authorization")),
			[]byte("Bearer "+h.token)) != 1 {
			http.Error(w, "unauthorized", http.StatusUnauthorized)
			return
		}
	}
	switch {
	case r.URL.Path == "/list":
		h.serveList(w, r)
	case strings.HasPrefix(r.URL.Path, "/o/"):
		h.serveObject(w, r, strings.TrimPrefix(r.URL.Path, "/o/"))
	default:
		http.NotFound(w, r)
	}
}

func (h *Handler) serveList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	infos, err := h.store.List(r.Context(), r.URL.Query().Get("prefix"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(infos); err != nil {
		// Too late for a status code; the client will see a broken body.
		return
	}
}

func (h *Handler) serveObject(w http.ResponseWriter, r *http.Request, key string) {
	switch r.Method {
	case http.MethodPut:
		data, err := io.ReadAll(io.LimitReader(r.Body, maxObjectBytes+1))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if len(data) > maxObjectBytes {
			http.Error(w, "object too large", http.StatusRequestEntityTooLarge)
			return
		}
		if err := h.store.Put(r.Context(), key, data); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusOK)
	case http.MethodGet:
		data, err := h.store.Get(r.Context(), key)
		if errors.Is(err, cloud.ErrNotFound) {
			http.NotFound(w, r)
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(data) //nolint:errcheck // nothing to do about a broken client pipe
	case http.MethodDelete:
		err := h.store.Delete(r.Context(), key)
		if errors.Is(err, cloud.ErrNotFound) {
			http.NotFound(w, r)
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusOK)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// statusError reports an unexpected HTTP status from the server.
type statusError struct {
	op     string
	status int
	body   string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("s3http %s: unexpected status %d: %s", e.op, e.status, e.body)
}
