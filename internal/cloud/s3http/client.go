package s3http

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"github.com/ginja-dr/ginja/internal/cloud"
)

// Client implements cloud.ObjectStore against an s3http server.
type Client struct {
	base  string
	http  *http.Client
	token string
}

var _ cloud.ObjectStore = (*Client)(nil)

// NewClient returns a client for the server at baseURL (e.g.
// "http://127.0.0.1:9000"). httpClient may be nil to use
// http.DefaultClient.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), http: httpClient}
}

// NewClientWithToken returns a client that authenticates every request
// with the given bearer token.
func NewClientWithToken(baseURL, token string, httpClient *http.Client) *Client {
	c := NewClient(baseURL, httpClient)
	c.token = token
	return c
}

func (c *Client) objectURL(name string) string {
	// Escape each path segment but keep the '/' separators that Ginja's
	// WAL/... and DB/... prefixes rely on for listing.
	parts := strings.Split(name, "/")
	for i, p := range parts {
		parts[i] = url.PathEscape(p)
	}
	return c.base + "/o/" + strings.Join(parts, "/")
}

func (c *Client) do(req *http.Request, op string) (*http.Response, error) {
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("s3http %s: %w", op, err)
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return resp, nil
	case http.StatusNotFound:
		resp.Body.Close()
		return nil, fmt.Errorf("s3http %s: %w", op, cloud.ErrNotFound)
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		resp.Body.Close()
		return nil, &statusError{op: op, status: resp.StatusCode, body: strings.TrimSpace(string(body))}
	}
}

// Put implements cloud.ObjectStore.
func (c *Client) Put(ctx context.Context, name string, data []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.objectURL(name), bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("s3http put: %w", err)
	}
	resp, err := c.do(req, "put")
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// Get implements cloud.ObjectStore.
func (c *Client) Get(ctx context.Context, name string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.objectURL(name), nil)
	if err != nil {
		return nil, fmt.Errorf("s3http get: %w", err)
	}
	resp, err := c.do(req, "get")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("s3http get: %w", err)
	}
	return data, nil
}

// List implements cloud.ObjectStore.
func (c *Client) List(ctx context.Context, prefix string) ([]cloud.ObjectInfo, error) {
	u := c.base + "/list?prefix=" + url.QueryEscape(prefix)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, fmt.Errorf("s3http list: %w", err)
	}
	resp, err := c.do(req, "list")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var infos []cloud.ObjectInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		return nil, fmt.Errorf("s3http list: decode: %w", err)
	}
	return infos, nil
}

// Delete implements cloud.ObjectStore.
func (c *Client) Delete(ctx context.Context, name string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.objectURL(name), nil)
	if err != nil {
		return fmt.Errorf("s3http delete: %w", err)
	}
	resp, err := c.do(req, "delete")
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}
