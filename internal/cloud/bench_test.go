package cloud

import (
	"context"
	"fmt"
	"testing"
)

func BenchmarkMemStorePut(b *testing.B) {
	s := NewMemStore()
	ctx := context.Background()
	payload := make([]byte, 8192)
	b.SetBytes(8192)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := s.Put(ctx, fmt.Sprintf("WAL/%d_seg_0", i%4096), payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMemStoreGet(b *testing.B) {
	s := NewMemStore()
	ctx := context.Background()
	if err := s.Put(ctx, "k", make([]byte, 8192)); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(8192)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(ctx, "k"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMeteredStorePut(b *testing.B) {
	s := NewMeteredStore(NewMemStore(), AmazonS3May2017())
	ctx := context.Background()
	payload := make([]byte, 8192)
	b.SetBytes(8192)
	for i := 0; i < b.N; i++ {
		if err := s.Put(ctx, fmt.Sprintf("WAL/%d_seg_0", i%4096), payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiskStorePut(b *testing.B) {
	s, err := NewDiskStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	payload := make([]byte, 8192)
	b.SetBytes(8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(ctx, fmt.Sprintf("WAL/%d_seg_0", i%64), payload); err != nil {
			b.Fatal(err)
		}
	}
}
