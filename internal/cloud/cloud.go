// Package cloud provides the object-storage abstraction Ginja replicates
// database state to, together with in-memory and on-disk implementations,
// operation metering, and the Amazon-S3-style pricing model used by the
// paper's cost evaluation (§7).
//
// The interface mirrors the REST surface the paper assumes from storage
// clouds: only PUT, GET, LIST and DELETE (§5, "storage clouds provide REST
// interfaces containing only a few basic operations").
package cloud

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ErrNotFound is returned by Get and Delete when the named object does not
// exist in the store.
var ErrNotFound = errors.New("cloud: object not found")

// ObjectInfo describes one stored object, as returned by List.
type ObjectInfo struct {
	// Name is the full object key, e.g. "WAL/42_000000010000000000000003_16384".
	Name string
	// Size is the stored payload size in bytes.
	Size int64
}

// ObjectStore is the minimal storage-cloud interface Ginja depends on.
//
// Implementations must be safe for concurrent use: Ginja uploads WAL
// objects from several Uploader goroutines while the Checkpointer uploads
// DB objects and the garbage collector issues deletes.
type ObjectStore interface {
	// Put stores data under name, overwriting any previous object.
	Put(ctx context.Context, name string, data []byte) error
	// Get returns the payload of the named object, or ErrNotFound.
	Get(ctx context.Context, name string) ([]byte, error)
	// List returns the objects whose name starts with prefix, sorted by
	// name. An empty prefix lists the whole store.
	List(ctx context.Context, prefix string) ([]ObjectInfo, error)
	// Delete removes the named object. Deleting a missing object returns
	// ErrNotFound.
	Delete(ctx context.Context, name string) error
}

// MemStore is an in-memory ObjectStore used by tests and by the simulated
// cloud. The zero value is not usable; call NewMemStore.
type MemStore struct {
	mu      sync.RWMutex
	objects map[string][]byte
}

var _ ObjectStore = (*MemStore)(nil)

// NewMemStore returns an empty in-memory object store.
func NewMemStore() *MemStore {
	return &MemStore{objects: make(map[string][]byte)}
}

// Put implements ObjectStore.
func (m *MemStore) Put(_ context.Context, name string, data []byte) error {
	if err := validateName(name); err != nil {
		return err
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.objects[name] = cp
	return nil
}

// Get implements ObjectStore.
func (m *MemStore) Get(_ context.Context, name string) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.objects[name]
	if !ok {
		return nil, fmt.Errorf("get %q: %w", name, ErrNotFound)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// List implements ObjectStore.
func (m *MemStore) List(_ context.Context, prefix string) ([]ObjectInfo, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var infos []ObjectInfo
	for name, data := range m.objects {
		if strings.HasPrefix(name, prefix) {
			infos = append(infos, ObjectInfo{Name: name, Size: int64(len(data))})
		}
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos, nil
}

// Delete implements ObjectStore.
func (m *MemStore) Delete(_ context.Context, name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.objects[name]; !ok {
		return fmt.Errorf("delete %q: %w", name, ErrNotFound)
	}
	delete(m.objects, name)
	return nil
}

// Len returns the number of stored objects.
func (m *MemStore) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.objects)
}

// TotalSize returns the sum of all stored payload sizes in bytes.
func (m *MemStore) TotalSize() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var total int64
	for _, data := range m.objects {
		total += int64(len(data))
	}
	return total
}

func validateName(name string) error {
	if name == "" {
		return errors.New("cloud: empty object name")
	}
	if strings.Contains(name, "..") {
		return fmt.Errorf("cloud: object name %q must not contain %q", name, "..")
	}
	if strings.HasPrefix(name, "/") {
		return fmt.Errorf("cloud: object name %q must not start with /", name)
	}
	return nil
}
