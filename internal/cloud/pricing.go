package cloud

// PriceSheet captures the pay-as-you-go pricing of a storage cloud. The
// defaults reproduce the Amazon S3 standard-storage prices the paper quotes
// for May 2017 (§3): $0.023 per GB/month of storage, $0.005 per 1000
// uploads, free upload bandwidth and deletes, and download (egress) priced
// so that downloading one GB costs "almost 4×" storing it for a month
// (§7.3).
type PriceSheet struct {
	// StoragePerGBMonth is the monthly price of storing one GB ($/GB/month).
	StoragePerGBMonth float64
	// PerPUT is the price of a single PUT/upload operation ($).
	PerPUT float64
	// PerGET is the price of a single GET operation ($).
	PerGET float64
	// PerLIST is the price of a single LIST operation ($).
	PerLIST float64
	// PerDELETE is the price of a single DELETE operation ($). Free on S3.
	PerDELETE float64
	// EgressPerGB is the download bandwidth price ($/GB).
	EgressPerGB float64
	// IngressPerGB is the upload bandwidth price ($/GB). Free on S3.
	IngressPerGB float64
}

// AmazonS3May2017 returns the S3 price sheet used throughout the paper.
func AmazonS3May2017() PriceSheet {
	return PriceSheet{
		StoragePerGBMonth: 0.023,
		PerPUT:            0.005 / 1000,
		PerGET:            0.0004 / 1000,
		PerLIST:           0.005 / 1000, // LIST is priced like PUT on S3
		PerDELETE:         0,
		EgressPerGB:       0.09, // ≈3.9× the monthly storage price, as §7.3 states
		IngressPerGB:      0,
	}
}

// GB is the number of bytes in one gigabyte as used by cloud pricing.
const GB = 1 << 30

// StorageCost returns the monthly cost of keeping size bytes stored.
func (p PriceSheet) StorageCost(sizeBytes int64) float64 {
	return float64(sizeBytes) / GB * p.StoragePerGBMonth
}

// UploadCost returns the cost of n PUT operations carrying bytes of payload.
func (p PriceSheet) UploadCost(n int64, bytes int64) float64 {
	return float64(n)*p.PerPUT + float64(bytes)/GB*p.IngressPerGB
}

// DownloadCost returns the cost of n GET operations returning bytes of payload.
func (p PriceSheet) DownloadCost(n int64, bytes int64) float64 {
	return float64(n)*p.PerGET + float64(bytes)/GB*p.EgressPerGB
}
