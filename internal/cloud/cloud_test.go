package cloud

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

// storeFactories enumerates every ObjectStore implementation so the whole
// contract suite runs against each one.
func storeFactories(t *testing.T) map[string]func(t *testing.T) ObjectStore {
	return map[string]func(t *testing.T) ObjectStore{
		"mem": func(t *testing.T) ObjectStore { return NewMemStore() },
		"disk": func(t *testing.T) ObjectStore {
			s, err := NewDiskStore(t.TempDir())
			if err != nil {
				t.Fatalf("NewDiskStore: %v", err)
			}
			return s
		},
		"metered": func(t *testing.T) ObjectStore {
			return NewMeteredStore(NewMemStore(), AmazonS3May2017())
		},
	}
}

func TestStorePutGetRoundTrip(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk(t)
			ctx := context.Background()
			want := []byte("hello ginja")
			if err := s.Put(ctx, "WAL/0_seg1_0", want); err != nil {
				t.Fatalf("Put: %v", err)
			}
			got, err := s.Get(ctx, "WAL/0_seg1_0")
			if err != nil {
				t.Fatalf("Get: %v", err)
			}
			if string(got) != string(want) {
				t.Fatalf("Get = %q, want %q", got, want)
			}
		})
	}
}

func TestStoreGetMissing(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk(t)
			if _, err := s.Get(context.Background(), "nope"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get missing = %v, want ErrNotFound", err)
			}
		})
	}
}

func TestStoreDeleteMissing(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk(t)
			if err := s.Delete(context.Background(), "nope"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Delete missing = %v, want ErrNotFound", err)
			}
		})
	}
}

func TestStoreOverwrite(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk(t)
			ctx := context.Background()
			if err := s.Put(ctx, "k", []byte("v1")); err != nil {
				t.Fatal(err)
			}
			if err := s.Put(ctx, "k", []byte("v2-longer")); err != nil {
				t.Fatal(err)
			}
			got, err := s.Get(ctx, "k")
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != "v2-longer" {
				t.Fatalf("Get = %q, want v2-longer", got)
			}
			infos, err := s.List(ctx, "")
			if err != nil {
				t.Fatal(err)
			}
			if len(infos) != 1 || infos[0].Size != int64(len("v2-longer")) {
				t.Fatalf("List = %+v, want one object of size 9", infos)
			}
		})
	}
}

func TestStoreListPrefixAndOrder(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk(t)
			ctx := context.Background()
			names := []string{"WAL/2_b_0", "DB/0_dump_100", "WAL/1_a_0", "WAL/10_c_0"}
			for _, n := range names {
				if err := s.Put(ctx, n, []byte(n)); err != nil {
					t.Fatal(err)
				}
			}
			wal, err := s.List(ctx, "WAL/")
			if err != nil {
				t.Fatal(err)
			}
			want := []string{"WAL/10_c_0", "WAL/1_a_0", "WAL/2_b_0"} // lexicographic
			var got []string
			for _, o := range wal {
				got = append(got, o.Name)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("List(WAL/) = %v, want %v", got, want)
			}
			all, err := s.List(ctx, "")
			if err != nil {
				t.Fatal(err)
			}
			if len(all) != 4 {
				t.Fatalf("List(\"\") returned %d objects, want 4", len(all))
			}
		})
	}
}

func TestStoreDelete(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk(t)
			ctx := context.Background()
			if err := s.Put(ctx, "k", []byte("v")); err != nil {
				t.Fatal(err)
			}
			if err := s.Delete(ctx, "k"); err != nil {
				t.Fatalf("Delete: %v", err)
			}
			if _, err := s.Get(ctx, "k"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get after delete = %v, want ErrNotFound", err)
			}
		})
	}
}

func TestStoreRejectsBadNames(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk(t)
			ctx := context.Background()
			for _, bad := range []string{"", "../escape", "/abs"} {
				if err := s.Put(ctx, bad, []byte("x")); err == nil {
					t.Errorf("Put(%q) succeeded, want error", bad)
				}
			}
		})
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk(t)
			ctx := context.Background()
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 50; i++ {
						key := fmt.Sprintf("obj/%d_%d", g, i)
						if err := s.Put(ctx, key, []byte(key)); err != nil {
							t.Errorf("Put: %v", err)
							return
						}
						if _, err := s.Get(ctx, key); err != nil {
							t.Errorf("Get: %v", err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			infos, err := s.List(ctx, "obj/")
			if err != nil {
				t.Fatal(err)
			}
			if len(infos) != 8*50 {
				t.Fatalf("List returned %d objects, want %d", len(infos), 8*50)
			}
		})
	}
}

// TestStorePropertyPutGet checks, for arbitrary names and payloads, that
// what is Put is exactly what Get returns (quick/property-based).
func TestStorePropertyPutGet(t *testing.T) {
	s := NewMemStore()
	ctx := context.Background()
	prop := func(suffix string, data []byte) bool {
		name := "p/" + fmt.Sprintf("%x", suffix) // hex keeps the name valid
		if err := s.Put(ctx, name, data); err != nil {
			return false
		}
		got, err := s.Get(ctx, name)
		if err != nil {
			return false
		}
		if len(got) != len(data) {
			return false
		}
		for i := range got {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestStorePropertyListIsSorted: after any sequence of puts, List output is
// sorted and sizes match payloads.
func TestStorePropertyListIsSorted(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		s := NewMemStore()
		ctx := context.Background()
		rng := rand.New(rand.NewSource(seed))
		want := make(map[string]int)
		for i := 0; i < int(n); i++ {
			name := fmt.Sprintf("x/%d", rng.Intn(40))
			size := rng.Intn(100)
			if err := s.Put(ctx, name, make([]byte, size)); err != nil {
				return false
			}
			want[name] = size
		}
		infos, err := s.List(ctx, "x/")
		if err != nil {
			return false
		}
		if len(infos) != len(want) {
			return false
		}
		for i, o := range infos {
			if i > 0 && infos[i-1].Name >= o.Name {
				return false
			}
			if want[o.Name] != int(o.Size) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDiskStorePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	s1, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(ctx, "DB/0_dump_5", []byte("state")); err != nil {
		t.Fatal(err)
	}
	s2, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Get(ctx, "DB/0_dump_5")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "state" {
		t.Fatalf("Get = %q, want state", got)
	}
}

func TestMemStoreAccounting(t *testing.T) {
	s := NewMemStore()
	ctx := context.Background()
	if err := s.Put(ctx, "a", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(ctx, "b", make([]byte, 50)); err != nil {
		t.Fatal(err)
	}
	if got := s.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	if got := s.TotalSize(); got != 150 {
		t.Fatalf("TotalSize = %d, want 150", got)
	}
}
