package cloud

import (
	"context"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// DiskStore is an ObjectStore persisted in a local directory. Object names
// (which contain '/') are hex-encoded into flat file names so that no name
// can escape the root directory and listing stays a single ReadDir.
//
// DiskStore is what cmd/cloudsim serves and what long-running examples use
// so that a "disaster" (deleting the primary machine's files) leaves the
// cloud copy intact on disk.
type DiskStore struct {
	root string
	mu   sync.RWMutex
}

var _ ObjectStore = (*DiskStore)(nil)

// NewDiskStore opens (creating if needed) an object store rooted at dir.
func NewDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	return &DiskStore{root: dir}, nil
}

// Root returns the backing directory.
func (d *DiskStore) Root() string { return d.root }

func (d *DiskStore) path(name string) string {
	return filepath.Join(d.root, hex.EncodeToString([]byte(name))+".obj")
}

// Put implements ObjectStore. The write is atomic: data lands in a temp
// file that is renamed into place, so a crashed Put never leaves a
// truncated object.
func (d *DiskStore) Put(_ context.Context, name string, data []byte) error {
	if err := validateName(name); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	dst := d.path(name)
	tmp, err := os.CreateTemp(d.root, ".put-*")
	if err != nil {
		return fmt.Errorf("diskstore put %q: %w", name, err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("diskstore put %q: %w", name, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("diskstore put %q: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("diskstore put %q: %w", name, err)
	}
	if err := os.Rename(tmpName, dst); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("diskstore put %q: %w", name, err)
	}
	return nil
}

// Get implements ObjectStore.
func (d *DiskStore) Get(_ context.Context, name string) ([]byte, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	data, err := os.ReadFile(d.path(name))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("get %q: %w", name, ErrNotFound)
	}
	if err != nil {
		return nil, fmt.Errorf("diskstore get %q: %w", name, err)
	}
	return data, nil
}

// List implements ObjectStore.
func (d *DiskStore) List(_ context.Context, prefix string) ([]ObjectInfo, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	entries, err := os.ReadDir(d.root)
	if err != nil {
		return nil, fmt.Errorf("diskstore list: %w", err)
	}
	var infos []ObjectInfo
	for _, e := range entries {
		base := e.Name()
		if e.IsDir() || !strings.HasSuffix(base, ".obj") {
			continue
		}
		raw, err := hex.DecodeString(strings.TrimSuffix(base, ".obj"))
		if err != nil {
			continue // foreign file in the directory; not ours
		}
		name := string(raw)
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			return nil, fmt.Errorf("diskstore list: %w", err)
		}
		infos = append(infos, ObjectInfo{Name: name, Size: fi.Size()})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos, nil
}

// Delete implements ObjectStore.
func (d *DiskStore) Delete(_ context.Context, name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	err := os.Remove(d.path(name))
	if os.IsNotExist(err) {
		return fmt.Errorf("delete %q: %w", name, ErrNotFound)
	}
	if err != nil {
		return fmt.Errorf("diskstore delete %q: %w", name, err)
	}
	return nil
}
