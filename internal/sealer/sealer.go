// Package sealer implements the object envelope of paper §5.4/§6:
// optional ZLIB compression (fastest level), optional AES-128 encryption
// (CTR mode) with a password-derived key that never leaves memory, and a
// mandatory MAC over every object (HMAC-SHA-1, like the prototype's
// SHA-1 MACs) so that recovery can validate object integrity (§5.4,
// "Backup verification", step 1).
//
// Envelope layout:
//
//	magic(4) "GJA1" | flags(1) | iv(16, if encrypted) | payload | mac(20)
//
// The MAC covers everything before it (encrypt-then-MAC).
package sealer

import (
	"bytes"
	"compress/zlib"
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha1"
	"crypto/sha256"
	"errors"
	"fmt"
	"hash"
	"io"
	"sync"
)

// Envelope constants.
const (
	flagCompressed = 1 << 0
	flagEncrypted  = 1 << 1

	ivSize  = aes.BlockSize
	macSize = sha1.Size
	keySize = 16 // AES-128, as in the prototype (§6)

	// kdfIterations for the PBKDF2 password derivation.
	kdfIterations = 4096
)

var magic = []byte("GJA1")

// Errors returned by Open.
var (
	// ErrIntegrity reports a MAC mismatch: the object was corrupted or
	// tampered with in the cloud.
	ErrIntegrity = errors.New("sealer: MAC verification failed")
	// ErrFormat reports a malformed envelope.
	ErrFormat = errors.New("sealer: malformed object envelope")
)

// defaultMACSeed generates the MAC key when no password is configured
// (paper §5.4: "a default string (a configuration parameter) is used to
// generate this key").
const defaultMACSeed = "ginja-default-integrity-key"

// Options configures a Sealer.
type Options struct {
	// Compress enables ZLIB compression (BestSpeed, like the prototype's
	// "ZLIB configured for fastest operation").
	Compress bool
	// Encrypt enables AES-128-CTR encryption. Requires Password.
	Encrypt bool
	// Password derives the encryption and MAC keys. May be set without
	// Encrypt to authenticate objects with a secret MAC key.
	Password string
	// MACSeed overrides the default MAC-key string used when no password
	// is provided.
	MACSeed string
}

// Sealer seals byte payloads into tamper-evident (optionally compressed
// and encrypted) cloud objects and opens them back.
//
// Seal/Open are allocation-pooled: zlib writer/reader state, HMAC state
// and compression buffers are recycled via sync.Pool, and the AES block
// cipher is built once at construction. At high update rates the per-
// object seal cost would otherwise be dominated by re-allocating that
// state (a fresh zlib writer alone is several hundred KiB). Both methods
// remain safe for concurrent use.
type Sealer struct {
	opts   Options
	encKey []byte
	macKey []byte

	block   cipher.Block // non-nil iff a password is configured
	macPool sync.Pool    // *hmac states keyed with macKey
}

// Key-independent scratch state is pooled at package level and shared by
// every Sealer in the process: a fleet of a thousand tenants recycles one
// set of zlib writers (several hundred KiB each) and buffers across all
// of them instead of keeping a thousand idle copies warm. Only the HMAC
// pool stays per-Sealer — its states are bound to that sealer's MAC key.
var (
	bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}
	zwPool  = sync.Pool{New: func() any {
		zw, err := zlib.NewWriterLevel(io.Discard, zlib.BestSpeed)
		if err != nil {
			panic(err) // unreachable: BestSpeed is a valid level
		}
		return zw
	}}
	zrPool sync.Pool // io.ReadCloser + zlib.Resetter
)

// New builds a Sealer. Encryption without a password is rejected.
func New(opts Options) (*Sealer, error) {
	if opts.Encrypt && opts.Password == "" {
		return nil, errors.New("sealer: encryption requires a password")
	}
	s := &Sealer{opts: opts}
	if opts.Password != "" {
		// Both keys come from the password (paper §5.4: "the provided
		// password is also used to generate the MAC key").
		s.encKey = pbkdf2SHA256([]byte(opts.Password), []byte("ginja-enc"), kdfIterations, keySize)
		s.macKey = pbkdf2SHA256([]byte(opts.Password), []byte("ginja-mac"), kdfIterations, keySize)
		block, err := aes.NewCipher(s.encKey)
		if err != nil {
			return nil, fmt.Errorf("sealer: %w", err)
		}
		s.block = block
	} else {
		seed := opts.MACSeed
		if seed == "" {
			seed = defaultMACSeed
		}
		s.macKey = pbkdf2SHA256([]byte(seed), []byte("ginja-mac"), 1, keySize)
	}
	s.macPool.New = func() any { return hmac.New(sha1.New, s.macKey) }
	return s, nil
}

// NewPlain returns a Sealer with neither compression nor encryption (MAC
// only) — the "plain" configuration of the paper's experiments.
func NewPlain() *Sealer {
	s, err := New(Options{})
	if err != nil {
		panic(err) // unreachable: no options set
	}
	return s
}

// Compressing reports whether compression is enabled.
func (s *Sealer) Compressing() bool { return s.opts.Compress }

// Encrypting reports whether encryption is enabled.
func (s *Sealer) Encrypting() bool { return s.opts.Encrypt }

// sum wraps a pooled HMAC state: reset, feed data, append the tag to dst.
func (s *Sealer) sum(dst, data []byte) []byte {
	mac := s.macPool.Get().(hash.Hash)
	mac.Reset()
	mac.Write(data) //nolint:errcheck // hash writes never fail
	dst = mac.Sum(dst)
	s.macPool.Put(mac)
	return dst
}

// Seal envelopes payload for upload. The returned buffer is freshly
// allocated at exact size — it is never recycled, so callers may retain
// it — but all intermediate state (compressor, HMAC, scratch) is pooled.
func (s *Sealer) Seal(payload []byte) ([]byte, error) {
	var scratch *bytes.Buffer
	var zw *zlib.Writer
	if s.opts.Compress {
		scratch = bufPool.Get().(*bytes.Buffer)
		defer bufPool.Put(scratch)
		zw = zwPool.Get().(*zlib.Writer)
		defer zwPool.Put(zw)
	}
	mac := s.macPool.Get().(hash.Hash)
	defer s.macPool.Put(mac)
	return s.sealWith(payload, scratch, zw, mac)
}

// sealWith is the sealing core shared by the pooled Seal path and Ctx:
// scratch and zw are only touched when compression is enabled (and may be
// nil otherwise), mac is always required.
func (s *Sealer) sealWith(payload []byte, scratch *bytes.Buffer, zw *zlib.Writer, mac hash.Hash) ([]byte, error) {
	var flags byte
	body := payload
	if s.opts.Compress {
		scratch.Reset()
		zw.Reset(scratch)
		if _, err := zw.Write(payload); err != nil {
			return nil, fmt.Errorf("sealer: compress: %w", err)
		}
		if err := zw.Close(); err != nil {
			return nil, fmt.Errorf("sealer: compress: %w", err)
		}
		body = scratch.Bytes()
		flags |= flagCompressed
	}
	size := len(magic) + 1 + len(body) + macSize
	if s.opts.Encrypt {
		size += ivSize
	}
	out := make([]byte, 0, size)
	out = append(out, magic...)
	if s.opts.Encrypt {
		flags |= flagEncrypted
	}
	out = append(out, flags)
	if s.opts.Encrypt {
		var iv [ivSize]byte
		if _, err := rand.Read(iv[:]); err != nil {
			return nil, fmt.Errorf("sealer: iv: %w", err)
		}
		out = append(out, iv[:]...)
		// Encrypt in place: append the plaintext, then XOR the keystream
		// over the bytes just appended.
		start := len(out)
		out = append(out, body...)
		cipher.NewCTR(s.block, iv[:]).XORKeyStream(out[start:], out[start:])
	} else {
		out = append(out, body...)
	}
	mac.Reset()
	mac.Write(out) //nolint:errcheck // hash writes never fail
	return mac.Sum(out), nil
}

// Ctx is a dedicated sealing context for one worker goroutine: it owns
// its compressor, HMAC state and compression scratch outright instead of
// borrowing them from the shared pools, so a pool of N workers sealing
// parts concurrently (the streaming dump path) hits zero pool contention
// and keeps exactly N compressors alive. A Ctx is NOT safe for concurrent
// use; the Sealer it came from remains so.
type Ctx struct {
	s       *Sealer
	mac     hash.Hash
	scratch *bytes.Buffer
	zw      *zlib.Writer
}

// NewCtx builds a per-worker sealing context.
func (s *Sealer) NewCtx() *Ctx {
	c := &Ctx{s: s, mac: hmac.New(sha1.New, s.macKey)}
	if s.opts.Compress {
		c.scratch = new(bytes.Buffer)
		zw, err := zlib.NewWriterLevel(io.Discard, zlib.BestSpeed)
		if err != nil {
			panic(err) // unreachable: BestSpeed is a valid level
		}
		c.zw = zw
	}
	return c
}

// Seal is Sealer.Seal using this context's dedicated state. The returned
// buffer is freshly allocated at exact size and never recycled.
func (c *Ctx) Seal(payload []byte) ([]byte, error) {
	return c.s.sealWith(payload, c.scratch, c.zw, c.mac)
}

// Open verifies and unwraps a sealed object. The result never aliases
// sealed, so callers may reuse their input buffer.
func (s *Sealer) Open(sealed []byte) ([]byte, error) {
	if len(sealed) < len(magic)+1+macSize {
		return nil, ErrFormat
	}
	if !bytes.Equal(sealed[:len(magic)], magic) {
		return nil, ErrFormat
	}
	body := sealed[:len(sealed)-macSize]
	wantMAC := sealed[len(sealed)-macSize:]
	var tag [macSize]byte
	if !hmac.Equal(s.sum(tag[:0], body), wantMAC) {
		return nil, ErrIntegrity
	}
	flags := sealed[len(magic)]
	payload := body[len(magic)+1:]
	if flags&flagEncrypted != 0 {
		if !s.opts.Encrypt {
			return nil, errors.New("sealer: object is encrypted but no password configured")
		}
		if len(payload) < ivSize {
			return nil, ErrFormat
		}
		iv := payload[:ivSize]
		enc := payload[ivSize:]
		dec := make([]byte, len(enc))
		cipher.NewCTR(s.block, iv).XORKeyStream(dec, enc)
		payload = dec
	} else {
		payload = append([]byte(nil), payload...)
	}
	if flags&flagCompressed != 0 {
		out, err := s.decompress(payload)
		if err != nil {
			return nil, fmt.Errorf("sealer: decompress: %w", err)
		}
		payload = out
	}
	return payload, nil
}

// decompress inflates data with a pooled zlib reader, returning a fresh
// exact-size buffer.
func (s *Sealer) decompress(data []byte) ([]byte, error) {
	br := bytes.NewReader(data)
	var zr io.ReadCloser
	if pooled := zrPool.Get(); pooled != nil {
		zr = pooled.(io.ReadCloser)
		if err := zr.(zlib.Resetter).Reset(br, nil); err != nil {
			return nil, err
		}
	} else {
		var err error
		zr, err = zlib.NewReader(br)
		if err != nil {
			return nil, err
		}
	}
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	_, err := buf.ReadFrom(zr)
	if cerr := zr.Close(); err == nil {
		err = cerr
	}
	zrPool.Put(zr)
	if err != nil {
		bufPool.Put(buf)
		return nil, err
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	bufPool.Put(buf)
	return out, nil
}

// pbkdf2SHA256 is PBKDF2 (RFC 2898) with HMAC-SHA-256, implemented here
// because the repository is stdlib-only.
func pbkdf2SHA256(password, salt []byte, iterations, keyLen int) []byte {
	prf := func(data []byte) []byte {
		h := hmac.New(sha256.New, password)
		h.Write(data) //nolint:errcheck // hash writes never fail
		return h.Sum(nil)
	}
	numBlocks := (keyLen + sha256.Size - 1) / sha256.Size
	out := make([]byte, 0, numBlocks*sha256.Size)
	for block := 1; block <= numBlocks; block++ {
		u := prf(append(append([]byte(nil), salt...), byte(block>>24), byte(block>>16), byte(block>>8), byte(block)))
		sum := append([]byte(nil), u...)
		for i := 1; i < iterations; i++ {
			u = prf(u)
			for j := range sum {
				sum[j] ^= u[j]
			}
		}
		out = append(out, sum...)
	}
	return out[:keyLen]
}
