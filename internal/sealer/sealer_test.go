package sealer

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func configs(t *testing.T) map[string]*Sealer {
	t.Helper()
	mk := func(o Options) *Sealer {
		s, err := New(o)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	return map[string]*Sealer{
		"plain": NewPlain(),
		"comp":  mk(Options{Compress: true}),
		"crypt": mk(Options{Encrypt: true, Password: "hunter2"}),
		"c+c":   mk(Options{Compress: true, Encrypt: true, Password: "hunter2"}),
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		[]byte("x"),
		[]byte("hello ginja disaster recovery"),
		bytes.Repeat([]byte("wal-page-"), 10000),
		{0, 1, 2, 3, 255, 254},
	}
	for name, s := range configs(t) {
		t.Run(name, func(t *testing.T) {
			for i, payload := range payloads {
				sealed, err := s.Seal(payload)
				if err != nil {
					t.Fatalf("payload %d: Seal: %v", i, err)
				}
				got, err := s.Open(sealed)
				if err != nil {
					t.Fatalf("payload %d: Open: %v", i, err)
				}
				if !bytes.Equal(got, payload) {
					t.Fatalf("payload %d: round trip mismatch", i)
				}
			}
		})
	}
}

func TestCompressionShrinksRedundantData(t *testing.T) {
	s, err := New(Options{Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("0123456789abcdef"), 4096) // 64 KiB, highly redundant
	sealed, err := s.Seal(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(sealed) >= len(payload)/2 {
		t.Fatalf("compressed %d → %d, expected at least 2× shrink", len(payload), len(sealed))
	}
}

func TestTamperingDetected(t *testing.T) {
	for name, s := range configs(t) {
		t.Run(name, func(t *testing.T) {
			sealed, err := s.Seal([]byte("important database state"))
			if err != nil {
				t.Fatal(err)
			}
			for _, pos := range []int{0, 4, 5, len(sealed) / 2, len(sealed) - 1} {
				bad := append([]byte(nil), sealed...)
				bad[pos] ^= 0x01
				if _, err := s.Open(bad); err == nil {
					t.Errorf("tampered byte %d accepted", pos)
				}
			}
		})
	}
}

func TestTruncationDetected(t *testing.T) {
	s := NewPlain()
	sealed, err := s.Seal([]byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(sealed); n += 3 {
		if _, err := s.Open(sealed[:n]); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
}

func TestWrongPasswordRejected(t *testing.T) {
	s1, err := New(Options{Encrypt: true, Password: "correct"})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(Options{Encrypt: true, Password: "wrong"})
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := s1.Seal([]byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	// Different password → different MAC key → integrity failure (the
	// attacker cannot even distinguish "wrong key" from "corrupt").
	if _, err := s2.Open(sealed); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("Open with wrong password = %v, want ErrIntegrity", err)
	}
}

func TestEncryptedObjectNeedsPassword(t *testing.T) {
	enc, err := New(Options{Encrypt: true, Password: "p", MACSeed: "shared"})
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := enc.Seal([]byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	plain := NewPlain()
	if _, err := plain.Open(sealed); err == nil {
		t.Fatal("plain sealer opened an encrypted object")
	}
}

func TestEncryptionHidesPlaintext(t *testing.T) {
	s, err := New(Options{Encrypt: true, Password: "p"})
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("SSN=000-00-0000 the-secret-row")
	sealed, err := s.Seal(secret)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(sealed, secret[:10]) {
		t.Fatal("plaintext visible in sealed object")
	}
	// Sealing twice must produce different ciphertexts (fresh IV).
	sealed2, err := s.Seal(secret)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(sealed, sealed2) {
		t.Fatal("two seals of the same payload are identical (IV reuse)")
	}
}

func TestEncryptWithoutPasswordRejected(t *testing.T) {
	if _, err := New(Options{Encrypt: true}); err == nil {
		t.Fatal("New accepted encryption without a password")
	}
}

func TestGarbageRejected(t *testing.T) {
	s := NewPlain()
	for _, garbage := range [][]byte{nil, []byte("x"), []byte("not an envelope at all, definitely")} {
		if _, err := s.Open(garbage); err == nil {
			t.Errorf("garbage %q accepted", garbage)
		}
	}
}

func TestPropertySealOpen(t *testing.T) {
	for name, s := range configs(t) {
		s := s
		t.Run(name, func(t *testing.T) {
			prop := func(payload []byte) bool {
				sealed, err := s.Seal(payload)
				if err != nil {
					return false
				}
				got, err := s.Open(sealed)
				if err != nil {
					return false
				}
				return bytes.Equal(got, payload)
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestPBKDF2Deterministic(t *testing.T) {
	k1 := pbkdf2SHA256([]byte("pw"), []byte("salt"), 100, 16)
	k2 := pbkdf2SHA256([]byte("pw"), []byte("salt"), 100, 16)
	if !bytes.Equal(k1, k2) {
		t.Fatal("PBKDF2 not deterministic")
	}
	k3 := pbkdf2SHA256([]byte("pw"), []byte("other"), 100, 16)
	if bytes.Equal(k1, k3) {
		t.Fatal("different salts produced the same key")
	}
	k4 := pbkdf2SHA256([]byte("pw"), []byte("salt"), 100, 40) // > one SHA-256 block
	if len(k4) != 40 {
		t.Fatalf("key length = %d, want 40", len(k4))
	}
}

func TestPBKDF2KnownVector(t *testing.T) {
	// RFC 7914 test vector appendix (PBKDF2-HMAC-SHA-256):
	// P="passwd", S="salt", c=1, dkLen=64 → first 8 bytes 55ac046e56e3089f.
	k := pbkdf2SHA256([]byte("passwd"), []byte("salt"), 1, 64)
	want := []byte{0x55, 0xac, 0x04, 0x6e, 0x56, 0xe3, 0x08, 0x9f}
	if !bytes.Equal(k[:8], want) {
		t.Fatalf("PBKDF2 vector mismatch: got %x, want %x", k[:8], want)
	}
}
