package sealer

import (
	"bytes"
	"testing"
)

func benchPayload() []byte {
	// A WAL-page-like payload: structured, moderately compressible.
	return bytes.Repeat([]byte("update stock set qty=42 where id=123;"), 220) // ≈8 KiB
}

func benchDumpPayload() []byte {
	// A dump-part-like payload: bigger, page-structured.
	page := append(bytes.Repeat([]byte{0}, 128), bytes.Repeat([]byte("row-data-0123456789"), 47)...)
	return bytes.Repeat(page, 256) // ≈256 KiB
}

func benchPayloads() map[string][]byte {
	return map[string][]byte{"wal8k": benchPayload(), "dump256k": benchDumpPayload()}
}

func benchConfigs(b *testing.B) map[string]*Sealer {
	b.Helper()
	mk := func(o Options) *Sealer {
		s, err := New(o)
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	return map[string]*Sealer{
		"plain": NewPlain(),
		"comp":  mk(Options{Compress: true}),
		"crypt": mk(Options{Encrypt: true, Password: "pw"}),
		"c+c":   mk(Options{Compress: true, Encrypt: true, Password: "pw"}),
	}
}

func BenchmarkSeal(b *testing.B) {
	for size, payload := range benchPayloads() {
		for name, s := range benchConfigs(b) {
			b.Run(size+"/"+name, func(b *testing.B) {
				b.SetBytes(int64(len(payload)))
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := s.Seal(payload); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkOpen(b *testing.B) {
	for size, payload := range benchPayloads() {
		for name, s := range benchConfigs(b) {
			b.Run(size+"/"+name, func(b *testing.B) {
				sealed, err := s.Seal(payload)
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(int64(len(payload)))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := s.Open(sealed); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
