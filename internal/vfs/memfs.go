package vfs

import (
	"io"
	"io/fs"
	"os"
	"path"
	"sort"
	"strings"
	"sync"
	"time"
)

// MemFS is an in-memory FS used by tests and high-throughput experiments
// (it removes local-disk noise so that the cloud path dominates, matching
// the paper's observation that commit latency is bounded by the WAL sync).
type MemFS struct {
	mu    sync.RWMutex
	files map[string]*memFileData // path -> contents
}

var _ FS = (*MemFS)(nil)

type memFileData struct {
	mu      sync.RWMutex
	data    []byte
	modTime time.Time
}

// NewMemFS returns an empty in-memory file system.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memFileData)}
}

func normalize(name string) string {
	return strings.TrimPrefix(path.Clean("/"+name), "/")
}

// OpenFile implements FS.
func (m *MemFS) OpenFile(name string, flag int, _ os.FileMode) (File, error) {
	name = normalize(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	fd, ok := m.files[name]
	if !ok {
		if flag&os.O_CREATE == 0 {
			return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
		}
		fd = &memFileData{modTime: time.Now()}
		m.files[name] = fd
	}
	if flag&os.O_TRUNC != 0 {
		fd.mu.Lock()
		fd.data = nil
		fd.mu.Unlock()
	}
	return &memFile{fd: fd, name: name}, nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	name = normalize(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(m.files, name)
	return nil
}

// Rename implements FS.
func (m *MemFS) Rename(oldName, newName string) error {
	oldName, newName = normalize(oldName), normalize(newName)
	m.mu.Lock()
	defer m.mu.Unlock()
	fd, ok := m.files[oldName]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldName, Err: fs.ErrNotExist}
	}
	delete(m.files, oldName)
	m.files[newName] = fd
	return nil
}

// Stat implements FS.
func (m *MemFS) Stat(name string) (fs.FileInfo, error) {
	name = normalize(name)
	m.mu.RLock()
	defer m.mu.RUnlock()
	if fd, ok := m.files[name]; ok {
		fd.mu.RLock()
		defer fd.mu.RUnlock()
		return memFileInfo{name: path.Base(name), size: int64(len(fd.data)), modTime: fd.modTime}, nil
	}
	// Directories exist implicitly when they have children.
	prefix := name + "/"
	if name == "" {
		prefix = ""
	}
	for p := range m.files {
		if strings.HasPrefix(p, prefix) {
			return memFileInfo{name: path.Base(name), dir: true, modTime: time.Now()}, nil
		}
	}
	return nil, &fs.PathError{Op: "stat", Path: name, Err: fs.ErrNotExist}
}

// ReadDir implements FS.
func (m *MemFS) ReadDir(name string) ([]fs.DirEntry, error) {
	name = normalize(name)
	prefix := name + "/"
	if name == "" || name == "." {
		prefix = ""
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	seen := make(map[string]fs.DirEntry)
	for p, fd := range m.files {
		if !strings.HasPrefix(p, prefix) {
			continue
		}
		rest := strings.TrimPrefix(p, prefix)
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			dir := rest[:i]
			seen[dir] = memDirEntry{info: memFileInfo{name: dir, dir: true}}
			continue
		}
		fd.mu.RLock()
		info := memFileInfo{name: rest, size: int64(len(fd.data)), modTime: fd.modTime}
		fd.mu.RUnlock()
		seen[rest] = memDirEntry{info: info}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	entries := make([]fs.DirEntry, 0, len(names))
	for _, n := range names {
		entries = append(entries, seen[n])
	}
	return entries, nil
}

// MkdirAll implements FS. Directories are implicit in MemFS, so this is a
// no-op that always succeeds.
func (m *MemFS) MkdirAll(string, os.FileMode) error { return nil }

type memFile struct {
	fd   *memFileData
	name string
}

var _ File = (*memFile)(nil)

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	f.fd.mu.RLock()
	defer f.fd.mu.RUnlock()
	if off >= int64(len(f.fd.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.fd.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memFile) WriteAt(p []byte, off int64) (int, error) {
	f.fd.mu.Lock()
	defer f.fd.mu.Unlock()
	end := off + int64(len(p))
	if end > int64(len(f.fd.data)) {
		grown := make([]byte, end)
		copy(grown, f.fd.data)
		f.fd.data = grown
	}
	copy(f.fd.data[off:end], p)
	f.fd.modTime = time.Now()
	return len(p), nil
}

func (f *memFile) Close() error { return nil }
func (f *memFile) Sync() error  { return nil }

func (f *memFile) Truncate(size int64) error {
	f.fd.mu.Lock()
	defer f.fd.mu.Unlock()
	switch {
	case size < int64(len(f.fd.data)):
		f.fd.data = f.fd.data[:size]
	case size > int64(len(f.fd.data)):
		grown := make([]byte, size)
		copy(grown, f.fd.data)
		f.fd.data = grown
	}
	return nil
}

func (f *memFile) Size() (int64, error) {
	f.fd.mu.RLock()
	defer f.fd.mu.RUnlock()
	return int64(len(f.fd.data)), nil
}

func (f *memFile) Name() string { return f.name }

type memFileInfo struct {
	name    string
	size    int64
	dir     bool
	modTime time.Time
}

func (i memFileInfo) Name() string       { return i.name }
func (i memFileInfo) Size() int64        { return i.size }
func (i memFileInfo) Mode() fs.FileMode  { return modeOf(i.dir) }
func (i memFileInfo) ModTime() time.Time { return i.modTime }
func (i memFileInfo) IsDir() bool        { return i.dir }
func (i memFileInfo) Sys() any           { return nil }

func modeOf(dir bool) fs.FileMode {
	if dir {
		return fs.ModeDir | 0o755
	}
	return 0o644
}

type memDirEntry struct {
	info memFileInfo
}

func (e memDirEntry) Name() string               { return e.info.name }
func (e memDirEntry) IsDir() bool                { return e.info.dir }
func (e memDirEntry) Type() fs.FileMode          { return e.info.Mode().Type() }
func (e memDirEntry) Info() (fs.FileInfo, error) { return e.info, nil }
