package vfs

import (
	"os"
	"reflect"
	"sync"
	"testing"
	"time"
)

// recordingObserver captures every event for assertions.
type recordingObserver struct {
	mu        sync.Mutex
	writes    []writeEvent
	syncs     []string
	truncates []string
	removes   []string
}

type writeEvent struct {
	path string
	off  int64
	data string
}

func (r *recordingObserver) OnBeforeWrite(string, int64, []byte) {}

func (r *recordingObserver) OnWrite(path string, off int64, data []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.writes = append(r.writes, writeEvent{path: path, off: off, data: string(data)})
}

func (r *recordingObserver) OnSync(path string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.syncs = append(r.syncs, path)
}

func (r *recordingObserver) OnTruncate(path string, _ int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.truncates = append(r.truncates, path)
}

func (r *recordingObserver) OnRemove(path string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.removes = append(r.removes, path)
}

func TestInterceptReportsWrites(t *testing.T) {
	obs := &recordingObserver{}
	fsys := NewInterceptFS(NewMemFS(), obs)

	f, err := fsys.OpenFile("pg_xlog/0001", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("rec1"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("rec2"), 8192); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Remove("pg_xlog/0001"); err != nil {
		t.Fatal(err)
	}

	want := []writeEvent{
		{path: "pg_xlog/0001", off: 0, data: "rec1"},
		{path: "pg_xlog/0001", off: 8192, data: "rec2"},
	}
	if !reflect.DeepEqual(obs.writes, want) {
		t.Fatalf("writes = %+v, want %+v", obs.writes, want)
	}
	if !reflect.DeepEqual(obs.syncs, []string{"pg_xlog/0001"}) {
		t.Fatalf("syncs = %v", obs.syncs)
	}
	if !reflect.DeepEqual(obs.truncates, []string{"pg_xlog/0001"}) {
		t.Fatalf("truncates = %v", obs.truncates)
	}
	if !reflect.DeepEqual(obs.removes, []string{"pg_xlog/0001"}) {
		t.Fatalf("removes = %v", obs.removes)
	}
}

func TestInterceptLocalWriteHappensBeforeObserver(t *testing.T) {
	inner := NewMemFS()
	var sawContent string
	obs := &funcObserver{onWrite: func(path string, off int64, data []byte) {
		// At observation time the data must already be readable locally
		// (paper: write locally, then enqueue).
		got, err := ReadFile(inner, path)
		if err != nil {
			return
		}
		sawContent = string(got)
	}}
	fsys := NewInterceptFS(inner, obs)
	if err := WriteFile(fsys, "f", []byte("durable")); err != nil {
		t.Fatal(err)
	}
	if sawContent != "durable" {
		t.Fatalf("observer saw %q, want the already-written content", sawContent)
	}
}

func TestInterceptObserverCanBlockWriter(t *testing.T) {
	release := make(chan struct{})
	obs := &funcObserver{onWrite: func(string, int64, []byte) { <-release }}
	fsys := NewInterceptFS(NewMemFS(), obs)

	done := make(chan struct{})
	go func() {
		defer close(done)
		f, err := fsys.OpenFile("wal", os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		defer f.Close()
		if _, err := f.WriteAt([]byte("x"), 0); err != nil {
			t.Errorf("write: %v", err)
		}
	}()

	select {
	case <-done:
		t.Fatal("write returned while observer was blocking")
	case <-time.After(30 * time.Millisecond):
	}
	close(release)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("write did not return after observer released it")
	}
}

func TestInterceptInnerBypassesObserver(t *testing.T) {
	obs := &recordingObserver{}
	fsys := NewInterceptFS(NewMemFS(), obs)
	if err := WriteFile(fsys.Inner(), "f", []byte("quiet")); err != nil {
		t.Fatal(err)
	}
	if len(obs.writes) != 0 {
		t.Fatalf("Inner() writes were observed: %+v", obs.writes)
	}
	// But the data is visible through the intercepted view.
	got, err := ReadFile(fsys, "f")
	if err != nil || string(got) != "quiet" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
}

func TestInterceptNilObserver(t *testing.T) {
	fsys := NewInterceptFS(NewMemFS(), nil)
	if err := WriteFile(fsys, "f", []byte("x")); err != nil {
		t.Fatalf("nil observer must behave as no-op: %v", err)
	}
}

type funcObserver struct {
	NopObserver
	onWrite func(path string, off int64, data []byte)
}

func (f *funcObserver) OnWrite(path string, off int64, data []byte) {
	if f.onWrite != nil {
		f.onWrite(path, off, data)
	}
}
