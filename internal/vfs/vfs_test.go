package vfs

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"reflect"
	"testing"
	"testing/quick"
)

func fsFactories(t *testing.T) map[string]func(t *testing.T) FS {
	return map[string]func(t *testing.T) FS{
		"mem": func(t *testing.T) FS { return NewMemFS() },
		"os": func(t *testing.T) FS {
			f, err := NewOSFS(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return f
		},
		"intercept-mem": func(t *testing.T) FS {
			return NewInterceptFS(NewMemFS(), nil)
		},
	}
}

func TestFSWriteReadRoundTrip(t *testing.T) {
	for name, mk := range fsFactories(t) {
		t.Run(name, func(t *testing.T) {
			fsys := mk(t)
			if err := WriteFile(fsys, "pg_xlog/000000010000000000000001", []byte("wal data")); err != nil {
				t.Fatalf("WriteFile: %v", err)
			}
			got, err := ReadFile(fsys, "pg_xlog/000000010000000000000001")
			if err != nil {
				t.Fatalf("ReadFile: %v", err)
			}
			if string(got) != "wal data" {
				t.Fatalf("ReadFile = %q", got)
			}
		})
	}
}

func TestFSWriteAtGrowsFile(t *testing.T) {
	for name, mk := range fsFactories(t) {
		t.Run(name, func(t *testing.T) {
			fsys := mk(t)
			if err := WriteAt(fsys, "f", 100, []byte("tail")); err != nil {
				t.Fatal(err)
			}
			fi, err := fsys.Stat("f")
			if err != nil {
				t.Fatal(err)
			}
			if fi.Size() != 104 {
				t.Fatalf("Size = %d, want 104", fi.Size())
			}
			data, err := ReadFile(fsys, "f")
			if err != nil {
				t.Fatal(err)
			}
			if string(data[100:]) != "tail" {
				t.Fatalf("tail = %q", data[100:])
			}
			for _, b := range data[:100] {
				if b != 0 {
					t.Fatal("hole should be zero-filled")
				}
			}
		})
	}
}

func TestFSOverwriteMiddle(t *testing.T) {
	for name, mk := range fsFactories(t) {
		t.Run(name, func(t *testing.T) {
			fsys := mk(t)
			if err := WriteFile(fsys, "f", []byte("aaaaaaaaaa")); err != nil {
				t.Fatal(err)
			}
			if err := WriteAt(fsys, "f", 3, []byte("BBB")); err != nil {
				t.Fatal(err)
			}
			got, err := ReadFile(fsys, "f")
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != "aaaBBBaaaa" {
				t.Fatalf("got %q", got)
			}
		})
	}
}

func TestFSTruncate(t *testing.T) {
	for name, mk := range fsFactories(t) {
		t.Run(name, func(t *testing.T) {
			fsys := mk(t)
			if err := WriteFile(fsys, "f", []byte("0123456789")); err != nil {
				t.Fatal(err)
			}
			f, err := fsys.OpenFile("f", os.O_RDWR, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if err := f.Truncate(4); err != nil {
				t.Fatal(err)
			}
			size, err := f.Size()
			if err != nil {
				t.Fatal(err)
			}
			if size != 4 {
				t.Fatalf("Size = %d, want 4", size)
			}
			if err := f.Truncate(8); err != nil {
				t.Fatal(err)
			}
			data, err := ReadFile(fsys, "f")
			if err != nil {
				t.Fatal(err)
			}
			if string(data) != "0123\x00\x00\x00\x00" {
				t.Fatalf("after grow-truncate: %q", data)
			}
		})
	}
}

func TestFSRemoveAndRename(t *testing.T) {
	for name, mk := range fsFactories(t) {
		t.Run(name, func(t *testing.T) {
			fsys := mk(t)
			if err := WriteFile(fsys, "a", []byte("x")); err != nil {
				t.Fatal(err)
			}
			if err := fsys.Rename("a", "b"); err != nil {
				t.Fatal(err)
			}
			if _, err := fsys.Stat("a"); !errors.Is(err, fs.ErrNotExist) {
				t.Fatalf("Stat(a) = %v, want ErrNotExist", err)
			}
			if err := fsys.Remove("b"); err != nil {
				t.Fatal(err)
			}
			if _, err := fsys.Stat("b"); !errors.Is(err, fs.ErrNotExist) {
				t.Fatalf("Stat(b) = %v, want ErrNotExist", err)
			}
			if err := fsys.Remove("b"); !errors.Is(err, fs.ErrNotExist) {
				t.Fatalf("Remove(missing) = %v, want ErrNotExist", err)
			}
		})
	}
}

func TestFSOpenMissingWithoutCreate(t *testing.T) {
	for name, mk := range fsFactories(t) {
		t.Run(name, func(t *testing.T) {
			fsys := mk(t)
			if _, err := fsys.OpenFile("missing", os.O_RDONLY, 0); !errors.Is(err, fs.ErrNotExist) {
				t.Fatalf("OpenFile = %v, want ErrNotExist", err)
			}
		})
	}
}

func TestFSReadDir(t *testing.T) {
	for name, mk := range fsFactories(t) {
		t.Run(name, func(t *testing.T) {
			fsys := mk(t)
			for _, p := range []string{"dir/b", "dir/a", "dir/sub/c", "top"} {
				if err := WriteFile(fsys, p, []byte(p)); err != nil {
					t.Fatal(err)
				}
			}
			entries, err := fsys.ReadDir("dir")
			if err != nil {
				t.Fatal(err)
			}
			var names []string
			var dirs []bool
			for _, e := range entries {
				names = append(names, e.Name())
				dirs = append(dirs, e.IsDir())
			}
			if !reflect.DeepEqual(names, []string{"a", "b", "sub"}) {
				t.Fatalf("names = %v", names)
			}
			if !reflect.DeepEqual(dirs, []bool{false, false, true}) {
				t.Fatalf("dirs = %v", dirs)
			}
		})
	}
}

func TestWalk(t *testing.T) {
	fsys := NewMemFS()
	paths := []string{"base/1/t1", "base/1/t2", "pg_xlog/0001", "global/pg_control"}
	for _, p := range paths {
		if err := WriteFile(fsys, p, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	got, err := Walk(fsys, "")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"base/1/t1", "base/1/t2", "global/pg_control", "pg_xlog/0001"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Walk = %v, want %v", got, want)
	}
}

func TestReadAtShortReadReturnsEOF(t *testing.T) {
	fsys := NewMemFS()
	if err := WriteFile(fsys, "f", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	f, err := fsys.OpenFile("f", os.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 10)
	n, err := f.ReadAt(buf, 0)
	if n != 3 || !errors.Is(err, io.EOF) {
		t.Fatalf("ReadAt = (%d, %v), want (3, EOF)", n, err)
	}
}

// TestMemFSPropertyWriteAt: any sequence of WriteAt calls yields the same
// final content as applying them to a plain byte slice.
func TestMemFSPropertyWriteAt(t *testing.T) {
	type op struct {
		Off  uint16
		Data []byte
	}
	prop := func(ops []op) bool {
		fsys := NewMemFS()
		f, err := fsys.OpenFile("f", os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			return false
		}
		defer f.Close()
		var model []byte
		for _, o := range ops {
			off := int64(o.Off % 4096)
			if _, err := f.WriteAt(o.Data, off); err != nil {
				return false
			}
			end := off + int64(len(o.Data))
			if end > int64(len(model)) {
				grown := make([]byte, end)
				copy(grown, model)
				model = grown
			}
			copy(model[off:end], o.Data)
		}
		got, err := ReadFile(fsys, "f")
		if err != nil {
			return false
		}
		return string(got) == string(model)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestOSFSRejectsEscape(t *testing.T) {
	fsys, err := NewOSFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Path cleaning must keep "../../etc/passwd" inside the root.
	if err := WriteFile(fsys, "../escape", []byte("x")); err != nil {
		t.Fatalf("WriteFile should clean the path, got err %v", err)
	}
	if _, err := os.Stat(fsys.Root() + "/escape"); err != nil {
		t.Fatalf("cleaned file not inside root: %v", err)
	}
}

func TestOpenWithTruncFlag(t *testing.T) {
	for name, mk := range fsFactories(t) {
		t.Run(name, func(t *testing.T) {
			fsys := mk(t)
			if err := WriteFile(fsys, "f", []byte("old content")); err != nil {
				t.Fatal(err)
			}
			f, err := fsys.OpenFile("f", os.O_RDWR|os.O_TRUNC, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			size, err := f.Size()
			if err != nil {
				t.Fatal(err)
			}
			f.Close()
			if size != 0 {
				t.Fatalf("O_TRUNC left %d bytes", size)
			}
		})
	}
}

func TestStatDirectoryAndMissing(t *testing.T) {
	fsys := NewMemFS()
	if err := WriteFile(fsys, "dir/sub/file", []byte("x")); err != nil {
		t.Fatal(err)
	}
	fi, err := fsys.Stat("dir/sub")
	if err != nil {
		t.Fatal(err)
	}
	if !fi.IsDir() {
		t.Fatal("implicit directory not reported as dir")
	}
	if _, err := fsys.Stat("nope"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Stat(missing) = %v", err)
	}
	// Mode sanity for files and dirs.
	ff, err := fsys.Stat("dir/sub/file")
	if err != nil {
		t.Fatal(err)
	}
	if ff.IsDir() || ff.Mode().IsDir() {
		t.Fatal("file reported as dir")
	}
}

func TestWalkMissingRootFails(t *testing.T) {
	fsys, err := NewOSFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Walk(fsys, "no-such-dir"); err == nil {
		t.Fatal("Walk on a missing directory succeeded")
	}
}
