// Package vfs provides the file-system interposition layer Ginja sits on.
//
// The paper implements interception as a FUSE file system; this repository
// implements the same role in-process: the database engine performs all of
// its I/O through the FS interface, and InterceptFS forwards every write,
// sync and truncate to an Observer *before returning to the caller* — so
// the observer can block the database exactly like the paper's FS
// Interpreter does when the Safety limit is exceeded (paper §5.1, Alg. 2
// line 7).
package vfs

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
)

// File is the handle the database uses for page- and log-structured I/O.
// All access is positional (pread/pwrite style), matching how PostgreSQL
// and InnoDB write WAL pages and data pages.
type File interface {
	io.ReaderAt
	io.WriterAt
	io.Closer

	// Sync flushes the file to durable storage (fsync).
	Sync() error
	// Truncate changes the file size.
	Truncate(size int64) error
	// Size returns the current file size.
	Size() (int64, error)
	// Name returns the path the file was opened with.
	Name() string
}

// FS is the file-system surface the database engines require.
type FS interface {
	// OpenFile opens (creating with os.O_CREATE) the named file.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Remove deletes the named file.
	Remove(name string) error
	// Rename atomically renames a file.
	Rename(oldName, newName string) error
	// Stat returns file metadata.
	Stat(name string) (fs.FileInfo, error)
	// ReadDir lists a directory (non-recursive), sorted by name.
	ReadDir(name string) ([]fs.DirEntry, error)
	// MkdirAll creates a directory and its parents.
	MkdirAll(name string, perm os.FileMode) error
}

// WriteFile is a convenience helper that creates/overwrites name with data.
func WriteFile(fsys FS, name string, data []byte) error {
	if dir := path.Dir(name); dir != "." && dir != "/" {
		if err := fsys.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := fsys.OpenFile(name, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Truncate(0); err != nil {
		return err
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		return err
	}
	return f.Sync()
}

// ReadFile reads the whole content of name.
func ReadFile(fsys FS, name string) ([]byte, error) {
	f, err := fsys.OpenFile(name, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	data := make([]byte, size)
	if size == 0 {
		return data, nil
	}
	if _, err := f.ReadAt(data, 0); err != nil && !errors.Is(err, io.EOF) {
		return nil, err
	}
	return data, nil
}

// WriteAt writes data at off in name, creating the file if needed.
func WriteAt(fsys FS, name string, off int64, data []byte) error {
	if dir := path.Dir(name); dir != "." && dir != "/" {
		if err := fsys.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := fsys.OpenFile(name, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.WriteAt(data, off); err != nil {
		return err
	}
	return f.Sync()
}

// Walk returns every file path under root (recursively), sorted.
func Walk(fsys FS, root string) ([]string, error) {
	var out []string
	var walk func(dir string) error
	walk = func(dir string) error {
		entries, err := fsys.ReadDir(dir)
		if err != nil {
			return err
		}
		for _, e := range entries {
			p := path.Join(dir, e.Name())
			if e.IsDir() {
				if err := walk(p); err != nil {
					return err
				}
				continue
			}
			out = append(out, p)
		}
		return nil
	}
	if err := walk(root); err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// OSFS is an FS rooted at a directory of the host file system.
type OSFS struct {
	root string
}

var _ FS = (*OSFS)(nil)

// NewOSFS returns an FS rooted at dir, creating dir if necessary.
func NewOSFS(dir string) (*OSFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return &OSFS{root: abs}, nil
}

// Root returns the host directory backing this FS.
func (o *OSFS) Root() string { return o.root }

func (o *OSFS) hostPath(name string) (string, error) {
	clean := path.Clean("/" + name)
	if strings.Contains(clean, "..") {
		return "", &fs.PathError{Op: "open", Path: name, Err: fs.ErrInvalid}
	}
	return filepath.Join(o.root, filepath.FromSlash(clean)), nil
}

// OpenFile implements FS.
func (o *OSFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	p, err := o.hostPath(name)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(p, flag, perm)
	if err != nil {
		return nil, err
	}
	return &osFile{f: f, name: name}, nil
}

// Remove implements FS.
func (o *OSFS) Remove(name string) error {
	p, err := o.hostPath(name)
	if err != nil {
		return err
	}
	return os.Remove(p)
}

// Rename implements FS.
func (o *OSFS) Rename(oldName, newName string) error {
	po, err := o.hostPath(oldName)
	if err != nil {
		return err
	}
	pn, err := o.hostPath(newName)
	if err != nil {
		return err
	}
	return os.Rename(po, pn)
}

// Stat implements FS.
func (o *OSFS) Stat(name string) (fs.FileInfo, error) {
	p, err := o.hostPath(name)
	if err != nil {
		return nil, err
	}
	return os.Stat(p)
}

// ReadDir implements FS.
func (o *OSFS) ReadDir(name string) ([]fs.DirEntry, error) {
	p, err := o.hostPath(name)
	if err != nil {
		return nil, err
	}
	return os.ReadDir(p)
}

// MkdirAll implements FS.
func (o *OSFS) MkdirAll(name string, perm os.FileMode) error {
	p, err := o.hostPath(name)
	if err != nil {
		return err
	}
	return os.MkdirAll(p, perm)
}

type osFile struct {
	f    *os.File
	name string
}

func (f *osFile) ReadAt(p []byte, off int64) (int, error)  { return f.f.ReadAt(p, off) }
func (f *osFile) WriteAt(p []byte, off int64) (int, error) { return f.f.WriteAt(p, off) }
func (f *osFile) Close() error                             { return f.f.Close() }
func (f *osFile) Sync() error                              { return f.f.Sync() }
func (f *osFile) Truncate(size int64) error                { return f.f.Truncate(size) }
func (f *osFile) Name() string                             { return f.name }

func (f *osFile) Size() (int64, error) {
	fi, err := f.f.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}
