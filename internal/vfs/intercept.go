package vfs

import (
	"io/fs"
	"os"
)

// Observer receives the file-system events Ginja needs (paper Table 1 is
// computed from exactly these). Every method is invoked synchronously on
// the path of the calling database thread: if OnWrite blocks, the database
// write blocks — this is how the Safety parameter throttles the DBMS.
type Observer interface {
	// OnBeforeWrite is called before data is handed to the local file. It
	// may block — this is how Ginja freezes database-file writes while a
	// streaming dump is reading the files (§5.3: local DB writes stop
	// during dump creation). The write has NOT happened yet when this
	// runs, so implementations must not assume the data is on disk.
	OnBeforeWrite(path string, off int64, data []byte)
	// OnWrite is called after data has been durably handed to the local
	// file but before the write returns to the database.
	OnWrite(path string, off int64, data []byte)
	// OnSync is called when the database fsyncs a file.
	OnSync(path string)
	// OnTruncate is called when a file is truncated to size.
	OnTruncate(path string, size int64)
	// OnRemove is called when a file is deleted.
	OnRemove(path string)
}

// NopObserver is an Observer that ignores every event. Embed it to
// implement only the callbacks a component cares about.
type NopObserver struct{}

var _ Observer = NopObserver{}

// OnBeforeWrite implements Observer.
func (NopObserver) OnBeforeWrite(string, int64, []byte) {}

// OnWrite implements Observer.
func (NopObserver) OnWrite(string, int64, []byte) {}

// OnSync implements Observer.
func (NopObserver) OnSync(string) {}

// OnTruncate implements Observer.
func (NopObserver) OnTruncate(string, int64) {}

// OnRemove implements Observer.
func (NopObserver) OnRemove(string) {}

// InterceptFS wraps an FS, reporting mutating operations to an Observer.
// It is the in-process analogue of the paper's FUSE FS Interpreter.
type InterceptFS struct {
	inner FS
	obs   Observer
}

var _ FS = (*InterceptFS)(nil)

// NewInterceptFS wraps inner so every mutation is reported to obs.
func NewInterceptFS(inner FS, obs Observer) *InterceptFS {
	if obs == nil {
		obs = NopObserver{}
	}
	return &InterceptFS{inner: inner, obs: obs}
}

// Inner returns the wrapped FS, bypassing interception. Ginja's own local
// writes (during recovery) use it to avoid re-observing themselves.
func (i *InterceptFS) Inner() FS { return i.inner }

// OpenFile implements FS.
func (i *InterceptFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := i.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &interceptFile{inner: f, obs: i.obs, path: normalize(name)}, nil
}

// Remove implements FS.
func (i *InterceptFS) Remove(name string) error {
	if err := i.inner.Remove(name); err != nil {
		return err
	}
	i.obs.OnRemove(normalize(name))
	return nil
}

// Rename implements FS.
func (i *InterceptFS) Rename(oldName, newName string) error {
	return i.inner.Rename(oldName, newName)
}

// Stat implements FS.
func (i *InterceptFS) Stat(name string) (fs.FileInfo, error) { return i.inner.Stat(name) }

// ReadDir implements FS.
func (i *InterceptFS) ReadDir(name string) ([]fs.DirEntry, error) { return i.inner.ReadDir(name) }

// MkdirAll implements FS.
func (i *InterceptFS) MkdirAll(name string, perm os.FileMode) error {
	return i.inner.MkdirAll(name, perm)
}

type interceptFile struct {
	inner File
	obs   Observer
	path  string
}

var _ File = (*interceptFile)(nil)

func (f *interceptFile) ReadAt(p []byte, off int64) (int, error) { return f.inner.ReadAt(p, off) }

func (f *interceptFile) WriteAt(p []byte, off int64) (int, error) {
	// The observer may hold the write back before it lands (dump
	// streaming freezes database files), then local-first, then observe
	// (paper Alg. 2 lines 5-7): the data is already on local disk when
	// Ginja enqueues it for the cloud, and the observer may block us here
	// to enforce Safety.
	f.obs.OnBeforeWrite(f.path, off, p)
	n, err := f.inner.WriteAt(p, off)
	if err != nil {
		return n, err
	}
	f.obs.OnWrite(f.path, off, p[:n])
	return n, nil
}

func (f *interceptFile) Close() error { return f.inner.Close() }

func (f *interceptFile) Sync() error {
	if err := f.inner.Sync(); err != nil {
		return err
	}
	f.obs.OnSync(f.path)
	return nil
}

func (f *interceptFile) Truncate(size int64) error {
	if err := f.inner.Truncate(size); err != nil {
		return err
	}
	f.obs.OnTruncate(f.path, size)
	return nil
}

func (f *interceptFile) Size() (int64, error) { return f.inner.Size() }
func (f *interceptFile) Name() string         { return f.inner.Name() }
