package core

import (
	"context"
	"testing"
	"time"

	"github.com/ginja-dr/ginja/internal/simclock"
)

func newTestSched(uploadSlots, fetchSlots, tenantCap int, aging time.Duration) *fleetScheduler {
	return newFleetScheduler(simclock.Real(), uploadSlots, fetchSlots, tenantCap, aging, nil)
}

// mustAcquire acquires with a generous timeout and fails the test on error.
func mustAcquire(t *testing.T, s *fleetScheduler, tenant string, class opClass, deadline time.Time) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.acquire(ctx, tenant, class, deadline); err != nil {
		t.Fatalf("acquire(%s, %v): %v", tenant, class, err)
	}
}

// tryAcquire runs acquire in a goroutine and returns a channel that
// yields its error (nil on grant).
func tryAcquire(s *fleetScheduler, ctx context.Context, tenant string, class opClass, deadline time.Time) <-chan error {
	ch := make(chan error, 1)
	go func() { ch <- s.acquire(ctx, tenant, class, deadline) }()
	return ch
}

func TestFleetSchedulerTenantCapBoundsBulk(t *testing.T) {
	s := newTestSched(8, 8, 2, -1)
	// Antagonist takes its cap of bulk slots.
	mustAcquire(t, s, "evil", classBulk, time.Time{})
	mustAcquire(t, s, "evil", classBulk, time.Time{})

	// Third bulk op from the same tenant must queue even though the
	// pool has 6 free slots.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	blocked := tryAcquire(s, ctx, "evil", classBulk, time.Time{})
	select {
	case err := <-blocked:
		t.Fatalf("over-cap bulk acquire should have blocked, got %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	// A different tenant sails through.
	mustAcquire(t, s, "good", classBulk, time.Time{})
	// Safety from the capped tenant is exempt from the cap.
	mustAcquire(t, s, "evil", classSafety, time.Now().Add(time.Minute))

	// Releasing one of the antagonist's slots admits its queued op.
	s.release("evil", classBulk)
	select {
	case err := <-blocked:
		if err != nil {
			t.Fatalf("queued bulk acquire: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued bulk acquire never granted after release")
	}
}

func TestFleetSchedulerSafetyBeatsQueuedBulk(t *testing.T) {
	s := newTestSched(1, 1, 4, -1)
	mustAcquire(t, s, "evil", classBulk, time.Time{}) // pool full

	ctx := context.Background()
	bulk := tryAcquire(s, ctx, "evil", classBulk, time.Time{})
	time.Sleep(20 * time.Millisecond) // bulk is queued first
	safety := tryAcquire(s, ctx, "good", classSafety, time.Now().Add(time.Minute))
	time.Sleep(20 * time.Millisecond)

	s.release("evil", classBulk)
	select {
	case err := <-safety:
		if err != nil {
			t.Fatalf("safety acquire: %v", err)
		}
	case <-bulk:
		t.Fatal("bulk dispatched ahead of queued safety")
	case <-time.After(2 * time.Second):
		t.Fatal("no grant after release")
	}
	s.release("good", classSafety)
	if err := <-bulk; err != nil {
		t.Fatalf("bulk acquire: %v", err)
	}
}

func TestFleetSchedulerSafetyEDF(t *testing.T) {
	s := newTestSched(1, 1, 4, -1)
	mustAcquire(t, s, "t0", classSafety, time.Now().Add(time.Minute)) // pool full

	ctx := context.Background()
	late := tryAcquire(s, ctx, "t1", classSafety, time.Now().Add(time.Hour))
	time.Sleep(20 * time.Millisecond)
	soon := tryAcquire(s, ctx, "t2", classSafety, time.Now().Add(time.Second))
	time.Sleep(20 * time.Millisecond)

	s.release("t0", classSafety)
	select {
	case err := <-soon:
		if err != nil {
			t.Fatalf("EDF acquire: %v", err)
		}
	case <-late:
		t.Fatal("later-deadline safety dispatched before earlier-deadline one")
	case <-time.After(2 * time.Second):
		t.Fatal("no grant after release")
	}
	s.release("t2", classSafety)
	<-late
}

func TestFleetSchedulerBulkAgingBreaksThrough(t *testing.T) {
	s := newTestSched(1, 1, 4, 30*time.Millisecond)
	mustAcquire(t, s, "t0", classBulk, time.Time{}) // pool full

	ctx := context.Background()
	bulk := tryAcquire(s, ctx, "ckpt", classBulk, time.Time{})
	time.Sleep(60 * time.Millisecond) // let the bulk waiter age past the threshold
	safety := tryAcquire(s, ctx, "hot", classSafety, time.Now().Add(time.Minute))
	time.Sleep(20 * time.Millisecond)

	s.release("t0", classBulk)
	select {
	case err := <-bulk:
		if err != nil {
			t.Fatalf("aged bulk acquire: %v", err)
		}
	case <-safety:
		t.Fatal("safety dispatched ahead of an aged bulk waiter")
	case <-time.After(2 * time.Second):
		t.Fatal("no grant after release")
	}
	s.release("ckpt", classBulk)
	<-safety
}

func TestFleetSchedulerCancelReleasesWaiter(t *testing.T) {
	s := newTestSched(1, 1, 4, -1)
	mustAcquire(t, s, "t0", classBulk, time.Time{})

	ctx, cancel := context.WithCancel(context.Background())
	blocked := tryAcquire(s, ctx, "t1", classBulk, time.Time{})
	time.Sleep(20 * time.Millisecond)
	cancel()
	if err := <-blocked; err == nil {
		t.Fatal("cancelled acquire returned nil")
	}

	// The cancelled waiter must not absorb the next grant.
	s.release("t0", classBulk)
	mustAcquire(t, s, "t2", classBulk, time.Time{})
}

func TestFleetSchedulerStarvationCounter(t *testing.T) {
	s := newTestSched(1, 1, 4, -1)
	mustAcquire(t, s, "t0", classBulk, time.Time{})

	// Safety op whose deadline has already passed when it finally runs.
	ctx := context.Background()
	starved := tryAcquire(s, ctx, "t1", classSafety, time.Now().Add(10*time.Millisecond))
	time.Sleep(50 * time.Millisecond)
	s.release("t0", classBulk)
	if err := <-starved; err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if got := s.starvationCount(); got != 1 {
		t.Fatalf("starvationCount = %d, want 1", got)
	}

	// An on-time safety op does not count.
	s.release("t1", classSafety)
	mustAcquire(t, s, "t2", classSafety, time.Now().Add(time.Minute))
	if got := s.starvationCount(); got != 1 {
		t.Fatalf("starvationCount after on-time op = %d, want 1", got)
	}
}

func TestFleetSchedulerFetchPoolIndependent(t *testing.T) {
	s := newTestSched(1, 2, 4, -1)
	mustAcquire(t, s, "t0", classBulk, time.Time{}) // upload pool full
	// Fetches still flow: separate pool.
	mustAcquire(t, s, "t1", classFetch, time.Time{})
	mustAcquire(t, s, "t2", classFetch, time.Time{})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	blocked := tryAcquire(s, ctx, "t3", classFetch, time.Time{})
	select {
	case err := <-blocked:
		t.Fatalf("fetch beyond pool size should block, got %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	s.release("t1", classFetch)
	if err := <-blocked; err != nil {
		t.Fatalf("queued fetch: %v", err)
	}
}

func TestSchedStoreClassification(t *testing.T) {
	s := &schedStore{
		prefix:        "tenants/a/",
		safetyTimeout: time.Minute,
		clk:           simclock.Real(),
	}
	class, deadline := s.putClass("tenants/a/WAL/12_wal_0")
	if class != classSafety || deadline.IsZero() {
		t.Fatalf("WAL put classified as %v (deadline zero=%v), want safety with deadline", class, deadline.IsZero())
	}
	class, deadline = s.putClass("tenants/a/DB/12_d_4096")
	if class != classBulk || !deadline.IsZero() {
		t.Fatalf("DB put classified as %v, want bulk with zero deadline", class)
	}
}
