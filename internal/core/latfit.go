package core

// latFit is a streaming least-squares fit of cloud PUT latency against
// sealed object size: latency ≈ base + perByte·size. The cloud's latency
// curve has exactly this shape (a fixed per-request round trip plus a
// bandwidth term, see cloudsim.Profile), so two coefficients capture it.
//
// Every accumulated sum decays by a constant factor per sample, giving an
// exponentially-weighted window of roughly 1/(1−decay) observations: when
// the provider's RTT shifts (route change, regional failover), the fit
// tracks the new regime after a few dozen PUTs instead of averaging the
// old world in forever. The fit is plain float state — the owning tuner
// serializes access.
type latFit struct {
	decay float64 // per-sample weight applied to history (0 < decay < 1)

	n   float64 // decayed sample count
	sx  float64 // Σ size
	sy  float64 // Σ latency
	sxx float64 // Σ size²
	sxy float64 // Σ size·latency
}

// latFitMinSamples is the decayed mass required before fit reports ok:
// below it a single outlier would steer the solver.
const latFitMinSamples = 4.0

func newLatFit(decay float64) latFit { return latFit{decay: decay} }

// add records one (sealed size in bytes, latency in seconds) observation.
func (f *latFit) add(size, latency float64) {
	d := f.decay
	f.n = f.n*d + 1
	f.sx = f.sx*d + size
	f.sy = f.sy*d + latency
	f.sxx = f.sxx*d + size*size
	f.sxy = f.sxy*d + size*latency
}

// fit solves the decayed normal equations for (base, perByte). Both
// coefficients are clamped non-negative: a transient negative slope (all
// samples near one size, noise dominating) would otherwise tell the
// solver that bigger uploads are free. When the observed sizes are too
// close together to resolve a slope, the fit degrades to a pure
// fixed-latency model (perByte = 0, base = mean latency) — exactly the
// information the samples carry.
func (f *latFit) fit() (base, perByte float64, ok bool) {
	if f.n < latFitMinSamples {
		return 0, 0, false
	}
	det := f.n*f.sxx - f.sx*f.sx
	if det > f.n*f.sxx*1e-9 && det > 0 {
		perByte = (f.n*f.sxy - f.sx*f.sy) / det
		base = (f.sy - perByte*f.sx) / f.n
	}
	if perByte < 0 {
		perByte = 0
	}
	if perByte == 0 || base < 0 {
		base = f.sy / f.n
		if base < 0 {
			base = 0
		}
	}
	return base, perByte, true
}
