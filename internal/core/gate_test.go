package core

import (
	"context"
	"testing"
	"time"

	"github.com/ginja-dr/ginja/internal/simclock"
)

// gateRig builds the minimal checkpointer the gate primitives need: the
// gate fields themselves plus the lifecycle context waitGate selects on.
func gateRig() *checkpointer {
	ctx, cancel := context.WithCancel(context.Background())
	return &checkpointer{
		ctx:       ctx,
		cancel:    cancel,
		clk:       simclock.Real(),
		gateHolds: make(map[*gateHold]struct{}),
	}
}

// pathSet builds the lazy-path set a plan would hand to acquireGate.
func pathSet(paths ...string) map[string]struct{} {
	s := make(map[string]struct{}, len(paths))
	for _, p := range paths {
		s[p] = struct{}{}
	}
	return s
}

// TestDumpGateOpenByDefault: with no streaming dump planned, OnBeforeWrite
// must cost writers nothing.
func TestDumpGateOpenByDefault(t *testing.T) {
	c := gateRig()
	defer c.cancel()
	done := make(chan struct{})
	go func() {
		c.waitGate("base/table")
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("waitGate blocked with the gate open")
	}
}

// TestDumpGateBlocksWritersUntilReadsDone: while a dump plan's local reads
// are in flight a writer to a planned file must block, and the uploader's
// release must let it through. A nil path set is the conservative
// freeze-everything hold.
func TestDumpGateBlocksWritersUntilReadsDone(t *testing.T) {
	c := gateRig()
	defer c.cancel()
	h := c.acquireGate(nil)

	passed := make(chan struct{})
	go func() {
		c.waitGate("base/table") // the DBMS thread, about to overwrite a data page
		close(passed)
	}()
	select {
	case <-passed:
		t.Fatal("data write passed the gate while the dump was reading")
	case <-time.After(50 * time.Millisecond):
	}

	c.releaseGate(h)
	select {
	case <-passed:
	case <-time.After(2 * time.Second):
		t.Fatal("writer still blocked after the dump's reads completed")
	}
}

// TestDumpGatePathPrecision: a hold covering only its plan's lazily-read
// files must not block writes to other files — and must block writes to
// covered ones until released.
func TestDumpGatePathPrecision(t *testing.T) {
	c := gateRig()
	defer c.cancel()
	h := c.acquireGate(pathSet("base/hot"))

	// A write to a file outside the plan sails through immediately.
	free := make(chan struct{})
	go func() {
		c.waitGate("base/cold")
		close(free)
	}()
	select {
	case <-free:
	case <-time.After(2 * time.Second):
		t.Fatal("write to an unplanned file blocked on the dump gate")
	}

	// A write to the planned file blocks until release.
	covered := make(chan struct{})
	go func() {
		c.waitGate("base/hot")
		close(covered)
	}()
	select {
	case <-covered:
		t.Fatal("write to a planned file passed a held gate")
	case <-time.After(50 * time.Millisecond):
	}

	c.releaseGate(h)
	select {
	case <-covered:
	case <-time.After(2 * time.Second):
		t.Fatal("writer still blocked after release")
	}
}

// TestDumpGateNestedHolds: a second dump planned before the first one's
// reads finish stacks a second hold; a writer covered by both passes only
// after the last covering hold is released.
func TestDumpGateNestedHolds(t *testing.T) {
	c := gateRig()
	defer c.cancel()
	h1 := c.acquireGate(pathSet("base/table"))
	h2 := c.acquireGate(nil)
	c.releaseGate(h1)

	passed := make(chan struct{})
	go func() {
		c.waitGate("base/table")
		close(passed)
	}()
	select {
	case <-passed:
		t.Fatal("gate opened with one covering hold still outstanding")
	case <-time.After(50 * time.Millisecond):
	}

	c.releaseGate(h2)
	select {
	case <-passed:
	case <-time.After(2 * time.Second):
		t.Fatal("writer still blocked after the last release")
	}
}

// TestDumpGateShutdownNeverStrandsWriters: a cancelled checkpointer
// (shutdown or fatal replication error) must release blocked writers even
// if the gate is never formally released — the database keeps running
// locally when replication is gone.
func TestDumpGateShutdownNeverStrandsWriters(t *testing.T) {
	c := gateRig()
	c.acquireGate(nil) // never released: the uploader died with the gate held

	passed := make(chan struct{})
	go func() {
		c.waitGate("base/table")
		close(passed)
	}()
	select {
	case <-passed:
		t.Fatal("data write passed a held gate before shutdown")
	case <-time.After(50 * time.Millisecond):
	}

	c.cancel()
	select {
	case <-passed:
	case <-time.After(2 * time.Second):
		t.Fatal("shutdown left the writer blocked on the dump gate")
	}
}
