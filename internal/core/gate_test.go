package core

import (
	"context"
	"testing"
	"time"
)

// gateRig builds the minimal checkpointer the gate primitives need: the
// gate fields themselves plus the lifecycle context waitGate selects on.
func gateRig() *checkpointer {
	ctx, cancel := context.WithCancel(context.Background())
	return &checkpointer{ctx: ctx, cancel: cancel}
}

// TestDumpGateOpenByDefault: with no streaming dump planned, OnBeforeWrite
// must cost writers nothing.
func TestDumpGateOpenByDefault(t *testing.T) {
	c := gateRig()
	defer c.cancel()
	done := make(chan struct{})
	go func() {
		c.waitGate()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("waitGate blocked with the gate open")
	}
}

// TestDumpGateBlocksWritersUntilReadsDone: while a dump plan's local reads
// are in flight the writer must block, and the uploader's release must let
// it through.
func TestDumpGateBlocksWritersUntilReadsDone(t *testing.T) {
	c := gateRig()
	defer c.cancel()
	c.acquireGate()

	passed := make(chan struct{})
	go func() {
		c.waitGate() // the DBMS thread, about to overwrite a data page
		close(passed)
	}()
	select {
	case <-passed:
		t.Fatal("data write passed the gate while the dump was reading")
	case <-time.After(50 * time.Millisecond):
	}

	c.releaseGate()
	select {
	case <-passed:
	case <-time.After(2 * time.Second):
		t.Fatal("writer still blocked after the dump's reads completed")
	}
}

// TestDumpGateNestedHolds: a second dump planned before the first one's
// reads finish stacks a second hold; only the last release reopens the
// gate.
func TestDumpGateNestedHolds(t *testing.T) {
	c := gateRig()
	defer c.cancel()
	c.acquireGate()
	c.acquireGate()
	c.releaseGate()

	passed := make(chan struct{})
	go func() {
		c.waitGate()
		close(passed)
	}()
	select {
	case <-passed:
		t.Fatal("gate opened with one hold still outstanding")
	case <-time.After(50 * time.Millisecond):
	}

	c.releaseGate()
	select {
	case <-passed:
	case <-time.After(2 * time.Second):
		t.Fatal("writer still blocked after the last release")
	}
}

// TestDumpGateShutdownNeverStrandsWriters: a cancelled checkpointer
// (shutdown or fatal replication error) must release blocked writers even
// if the gate is never formally released — the database keeps running
// locally when replication is gone.
func TestDumpGateShutdownNeverStrandsWriters(t *testing.T) {
	c := gateRig()
	c.acquireGate() // never released: the uploader died with the gate held

	passed := make(chan struct{})
	go func() {
		c.waitGate()
		close(passed)
	}()
	select {
	case <-passed:
		t.Fatal("data write passed a held gate before shutdown")
	case <-time.After(50 * time.Millisecond):
	}

	c.cancel()
	select {
	case <-passed:
	case <-time.After(2 * time.Second):
		t.Fatal("shutdown left the writer blocked on the dump gate")
	}
}
