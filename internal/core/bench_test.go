package core

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/obs"
	"github.com/ginja-dr/ginja/internal/sealer"
)

func BenchmarkMergeWritesSamePage(b *testing.B) {
	// 100 rewrites of one 8 KiB page — the hot aggregation case.
	writes := make([]FileWrite, 100)
	for i := range writes {
		writes[i] = FileWrite{Path: "seg", Offset: 0, Data: bytes.Repeat([]byte{byte(i)}, 8192)}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := MergeWrites(writes); len(got) != 1 {
			b.Fatalf("merged into %d", len(got))
		}
	}
}

func BenchmarkMergeWritesSequentialPages(b *testing.B) {
	writes := make([]FileWrite, 100)
	for i := range writes {
		writes[i] = FileWrite{Path: "seg", Offset: int64(i) * 8192, Data: make([]byte, 8192)}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := MergeWrites(writes); len(got) != 1 {
			b.Fatalf("merged into %d", len(got))
		}
	}
}

func BenchmarkEncodeDecodeWrites(b *testing.B) {
	writes := []FileWrite{{Path: "pg_xlog/000000010000000000000001", Offset: 16384, Data: make([]byte, 8192)}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		encoded := EncodeWrites(writes)
		if _, err := DecodeWrites(encoded); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineThroughput measures sustained commit-path submissions
// through the full pipeline (aggregation + sealing + upload to a memory
// store). The "instrumented" variants run with a live metrics registry;
// compare against the plain runs to measure observability overhead (the
// disabled path must stay within 5%).
func BenchmarkPipelineThroughput(b *testing.B) {
	for _, bc := range []struct {
		name    string
		metrics bool
	}{
		{"plain", false},
		{"instrumented", true},
	} {
		for _, batch := range []int{10, 100, 1000} {
			b.Run(fmt.Sprintf("%s/B=%d", bc.name, batch), func(b *testing.B) {
				p := DefaultParams()
				p.Batch = batch
				p.Safety = batch * 10
				p.BatchTimeout = 5 * time.Millisecond
				if bc.metrics {
					p.Metrics = obs.NewRegistry()
				}
				params, err := p.Validate()
				if err != nil {
					b.Fatal(err)
				}
				pipe := newPipeline(NewCloudView(), cloud.NewMemStore(), sealer.NewPlain(), params)
				pipe.start(0)
				defer pipe.drainAndStop(10 * time.Second)
				page := make([]byte, 8192)
				b.SetBytes(8192)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := pipe.submit("pg_xlog/0001", int64(i%2048)*8192, page); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				if !pipe.q.drain(30 * time.Second) {
					b.Fatal("drain")
				}
			})
		}
	}
}

// BenchmarkCommitPath measures the steady-state submit→upload hot path
// with small scattered commits — the workload the zero-allocation work
// targets. allocs/op is the acceptance number: the packed path must stay
// ≤ 2 allocs per commit (pooled submit copies, reused batch/plan scratch,
// pooled per-object write lists; what remains is the amortized per-object
// seal + store cost). The unpacked variant is the ablation baseline.
func BenchmarkCommitPath(b *testing.B) {
	for _, bc := range []struct {
		name           string
		disablePacking bool
		adaptive       bool
	}{
		{"packed", false, false},
		{"unpacked", true, false},
		// The adaptive controller must not cost the hot path anything:
		// observePut runs off the submit path and knob publication is one
		// amortized pointer store per tick.
		{"packed-adaptive", false, true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			p := DefaultParams()
			p.Batch = 50
			p.Safety = 1000
			p.BatchTimeout = 5 * time.Millisecond
			p.DisablePacking = bc.disablePacking
			p.AdaptiveBatching = bc.adaptive
			params, err := p.Validate()
			if err != nil {
				b.Fatal(err)
			}
			pipe := newPipeline(NewCloudView(), cloud.NewMemStore(), sealer.NewPlain(), params)
			pipe.start(0)
			defer pipe.drainAndStop(10 * time.Second)
			payload := make([]byte, 256)
			submit := func(i int) {
				if _, err := pipe.submit("pg_xlog/0001", int64(i%4096)*8192, payload); err != nil {
					b.Fatal(err)
				}
			}
			// Warm the pools and grow the reusable scratch to steady state
			// before measuring.
			for i := 0; i < 500; i++ {
				submit(i)
			}
			if !pipe.q.drain(10 * time.Second) {
				b.Fatal("warm-up drain")
			}
			b.SetBytes(int64(len(payload)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				submit(i)
			}
			b.StopTimer()
			if !pipe.q.drain(30 * time.Second) {
				b.Fatal("drain")
			}
		})
	}
}

func BenchmarkCloudViewNextTs(b *testing.B) {
	v := NewCloudView()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			v.NextWALTs()
		}
	})
}
