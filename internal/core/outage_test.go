package core_test

import (
	"fmt"
	"testing"
	"time"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/cloud/cloudsim"
	"github.com/ginja-dr/ginja/internal/dbevent"
	"github.com/ginja-dr/ginja/internal/minidb"
	"github.com/ginja-dr/ginja/internal/minidb/pgengine"
)

// TestCloudOutageBlocksThenResumes: during a provider outage, commits
// proceed until S pending updates accumulate, then block; when the
// provider returns, everything drains and the database continues — no
// manual intervention, no data loss.
func TestCloudOutageBlocksThenResumes(t *testing.T) {
	sim := cloudsim.New(cloud.NewMemStore(), cloudsim.Options{TimeScale: -1})
	params := fastParams()
	params.Batch = 2
	params.Safety = 8
	params.SafetyTimeout = 30 * time.Second
	params.UploadRetries = 0 // retry through the outage
	params.RetryBaseDelay = time.Millisecond

	r := newRig(t, sim, params,
		func() minidb.Engine { return pgengine.NewWithSizes(1024, 16*1024, 1024) },
		func() dbevent.Processor { return dbevent.NewPGProcessor() })
	if err := r.db.CreateTable("kv", 0); err != nil {
		t.Fatal(err)
	}
	r.put(t, "kv", "pre-outage", "v")
	if !r.g.Flush(5 * time.Second) {
		t.Fatal("flush")
	}

	sim.StartOutage()
	// Fill the Safety budget: these commit locally without blocking.
	for i := 0; i < params.Safety; i++ {
		done := make(chan struct{})
		go func(i int) {
			defer close(done)
			r.put(t, "kv", fmt.Sprintf("during-%02d", i), "v")
		}(i)
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Fatalf("commit %d blocked below S during outage", i)
		}
	}
	// The next commit must block.
	blocked := make(chan struct{})
	go func() {
		defer close(blocked)
		r.put(t, "kv", "blocked-commit", "v")
	}()
	select {
	case <-blocked:
		t.Fatal("commit beyond S returned during the outage")
	case <-time.After(150 * time.Millisecond):
	}

	sim.EndOutage()
	select {
	case <-blocked:
	case <-time.After(10 * time.Second):
		t.Fatal("commit did not unblock after the outage ended")
	}
	if !r.g.Flush(10 * time.Second) {
		t.Fatal("queue did not drain after the outage")
	}
	if err := r.g.Err(); err != nil {
		t.Fatalf("pipeline error after outage: %v", err)
	}

	// Everything committed (including writes made during the outage) is
	// recoverable.
	db2 := r.disasterRecover(t)
	for i := 0; i < params.Safety; i++ {
		if _, err := db2.Get("kv", []byte(fmt.Sprintf("during-%02d", i))); err != nil {
			t.Fatalf("during-%02d lost: %v", i, err)
		}
	}
	if _, err := db2.Get("kv", []byte("blocked-commit")); err != nil {
		t.Fatalf("blocked-commit lost: %v", err)
	}
}
