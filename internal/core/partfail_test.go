package core_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/core"
	"github.com/ginja-dr/ginja/internal/dbevent"
	"github.com/ginja-dr/ginja/internal/minidb"
	"github.com/ginja-dr/ginja/internal/minidb/pgengine"
	"github.com/ginja-dr/ginja/internal/vfs"
)

// partOutageStore lets a test cut the provider off mid multi-part DB
// upload: once armed, it allows a fixed number of DB part PUTs through
// and fails every one after that, so some parts of one object land and
// the rest never do.
type partOutageStore struct {
	cloud.ObjectStore
	armed   atomic.Bool
	allowed atomic.Int64 // remaining DB part PUTs to let through once armed
	landed  atomic.Int64 // DB part PUTs that succeeded while armed
}

var errPartOutage = errors.New("test: provider outage mid part upload")

func (s *partOutageStore) Put(ctx context.Context, name string, data []byte) error {
	if s.armed.Load() && strings.HasPrefix(name, "DB/") &&
		(strings.Contains(name, ".p") || strings.Contains(name, ".s")) {
		if s.allowed.Add(-1) < 0 {
			return errPartOutage
		}
		if err := s.ObjectStore.Put(ctx, name, data); err != nil {
			return err
		}
		s.landed.Add(1)
		return nil
	}
	return s.ObjectStore.Put(ctx, name, data)
}

// TestConcurrentPartUploadOutageMidDump drives an outage into the middle
// of a parallel multi-part dump upload: some parts land, some never do.
// The primary's view must not contain the half-uploaded object (AddDB
// only happens after every part is durable), and a fresh machine must
// still recover everything the last Flush guaranteed — the orphan parts
// in the bucket are pruned from the recovery listing, not trusted.
func TestConcurrentPartUploadOutageMidDump(t *testing.T) {
	store := &partOutageStore{ObjectStore: cloud.NewMemStore()}
	params := fastParams()
	params.MaxObjectSize = 2048 // dumps split into several parts
	params.DumpThreshold = 1.0  // first checkpoint becomes a dump
	params.CheckpointUploaders = 4
	params.UploadRetries = 2 // the outage must be fatal, not ridden out

	r := newRig(t, store, params,
		func() minidb.Engine { return pgengine.NewWithSizes(1024, 16*1024, 1024) },
		func() dbevent.Processor { return dbevent.NewPGProcessor() })

	if err := r.db.CreateTable("accounts", 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		r.put(t, "accounts", fmt.Sprintf("acct-%03d", i), fmt.Sprintf("balance-%d", i*100))
	}
	if !r.g.Flush(5 * time.Second) {
		t.Fatal("flush timed out")
	}

	// Outage strikes: exactly one DB part PUT will succeed, the rest fail.
	store.allowed.Store(1)
	store.armed.Store(true)
	if err := r.db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for r.g.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("checkpointer never reported the failed part upload")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if store.landed.Load() == 0 {
		t.Fatal("no part landed before the outage; test exercised nothing")
	}

	// The view must not know the half-uploaded object: every DB object it
	// reports must predate the outage (the boot dump at ts 0).
	for _, d := range r.g.View().DBObjects() {
		if d.Ts != 0 {
			t.Fatalf("view contains DB object %+v uploaded during the outage", d)
		}
	}
	// ... but its orphan parts are really in the bucket.
	infos, err := store.List(context.Background(), "DB/")
	if err != nil {
		t.Fatal(err)
	}
	orphans := 0
	for _, info := range infos {
		n, err := core.ParseDBObjectName(info.Name)
		if err != nil {
			t.Fatal(err)
		}
		if n.Ts != 0 && n.Part >= 0 {
			orphans++
		}
	}
	if int64(orphans) != store.landed.Load() {
		t.Fatalf("bucket holds %d orphan parts, %d landed", orphans, store.landed.Load())
	}

	// Disaster recovery on a fresh machine: the orphan parts must be
	// ignored and every flushed row restored.
	store.armed.Store(false)
	db2 := r.disasterRecover(t)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("acct-%03d", i)
		v, err := db2.Get("accounts", []byte(key))
		if err != nil {
			t.Fatalf("recovered Get(%s): %v", key, err)
		}
		if want := fmt.Sprintf("balance-%d", i*100); string(v) != want {
			t.Fatalf("recovered %s = %q, want %q", key, v, want)
		}
	}
}

// TestOrphanPartsSweptByNextDumpGC takes the aftermath of an outage mid
// part upload — orphan parts stranded in the bucket — through disaster
// recovery and verifies the next dump's garbage collection deletes them:
// LoadFromList records the orphans (without surfacing them to recovery)
// and collectOldDBObjects sweeps them, so crash-window garbage does not
// leak forever and the orphaned (ts, gen) slot is never handed out again
// while its parts are still in the bucket.
func TestOrphanPartsSweptByNextDumpGC(t *testing.T) {
	store := &partOutageStore{ObjectStore: cloud.NewMemStore()}
	params := fastParams()
	params.MaxObjectSize = 2048
	params.DumpThreshold = 1.0 // every checkpoint becomes a dump
	params.CheckpointUploaders = 4
	params.UploadRetries = 2

	r := newRig(t, store, params,
		func() minidb.Engine { return pgengine.NewWithSizes(1024, 16*1024, 1024) },
		func() dbevent.Processor { return dbevent.NewPGProcessor() })
	if err := r.db.CreateTable("accounts", 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		r.put(t, "accounts", fmt.Sprintf("acct-%03d", i), fmt.Sprintf("balance-%d", i*100))
	}
	if !r.g.Flush(5 * time.Second) {
		t.Fatal("flush timed out")
	}
	store.allowed.Store(1)
	store.armed.Store(true)
	if err := r.db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for r.g.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("checkpointer never reported the failed part upload")
		}
		time.Sleep(5 * time.Millisecond)
	}
	store.armed.Store(false)

	// Recover on a fresh machine, keeping the Ginja handle: its view must
	// have recorded the stranded parts as orphans.
	freshFS := vfs.NewMemFS()
	g2, err := core.New(freshFS, store, dbevent.NewPGProcessor(), params)
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.Recover(context.Background()); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	t.Cleanup(func() { g2.Close() })
	orphans := g2.View().OrphanParts()
	if len(orphans) == 0 {
		t.Fatal("recovery recorded no orphans; test exercised nothing")
	}
	db2, err := minidb.Open(g2.FS(), pgengine.NewWithSizes(1024, 16*1024, 1024), minidb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Drive checkpoints until the accumulated cloud DB size crosses the
	// dump threshold: that dump's GC must sweep the recorded orphans.
	// Each round dirties every row so the incremental checkpoints carry
	// real volume.
	deadline = time.Now().Add(10 * time.Second)
	for round := 0; ; round++ {
		for i := 0; i < 50; i++ {
			if err := db2.Update(func(tx *minidb.Txn) error {
				return tx.Put("accounts", []byte(fmt.Sprintf("acct-%03d", i)),
					[]byte(fmt.Sprintf("balance-%d-%d", i*100, round)))
			}); err != nil {
				t.Fatal(err)
			}
		}
		if err := db2.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		swept := false
		for !swept && !time.Now().After(deadline) {
			if err := g2.Err(); err != nil {
				t.Fatalf("replication failed after recovery: %v", err)
			}
			if g2.Stats().Dumps == 0 {
				break // no dump yet: grow the cloud DB size another round
			}
			infos, err := store.List(context.Background(), "DB/")
			if err != nil {
				t.Fatal(err)
			}
			present := make(map[string]bool, len(infos))
			for _, info := range infos {
				present[info.Name] = true
			}
			left := 0
			for _, o := range orphans {
				if present[o.Name] {
					left++
				}
			}
			swept = left == 0 && len(g2.View().OrphanParts()) == 0
			if !swept {
				time.Sleep(5 * time.Millisecond)
			}
		}
		if swept {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("orphan parts still in the bucket after %d rounds (dumps=%d, view records %d orphans)",
				round+1, g2.Stats().Dumps, len(g2.View().OrphanParts()))
		}
	}
}
