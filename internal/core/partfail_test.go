package core_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/core"
	"github.com/ginja-dr/ginja/internal/dbevent"
	"github.com/ginja-dr/ginja/internal/minidb"
	"github.com/ginja-dr/ginja/internal/minidb/pgengine"
)

// partOutageStore lets a test cut the provider off mid multi-part DB
// upload: once armed, it allows a fixed number of DB part PUTs through
// and fails every one after that, so some parts of one object land and
// the rest never do.
type partOutageStore struct {
	cloud.ObjectStore
	armed   atomic.Bool
	allowed atomic.Int64 // remaining DB part PUTs to let through once armed
	landed  atomic.Int64 // DB part PUTs that succeeded while armed
}

var errPartOutage = errors.New("test: provider outage mid part upload")

func (s *partOutageStore) Put(ctx context.Context, name string, data []byte) error {
	if s.armed.Load() && strings.HasPrefix(name, "DB/") && strings.Contains(name, ".p") {
		if s.allowed.Add(-1) < 0 {
			return errPartOutage
		}
		if err := s.ObjectStore.Put(ctx, name, data); err != nil {
			return err
		}
		s.landed.Add(1)
		return nil
	}
	return s.ObjectStore.Put(ctx, name, data)
}

// TestConcurrentPartUploadOutageMidDump drives an outage into the middle
// of a parallel multi-part dump upload: some parts land, some never do.
// The primary's view must not contain the half-uploaded object (AddDB
// only happens after every part is durable), and a fresh machine must
// still recover everything the last Flush guaranteed — the orphan parts
// in the bucket are pruned from the recovery listing, not trusted.
func TestConcurrentPartUploadOutageMidDump(t *testing.T) {
	store := &partOutageStore{ObjectStore: cloud.NewMemStore()}
	params := fastParams()
	params.MaxObjectSize = 2048 // dumps split into several parts
	params.DumpThreshold = 1.0  // first checkpoint becomes a dump
	params.CheckpointUploaders = 4
	params.UploadRetries = 2 // the outage must be fatal, not ridden out

	r := newRig(t, store, params,
		func() minidb.Engine { return pgengine.NewWithSizes(1024, 16*1024, 1024) },
		func() dbevent.Processor { return dbevent.NewPGProcessor() })

	if err := r.db.CreateTable("accounts", 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		r.put(t, "accounts", fmt.Sprintf("acct-%03d", i), fmt.Sprintf("balance-%d", i*100))
	}
	if !r.g.Flush(5 * time.Second) {
		t.Fatal("flush timed out")
	}

	// Outage strikes: exactly one DB part PUT will succeed, the rest fail.
	store.allowed.Store(1)
	store.armed.Store(true)
	if err := r.db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for r.g.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("checkpointer never reported the failed part upload")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if store.landed.Load() == 0 {
		t.Fatal("no part landed before the outage; test exercised nothing")
	}

	// The view must not know the half-uploaded object: every DB object it
	// reports must predate the outage (the boot dump at ts 0).
	for _, d := range r.g.View().DBObjects() {
		if d.Ts != 0 {
			t.Fatalf("view contains DB object %+v uploaded during the outage", d)
		}
	}
	// ... but its orphan parts are really in the bucket.
	infos, err := store.List(context.Background(), "DB/")
	if err != nil {
		t.Fatal(err)
	}
	orphans := 0
	for _, info := range infos {
		ts, _, _, _, part, err := core.ParseDBObjectName(info.Name)
		if err != nil {
			t.Fatal(err)
		}
		if ts != 0 && part >= 0 {
			orphans++
		}
	}
	if int64(orphans) != store.landed.Load() {
		t.Fatalf("bucket holds %d orphan parts, %d landed", orphans, store.landed.Load())
	}

	// Disaster recovery on a fresh machine: the orphan parts must be
	// ignored and every flushed row restored.
	store.armed.Store(false)
	db2 := r.disasterRecover(t)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("acct-%03d", i)
		v, err := db2.Get("accounts", []byte(key))
		if err != nil {
			t.Fatalf("recovered Get(%s): %v", key, err)
		}
		if want := fmt.Sprintf("balance-%d", i*100); string(v) != want {
			t.Fatalf("recovered %s = %q, want %q", key, v, want)
		}
	}
}
