package core

import (
	"context"
	"fmt"
	"time"

	"github.com/ginja-dr/ginja/internal/vfs"
)

// VerifyResult reports the outcome of a backup verification run.
type VerifyResult struct {
	// ObjectsChecked is the number of cloud objects whose MAC verified.
	ObjectsChecked int
	// BytesDownloaded is the total sealed payload examined.
	BytesDownloaded int64
	// RestartOK / ProbeOK report steps 2 and 3 (false when the step was
	// skipped because no callback was given).
	RestartOK bool
	ProbeOK   bool
	// Duration is the wall-clock cost of the whole verification.
	Duration time.Duration
}

// Verify implements the paper's backup-verification procedure (§5.4)
// "without interfering with the production system": it runs against the
// cloud only, restoring into the scratch target file system.
//
//  1. Every object is downloaded and its MAC verified.
//  2. The database files are rebuilt into target and restart is invoked —
//     typically opening the DBMS on target so its own crash recovery
//     validates tables and WAL segments.
//  3. probe runs service-specific queries against the restarted database.
//
// restart and probe may be nil to skip those steps.
func (g *Ginja) Verify(ctx context.Context, target vfs.FS,
	restart func(vfs.FS) error, probe func(vfs.FS) error) (VerifyResult, error) {
	start := time.Now()
	var res VerifyResult

	infos, err := g.store.List(ctx, "")
	if err != nil {
		return res, fmt.Errorf("core: verify list: %w", err)
	}
	if err := g.view.LoadFromList(infos); err != nil {
		return res, err
	}
	// Step 1: integrity of every object.
	for _, info := range infos {
		sealed, err := g.store.Get(ctx, info.Name)
		if err != nil {
			return res, fmt.Errorf("core: verify download %s: %w", info.Name, err)
		}
		res.BytesDownloaded += int64(len(sealed))
		// Legacy whole-sealed split parts only validate as a whole; check
		// them via the full-object path below instead. Part-sealed parts
		// are each a complete envelope and verify right here.
		if n, dbErr := ParseDBObjectName(info.Name); dbErr == nil && n.Part >= 0 && !n.Sealed {
			continue
		}
		if _, err := g.seal.Open(sealed); err != nil {
			return res, fmt.Errorf("core: verify %s: %w", info.Name, err)
		}
		res.ObjectsChecked++
	}
	// Validate legacy split DB objects part-sets as wholes (their MAC
	// covers the reassembled object, so parts can only be checked
	// together). Part-sealed objects were fully verified in step 1.
	scratch := vfs.NewMemFS()
	for _, d := range g.view.DBObjects() {
		if d.Parts == 0 || d.PartSealed() {
			continue
		}
		if err := g.applyDBObject(ctx, scratch, d); err != nil {
			return res, fmt.Errorf("core: verify DB ts=%d: %w", d.Ts, err)
		}
		res.ObjectsChecked += d.Parts
	}

	// Step 2: rebuild into the scratch target and restart the DBMS.
	if err := g.restoreTo(ctx, target, -1, &RecoveryBreakdown{Mode: "verify"}); err != nil {
		return res, err
	}
	if restart != nil {
		if err := restart(target); err != nil {
			return res, fmt.Errorf("core: verify restart: %w", err)
		}
		res.RestartOK = true
	}
	// Step 3: service-specific probe queries.
	if probe != nil {
		if err := probe(target); err != nil {
			return res, fmt.Errorf("core: verify probe: %w", err)
		}
		res.ProbeOK = true
	}
	res.Duration = time.Since(start)
	return res, nil
}
