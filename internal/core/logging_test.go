package core_test

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
	"time"

	"github.com/ginja-dr/ginja/internal/minidb"
	"github.com/ginja-dr/ginja/internal/minidb/pgengine"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/dbevent"
)

func TestStructuredLoggingEmitsEvents(t *testing.T) {
	var buf bytes.Buffer
	params := fastParams()
	params.Logger = slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))

	r := newRig(t, cloud.NewMemStore(), params,
		func() minidb.Engine { return pgengine.NewWithSizes(1024, 16*1024, 1024) },
		func() dbevent.Processor { return dbevent.NewPGProcessor() })
	if err := r.db.CreateTable("kv", 0); err != nil {
		t.Fatal(err)
	}
	r.put(t, "kv", "k", "v")
	if !r.g.Flush(5 * time.Second) {
		t.Fatal("flush")
	}
	if err := r.db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	waitCheckpointUploaded(t, r.g, 1)

	out := buf.String()
	for _, want := range []string{"ginja boot complete", "db object uploaded", "garbage-collected WAL objects"} {
		if !strings.Contains(out, want) {
			t.Errorf("log output missing %q:\n%s", want, out)
		}
	}
}

func TestNilLoggerIsSilentAndSafe(t *testing.T) {
	params := fastParams() // Logger nil
	r := pgRig(t, params)
	if err := r.db.CreateTable("kv", 0); err != nil {
		t.Fatal(err)
	}
	r.put(t, "kv", "k", "v")
	if !r.g.Flush(5 * time.Second) {
		t.Fatal("flush")
	}
}
