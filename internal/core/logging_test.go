package core_test

import (
	"bytes"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/ginja-dr/ginja/internal/minidb"
	"github.com/ginja-dr/ginja/internal/minidb/pgengine"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/dbevent"
)

// syncBuffer is a bytes.Buffer safe to read while Ginja's background
// goroutines are still logging into it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestStructuredLoggingEmitsEvents(t *testing.T) {
	var buf syncBuffer
	params := fastParams()
	params.Logger = slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))

	r := newRig(t, cloud.NewMemStore(), params,
		func() minidb.Engine { return pgengine.NewWithSizes(1024, 16*1024, 1024) },
		func() dbevent.Processor { return dbevent.NewPGProcessor() })
	if err := r.db.CreateTable("kv", 0); err != nil {
		t.Fatal(err)
	}
	r.put(t, "kv", "k", "v")
	if !r.g.Flush(5 * time.Second) {
		t.Fatal("flush")
	}
	if err := r.db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	waitCheckpointUploaded(t, r.g, 1)

	out := buf.String()
	for _, want := range []string{
		"ginja boot complete", "db object uploaded", "garbage-collected WAL objects",
		// per-batch trace spans (Debug level), correlated by batch=N
		"batch aggregated", "wal object uploaded", "batch durable", "batch=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("log output missing %q:\n%s", want, out)
		}
	}
}

func TestNilLoggerIsSilentAndSafe(t *testing.T) {
	params := fastParams() // Logger nil
	r := pgRig(t, params)
	if err := r.db.CreateTable("kv", 0); err != nil {
		t.Fatal(err)
	}
	r.put(t, "kv", "k", "v")
	if !r.g.Flush(5 * time.Second) {
		t.Fatal("flush")
	}
}
