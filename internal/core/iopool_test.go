package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunLimitedRunsEveryTask(t *testing.T) {
	for _, workers := range []int{1, 2, 5, 100} {
		var done [37]atomic.Bool
		err := runLimited(context.Background(), workers, len(done), func(_ context.Context, i int) error {
			if done[i].Swap(true) {
				t.Errorf("workers=%d: task %d ran twice", workers, i)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range done {
			if !done[i].Load() {
				t.Fatalf("workers=%d: task %d never ran", workers, i)
			}
		}
	}
}

func TestRunLimitedBoundsConcurrency(t *testing.T) {
	const workers, n = 3, 50
	var cur, peak atomic.Int64
	err := runLimited(context.Background(), workers, n, func(context.Context, int) error {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent tasks, worker bound is %d", p, workers)
	}
}

func TestRunLimitedFirstErrorCancelsRest(t *testing.T) {
	boom := errors.New("boom")
	var cancelled atomic.Int64
	err := runLimited(context.Background(), 4, 64, func(ctx context.Context, i int) error {
		if i == 0 {
			return boom
		}
		// Later tasks observe the cancellation instead of running forever.
		select {
		case <-ctx.Done():
			cancelled.Add(1)
			return ctx.Err()
		case <-time.After(2 * time.Second):
			return nil
		}
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the first task error", err)
	}
}

func TestRunLimitedParentCancelIsNotSuccess(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started sync.Once
	err := runLimited(ctx, 2, 100, func(ctx context.Context, i int) error {
		started.Do(cancel)
		<-ctx.Done() // simulate an in-flight request aborted by cancellation
		return nil   // task "succeeds" anyway; the pool must still not report success
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled: partial work must not look complete", err)
	}
}

func TestRunLimitedZeroTasks(t *testing.T) {
	if err := runLimited(context.Background(), 4, 0, func(context.Context, int) error {
		t.Fatal("task ran")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestPrefetchInOrderAppliesInOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 5, 16} {
		names := make([]string, 41)
		for i := range names {
			names[i] = string(rune('a' + i%26))
		}
		nextWant := 0
		err := prefetchInOrder(context.Background(), workers, names,
			func(_ context.Context, name string) ([]byte, error) {
				time.Sleep(time.Duration(len(name)) * time.Microsecond)
				return []byte(name), nil
			},
			func(i int, data []byte) error {
				if i != nextWant {
					t.Fatalf("workers=%d: applied index %d, want %d", workers, i, nextWant)
				}
				if string(data) != names[i] {
					t.Fatalf("workers=%d: index %d got %q want %q", workers, i, data, names[i])
				}
				nextWant++
				return nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if nextWant != len(names) {
			t.Fatalf("workers=%d: applied %d of %d", workers, nextWant, len(names))
		}
	}
}

func TestPrefetchInOrderBoundsReadahead(t *testing.T) {
	const workers = 2 // window = 4
	gate := make(chan struct{})
	var fetched atomic.Int64
	names := make([]string, 64)
	done := make(chan error, 1)
	go func() {
		done <- prefetchInOrder(context.Background(), workers, names,
			func(context.Context, string) ([]byte, error) {
				fetched.Add(1)
				return nil, nil
			},
			func(int, []byte) error {
				<-gate // applier stalls; fetchers must not race ahead unboundedly
				return nil
			})
	}()
	time.Sleep(20 * time.Millisecond)
	if f := fetched.Load(); f > int64(workers*2+workers) {
		t.Fatalf("stalled applier but %d objects fetched; window is %d", f, workers*2)
	}
	close(gate)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if f := fetched.Load(); f != int64(len(names)) {
		t.Fatalf("fetched %d of %d", f, len(names))
	}
}

func TestPrefetchInOrderFetchError(t *testing.T) {
	boom := errors.New("fetch failed")
	names := make([]string, 20)
	var applied atomic.Int64
	err := prefetchInOrder(context.Background(), 4, names,
		func(_ context.Context, name string) ([]byte, error) {
			return nil, boom
		},
		func(int, []byte) error {
			applied.Add(1)
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want fetch error", err)
	}
	if applied.Load() != 0 {
		t.Fatalf("%d objects applied despite immediate fetch failure", applied.Load())
	}
}

// A single failed fetch must cancel the whole prefetch: sibling fetches
// already in flight (possibly deep in retry/backoff) observe the
// cancellation instead of riding out their work on a doomed restore —
// and the error surfaced is the fetch failure, not a cancellation
// artefact from an earlier index.
func TestPrefetchInOrderFetchErrorCancelsInFlight(t *testing.T) {
	boom := errors.New("fetch failed")
	names := make([]string, 16)
	var (
		first     atomic.Bool
		cancelled atomic.Int64
	)
	inflight := make(chan struct{}, len(names))
	err := prefetchInOrder(context.Background(), 4, names,
		func(ctx context.Context, _ string) ([]byte, error) {
			if first.CompareAndSwap(false, true) {
				// Fail only once sibling fetches are in flight, so the
				// test really exercises cancelling them.
				for i := 0; i < 2; i++ {
					select {
					case <-inflight:
					case <-time.After(2 * time.Second):
						t.Error("sibling fetches never started")
						return nil, boom
					}
				}
				return nil, boom
			}
			inflight <- struct{}{}
			select {
			case <-ctx.Done():
				cancelled.Add(1)
				return nil, ctx.Err()
			case <-time.After(2 * time.Second):
				t.Error("in-flight fetch not cancelled after sibling failure")
				return nil, nil
			}
		},
		func(int, []byte) error { return nil })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the fetch error", err)
	}
	if cancelled.Load() < 2 {
		t.Fatalf("only %d in-flight fetches observed cancellation", cancelled.Load())
	}
}

func TestPrefetchInOrderApplyErrorStopsEverything(t *testing.T) {
	boom := errors.New("apply failed")
	names := make([]string, 32)
	err := prefetchInOrder(context.Background(), 4, names,
		func(context.Context, string) ([]byte, error) { return nil, nil },
		func(i int, _ []byte) error {
			if i == 3 {
				return boom
			}
			if i > 3 {
				t.Fatalf("apply(%d) ran after apply(3) failed", i)
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want apply error", err)
	}
}
