package core

import (
	"testing"
	"time"

	"github.com/ginja-dr/ginja/internal/obs"
	"github.com/ginja-dr/ginja/internal/simclock"
)

// TestRPOWatermarkAdvancesOnAckOnly pins the durability watermark's
// semantics in virtual time: the RPO is the age of the oldest update the
// cloud has not acknowledged, so it grows as the clock advances, is
// unmoved by new enqueues, and jumps forward exactly when removeFront
// (the Unlocker's cloud ack) releases the front of the queue.
func TestRPOWatermarkAdvancesOnAckOnly(t *testing.T) {
	clk := simclock.NewSim()
	p := simQueueParams(clk, 100, 100) // B too large to fill: nothing is taken
	q := newCommitQueue(p)
	defer q.close()

	loss := obs.NewRegistry().Histogram("loss", "", nil, nil)
	q.lossHist = loss

	rpo := func() time.Duration {
		at, ok := q.oldestPendingAt()
		if !ok {
			return 0
		}
		return clk.Since(at)
	}

	if d := rpo(); d != 0 {
		t.Fatalf("empty queue RPO = %v, want 0", d)
	}

	if _, err := q.put(update{path: "f", off: 0, data: []byte("a")}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(50 * time.Millisecond)
	if d := rpo(); d != 50*time.Millisecond {
		t.Fatalf("RPO after 50ms = %v, want 50ms", d)
	}

	// A second enqueue must not move the watermark: RPO tracks the oldest
	// unacked update, not the newest write.
	if _, err := q.put(update{path: "f", off: 1, data: []byte("b")}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(50 * time.Millisecond)
	if d := rpo(); d != 100*time.Millisecond {
		t.Fatalf("RPO after enqueue + 50ms = %v, want 100ms (enqueue moved the watermark)", d)
	}

	// Ack of the front update advances the watermark to the next pending
	// update's enqueue time — exactly at the ack, not before.
	q.removeFront(1)
	if d := rpo(); d != 50*time.Millisecond {
		t.Fatalf("RPO after first ack = %v, want 50ms", d)
	}
	if loss.Count() != 1 {
		t.Fatalf("loss-window observations after first ack = %d, want 1", loss.Count())
	}
	// The released update was 100ms old: the data-loss-window histogram
	// records the durability gap each commit actually lived through.
	if got := loss.Sum(); got != 0.1 {
		t.Fatalf("loss-window sum = %v s, want 0.1", got)
	}

	clk.Advance(25 * time.Millisecond)
	q.removeFront(1)
	at, ok := q.oldestPendingAt()
	if ok {
		t.Fatalf("oldestPendingAt after draining = (%v, true), want none", at)
	}
	if d := rpo(); d != 0 {
		t.Fatalf("drained queue RPO = %v, want 0", d)
	}
	if loss.Count() != 2 {
		t.Fatalf("loss-window observations after drain = %d, want 2", loss.Count())
	}
}
