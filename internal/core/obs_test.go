package core_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/dbevent"
	"github.com/ginja-dr/ginja/internal/minidb"
	"github.com/ginja-dr/ginja/internal/minidb/pgengine"
	"github.com/ginja-dr/ginja/internal/obs"
)

// TestPipelineMetricsEndToEnd boots a fully instrumented stack (registry
// in Params.Metrics, store wrapped in InstrumentStore), commits through
// it and checks that every pipeline stage and the cloud path recorded
// real observations.
func TestPipelineMetricsEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	store := obs.InstrumentStore(cloud.NewMemStore(), reg, "mem")
	params := fastParams()
	params.Metrics = reg

	r := newRig(t, store, params,
		func() minidb.Engine { return pgengine.NewWithSizes(1024, 16*1024, 1024) },
		func() dbevent.Processor { return dbevent.NewPGProcessor() })
	if err := r.db.CreateTable("t", 0); err != nil {
		t.Fatal(err)
	}
	const commits = 40
	for i := 0; i < commits; i++ {
		r.put(t, "t", fmt.Sprintf("k%03d", i), "v")
	}
	if !r.g.Flush(5 * time.Second) {
		t.Fatal("flush timed out")
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	// Counters: every commit was counted, WAL objects reached the cloud.
	counter := func(name string) float64 {
		return reg.Counter(name, "", nil).Value()
	}
	if got := counter("ginja_updates_total"); got < commits {
		t.Fatalf("ginja_updates_total = %v, want >= %d", got, commits)
	}
	for _, name := range []string{
		"ginja_batches_total",
		"ginja_wal_objects_uploaded_total",
		"ginja_wal_bytes_uploaded_total",
		"ginja_wal_bytes_raw_total",
	} {
		if counter(name) == 0 {
			t.Errorf("%s = 0, want > 0", name)
		}
	}

	// Per-stage histograms: each stage of submit → ... → ack observed work.
	for _, stage := range []string{"queue_wait", "aggregate", "seal", "upload", "durable_wait"} {
		h := reg.Histogram("ginja_pipeline_stage_seconds", "", obs.Labels{"stage": stage}, nil)
		if h.Count() == 0 {
			t.Errorf("stage %q recorded no observations", stage)
		}
	}
	if reg.Histogram("ginja_commit_batch_seconds", "", nil, nil).Count() == 0 {
		t.Error("batch end-to-end histogram empty")
	}
	if reg.Histogram("ginja_wal_object_bytes", "", nil, obs.SizeBuckets()).Count() == 0 {
		t.Error("object size histogram empty")
	}

	// Instrumented store saw the uploads.
	puts := reg.Counter("ginja_cloud_ops_total", "", obs.Labels{"backend": "mem", "op": "put"})
	if puts.Value() == 0 {
		t.Error("instrumented store recorded no PUTs")
	}

	// Queue-depth gauges registered (value is racy; existence is not).
	for _, want := range []string{
		"ginja_commit_queue_depth",
		"ginja_upload_channel_depth",
		`ginja_pipeline_stage_seconds_count{stage="upload"}`,
		"ginja_rpo_seconds",
		"ginja_safety_limit_updates",
		`ginja_build_info{`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	// Healthy instrumented stack: both the pipeline check and the store
	// check pass, and Stats reports no error.
	ok, checks := reg.CheckHealth()
	if !ok {
		t.Fatalf("health = unhealthy: %+v", checks)
	}
	names := make(map[string]bool, len(checks))
	for _, c := range checks {
		names[c.Name] = true
	}
	if !names["pipeline"] || !names["store:mem"] {
		t.Fatalf("missing health checks, have %+v", checks)
	}
	if st := r.g.Stats(); st.LastError != "" {
		t.Fatalf("Stats.LastError = %q, want empty", st.LastError)
	}
}

// TestCheckpointMetrics drives enough checkpoints that the checkpoint
// path's counters and durations fire.
func TestCheckpointMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	params := fastParams()
	params.Metrics = reg

	r := newRig(t, cloud.NewMemStore(), params,
		func() minidb.Engine { return pgengine.NewWithSizes(1024, 16*1024, 1024) },
		func() dbevent.Processor { return dbevent.NewPGProcessor() })
	if err := r.db.CreateTable("t", 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		r.put(t, "t", fmt.Sprintf("k%03d", i), strings.Repeat("x", 256))
	}
	if err := r.db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if !r.g.Flush(5 * time.Second) {
		t.Fatal("flush timed out")
	}
	// Flush drains the WAL queue only; the checkpoint upload is async.
	if !r.g.SyncCheckpoints(5 * time.Second) {
		t.Fatal("checkpoint queue did not settle")
	}

	ckpts := reg.Counter("ginja_checkpoints_total", "", obs.Labels{"type": "checkpoint"}).Value() +
		reg.Counter("ginja_checkpoints_total", "", obs.Labels{"type": "dump"}).Value()
	if ckpts == 0 {
		t.Fatal("no checkpoint or dump uploads recorded")
	}
	if reg.Counter("ginja_db_objects_uploaded_total", "", nil).Value() == 0 {
		t.Error("no DB object parts recorded")
	}
	if reg.Counter("ginja_db_bytes_uploaded_total", "", nil).Value() == 0 {
		t.Error("no DB bytes recorded")
	}
	if reg.Histogram("ginja_checkpoint_upload_seconds", "", obs.Labels{"type": "checkpoint"}, nil).Count()+
		reg.Histogram("ginja_checkpoint_upload_seconds", "", obs.Labels{"type": "dump"}, nil).Count() == 0 {
		t.Error("checkpoint upload duration histogram empty")
	}
}

// TestStatsLastError surfaces a pipeline failure through Stats and the
// "pipeline" health check.
func TestStatsLastError(t *testing.T) {
	reg := obs.NewRegistry()
	params := fastParams()
	params.Metrics = reg
	params.UploadRetries = 1
	params.RetryBaseDelay = time.Millisecond

	store := &toggleFailStore{ObjectStore: cloud.NewMemStore()}
	r := newRig(t, store, params,
		func() minidb.Engine { return pgengine.NewWithSizes(1024, 16*1024, 1024) },
		func() dbevent.Processor { return dbevent.NewPGProcessor() })
	if err := r.db.CreateTable("t", 0); err != nil {
		t.Fatal(err)
	}
	store.fail.Store(true)
	for i := 0; i < 8; i++ {
		r.put(t, "t", fmt.Sprintf("k%d", i), "v")
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if r.g.Stats().LastError != "" {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := r.g.Stats()
	if st.LastError == "" {
		t.Fatal("Stats.LastError stayed empty after persistent upload failures")
	}
	if ok, _ := reg.CheckHealth(); ok {
		t.Fatal("pipeline health check still passing after fatal pipeline error")
	}
}

// toggleFailStore fails every Put while armed.
type toggleFailStore struct {
	cloud.ObjectStore
	fail atomic.Bool
}

func (s *toggleFailStore) Put(ctx context.Context, name string, data []byte) error {
	if s.fail.Load() {
		return errors.New("injected provider failure")
	}
	return s.ObjectStore.Put(ctx, name, data)
}
