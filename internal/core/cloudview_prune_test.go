package core

import (
	"testing"

	"github.com/ginja-dr/ginja/internal/cloud"
)

// A crash or outage between concurrent part PUTs leaves some parts of a
// DB object in the bucket but not all. LoadFromList must not surface such
// an object: its summed part bytes cannot reach the size declared in the
// name, so it is pruned and recovery falls back to the previous complete
// object (the consistent-prefix invariant).
func TestCloudViewLoadFromListPrunesPartialObjects(t *testing.T) {
	v := NewCloudView()
	infos := []cloud.ObjectInfo{
		{Name: "DB/0_dump_900", Size: 900}, // complete single-part dump
		// Interrupted 3-part dump: part 1 never landed.
		{Name: "DB/7_dump_3000.p0", Size: 1000},
		{Name: "DB/7_dump_3000.p2", Size: 1000},
		{Name: "WAL/1_seg_0", Size: 10},
	}
	if err := v.LoadFromList(infos); err != nil {
		t.Fatal(err)
	}
	db := v.DBObjects()
	if len(db) != 1 || db[0].Ts != 0 {
		t.Fatalf("DBObjects = %+v, want only the complete ts=0 dump", db)
	}
	if got := v.TotalDBSize(); got != 900 {
		t.Fatalf("TotalDBSize = %d, want 900 (partial object must not count)", got)
	}
	if d, ok := v.LatestDump(); !ok || d.Ts != 0 {
		t.Fatalf("LatestDump = %+v, %v; the partial dump must not be eligible", d, ok)
	}
}

func TestCloudViewLoadFromListKeepsCompleteMultiPart(t *testing.T) {
	v := NewCloudView()
	infos := []cloud.ObjectInfo{
		{Name: "DB/7_dump_2500.p0", Size: 1000},
		{Name: "DB/7_dump_2500.p1", Size: 1000},
		{Name: "DB/7_dump_2500.p2", Size: 500},
	}
	if err := v.LoadFromList(infos); err != nil {
		t.Fatal(err)
	}
	db := v.DBObjects()
	if len(db) != 1 || db[0].Parts != 3 || db[0].Size != 2500 {
		t.Fatalf("DBObjects = %+v, want the complete 3-part object", db)
	}
}

func TestCloudViewLoadFromListPrunesTruncatedSinglePart(t *testing.T) {
	v := NewCloudView()
	// A single-part object whose stored size disagrees with its name
	// (truncated upload) is equally unusable.
	infos := []cloud.ObjectInfo{
		{Name: "DB/3_checkpoint_400", Size: 250},
	}
	if err := v.LoadFromList(infos); err != nil {
		t.Fatal(err)
	}
	if db := v.DBObjects(); len(db) != 0 {
		t.Fatalf("DBObjects = %+v, want truncated object pruned", db)
	}
}
