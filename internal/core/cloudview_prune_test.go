package core

import (
	"testing"

	"github.com/ginja-dr/ginja/internal/cloud"
)

// A crash or outage between concurrent part PUTs leaves some parts of a
// DB object in the bucket but not all. LoadFromList must not surface such
// an object: its summed part bytes cannot reach the size declared in the
// name, so it is pruned and recovery falls back to the previous complete
// object (the consistent-prefix invariant).
func TestCloudViewLoadFromListPrunesPartialObjects(t *testing.T) {
	v := NewCloudView()
	infos := []cloud.ObjectInfo{
		{Name: "DB/0_dump_900", Size: 900}, // complete single-part dump
		// Interrupted 3-part dump: part 1 never landed.
		{Name: "DB/7_dump_3000.p0", Size: 1000},
		{Name: "DB/7_dump_3000.p2", Size: 1000},
		{Name: "WAL/1_seg_0", Size: 10},
	}
	if err := v.LoadFromList(infos); err != nil {
		t.Fatal(err)
	}
	db := v.DBObjects()
	if len(db) != 1 || db[0].Ts != 0 {
		t.Fatalf("DBObjects = %+v, want only the complete ts=0 dump", db)
	}
	if got := v.TotalDBSize(); got != 900 {
		t.Fatalf("TotalDBSize = %d, want 900 (partial object must not count)", got)
	}
	if d, ok := v.LatestDump(); !ok || d.Ts != 0 {
		t.Fatalf("LatestDump = %+v, %v; the partial dump must not be eligible", d, ok)
	}
	orphans := v.OrphanParts()
	if len(orphans) != 2 {
		t.Fatalf("OrphanParts = %+v, want the two stranded parts recorded for GC", orphans)
	}
	if g := v.NextDBGen(7); g != 1 {
		t.Fatalf("NextDBGen(7) = %d, want 1: the orphaned generation must not be reused", g)
	}
}

// A fresh upload can land at the same (ts, gen) as the orphan of an
// interrupted one (a restart before the orphan-generation floor existed,
// or a half-swept bucket). The two have different declared sizes; the
// complete object must survive the load and only the orphan's parts may
// be pruned — summing their bytes together (the old (ts, gen)-keyed
// bookkeeping) would prune the fully durable object and lose the writes
// whose superseded WAL was already garbage-collected.
func TestCloudViewLoadFromListSizeCollisionKeepsCompleteObject(t *testing.T) {
	v := NewCloudView()
	infos := []cloud.ObjectInfo{
		// Orphan of an interrupted 3000-byte dump at (ts=7, gen=0).
		{Name: "DB/7_dump_3000.p0", Size: 1000},
		{Name: "DB/7_dump_3000.p2", Size: 1000},
		// Complete 2000-byte dump at the same (ts=7, gen=0).
		{Name: "DB/7_dump_2000.p0", Size: 1000},
		{Name: "DB/7_dump_2000.p1", Size: 1000},
	}
	if err := v.LoadFromList(infos); err != nil {
		t.Fatal(err)
	}
	db := v.DBObjects()
	if len(db) != 1 || db[0].Size != 2000 || db[0].Parts != 2 {
		t.Fatalf("DBObjects = %+v, want only the complete 2000-byte dump", db)
	}
	if got := v.TotalDBSize(); got != 2000 {
		t.Fatalf("TotalDBSize = %d, want 2000", got)
	}
	orphans := v.OrphanParts()
	if len(orphans) != 2 {
		t.Fatalf("OrphanParts = %+v, want the two 3000-byte parts", orphans)
	}
	for _, o := range orphans {
		if o.Ts != 7 || o.Gen != 0 {
			t.Fatalf("orphan %+v, want ts=7 gen=0", o)
		}
	}
	if g := v.NextDBGen(7); g != 1 {
		t.Fatalf("NextDBGen(7) = %d, want 1", g)
	}
}

// DropOrphan forgets swept parts but keeps the generation floor.
func TestCloudViewOrphanGenFloorSurvivesSweep(t *testing.T) {
	v := NewCloudView()
	if err := v.LoadFromList([]cloud.ObjectInfo{
		{Name: "DB/7_dump_3000.p0", Size: 1000},
	}); err != nil {
		t.Fatal(err)
	}
	if len(v.DBObjects()) != 0 {
		t.Fatalf("DBObjects = %+v, want none", v.DBObjects())
	}
	orphans := v.OrphanParts()
	if len(orphans) != 1 {
		t.Fatalf("OrphanParts = %+v, want one", orphans)
	}
	v.DropOrphan(orphans[0].Name)
	if left := v.OrphanParts(); len(left) != 0 {
		t.Fatalf("OrphanParts after drop = %+v, want none", left)
	}
	if g := v.NextDBGen(7); g != 1 {
		t.Fatalf("NextDBGen(7) = %d after sweep, want 1 (floor retained)", g)
	}
}

// Two distinct complete objects claiming the same (ts, gen) — or an AddDB
// with a different size than the recorded object — is a conflict, not a
// merge.
func TestCloudViewAddDBConflict(t *testing.T) {
	v := NewCloudView()
	if err := v.AddDB(DBObjectInfo{Ts: 3, Gen: 0, Type: Checkpoint, Size: 400}); err != nil {
		t.Fatal(err)
	}
	if err := v.AddDB(DBObjectInfo{Ts: 3, Gen: 0, Type: Checkpoint, Size: 400, Parts: 2}); err != nil {
		t.Fatalf("re-adding the same object: %v", err)
	}
	if err := v.AddDB(DBObjectInfo{Ts: 3, Gen: 0, Type: Checkpoint, Size: 500}); err == nil {
		t.Fatal("AddDB with a different size under an existing (ts, gen) must be a conflict")
	}
	if err := v.AddDB(DBObjectInfo{Ts: 3, Gen: 0, Type: Dump, Size: 400}); err == nil {
		t.Fatal("AddDB with a different type under an existing (ts, gen) must be a conflict")
	}
}

func TestCloudViewLoadFromListKeepsCompleteMultiPart(t *testing.T) {
	v := NewCloudView()
	infos := []cloud.ObjectInfo{
		{Name: "DB/7_dump_2500.p0", Size: 1000},
		{Name: "DB/7_dump_2500.p1", Size: 1000},
		{Name: "DB/7_dump_2500.p2", Size: 500},
	}
	if err := v.LoadFromList(infos); err != nil {
		t.Fatal(err)
	}
	db := v.DBObjects()
	if len(db) != 1 || db[0].Parts != 3 || db[0].Size != 2500 {
		t.Fatalf("DBObjects = %+v, want the complete 3-part object", db)
	}
}

func TestCloudViewLoadFromListPrunesTruncatedSinglePart(t *testing.T) {
	v := NewCloudView()
	// A single-part object whose stored size disagrees with its name
	// (truncated upload) is equally unusable.
	infos := []cloud.ObjectInfo{
		{Name: "DB/3_checkpoint_400", Size: 250},
	}
	if err := v.LoadFromList(infos); err != nil {
		t.Fatal(err)
	}
	if db := v.DBObjects(); len(db) != 0 {
		t.Fatalf("DBObjects = %+v, want truncated object pruned", db)
	}
}
