package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/dbevent"
	"github.com/ginja-dr/ginja/internal/minidb"
	"github.com/ginja-dr/ginja/internal/minidb/pgengine"
	"github.com/ginja-dr/ginja/internal/vfs"
)

// pitrParams: one WAL object per commit (B = 1) so every flushed commit
// is its own recovery point, a long retention window so nothing is
// trimmed mid-property, and tiny objects so dumps split into parts.
func pitrParams() Params {
	p := DefaultParams()
	p.Batch = 1
	p.Safety = 16
	p.BatchTimeout = 20 * time.Millisecond
	p.RetryBaseDelay = time.Millisecond
	p.MaxObjectSize = 4096
	p.RetainFor = time.Hour
	return p
}

// TestPITRExactPrefixProperty is the point-in-time recovery property:
// for EVERY retained commit timestamp, RecoverAt(ts) rebuilds exactly
// the consistent prefix of commits ≤ ts — not the nearest checkpoint,
// not a superset — across randomized put/delete/checkpoint workloads.
// Recovery points are recorded at flush boundaries, where the WAL
// frontier is durable and unambiguous (see DESIGN §15 for why mid-flush
// targets are only guaranteed at those boundaries).
func TestPITRExactPrefixProperty(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			pitrPropertyRun(t, seed)
		})
	}
}

func pitrPropertyRun(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	params := pitrParams()
	store := cloud.NewMemStore()
	proc := dbevent.NewPGProcessor()
	g, err := New(vfs.NewMemFS(), store, proc, params)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Boot(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	db, err := minidb.Open(g.FS(), pgengine.NewWithSizes(512, 8192, 1024), minidb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("kv", 0); err != nil {
		t.Fatal(err)
	}

	type point struct {
		ts   int64
		snap map[string]string
	}
	var points []point
	cur := map[string]string{}
	keys := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	steps := 24 + rng.Intn(12)
	for step := 0; step < steps; step++ {
		key := keys[rng.Intn(len(keys))]
		if _, exists := cur[key]; exists && rng.Intn(4) == 0 {
			if err := db.Update(func(tx *minidb.Txn) error {
				return tx.Delete("kv", []byte(key))
			}); err != nil {
				t.Fatal(err)
			}
			delete(cur, key)
		} else {
			val := fmt.Sprintf("s%d-v%d", step, rng.Intn(1000))
			if err := db.Update(func(tx *minidb.Txn) error {
				return tx.Put("kv", []byte(key), []byte(val))
			}); err != nil {
				t.Fatal(err)
			}
			cur[key] = val
		}
		if !g.Flush(5 * time.Second) {
			t.Fatal("flush")
		}
		snap := make(map[string]string, len(cur))
		for k, v := range cur {
			snap[k] = v
		}
		points = append(points, point{ts: g.view.LastWALTs(), snap: snap})
		if step%7 == 6 {
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			if !g.SyncCheckpoints(5 * time.Second) {
				t.Fatal("checkpoint settle")
			}
		}
	}

	// Every recorded commit timestamp must recover to exactly its prefix.
	for _, p := range points {
		target := vfs.NewMemFS()
		gr, err := New(vfs.NewMemFS(), store, dbevent.NewPGProcessor(), params)
		if err != nil {
			t.Fatal(err)
		}
		if err := gr.RecoverAt(context.Background(), target, p.ts); err != nil {
			t.Fatalf("RecoverAt(%d): %v", p.ts, err)
		}
		db2, err := minidb.Open(target, pgengine.NewWithSizes(512, 8192, 1024), minidb.Options{})
		if err != nil {
			t.Fatalf("open at ts %d: %v", p.ts, err)
		}
		for _, k := range keys {
			got, gerr := db2.Get("kv", []byte(k))
			want, exists := p.snap[k]
			switch {
			case exists && (gerr != nil || string(got) != want):
				t.Fatalf("ts %d key %s: got %q, %v; want %q", p.ts, k, got, gerr, want)
			case !exists && gerr == nil:
				t.Fatalf("ts %d key %s: present as %q; want absent (not a consistent prefix)", p.ts, k, got)
			}
		}
	}
}

// TestRetentionTrimExpiresWindow: once the RetainFor window closes, the
// trimmer deletes retired objects and RecoverAt before the oldest
// surviving dump reports ErrNoDump ("outside the retention window").
func TestRetentionTrimExpiresWindow(t *testing.T) {
	params := pitrParams()
	params.RetainFor = 30 * time.Millisecond
	store := cloud.NewMemStore()
	g, err := New(vfs.NewMemFS(), store, dbevent.NewPGProcessor(), params)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Boot(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	db, err := minidb.Open(g.FS(), pgengine.NewWithSizes(512, 8192, 1024), minidb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("kv", 0); err != nil {
		t.Fatal(err)
	}
	// Churn until the 150 % rule retires the boot generation, then let the
	// window expire and a later sweep trim it.
	deadline := time.Now().Add(10 * time.Second)
	for g.Stats().WALObjectsDeleted == 0 || g.Stats().DBObjectsDeleted == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("retention never trimmed (stats %+v)", g.Stats())
		}
		for i := 0; i < 8; i++ {
			if err := db.Update(func(tx *minidb.Txn) error {
				return tx.Put("kv", []byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("%d", time.Now().UnixNano())))
			}); err != nil {
				t.Fatal(err)
			}
		}
		if !g.Flush(5 * time.Second) {
			t.Fatal("flush")
		}
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if !g.SyncCheckpoints(5 * time.Second) {
			t.Fatal("settle")
		}
	}
	// The boot dump (ts 0) is gone: a target before the oldest surviving
	// dump has no qualifying recovery point.
	gr, err := New(vfs.NewMemFS(), store, dbevent.NewPGProcessor(), params)
	if err != nil {
		t.Fatal(err)
	}
	if err := gr.RecoverAt(context.Background(), vfs.NewMemFS(), 0); !errors.Is(err, ErrNoDump) {
		t.Fatalf("RecoverAt(0) after trim: got %v, want ErrNoDump", err)
	}
	// The newest state still recovers fine.
	if err := gr.RecoverAt(context.Background(), vfs.NewMemFS(), -1); err != nil {
		t.Fatalf("RecoverAt(-1) after trim: %v", err)
	}
}

// TestRetentionObjectCapTrimsEarly: with an effectively infinite window,
// the RetainObjects cap still bounds the retained chain (BtrLog-style),
// trimming the oldest-superseded objects inline with GC.
func TestRetentionObjectCapTrimsEarly(t *testing.T) {
	params := pitrParams()
	params.RetainFor = time.Hour
	params.RetainObjects = 4
	store := cloud.NewMemStore()
	g, err := New(vfs.NewMemFS(), store, dbevent.NewPGProcessor(), params)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Boot(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	db, err := minidb.Open(g.FS(), pgengine.NewWithSizes(512, 8192, 1024), minidb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("kv", 0); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 10 && g.Stats().WALObjectsDeleted == 0; round++ {
		for i := 0; i < 8; i++ {
			if err := db.Update(func(tx *minidb.Txn) error {
				return tx.Put("kv", []byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("r%d", round)))
			}); err != nil {
				t.Fatal(err)
			}
		}
		if !g.Flush(5 * time.Second) {
			t.Fatal("flush")
		}
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if !g.SyncCheckpoints(5 * time.Second) {
			t.Fatal("settle")
		}
	}
	if g.Stats().WALObjectsDeleted == 0 {
		t.Fatalf("RetainObjects cap never trimmed (stats %+v)", g.Stats())
	}
}
