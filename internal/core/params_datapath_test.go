package core

import "testing"

func TestParamsDatapathKnobsDefaultToUploaders(t *testing.T) {
	p, err := Params{Uploaders: 7}.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if p.CheckpointUploaders != 7 || p.RecoveryFetchers != 7 {
		t.Fatalf("CheckpointUploaders/RecoveryFetchers = %d/%d, want 7/7 (follow Uploaders)",
			p.CheckpointUploaders, p.RecoveryFetchers)
	}
	p, err = Params{}.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if p.CheckpointUploaders != DefaultUploaders || p.RecoveryFetchers != DefaultUploaders {
		t.Fatalf("zero-value knobs = %d/%d, want the Uploaders default %d",
			p.CheckpointUploaders, p.RecoveryFetchers, DefaultUploaders)
	}
}

func TestParamsDatapathKnobsExplicitValuesKept(t *testing.T) {
	p, err := Params{Uploaders: 5, CheckpointUploaders: 2, RecoveryFetchers: 9}.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if p.CheckpointUploaders != 2 || p.RecoveryFetchers != 9 {
		t.Fatalf("explicit knobs overridden: %d/%d", p.CheckpointUploaders, p.RecoveryFetchers)
	}
}

func TestParamsDatapathKnobsRejectNegative(t *testing.T) {
	if _, err := (Params{CheckpointUploaders: -1}).Validate(); err == nil {
		t.Fatal("negative CheckpointUploaders accepted")
	}
	if _, err := (Params{RecoveryFetchers: -3}).Validate(); err == nil {
		t.Fatal("negative RecoveryFetchers accepted")
	}
}
