package core_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/cloud/cloudsim"
	"github.com/ginja-dr/ginja/internal/cloud/s3http"
	"github.com/ginja-dr/ginja/internal/core"
	"github.com/ginja-dr/ginja/internal/dbevent"
	"github.com/ginja-dr/ginja/internal/minidb"
	"github.com/ginja-dr/ginja/internal/minidb/innoengine"
	"github.com/ginja-dr/ginja/internal/minidb/pgengine"
	"github.com/ginja-dr/ginja/internal/vfs"
	"github.com/ginja-dr/ginja/internal/workload/tpcc"
)

// TestFullStackOverHTTP runs protect → disaster → recover with the cloud
// behind a real HTTP socket (the s3http server), like the paper's
// prototype talking REST to S3.
func TestFullStackOverHTTP(t *testing.T) {
	backend := cloud.NewMemStore()
	srv := httptest.NewServer(s3http.NewHandler(backend))
	defer srv.Close()
	store := s3http.NewClient(srv.URL, srv.Client())

	r := newRig(t, store, fastParams(),
		func() minidb.Engine { return pgengine.NewWithSizes(1024, 16*1024, 1024) },
		func() dbevent.Processor { return dbevent.NewPGProcessor() })
	if err := r.db.CreateTable("kv", 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		r.put(t, "kv", fmt.Sprintf("k%02d", i), "v")
	}
	if !r.g.Flush(10 * time.Second) {
		t.Fatal("flush over HTTP timed out")
	}
	db2 := r.disasterRecover(t)
	for i := 0; i < 40; i++ {
		if _, err := db2.Get("kv", []byte(fmt.Sprintf("k%02d", i))); err != nil {
			t.Fatalf("k%02d lost over HTTP stack: %v", i, err)
		}
	}
}

// TestFullStackOnRealDisk runs the whole loop on OSFS + DiskStore — what
// cmd/ginja does.
func TestFullStackOnRealDisk(t *testing.T) {
	store, err := cloud.NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	dataDir := t.TempDir()
	localFS, err := vfs.NewOSFS(dataDir)
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.New(localFS, store, dbevent.NewPGProcessor(), fastParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Boot(context.Background()); err != nil {
		t.Fatal(err)
	}
	engine := pgengine.NewWithSizes(1024, 16*1024, 1024)
	db, err := minidb.Open(g.FS(), engine, minidb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("kv", 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if err := db.Update(func(tx *minidb.Txn) error {
			return tx.Put("kv", []byte(fmt.Sprintf("k%02d", i)), []byte("disk"))
		}); err != nil {
			t.Fatal(err)
		}
	}
	if !g.Flush(10 * time.Second) {
		t.Fatal("flush")
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}

	// Disaster: recover into a different directory.
	restoreFS, err := vfs.NewOSFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g2, err := core.New(restoreFS, store, dbevent.NewPGProcessor(), fastParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.Recover(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer g2.Close()
	db2, err := minidb.Open(g2.FS(), engine, minidb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if _, err := db2.Get("kv", []byte(fmt.Sprintf("k%02d", i))); err != nil {
			t.Fatalf("k%02d lost on disk stack: %v", i, err)
		}
	}
}

// TestFullStackWithTransientCloudFailures injects a 20 % failure rate:
// the retry logic must absorb every failure with no data loss.
func TestFullStackWithTransientCloudFailures(t *testing.T) {
	flaky := cloudsim.New(cloud.NewMemStore(), cloudsim.Options{
		TimeScale:   -1,
		FailureRate: 0.2,
		Seed:        99,
	})
	params := fastParams()
	params.UploadRetries = 0 // retry forever
	r := newRig(t, flaky, params,
		func() minidb.Engine { return pgengine.NewWithSizes(1024, 16*1024, 1024) },
		func() dbevent.Processor { return dbevent.NewPGProcessor() })
	if err := r.db.CreateTable("kv", 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		r.put(t, "kv", fmt.Sprintf("k%02d", i), "v")
	}
	if err := r.db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if !r.g.Flush(20 * time.Second) {
		t.Fatal("flush did not survive the failure rate")
	}
	waitCheckpointUploaded(t, r.g, 1)
	if r.g.Stats().UploadRetries == 0 {
		t.Fatal("no retries recorded despite 20% failure injection")
	}
	if err := r.g.Err(); err != nil {
		t.Fatalf("pipeline error: %v", err)
	}
	// Recovery must still see a coherent state (disable injection for the
	// read path to isolate the upload-retry property).
	db2 := r.disasterRecover(t)
	for i := 0; i < 60; i++ {
		if _, err := db2.Get("kv", []byte(fmt.Sprintf("k%02d", i))); err != nil {
			t.Fatalf("k%02d lost despite retries: %v", i, err)
		}
	}
}

// TestTPCCCrashConsistencyInvariant runs a live TPC-C workload under
// Ginja with periodic checkpoints, crashes mid-flight WITHOUT flushing,
// recovers, and checks the transactional invariant: for every district,
// all orders below the recovered next-order-id exist with all their
// lines. Bounded data loss may rewind the counter, but can never tear a
// transaction apart.
func TestTPCCCrashConsistencyInvariant(t *testing.T) {
	store := cloud.NewMemStore()
	params := fastParams()
	params.Batch = 8
	params.Safety = 128
	r := newRig(t, store, params,
		func() minidb.Engine { return pgengine.NewWithSizes(1024, 64*1024, 1024) },
		func() dbevent.Processor { return dbevent.NewPGProcessor() })

	cfg := tpcc.Config{Warehouses: 1, Districts: 2, Customers: 5, Items: 20, Terminals: 2, Seed: 5}
	if err := tpcc.Load(r.db, cfg); err != nil {
		t.Fatal(err)
	}
	if err := r.db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	waitCheckpointUploaded(t, r.g, 1)
	if _, err := tpcc.NewDriver(r.db, cfg).Run(context.Background(), 400*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// CRASH: no flush, no checkpoint — whatever is in flight is lost.
	db2 := r.disasterRecover(t)

	for d := 1; d <= cfg.Districts; d++ {
		raw, err := db2.Get(tpcc.TableDistrict, []byte(fmt.Sprintf("d:%04d:%02d", 1, d)))
		if err != nil {
			t.Fatalf("district %d lost: %v", d, err)
		}
		var dist struct {
			NextOID int `json:"next_o_id"`
		}
		if err := json.Unmarshal(raw, &dist); err != nil {
			t.Fatal(err)
		}
		for o := 1; o < dist.NextOID; o++ {
			rawOrder, err := db2.Get(tpcc.TableOrders, []byte(fmt.Sprintf("o:%04d:%02d:%08d", 1, d, o)))
			if err != nil {
				t.Fatalf("district %d: order %d < NextOID %d missing after recovery — torn transaction",
					d, o, dist.NextOID)
			}
			var order struct {
				LineCount int `json:"line_count"`
			}
			if err := json.Unmarshal(rawOrder, &order); err != nil {
				t.Fatal(err)
			}
			for n := 1; n <= order.LineCount; n++ {
				key := fmt.Sprintf("ol:%04d:%02d:%08d:%02d", 1, d, o, n)
				if _, err := db2.Get(tpcc.TableOrderLine, []byte(key)); err != nil {
					t.Fatalf("order %d/%d missing line %d — torn transaction", d, o, n)
				}
			}
		}
	}
}

// TestRepeatedDisasterCycles survives several protect → crash → recover
// rounds, each resuming replication on the recovered state.
func TestRepeatedDisasterCycles(t *testing.T) {
	store := cloud.NewMemStore()
	params := fastParams()
	engineFn := func() minidb.Engine { return pgengine.NewWithSizes(1024, 16*1024, 1024) }
	procFn := func() dbevent.Processor { return dbevent.NewPGProcessor() }

	r := newRig(t, store, params, engineFn, procFn)
	if err := r.db.CreateTable("kv", 0); err != nil {
		t.Fatal(err)
	}

	g, db := r.g, r.db
	for cycle := 0; cycle < 3; cycle++ {
		for i := 0; i < 15; i++ {
			key := fmt.Sprintf("c%d-k%02d", cycle, i)
			if err := db.Update(func(tx *minidb.Txn) error {
				return tx.Put("kv", []byte(key), []byte(key))
			}); err != nil {
				t.Fatal(err)
			}
		}
		if !g.Flush(10 * time.Second) {
			t.Fatalf("cycle %d: flush", cycle)
		}
		// Disaster + recovery on a fresh machine.
		freshFS := vfs.NewMemFS()
		g2, err := core.New(freshFS, store, procFn(), params)
		if err != nil {
			t.Fatal(err)
		}
		if err := g2.Recover(context.Background()); err != nil {
			t.Fatalf("cycle %d: recover: %v", cycle, err)
		}
		t.Cleanup(func() { g2.Close() })
		db2, err := minidb.Open(g2.FS(), engineFn(), minidb.Options{})
		if err != nil {
			t.Fatalf("cycle %d: reopen: %v", cycle, err)
		}
		// Everything from every previous cycle must still be there.
		for c := 0; c <= cycle; c++ {
			for i := 0; i < 15; i++ {
				key := fmt.Sprintf("c%d-k%02d", c, i)
				if _, err := db2.Get("kv", []byte(key)); err != nil {
					t.Fatalf("cycle %d: %s lost: %v", cycle, key, err)
				}
			}
		}
		g, db = g2, db2
	}
}

// TestInterruptedRecoveryIsRepeatable: a recovery cancelled mid-restore
// leaves partial files behind; a second, complete Recover over the same
// directory must still produce a correct database (restores are
// idempotent overwrites).
func TestInterruptedRecoveryIsRepeatable(t *testing.T) {
	r := pgRig(t, fastParams())
	if err := r.db.CreateTable("kv", 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		r.put(t, "kv", fmt.Sprintf("k%02d", i), "v")
	}
	if err := r.db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if !r.g.Flush(5 * time.Second) {
		t.Fatal("flush")
	}
	waitCheckpointUploaded(t, r.g, 1)

	freshFS := vfs.NewMemFS()
	// First attempt: cancel almost immediately so the restore aborts
	// partway (or instantly — both are valid interruption points).
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	gBad, err := core.New(freshFS, r.store, r.proc(), r.g.Params())
	if err != nil {
		t.Fatal(err)
	}
	if err := gBad.Recover(ctx); err == nil {
		// A cancelled context should fail the LIST or a GET; if the
		// whole restore raced through, that is fine too.
		gBad.Close()
	}

	// Second attempt on the SAME directory with a live context.
	g2, err := core.New(freshFS, r.store, r.proc(), r.g.Params())
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.Recover(context.Background()); err != nil {
		t.Fatalf("second recovery failed: %v", err)
	}
	defer g2.Close()
	db2, err := minidb.Open(g2.FS(), r.engine(), minidb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := db2.Get("kv", []byte(fmt.Sprintf("k%02d", i))); err != nil {
			t.Fatalf("k%02d lost after repeated recovery: %v", i, err)
		}
	}
}

// TestInnoCircularWrapUnderGinja drives an InnoDB-personality database
// with a tiny circular redo log so the log wraps many times (forcing
// checkpoints), all while Ginja replicates and garbage-collects. Crash
// and recover at the end: the full history must survive even though the
// local log reused its space repeatedly.
func TestInnoCircularWrapUnderGinja(t *testing.T) {
	store := cloud.NewMemStore()
	params := fastParams()
	engineFn := func() minidb.Engine {
		return innoengine.NewWithSizes(512, 2048+512*16, 1024, 2) // 16 KiB capacity
	}
	r := newRig(t, store, params, engineFn,
		func() dbevent.Processor { return dbevent.NewInnoProcessor() })
	if err := r.db.CreateTable("kv", 8); err != nil {
		t.Fatal(err)
	}
	const n = 300 // enough to wrap the circular log several times
	for i := 0; i < n; i++ {
		r.put(t, "kv", fmt.Sprintf("k%03d", i), fmt.Sprintf("value-%03d", i))
	}
	if r.db.Stats().Checkpoints == 0 {
		t.Fatal("circular log never forced a checkpoint")
	}
	if !r.g.Flush(10 * time.Second) {
		t.Fatal("flush")
	}
	waitCheckpointUploaded(t, r.g, int64(r.db.Stats().Checkpoints))

	db2 := r.disasterRecover(t)
	for i := 0; i < n; i++ {
		v, err := db2.Get("kv", []byte(fmt.Sprintf("k%03d", i)))
		if err != nil {
			t.Fatalf("k%03d lost across circular wrap: %v", i, err)
		}
		if string(v) != fmt.Sprintf("value-%03d", i) {
			t.Fatalf("k%03d = %q", i, v)
		}
	}
	// GC must have kept the cloud bounded: far fewer WAL objects than
	// commits.
	if wal := len(r.g.View().WALObjects()); wal > n/2 {
		t.Fatalf("cloud holds %d WAL objects after GC for %d commits", wal, n)
	}
}
