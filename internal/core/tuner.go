package core

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/costmodel"
	"github.com/ginja-dr/ginja/internal/simclock"
)

// DefaultCostCeilingPerDay is the spend budget the adaptive controller
// optimizes under when Params.CostCeilingPerDay is left zero: the paper's
// titular one dollar per month.
const DefaultCostCeilingPerDay = 1.0 / 30

// Controller cadence and filter constants.
const (
	// tunerInterval is the re-solve cadence. 100ms is fast enough to
	// catch an arrival-rate lull within one small batch's fill time and
	// slow enough that a tick costs nothing against cloud RTTs.
	tunerInterval = 100 * time.Millisecond
	// tunerRateAlpha is the EWMA weight of the newest arrival-rate and
	// bytes-per-update sample.
	tunerRateAlpha = 0.3
	// tunerFitDecay is the latency-fit history decay per PUT sample
	// (≈50-sample window), so an RTT regime shift is tracked within a
	// few dozen PUTs.
	tunerFitDecay = 0.98
	// tunerMinTB is the floor for the effective batch timeout.
	tunerMinTB = time.Millisecond
	// tunerCostMargin spends at most this fraction of the ceiling,
	// leaving headroom for arrival-rate estimation error.
	tunerCostMargin = 0.9
	// tunerLullFactor: an instantaneous rate below this fraction of the
	// smoothed rate means arrivals paused — flush partials immediately
	// instead of waiting out a fill-scaled timeout.
	tunerLullFactor = 0.25
	// tunerUtilizationCap marks the uploader pool saturated: above it the
	// queueing term diverges and the candidate batch size is rejected.
	tunerUtilizationCap = 0.95
)

// effectiveKnobs is one immutable published snapshot of the controller's
// choice. Readers load the whole struct through an atomic pointer, so a
// batch cut mid-stream can never observe B from one solve and TB from
// another.
type effectiveKnobs struct {
	batch   int
	timeout time.Duration
	// putLatency is the fitted latency of one WAL PUT at this batch size
	// (base + perByte·batch·bytesPerUpdate); zero until the fit has
	// enough samples.
	putLatency time.Duration
	// fitBase/fitPerByte expose the raw fitted curve for the gauges.
	fitBase    float64
	fitPerByte float64
}

// tuner is the online (B, TB) controller: it samples per-PUT
// (sealed-size, latency) pairs from the upload stage, fits the cloud's
// latency-vs-size curve (latFit), tracks the commit arrival rate, and
// periodically re-solves for the effective knobs that minimize expected
// commit latency subject to Params.CostCeilingPerDay. Solutions are
// published atomically here (for Stats/gauges) and pushed into the
// commitQueue under its own mutex (for batch cuts), clamped so the
// Safety invariant S ≥ B always holds.
type tuner struct {
	clk     simclock.Clock
	q       *commitQueue
	params  Params
	updates func() int64 // cumulative commits submitted (pipeline counter)

	mu          sync.Mutex
	fit         latFit
	rate        float64 // λ̂: smoothed arrival rate, updates/sec
	bytesPer    float64 // smoothed sealed bytes contributed per update
	sampleBytes int64   // sealed bytes PUT since the last tick
	samplePuts  int64
	lastTick    time.Time
	lastUpdates int64

	knobs atomic.Pointer[effectiveKnobs]
	timer simclock.Timer
	done  atomic.Bool
}

func newTuner(q *commitQueue, params Params, updates func() int64) *tuner {
	t := &tuner{
		clk:     params.clock(),
		q:       q,
		params:  params,
		updates: updates,
		fit:     newLatFit(tunerFitDecay),
	}
	// Until the fit warms up the configured knobs stand.
	t.knobs.Store(&effectiveKnobs{batch: params.Batch, timeout: params.BatchTimeout})
	return t
}

// start arms the periodic re-solve. The tick is an AfterFunc on the
// instance clock, not a dedicated goroutine — under fleet mode
// Admit overrides Params.Clock with the fleet's shared tick wheel, so a
// thousand tenants' tuner ticks multiplex onto one timer heap instead
// of a thousand runtime timers with a goroutine each.
func (t *tuner) start() {
	t.mu.Lock()
	t.lastTick = t.clk.Now()
	t.mu.Unlock()
	t.timer = t.clk.AfterFunc(tunerInterval, t.onTick)
}

// close stops the re-solve timer. Idempotent; a tick racing the stop is
// harmless (setKnobs ignores a closed queue).
func (t *tuner) close() {
	t.done.Store(true)
	if t.timer != nil {
		t.timer.Stop()
	}
}

func (t *tuner) onTick() {
	if t.done.Load() {
		return
	}
	t.tick(t.clk.Now())
	if !t.done.Load() {
		t.timer.Reset(tunerInterval)
	}
}

// observePut feeds one completed WAL PUT into the latency fit. Called
// from the upload workers; a mutex keeps it allocation-free.
func (t *tuner) observePut(sealedBytes int, latency time.Duration) {
	t.mu.Lock()
	t.fit.add(float64(sealedBytes), latency.Seconds())
	t.sampleBytes += int64(sealedBytes)
	t.samplePuts++
	t.mu.Unlock()
}

// snapshot returns the current published knobs by value.
func (t *tuner) snapshot() effectiveKnobs { return *t.knobs.Load() }

// tick advances the rate estimate and re-solves. Split from onTick so
// unit tests can drive the controller without the timer.
func (t *tuner) tick(now time.Time) {
	t.mu.Lock()
	dt := now.Sub(t.lastTick).Seconds()
	if dt <= 0 {
		t.mu.Unlock()
		return
	}
	cum := t.updates()
	delta := cum - t.lastUpdates
	t.lastUpdates = cum
	t.lastTick = now
	inst := float64(delta) / dt
	lull := t.rate > 0 && inst < t.rate*tunerLullFactor
	if delta > 0 {
		t.rate = t.rate*(1-tunerRateAlpha) + inst*tunerRateAlpha
		if t.samplePuts > 0 && t.sampleBytes > 0 {
			bpu := float64(t.sampleBytes) / float64(delta)
			if t.bytesPer == 0 {
				t.bytesPer = bpu
			} else {
				t.bytesPer = t.bytesPer*(1-tunerRateAlpha) + bpu*tunerRateAlpha
			}
		}
	} else {
		// Decay toward zero so a stopped workload doesn't pin stale knobs.
		t.rate *= 1 - tunerRateAlpha
	}
	t.sampleBytes, t.samplePuts = 0, 0
	base, perByte, ok := t.fit.fit()
	rate, bytesPer := t.rate, t.bytesPer
	t.mu.Unlock()

	cur := t.knobs.Load()
	if lull {
		// Arrivals paused mid-stream: whatever is already queued should
		// flush at once rather than wait out a timeout sized for the
		// steady rate. Keep B (cost math is about steady state; a lull
		// batch is partial anyway).
		if cur.timeout != tunerMinTB {
			k := *cur
			k.timeout = tunerMinTB
			t.publish(&k)
		}
		return
	}
	if !ok || rate <= 0 || bytesPer <= 0 {
		return
	}
	b, tb, putLat := solveKnobs(solveInput{
		rate:           rate,
		bytesPerUpdate: bytesPer,
		base:           base,
		perByte:        perByte,
		uploaders:      t.params.Uploaders,
		safety:         t.params.Safety,
		maxTB:          t.params.BatchTimeout,
		ceilingPerDay:  t.params.CostCeilingPerDay,
		prices:         t.params.Prices,
	})
	t.publish(&effectiveKnobs{
		batch:      b,
		timeout:    tb,
		putLatency: putLat,
		fitBase:    base,
		fitPerByte: perByte,
	})
}

func (t *tuner) publish(k *effectiveKnobs) {
	t.knobs.Store(k)
	t.q.setKnobs(k.batch, k.timeout)
}

// solveInput carries everything solveKnobs needs, so the optimization is
// a pure function unit tests can probe directly.
type solveInput struct {
	rate           float64 // λ̂ updates/sec, > 0
	bytesPerUpdate float64 // mean sealed bytes per update, > 0
	base, perByte  float64 // fitted PUT latency model (s, s/byte)
	uploaders      int
	safety         int
	maxTB          time.Duration // configured BatchTimeout = effective-TB cap
	ceilingPerDay  float64
	prices         cloud.PriceSheet
}

// expectedLatency models the mean commit latency at batch size b:
// half-fill wait (a commit arrives uniformly within its batch's fill
// window) plus PUT service time inflated by an M/D/c-flavoured queueing
// term as the uploader pool approaches saturation.
func (in solveInput) expectedLatency(b int) float64 {
	bf := float64(b)
	fill := (bf - 1) / (2 * in.rate)
	l := in.base + in.perByte*bf*in.bytesPerUpdate
	if l < 1e-6 {
		l = 1e-6
	}
	ueff := float64(in.uploaders)
	// The Safety window caps how many batches can be in flight at once,
	// so tiny batches can't actually use the whole pool.
	if c := float64(in.safety) / bf; c < ueff {
		ueff = c
	}
	if ueff < 1 {
		ueff = 1
	}
	rho := in.rate * l / (bf * ueff)
	if rho >= tunerUtilizationCap {
		return math.Inf(1)
	}
	return fill + l*(1+rho/(2*(1-rho)))
}

// costFloorB returns the smallest batch size whose projected steady-state
// spend fits the ceiling. The WAL-PUT term is the only batch-dependent
// component of the costmodel (§7.1), so the floor is closed-form: spend
// per day = fixed + putAt1/B, with the paper's evaluation deployment
// re-rated at the measured arrival rate.
func costFloorB(in solveInput) int {
	if in.ceilingPerDay <= 0 {
		return 1
	}
	dep := costmodel.PaperEvaluationDeployment()
	dep.UpdatesPerMinute = in.rate * 60
	dep.Batch = 1
	c := costmodel.Monthly(dep, in.prices)
	fixedPerDay := (c.Total() - c.WALPut) / 30
	putAt1PerDay := c.WALPut / 30
	budget := in.ceilingPerDay*tunerCostMargin - fixedPerDay
	if budget <= 0 {
		// Even infinite batching can't meet the ceiling at this rate —
		// the best we can do is batch as hard as Safety allows.
		return in.safety
	}
	b := int(math.Ceil(putAt1PerDay / budget))
	if b < 1 {
		b = 1
	}
	return b
}

// solveKnobs picks the (B, TB) minimizing expectedLatency subject to the
// cost ceiling and the Safety clamp. TB is derived from B: twice the
// expected fill time, so the timeout only fires when arrivals genuinely
// stall, bounded above by the configured BatchTimeout (the user's TB acts
// as a worst-case cap, never exceeded) and below by tunerMinTB. Returns
// the chosen knobs plus the fitted PUT latency at the chosen size.
func solveKnobs(in solveInput) (batch int, tb time.Duration, putLatency time.Duration) {
	maxB := in.safety
	if maxB < 1 {
		maxB = 1
	}
	minB := costFloorB(in)
	if minB > maxB {
		// Ceiling infeasible even at S: clamp to the Safety invariant and
		// spend as little as the durability contract allows.
		minB = maxB
	}
	bestB, bestF := maxB, math.Inf(1)
	// Geometric scan: ~32 points per octave keeps the search O(log S)
	// while the smooth objective stays within a few percent of the true
	// optimum.
	for b := minB; b <= maxB; {
		if f := in.expectedLatency(b); f < bestF {
			bestF, bestB = f, b
		}
		step := b / 32
		if step < 1 {
			step = 1
		}
		b += step
	}
	if f := in.expectedLatency(maxB); f < bestF {
		bestB = maxB
	}
	batch = bestB
	tbf := 2 * float64(batch) / in.rate // seconds
	tb = time.Duration(tbf * float64(time.Second))
	if tb > in.maxTB {
		tb = in.maxTB
	}
	if tb < tunerMinTB {
		tb = tunerMinTB
	}
	l := in.base + in.perByte*float64(batch)*in.bytesPerUpdate
	putLatency = time.Duration(l * float64(time.Second))
	return batch, tb, putLatency
}
