package core

import (
	"sort"
	"sync"
)

// dirtyPageSize is the granularity of dirty tracking: every observed
// write is rounded out to page boundaries before being recorded, so
// repeated small writes to the same page cost one range, and a delta
// ships whole pages — the unit databases rewrite anyway.
const dirtyPageSize = 4096

// byteRange is a half-open dirtied interval [Off, End) within one file.
type byteRange struct {
	Off, End int64
}

// dirtyFile is the dirty state of one file since the last chain element:
// either a sorted, disjoint, non-adjacent range list, or "whole" when a
// truncate (or any size-changing mutation we cannot express as ranges)
// forces the next delta to recapture the complete file.
type dirtyFile struct {
	Whole  bool
	Ranges []byteRange
}

// bytes is the sum of range lengths; 0 for whole files (their size is
// only known at plan time, when the planner stats them).
func (f *dirtyFile) bytes() int64 {
	var n int64
	for _, r := range f.Ranges {
		n += r.End - r.Off
	}
	return n
}

// dirtyMap accumulates the byte ranges dirtied per data file since the
// last durable chain element (dump or delta). The checkpointer feeds it
// from the collected checkpoint writes — off the commit hot path — and
// drains it when it enqueues the next delta or full dump.
type dirtyMap struct {
	mu    sync.Mutex
	files map[string]*dirtyFile
}

func newDirtyMap() *dirtyMap {
	return &dirtyMap{files: make(map[string]*dirtyFile)}
}

// markWrite records [off, off+n) of path as dirty, rounded out to page
// boundaries and coalesced with existing ranges.
func (m *dirtyMap) markWrite(path string, off, n int64) {
	if m == nil || n <= 0 {
		return
	}
	lo := off &^ (dirtyPageSize - 1)
	hi := (off + n + dirtyPageSize - 1) &^ (dirtyPageSize - 1)
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.files[path]
	if f == nil {
		f = &dirtyFile{}
		m.files[path] = f
	}
	if f.Whole {
		return
	}
	f.insert(byteRange{Off: lo, End: hi})
}

// markWhole records that path must be recaptured completely by the next
// delta (truncates, and any mutation ranges cannot describe).
func (m *dirtyMap) markWhole(path string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.files[path]
	if f == nil {
		f = &dirtyFile{}
		m.files[path] = f
	}
	f.Whole = true
	f.Ranges = nil
}

// insert merges r into the sorted range list, coalescing overlapping and
// adjacent ranges.
func (f *dirtyFile) insert(r byteRange) {
	rs := f.Ranges
	// First range with End >= r.Off can touch r; everything before stays.
	i := sort.Search(len(rs), func(i int) bool { return rs[i].End >= r.Off })
	j := i
	for j < len(rs) && rs[j].Off <= r.End {
		if rs[j].Off < r.Off {
			r.Off = rs[j].Off
		}
		if rs[j].End > r.End {
			r.End = rs[j].End
		}
		j++
	}
	if i == j { // disjoint: splice in
		rs = append(rs, byteRange{})
		copy(rs[i+1:], rs[i:])
		rs[i] = r
	} else { // swallowed [i, j): replace with the merged range
		rs[i] = r
		rs = append(rs[:i+1], rs[j:]...)
	}
	f.Ranges = rs
}

// snapshotAndReset hands the accumulated dirty state to the caller and
// starts a fresh accumulation epoch. Called when a delta or full dump is
// enqueued: either way the new chain element covers everything recorded
// so far.
func (m *dirtyMap) snapshotAndReset() map[string]*dirtyFile {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := m.files
	m.files = make(map[string]*dirtyFile)
	return snap
}

// estimateBytes is the sum of tracked dirty range lengths — a lower
// bound on the next delta's payload (whole files count 0 until the
// planner stats them).
func (m *dirtyMap) estimateBytes() int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int64
	for _, f := range m.files {
		n += f.bytes()
	}
	return n
}
