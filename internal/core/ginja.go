package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/dbevent"
	"github.com/ginja-dr/ginja/internal/obs"
	"github.com/ginja-dr/ginja/internal/sealer"
	"github.com/ginja-dr/ginja/internal/simclock"
	"github.com/ginja-dr/ginja/internal/vfs"
)

// Version names this middleware build; it surfaces in the
// ginja_build_info metric and /statusz. ObjectFormatVersion is the cloud
// object-format generation the build writes (3 = delta DB objects with
// `.b<ts>-<gen>` base linkage; 2, still readable, independently
// part-sealed DB objects; 1, still readable, sealed a DB object as one
// envelope).
const (
	Version             = "0.7.0"
	ObjectFormatVersion = 3
)

// ErrNoDump is returned by Recover when the cloud holds no dump to
// restore from.
var ErrNoDump = errors.New("core: no dump object in the cloud")

// ErrNotStarted is returned when Ginja is used before Boot/Reboot/Recover.
var ErrNotStarted = errors.New("core: ginja not started")

// Stats is a snapshot of Ginja's activity counters (the raw material of
// the paper's Table 3).
type Stats struct {
	// UpdatesObserved counts intercepted WAL writes (database updates in
	// the B/S sense).
	UpdatesObserved int64
	// Batches is the number of cloud synchronizations performed.
	Batches int64
	// WALObjectsUploaded / WALBytesUploaded cover the commit path
	// (bytes are sealed, i.e. post-compression sizes).
	WALObjectsUploaded int64
	WALBytesUploaded   int64
	// WALBytesRaw is the pre-seal payload volume (compression input).
	WALBytesRaw int64
	// UploadRetries counts transient cloud failures absorbed.
	UploadRetries int64
	// PackedWALObjects counts uploaded WAL objects carrying more than one
	// write (batch packing); WALObjectsUploaded − PackedWALObjects are
	// single-write objects.
	PackedWALObjects int64
	// SplitWALWrites counts writes larger than MaxObjectSize that had to
	// be split across objects.
	SplitWALWrites int64
	// Checkpoints / Dumps / Deltas are uploaded DB objects by type.
	Checkpoints int64
	Dumps       int64
	Deltas      int64
	// DeltaChainLen is the length of the current delta chain (deltas since
	// the last full base dump; 0 when the next threshold crossing will
	// emit a full dump).
	DeltaChainLen int
	// CheckpointBytesSaved is the cumulative payload NOT uploaded because
	// a delta shipped instead of the full re-dump the 150 % rule would
	// otherwise have triggered (local DB size at plan time minus delta
	// payload, summed over durable deltas).
	CheckpointBytesSaved int64
	// DumpGateBlockedTime is the cumulative time DBMS writes spent blocked
	// on the stop-writes dump gate (only writes to files an active dump or
	// delta plan was reading count).
	DumpGateBlockedTime time.Duration
	// DBObjectsUploaded / DBBytesUploaded cover the checkpoint path.
	DBObjectsUploaded int64
	DBBytesUploaded   int64
	// WALObjectsDeleted / DBObjectsDeleted count garbage collection.
	WALObjectsDeleted int64
	DBObjectsDeleted  int64
	// BlockedTime is the cumulative time DBMS writes spent blocked on the
	// Safety contract.
	BlockedTime time.Duration
	// CheckpointBytesBuffered is the in-memory payload currently collected
	// or queued on the checkpoint path (the ginja_checkpoint_queue_bytes
	// gauge).
	CheckpointBytesBuffered int64
	// PeakStreamBytes is the high-water mark of payload+sealed bytes
	// resident in the streaming DB data path — bounded by
	// 2 × CheckpointUploaders × MaxObjectSize regardless of database size.
	PeakStreamBytes int64
	// RPO is the live durability watermark: the age of the oldest update
	// not yet acknowledged by the cloud (0 when fully synchronized). Had a
	// disaster struck at snapshot time, this is how much committed work a
	// restore would lose.
	RPO time.Duration
	// SafetyLimit (S) and SafetyTimeout (TS) are the configured Safety
	// bounds, surfaced beside the realized RPO so /statusz shows the
	// contract next to the measurement.
	SafetyLimit   int
	SafetyTimeout time.Duration
	// EffectiveBatch and EffectiveBatchTimeout are the (B, TB) knobs the
	// commit path is actually running: the adaptive controller's current
	// choice under Params.AdaptiveBatching, the configured values
	// otherwise.
	EffectiveBatch        int
	EffectiveBatchTimeout time.Duration
	// FittedPutLatency is the controller's fitted cloud PUT latency at
	// the current effective batch size (0 until the fit has enough
	// samples, or when adaptive batching is off).
	FittedPutLatency time.Duration
	// LastRecovery is the phase-by-phase RTO budget of the most recent
	// Recover/RecoverAt on this instance (nil if it never recovered).
	LastRecovery *RecoveryBreakdown
	// LastError is the first fatal replication error, rendered as a
	// string ("" while healthy), so health checks can consume a Stats
	// snapshot without reaching into internals.
	LastError string
}

// Ginja is the disaster-recovery middleware: it observes a database's
// file-system writes (through the vfs.FS returned by FS) and keeps a
// recoverable copy of the database in a cloud object store (§5).
//
// Lifecycle: New → exactly one of Boot / Reboot / Recover → (database
// runs) → Close. The paper's three initialization modes (Algorithm 1) map
// 1:1 onto those methods.
type Ginja struct {
	localFS vfs.FS
	store   cloud.ObjectStore
	proc    dbevent.Processor
	params  Params
	seal    *sealer.Sealer
	view    *CloudView

	pipe    *pipeline
	ckpt    *checkpointer
	started bool
	closed  bool

	// tracker accounts the bytes resident in the streaming DB data path
	// (Boot's dump and every checkpoint/dump upload share it).
	tracker *streamTracker

	recInflight *inflight
	recFetch    *obs.Histogram // per-object GET during recovery prefetch

	// lastRecovery holds the RTO breakdown of the most recent
	// Recover/RecoverAt (atomic: Stats may race with RecoverAt on a
	// started instance).
	lastRecovery atomic.Pointer[RecoveryBreakdown]
}

var _ vfs.Observer = (*Ginja)(nil)

// New creates a Ginja instance protecting the database files in localFS,
// replicating to store, understanding the write pattern via proc.
// When params.Prefix is set, every object name is rooted under that
// prefix (many tenants can share one bucket); the rest of the stack —
// naming, LIST diffing, GC, recovery — operates on the prefix-stripped
// namespace and never observes foreign objects.
func New(localFS vfs.FS, store cloud.ObjectStore, proc dbevent.Processor, params Params) (*Ginja, error) {
	params, err := params.Validate()
	if err != nil {
		return nil, err
	}
	store = cloud.NewPrefixStore(store, params.Prefix)
	seal, err := sealer.New(sealer.Options{
		Compress: params.Compress,
		Encrypt:  params.Encrypt,
		Password: params.Password,
	})
	if err != nil {
		return nil, err
	}
	var recFetch *obs.Histogram
	if params.Metrics != nil {
		recFetch = params.Metrics.Histogram(metricRecoveryFetch,
			"Per-object GET duration during recovery prefetch in seconds.", nil, nil)
	}
	g := &Ginja{
		localFS:     localFS,
		store:       store,
		proc:        proc,
		params:      params,
		seal:        seal,
		view:        NewCloudView(),
		tracker:     &streamTracker{},
		recInflight: newInflight(params.Metrics, "get", "recovery"),
		recFetch:    recFetch,
	}
	if reg := params.Metrics; reg != nil {
		reg.GaugeFunc(metricStreamBytes,
			"Payload+sealed bytes currently resident in the streaming DB data path.",
			nil, func() float64 { return float64(g.tracker.cur.Load()) })
		obs.RegisterBuildInfo(reg, Version, strconv.Itoa(ObjectFormatVersion))
	}
	return g, nil
}

// FS returns the intercepted file system the DBMS must be opened on.
func (g *Ginja) FS() vfs.FS { return vfs.NewInterceptFS(g.localFS, g) }

// View exposes the cloud bookkeeping (read-mostly; used by tools/tests).
func (g *Ginja) View() *CloudView { return g.view }

// Params returns the validated configuration.
func (g *Ginja) Params() Params { return g.params }

// Boot uploads an initial copy of an existing database — one WAL object
// per local WAL segment, then a full dump — and starts the replication
// threads (Algorithm 1, Boot mode). The DBMS must only be started after
// Boot returns.
func (g *Ginja) Boot(ctx context.Context) error {
	if g.started {
		return errors.New("core: already started")
	}
	files, err := vfs.Walk(g.localFS, "")
	if err != nil {
		return fmt.Errorf("core: boot walk: %w", err)
	}
	sort.Strings(files)
	for _, p := range files {
		if g.proc.FileKind(p) != dbevent.KindWAL {
			continue
		}
		content, err := vfs.ReadFile(g.localFS, p)
		if err != nil {
			return fmt.Errorf("core: boot read %s: %w", p, err)
		}
		ts := g.view.NextWALTs()
		payload := EncodeWrites([]FileWrite{{Path: p, Offset: 0, Data: content}})
		sealed, err := g.seal.Seal(payload)
		if err != nil {
			return err
		}
		name := WALObjectName(ts, p, 0)
		if err := g.putWithRetry(ctx, name, sealed); err != nil {
			return fmt.Errorf("core: boot upload %s: %w", name, err)
		}
		g.view.AddWAL(WALObjectInfo{Ts: ts, Filename: p, Offset: 0, Size: int64(len(sealed))})
	}
	// The boot dump takes the reserved timestamp 0, so that recovery's
	// "WAL newer than the newest DB object" rule keeps the boot segments.
	// The DBMS is not running yet, so the plan's lazy file ranges are
	// stable without the dump gate; the parts stream through the same
	// bounded uploader pool as steady-state dumps.
	plan, err := planDump(g.localFS, g.proc, partBudget(g.params.MaxObjectSize))
	if err != nil {
		return fmt.Errorf("core: boot dump: %w", err)
	}
	up := newPartUploader(g.localFS, g.seal, g.params, g.tracker, g.putWithRetry)
	sizes, err := up.upload(ctx, DBObjectInfo{Ts: 0, Gen: 0, Type: Dump}, plan, nil)
	if err != nil {
		return fmt.Errorf("core: boot dump: %w", err)
	}
	var size int64
	for _, s := range sizes {
		size += s
	}
	info := DBObjectInfo{Ts: 0, Gen: 0, Type: Dump, Size: size}
	if len(plan) > 1 {
		info.Parts = len(plan)
		info.PartSizes = sizes
	}
	if err := g.view.AddDB(info); err != nil {
		return err
	}
	g.params.logger().Info("ginja boot complete",
		"wal_objects", len(g.view.WALObjects()), "dump_bytes", size, "dump_parts", len(plan))
	g.start()
	// The boot dump can seed the delta chain: the DBMS has not run yet, so
	// the fresh dirty map has missed nothing. (Reboot/Recover must not seed
	// — their newest dump predates this process's dirty tracking.)
	g.ckpt.noteChainBase(0, 0)
	return nil
}

// Reboot resumes protection after a safe stop: the cloud is assumed to be
// synchronized with the local files, so only the cloudView needs to be
// rebuilt from a LIST (Algorithm 1, Reboot mode).
func (g *Ginja) Reboot(ctx context.Context) error {
	if g.started {
		return errors.New("core: already started")
	}
	infos, err := g.listWithRetry(ctx)
	if err != nil {
		return fmt.Errorf("core: reboot list: %w", err)
	}
	if err := g.view.LoadFromList(infos); err != nil {
		return err
	}
	g.params.logger().Info("ginja reboot complete",
		"wal_objects", len(g.view.WALObjects()), "db_objects", len(g.view.DBObjects()))
	g.start()
	return nil
}

// Recover rebuilds the local database files from the cloud (Algorithm 1,
// Recovery mode): newest dump, then incremental checkpoints in timestamp
// order, then the WAL objects with consecutive timestamps. After Recover
// returns, the DBMS can be started on FS() and will complete its own
// crash recovery from the rebuilt files.
func (g *Ginja) Recover(ctx context.Context) error {
	if g.started {
		return errors.New("core: already started")
	}
	bd, err := g.recoverInto(ctx, g.localFS, -1, "recover")
	if err != nil {
		return err
	}
	g.params.logger().Info("ginja recovery complete",
		"wal_objects", len(g.view.WALObjects()), "db_objects", len(g.view.DBObjects()),
		"rto_ms", bd.Total.Milliseconds(), "fetched_bytes", bd.Bytes)
	g.start()
	return nil
}

// RecoverAt rebuilds the local files to the exact consistent prefix of
// the commit history up to and including WAL timestamp ts: the newest
// retained dump at or before ts, the incremental checkpoints up to ts,
// then the consecutive WAL run ending at ts. Any ts whose objects are
// still retained (Params.RetainFor / PITRGenerations) is a valid
// recovery point; a ts older than the retention window fails with
// ErrNoDump. ts = -1 recovers the newest state (like Recover, but onto
// target). RecoverAt does NOT start replication — point-in-time restores
// are for inspection or fork-off, not for resuming the production
// timeline.
func (g *Ginja) RecoverAt(ctx context.Context, target vfs.FS, ts int64) error {
	if ts < -1 {
		return fmt.Errorf("core: RecoverAt target ts must be ≥ 0 (or -1 for newest), got %d", ts)
	}
	_, err := g.recoverInto(ctx, target, ts, "recover_at")
	return err
}

// recoverInto runs the full recovery sequence — LIST, CloudView build,
// restore, verify — onto target with every phase timed, publishing the
// resulting RecoveryBreakdown (Stats.LastRecovery, the
// ginja_recovery_phase_seconds histogram and "recovery:*" spans).
func (g *Ginja) recoverInto(ctx context.Context, target vfs.FS, upTo int64, mode string) (*RecoveryBreakdown, error) {
	clk := g.params.clock()
	started := clk.Now()
	bd := &RecoveryBreakdown{Mode: mode}

	t := clk.Now()
	infos, err := g.listWithRetry(ctx)
	if err != nil {
		return nil, fmt.Errorf("core: recover list: %w", err)
	}
	bd.List = clk.Since(t)

	t = clk.Now()
	if err := g.view.LoadFromList(infos); err != nil {
		return nil, err
	}
	bd.ViewBuild = clk.Since(t)

	if err := g.restoreTo(ctx, target, upTo, bd); err != nil {
		return nil, err
	}

	t = clk.Now()
	files, bytes, err := verifyRestore(target)
	if err != nil {
		return nil, fmt.Errorf("core: recover verify: %w", err)
	}
	bd.Verify = clk.Since(t)
	bd.VerifiedFiles, bd.VerifiedBytes = files, bytes

	bd.Total = clk.Since(started)
	g.lastRecovery.Store(bd)
	observeRecovery(g.params.Metrics, bd, started)
	return bd, nil
}

// restoreTo applies dump + checkpoints + WAL onto target, accumulating
// the fetch/decode/apply phase timings into bd. upTo bounds the restore
// to the consistent prefix ending at that WAL timestamp (-1 = no bound,
// restore the newest state): the plan takes the newest dump at or before
// upTo, the checkpoints between it and upTo, and the consecutive WAL run
// stopping at upTo inclusive.
//
// The restore plan — which objects, in which order — is computed up front
// from the view, then executed with prefetchInOrder: up to
// RecoveryFetchers parallel GETs hide per-request cloud latency while
// every object is still applied strictly in plan order (dump, then
// checkpoints by (Ts, Gen), then the consecutive-timestamp WAL run). Only
// the downloads overlap; the file-write side is identical to a serial
// restore.
func (g *Ginja) restoreTo(ctx context.Context, target vfs.FS, upTo int64, bd *RecoveryBreakdown) error {
	var (
		dump  DBObjectInfo
		found bool
	)
	for _, d := range g.view.DBObjects() { // (Ts, Gen) ascending
		if d.Type == Dump && (upTo < 0 || d.Ts <= upTo) {
			dump = d // newest qualifying dump wins
			found = true
		}
	}
	if !found {
		if upTo < 0 {
			return ErrNoDump
		}
		return fmt.Errorf("core: no dump at or before ts %d (outside the retention window): %w", upTo, ErrNoDump)
	}

	// An item is one DB or WAL object. For legacy whole-sealed objects the
	// parts concatenate in order before the envelope opens; for part-sealed
	// objects (partSealed) every fetched part is its own envelope, opened
	// and applied as it arrives — no reassembly buffer.
	type restoreItem struct {
		label      string
		names      []string
		partSealed bool
	}

	// 1. The dump (Algorithm 1 lines 27-29).
	items := []restoreItem{{label: fmt.Sprintf("DB ts=%d", dump.Ts), names: dump.PartNames(), partSealed: dump.PartSealed()}}
	// 2. The delta chain rooted at the selected dump, and incremental
	// checkpoints after the dump, all in (Ts, Gen) order (lines 30-36).
	// Chain membership follows the `.b` back-pointers forward from the
	// dump; a delta rooted elsewhere (an older base the view still lists)
	// is not part of this restore. Applying a still-retained checkpoint
	// before the delta that superseded it is harmless — the delta
	// recaptures every range those checkpoints dirtied — and order by
	// (Ts, Gen) guarantees the delta lands after. When restoring to a
	// point in time (upTo >= 0), only objects covering WAL up to the
	// target participate; a chain prefix is itself a consistent cut.
	objs := g.view.DBObjects() // (Ts, Gen) ascending
	inChain := map[dbKey]bool{{ts: dump.Ts, gen: dump.Gen}: true}
	tip := dump
	for {
		found := false
		for _, d := range objs {
			if d.Type != Delta || d.BaseTs != tip.Ts || d.BaseGen != tip.Gen || !tip.Before(d) {
				continue
			}
			if upTo >= 0 && d.Ts > upTo {
				continue
			}
			inChain[dbKey{ts: d.Ts, gen: d.Gen}] = true
			tip = d
			found = true
			break // ascending scan: first successor is the canonical one
		}
		if !found {
			break
		}
	}
	maxCkptTs := dump.Ts
	for _, d := range objs {
		if !dump.Before(d) {
			continue
		}
		if upTo >= 0 && d.Ts > upTo {
			continue
		}
		switch d.Type {
		case Checkpoint:
		case Delta:
			if !inChain[dbKey{ts: d.Ts, gen: d.Gen}] {
				continue
			}
		default:
			continue
		}
		items = append(items, restoreItem{label: fmt.Sprintf("DB ts=%d", d.Ts), names: d.PartNames(), partSealed: d.PartSealed()})
		if d.Ts > maxCkptTs {
			maxCkptTs = d.Ts
		}
	}
	// 3. WAL objects with consecutive timestamps (lines 37-40). A gap —
	// an object lost mid-upload when the disaster struck — ends the
	// replay; this is exactly what bounds data loss to S. The run stops at
	// upTo inclusive, which is what makes RecoverAt(ts) the exact prefix
	// ≤ ts rather than the nearest checkpoint.
	wal := g.view.WALObjects()
	byTs := make(map[int64]WALObjectInfo, len(wal))
	for _, w := range wal {
		byTs[w.Ts] = w
	}
	for ts := maxCkptTs + 1; ; ts++ {
		if upTo >= 0 && ts > upTo {
			break
		}
		w, ok := byTs[ts]
		if !ok {
			break
		}
		items = append(items, restoreItem{label: w.Name(), names: []string{w.Name()}})
		bd.WALObjects++
	}
	bd.DumpTs = dump.Ts

	// Flatten the plan to one fetch list; itemOf maps each flattened index
	// back to its item so the applier knows when an object is complete.
	var (
		names  []string
		itemOf []int
	)
	for idx, it := range items {
		for _, n := range it.names {
			names = append(names, n)
			itemOf = append(itemOf, idx)
		}
	}
	bd.Objects = len(names)
	clk := g.params.clock()
	// Fetchers run in parallel, so their phase accounting is atomic;
	// decode/apply accumulate into bd directly because prefetchInOrder
	// calls apply strictly sequentially.
	var fetchNanos, fetchBytes atomic.Int64
	fetch := func(ctx context.Context, name string) ([]byte, error) {
		start := clk.Now()
		g.recInflight.enter()
		data, err := g.getWithRetry(ctx, name)
		g.recInflight.exit()
		if err != nil {
			return nil, fmt.Errorf("core: recover %s: %w", name, err)
		}
		d := clk.Since(start)
		fetchNanos.Add(int64(d))
		fetchBytes.Add(int64(len(data)))
		if g.recFetch != nil {
			g.recFetch.ObserveDuration(d)
		}
		return data, nil
	}
	var sealed []byte // parts of the in-progress legacy item, concatenated
	openAndApply := func(label string, env []byte) error {
		decStart := clk.Now()
		payload, err := g.seal.Open(env)
		if err != nil {
			return fmt.Errorf("core: recover %s: %w", label, err)
		}
		writes, err := DecodeWrites(payload)
		if err != nil {
			return fmt.Errorf("core: recover %s: %w", label, err)
		}
		applyStart := clk.Now()
		bd.Decode += applyStart.Sub(decStart)
		err = applyWrites(target, writes)
		bd.Apply += clk.Since(applyStart)
		return err
	}
	apply := func(i int, data []byte) error {
		it := items[itemOf[i]]
		if it.partSealed {
			// Each part is a complete envelope: decode and apply it as it
			// arrives (in plan order, so a whole-file head chunk truncates
			// before its continuation chunks append).
			return openAndApply(it.label, data)
		}
		sealed = append(sealed, data...)
		if i+1 < len(names) && itemOf[i+1] == itemOf[i] {
			return nil // more parts of this object still to come
		}
		env := sealed
		sealed = sealed[:0]
		return openAndApply(it.label, env)
	}
	err := prefetchInOrder(ctx, g.params.RecoveryFetchers, names, fetch, apply)
	bd.Fetch = time.Duration(fetchNanos.Load())
	bd.Bytes = fetchBytes.Load()
	return err
}

// applyDBObject downloads (all parts of) a DB object and applies it.
// Part-sealed parts open and apply one by one; legacy parts reassemble
// into the single envelope first.
func (g *Ginja) applyDBObject(ctx context.Context, target vfs.FS, d DBObjectInfo) error {
	open := func(env []byte) error {
		payload, err := g.seal.Open(env)
		if err != nil {
			return fmt.Errorf("core: recover DB ts=%d: %w", d.Ts, err)
		}
		writes, err := DecodeWrites(payload)
		if err != nil {
			return fmt.Errorf("core: recover DB ts=%d: %w", d.Ts, err)
		}
		return applyWrites(target, writes)
	}
	var sealed []byte
	for _, name := range d.PartNames() {
		part, err := g.getWithRetry(ctx, name)
		if err != nil {
			return fmt.Errorf("core: recover %s: %w", name, err)
		}
		if d.PartSealed() {
			if err := open(part); err != nil {
				return err
			}
			continue
		}
		sealed = append(sealed, part...)
	}
	if d.PartSealed() {
		return nil
	}
	return open(sealed)
}

// putWithRetry uploads an object, absorbing transient cloud failures
// (used by Boot; steady-state uploads retry inside the pipeline).
func (g *Ginja) putWithRetry(ctx context.Context, name string, data []byte) error {
	return storePutWithRetry(ctx, g.store, g.params, name, data)
}

// listWithRetry lists the store, absorbing transient cloud failures.
func (g *Ginja) listWithRetry(ctx context.Context) ([]cloud.ObjectInfo, error) {
	return storeListWithRetry(ctx, g.store, g.params)
}

// getWithRetry downloads an object, absorbing transient cloud failures
// with the same retry policy as uploads. ErrNotFound is permanent and is
// returned immediately.
func (g *Ginja) getWithRetry(ctx context.Context, name string) ([]byte, error) {
	return storeGetWithRetry(ctx, g.store, g.params, name)
}

// storePutWithRetry / storeListWithRetry / storeGetWithRetry are the one
// shared retry policy for direct store operations (exponential backoff
// from RetryBaseDelay on the configured clock, jittered per retryJitter,
// bounded by UploadRetries, 0 = retry forever): Ginja's boot/recovery
// paths and the warm-standby Follower all speak to the cloud through
// these.
func storePutWithRetry(ctx context.Context, store cloud.ObjectStore, p Params, name string, data []byte) error {
	delay := retryStartDelay(p)
	clk := p.clock()
	for attempt := 0; ; attempt++ {
		err := store.Put(ctx, name, data)
		if err == nil || ctx.Err() != nil {
			return err
		}
		if p.UploadRetries > 0 && attempt+1 >= p.UploadRetries {
			return err
		}
		if simclock.SleepCtx(ctx, clk, retryJitter(delay, name, attempt, clk.Now())) != nil {
			return err
		}
		if delay < maxRetryDelay {
			delay *= 2
		}
	}
}

func storeListWithRetry(ctx context.Context, store cloud.ObjectStore, p Params) ([]cloud.ObjectInfo, error) {
	delay := retryStartDelay(p)
	clk := p.clock()
	for attempt := 0; ; attempt++ {
		infos, err := store.List(ctx, "")
		if err == nil || ctx.Err() != nil {
			return infos, err
		}
		if p.UploadRetries > 0 && attempt+1 >= p.UploadRetries {
			return nil, err
		}
		if simclock.SleepCtx(ctx, clk, retryJitter(delay, "LIST", attempt, clk.Now())) != nil {
			return nil, err
		}
		if delay < maxRetryDelay {
			delay *= 2
		}
	}
}

// storeGetWithRetry treats cloud.ErrNotFound as permanent and returns it
// immediately.
func storeGetWithRetry(ctx context.Context, store cloud.ObjectStore, p Params, name string) ([]byte, error) {
	delay := retryStartDelay(p)
	clk := p.clock()
	for attempt := 0; ; attempt++ {
		data, err := store.Get(ctx, name)
		if err == nil || errors.Is(err, cloud.ErrNotFound) || ctx.Err() != nil {
			return data, err
		}
		if p.UploadRetries > 0 && attempt+1 >= p.UploadRetries {
			return nil, err
		}
		if simclock.SleepCtx(ctx, clk, retryJitter(delay, name, attempt, clk.Now())) != nil {
			return nil, err
		}
		if delay < maxRetryDelay {
			delay *= 2
		}
	}
}

func retryStartDelay(p Params) time.Duration {
	if p.RetryBaseDelay < minRetryDelay {
		return minRetryDelay
	}
	return p.RetryBaseDelay
}

// applyWrites replays file writes locally (Algorithm 1's writeLocally).
func applyWrites(target vfs.FS, writes []FileWrite) error {
	for _, w := range writes {
		if w.Whole {
			if err := vfs.WriteFile(target, w.Path, w.Data); err != nil {
				return err
			}
			continue
		}
		if err := vfs.WriteAt(target, w.Path, w.Offset, w.Data); err != nil {
			return err
		}
	}
	return nil
}

// start launches the replication threads (Algorithm 1 lines 2-6).
func (g *Ginja) start() {
	g.pipe = newPipeline(g.view, g.store, g.seal, g.params)
	g.pipe.start(g.view.LastWALTs())
	g.ckpt = newCheckpointer(g.localFS, g.proc, g.view, g.store, g.seal, g.params, g.tracker)
	g.ckpt.start()
	g.started = true
	if reg := g.params.Metrics; reg != nil {
		// "pipeline" answers /healthz: alive until a fatal replication
		// error rejects commits (re-registering rebinds it to this
		// instance when a registry outlives a Ginja).
		reg.RegisterHealth("pipeline", func() error {
			if g.closed {
				return errors.New("core: ginja closed")
			}
			return g.Err()
		})
	}
}

// SyncCheckpoints blocks until every checkpoint and dump triggered so far
// has been fully processed — uploaded, recorded, and its garbage-collection
// sweep finished — or until the timeout elapses (returning false). It is
// the deterministic barrier for tests and operators who would otherwise
// poll Stats counters that move mid-sweep (the upload is counted before
// its GC runs). Returns true immediately if replication has not started.
func (g *Ginja) SyncCheckpoints(timeout time.Duration) bool {
	if g.ckpt == nil {
		return true
	}
	return g.ckpt.sync(timeout)
}

// OnBeforeWrite implements vfs.Observer: data-class writes block here
// while a streaming dump's or delta's local reads are in flight (§5.3:
// Ginja stops local DB writes during dump creation) — but only writes to
// files the active plans actually read lazily; everything else sails
// through. The hook fires before the write lands, so no page can change
// under a plan's file ranges.
func (g *Ginja) OnBeforeWrite(path string, off int64, data []byte) {
	if !g.started || g.closed || g.ckpt == nil {
		return
	}
	if g.proc.FileKind(path) != dbevent.KindData {
		return
	}
	g.ckpt.waitGate(path)
}

// OnWrite implements vfs.Observer: classify the write and route it to the
// commit pipeline or the checkpointer. WAL writes block here until the
// Safety contract is satisfied.
func (g *Ginja) OnWrite(path string, off int64, data []byte) {
	if !g.started || g.closed {
		return
	}
	ev := g.proc.Classify(path, off, data)
	switch ev.Type {
	case dbevent.UpdateCommit:
		// Errors surface via Err(); the write itself already succeeded
		// locally, and blocking semantics are handled inside submit.
		g.pipe.submit(path, off, data) //nolint:errcheck
	case dbevent.CheckpointBegin, dbevent.CheckpointData, dbevent.CheckpointEnd:
		g.ckpt.handle(ev)
	}
}

// OnSync implements vfs.Observer (no action needed: classification happens
// on writes).
func (g *Ginja) OnSync(string) {}

// OnTruncate implements vfs.Observer: a truncated data file can no longer
// be described by dirty ranges, so the next delta must recapture it whole
// (applyWrites replays whole-file entries with a truncating WriteFile, so
// the shrink replicates correctly).
func (g *Ginja) OnTruncate(path string, size int64) {
	if !g.started || g.closed || g.ckpt == nil {
		return
	}
	if g.proc.FileKind(path) != dbevent.KindData {
		return
	}
	g.ckpt.handleTruncate(path)
}

// OnRemove implements vfs.Observer.
func (g *Ginja) OnRemove(string) {}

// Err returns the first fatal replication error, if any.
func (g *Ginja) Err() error {
	if g.pipe == nil {
		return nil
	}
	if err := g.pipe.lastErr(); err != nil {
		return err
	}
	if g.ckpt != nil {
		return g.ckpt.lastErr()
	}
	return nil
}

// PendingUpdates returns the number of updates not yet acknowledged by
// the cloud (the quantity bounded by S).
func (g *Ginja) PendingUpdates() int {
	if g.pipe == nil {
		return 0
	}
	return g.pipe.q.size()
}

// RPO returns the live durability watermark: the age of the oldest update
// not yet acknowledged by the cloud, i.e. how much committed work would be
// lost if the disaster struck now. Zero when the cloud holds everything
// (or replication has not started). The watermark advances exactly when
// the Unlocker releases updates on cloud acknowledgement — never on
// enqueue — so it is the paper's `e_dl` measured rather than bounded.
func (g *Ginja) RPO() time.Duration {
	if g.pipe == nil {
		return 0
	}
	at, ok := g.pipe.q.oldestPendingAt()
	if !ok {
		return 0
	}
	return g.pipe.clk.Since(at)
}

// Flush waits until every pending commit has been uploaded (bounded by
// timeout) and reports whether the queue drained.
func (g *Ginja) Flush(timeout time.Duration) bool {
	if g.pipe == nil {
		return true
	}
	// A fatally-failed pipeline can never drain; report failure at once
	// instead of sleeping out the caller's timeout.
	if g.pipe.lastErr() != nil {
		return false
	}
	return g.pipe.q.drain(timeout)
}

// Stats returns a snapshot of activity counters.
func (g *Ginja) Stats() Stats {
	var s Stats
	if g.pipe != nil {
		s.UpdatesObserved = g.pipe.stats.updates.Load()
		s.Batches = g.pipe.stats.batches.Load()
		s.WALObjectsUploaded = g.pipe.stats.walObjects.Load()
		s.WALBytesUploaded = g.pipe.stats.walBytes.Load()
		s.WALBytesRaw = g.pipe.stats.rawBytes.Load()
		s.UploadRetries = g.pipe.stats.retries.Load()
		s.PackedWALObjects = g.pipe.stats.packedObjects.Load()
		s.SplitWALWrites = g.pipe.stats.splitWrites.Load()
		s.BlockedTime = g.pipe.q.blockedDuration()
	}
	if g.ckpt != nil {
		s.Checkpoints = g.ckpt.stats.checkpoints.Load()
		s.Dumps = g.ckpt.stats.dumps.Load()
		s.Deltas = g.ckpt.stats.deltas.Load()
		s.DeltaChainLen = g.ckpt.deltaChainLen()
		s.CheckpointBytesSaved = g.ckpt.stats.bytesSaved.Load()
		s.DumpGateBlockedTime = time.Duration(g.ckpt.stats.gateBlockedNanos.Load())
		s.DBObjectsUploaded = g.ckpt.stats.dbObjects.Load()
		s.DBBytesUploaded = g.ckpt.stats.dbBytes.Load()
		s.WALObjectsDeleted = g.ckpt.stats.walDeleted.Load()
		s.DBObjectsDeleted = g.ckpt.stats.dbDeleted.Load()
		s.CheckpointBytesBuffered = g.ckpt.bufBytes.Load()
	}
	if g.tracker != nil {
		s.PeakStreamBytes = g.tracker.peak.Load()
	}
	s.RPO = g.RPO()
	s.SafetyLimit = g.params.Safety
	s.SafetyTimeout = g.params.SafetyTimeout
	s.EffectiveBatch = g.params.Batch
	s.EffectiveBatchTimeout = g.params.BatchTimeout
	if g.pipe != nil {
		if t := g.pipe.tuner; t != nil {
			k := t.snapshot()
			s.EffectiveBatch = k.batch
			s.EffectiveBatchTimeout = k.timeout
			s.FittedPutLatency = k.putLatency
		}
	}
	s.LastRecovery = g.lastRecovery.Load()
	if err := g.Err(); err != nil {
		s.LastError = err.Error()
	}
	return s
}

// Close drains pending work (bounded) and stops the replication threads.
// The DBMS must be stopped before calling Close for a "safe stop" in the
// Reboot sense.
func (g *Ginja) Close() error {
	if !g.started || g.closed {
		return nil
	}
	g.closed = true
	var firstErr error
	if err := g.pipe.drainAndStop(30 * time.Second); err != nil && !errors.Is(err, ErrQueueClosed) {
		firstErr = err
	}
	if err := g.ckpt.stop(30 * time.Second); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
