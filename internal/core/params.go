package core

import (
	"errors"
	"fmt"
	"log/slog"
	"strings"
	"time"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/obs"
	"github.com/ginja-dr/ginja/internal/simclock"
)

// Default parameter values. Batch/Safety defaults follow the paper's
// recommended "B substantially lower than S" shape (§5.1); the object size
// cap and dump threshold are the paper's (§5.2 footnote, §5.3).
const (
	DefaultBatch          = 100
	DefaultSafety         = 1000
	DefaultBatchTimeout   = 10 * time.Second
	DefaultSafetyTimeout  = 60 * time.Second
	DefaultUploaders      = 5 // "five Uploader threads ... the best setup" (§8)
	DefaultMaxObjectSize  = 20 << 20
	DefaultDumpThreshold  = 1.5
	DefaultUploadRetries  = 8
	DefaultRetryBaseDelay = 50 * time.Millisecond
	DefaultFollowInterval = 1 * time.Second
	DefaultRetainObjects  = 4096
	// Delta-checkpoint bounds (BtrLog-style): the chain is folded into a
	// fresh full dump when it grows past DefaultMaxDeltaChain elements or
	// its summed payload exceeds DefaultDeltaCompactRatio of the local
	// database size — keeping recovery work bounded.
	DefaultMaxDeltaChain     = 64
	DefaultDeltaCompactRatio = 0.5
)

// Params is Ginja's user-facing configuration (§5.1): the Batch (B, TB)
// and Safety (S, TS) knobs plus operational tuning.
type Params struct {
	// Batch (B) is the maximum number of database updates included in
	// each cloud synchronization.
	Batch int
	// Safety (S) is the maximum number of database updates that can be
	// lost in a disaster; commits block beyond it.
	Safety int
	// BatchTimeout (TB) uploads a partial batch if it is non-empty and
	// this much time has elapsed since the last synchronization.
	BatchTimeout time.Duration
	// SafetyTimeout (TS) blocks commits if non-synchronized updates have
	// been pending for this long.
	SafetyTimeout time.Duration
	// Uploaders is the number of parallel upload threads.
	Uploaders int
	// CheckpointUploaders bounds the parallel PUTs used for the parts of
	// one dump/checkpoint DB object, and the parallel DELETEs used by
	// garbage collection. 0 means "same as Uploaders". The cloudView only
	// learns about a DB object after every part is durable, so raising
	// this never weakens the recovery invariants.
	CheckpointUploaders int
	// RecoveryFetchers bounds the parallel GETs used to prefetch DB-object
	// parts and WAL objects during Recover/RecoverAt. Objects are still
	// applied strictly in (Ts, Gen) / consecutive-timestamp order; only
	// the downloads overlap. 0 means "same as Uploaders".
	RecoveryFetchers int
	// MaxObjectSize splits any larger object into parts (optimises upload
	// latency, §5.2 footnote).
	MaxObjectSize int64
	// DumpThreshold triggers a new dump when the cloud DB objects exceed
	// this multiple of the local database size (1.5 in the paper).
	DumpThreshold float64
	// DeltaCheckpoints replaces most DumpThreshold-triggered full re-dumps
	// with delta objects: sparse copies of only the byte ranges dirtied
	// since the last chain element, tracked page-granular by the vfs
	// observer. Checkpoint bytes — and the stop-writes dump window — then
	// scale with write volume instead of database size. Recovery resolves
	// the chain (base dump + ordered deltas) back to the materialized
	// state; a background fold turns the chain into a fresh full dump when
	// it outgrows MaxDeltaChain or DeltaCompactRatio.
	DeltaCheckpoints bool
	// MaxDeltaChain bounds the number of delta objects hanging off one
	// base dump before the next DumpThreshold crossing is served by a full
	// fold dump instead (BtrLog-style bounded recovery work). 0 means
	// DefaultMaxDeltaChain. Only used with DeltaCheckpoints.
	MaxDeltaChain int
	// DeltaCompactRatio folds the chain early: when the chain's summed
	// payload plus the next delta would exceed this fraction of the local
	// database size, the next chain element is a full dump. 0 means
	// DefaultDeltaCompactRatio. Only used with DeltaCheckpoints.
	DeltaCompactRatio float64
	// UploadRetries bounds per-object retry attempts before Ginja
	// declares the backup broken (0 = retry forever).
	UploadRetries int
	// RetryBaseDelay is the initial exponential-backoff delay.
	RetryBaseDelay time.Duration
	// Compress/Encrypt/Password configure the object envelope (§5.4).
	Compress bool
	Encrypt  bool
	Password string
	// PITRGenerations keeps the N most recent dump generations (each dump
	// plus its incremental checkpoints) instead of garbage-collecting
	// them, enabling point-in-time recovery (§5.4). 0 disables retention.
	PITRGenerations int
	// RetainFor is the point-in-time recovery window: objects superseded
	// by garbage collection (WAL covered by a checkpoint, generations
	// retired by a dump) stay in the cloud until they have been superseded
	// for this long, so RecoverAt(ts) can rebuild the exact consistent
	// prefix for any ts committed inside the window. 0 disables the window
	// (superseded objects are deleted immediately, today's behaviour).
	// Retention composes with PITRGenerations: an object is deleted only
	// when both policies allow it.
	RetainFor time.Duration
	// RetainObjects caps how many superseded objects the retention window
	// may hold (BtrLog-style bounded chain length: recovery work is
	// bounded even if RetainFor outpaces the trimmer). When the cap is
	// exceeded, the oldest-superseded objects are trimmed early. 0 means
	// DefaultRetainObjects. Only meaningful with RetainFor > 0.
	RetainObjects int
	// FollowInterval is the warm-standby poll cadence: a Follower LISTs
	// the bucket this often and applies whatever new objects completed.
	// 0 means DefaultFollowInterval. Only used by NewFollower.
	FollowInterval time.Duration
	// AdaptiveBatching replaces the static Batch/BatchTimeout knobs with
	// an online controller that fits the observed PUT latency-vs-size
	// curve and continuously re-solves for the (B, TB) minimizing
	// expected commit latency under CostCeilingPerDay. Batch then serves
	// as the initial value and BatchTimeout as the worst-case timeout cap;
	// Safety/SafetyTimeout semantics are unchanged and the effective batch
	// never exceeds Safety.
	AdaptiveBatching bool
	// CostCeilingPerDay is the adaptive controller's spend budget in
	// dollars per day, evaluated with the costmodel package against the
	// measured update rate and Prices. 0 means DefaultCostCeilingPerDay
	// (the paper's $1/month). Only used with AdaptiveBatching.
	CostCeilingPerDay float64
	// Prices is the cloud price sheet the controller budgets against.
	// The zero value means cloud.AmazonS3May2017().
	Prices cloud.PriceSheet
	// DisablePipelining makes the uploader seal and PUT each WAL object
	// in one sequential stage (the pre-pipelining behaviour) instead of
	// overlapping encode+seal of batch N+1 with the in-flight PUT of
	// batch N. Exists only for the ablation benchmarks quantifying what
	// the overlap buys; never enable it in production.
	DisablePipelining bool
	// DisableAggregation turns off the coalescing of page rewrites before
	// upload (one object per intercepted write). Exists only for the
	// ablation benchmarks quantifying how much aggregation saves; never
	// enable it in production. It implies DisablePacking, preserving its
	// one-object-per-write contract.
	DisableAggregation bool
	// DisablePacking turns off WAL batch packing: instead of filling
	// multi-write objects up to MaxObjectSize (one PUT per batch in the
	// common case), each merged write-run becomes its own WAL object — the
	// pre-packing behaviour. Exists only for the ablation benchmarks
	// (BENCH_commitpath.json) quantifying what packing saves; never enable
	// it in production.
	DisablePacking bool
	// Logger receives structured operational events (uploads, garbage
	// collection, recovery progress, retries) including the per-batch
	// trace spans that follow a commit from FS interception to cloud ack.
	// nil disables logging.
	Logger *slog.Logger
	// Metrics receives live telemetry (per-stage pipeline latencies,
	// queue-depth gauges, cloud-operation counters) when non-nil; expose
	// it with obs.Handler. nil disables instrumentation at near-zero cost.
	Metrics *obs.Registry
	// Clock supplies every timer and timestamp Ginja takes: the Batch and
	// Safety timeouts, upload-retry backoff and checkpoint scheduling all
	// draw from it. nil means the wall clock; deterministic simulation
	// tests install a *simclock.SimClock to run those paths in virtual
	// time (see internal/sim), and Fleet installs a shared tick wheel so
	// thousands of tenants multiplex their timers onto one goroutine.
	Clock simclock.Clock
	// Prefix roots every cloud object name under this key prefix, so many
	// databases (fleet tenants) can share one bucket without their WAL/DB
	// namespaces colliding: object naming, LIST diffing, garbage
	// collection and recovery all operate inside the prefix and never
	// observe objects outside it. The prefix is validated — "", or
	// "/"-separated segments of [A-Za-z0-9._-] with no ".." and no leading
	// or trailing "/" — so one tenant's prefix can never alias another's
	// objects. "" (the default) keeps today's whole-bucket behaviour.
	Prefix string
}

// DefaultParams returns the paper-flavoured defaults (B=100, S=1000).
func DefaultParams() Params {
	return Params{
		Batch:          DefaultBatch,
		Safety:         DefaultSafety,
		BatchTimeout:   DefaultBatchTimeout,
		SafetyTimeout:  DefaultSafetyTimeout,
		Uploaders:      DefaultUploaders,
		MaxObjectSize:  DefaultMaxObjectSize,
		DumpThreshold:  DefaultDumpThreshold,
		UploadRetries:  DefaultUploadRetries,
		RetryBaseDelay: DefaultRetryBaseDelay,
	}
}

// Validate checks internal consistency and fills zero values with
// defaults, returning the normalised parameters.
func (p Params) Validate() (Params, error) {
	d := DefaultParams()
	if p.Batch == 0 {
		p.Batch = d.Batch
	}
	if p.Safety == 0 {
		p.Safety = d.Safety
	}
	if p.BatchTimeout == 0 {
		p.BatchTimeout = d.BatchTimeout
	}
	if p.SafetyTimeout == 0 {
		p.SafetyTimeout = d.SafetyTimeout
	}
	if p.Uploaders == 0 {
		p.Uploaders = d.Uploaders
	}
	if p.CheckpointUploaders == 0 {
		p.CheckpointUploaders = p.Uploaders
	}
	if p.RecoveryFetchers == 0 {
		p.RecoveryFetchers = p.Uploaders
	}
	if p.MaxObjectSize == 0 {
		p.MaxObjectSize = d.MaxObjectSize
	}
	if p.DumpThreshold == 0 {
		p.DumpThreshold = d.DumpThreshold
	}
	if p.MaxDeltaChain == 0 {
		p.MaxDeltaChain = DefaultMaxDeltaChain
	}
	if p.DeltaCompactRatio == 0 {
		p.DeltaCompactRatio = DefaultDeltaCompactRatio
	}
	if p.RetryBaseDelay == 0 {
		p.RetryBaseDelay = d.RetryBaseDelay
	}
	if p.RetainObjects == 0 {
		p.RetainObjects = DefaultRetainObjects
	}
	if p.FollowInterval == 0 {
		p.FollowInterval = DefaultFollowInterval
	}
	if p.CostCeilingPerDay == 0 {
		p.CostCeilingPerDay = DefaultCostCeilingPerDay
	}
	if p.Prices == (cloud.PriceSheet{}) {
		p.Prices = cloud.AmazonS3May2017()
	}
	if p.Batch < 1 {
		return p, fmt.Errorf("core: Batch must be ≥ 1, got %d", p.Batch)
	}
	if p.Safety < p.Batch {
		return p, fmt.Errorf("core: Safety (%d) must be ≥ Batch (%d)", p.Safety, p.Batch)
	}
	if p.Uploaders < 1 {
		return p, fmt.Errorf("core: Uploaders must be ≥ 1, got %d", p.Uploaders)
	}
	if p.CheckpointUploaders < 1 {
		return p, fmt.Errorf("core: CheckpointUploaders must be ≥ 1, got %d", p.CheckpointUploaders)
	}
	if p.RecoveryFetchers < 1 {
		return p, fmt.Errorf("core: RecoveryFetchers must be ≥ 1, got %d", p.RecoveryFetchers)
	}
	if p.DumpThreshold < 1 {
		return p, fmt.Errorf("core: DumpThreshold must be ≥ 1, got %v", p.DumpThreshold)
	}
	if p.MaxDeltaChain < 1 {
		return p, fmt.Errorf("core: MaxDeltaChain must be ≥ 1 (0 = default), got %d", p.MaxDeltaChain)
	}
	if p.DeltaCompactRatio < 0 {
		return p, fmt.Errorf("core: DeltaCompactRatio must be > 0 (0 = default), got %v", p.DeltaCompactRatio)
	}
	if p.Encrypt && p.Password == "" {
		return p, errors.New("core: Encrypt requires Password")
	}
	if p.PITRGenerations < 0 {
		return p, fmt.Errorf("core: PITRGenerations must be ≥ 0, got %d", p.PITRGenerations)
	}
	if p.RetainFor < 0 {
		return p, fmt.Errorf("core: RetainFor must be ≥ 0, got %v", p.RetainFor)
	}
	if p.RetainObjects < 1 {
		return p, fmt.Errorf("core: RetainObjects must be ≥ 1, got %d", p.RetainObjects)
	}
	if p.FollowInterval < 0 {
		return p, fmt.Errorf("core: FollowInterval must be ≥ 0 (0 = default), got %v", p.FollowInterval)
	}
	if p.CostCeilingPerDay < 0 {
		return p, fmt.Errorf("core: CostCeilingPerDay must be ≥ 0 (0 = default), got %v", p.CostCeilingPerDay)
	}
	if err := ValidatePrefix(p.Prefix); err != nil {
		return p, err
	}
	return p, nil
}

// ValidatePrefix checks a Params.Prefix: "" is valid (no prefixing);
// otherwise the prefix must be "/"-separated non-empty segments drawn
// from [A-Za-z0-9._-], with no ".." anywhere and no leading or trailing
// "/". The restrictions guarantee a prefix can never escape the bucket
// namespace (path traversal) or splice into another tenant's keys.
func ValidatePrefix(prefix string) error {
	if prefix == "" {
		return nil
	}
	if strings.Contains(prefix, "..") {
		return fmt.Errorf("core: Prefix %q must not contain %q", prefix, "..")
	}
	if strings.HasPrefix(prefix, "/") {
		return fmt.Errorf("core: Prefix %q must not start with /", prefix)
	}
	for _, r := range prefix {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '/', r == '-':
		default:
			return fmt.Errorf("core: Prefix %q contains %q (allowed: [A-Za-z0-9._/-])", prefix, r)
		}
	}
	for _, seg := range strings.Split(prefix, "/") {
		if seg == "" {
			return fmt.Errorf("core: Prefix %q has an empty path segment", prefix)
		}
	}
	return nil
}

// NoLoss returns the synchronous-replication configuration (S = B = 1,
// the paper's "No Loss" column in Figure 5).
func NoLoss() Params {
	p := DefaultParams()
	p.Batch = 1
	p.Safety = 1
	return p
}
