package core

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

func TestWALObjectNameRoundTrip(t *testing.T) {
	tests := []struct {
		ts       int64
		filename string
		offset   int64
	}{
		{0, "pg_xlog/000000010000000000000001", 0},
		{42, "pg_xlog/000000010000000000000007", 16384},
		{7, "ib_logfile0", 2048},
		{9, "my_table_log/seg_01", 512}, // underscores inside the filename
	}
	for _, tt := range tests {
		name := WALObjectName(tt.ts, tt.filename, tt.offset)
		ts, filename, offset, err := ParseWALObjectName(name)
		if err != nil {
			t.Fatalf("parse %q: %v", name, err)
		}
		if ts != tt.ts || filename != tt.filename || offset != tt.offset {
			t.Fatalf("round trip %q = (%d, %s, %d)", name, ts, filename, offset)
		}
	}
}

func TestWALObjectNameMatchesPaperFormat(t *testing.T) {
	// §5.2: WAL/<ts>_<filename>_<offset>
	got := WALObjectName(12, "pg_xlog/000000010000000000000002", 8192)
	want := "WAL/12_pg_xlog/000000010000000000000002_8192"
	if got != want {
		t.Fatalf("name = %q, want %q", got, want)
	}
}

func TestParseWALObjectNameRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"", "WAL/", "WAL/xyz", "DB/1_dump_2", "WAL/nots_file_0", "WAL/1_file_nooff"} {
		if _, _, _, err := ParseWALObjectName(bad); err == nil {
			t.Errorf("ParseWALObjectName(%q) accepted", bad)
		}
	}
}

func TestDBObjectNameRoundTrip(t *testing.T) {
	tests := []struct {
		ts   int64
		gen  int
		typ  DBObjectType
		size int64
		part int
	}{
		{0, 0, Dump, 1 << 30, -1},
		{55, 0, Checkpoint, 4096, -1},
		{55, 0, Checkpoint, 4096, 0},
		{55, 1, Checkpoint, 4096, -1},
		{55, 2, Checkpoint, 4096, 3},
		{99, 0, Dump, 123, 7},
	}
	for _, tt := range tests {
		name := DBObjectName(tt.ts, tt.gen, tt.typ, tt.size, tt.part)
		n, err := ParseDBObjectName(name)
		if err != nil {
			t.Fatalf("parse %q: %v", name, err)
		}
		if n.Ts != tt.ts || n.Gen != tt.gen || n.Type != tt.typ || n.Size != tt.size || n.Part != tt.part || n.Sealed || n.Count != 0 {
			t.Fatalf("round trip %q = %+v", name, n)
		}
	}
}

func TestDBPartNameRoundTrip(t *testing.T) {
	tests := []struct {
		ts          int64
		gen         int
		typ         DBObjectType
		size        int64
		part, count int
	}{
		{0, 0, Dump, 9000, 0, 0},
		{55, 2, Checkpoint, 4096, 1, 0},
		{55, 0, Dump, 123, 2, 3}, // final part carries the count marker
		{7, 4, Dump, 1, 9, 10},
	}
	for _, tt := range tests {
		name := DBPartName(tt.ts, tt.gen, tt.typ, tt.size, tt.part, tt.count)
		n, err := ParseDBObjectName(name)
		if err != nil {
			t.Fatalf("parse %q: %v", name, err)
		}
		if n.Ts != tt.ts || n.Gen != tt.gen || n.Type != tt.typ || n.Size != tt.size ||
			n.Part != tt.part || !n.Sealed || n.Count != tt.count {
			t.Fatalf("round trip %q = %+v", name, n)
		}
	}
}

func TestDBPartNameFormat(t *testing.T) {
	if got := DBPartName(5, 0, Dump, 123, 0, 0); got != "DB/5_dump_123.s0" {
		t.Fatalf("name = %q", got)
	}
	if got := DBPartName(5, 2, Dump, 99, 3, 4); got != "DB/5_dump_99.g2.s3.n4" {
		t.Fatalf("name = %q", got)
	}
}

func TestDBObjectNameMatchesPaperFormat(t *testing.T) {
	// §5.2: DB/<ts>_<type>_<size>
	if got := DBObjectName(0, 0, Dump, 777, -1); got != "DB/0_dump_777" {
		t.Fatalf("name = %q", got)
	}
	if got := DBObjectName(3, 0, Checkpoint, 10, -1); got != "DB/3_checkpoint_10" {
		t.Fatalf("name = %q", got)
	}
}

func TestParseDBObjectNameRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"", "DB/", "DB/1_dump", "DB/1_blob_2", "WAL/1_f_0", "DB/x_dump_2",
		"DB/1_dump_2.n2",    // count marker without a sealed part index
		"DB/1_dump_2.s0.n3", // marker not on the final part
		"DB/1_dump_2.p0.n2", // marker on a legacy part
		"DB/1_dump_2.s0.p1", // both suffix kinds at once
		"DB/1_dump_2.s1.n1", // count < 2 is not a marker, so ".n1" corrupts the size field
		"DB/1_dump_2.s-1",   // negative sealed index corrupts the size field
	} {
		if _, err := ParseDBObjectName(bad); err == nil {
			t.Errorf("ParseDBObjectName(%q) accepted", bad)
		}
	}
}

func TestEncodeDecodeWrites(t *testing.T) {
	writes := []FileWrite{
		{Path: "pg_xlog/0001", Offset: 8192, Data: []byte("page content")},
		{Path: "base/16384/t", Data: []byte("whole file"), Whole: true},
		{Path: "empty", Offset: 0, Data: nil},
	}
	decoded, err := DecodeWrites(EncodeWrites(writes))
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(writes) {
		t.Fatalf("decoded %d writes, want %d", len(decoded), len(writes))
	}
	for i := range writes {
		if decoded[i].Path != writes[i].Path || decoded[i].Offset != writes[i].Offset ||
			decoded[i].Whole != writes[i].Whole || !bytes.Equal(decoded[i].Data, writes[i].Data) {
			t.Fatalf("write %d mismatch: %+v vs %+v", i, decoded[i], writes[i])
		}
	}
}

func TestDecodeWritesRejectsCorruption(t *testing.T) {
	good := EncodeWrites([]FileWrite{{Path: "f", Data: []byte("data")}})
	bads := [][]byte{
		nil,
		[]byte("XXXX"),
		good[:len(good)-1],
		append(append([]byte(nil), good...), 0xFF), // trailing junk
	}
	for i, bad := range bads {
		if _, err := DecodeWrites(bad); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestPropertyEncodeDecodeWrites(t *testing.T) {
	prop := func(paths []string, datas [][]byte, offsets []int64, whole []bool) bool {
		n := len(paths)
		for _, s := range [][]int{{len(datas)}, {len(offsets)}, {len(whole)}} {
			if s[0] < n {
				n = s[0]
			}
		}
		writes := make([]FileWrite, n)
		for i := 0; i < n; i++ {
			p := paths[i]
			if len(p) > 1000 {
				p = p[:1000]
			}
			off := offsets[i]
			if off < 0 {
				off = -off
			}
			writes[i] = FileWrite{Path: p, Offset: off, Data: datas[i], Whole: whole[i]}
		}
		decoded, err := DecodeWrites(EncodeWrites(writes))
		if err != nil {
			return false
		}
		if len(decoded) != len(writes) {
			return false
		}
		for i := range writes {
			if decoded[i].Path != writes[i].Path || decoded[i].Offset != writes[i].Offset ||
				decoded[i].Whole != writes[i].Whole || !bytes.Equal(decoded[i].Data, writes[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeWritesCoalescesSamePageRewrites(t *testing.T) {
	// Three rewrites of the same 8 KiB page: only the last must survive,
	// as a single write (the aggregation that cuts PUT costs, §5.3).
	writes := []FileWrite{
		{Path: "seg", Offset: 0, Data: bytes.Repeat([]byte{1}, 8192)},
		{Path: "seg", Offset: 0, Data: bytes.Repeat([]byte{2}, 8192)},
		{Path: "seg", Offset: 0, Data: bytes.Repeat([]byte{3}, 8192)},
	}
	merged := MergeWrites(writes)
	if len(merged) != 1 {
		t.Fatalf("merged into %d writes, want 1", len(merged))
	}
	if merged[0].Offset != 0 || len(merged[0].Data) != 8192 || merged[0].Data[0] != 3 {
		t.Fatalf("merged = offset %d, %d bytes, first byte %d", merged[0].Offset, len(merged[0].Data), merged[0].Data[0])
	}
}

func TestMergeWritesJoinsContiguousPages(t *testing.T) {
	writes := []FileWrite{
		{Path: "seg", Offset: 0, Data: bytes.Repeat([]byte{1}, 4096)},
		{Path: "seg", Offset: 4096, Data: bytes.Repeat([]byte{2}, 4096)},
		{Path: "seg", Offset: 8192, Data: bytes.Repeat([]byte{3}, 4096)},
	}
	merged := MergeWrites(writes)
	if len(merged) != 1 {
		t.Fatalf("merged into %d writes, want 1 contiguous run", len(merged))
	}
	if merged[0].Offset != 0 || len(merged[0].Data) != 12288 {
		t.Fatalf("merged run = (%d, %d bytes)", merged[0].Offset, len(merged[0].Data))
	}
}

func TestMergeWritesKeepsDisjointRunsAndFiles(t *testing.T) {
	writes := []FileWrite{
		{Path: "a", Offset: 0, Data: []byte("aa")},
		{Path: "a", Offset: 100, Data: []byte("bb")},
		{Path: "b", Offset: 0, Data: []byte("cc")},
	}
	merged := MergeWrites(writes)
	if len(merged) != 3 {
		t.Fatalf("merged = %+v, want 3 disjoint writes", merged)
	}
}

func TestMergeWritesPartialOverlap(t *testing.T) {
	writes := []FileWrite{
		{Path: "f", Offset: 0, Data: []byte("AAAAAAAA")}, // [0,8)
		{Path: "f", Offset: 4, Data: []byte("BBBB")},     // [4,8) overwritten, then extends? no: [4,8)
		{Path: "f", Offset: 6, Data: []byte("CCCC")},     // [6,10)
	}
	merged := MergeWrites(writes)
	if len(merged) != 1 {
		t.Fatalf("merged into %d writes: %+v", len(merged), merged)
	}
	want := "AAAABBCCCC"
	if merged[0].Offset != 0 || string(merged[0].Data) != want {
		t.Fatalf("merged = (%d, %q), want (0, %q)", merged[0].Offset, merged[0].Data, want)
	}
}

// TestPropertyMergeWrites: merging must be equivalent to applying the
// writes to a sparse file in order.
func TestPropertyMergeWrites(t *testing.T) {
	type op struct {
		Off  uint16
		Data []byte
	}
	prop := func(ops []op) bool {
		var writes []FileWrite
		model := make([]byte, 0, 8192)
		maxEnd := 0
		for _, o := range ops {
			off := int(o.Off % 2048)
			if len(o.Data) == 0 {
				continue
			}
			writes = append(writes, FileWrite{Path: "f", Offset: int64(off), Data: o.Data})
			end := off + len(o.Data)
			if end > len(model) {
				grown := make([]byte, end)
				copy(grown, model)
				model = grown
			}
			copy(model[off:end], o.Data)
			if end > maxEnd {
				maxEnd = end
			}
		}
		merged := MergeWrites(writes)
		// Replay merged writes onto a fresh buffer; untouched bytes keep
		// zero, so compare only written regions via full replay of the
		// original (model) against replay of merged.
		out := make([]byte, len(model))
		prevEnd := int64(-1)
		for _, w := range merged {
			if w.Offset <= prevEnd {
				return false // runs must be disjoint and sorted
			}
			prevEnd = w.End() - 1
			copy(out[w.Offset:w.End()], w.Data)
		}
		// Regions never written must remain zero in both; written regions
		// must match. Since model's unwritten bytes are zero too, direct
		// comparison suffices.
		return bytes.Equal(out, model)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitWrite(t *testing.T) {
	w := FileWrite{Path: "f", Offset: 100, Data: bytes.Repeat([]byte{7}, 2500)}
	parts := SplitWrite(w, 1000)
	if len(parts) != 3 {
		t.Fatalf("split into %d parts, want 3", len(parts))
	}
	wantOffsets := []int64{100, 1100, 2100}
	wantLens := []int{1000, 1000, 500}
	for i, p := range parts {
		if p.Offset != wantOffsets[i] || len(p.Data) != wantLens[i] {
			t.Fatalf("part %d = (%d, %d bytes)", i, p.Offset, len(p.Data))
		}
	}
	// Small writes pass through.
	if got := SplitWrite(w, 10000); len(got) != 1 || !reflect.DeepEqual(got[0], w) {
		t.Fatalf("small SplitWrite = %+v", got)
	}
}

func TestSplitBytes(t *testing.T) {
	b := bytes.Repeat([]byte{1}, 25)
	parts := splitBytes(b, 10)
	if len(parts) != 3 || len(parts[0]) != 10 || len(parts[2]) != 5 {
		t.Fatalf("splitBytes = %d parts", len(parts))
	}
	if got := splitBytes(nil, 10); len(got) != 1 {
		t.Fatalf("splitBytes(nil) = %d parts, want 1 empty", len(got))
	}
}

// FuzzParseWALObjectName checks that any name the parser accepts
// round-trips: re-encoding the parsed fields and re-parsing yields the
// same fields. Names the parser rejects are simply skipped — the property
// under test is "accepted implies faithfully representable".
func FuzzParseWALObjectName(f *testing.F) {
	f.Add("WAL/12_pg_xlog/000000010000000000000000_0")
	f.Add("WAL/1__2")
	f.Add("WAL/-3_a_b_c_-9")
	f.Add("WAL/007_x_08")
	f.Add("not a wal name")
	f.Fuzz(func(t *testing.T, name string) {
		ts, file, off, err := ParseWALObjectName(name)
		if err != nil {
			return
		}
		re := WALObjectName(ts, file, off)
		ts2, file2, off2, err := ParseWALObjectName(re)
		if err != nil {
			t.Fatalf("re-encoded name %q (from %q) does not parse: %v", re, name, err)
		}
		if ts2 != ts || file2 != file || off2 != off {
			t.Fatalf("round trip changed fields: %q -> (%d,%q,%d) -> %q -> (%d,%q,%d)",
				name, ts, file, off, re, ts2, file2, off2)
		}
	})
}

// FuzzParseDBObjectName checks the same accepted-implies-round-trips
// property for DB object names, including the .g<gen>, legacy .p<part>
// and part-sealed .s<part>[.n<count>] suffixes.
func FuzzParseDBObjectName(f *testing.F) {
	f.Add("DB/5_dump_123")
	f.Add("DB/5_checkpoint_123")
	f.Add("DB/5_dump_123.g2")
	f.Add("DB/5_dump_123.p0")
	f.Add("DB/5_dump_123.g2.p7")
	f.Add("DB/5_dump_123.p-2")
	f.Add("DB/5_dump_123.g0")
	f.Add("DB/-1_dump_-2")
	f.Add("DB/5_dump_123.s0")
	f.Add("DB/5_dump_123.g2.s4")
	f.Add("DB/5_dump_123.s2.n3")
	f.Add("DB/5_dump_123.s0.n3")
	f.Add("DB/5_dump_123.n2")
	f.Add("DB/5_dump_123.s1.n1")
	// Delta names: the .b<ts>-<gen> base pointer sits between size and .g.
	f.Add("DB/9_delta_123.b5-0")
	f.Add("DB/9_delta_123.b5-2.g1")
	f.Add("DB/9_delta_123.b5-0.g1.s0.n2")
	f.Add("DB/9_delta_123.b5-0.s1.n2")
	f.Add("DB/9_delta_123.b0-0.p1")
	f.Add("DB/9_delta_123")         // delta without a base: malformed
	f.Add("DB/9_dump_123.b5-0")     // base on a non-delta: malformed
	f.Add("DB/9_delta_123.b-1-0")   // negative base ts: malformed
	f.Add("DB/9_delta_123.b5--1")   // negative base gen: malformed
	f.Add("DB/9_delta_123.b5")      // base without gen: malformed
	f.Add("DB/9_delta_123.g1.b5-0") // suffixes out of order: malformed
	f.Fuzz(func(t *testing.T, name string) {
		n, err := ParseDBObjectName(name)
		if err != nil {
			return
		}
		if n.Gen < 0 || n.Part < -1 || (n.Sealed && n.Part < 0) ||
			n.Count < 0 || (n.Count > 0 && (n.Count < 2 || !n.Sealed || n.Part != n.Count-1)) ||
			n.HasBase != (n.Type == Delta) ||
			(n.HasBase && (n.BaseTs < 0 || n.BaseGen < 0)) ||
			(!n.HasBase && (n.BaseTs != 0 || n.BaseGen != 0)) {
			t.Fatalf("parse %q produced unencodable fields %+v", name, n)
		}
		re := n.String()
		n2, err := ParseDBObjectName(re)
		if err != nil {
			t.Fatalf("re-encoded name %q (from %q) does not parse: %v", re, name, err)
		}
		if n2 != n {
			t.Fatalf("round trip changed fields: %q -> %+v -> %q -> %+v", name, n, re, n2)
		}
	})
}

// FuzzDecodeWrites checks that the write-list wire format is canonical:
// any buffer DecodeWrites accepts re-encodes to the identical bytes, and
// the decoder never panics or over-allocates on adversarial input (a
// forged count field must not size an allocation).
func FuzzDecodeWrites(f *testing.F) {
	f.Add([]byte("GJWL"))
	f.Add(EncodeWrites(nil))
	f.Add(EncodeWrites([]FileWrite{{Path: "base/1", Offset: 42, Data: []byte("hello")}}))
	f.Add(EncodeWrites([]FileWrite{
		{Path: "", Offset: -1, Data: nil},
		{Path: "pg_xlog/0", Offset: 1 << 40, Data: bytes.Repeat([]byte{7}, 32), Whole: true},
	}))
	// A packed multi-write body as the Aggregator now produces them: one
	// object carrying a whole batch of small scattered writes (the seed
	// steers the fuzzer toward long write lists).
	packed := PackWrites([]FileWrite{
		{Path: "pg_xlog/0001", Offset: 0, Data: []byte("commit-a")},
		{Path: "pg_xlog/0002", Offset: 8192, Data: []byte("commit-b")},
		{Path: "base/16384/2608", Offset: 0, Data: bytes.Repeat([]byte{3}, 24)},
		{Path: "pg_xlog/0001", Offset: 512, Data: []byte("c")},
		{Path: "pg_xlog/0003", Offset: 1 << 33, Data: []byte("tail"), Whole: false},
	}, 1<<20)
	f.Add(EncodeWrites(packed[0]))
	// Forged count: header claims 4 billion entries in a 12-byte buffer.
	forged := append([]byte("GJWL"), 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0)
	f.Add(forged)
	f.Fuzz(func(t *testing.T, data []byte) {
		writes, err := DecodeWrites(data)
		if err != nil {
			return
		}
		re := EncodeWrites(writes)
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not canonical:\n in: %x\nout: %x", data, re)
		}
		writes2, err := DecodeWrites(re)
		if err != nil {
			t.Fatalf("re-encoded buffer does not decode: %v", err)
		}
		if !reflect.DeepEqual(writes, writes2) {
			t.Fatalf("round trip changed writes: %+v vs %+v", writes, writes2)
		}
	})
}
