package core

import (
	"errors"
	"sync"
	"time"

	"github.com/ginja-dr/ginja/internal/simclock"
)

// ErrQueueClosed is returned by Put after the queue has been closed.
var ErrQueueClosed = errors.New("core: commit queue closed")

// update is one intercepted WAL write pending cloud synchronization.
type update struct {
	path string
	off  int64
	data []byte
	at   time.Time
}

// commitQueue is the paper's CommitQueue (§6): capacity-S holding area for
// pending WAL writes. Put blocks while more than S updates are
// unacknowledged or the Safety timeout TS has expired (Algorithm 2 line
// 7); nextBatch hands up to B updates to the Aggregator, waiting for a
// full batch or the Batch timeout TB (lines 9-12). Items are only removed
// by the Unlocker once their uploads are safe (lines 20-22).
//
// All timers and timestamps come from the configured Clock, so the TB/TS
// machinery runs identically under the wall clock and under a virtual
// simulation clock.
type commitQueue struct {
	clk simclock.Clock

	mu      sync.Mutex
	notFull *sync.Cond // Put waiters (Safety)
	more    *sync.Cond // Aggregator waiting for a batch
	emptied *sync.Cond // drain waiters (queue fully acknowledged)

	items []update
	taken int // items[:taken] already handed to the Aggregator

	batch         int
	safety        int
	batchTimeout  time.Duration
	safetyTimeout time.Duration

	tbExpired bool
	tsExpired bool
	tbTimer   simclock.Timer
	tsTimer   simclock.Timer
	closed    bool

	// blockedTotal accumulates the time commits spent blocked on Safety —
	// the quantity that shows up as throughput loss in Figure 5.
	blockedTotal time.Duration
}

func newCommitQueue(p Params) *commitQueue {
	q := &commitQueue{
		clk:           p.clock(),
		batch:         p.Batch,
		safety:        p.Safety,
		batchTimeout:  p.BatchTimeout,
		safetyTimeout: p.SafetyTimeout,
	}
	q.notFull = sync.NewCond(&q.mu)
	q.more = sync.NewCond(&q.mu)
	q.emptied = sync.NewCond(&q.mu)
	// Both timers are armed lazily — TB only while unsent items are
	// pending, TS only while any item is unacknowledged — so an idle queue
	// schedules no timers at all.
	q.tbTimer = q.clk.AfterFunc(q.batchTimeout, q.onTB)
	q.tbTimer.Stop()
	q.tsTimer = q.clk.AfterFunc(q.safetyTimeout, q.onTS)
	q.tsTimer.Stop()
	return q
}

// onTB fires the Batch timeout: if updates are pending and unsent, let the
// Aggregator take a partial batch (TaskTB, Algorithm 2 lines 23-25).
func (q *commitQueue) onTB() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	if len(q.items)-q.taken > 0 {
		q.tbExpired = true
		q.more.Broadcast()
	}
	// Not rearmed here: tbExpired stays sticky until the Aggregator takes
	// the partial batch (nextBatch rearms if unsent items remain), and put
	// arms the timer again when the queue goes from empty to non-empty.
}

// onTS fires the Safety timeout: if the oldest pending update has waited
// longer than TS, block the DBMS (TaskTS, Algorithm 2 lines 26-28).
func (q *commitQueue) onTS() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	if len(q.items) > 0 && q.clk.Since(q.items[0].at) >= q.safetyTimeout {
		q.tsExpired = true
		q.notFull.Broadcast() // waiters re-check and keep blocking
		// Stay expired without re-arming: only removeFront clears the
		// condition, and it re-arms for the new front item.
		return
	}
	q.rearmTSLocked()
}

func (q *commitQueue) rearmTSLocked() {
	if len(q.items) == 0 {
		q.tsTimer.Stop()
		return
	}
	d := q.clk.Until(q.items[0].at.Add(q.safetyTimeout))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	q.tsTimer.Reset(d)
}

// put enqueues one update and blocks until the Safety contract allows the
// write to return to the DBMS. It reports how long the caller was blocked.
func (q *commitQueue) put(u update) (time.Duration, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return 0, ErrQueueClosed
	}
	u.at = q.clk.Now()
	q.items = append(q.items, u)
	if len(q.items)-q.taken == 1 {
		q.tbTimer.Reset(q.batchTimeout)
	}
	if len(q.items) == 1 {
		q.rearmTSLocked()
	}
	q.more.Broadcast()
	var blocked time.Duration
	for !q.closed && (len(q.items) > q.safety || q.tsExpired) {
		start := q.clk.Now()
		q.notFull.Wait()
		blocked += q.clk.Since(start)
	}
	q.blockedTotal += blocked
	if q.closed {
		return blocked, ErrQueueClosed
	}
	return blocked, nil
}

// nextBatch blocks until B unsent updates exist (or TB expired with at
// least one pending, or the queue is closing) and hands them out without
// removing them. It returns ok=false when the queue is closed and fully
// drained of unsent items.
func (q *commitQueue) nextBatch() ([]update, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		pending := len(q.items) - q.taken
		if pending >= q.batch || (pending > 0 && (q.tbExpired || q.closed)) {
			n := pending
			if n > q.batch {
				n = q.batch
			}
			out := make([]update, n)
			copy(out, q.items[q.taken:q.taken+n])
			q.taken += n
			q.tbExpired = false
			if !q.closed {
				if len(q.items)-q.taken > 0 {
					q.tbTimer.Reset(q.batchTimeout)
				} else {
					q.tbTimer.Stop()
				}
			}
			return out, true
		}
		if q.closed {
			return nil, false
		}
		q.more.Wait()
	}
}

// removeFront releases the oldest n updates after the Unlocker has
// confirmed their durability, unblocking DBMS writers and resetting the
// Safety timeout (Algorithm 2 lines 20-22).
func (q *commitQueue) removeFront(n int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if n > len(q.items) {
		n = len(q.items)
	}
	q.items = q.items[n:]
	q.taken -= n
	if q.taken < 0 {
		q.taken = 0
	}
	q.tsExpired = false
	if !q.closed {
		q.rearmTSLocked()
	}
	q.notFull.Broadcast()
	if len(q.items) == 0 {
		q.emptied.Broadcast()
	}
}

// size returns the number of unacknowledged updates.
func (q *commitQueue) size() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// blockedDuration returns the cumulative time Put callers spent blocked.
func (q *commitQueue) blockedDuration() time.Duration {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.blockedTotal
}

// drain waits until every enqueued update has been acknowledged and
// removed, or the timeout elapses. It parks on a condition variable that
// removeFront signals when the queue empties — no polling — with a
// clock-driven timer bounding the wait, so it is cheap in production and
// instantaneous under a simulation clock.
func (q *commitQueue) drain(timeout time.Duration) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return true
	}
	timedOut := false
	t := q.clk.AfterFunc(timeout, func() {
		q.mu.Lock()
		timedOut = true
		q.emptied.Broadcast()
		q.mu.Unlock()
	})
	defer t.Stop()
	for len(q.items) > 0 && !timedOut && !q.closed {
		q.emptied.Wait()
	}
	return len(q.items) == 0
}

// close wakes every waiter with ErrQueueClosed and stops the timers. The
// Aggregator still drains unsent items before exiting.
func (q *commitQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	q.tbTimer.Stop()
	q.tsTimer.Stop()
	q.notFull.Broadcast()
	q.more.Broadcast()
	q.emptied.Broadcast()
}
