package core

import (
	"errors"
	"sync"
	"time"

	"github.com/ginja-dr/ginja/internal/obs"
	"github.com/ginja-dr/ginja/internal/simclock"
)

// ErrQueueClosed is returned by Put after the queue has been closed.
var ErrQueueClosed = errors.New("core: commit queue closed")

// update is one intercepted WAL write pending cloud synchronization.
type update struct {
	path string
	off  int64
	data []byte
	at   time.Time
	// pooled, when non-nil, is the recyclable buffer backing data; the
	// queue returns it to walBufPool once the update is released (its
	// object durable), making the steady-state submit copy allocation-free.
	pooled *[]byte
}

// walBufPool recycles the per-update payload copies made in
// pipeline.submit. A buffer is only returned to the pool by removeFront,
// i.e. after the update's WAL object is durable in the cloud — by then no
// aggregated write, encode buffer or sealed object aliases it.
var walBufPool = sync.Pool{New: func() any { return new([]byte) }}

// commitQueue is the paper's CommitQueue (§6): capacity-S holding area for
// pending WAL writes. Put blocks while more than S updates are
// unacknowledged or the Safety timeout TS has expired (Algorithm 2 line
// 7); nextBatch hands up to B updates to the Aggregator, waiting for a
// full batch or the Batch timeout TB (lines 9-12). Items are only removed
// by the Unlocker once their uploads are safe (lines 20-22).
//
// All timers and timestamps come from the configured Clock, so the TB/TS
// machinery runs identically under the wall clock and under a virtual
// simulation clock.
//
// Storage is a single slice with a head index: removeFront advances head
// instead of reslicing, so once every pending update is released the
// backing array is reused from position 0. Under steady load the queue
// therefore stops allocating entirely (reslicing items[n:] would leak
// front capacity and force a fresh backing array every few batches).
type commitQueue struct {
	clk simclock.Clock

	mu      sync.Mutex
	notFull *sync.Cond // Put waiters (Safety)
	more    *sync.Cond // Aggregator waiting for a batch
	emptied *sync.Cond // drain waiters (queue fully acknowledged)

	items []update
	head  int // items[head:] are pending (unacknowledged)
	taken int // items[:taken] already handed to the Aggregator (taken ≥ head)

	batch         int
	safety        int
	batchTimeout  time.Duration
	safetyTimeout time.Duration

	tbExpired bool
	tsExpired bool
	tbTimer   simclock.Timer
	tsTimer   simclock.Timer
	closed    bool

	// blockedTotal accumulates the time commits spent blocked on Safety —
	// the quantity that shows up as throughput loss in Figure 5.
	blockedTotal time.Duration

	// lossHist, when set, observes each released update's realized
	// data-loss window (enqueue → cloud ack) — the histogram behind
	// ginja_data_loss_window_seconds. Observation happens in removeFront,
	// i.e. exactly when the cloud acknowledgement arrives, so the RPO
	// watermark and this histogram advance on the same event.
	lossHist *obs.Histogram
}

func newCommitQueue(p Params) *commitQueue {
	q := &commitQueue{
		clk:           p.clock(),
		batch:         p.Batch,
		safety:        p.Safety,
		batchTimeout:  p.BatchTimeout,
		safetyTimeout: p.SafetyTimeout,
	}
	q.notFull = sync.NewCond(&q.mu)
	q.more = sync.NewCond(&q.mu)
	q.emptied = sync.NewCond(&q.mu)
	// Both timers are armed lazily — TB only while unsent items are
	// pending, TS only while any item is unacknowledged — so an idle queue
	// schedules no timers at all.
	q.tbTimer = q.clk.AfterFunc(q.batchTimeout, q.onTB)
	q.tbTimer.Stop()
	q.tsTimer = q.clk.AfterFunc(q.safetyTimeout, q.onTS)
	q.tsTimer.Stop()
	return q
}

// liveLocked returns the number of unacknowledged updates. Callers hold mu.
func (q *commitQueue) liveLocked() int { return len(q.items) - q.head }

// onTB fires the Batch timeout: if updates are pending and unsent, let the
// Aggregator take a partial batch (TaskTB, Algorithm 2 lines 23-25).
func (q *commitQueue) onTB() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	if len(q.items)-q.taken > 0 {
		q.tbExpired = true
		q.more.Broadcast()
	}
	// Not rearmed here: tbExpired stays sticky until the Aggregator takes
	// the partial batch (nextBatch rearms if unsent items remain), and put
	// arms the timer again when the queue goes from empty to non-empty.
}

// onTS fires the Safety timeout: if the oldest pending update has waited
// longer than TS, block the DBMS (TaskTS, Algorithm 2 lines 26-28).
func (q *commitQueue) onTS() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	if q.liveLocked() > 0 && q.clk.Since(q.items[q.head].at) >= q.safetyTimeout {
		q.tsExpired = true
		q.notFull.Broadcast() // waiters re-check and keep blocking
		// Stay expired without re-arming: only removeFront clears the
		// condition, and it re-arms for the new front item.
		return
	}
	q.rearmTSLocked()
}

func (q *commitQueue) rearmTSLocked() {
	if q.liveLocked() == 0 {
		q.tsTimer.Stop()
		return
	}
	d := q.clk.Until(q.items[q.head].at.Add(q.safetyTimeout))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	q.tsTimer.Reset(d)
}

// put enqueues one update and blocks until the Safety contract allows the
// write to return to the DBMS. It reports how long the caller was blocked.
func (q *commitQueue) put(u update) (time.Duration, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return 0, ErrQueueClosed
	}
	u.at = q.clk.Now()
	q.items = append(q.items, u)
	if len(q.items)-q.taken == 1 {
		q.tbTimer.Reset(q.batchTimeout)
	}
	if q.liveLocked() == 1 {
		q.rearmTSLocked()
	}
	q.more.Broadcast()
	var blocked time.Duration
	for !q.closed && (q.liveLocked() > q.safety || q.tsExpired) {
		start := q.clk.Now()
		q.notFull.Wait()
		blocked += q.clk.Since(start)
	}
	q.blockedTotal += blocked
	if q.closed {
		return blocked, ErrQueueClosed
	}
	return blocked, nil
}

// nextBatch blocks until B unsent updates exist (or TB expired with at
// least one pending, or the queue is closing) and copies them into buf
// (usually the caller's reused batch slice) without removing them. It
// returns ok=false when the queue is closed and fully drained of unsent
// items.
func (q *commitQueue) nextBatch(buf []update) ([]update, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		pending := len(q.items) - q.taken
		if pending >= q.batch || (pending > 0 && (q.tbExpired || q.closed)) {
			n := pending
			if n > q.batch {
				n = q.batch
			}
			out := append(buf[:0], q.items[q.taken:q.taken+n]...)
			q.taken += n
			q.tbExpired = false
			if !q.closed {
				if len(q.items)-q.taken > 0 {
					q.tbTimer.Reset(q.batchTimeout)
				} else {
					q.tbTimer.Stop()
				}
			}
			return out, true
		}
		if q.closed {
			return nil, false
		}
		q.more.Wait()
	}
}

// removeFront releases the oldest n updates after the Unlocker has
// confirmed their durability, unblocking DBMS writers, recycling their
// pooled payload buffers and resetting the Safety timeout (Algorithm 2
// lines 20-22).
func (q *commitQueue) removeFront(n int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if n > q.liveLocked() {
		n = q.liveLocked()
	}
	var ackAt time.Time
	if q.lossHist != nil && n > 0 {
		ackAt = q.clk.Now()
	}
	for i := q.head; i < q.head+n; i++ {
		if q.lossHist != nil {
			q.lossHist.ObserveDuration(ackAt.Sub(q.items[i].at))
		}
		if bp := q.items[i].pooled; bp != nil {
			walBufPool.Put(bp)
		}
		q.items[i] = update{} // drop references for GC / pool safety
	}
	q.head += n
	if q.taken < q.head {
		q.taken = q.head
	}
	switch {
	case q.head == len(q.items):
		// Fully drained: rewind so the backing array is reused from 0.
		q.items = q.items[:0]
		q.taken, q.head = 0, 0
	case q.head >= 256 && q.head*2 >= cap(q.items):
		// Long-lived backlog: compact so the array stays bounded by ~2×
		// the live set instead of growing with total throughput.
		m := copy(q.items, q.items[q.head:])
		for i := m; i < len(q.items); i++ {
			q.items[i] = update{}
		}
		q.items = q.items[:m]
		q.taken -= q.head
		q.head = 0
	}
	q.tsExpired = false
	if !q.closed {
		q.rearmTSLocked()
	}
	q.notFull.Broadcast()
	if q.liveLocked() == 0 {
		q.emptied.Broadcast()
	}
}

// setKnobs installs new effective Batch/BatchTimeout values from the
// adaptive controller. Taking mu gives every reader (nextBatch's cut,
// put's timer arming) a consistent snapshot of the pair. Shrinking the
// batch must wake a parked Aggregator — pending items that were short of
// the old B may already fill the new one — and re-aim the TB timer at the
// new deadline while unsent items are waiting.
func (q *commitQueue) setKnobs(batch int, batchTimeout time.Duration) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || (batch == q.batch && batchTimeout == q.batchTimeout) {
		return
	}
	q.batch = batch
	q.batchTimeout = batchTimeout
	if len(q.items)-q.taken > 0 {
		q.tbTimer.Reset(q.batchTimeout)
		q.more.Broadcast()
	}
}

// knobs returns the effective (Batch, BatchTimeout) pair.
func (q *commitQueue) knobs() (int, time.Duration) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.batch, q.batchTimeout
}

// size returns the number of unacknowledged updates.
func (q *commitQueue) size() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.liveLocked()
}

// oldestPendingAt returns the enqueue time of the oldest unacknowledged
// update — the RPO watermark. ok is false when nothing is pending (RPO is
// zero: the cloud holds everything the DBMS has committed). The watermark
// moves only in removeFront, i.e. on cloud acknowledgement, never on
// enqueue; its age is the data the paper's `e_dl` bounds.
func (q *commitQueue) oldestPendingAt() (time.Time, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.liveLocked() == 0 {
		return time.Time{}, false
	}
	return q.items[q.head].at, true
}

// blockedDuration returns the cumulative time Put callers spent blocked.
func (q *commitQueue) blockedDuration() time.Duration {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.blockedTotal
}

// drain waits until every enqueued update has been acknowledged and
// removed, or the timeout elapses. It parks on a condition variable that
// removeFront signals when the queue empties — no polling — with a
// clock-driven timer bounding the wait, so it is cheap in production and
// instantaneous under a simulation clock.
func (q *commitQueue) drain(timeout time.Duration) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.liveLocked() == 0 {
		return true
	}
	timedOut := false
	t := q.clk.AfterFunc(timeout, func() {
		q.mu.Lock()
		timedOut = true
		q.emptied.Broadcast()
		q.mu.Unlock()
	})
	defer t.Stop()
	for q.liveLocked() > 0 && !timedOut && !q.closed {
		q.emptied.Wait()
	}
	return q.liveLocked() == 0
}

// close wakes every waiter with ErrQueueClosed and stops the timers. The
// Aggregator still drains unsent items before exiting.
func (q *commitQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	q.tbTimer.Stop()
	q.tsTimer.Stop()
	q.notFull.Broadcast()
	q.more.Broadcast()
	q.emptied.Broadcast()
}
