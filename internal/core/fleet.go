package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/dbevent"
	"github.com/ginja-dr/ginja/internal/obs"
	"github.com/ginja-dr/ginja/internal/simclock"
	"github.com/ginja-dr/ginja/internal/vfs"
)

// Fleet parameter defaults. The pool sizes are process-wide, not
// per-tenant: a thousand-tenant fleet still issues at most UploadSlots
// concurrent PUT/DELETEs against the bucket.
const (
	DefaultFleetUploadSlots    = 64
	DefaultFleetFetchSlots     = 32
	DefaultFleetTenantCap      = 4
	DefaultFleetBulkAgingAfter = 2 * time.Second
	// DefaultFleetPrefixRoot is where Admit roots tenants that don't
	// specify their own Params.Prefix.
	DefaultFleetPrefixRoot = "tenants"
)

// FleetParams configures a Fleet: the shared bucket, the shared pool
// sizes and the fairness knobs. Per-tenant (B, TB, S, TS, …) knobs stay
// in the Params each Admit call passes.
type FleetParams struct {
	// Store is the shared bucket every tenant's objects land in, each
	// under its own validated prefix.
	Store cloud.ObjectStore
	// UploadSlots bounds the fleet-wide concurrent PUT/DELETE
	// operations (0 = DefaultFleetUploadSlots). Safety-class WAL PUTs
	// dispatch earliest-deadline-first from this pool.
	UploadSlots int
	// FetchSlots bounds the fleet-wide concurrent GET/LIST operations
	// (0 = DefaultFleetFetchSlots).
	FetchSlots int
	// TenantCap bounds the upload+fetch slots one tenant's bulk
	// (checkpoint/GC) and fetch traffic may hold simultaneously, so a
	// dumping antagonist cannot monopolise either pool
	// (0 = DefaultFleetTenantCap). Safety-class PUTs are exempt.
	TenantCap int
	// BulkAgingAfter promotes a bulk operation that has waited this
	// long ahead of Safety traffic for one slot, guaranteeing
	// checkpoints complete even under sustained commit load
	// (0 = DefaultFleetBulkAgingAfter, < 0 disables aging).
	BulkAgingAfter time.Duration
	// Metrics receives the ginja_fleet_* telemetry (tenant counts,
	// scheduler queue waits, per-class in-flight gauges, Safety
	// starvation counter). nil disables fleet instrumentation.
	Metrics *obs.Registry
	// Clock drives every tenant's timers. nil makes the Fleet create a
	// tick wheel over the wall clock so all tenants' TB/TS/tuner/trim
	// timers multiplex onto one goroutine; fleet sims pass a shared
	// *simclock.SimClock instead (itself already a single timer heap).
	Clock simclock.Clock
}

func (fp FleetParams) withDefaults() (FleetParams, error) {
	if fp.Store == nil {
		return fp, fmt.Errorf("core: FleetParams.Store is required")
	}
	if fp.UploadSlots == 0 {
		fp.UploadSlots = DefaultFleetUploadSlots
	}
	if fp.FetchSlots == 0 {
		fp.FetchSlots = DefaultFleetFetchSlots
	}
	if fp.TenantCap == 0 {
		fp.TenantCap = DefaultFleetTenantCap
	}
	if fp.BulkAgingAfter == 0 {
		fp.BulkAgingAfter = DefaultFleetBulkAgingAfter
	}
	if fp.UploadSlots < 1 {
		return fp, fmt.Errorf("core: FleetParams.UploadSlots must be ≥ 1, got %d", fp.UploadSlots)
	}
	if fp.FetchSlots < 1 {
		return fp, fmt.Errorf("core: FleetParams.FetchSlots must be ≥ 1, got %d", fp.FetchSlots)
	}
	if fp.TenantCap < 1 {
		return fp, fmt.Errorf("core: FleetParams.TenantCap must be ≥ 1, got %d", fp.TenantCap)
	}
	return fp, nil
}

// Fleet multiplexes many Ginja instances — one per tenant database —
// over shared process-wide resources: one bucket (per-tenant prefixes),
// two bounded cloud-operation pools with a deadline-aware fairness
// scheduler, and one tick wheel carrying every tenant's timers. The
// per-tenant footprint is a handful of goroutines and the pipeline's
// fixed buffers; everything heavy is shared.
//
// Lifecycle: NewFleet → Admit (repeatedly, any time) → each tenant is
// Booted/Recovered through its *Ginja handle → Evict or Close. Admit
// and Evict are safe to call while other tenants run.
type Fleet struct {
	fp    FleetParams
	sched *fleetScheduler
	clk   simclock.Clock
	wheel *simclock.Wheel // non-nil iff the fleet owns its tick wheel

	mu       sync.Mutex
	tenants  map[string]*Ginja
	prefixes map[string]string // tenant id → prefix
	closed   bool

	admitted *obs.Counter
	evicted  *obs.Counter
}

// NewFleet creates a fleet over the shared store. Close releases the
// shared resources after closing any remaining tenants.
func NewFleet(fp FleetParams) (*Fleet, error) {
	fp, err := fp.withDefaults()
	if err != nil {
		return nil, err
	}
	f := &Fleet{
		fp:       fp,
		tenants:  make(map[string]*Ginja),
		prefixes: make(map[string]string),
	}
	if fp.Clock != nil {
		f.clk = fp.Clock
	} else {
		// One timer goroutine for the whole fleet: every tenant's TB,
		// TS, tuner and retention-trim timers land on this wheel.
		f.wheel = simclock.NewWheel(simclock.Real())
		f.clk = f.wheel
	}
	f.sched = newFleetScheduler(f.clk, fp.UploadSlots, fp.FetchSlots,
		fp.TenantCap, fp.BulkAgingAfter, fp.Metrics)
	if fp.Metrics != nil {
		fp.Metrics.GaugeFunc(metricFleetTenants,
			"Tenant databases currently admitted to the fleet.", nil,
			func() float64 {
				f.mu.Lock()
				defer f.mu.Unlock()
				return float64(len(f.tenants))
			})
		f.admitted = fp.Metrics.Counter(metricFleetAdmitted,
			"Tenants admitted to the fleet since process start.", nil)
		f.evicted = fp.Metrics.Counter(metricFleetEvicted,
			"Tenants evicted from the fleet since process start.", nil)
	}
	return f, nil
}

// Admit adds a tenant database to the fleet and returns its Ginja
// handle (not yet booted — the caller drives Boot or Recover). The
// tenant's cloud objects live under params.Prefix, defaulting to
// "tenants/<id>"; the prefix must not nest inside (or enclose) any
// other admitted tenant's prefix. params.Clock is overridden with the
// fleet clock so the tenant's timers ride the shared wheel.
func (f *Fleet) Admit(id string, localFS vfs.FS, proc dbevent.Processor, params Params) (*Ginja, error) {
	if id == "" {
		return nil, fmt.Errorf("core: fleet tenant id must be non-empty")
	}
	if params.Prefix == "" {
		if err := ValidatePrefix(id); err != nil {
			return nil, fmt.Errorf("core: fleet tenant id %q is not a valid prefix segment: %w", id, err)
		}
		params.Prefix = DefaultFleetPrefixRoot + "/" + id
	}
	if err := ValidatePrefix(params.Prefix); err != nil {
		return nil, err
	}
	params.Clock = f.clk

	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, fmt.Errorf("core: fleet is closed")
	}
	if _, dup := f.tenants[id]; dup {
		f.mu.Unlock()
		return nil, fmt.Errorf("core: fleet tenant %q already admitted", id)
	}
	for other, p := range f.prefixes {
		if prefixesOverlap(p, params.Prefix) {
			f.mu.Unlock()
			return nil, fmt.Errorf("core: prefix %q overlaps tenant %q prefix %q",
				params.Prefix, other, p)
		}
	}
	// Reserve id+prefix before the (unlocked) construction so a
	// concurrent Admit can't claim an overlapping prefix.
	f.tenants[id] = nil
	f.prefixes[id] = params.Prefix
	f.mu.Unlock()

	ss := &schedStore{
		inner:         f.fp.Store,
		sched:         f.sched,
		tenant:        id,
		prefix:        params.Prefix + "/",
		safetyTimeout: params.SafetyTimeout,
		clk:           f.clk,
	}
	if ss.safetyTimeout == 0 {
		ss.safetyTimeout = DefaultSafetyTimeout
	}
	g, err := New(localFS, ss, proc, params)
	if err != nil {
		f.mu.Lock()
		delete(f.tenants, id)
		delete(f.prefixes, id)
		f.mu.Unlock()
		return nil, err
	}

	f.mu.Lock()
	if f.closed {
		delete(f.tenants, id)
		delete(f.prefixes, id)
		f.mu.Unlock()
		g.Close()
		return nil, fmt.Errorf("core: fleet is closed")
	}
	f.tenants[id] = g
	f.mu.Unlock()
	if f.admitted != nil {
		f.admitted.Add(1)
	}
	return g, nil
}

// prefixesOverlap reports whether two validated prefixes name the same
// subtree or one encloses the other.
func prefixesOverlap(a, b string) bool {
	return a == b || strings.HasPrefix(a, b+"/") || strings.HasPrefix(b, a+"/")
}

// Evict closes a tenant's Ginja instance and removes it from the
// fleet. The tenant's cloud objects stay in the bucket (a later Admit
// with the same prefix can Recover them).
func (f *Fleet) Evict(id string) error {
	f.mu.Lock()
	g, ok := f.tenants[id]
	if ok {
		delete(f.tenants, id)
		delete(f.prefixes, id)
	}
	f.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: fleet tenant %q not admitted", id)
	}
	if f.evicted != nil {
		f.evicted.Add(1)
	}
	if g == nil { // reserved but construction never completed
		return nil
	}
	return g.Close()
}

// Tenant returns the Ginja handle for an admitted tenant, or nil.
func (f *Fleet) Tenant(id string) *Ginja {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tenants[id]
}

// Tenants returns the admitted tenant ids, sorted.
func (f *Fleet) Tenants() []string {
	f.mu.Lock()
	ids := make([]string, 0, len(f.tenants))
	for id := range f.tenants {
		ids = append(ids, id)
	}
	f.mu.Unlock()
	sort.Strings(ids)
	return ids
}

// FleetStats is a point-in-time aggregate across the fleet.
type FleetStats struct {
	// Tenants is the number of currently admitted databases.
	Tenants int
	// PendingUpdates sums every tenant's non-synchronized updates.
	PendingUpdates int
	// SafetyDeadlineMisses counts Safety-class PUTs that out-waited
	// their TS budget in the shared scheduler queue since process
	// start. Zero means no tenant's commit window was ever starved by
	// another tenant's traffic.
	SafetyDeadlineMisses int64
	// UploadInflight / FetchInflight are the pool slots in use now.
	UploadInflight int
	FetchInflight  int
}

// Stats aggregates scheduler and per-tenant state.
func (f *Fleet) Stats() FleetStats {
	f.mu.Lock()
	st := FleetStats{Tenants: len(f.tenants)}
	gs := make([]*Ginja, 0, len(f.tenants))
	for _, g := range f.tenants {
		if g != nil {
			gs = append(gs, g)
		}
	}
	f.mu.Unlock()
	for _, g := range gs {
		st.PendingUpdates += g.PendingUpdates()
	}
	st.SafetyDeadlineMisses = f.sched.starvationCount()
	f.sched.mu.Lock()
	st.UploadInflight = f.sched.uploadInUse
	st.FetchInflight = f.sched.fetchInUse
	f.sched.mu.Unlock()
	return st
}

// Close evicts every tenant and releases the shared resources. Safe to
// call once; tenants' local databases are left intact.
func (f *Fleet) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	gs := make([]*Ginja, 0, len(f.tenants))
	for _, g := range f.tenants {
		if g != nil {
			gs = append(gs, g)
		}
	}
	f.tenants = make(map[string]*Ginja)
	f.prefixes = make(map[string]string)
	f.mu.Unlock()

	var firstErr error
	// Tenants close concurrently: each drain can wait on in-flight
	// uploads, and serial closes of a thousand tenants would stack
	// those waits end to end.
	var wg sync.WaitGroup
	var errMu sync.Mutex
	for _, g := range gs {
		wg.Add(1)
		go func(g *Ginja) {
			defer wg.Done()
			if err := g.Close(); err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	if f.wheel != nil {
		f.wheel.Stop()
	}
	return firstErr
}
