// Package core implements Ginja itself: the commit pipeline (Batch/Safety
// control, aggregation, parallel uploads, consecutive-timestamp release —
// paper Algorithm 2), the checkpointer with dump/incremental decision and
// garbage collection (Algorithm 3), the cloud data model (§5.2), and the
// Boot/Reboot/Recovery procedures (Algorithm 1).
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// DBObjectType distinguishes the two kinds of DB objects (§5.2).
type DBObjectType string

// DB object types.
const (
	// Dump is a full copy of all relevant database files.
	Dump DBObjectType = "dump"
	// Checkpoint is an incremental set of database-file writes.
	Checkpoint DBObjectType = "checkpoint"
	// Delta is a sparse copy of only the byte ranges dirtied since the
	// chain predecessor named by its ".b<ts>-<gen>" suffix. A delta
	// supersedes every checkpoint between that predecessor and itself: the
	// chain (dump base + ordered deltas) alone materializes the database
	// state at the delta's timestamp.
	Delta DBObjectType = "delta"
)

// Object name prefixes in the cloud.
const (
	walPrefix = "WAL/"
	dbPrefix  = "DB/"
)

// WALObjectName formats WAL/<ts>_<filename>_<offset> (§5.2). ts establishes
// the total order, filename is the local WAL segment the content belongs
// to, offset is its position in that segment. For packed multi-write
// objects (PackWrites) the name describes only the first write in the
// body; recovery always applies the full decoded write list.
func WALObjectName(ts int64, filename string, offset int64) string {
	return fmt.Sprintf("%s%d_%s_%d", walPrefix, ts, filename, offset)
}

// ParseWALObjectName inverts WALObjectName. Filenames may themselves
// contain underscores and slashes; ts is everything before the first '_'
// and offset everything after the last.
func ParseWALObjectName(name string) (ts int64, filename string, offset int64, err error) {
	rest, ok := strings.CutPrefix(name, walPrefix)
	if !ok {
		return 0, "", 0, fmt.Errorf("core: %q is not a WAL object name", name)
	}
	first := strings.IndexByte(rest, '_')
	last := strings.LastIndexByte(rest, '_')
	if first < 0 || last <= first {
		return 0, "", 0, fmt.Errorf("core: malformed WAL object name %q", name)
	}
	ts, err = strconv.ParseInt(rest[:first], 10, 64)
	if err != nil {
		return 0, "", 0, fmt.Errorf("core: WAL object name %q: %w", name, err)
	}
	offset, err = strconv.ParseInt(rest[last+1:], 10, 64)
	if err != nil {
		return 0, "", 0, fmt.Errorf("core: WAL object name %q: %w", name, err)
	}
	return ts, rest[first+1 : last], offset, nil
}

// DBName is the parsed form of a DB object name. Two on-cloud formats
// share the DB/ prefix:
//
//   - Legacy (whole-sealed): the payload is encoded and sealed once, then
//     split into raw byte chunks. Size is the whole object's sealed size,
//     Part ≥ 0 (".p<part>") identifies a chunk, Sealed is false and the
//     MAC only validates over the reassembled whole.
//   - Part-sealed (streamed, this format version): each part is an
//     independently encoded, independently sealed write list. Size is the
//     sealed size of THIS part (".s<part>"), and the final part — the
//     format's commit marker — additionally carries the total part count
//     (".n<count>"). Parts open and decode individually.
//
// An unsplit object (Part < 0) is byte-identical in both formats, so
// single-part streamed uploads keep emitting the legacy name.
//
// Delta objects additionally carry a ".b<baseTs>-<baseGen>" suffix naming
// the chain predecessor (a dump or an earlier delta). HasBase is set if
// and only if Type is Delta — a delta without linkage, or linkage on any
// other type, is malformed.
type DBName struct {
	Ts   int64
	Gen  int
	Type DBObjectType
	Size int64
	// Part is the part index, -1 for unsplit objects.
	Part int
	// Sealed marks a part-sealed (".s") part; false for legacy ".p" parts
	// and unsplit objects.
	Sealed bool
	// Count is the total number of parts, > 0 only on the final sealed
	// part (".n<count>", count ≥ 2).
	Count int
	// BaseTs/BaseGen name the chain predecessor of a Delta object;
	// meaningful only when HasBase is set.
	BaseTs  int64
	BaseGen int
	HasBase bool
}

// String formats the cloud object key for this name.
func (n DBName) String() string {
	base := fmt.Sprintf("%s%d_%s_%d", dbPrefix, n.Ts, n.Type, n.Size)
	if n.HasBase {
		base = fmt.Sprintf("%s.b%d-%d", base, n.BaseTs, n.BaseGen)
	}
	if n.Gen > 0 {
		base = fmt.Sprintf("%s.g%d", base, n.Gen)
	}
	switch {
	case n.Sealed && n.Count > 0:
		return fmt.Sprintf("%s.s%d.n%d", base, n.Part, n.Count)
	case n.Sealed:
		return fmt.Sprintf("%s.s%d", base, n.Part)
	case n.Part >= 0:
		return fmt.Sprintf("%s.p%d", base, n.Part)
	}
	return base
}

// DBObjectName formats DB/<ts>_<type>_<size> (§5.2), with two optional
// suffixes: ".g<gen>" disambiguates multiple DB objects that share a
// timestamp (two checkpoints with no commit in between both carry the ts
// of the same last WAL object — the paper's naming tells them apart only
// by size, which is not guaranteed unique), and ".p<part>" marks a legacy
// whole-sealed part of an object split at the maximum object size (§5.2
// footnote: 20 MB by default). gen 0 and part < 0 produce the paper's
// plain format.
func DBObjectName(ts int64, gen int, typ DBObjectType, size int64, part int) string {
	return DBName{Ts: ts, Gen: gen, Type: typ, Size: size, Part: part}.String()
}

// DBPartName formats the name of one part-sealed part: size is the sealed
// size of this part alone, and count (the total number of parts, ≥ 2) is
// carried only by the final part, as the upload's commit marker.
func DBPartName(ts int64, gen int, typ DBObjectType, size int64, part, count int) string {
	return DBName{Ts: ts, Gen: gen, Type: typ, Size: size, Part: part, Sealed: true, Count: count}.String()
}

// ParseDBObjectName inverts DBName.String. Only values the emitters can
// produce count as suffixes (legacy part ≥ 0, sealed part ≥ 0, count ≥ 2,
// gen > 0, base ts ≥ 0 and base gen ≥ 0); anything else — ".p-2", ".g0",
// ".n1", ".b3" — is not a suffix and must fail the field parse below
// rather than silently round-trip wrong.
func ParseDBObjectName(name string) (DBName, error) {
	n := DBName{Part: -1}
	rest, ok := strings.CutPrefix(name, dbPrefix)
	if !ok {
		return n, fmt.Errorf("core: %q is not a DB object name", name)
	}
	if i := strings.LastIndex(rest, ".n"); i >= 0 {
		c, cerr := strconv.Atoi(rest[i+2:])
		if cerr == nil && c >= 2 {
			n.Count = c
			rest = rest[:i]
		}
	}
	if i := strings.LastIndex(rest, ".s"); i >= 0 {
		p, perr := strconv.Atoi(rest[i+2:])
		if perr == nil && p >= 0 {
			n.Part = p
			n.Sealed = true
			rest = rest[:i]
		}
	}
	if !n.Sealed {
		if i := strings.LastIndex(rest, ".p"); i >= 0 {
			p, perr := strconv.Atoi(rest[i+2:])
			if perr == nil && p >= 0 {
				n.Part = p
				rest = rest[:i]
			}
		}
	}
	if i := strings.LastIndex(rest, ".g"); i >= 0 {
		g, gerr := strconv.Atoi(rest[i+2:])
		if gerr == nil && g > 0 {
			n.Gen = g
			rest = rest[:i]
		}
	}
	if i := strings.LastIndex(rest, ".b"); i >= 0 {
		if tsStr, genStr, ok := strings.Cut(rest[i+2:], "-"); ok {
			bts, terr := strconv.ParseInt(tsStr, 10, 64)
			bg, gerr := strconv.Atoi(genStr)
			if terr == nil && gerr == nil && bts >= 0 && bg >= 0 {
				n.BaseTs, n.BaseGen, n.HasBase = bts, bg, true
				rest = rest[:i]
			}
		}
	}
	// The count marker is only valid as ".s<part>.n<count>" with the final
	// part index; any other combination is not a name we emit.
	if n.Count > 0 && (!n.Sealed || n.Part != n.Count-1) {
		return DBName{Part: -1}, fmt.Errorf("core: malformed DB object name %q", name)
	}
	fields := strings.Split(rest, "_")
	if len(fields) != 3 {
		return DBName{Part: -1}, fmt.Errorf("core: malformed DB object name %q", name)
	}
	ts, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return DBName{Part: -1}, fmt.Errorf("core: DB object name %q: %w", name, err)
	}
	n.Ts = ts
	n.Type = DBObjectType(fields[1])
	if n.Type != Dump && n.Type != Checkpoint && n.Type != Delta {
		return DBName{Part: -1}, fmt.Errorf("core: DB object name %q: unknown type %q", name, n.Type)
	}
	// Base linkage is what makes a delta a delta: a delta without it could
	// not be chained, and linkage on a dump/checkpoint is not a name we
	// emit.
	if (n.Type == Delta) != n.HasBase {
		return DBName{Part: -1}, fmt.Errorf("core: malformed DB object name %q", name)
	}
	n.Size, err = strconv.ParseInt(fields[2], 10, 64)
	if err != nil {
		return DBName{Part: -1}, fmt.Errorf("core: DB object name %q: %w", name, err)
	}
	return n, nil
}

// FileWrite is one replicated file mutation: either a positional write or,
// when Whole is set (dump entries), the complete content of a file.
type FileWrite struct {
	Path   string
	Offset int64
	Data   []byte
	// Whole marks a dump entry: on recovery the file is truncated to
	// exactly this content.
	Whole bool
}

// End returns the byte offset just past this write.
func (w FileWrite) End() int64 { return w.Offset + int64(len(w.Data)) }

// Write-list wire format:
//
//	magic(4) "GJWL" | count(4) | entries...
//	entry: flags(1) | pathLen(2) | path | offset(8) | dataLen(8) | data
const writeListMagic = "GJWL"

// ErrBadWriteList reports a malformed serialized write list.
var ErrBadWriteList = errors.New("core: malformed write list")

// EncodeWrites serializes a write list for upload.
func EncodeWrites(writes []FileWrite) []byte {
	return EncodeWritesInto(nil, writes)
}

// EncodeWritesInto appends the serialized write list to buf (usually
// scratch[:0]) and returns the extended slice, letting steady-state
// encoders reuse one buffer instead of allocating per object. The caller
// must not hand the result to anything that retains it — Sealer.Seal does
// not.
func EncodeWritesInto(buf []byte, writes []FileWrite) []byte {
	size := 8
	for _, w := range writes {
		size += 1 + 2 + len(w.Path) + 8 + 8 + len(w.Data)
	}
	if cap(buf)-len(buf) < size {
		grown := make([]byte, len(buf), len(buf)+size)
		copy(grown, buf)
		buf = grown
	}
	buf = append(buf, writeListMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(writes)))
	for _, w := range writes {
		var flags byte
		if w.Whole {
			flags = 1
		}
		buf = append(buf, flags)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(w.Path)))
		buf = append(buf, w.Path...)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(w.Offset))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(w.Data)))
		buf = append(buf, w.Data...)
	}
	return buf
}

// DecodeWrites parses a serialized write list.
func DecodeWrites(buf []byte) ([]FileWrite, error) {
	if len(buf) < 8 || string(buf[:4]) != writeListMagic {
		return nil, ErrBadWriteList
	}
	count := int(binary.LittleEndian.Uint32(buf[4:8]))
	// The smallest entry (empty path, empty data) is 19 bytes, so a count
	// the buffer cannot possibly hold is malformed — and must not size an
	// allocation (a 4-byte header would otherwise demand gigabytes).
	const minEntrySize = 1 + 2 + 8 + 8
	if count > (len(buf)-8)/minEntrySize {
		return nil, ErrBadWriteList
	}
	writes := make([]FileWrite, 0, count)
	off := 8
	for i := 0; i < count; i++ {
		if off+3 > len(buf) {
			return nil, ErrBadWriteList
		}
		flags := buf[off]
		if flags&^1 != 0 {
			return nil, ErrBadWriteList
		}
		pathLen := int(binary.LittleEndian.Uint16(buf[off+1 : off+3]))
		off += 3
		if off+pathLen+16 > len(buf) {
			return nil, ErrBadWriteList
		}
		p := string(buf[off : off+pathLen])
		off += pathLen
		wOff := int64(binary.LittleEndian.Uint64(buf[off : off+8]))
		dataLen := binary.LittleEndian.Uint64(buf[off+8 : off+16])
		off += 16
		if dataLen > uint64(len(buf)-off) {
			return nil, ErrBadWriteList
		}
		data := append([]byte(nil), buf[off:off+int(dataLen)]...)
		off += int(dataLen)
		writes = append(writes, FileWrite{Path: p, Offset: wOff, Data: data, Whole: flags&1 != 0})
	}
	if off != len(buf) {
		return nil, ErrBadWriteList
	}
	return writes, nil
}

// MergeWrites coalesces a sequence of positional writes: overlapping bytes
// are resolved last-writer-wins, and adjacent/contiguous regions of the
// same file are merged into single writes. This is the aggregation of
// Algorithm 2 that lets many commits rewriting the same WAL page collapse
// into one cloud object ("by aggregating them we coalesce many updates in
// a single cloud object upload", §5.3).
//
// The result is ordered by (path, offset). Whole-file entries are passed
// through untouched.
func MergeWrites(writes []FileWrite) []FileWrite {
	type segment struct {
		off  int64
		data []byte
	}
	files := make(map[string][]segment)
	var order []string
	var whole []FileWrite
	for _, w := range writes {
		if w.Whole {
			whole = append(whole, w)
			continue
		}
		if _, ok := files[w.Path]; !ok {
			order = append(order, w.Path)
		}
		segs := files[w.Path]
		// Cut away the parts of existing segments that the new write
		// overlaps, then insert the new write.
		var next []segment
		for _, s := range segs {
			sEnd := s.off + int64(len(s.data))
			switch {
			case sEnd <= w.Offset || s.off >= w.End():
				next = append(next, s) // disjoint
			default:
				if s.off < w.Offset { // left remainder
					next = append(next, segment{off: s.off, data: s.data[:w.Offset-s.off]})
				}
				if sEnd > w.End() { // right remainder
					next = append(next, segment{off: w.End(), data: s.data[w.End()-s.off:]})
				}
			}
		}
		next = append(next, segment{off: w.Offset, data: append([]byte(nil), w.Data...)})
		files[w.Path] = next
	}
	var out []FileWrite
	sort.Strings(order)
	for _, p := range order {
		segs := files[p]
		sort.Slice(segs, func(i, j int) bool { return segs[i].off < segs[j].off })
		// Merge contiguous segments.
		var cur *FileWrite
		for _, s := range segs {
			if cur != nil && cur.End() == s.off {
				cur.Data = append(cur.Data, s.data...)
				continue
			}
			if cur != nil {
				out = append(out, *cur)
			}
			cur = &FileWrite{Path: p, Offset: s.off, Data: s.data}
		}
		if cur != nil {
			out = append(out, *cur)
		}
	}
	return append(out, whole...)
}

// PackWrites plans the minimum number of WAL objects for a batch: writes
// are greedily packed, in order, into multi-write objects of up to maxSize
// payload bytes each, and writes larger than maxSize are split into
// maxSize pieces first (the 20 MB object-size cap, §5.2 footnote). The
// wire format has always carried a write *list* per object; packing is
// what turns a batch of B scattered small commits into one seal + one PUT
// instead of one per write-run — the request-count lever the paper's cost
// model (§7.1) divides by B.
//
// Name-vs-body contract: a packed object is named after its FIRST write
// (WAL/<ts>_<filename>_<offset>), but its body is authoritative — recovery
// decodes and applies every write in the list, so the name is only an
// ordering key plus a human-readable hint. maxSize ≤ 0 packs everything
// into a single object.
func PackWrites(writes []FileWrite, maxSize int64) [][]FileWrite {
	return AppendPackWrites(nil, writes, maxSize)
}

// AppendPackWrites is PackWrites appending into dst (usually plan[:0]),
// reusing both the outer slice and the per-object inner slices so a
// steady-state aggregator plans each batch without allocating. The caller
// must consume or copy the plan before the next call with the same dst.
func AppendPackWrites(dst [][]FileWrite, writes []FileWrite, maxSize int64) [][]FileWrite {
	plan := dst[:0]
	var curBytes int64
	add := func(w FileWrite) {
		n := int64(len(w.Data))
		if len(plan) == 0 || (maxSize > 0 && curBytes > 0 && curBytes+n > maxSize) {
			if k := len(plan); k < cap(plan) {
				plan = plan[:k+1]
				plan[k] = plan[k][:0]
			} else {
				plan = append(plan, nil)
			}
			curBytes = 0
		}
		i := len(plan) - 1
		plan[i] = append(plan[i], w)
		curBytes += n
	}
	for _, w := range writes {
		if maxSize <= 0 || int64(len(w.Data)) <= maxSize || w.Whole {
			add(w)
			continue
		}
		// Oversized write: split into maxSize pieces. The pieces stream
		// through add like ordinary writes, so the final partial piece can
		// still share its object with subsequent small writes.
		for start := int64(0); start < int64(len(w.Data)); start += maxSize {
			end := start + maxSize
			if end > int64(len(w.Data)) {
				end = int64(len(w.Data))
			}
			add(FileWrite{Path: w.Path, Offset: w.Offset + start, Data: w.Data[start:end]})
		}
	}
	return plan
}

// SplitWrite chops a single write into pieces of at most maxSize bytes
// (the 20 MB object-size cap, §5.2 footnote).
func SplitWrite(w FileWrite, maxSize int64) []FileWrite {
	if maxSize <= 0 || int64(len(w.Data)) <= maxSize || w.Whole {
		return []FileWrite{w}
	}
	var out []FileWrite
	for start := int64(0); start < int64(len(w.Data)); start += maxSize {
		end := start + maxSize
		if end > int64(len(w.Data)) {
			end = int64(len(w.Data))
		}
		out = append(out, FileWrite{Path: w.Path, Offset: w.Offset + start, Data: w.Data[start:end]})
	}
	return out
}
