package core_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/core"
	"github.com/ginja-dr/ginja/internal/dbevent"
	"github.com/ginja-dr/ginja/internal/minidb"
	"github.com/ginja-dr/ginja/internal/minidb/pgengine"
	"github.com/ginja-dr/ginja/internal/vfs"
)

// TestChaosRandomCrashRecovery is the repository's strongest end-to-end
// property: for many random seeds, run a random single-key-transaction
// workload with random Batch/Safety parameters, random checkpoints and
// random flush points, crash at a random moment, recover from the cloud,
// and check that the recovered database is a *consistent prefix* of the
// commit history:
//
//  1. everything acknowledged by the last Flush survives, and
//  2. there is a single cut point T in commit order such that every key
//     holds exactly its last value at-or-before T (no torn or reordered
//     state).
func TestChaosRandomCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short mode")
	}
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runChaos(t, seed)
		})
	}
}

type chaosWrite struct {
	seq     int
	key     string
	deleted bool
}

func runChaos(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	ctx := context.Background()
	store := cloud.NewMemStore()

	params := core.DefaultParams()
	params.Batch = 1 + rng.Intn(8)
	params.Safety = params.Batch * (2 + rng.Intn(16))
	params.BatchTimeout = 10 * time.Millisecond
	params.SafetyTimeout = 10 * time.Second
	params.RetryBaseDelay = time.Millisecond
	params.DumpThreshold = 1.1 + rng.Float64()

	localFS := vfs.NewMemFS()
	g, err := core.New(localFS, store, dbevent.NewPGProcessor(), params)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Boot(ctx); err != nil {
		t.Fatal(err)
	}
	engine := pgengine.NewWithSizes(512, 8192, 1024)
	db, err := minidb.Open(g.FS(), engine, minidb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("kv", 4); err != nil {
		t.Fatal(err)
	}

	keys := make([]string, 6)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	var (
		history      []chaosWrite // committed writes, in commit order
		flushedUpTo  = -1         // last seq guaranteed durable by Flush
		seq          int
		ckpts        int64
		lastCkptWait int64
	)
	steps := 40 + rng.Intn(120)
	for i := 0; i < steps; i++ {
		switch r := rng.Intn(100); {
		case r < 70: // put
			key := keys[rng.Intn(len(keys))]
			value := fmt.Sprintf("%s#%d", key, seq)
			if err := db.Update(func(tx *minidb.Txn) error {
				return tx.Put("kv", []byte(key), []byte(value))
			}); err != nil {
				t.Fatal(err)
			}
			history = append(history, chaosWrite{seq: seq, key: key})
			seq++
		case r < 80: // delete
			key := keys[rng.Intn(len(keys))]
			if err := db.Update(func(tx *minidb.Txn) error {
				return tx.Delete("kv", []byte(key))
			}); err != nil {
				t.Fatal(err)
			}
			history = append(history, chaosWrite{seq: seq, key: key, deleted: true})
			seq++
		case r < 90: // checkpoint
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			ckpts++
		default: // flush: everything so far becomes guaranteed-durable
			if !g.Flush(10 * time.Second) {
				t.Fatal("flush timed out")
			}
			// Also wait for any checkpoints to finish uploading, so the
			// guarantee covers them too.
			for g.Stats().Checkpoints+g.Stats().Dumps < ckpts {
				if lastCkptWait++; lastCkptWait > 5000 {
					t.Fatal("checkpoint upload stuck")
				}
				time.Sleep(time.Millisecond)
			}
			flushedUpTo = seq - 1
		}
	}

	// CRASH at a random moment (no flush) and recover on a new machine.
	freshFS := vfs.NewMemFS()
	g2, err := core.New(freshFS, store, dbevent.NewPGProcessor(), params)
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.Recover(ctx); err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer g2.Close()
	db2, err := minidb.Open(g2.FS(), pgengine.NewWithSizes(512, 8192, 1024), minidb.Options{})
	if err != nil {
		t.Fatalf("DBMS restart after recovery: %v", err)
	}

	// Reconstruct the recovered per-key state.
	recovered := make(map[string]string)
	for _, key := range keys {
		v, err := db2.Get("kv", []byte(key))
		if err == nil {
			recovered[key] = string(v)
		} else if !errors.Is(err, minidb.ErrNotFound) {
			t.Fatalf("get %s: %v", key, err)
		}
	}

	// stateAt computes the expected per-key state after applying the
	// first cut+1 committed writes.
	stateAt := func(cut int) map[string]string {
		state := make(map[string]string)
		for _, w := range history {
			if w.seq > cut {
				break
			}
			if w.deleted {
				delete(state, w.key)
			} else {
				state[w.key] = fmt.Sprintf("%s#%d", w.key, w.seq)
			}
		}
		return state
	}
	matches := func(cut int) bool {
		want := stateAt(cut)
		if len(want) != len(recovered) {
			return false
		}
		for k, v := range want {
			if recovered[k] != v {
				return false
			}
		}
		return true
	}

	// Property 2: some cut point T reproduces the recovered state exactly.
	cut := -2
	for c := len(history) - 1; c >= -1; c-- {
		if matches(c) {
			cut = c
			break
		}
	}
	if cut == -2 {
		t.Fatalf("recovered state matches no prefix of the commit history.\nrecovered: %v\nhistory: %+v",
			recovered, history)
	}
	// Property 1: the cut covers everything the last Flush guaranteed.
	if cut < flushedUpTo {
		t.Fatalf("recovered cut %d is older than the flushed frontier %d", cut, flushedUpTo)
	}
	t.Logf("seed %d: B=%d S=%d, %d commits, %d checkpoints, flushed to %d, recovered cut %d",
		seed, params.Batch, params.Safety, seq, ckpts, flushedUpTo, cut)
}
