package core_test

import (
	"fmt"
	"testing"

	"github.com/ginja-dr/ginja/internal/sim"
)

// TestChaosRandomCrashRecovery is the repository's strongest end-to-end
// property, now running on the deterministic simulation driver
// (internal/sim): for each seed, a fault schedule (provider outages,
// transient-failure windows, a primary crash at a random step) and a
// random workload with random Batch/Safety/TB/TS parameters run against
// the full stack entirely in virtual time, then the run recovers on a
// fresh machine and checks the consistent-prefix invariant:
//
//  1. everything acknowledged by the last Flush survives, and
//  2. there is a single cut point T in commit order such that every key
//     holds exactly its last value at-or-before T (no torn or reordered
//     state).
//
// Virtual time makes each seed take milliseconds regardless of how many
// simulated seconds of TB/TS timers, retry backoff, and cloud latency it
// spans, so this sweep covers an order of magnitude more seeds than the
// old wall-clock version in less total time. A failing seed prints its
// full schedule; replay it with
//
//	go test ./internal/core -run 'TestChaosRandomCrashRecovery/seed=N'
func TestChaosRandomCrashRecovery(t *testing.T) {
	seeds := 200
	if testing.Short() {
		seeds = 32
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			res, err := sim.Run(sim.Config{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if testing.Verbose() {
				t.Logf("%s: B=%d S=%d TB=%v TS=%v retries=%d, %d commits, %d checkpoints, flushed to %d, cut %d, %v virtual",
					res.Schedule, res.Batch, res.Safety, res.BatchTimeout, res.SafetyTimeout,
					res.UploadRetries, res.Commits, res.Checkpoints, res.FlushedUpTo, res.Cut,
					res.VirtualElapsed)
			}
		})
	}
}
