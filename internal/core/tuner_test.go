package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/cloud/cloudsim"
	"github.com/ginja-dr/ginja/internal/costmodel"
	"github.com/ginja-dr/ginja/internal/dbevent"
	"github.com/ginja-dr/ginja/internal/simclock"
	"github.com/ginja-dr/ginja/internal/vfs"
)

// TestLatFitConvergesAfterRTTStep: the fit must track a provider RTT
// regime change (10 ms → 80 ms base latency) within its EWMA window
// instead of averaging the two regimes forever.
func TestLatFitConvergesAfterRTTStep(t *testing.T) {
	f := newLatFit(tunerFitDecay)
	perByte := 1.25e-7 // 8 MB/s upload bandwidth
	sample := func(base float64, size float64) {
		f.add(size, base+perByte*size)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		sample(0.010, float64(10_000+rng.Intn(500_000)))
	}
	base, slope, ok := f.fit()
	if !ok {
		t.Fatal("fit not ready after 100 samples")
	}
	if base < 0.005 || base > 0.015 {
		t.Fatalf("pre-step base = %v, want ≈ 0.010", base)
	}
	if slope < perByte/2 || slope > perByte*2 {
		t.Fatalf("pre-step perByte = %v, want ≈ %v", slope, perByte)
	}
	// RTT steps up 8×. ~150 samples ≫ the ~50-sample decay window.
	for i := 0; i < 150; i++ {
		sample(0.080, float64(10_000+rng.Intn(500_000)))
	}
	base, _, _ = f.fit()
	if base < 0.060 || base > 0.100 {
		t.Fatalf("post-step base = %v, want ≈ 0.080 (fit failed to track the regime change)", base)
	}
}

// TestLatFitDegenerateSizes: constant-size samples carry no slope
// information; the fit must fall back to a pure fixed-latency model
// instead of dividing by a ~zero determinant.
func TestLatFitDegenerateSizes(t *testing.T) {
	f := newLatFit(tunerFitDecay)
	for i := 0; i < 20; i++ {
		f.add(8192, 0.040)
	}
	base, slope, ok := f.fit()
	if !ok {
		t.Fatal("fit not ready")
	}
	if slope != 0 {
		t.Fatalf("perByte = %v on constant sizes, want 0", slope)
	}
	if base < 0.039 || base > 0.041 {
		t.Fatalf("base = %v, want ≈ 0.040", base)
	}
}

// tunerTestInput is the 40 ms RTT / 256-byte-commit shape the adaptive
// bench runs, at 200 updates/s against S3 prices.
func tunerTestInput(ceiling float64) solveInput {
	return solveInput{
		rate:           200,
		bytesPerUpdate: 300,
		base:           0.040,
		perByte:        1.25e-7,
		uploaders:      5,
		safety:         1024,
		maxTB:          10 * time.Second,
		ceilingPerDay:  ceiling,
		prices:         cloud.AmazonS3May2017(),
	}
}

// steadyDollarsPerDay prices the steady state of batch size b at the
// given rate, with the same deployment shape the controller budgets.
func steadyDollarsPerDay(rate float64, b int) float64 {
	dep := costmodel.PaperEvaluationDeployment()
	dep.UpdatesPerMinute = rate * 60
	dep.Batch = float64(b)
	return costmodel.Monthly(dep, cloud.AmazonS3May2017()).Total() / 30
}

// TestSolveKnobsCostCeilingBinding: the ceiling must bind — the chosen
// batch's steady-state spend stays under it, a looser ceiling buys a
// smaller (lower-latency) batch, a tighter one forces a larger batch.
func TestSolveKnobsCostCeilingBinding(t *testing.T) {
	bTight, _, _ := solveKnobs(tunerTestInput(0.25))
	bMid, _, _ := solveKnobs(tunerTestInput(0.80))
	bLoose, _, _ := solveKnobs(tunerTestInput(2.00))
	for _, tc := range []struct {
		ceiling float64
		b       int
	}{{0.25, bTight}, {0.80, bMid}, {2.00, bLoose}} {
		if got := steadyDollarsPerDay(200, tc.b); got > tc.ceiling {
			t.Fatalf("ceiling $%v/day: B=%d costs $%v/day", tc.ceiling, tc.b, got)
		}
	}
	if !(bTight > bMid && bMid > bLoose) {
		t.Fatalf("ceiling ordering violated: B(0.25)=%d, B(0.80)=%d, B(2.00)=%d (want strictly decreasing)",
			bTight, bMid, bLoose)
	}
	// At $0.8/day and 200 upd/s the PUT term is ~$86.4/day at B=1, so the
	// floor is ≈ 86.4/(0.9·0.8) ≈ 120+: the latency optimum alone (small
	// batches) would blow the budget, proving the constraint is active.
	if bMid < 100 {
		t.Fatalf("B(0.80) = %d: ceiling not binding (latency optimum leaked through)", bMid)
	}
}

// TestSolveKnobsClampsToSafety: an infeasible ceiling (or an absurd rate)
// must clamp to Safety — never exceed it, never reject the solve.
func TestSolveKnobsClampsToSafety(t *testing.T) {
	in := tunerTestInput(0.01) // ~$86/day of PUTs at B=1; $0.01 is hopeless
	b, tb, _ := solveKnobs(in)
	if b != in.safety {
		t.Fatalf("infeasible ceiling: B = %d, want clamp to Safety %d", b, in.safety)
	}
	if tb > in.maxTB || tb < tunerMinTB {
		t.Fatalf("TB = %v outside [%v, %v]", tb, tunerMinTB, in.maxTB)
	}
	in = tunerTestInput(1e9) // no effective ceiling: pure latency optimum
	b, _, _ = solveKnobs(in)
	if b < 1 || b > in.safety {
		t.Fatalf("unconstrained solve: B = %d outside [1, %d]", b, in.safety)
	}
}

// TestCommitQueueShrinkWakesAggregator: five pending updates sit short of
// B=100; when the controller shrinks B to 3 the parked Aggregator must
// wake and cut a batch of 3 — a publish that didn't broadcast would
// deadlock the pipeline until the (long) old TB fired.
func TestCommitQueueShrinkWakesAggregator(t *testing.T) {
	p := testParams(100, 1000)
	p.BatchTimeout = time.Hour // only the knob change may release the cut
	params, err := p.Validate()
	if err != nil {
		t.Fatal(err)
	}
	q := newCommitQueue(params)
	defer q.close()
	for i := 0; i < 5; i++ {
		if _, err := q.put(update{path: "pg_xlog/0001", off: int64(i) * 8192, data: []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	got := make(chan int, 1)
	go func() {
		b, ok := q.nextBatch(nil)
		if ok {
			got <- len(b)
		}
	}()
	select {
	case n := <-got:
		t.Fatalf("nextBatch returned %d updates before the shrink", n)
	case <-time.After(20 * time.Millisecond):
	}
	q.setKnobs(3, time.Hour)
	select {
	case n := <-got:
		if n != 3 {
			t.Fatalf("batch of %d after shrink to B=3", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("aggregator still parked after knob shrink (missing wakeup)")
	}
	if b, tb := q.knobs(); b != 3 || tb != time.Hour {
		t.Fatalf("knobs() = (%d, %v), want (3, 1h)", b, tb)
	}
}

// TestTunerAdaptsUnderSimulatedCloud: end to end on a virtual clock — a
// paced workload over a 40 ms simulated WAN must move the effective
// batch off its initial value, respect [1, Safety], produce a fitted PUT
// latency near the modelled RTT, and keep the steady-state spend under
// the ceiling.
func TestTunerAdaptsUnderSimulatedCloud(t *testing.T) {
	clk := simclock.NewSim()
	stopPump := clk.Pump()
	defer stopPump()

	store := cloudsim.New(cloud.NewMemStore(), cloudsim.Options{
		Profile: cloudsim.Profile{BaseLatency: 40 * time.Millisecond, UploadBandwidth: 8e6, DownloadBandwidth: 30e6},
		Clock:   clk,
		Seed:    1,
	})
	p := DefaultParams()
	p.Clock = clk
	p.Batch = 100
	p.Safety = 1024
	p.BatchTimeout = 10 * time.Second
	p.SafetyTimeout = 2 * time.Minute
	p.AdaptiveBatching = true
	p.CostCeilingPerDay = 0.8
	g, err := New(vfs.NewMemFS(), store, dbevent.NewPGProcessor(), p)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Boot(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	fsys := g.FS()
	payload := make([]byte, 256)
	// 200 updates/s for 6 virtual seconds.
	for i := 0; i < 1200; i++ {
		if err := vfs.WriteAt(fsys, "pg_xlog/000000010000000000000001", int64(i%4096)*8192, payload); err != nil {
			t.Fatal(err)
		}
		clk.Sleep(5 * time.Millisecond)
	}
	if !g.Flush(10 * time.Minute) {
		t.Fatal("Flush did not drain")
	}
	s := g.Stats()
	if s.EffectiveBatch < 1 || s.EffectiveBatch > p.Safety {
		t.Fatalf("EffectiveBatch = %d outside [1, %d]", s.EffectiveBatch, p.Safety)
	}
	if s.EffectiveBatch == p.Batch {
		t.Fatalf("EffectiveBatch stayed at the initial %d: controller never re-solved", p.Batch)
	}
	if s.FittedPutLatency < 20*time.Millisecond || s.FittedPutLatency > 200*time.Millisecond {
		t.Fatalf("FittedPutLatency = %v, want near the 40ms modelled RTT", s.FittedPutLatency)
	}
	if got := steadyDollarsPerDay(200, s.EffectiveBatch); got > 0.8 {
		t.Fatalf("steady spend at EffectiveBatch %d = $%v/day > $0.8 ceiling", s.EffectiveBatch, got)
	}
}

// TestAdaptiveProperty: across 5 seeds of randomized pacing, payload
// sizes and knob starting points, the controller must (a) keep the
// effective batch within [1, Safety], (b) keep steady-state spend under
// the ceiling — or sit exactly at the Safety clamp when the ceiling is
// infeasible at the observed rate — and (c) never deadlock the
// aggregator as knobs move mid-batch (the bounded-virtual-time Flush
// proves liveness).
func TestAdaptiveProperty(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			clk := simclock.NewSim()
			stopPump := clk.Pump()
			defer stopPump()

			store := cloudsim.New(cloud.NewMemStore(), cloudsim.Options{
				Profile: cloudsim.Profile{
					BaseLatency:     time.Duration(5+rng.Intn(150)) * time.Millisecond,
					UploadBandwidth: 8e6, DownloadBandwidth: 30e6, JitterFraction: 0.1,
				},
				Clock: clk,
				Seed:  seed,
			})
			ceiling := []float64{0.25, 0.8, 2.0}[rng.Intn(3)]
			p := DefaultParams()
			p.Clock = clk
			p.Batch = 1 + rng.Intn(200)
			p.Safety = p.Batch * (2 + rng.Intn(8))
			p.BatchTimeout = 10 * time.Second
			p.SafetyTimeout = 2 * time.Minute
			p.AdaptiveBatching = true
			p.CostCeilingPerDay = ceiling
			g, err := New(vfs.NewMemFS(), store, dbevent.NewPGProcessor(), p)
			if err != nil {
				t.Fatal(err)
			}
			if err := g.Boot(context.Background()); err != nil {
				t.Fatal(err)
			}
			defer g.Close()
			fsys := g.FS()
			payload := make([]byte, 64+rng.Intn(1024))
			pace := time.Duration(1+rng.Intn(10)) * time.Millisecond
			commits := 600
			start := clk.Now()
			for i := 0; i < commits; i++ {
				if err := vfs.WriteAt(fsys, "pg_xlog/000000010000000000000001", int64(i%4096)*8192, payload); err != nil {
					t.Fatal(err)
				}
				clk.Sleep(pace)
				if rng.Intn(97) == 0 {
					clk.Sleep(time.Duration(rng.Intn(400)) * time.Millisecond) // lull
				}
			}
			elapsed := clk.Since(start)
			if !g.Flush(10 * time.Minute) {
				t.Fatal("Flush did not drain (aggregator deadlocked under moving knobs?)")
			}
			s := g.Stats()
			if s.EffectiveBatch < 1 || s.EffectiveBatch > p.Safety {
				t.Fatalf("EffectiveBatch = %d outside [1, %d]", s.EffectiveBatch, p.Safety)
			}
			if s.EffectiveBatchTimeout > p.BatchTimeout {
				t.Fatalf("EffectiveBatchTimeout = %v exceeds the configured cap %v", s.EffectiveBatchTimeout, p.BatchTimeout)
			}
			rate := float64(commits) / elapsed.Seconds()
			if s.EffectiveBatch != p.Safety { // Safety clamp = documented infeasible case
				if got := steadyDollarsPerDay(rate, s.EffectiveBatch); got > ceiling {
					t.Fatalf("steady spend at B=%d, rate %.0f/s = $%.3f/day > $%v ceiling",
						s.EffectiveBatch, rate, got, ceiling)
				}
			}
		})
	}
}

// TestCrashMidPipelinedPut: the pipelined uploader seals ahead of the
// PUT stage; a crash while an object is sealed-but-unPUT must not ack it
// — recovery applies only the consecutive-ts prefix, exactly as in the
// sequential path.
func TestCrashMidPipelinedPut(t *testing.T) {
	mem := cloud.NewMemStore()
	gs := &gatedStore{ObjectStore: mem, blocked: make(map[string]chan struct{})}
	gs.block("WAL/2_")

	p := DefaultParams()
	p.Batch = 6
	p.Safety = 64
	p.BatchTimeout = 20 * time.Millisecond
	p.MaxObjectSize = 200 // 6 × 100 B writes → 3 packed objects (ts 1,2,3)
	p.RetryBaseDelay = time.Millisecond
	p.Uploaders = 2 // seal stage runs ahead of the gated PUT stage
	g, err := New(vfs.NewMemFS(), gs, dbevent.NewPGProcessor(), p)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Boot(context.Background()); err != nil {
		t.Fatal(err)
	}
	fsys := g.FS()
	for i := 0; i < 6; i++ {
		data := make([]byte, 100)
		for j := range data {
			data[j] = 'a' + byte(i)
		}
		if err := vfs.WriteAt(fsys, "pg_xlog/0001", int64(i)*100, data); err != nil {
			t.Fatal(err)
		}
	}
	// ts=1 and ts=3 land; ts=2 is sealed but stuck behind the gate.
	waitUntil(t, func() bool {
		infos, err := mem.List(context.Background(), "WAL/")
		return err == nil && len(infos) >= 2
	})
	// No release may have happened: ts=1 alone is not a full batch, and
	// the ts=2 gap blocks the frontier. Then crash without draining.
	if got := g.pipe.q.size(); got != 6 {
		t.Fatalf("queue released %d updates with ts=2 still unPUT", 6-got)
	}
	g.pipe.drainAndStop(10 * time.Millisecond) //nolint:errcheck

	freshFS := vfs.NewMemFS()
	g2, err := New(freshFS, mem, dbevent.NewPGProcessor(), p)
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.Recover(context.Background()); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer g2.Close()
	got, err := vfs.ReadFile(freshFS, "pg_xlog/0001")
	if err != nil {
		t.Fatalf("recovered WAL missing: %v", err)
	}
	if len(got) < 200 {
		t.Fatalf("consecutive prefix (ts=1, 200 bytes) not recovered: %d bytes", len(got))
	}
	if len(got) > 400 {
		t.Fatalf("recovered %d bytes: ts=3 applied past the sealed-but-unPUT ts=2 gap", len(got))
	}
}

// TestRetryJitterBoundsAndDeterminism: the jitter factor must live in
// [0.5, 1.0), respect the minRetryDelay floor, decorrelate distinct
// objects, and be a pure function of its inputs (so simulation runs stay
// reproducible).
func TestRetryJitterBoundsAndDeterminism(t *testing.T) {
	now := time.Unix(1700000000, 12345)
	d := 100 * time.Millisecond
	seen := map[time.Duration]bool{}
	for _, name := range []string{"WAL/1_pg_xlog_0001_0", "WAL/2_pg_xlog_0001_8192", "LIST", "DB/3_dump"} {
		for attempt := 0; attempt < 6; attempt++ {
			j := retryJitter(d, name, attempt, now)
			if j < d/2 || j >= d {
				t.Fatalf("retryJitter(%v, %q, %d) = %v outside [d/2, d)", d, name, attempt, j)
			}
			if j != retryJitter(d, name, attempt, now) {
				t.Fatalf("retryJitter not deterministic for (%q, %d)", name, attempt)
			}
			seen[j] = true
		}
	}
	if len(seen) < 12 {
		t.Fatalf("only %d distinct jitters across 24 (name, attempt) pairs: not decorrelating", len(seen))
	}
	if j := retryJitter(minRetryDelay, "x", 0, now); j < minRetryDelay {
		t.Fatalf("jitter broke the minRetryDelay floor: %v", j)
	}
}
