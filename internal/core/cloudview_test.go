package core

import (
	"sync"
	"testing"

	"github.com/ginja-dr/ginja/internal/cloud"
)

func TestCloudViewTimestampsStartAtOne(t *testing.T) {
	v := NewCloudView()
	if ts := v.NextWALTs(); ts != 1 {
		t.Fatalf("first NextWALTs = %d, want 1 (0 is reserved for the boot dump)", ts)
	}
	if ts := v.NextWALTs(); ts != 2 {
		t.Fatalf("second NextWALTs = %d, want 2", ts)
	}
	if last := v.LastWALTs(); last != 2 {
		t.Fatalf("LastWALTs = %d, want 2", last)
	}
}

func TestCloudViewAddDelete(t *testing.T) {
	v := NewCloudView()
	v.AddWAL(WALObjectInfo{Ts: 1, Filename: "seg", Offset: 0, Size: 100})
	v.AddWAL(WALObjectInfo{Ts: 2, Filename: "seg", Offset: 8192, Size: 200})
	v.AddDB(DBObjectInfo{Ts: 0, Type: Dump, Size: 1000})
	v.AddDB(DBObjectInfo{Ts: 2, Type: Checkpoint, Size: 500})

	if got := v.TotalDBSize(); got != 1500 {
		t.Fatalf("TotalDBSize = %d, want 1500", got)
	}
	if wal := v.WALObjects(); len(wal) != 2 || wal[0].Ts != 1 || wal[1].Ts != 2 {
		t.Fatalf("WALObjects = %+v", wal)
	}
	v.DeleteWAL(1)
	if wal := v.WALObjects(); len(wal) != 1 || wal[0].Ts != 2 {
		t.Fatalf("after delete, WALObjects = %+v", wal)
	}
	v.DeleteDB(0, 0)
	if got := v.TotalDBSize(); got != 500 {
		t.Fatalf("TotalDBSize after delete = %d, want 500", got)
	}
}

func TestCloudViewLatestDump(t *testing.T) {
	v := NewCloudView()
	if _, ok := v.LatestDump(); ok {
		t.Fatal("empty view reported a dump")
	}
	v.AddDB(DBObjectInfo{Ts: 0, Type: Dump, Size: 10})
	v.AddDB(DBObjectInfo{Ts: 5, Type: Checkpoint, Size: 10})
	v.AddDB(DBObjectInfo{Ts: 9, Type: Dump, Size: 10})
	d, ok := v.LatestDump()
	if !ok || d.Ts != 9 {
		t.Fatalf("LatestDump = %+v, %v; want ts 9", d, ok)
	}
}

func TestCloudViewCounterAdvancesPastKnownObjects(t *testing.T) {
	v := NewCloudView()
	v.AddWAL(WALObjectInfo{Ts: 41, Filename: "seg", Offset: 0})
	if ts := v.NextWALTs(); ts != 42 {
		t.Fatalf("NextWALTs after AddWAL(41) = %d, want 42", ts)
	}
}

func TestCloudViewLoadFromList(t *testing.T) {
	v := NewCloudView()
	infos := []cloud.ObjectInfo{
		{Name: "WAL/3_pg_xlog/000000010000000000000000_8192", Size: 100},
		{Name: "WAL/1_pg_xlog/000000010000000000000000_0", Size: 100},
		{Name: "DB/0_dump_900", Size: 900},
		{Name: "DB/2_checkpoint_50", Size: 50},
	}
	if err := v.LoadFromList(infos); err != nil {
		t.Fatal(err)
	}
	if wal := v.WALObjects(); len(wal) != 2 || wal[0].Ts != 1 || wal[1].Ts != 3 {
		t.Fatalf("WALObjects = %+v", wal)
	}
	if db := v.DBObjects(); len(db) != 2 {
		t.Fatalf("DBObjects = %+v", db)
	}
	if got := v.TotalDBSize(); got != 950 {
		t.Fatalf("TotalDBSize = %d", got)
	}
	if ts := v.NextWALTs(); ts != 4 {
		t.Fatalf("NextWALTs after load = %d, want 4", ts)
	}
}

func TestCloudViewLoadFromListParts(t *testing.T) {
	v := NewCloudView()
	infos := []cloud.ObjectInfo{
		{Name: "DB/7_dump_3000.p0", Size: 1000},
		{Name: "DB/7_dump_3000.p1", Size: 1000},
		{Name: "DB/7_dump_3000.p2", Size: 1000},
	}
	if err := v.LoadFromList(infos); err != nil {
		t.Fatal(err)
	}
	db := v.DBObjects()
	if len(db) != 1 || db[0].Parts != 3 || db[0].Size != 3000 {
		t.Fatalf("DBObjects = %+v", db)
	}
	names := db[0].PartNames()
	if len(names) != 3 || names[0] != "DB/7_dump_3000.p0" || names[2] != "DB/7_dump_3000.p2" {
		t.Fatalf("PartNames = %v", names)
	}
	// Size must be counted once, not per part.
	if got := v.TotalDBSize(); got != 3000 {
		t.Fatalf("TotalDBSize = %d, want 3000", got)
	}
}

func TestCloudViewLoadFromListRejectsForeignObjects(t *testing.T) {
	v := NewCloudView()
	err := v.LoadFromList([]cloud.ObjectInfo{{Name: "random-junk"}})
	if err == nil {
		t.Fatal("foreign object accepted")
	}
}

func TestCloudViewConcurrent(t *testing.T) {
	v := NewCloudView()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ts := v.NextWALTs()
				v.AddWAL(WALObjectInfo{Ts: ts, Filename: "seg", Offset: 0})
			}
		}()
	}
	wg.Wait()
	if got := len(v.WALObjects()); got != 1600 {
		t.Fatalf("WALObjects = %d, want 1600", got)
	}
	if last := v.LastWALTs(); last != 1600 {
		t.Fatalf("LastWALTs = %d, want 1600 (no duplicate timestamps)", last)
	}
}
