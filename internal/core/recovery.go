package core

import (
	"time"

	"github.com/ginja-dr/ginja/internal/obs"
	"github.com/ginja-dr/ginja/internal/vfs"
)

// RecoveryBreakdown is the machine-readable RTO budget of one recovery:
// how long each phase of Algorithm 1's Recovery mode took, in the clock
// the instance runs on (wall in production, virtual under simulation).
// It is produced by Recover/RecoverAt, surfaced via Stats.LastRecovery,
// exported per phase as the ginja_recovery_phase_seconds histogram, and
// recorded as "recovery:<phase>" spans on /tracez.
type RecoveryBreakdown struct {
	// Mode is "recover" (Recover: restore and resume replication) or
	// "recover_at" (RecoverAt: point-in-time restore onto a target FS).
	Mode string
	// DumpTs is the timestamp of the dump generation restored from.
	DumpTs int64
	// List is the cloud LIST that discovers the surviving objects.
	List time.Duration
	// ViewBuild reconstructs the CloudView from the listing.
	ViewBuild time.Duration
	// Fetch is the cumulative GET time across the parallel prefetchers
	// (retries included). With RecoveryFetchers > 1 this exceeds the
	// elapsed fetch window — it measures cloud work, not wall time.
	Fetch time.Duration
	// Decode is unsealing (decrypt/decompress) plus write-list decoding,
	// accumulated on the strictly-ordered apply path.
	Decode time.Duration
	// Apply is replaying the decoded writes onto the target file system.
	Apply time.Duration
	// Verify is the post-restore pass over the target: every restored
	// file is enumerated and stat-ed so a recovery that silently dropped
	// a file fails here, not when the DBMS first touches it.
	Verify time.Duration
	// Total is end-to-end Recover/RecoverAt duration (elapsed, not the sum
	// of the phases: Fetch overlaps Decode/Apply by design).
	Total time.Duration
	// Objects is how many cloud objects the restore plan contained
	// (DB object parts plus WAL objects); WALObjects counts the WAL
	// portion, i.e. the consecutive-timestamp run replayed after the
	// newest checkpoint. Bytes is the sealed payload fetched.
	Objects    int
	WALObjects int
	Bytes      int64
	// VerifiedFiles and VerifiedBytes summarize the verify pass.
	VerifiedFiles int
	VerifiedBytes int64
}

// observeRecovery exports one finished recovery into the registry — a
// per-phase histogram series (label phase=list|view|fetch|decode|apply|
// verify|total) plus "recovery:<phase>" spans correlated by the dump
// timestamp — and is a no-op without a registry, so sim-driven recoveries
// (no metrics attached) still produce the breakdown itself for free.
func observeRecovery(reg *obs.Registry, bd *RecoveryBreakdown, started time.Time) {
	if reg == nil {
		return
	}
	phases := []struct {
		name string
		d    time.Duration
	}{
		{"list", bd.List},
		{"view", bd.ViewBuild},
		{"fetch", bd.Fetch},
		{"decode", bd.Decode},
		{"apply", bd.Apply},
		{"verify", bd.Verify},
		{"total", bd.Total},
	}
	spans := reg.Spans()
	for _, ph := range phases {
		reg.Histogram(metricRecoveryPhase,
			"Recovery (RTO) duration by phase in seconds; phase=total is end-to-end, fetch is cumulative across parallel prefetchers.",
			obs.Labels{"phase": ph.name}, nil).ObserveDuration(ph.d)
		spans.Record(obs.Span{
			Name: "recovery:" + ph.name, ID: bd.DumpTs, Extra: int64(bd.Objects),
			Start: started, Duration: ph.d,
		})
	}
}

// verifyRestore is the recovery verify phase: enumerate the restored tree
// and stat every file, counting what survived. It catches a restore that
// dropped or truncated files to zero-visibility (unreadable entries) at
// recovery time rather than at first DBMS access.
func verifyRestore(target vfs.FS) (files int, bytes int64, err error) {
	paths, err := vfs.Walk(target, "")
	if err != nil {
		return 0, 0, err
	}
	for _, p := range paths {
		info, err := target.Stat(p)
		if err != nil {
			return files, bytes, err
		}
		files++
		bytes += info.Size()
	}
	return files, bytes, nil
}
