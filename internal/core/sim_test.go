package core

import (
	"runtime"
	"testing"
	"time"

	"github.com/ginja-dr/ginja/internal/sealer"
	"github.com/ginja-dr/ginja/internal/simclock"
)

// These tests pin the TB/TS timeout machinery to exact virtual
// timestamps: no wall-clock sleeps, no timing slop, and the
// multi-virtual-minute scenarios (10-second retry backoff, Safety
// timeouts) finish in microseconds.

// waitUntil yields the scheduler until cond holds; it fails the test
// rather than spinning forever.
func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 1_000_000; i++ {
		if cond() {
			return
		}
		runtime.Gosched()
	}
	t.Fatal("condition never held")
}

func simQueueParams(clk simclock.Clock, b, s int) Params {
	p := testParams(b, s)
	p.Clock = clk
	return p
}

// TestSimTBFiresAtExactDeadline: the Batch timeout releases a partial
// batch exactly at TB, not a tick before.
func TestSimTBFiresAtExactDeadline(t *testing.T) {
	clk := simclock.NewSim()
	p := simQueueParams(clk, 4, 100)
	p.BatchTimeout = 100 * time.Millisecond
	q := newCommitQueue(p)
	defer q.close()

	if _, err := q.put(update{path: "f", off: 0, data: []byte("a")}); err != nil {
		t.Fatal(err)
	}
	if _, err := q.put(update{path: "f", off: 1, data: []byte("b")}); err != nil {
		t.Fatal(err)
	}

	clk.Advance(99 * time.Millisecond)
	q.mu.Lock()
	expired := q.tbExpired
	q.mu.Unlock()
	if expired {
		t.Fatal("TB expired before the deadline")
	}

	clk.Advance(time.Millisecond) // onTB fires synchronously here
	batch, ok := q.nextBatch(nil) // must not block: partial batch released
	if !ok || len(batch) != 2 {
		t.Fatalf("nextBatch after TB = (%d items, %v), want 2 items", len(batch), ok)
	}
}

// TestSimTBRearmsPerBatch: TB restarts when unsent items remain after a
// partial take, and goes quiet when the queue has nothing unsent.
func TestSimTBRearmsPerBatch(t *testing.T) {
	clk := simclock.NewSim()
	p := simQueueParams(clk, 2, 100)
	p.BatchTimeout = 100 * time.Millisecond
	q := newCommitQueue(p)
	defer q.close()

	if clk.PendingTimers() != 0 {
		t.Fatalf("idle queue scheduled %d timers, want 0", clk.PendingTimers())
	}
	for i := 0; i < 3; i++ {
		if _, err := q.put(update{path: "f", off: int64(i), data: []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	if batch, ok := q.nextBatch(nil); !ok || len(batch) != 2 { // full batch, no TB needed
		t.Fatalf("first batch = (%d, %v)", len(batch), ok)
	}
	// One unsent item remains: TB must be armed and release it at +100ms.
	clk.Advance(100 * time.Millisecond)
	if batch, ok := q.nextBatch(nil); !ok || len(batch) != 1 {
		t.Fatalf("TB batch = (%d, %v), want the 1 leftover item", len(batch), ok)
	}
}

// TestSimTSExpiryBlocksCommits: once the oldest unacknowledged update is
// TS old, new commits block — even far below S — and unblock the moment
// the Unlocker acknowledges, with the blocked span measured in virtual
// time.
func TestSimTSExpiryBlocksCommits(t *testing.T) {
	clk := simclock.NewSim()
	p := simQueueParams(clk, 100, 100) // B too large to ever fill: nothing is taken
	p.SafetyTimeout = 5 * time.Second
	q := newCommitQueue(p)
	defer q.close()

	if _, err := q.put(update{path: "f", off: 0, data: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(5 * time.Second) // onTS fires: queue is now in the blocked state

	done := make(chan time.Duration, 1)
	go func() {
		blocked, err := q.put(update{path: "f", off: 1, data: []byte("y")})
		if err != nil {
			done <- -1
			return
		}
		done <- blocked
	}()
	// The second put must have enqueued and parked (it cannot finish while
	// tsExpired holds).
	waitUntil(t, func() bool { return q.size() == 2 })
	select {
	case d := <-done:
		t.Fatalf("put returned (%v) although TS had expired", d)
	default:
	}

	clk.Advance(3 * time.Second) // the writer stays blocked across virtual time
	q.removeFront(1)             // cloud acknowledged the old update
	blocked := <-done
	if blocked < 3*time.Second {
		t.Fatalf("blocked duration = %v, want ≥ 3s of virtual time", blocked)
	}
	if q.blockedDuration() < 3*time.Second {
		t.Fatalf("blockedDuration() = %v, want ≥ 3s", q.blockedDuration())
	}
}

// TestSimDrainTimesOutVirtually: drain's timeout is clock-driven — a
// stuck queue makes drain return false exactly at the virtual deadline,
// with no polling.
func TestSimDrainTimesOutVirtually(t *testing.T) {
	clk := simclock.NewSim()
	q := newCommitQueue(simQueueParams(clk, 100, 100))
	defer q.close()

	if _, err := q.put(update{path: "f", off: 0, data: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	res := make(chan bool, 1)
	go func() { res <- q.drain(5 * time.Second) }()
	// drain registers its timeout timer before parking; the put above
	// already armed TB and TS, so drain's makes three.
	waitUntil(t, func() bool { return clk.PendingTimers() >= 3 })
	select {
	case r := <-res:
		t.Fatalf("drain returned %v before its virtual deadline", r)
	default:
	}
	clk.Advance(5 * time.Second)
	if r := <-res; r {
		t.Fatal("drain reported success on a stuck queue")
	}

	// After acknowledgement the same queue drains instantly.
	q.removeFront(1)
	if !q.drain(time.Second) {
		t.Fatal("drain failed on an empty queue")
	}
}

// TestSimPipelineFatalAfterRetryBudget: with UploadRetries=3 and a
// 10-second retry backoff, the pipeline must walk the full
// 10s+10s+fail schedule (jitter may halve each sleep) and then go
// fatal: Stats carry the error and further submits are refused. Under
// the simulation clock the whole walk takes microseconds.
func TestSimPipelineFatalAfterRetryBudget(t *testing.T) {
	clk := simclock.NewSim()
	stopPump := clk.Pump()
	defer stopPump()

	p := testParams(1, 2)
	p.Clock = clk
	p.UploadRetries = 3
	p.RetryBaseDelay = 10 * time.Second
	params, err := p.Validate()
	if err != nil {
		t.Fatal(err)
	}
	store := &flakyStore{ObjectStore: nil, failFirst: 1 << 30} // every Put fails
	pipe := newPipeline(NewCloudView(), store, sealer.NewPlain(), params)
	start := clk.Now()
	pipe.start(0)
	defer pipe.drainAndStop(time.Second)

	if _, err := pipe.submit("pg_xlog/0001", 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, func() bool { return pipe.lastErr() != nil })
	// Two 10-second backoffs, each jitter-scaled into [0.5, 1.0)×: at
	// least 10 virtual seconds, under 20.
	if elapsed := clk.Since(start); elapsed < 10*time.Second {
		t.Fatalf("fatal after %v of virtual time, want ≥ 10s (two jittered 10s backoffs)", elapsed)
	}
	if _, err := pipe.submit("pg_xlog/0001", 8192, []byte("y")); err == nil {
		t.Fatal("submit after fatal pipeline error returned nil")
	}
}
