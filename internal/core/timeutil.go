package core

import (
	"time"

	"github.com/ginja-dr/ginja/internal/simclock"
)

// maxRetryDelay caps exponential backoff between upload retries.
const maxRetryDelay = 5 * time.Second

// minRetryDelay floors the backoff: a zero RetryBaseDelay (possible when a
// caller constructs Params without Validate) would double to zero forever
// and turn every retry loop into a busy spin against a down provider.
const minRetryDelay = time.Millisecond

// clock returns the configured Clock, defaulting to the wall clock. Every
// timer and timestamp in core must go through this — never the time
// package directly — so simulations stay in virtual time.
func (p Params) clock() simclock.Clock {
	if p.Clock != nil {
		return p.Clock
	}
	return simclock.Real()
}
