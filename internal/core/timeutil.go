package core

import (
	"time"

	"github.com/ginja-dr/ginja/internal/simclock"
)

// maxRetryDelay caps exponential backoff between upload retries.
const maxRetryDelay = 5 * time.Second

// minRetryDelay floors the backoff: a zero RetryBaseDelay (possible when a
// caller constructs Params without Validate) would double to zero forever
// and turn every retry loop into a busy spin against a down provider.
const minRetryDelay = time.Millisecond

// clock returns the configured Clock, defaulting to the wall clock. Every
// timer and timestamp in core must go through this — never the time
// package directly — so simulations stay in virtual time.
func (p Params) clock() simclock.Clock {
	if p.Clock != nil {
		return p.Clock
	}
	return simclock.Real()
}

// retryJitter scales a backoff delay by a factor in [0.5, 1.0) derived by
// hashing the object name, the attempt number and the current clock
// reading. Many objects stranded by one outage therefore spread their
// retries out instead of thundering at the recovering store in lockstep
// waves — while staying fully deterministic under a simulation clock,
// whose readings are seed-reproducible (math/rand would be a second,
// unseeded source of nondeterminism here). The minRetryDelay floor is
// re-applied after scaling so the no-busy-spin guarantee survives.
func retryJitter(d time.Duration, name string, attempt int, now time.Time) time.Duration {
	// FNV-1a over the name, then a splitmix64-style finalizer mixing in
	// the attempt and the clock.
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	h ^= uint64(attempt+1) * 0x9E3779B97F4A7C15
	h ^= uint64(now.UnixNano()) * 0xBF58476D1CE4E5B9
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	f := 0.5 + float64(h>>11)/(1<<53)*0.5
	j := time.Duration(float64(d) * f)
	if j < minRetryDelay {
		return minRetryDelay
	}
	return j
}
