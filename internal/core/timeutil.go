package core

import "time"

// maxRetryDelay caps exponential backoff between upload retries.
const maxRetryDelay = 5 * time.Second

// timeAfter is an indirection point so tests could stub delays if needed.
var timeAfter = time.After
