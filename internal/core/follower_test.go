package core_test

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/ginja-dr/ginja/internal/core"
	"github.com/ginja-dr/ginja/internal/minidb"
	"github.com/ginja-dr/ginja/internal/obs"
	"github.com/ginja-dr/ginja/internal/vfs"
)

// startFollower attaches a warm standby to the rig's bucket on a fresh
// filesystem, polling fast enough for tests.
func startFollower(t *testing.T, r *rig, params core.Params) *core.Follower {
	t.Helper()
	params.FollowInterval = 2 * time.Millisecond
	fol, err := core.NewFollower(vfs.NewMemFS(), r.store, r.proc(), params)
	if err != nil {
		t.Fatal(err)
	}
	if err := fol.Start(context.Background()); err != nil {
		t.Fatalf("follower start: %v", err)
	}
	t.Cleanup(func() { fol.Close() })
	return fol
}

// TestFollowerWarmStandbyPromote is the tentpole end-to-end: a follower
// tails the bucket while the primary commits, the primary dies, and
// Promote hands back a live Ginja whose files hold every acknowledged
// commit — with the replication telemetry live in the registry.
func TestFollowerWarmStandbyPromote(t *testing.T) {
	reg := obs.NewRegistry()
	params := fastParams()
	params.Metrics = reg
	r := pgRig(t, params)
	if err := r.db.CreateTable("kv", 0); err != nil {
		t.Fatal(err)
	}
	r.put(t, "kv", "before", "follower")
	if !r.g.Flush(5 * time.Second) {
		t.Fatal("flush")
	}

	fol := startFollower(t, r, params)

	// More commits land while the follower tails; wait until it visibly
	// replicated something so promote is warm, not a cold restore.
	for i := 0; i < 20; i++ {
		r.put(t, "kv", fmt.Sprintf("k%02d", i), "warm")
	}
	if !r.g.Flush(5 * time.Second) {
		t.Fatal("flush")
	}
	deadline := time.Now().Add(5 * time.Second)
	for fol.Stats().AppliedWALObjects == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("follower applied nothing (stats %+v)", fol.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Disaster: the primary is gone. Promote must catch up and serve.
	if err := r.db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.g.Close(); err != nil {
		t.Fatal(err)
	}
	g2, err := fol.Promote(context.Background())
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	defer g2.Close()
	if _, err := fol.Promote(context.Background()); err == nil {
		t.Fatal("second promote succeeded; want error")
	}
	db2, err := minidb.Open(g2.FS(), r.engine(), minidb.Options{})
	if err != nil {
		t.Fatalf("open promoted replica: %v", err)
	}
	if _, err := db2.Get("kv", []byte("before")); err != nil {
		t.Fatalf("pre-follower key lost: %v", err)
	}
	for i := 0; i < 20; i++ {
		v, err := db2.Get("kv", []byte(fmt.Sprintf("k%02d", i)))
		if err != nil || string(v) != "warm" {
			t.Fatalf("k%02d after promote: %q, %v", i, v, err)
		}
	}
	// And the promoted instance keeps protecting: a new commit replicates.
	if err := db2.Update(func(tx *minidb.Txn) error {
		return tx.Put("kv", []byte("after"), []byte("promote"))
	}); err != nil {
		t.Fatal(err)
	}
	if !g2.Flush(5 * time.Second) {
		t.Fatal("flush on promoted instance")
	}

	st := g2.Stats()
	if st.LastRecovery == nil || st.LastRecovery.Mode != "promote" {
		t.Fatalf("LastRecovery = %+v, want promote breakdown", st.LastRecovery)
	}
	fs := fol.Stats()
	if !fs.Promoted || fs.Polls == 0 {
		t.Fatalf("follower stats after promote: %+v", fs)
	}

	// The replication watermarks are live in /metrics.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ginja_follower_lag_seconds", "ginja_follower_applied_ts"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	// The promote shows up in the span ring (/tracez).
	recent, slowest, _ := reg.Spans().Snapshot()
	found := false
	for _, s := range append(recent, slowest...) {
		if s.Name == "follower:promote" {
			found = true
		}
	}
	if !found {
		t.Error("no follower:promote span recorded")
	}
}

// TestFollowerSurvivesGCAndDumps tails through checkpoint/dump churn: the
// primary's GC deletes WAL objects under the follower (the LIST-to-GET
// race resolves as "superseded, skip") and complete multi-part dumps
// apply in order. The promoted replica must end at the newest state.
func TestFollowerSurvivesGCAndDumps(t *testing.T) {
	params := fastParams()
	r := pgRig(t, params)
	if err := r.db.CreateTable("kv", 0); err != nil {
		t.Fatal(err)
	}
	fol := startFollower(t, r, params)

	var ckpts int64
	for round := 0; round < 12; round++ {
		for i := 0; i < 10; i++ {
			r.put(t, "kv", fmt.Sprintf("k%02d", i), fmt.Sprintf("round-%d", round))
		}
		if !r.g.Flush(5 * time.Second) {
			t.Fatal("flush")
		}
		if err := r.db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		ckpts++
		waitCheckpointUploaded(t, r.g, ckpts)
	}
	if !r.g.SyncCheckpoints(5 * time.Second) {
		t.Fatal("checkpoints did not settle")
	}
	if r.g.Stats().Dumps == 0 {
		t.Fatalf("churn never produced a dump (stats %+v)", r.g.Stats())
	}

	if err := r.db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.g.Close(); err != nil {
		t.Fatal(err)
	}
	g2, err := fol.Promote(context.Background())
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	defer g2.Close()
	if err := fol.Err(); err != nil {
		t.Fatalf("follower tail error: %v", err)
	}
	db2, err := minidb.Open(g2.FS(), r.engine(), minidb.Options{})
	if err != nil {
		t.Fatalf("open promoted replica: %v", err)
	}
	for i := 0; i < 10; i++ {
		v, err := db2.Get("kv", []byte(fmt.Sprintf("k%02d", i)))
		if err != nil || string(v) != "round-11" {
			t.Fatalf("k%02d after promote: %q, %v (want round-11)", i, v, err)
		}
	}
}

// TestFollowerPromoteUnstarted pins the lifecycle errors.
func TestFollowerPromoteUnstarted(t *testing.T) {
	r := pgRig(t, fastParams())
	fol, err := core.NewFollower(vfs.NewMemFS(), r.store, r.proc(), fastParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fol.Promote(context.Background()); err == nil {
		t.Fatal("promote before start succeeded")
	}
	if err := fol.Close(); err != nil {
		t.Fatalf("close unstarted follower: %v", err)
	}
}
