package core_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/core"
	"github.com/ginja-dr/ginja/internal/dbevent"
	"github.com/ginja-dr/ginja/internal/minidb"
	"github.com/ginja-dr/ginja/internal/obs"
	"github.com/ginja-dr/ginja/internal/vfs"
)

// startFollower attaches a warm standby to the rig's bucket on a fresh
// filesystem, polling fast enough for tests.
func startFollower(t *testing.T, r *rig, params core.Params) *core.Follower {
	t.Helper()
	params.FollowInterval = 2 * time.Millisecond
	fol, err := core.NewFollower(vfs.NewMemFS(), r.store, r.proc(), params)
	if err != nil {
		t.Fatal(err)
	}
	if err := fol.Start(context.Background()); err != nil {
		t.Fatalf("follower start: %v", err)
	}
	t.Cleanup(func() { fol.Close() })
	return fol
}

// TestFollowerWarmStandbyPromote is the tentpole end-to-end: a follower
// tails the bucket while the primary commits, the primary dies, and
// Promote hands back a live Ginja whose files hold every acknowledged
// commit — with the replication telemetry live in the registry.
func TestFollowerWarmStandbyPromote(t *testing.T) {
	reg := obs.NewRegistry()
	params := fastParams()
	params.Metrics = reg
	r := pgRig(t, params)
	if err := r.db.CreateTable("kv", 0); err != nil {
		t.Fatal(err)
	}
	r.put(t, "kv", "before", "follower")
	if !r.g.Flush(5 * time.Second) {
		t.Fatal("flush")
	}

	fol := startFollower(t, r, params)

	// More commits land while the follower tails; wait until it visibly
	// replicated something so promote is warm, not a cold restore.
	for i := 0; i < 20; i++ {
		r.put(t, "kv", fmt.Sprintf("k%02d", i), "warm")
	}
	if !r.g.Flush(5 * time.Second) {
		t.Fatal("flush")
	}
	deadline := time.Now().Add(5 * time.Second)
	for fol.Stats().AppliedWALObjects == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("follower applied nothing (stats %+v)", fol.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Disaster: the primary is gone. Promote must catch up and serve.
	if err := r.db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.g.Close(); err != nil {
		t.Fatal(err)
	}
	g2, err := fol.Promote(context.Background())
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	defer g2.Close()
	if _, err := fol.Promote(context.Background()); err == nil {
		t.Fatal("second promote succeeded; want error")
	}
	db2, err := minidb.Open(g2.FS(), r.engine(), minidb.Options{})
	if err != nil {
		t.Fatalf("open promoted replica: %v", err)
	}
	if _, err := db2.Get("kv", []byte("before")); err != nil {
		t.Fatalf("pre-follower key lost: %v", err)
	}
	for i := 0; i < 20; i++ {
		v, err := db2.Get("kv", []byte(fmt.Sprintf("k%02d", i)))
		if err != nil || string(v) != "warm" {
			t.Fatalf("k%02d after promote: %q, %v", i, v, err)
		}
	}
	// And the promoted instance keeps protecting: a new commit replicates.
	if err := db2.Update(func(tx *minidb.Txn) error {
		return tx.Put("kv", []byte("after"), []byte("promote"))
	}); err != nil {
		t.Fatal(err)
	}
	if !g2.Flush(5 * time.Second) {
		t.Fatal("flush on promoted instance")
	}

	st := g2.Stats()
	if st.LastRecovery == nil || st.LastRecovery.Mode != "promote" {
		t.Fatalf("LastRecovery = %+v, want promote breakdown", st.LastRecovery)
	}
	fs := fol.Stats()
	if !fs.Promoted || fs.Polls == 0 {
		t.Fatalf("follower stats after promote: %+v", fs)
	}

	// The replication watermarks are live in /metrics.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ginja_follower_lag_seconds", "ginja_follower_applied_ts"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	// The promote shows up in the span ring (/tracez).
	recent, slowest, _ := reg.Spans().Snapshot()
	found := false
	for _, s := range append(recent, slowest...) {
		if s.Name == "follower:promote" {
			found = true
		}
	}
	if !found {
		t.Error("no follower:promote span recorded")
	}
}

// TestFollowerSurvivesGCAndDumps tails through checkpoint/dump churn: the
// primary's GC deletes WAL objects under the follower (the LIST-to-GET
// race resolves as "superseded, skip") and complete multi-part dumps
// apply in order. The promoted replica must end at the newest state.
func TestFollowerSurvivesGCAndDumps(t *testing.T) {
	params := fastParams()
	r := pgRig(t, params)
	if err := r.db.CreateTable("kv", 0); err != nil {
		t.Fatal(err)
	}
	fol := startFollower(t, r, params)

	var ckpts int64
	for round := 0; round < 12; round++ {
		for i := 0; i < 10; i++ {
			r.put(t, "kv", fmt.Sprintf("k%02d", i), fmt.Sprintf("round-%d", round))
		}
		if !r.g.Flush(5 * time.Second) {
			t.Fatal("flush")
		}
		if err := r.db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		ckpts++
		waitCheckpointUploaded(t, r.g, ckpts)
	}
	if !r.g.SyncCheckpoints(5 * time.Second) {
		t.Fatal("checkpoints did not settle")
	}
	if r.g.Stats().Dumps == 0 {
		t.Fatalf("churn never produced a dump (stats %+v)", r.g.Stats())
	}

	if err := r.db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.g.Close(); err != nil {
		t.Fatal(err)
	}
	g2, err := fol.Promote(context.Background())
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	defer g2.Close()
	if err := fol.Err(); err != nil {
		t.Fatalf("follower tail error: %v", err)
	}
	db2, err := minidb.Open(g2.FS(), r.engine(), minidb.Options{})
	if err != nil {
		t.Fatalf("open promoted replica: %v", err)
	}
	for i := 0; i < 10; i++ {
		v, err := db2.Get("kv", []byte(fmt.Sprintf("k%02d", i)))
		if err != nil || string(v) != "round-11" {
			t.Fatalf("k%02d after promote: %q, %v (want round-11)", i, v, err)
		}
	}
}

// maskedStore hides a set of names from List (read-after-write list lag
// in miniature): the follower must behave as if those objects do not
// exist yet, then cope when a later listing reveals them.
type maskedStore struct {
	cloud.ObjectStore
	mu     sync.Mutex
	hidden map[string]bool
}

func (s *maskedStore) List(ctx context.Context, prefix string) ([]cloud.ObjectInfo, error) {
	infos, err := s.ObjectStore.List(ctx, prefix)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]cloud.ObjectInfo, 0, len(infos))
	for _, info := range infos {
		if !s.hidden[info.Name] {
			out = append(out, info)
		}
	}
	return out, nil
}

func (s *maskedStore) reveal() {
	s.mu.Lock()
	s.hidden = make(map[string]bool)
	s.mu.Unlock()
}

// TestFollowerLateListedDumpKeepsTailWAL is the out-of-order repair
// regression: the bucket holds dump D, a newer checkpoint C and WAL
// beyond C, but D's parts are missing from the follower's listings until
// after C and the WAL run were already applied (read-after-write list
// lag). Applying D late clobbers the replica with D's older images, and
// re-applying the newer DB objects restores only what THEY contain — the
// WAL run applied past C is not theirs to restore. The follower must
// roll its frontier back to C and replay that run (the watermark must
// never claim WAL the files are not guaranteed to hold), and the
// re-apply must leave the replica byte-equivalent to a cold restore, so
// Promote serves every committed write.
func TestFollowerLateListedDumpKeepsTailWAL(t *testing.T) {
	params := fastParams()
	r := pgRig(t, params)
	if err := r.db.CreateTable("kv", 0); err != nil {
		t.Fatal(err)
	}

	// Rewrite the same keys through checkpoints until the 150 % rule
	// produces dump D.
	var ckpts int64
	for round := 0; round < 40 && r.g.Stats().Dumps == 0; round++ {
		for i := 0; i < 10; i++ {
			r.put(t, "kv", fmt.Sprintf("k%02d", i), fmt.Sprintf("round-%d", round))
		}
		if !r.g.Flush(5 * time.Second) {
			t.Fatal("flush")
		}
		if err := r.db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		ckpts++
		waitCheckpointUploaded(t, r.g, ckpts)
	}
	if r.g.Stats().Dumps == 0 {
		t.Fatalf("150%% rule never produced a dump (stats %+v)", r.g.Stats())
	}
	if !r.g.SyncCheckpoints(5 * time.Second) {
		t.Fatal("dump GC did not settle")
	}

	// Checkpoint C after the dump...
	for i := 0; i < 10; i++ {
		r.put(t, "kv", fmt.Sprintf("k%02d", i), "post-dump")
	}
	if !r.g.Flush(5 * time.Second) {
		t.Fatal("flush")
	}
	if err := r.db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ckpts++
	waitCheckpointUploaded(t, r.g, ckpts)
	if !r.g.SyncCheckpoints(5 * time.Second) {
		t.Fatal("checkpoint did not settle")
	}
	if d := r.g.Stats().Dumps; d != 1 {
		t.Fatalf("post-dump checkpoint became another dump (%d dumps); scenario needs checkpoint C newer than the dump", d)
	}

	// ...and tail commits that exist only as WAL objects beyond C.
	for i := 0; i < 6; i++ {
		r.put(t, "kv", fmt.Sprintf("tail-%d", i), "wal-only")
	}
	if !r.g.Flush(5 * time.Second) {
		t.Fatal("flush")
	}

	// The primary crashes here: simply stop touching it. A clean db.Close
	// would run a final checkpoint covering the tail commits, which must
	// stay WAL-only for this scenario. With no further commits the bucket
	// is static from now on.

	// Hide every part of the newest dump from the follower's listings.
	ctx := context.Background()
	infos, err := r.store.List(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	var dumpTs int64
	dumpGen := -1
	for _, info := range infos {
		if !strings.HasPrefix(info.Name, "DB/") {
			continue
		}
		n, err := core.ParseDBObjectName(info.Name)
		if err != nil {
			t.Fatal(err)
		}
		if n.Type == core.Dump && (n.Ts > dumpTs || (n.Ts == dumpTs && n.Gen > dumpGen)) {
			dumpTs, dumpGen = n.Ts, n.Gen
		}
	}
	if dumpGen < 0 {
		t.Fatal("no dump in the bucket")
	}
	masked := &maskedStore{ObjectStore: r.store, hidden: make(map[string]bool)}
	for _, info := range infos {
		if !strings.HasPrefix(info.Name, "DB/") {
			continue
		}
		if n, _ := core.ParseDBObjectName(info.Name); n.Type == core.Dump && n.Ts == dumpTs && n.Gen == dumpGen {
			masked.hidden[info.Name] = true
		}
	}
	if len(masked.hidden) == 0 {
		t.Fatal("found no dump parts to hide")
	}

	params.FollowInterval = 2 * time.Millisecond
	fol, err := core.NewFollower(vfs.NewMemFS(), masked, r.proc(), params)
	if err != nil {
		t.Fatal(err)
	}
	if err := fol.Start(ctx); err != nil {
		t.Fatalf("follower start: %v", err)
	}
	t.Cleanup(func() { fol.Close() })
	pre := fol.Stats()
	if pre.AppliedWALObjects == 0 {
		t.Fatalf("initial sync applied no tail WAL (stats %+v)", pre)
	}

	// Reveal the dump: the next listing emits it out of order.
	masked.reveal()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := fol.Stats()
		if s.AppliedDBObjects > pre.AppliedDBObjects && s.PendingWAL == 0 && s.AppliedTs >= pre.AppliedTs {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("late dump never applied (stats %+v)", s)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := fol.Err(); err != nil {
		t.Fatalf("follower tail error: %v", err)
	}
	// The out-of-order repair must have replayed the WAL run past the
	// newest re-applied DB object, not just re-applied DB objects: the
	// frontier rolled back to C and walked forward through the run again.
	if s := fol.Stats(); s.AppliedWALObjects <= pre.AppliedWALObjects {
		t.Fatalf("WAL run not replayed after out-of-order dump repair (before %+v, after %+v)", pre, s)
	}

	g2, err := fol.Promote(ctx)
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	defer g2.Close()
	db2, err := minidb.Open(g2.FS(), r.engine(), minidb.Options{})
	if err != nil {
		t.Fatalf("open promoted replica: %v", err)
	}
	for i := 0; i < 10; i++ {
		v, err := db2.Get("kv", []byte(fmt.Sprintf("k%02d", i)))
		if err != nil || string(v) != "post-dump" {
			t.Fatalf("k%02d after promote: %q, %v", i, v, err)
		}
	}
	for i := 0; i < 6; i++ {
		v, err := db2.Get("kv", []byte(fmt.Sprintf("tail-%d", i)))
		if err != nil || string(v) != "wal-only" {
			t.Fatalf("tail-%d after promote: %q, %v — WAL run lost by out-of-order dump repair", i, v, err)
		}
	}
}

// failingListStore makes every LIST fail, so Follower.Start's initial
// sync cannot succeed.
type failingListStore struct{ cloud.ObjectStore }

func (s failingListStore) List(ctx context.Context, prefix string) ([]cloud.ObjectInfo, error) {
	return nil, errors.New("list down")
}

// TestFollowerStartFailureUnblocksPromoteAndClose pins the failed-Start
// lifecycle: the tail loop never launched, so Promote must report the
// follower as unstarted instead of waiting forever on it, and Close must
// return cleanly.
func TestFollowerStartFailureUnblocksPromoteAndClose(t *testing.T) {
	params := fastParams()
	params.UploadRetries = 2
	fol, err := core.NewFollower(vfs.NewMemFS(), failingListStore{cloud.NewMemStore()}, dbevent.NewPGProcessor(), params)
	if err != nil {
		t.Fatal(err)
	}
	if err := fol.Start(context.Background()); err == nil {
		t.Fatal("start succeeded with LIST down")
	}
	done := make(chan error, 1)
	go func() {
		_, err := fol.Promote(context.Background())
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("promote after failed start succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("promote blocked forever after failed start")
	}
	if err := fol.Close(); err != nil {
		t.Fatalf("close after failed start: %v", err)
	}
}

// TestFollowerPromoteUnstarted pins the lifecycle errors.
func TestFollowerPromoteUnstarted(t *testing.T) {
	r := pgRig(t, fastParams())
	fol, err := core.NewFollower(vfs.NewMemFS(), r.store, r.proc(), fastParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fol.Promote(context.Background()); err == nil {
		t.Fatal("promote before start succeeded")
	}
	if err := fol.Close(); err != nil {
		t.Fatalf("close unstarted follower: %v", err)
	}
}
