package core

import (
	"strconv"
	"strings"
	"testing"

	"github.com/ginja-dr/ginja/internal/cloud"
)

// TestListTrackerIncremental pins the tracker's contract on a handcrafted
// sequence: emit-once, completion across rounds, tolerance of list-lag
// flapping, and WAL/DB ordering of the per-round output.
func TestListTrackerIncremental(t *testing.T) {
	tr := newListTracker()

	// Round 1: one WAL object, half of a split dump.
	wal, db, err := tr.observe([]cloud.ObjectInfo{
		{Name: "WAL/1_seg_0", Size: 3},
		{Name: "DB/0_dump_6.p0", Size: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(wal) != 1 || wal[0].Ts != 1 {
		t.Fatalf("round 1 wal = %+v", wal)
	}
	if len(db) != 0 {
		t.Fatalf("round 1 emitted incomplete dump: %+v", db)
	}

	// Round 2: the missing part completes the dump; the old names reappear
	// (and one flaps away — omission must not matter); a new WAL lands.
	wal, db, err = tr.observe([]cloud.ObjectInfo{
		{Name: "DB/0_dump_6.p1", Size: 3},
		{Name: "DB/0_dump_6.p0", Size: 3}, // re-listed: must not double-count
		{Name: "WAL/2_seg_0", Size: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(wal) != 1 || wal[0].Ts != 2 {
		t.Fatalf("round 2 wal = %+v", wal)
	}
	if len(db) != 1 || db[0].Ts != 0 || db[0].Size != 6 || db[0].Parts != 2 {
		t.Fatalf("round 2 db = %+v, want completed 2-part dump", db)
	}

	// Round 3: everything re-listed plus a part-sealed checkpoint arriving
	// marker-first across the round boundary.
	wal, db, err = tr.observe([]cloud.ObjectInfo{
		{Name: "WAL/1_seg_0", Size: 3},
		{Name: "DB/0_dump_6.p0", Size: 3},
		{Name: "DB/0_dump_6.p1", Size: 3},
		{Name: "DB/2_checkpoint_4.g1.s1.n2", Size: 4},
	})
	if err != nil || len(wal) != 0 || len(db) != 0 {
		t.Fatalf("round 3 = %+v, %+v, %v; want nothing new", wal, db, err)
	}
	wal, db, err = tr.observe([]cloud.ObjectInfo{
		{Name: "DB/2_checkpoint_5.g1.s0", Size: 5},
	})
	if err != nil || len(wal) != 0 {
		t.Fatalf("round 4 = %+v, %v", wal, err)
	}
	if len(db) != 1 || db[0].Ts != 2 || db[0].Gen != 1 || db[0].Size != 9 || len(db[0].PartSizes) != 2 {
		t.Fatalf("round 4 db = %+v, want completed sealed checkpoint", db)
	}

	// A foreign name is an error, as in LoadFromList.
	if _, _, err := tr.observe([]cloud.ObjectInfo{{Name: "junk", Size: 1}}); err == nil {
		t.Fatal("foreign object accepted")
	}
}

// FuzzListDiff feeds an arbitrary sequence of listings ("size name"
// lines, "==" starting a new round) through the listTracker and pins it
// to CloudView.LoadFromList: whatever rounds the fuzzer invents, the
// tracker must never panic, never emit one DB object twice, and its
// cumulative output must equal what a one-shot LoadFromList of the union
// considers complete — the invariant the warm-standby follower rides on.
func FuzzListDiff(f *testing.F) {
	f.Add("3 WAL/1_seg_0\n==\n4 WAL/2_seg_0")
	f.Add("5 DB/0_dump_5")
	f.Add("3 DB/7_dump_6.p0\n==\n3 DB/7_dump_6.p1\n3 DB/7_dump_6.p0")
	f.Add("4 DB/9_dump_4.g2.s1.n2\n==\n6 DB/9_dump_6.g2.s0")
	f.Add("5 DB/3_checkpoint_5.g10\n==\n5 DB/3_checkpoint_5.g11\n2 WAL/3_seg_8")
	f.Add("1 junk")
	f.Add("9 DB/5_dump_9\n==\n9 DB/5_dump_9.g0\n==\n7 DB/5_checkpoint_7.g1")
	f.Add("4 DB/1_dump_4.s0.n1\n==\n4 DB/1_dump_9.s0.n1")
	// Delta chains: base then delta, delta arriving before its base
	// (must wait and cascade), a two-deep chain delivered tip-first, a
	// truncated chain whose base never lists (waits forever), a delta
	// pointing at a checkpoint-typed base (orphaned), and a delta whose
	// base is not strictly older (broken linkage).
	f.Add("6 DB/1_dump_6\n==\n2 DB/3_delta_2.b1-0")
	f.Add("2 DB/3_delta_2.b1-0\n==\n6 DB/1_dump_6")
	f.Add("1 DB/5_delta_1.b3-0\n2 DB/3_delta_2.b1-0\n==\n6 DB/1_dump_6")
	f.Add("2 DB/9_delta_2.b7-0\n==\n3 WAL/8_seg_0")
	f.Add("4 DB/2_checkpoint_4.g1\n==\n2 DB/5_delta_2.b2-1")
	f.Add("6 DB/4_dump_6\n==\n2 DB/4_delta_2.b4-0")
	f.Add("1 DB/6_delta_1.b1-0.s0.n2\n1 DB/6_delta_1.b1-0.s1\n==\n6 DB/1_dump_6")
	f.Add("6 DB/1_dump_6\n2 DB/3_delta_2.b1-0\n1 DB/4_delta_1.b3-0")
	// Fleet-prefixed names: a tracker inside a PrefixStore never sees
	// these, so reaching the tracker raw they exercise the
	// unrecognised-name (foreign tenant) rejection path — including a
	// round that mixes one tenant's valid names with another's prefixed
	// ones, and a prefix that itself contains "WAL/".
	f.Add("3 tenants/a/WAL/1_seg_0")
	f.Add("5 tenants/a/DB/0_dump_5\n==\n3 tenants/b/WAL/2_seg_0")
	f.Add("3 WAL/1_seg_0\n==\n4 tenants/b/WAL/2_seg_0\n6 DB/1_dump_6")
	f.Add("2 x/WAL/3_seg_0\n==\n2 WAL/3_seg_0")
	f.Fuzz(func(t *testing.T, script string) {
		tr := newListTracker()
		var cumulative []cloud.ObjectInfo
		seen := make(map[string]bool)
		walTs := make(map[int64]bool)
		emittedDB := make(map[dbKey]DBObjectInfo)
		var round []cloud.ObjectInfo
		trackerErr := false
		flush := func() {
			if trackerErr {
				return
			}
			wal, db, err := tr.observe(round)
			round = round[:0]
			if err != nil {
				trackerErr = true
				return
			}
			for _, w := range wal {
				walTs[w.Ts] = true
			}
			for _, d := range db {
				k := dbKey{ts: d.Ts, gen: d.Gen}
				if _, dup := emittedDB[k]; dup {
					t.Fatalf("DB object ts=%d gen=%d emitted twice", d.Ts, d.Gen)
				}
				emittedDB[k] = d
			}
		}
		for _, line := range strings.Split(script, "\n") {
			if line == "==" {
				flush()
				continue
			}
			sp := strings.IndexByte(line, ' ')
			if sp <= 0 {
				continue
			}
			size, err := strconv.ParseInt(line[:sp], 10, 64)
			if err != nil || size < 0 {
				continue
			}
			name := line[sp+1:]
			if name == "" {
				continue
			}
			// A real bucket lists each name once per round with a stable
			// size; the tracker keys on first sight, so the cumulative
			// union must too.
			if !seen[name] {
				seen[name] = true
				cumulative = append(cumulative, cloud.ObjectInfo{Name: name, Size: size})
			}
			round = append(round, cloud.ObjectInfo{Name: name, Size: size})
		}
		flush()
		if trackerErr {
			return
		}
		view := NewCloudView()
		if err := view.LoadFromList(cumulative); err != nil {
			return
		}
		// WAL parity: same timestamps known (the view keys WAL by ts).
		viewWAL := view.WALObjects()
		viewTs := make(map[int64]bool, len(viewWAL))
		for _, w := range viewWAL {
			viewTs[w.Ts] = true
		}
		if len(viewTs) != len(walTs) {
			t.Fatalf("WAL divergence: tracker %d ts, view %d ts", len(walTs), len(viewTs))
		}
		for ts := range viewTs {
			if !walTs[ts] {
				t.Fatalf("view knows WAL ts %d the tracker never emitted", ts)
			}
		}
		// DB parity: identical complete-object sets with identical identity.
		viewDB := view.DBObjects()
		if len(viewDB) != len(emittedDB) {
			t.Fatalf("DB divergence: tracker emitted %d, view holds %d\ntracker: %v\nview: %v",
				len(emittedDB), len(viewDB), emittedDB, viewDB)
		}
		for _, d := range viewDB {
			e, ok := emittedDB[dbKey{ts: d.Ts, gen: d.Gen}]
			if !ok {
				t.Fatalf("view object ts=%d gen=%d never emitted by tracker", d.Ts, d.Gen)
			}
			if e.Type != d.Type || e.Size != d.Size || e.Parts != d.Parts {
				t.Fatalf("object ts=%d gen=%d identity differs: tracker %+v, view %+v",
					d.Ts, d.Gen, e, d)
			}
		}
	})
}
