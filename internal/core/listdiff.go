package core

import (
	"fmt"
	"sort"
	"strings"

	"github.com/ginja-dr/ginja/internal/cloud"
)

// listTracker turns a sequence of cloud LISTs into a stream of newly
// completed objects, for the warm-standby Follower: each observe call
// diffs the listing against everything seen before and reports only the
// WAL objects and *complete* DB objects that appeared since the last
// call. It applies the same completeness rules as CloudView.LoadFromList
// (legacy groups complete when their listed bytes sum to the declared
// size; part-sealed groups when exactly one commit marker is present,
// indices are contiguous and every part's listed bytes match its
// declared sealed size; delta objects additionally wait until their
// chain predecessor has been emitted, so the follower always applies a
// base before the deltas stacked on it) — FuzzListDiff pins the two
// implementations to each other.
//
// The tracker is tolerant of read-after-write list lag: an object seen
// once is never un-seen when a later listing omits it (eventual-
// consistency flapping must not re-emit or stall a group), and a group
// that is incomplete in this listing simply waits for a later one.
// Names that disappear because the primary garbage-collected them stay
// in the seen set — the follower applied them (or the checkpoint that
// superseded them) already, so forgetting them could only cause
// re-emission. Memory therefore grows with the number of objects ever
// listed, which the primary's retention cap (Params.RetainObjects)
// bounds in steady state.
type listTracker struct {
	seen    map[string]struct{}
	emitted map[dbKey]DBObjectInfo // complete DB object already reported per (ts, gen)

	legacy map[trackerSizedKey]*trackerLegacyGroup
	sealed map[dbKey]*trackerSealedGroup

	// pending holds complete Delta objects whose chain predecessor has not
	// been emitted yet, keyed by the base they wait for: a delta is only
	// useful on top of its base, so the follower must never see it first.
	// When the base completes, every waiter cascades (a waiter may itself
	// be some later delta's base). A delta whose base never appears —
	// the primary folded the chain and GC'd it — waits forever, which is
	// correct: the fold dump carries that state instead.
	pending map[dbKey][]DBObjectInfo
}

type trackerSizedKey struct {
	ts      int64
	gen     int
	size    int64
	baseTs  int64
	baseGen int
	hasBase bool
}

type trackerLegacyGroup struct {
	typ          DBObjectType
	unsplitBytes int64
	haveUnsplit  bool
	splitBytes   int64
	maxPart      int
}

type trackerSealedGroup struct {
	typ     DBObjectType
	baseTs  int64
	baseGen int
	hasBase bool
	invalid bool
	parts   map[int]trackerSealedPart
}

type trackerSealedPart struct {
	declared int64
	listed   int64
	count    int
}

func newListTracker() *listTracker {
	return &listTracker{
		seen:    make(map[string]struct{}),
		emitted: make(map[dbKey]DBObjectInfo),
		legacy:  make(map[trackerSizedKey]*trackerLegacyGroup),
		sealed:  make(map[dbKey]*trackerSealedGroup),
		pending: make(map[dbKey][]DBObjectInfo),
	}
}

// observe ingests one cloud listing and returns the WAL objects and
// complete DB objects that became known with it, each emitted exactly
// once across the tracker's lifetime. WAL results are sorted by Ts, DB
// results by (Ts, Gen). A foreign object name is an error, as in
// LoadFromList; a second complete object claiming an already-emitted
// (ts, gen) slot with a different identity is genuine corruption and is
// reported too.
func (t *listTracker) observe(infos []cloud.ObjectInfo) (wal []WALObjectInfo, db []DBObjectInfo, err error) {
	var emit func(info DBObjectInfo) error
	emit = func(info DBObjectInfo) error {
		k := dbKey{ts: info.Ts, gen: info.Gen}
		if prev, ok := t.emitted[k]; ok {
			if prev.Size != info.Size || prev.Type != info.Type ||
				prev.BaseTs != info.BaseTs || prev.BaseGen != info.BaseGen {
				return fmt.Errorf(
					"core: conflicting DB objects at ts=%d gen=%d: have %s size=%d, got %s size=%d",
					info.Ts, info.Gen, prev.Type, prev.Size, info.Type, info.Size)
			}
			return nil
		}
		if info.Type == Delta {
			bk := dbKey{ts: info.BaseTs, gen: info.BaseGen}
			base, ok := t.emitted[bk]
			if !ok {
				t.pending[bk] = append(t.pending[bk], info)
				return nil
			}
			// A delta whose emitted base is not a chain element strictly
			// older than it is broken linkage, never valid later: drop it,
			// exactly as LoadFromList orphans it.
			if (base.Type != Dump && base.Type != Delta) || !base.Before(info) {
				return nil
			}
		}
		t.emitted[k] = info
		db = append(db, info)
		// Cascade: deltas waiting on this object can go out now (a waiter
		// may itself be a later delta's base, hence the recursion).
		if waiters, ok := t.pending[k]; ok {
			delete(t.pending, k)
			for _, w := range waiters {
				if err := emit(w); err != nil {
					return err
				}
			}
		}
		return nil
	}
	touchedLegacy := make(map[trackerSizedKey]struct{})
	touchedSealed := make(map[dbKey]struct{})
	for _, info := range infos {
		if _, ok := t.seen[info.Name]; ok {
			continue
		}
		t.seen[info.Name] = struct{}{}
		switch {
		case strings.HasPrefix(info.Name, walPrefix):
			ts, filename, offset, perr := ParseWALObjectName(info.Name)
			if perr != nil {
				return nil, nil, perr
			}
			wal = append(wal, WALObjectInfo{Ts: ts, Filename: filename, Offset: offset, Size: info.Size})
		case strings.HasPrefix(info.Name, dbPrefix):
			n, perr := ParseDBObjectName(info.Name)
			if perr != nil {
				return nil, nil, perr
			}
			if n.Sealed {
				k := dbKey{ts: n.Ts, gen: n.Gen}
				g := t.sealed[k]
				if g == nil {
					g = &trackerSealedGroup{typ: n.Type,
						baseTs: n.BaseTs, baseGen: n.BaseGen, hasBase: n.HasBase,
						parts: make(map[int]trackerSealedPart)}
					t.sealed[k] = g
				}
				if n.Type != g.typ || n.HasBase != g.hasBase ||
					n.BaseTs != g.baseTs || n.BaseGen != g.baseGen {
					g.invalid = true
				}
				if _, dup := g.parts[n.Part]; dup {
					g.invalid = true
				} else {
					g.parts[n.Part] = trackerSealedPart{declared: n.Size, listed: info.Size, count: n.Count}
				}
				touchedSealed[k] = struct{}{}
				continue
			}
			k := trackerSizedKey{ts: n.Ts, gen: n.Gen, size: n.Size,
				baseTs: n.BaseTs, baseGen: n.BaseGen, hasBase: n.HasBase}
			g := t.legacy[k]
			if g == nil {
				g = &trackerLegacyGroup{typ: n.Type, maxPart: -1}
				t.legacy[k] = g
			}
			if n.Part < 0 {
				g.haveUnsplit = true
				g.unsplitBytes = info.Size
			} else {
				g.splitBytes += info.Size
				if n.Part > g.maxPart {
					g.maxPart = n.Part
				}
			}
			touchedLegacy[k] = struct{}{}
		default:
			return nil, nil, fmt.Errorf("core: unrecognised object %q in cloud listing", info.Name)
		}
	}
	for k := range touchedLegacy {
		if info, ok := t.legacy[k].complete(k); ok {
			if err := emit(info); err != nil {
				return nil, nil, err
			}
		}
	}
	for k := range touchedSealed {
		if info, ok := t.sealed[k].complete(k); ok {
			if err := emit(info); err != nil {
				return nil, nil, err
			}
		}
	}
	sort.Slice(wal, func(i, j int) bool { return wal[i].Ts < wal[j].Ts })
	sort.Slice(db, func(i, j int) bool { return db[i].Before(db[j]) })
	return wal, db, nil
}

// complete applies LoadFromList's legacy completeness rule: an unsplit
// listing whose stored bytes match the declared size, or a split set
// whose parts sum to it (parts of one upload are disjoint chunks of
// exactly that many bytes, so any missing or truncated part falls short).
func (g *trackerLegacyGroup) complete(k trackerSizedKey) (DBObjectInfo, bool) {
	switch {
	case g.haveUnsplit && g.unsplitBytes == k.size:
		return DBObjectInfo{Ts: k.ts, Gen: k.gen, Type: g.typ, Size: k.size,
			BaseTs: k.baseTs, BaseGen: k.baseGen}, true
	case g.maxPart >= 0 && g.splitBytes == k.size:
		return DBObjectInfo{Ts: k.ts, Gen: k.gen, Type: g.typ, Size: k.size, Parts: g.maxPart + 1,
			BaseTs: k.baseTs, BaseGen: k.baseGen}, true
	}
	return DBObjectInfo{}, false
}

// complete applies LoadFromList's part-sealed completeness rule: exactly
// one commit marker, contiguous indices 0..count-1, and every part's
// listed bytes matching its name-declared sealed size.
func (g *trackerSealedGroup) complete(k dbKey) (DBObjectInfo, bool) {
	if g.invalid {
		return DBObjectInfo{}, false
	}
	count, markers := 0, 0
	for _, p := range g.parts {
		if p.count > 0 {
			markers++
			count = p.count
		}
	}
	if markers != 1 || len(g.parts) != count {
		return DBObjectInfo{}, false
	}
	sizes := make([]int64, count)
	var total int64
	for i := 0; i < count; i++ {
		p, present := g.parts[i]
		if !present || p.listed != p.declared {
			return DBObjectInfo{}, false
		}
		sizes[i] = p.declared
		total += p.declared
	}
	return DBObjectInfo{Ts: k.ts, Gen: k.gen, Type: g.typ, Size: total, Parts: count, PartSizes: sizes,
		BaseTs: g.baseTs, BaseGen: g.baseGen}, true
}
