package core

import (
	"context"
	"sync"
	"sync/atomic"
)

// This file is the shared bounded-concurrency cloud I/O layer: every data
// path that moves more than one object to or from the cloud — checkpoint/
// dump part uploads, garbage-collection deletes, recovery prefetch — runs
// its requests through runLimited or prefetchInOrder instead of a serial
// loop. Per-request behaviour (retry, backoff, latency modelling) is
// unchanged: the helpers only control how many requests are in flight at
// once, which is what hides per-request cloud latency (the same lever the
// paper pulls with its five Uploader threads on the WAL commit path).
//
// Under fleet mode these per-instance worker counts are an upper bound,
// not a reservation: each request still acquires a slot from the shared
// fleetScheduler at the store layer (schedStore), so a tenant that spins
// up CheckpointUploaders workers for a dump queues at the fleet's bulk
// class — per-tenant capped and unable to starve other tenants' WAL
// PUTs — instead of multiplying against the process-wide pool.

// runLimited executes n index-addressed tasks with at most workers
// goroutines in flight, stopping at the first error. Tasks receive a
// context that is cancelled as soon as any task fails, so retry loops
// inside a task abort instead of riding out their backoff. The first task
// error is returned; if the parent context is cancelled before every task
// completed, that cancellation error is returned instead of silently
// reporting success on partial work.
func runLimited(ctx context.Context, workers, n int, task func(ctx context.Context, i int) error) error {
	if n == 0 {
		return ctx.Err()
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := task(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	gctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next    atomic.Int64
		done    atomic.Int64
		wg      sync.WaitGroup
		errOnce sync.Once
		first   error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			first = err
			cancel()
		})
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || gctx.Err() != nil {
					return
				}
				if err := task(gctx, i); err != nil {
					fail(err)
					return
				}
				done.Add(1)
			}
		}()
	}
	wg.Wait()
	if first != nil {
		return first
	}
	if int(done.Load()) != n {
		// Cancelled mid-way by the parent context: some tasks were skipped.
		if err := ctx.Err(); err != nil {
			return err
		}
		return context.Canceled
	}
	return nil
}

// prefetchInOrder fetches names with up to workers parallel fetchers while
// delivering the results to apply strictly in index order — the
// fetch-in-parallel / apply-in-order split that recovery needs: GETs
// overlap to hide per-request latency, but dump → checkpoints → WAL
// replay ordering is preserved exactly.
//
// A bounded readahead window (2× the worker count) caps how far completed
// fetches can run ahead of the applier, so prefetching a huge object set
// cannot buffer the whole backup in memory. Workers acquire a window slot
// before claiming an index, which guarantees the lowest outstanding index
// always owns a slot — the applier can always make progress.
func prefetchInOrder(ctx context.Context, workers int, names []string,
	fetch func(ctx context.Context, name string) ([]byte, error),
	apply func(i int, data []byte) error) error {
	n := len(names)
	if n == 0 {
		return ctx.Err()
	}
	if workers < 1 {
		workers = 1
	}
	if workers == 1 {
		for i, name := range names {
			if err := ctx.Err(); err != nil {
				return err
			}
			data, err := fetch(ctx, name)
			if err != nil {
				return err
			}
			if err := apply(i, data); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > n {
		workers = n
	}
	window := workers * 2
	if window > n {
		window = n
	}

	type result struct {
		data []byte
		err  error
	}
	var wg sync.WaitGroup
	defer wg.Wait()
	gctx, cancel := context.WithCancel(ctx)
	defer cancel() // runs before wg.Wait: workers parked on the window wake up

	// The first fetch error cancels gctx so in-flight and queued fetches
	// stop at once instead of riding out retries on a doomed restore. The
	// applier may then observe a cancellation-flavoured result for an
	// earlier index before reaching the failed one, so the triggering
	// error is kept aside and preferred on every error path.
	var (
		failMu  sync.Mutex
		failErr error
	)
	fail := func(err error) {
		failMu.Lock()
		if failErr == nil {
			failErr = err
			cancel()
		}
		failMu.Unlock()
	}
	firstErr := func(fallback error) error {
		failMu.Lock()
		defer failMu.Unlock()
		if failErr != nil {
			return failErr
		}
		return fallback
	}

	results := make([]chan result, n)
	for i := range results {
		results[i] = make(chan result, 1)
	}
	sem := make(chan struct{}, window)
	var next atomic.Int64
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case sem <- struct{}{}: // slot released when the applier consumes
				case <-gctx.Done():
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				data, err := fetch(gctx, names[i])
				results[i] <- result{data: data, err: err}
				if err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		var r result
		select {
		case r = <-results[i]:
		case <-gctx.Done():
			return firstErr(gctx.Err())
		}
		if r.err != nil {
			return firstErr(r.err)
		}
		if err := apply(i, r.data); err != nil {
			return err
		}
		<-sem
	}
	return nil
}
