package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/dbevent"
	"github.com/ginja-dr/ginja/internal/obs"
	"github.com/ginja-dr/ginja/internal/sealer"
	"github.com/ginja-dr/ginja/internal/simclock"
	"github.com/ginja-dr/ginja/internal/vfs"
)

// Follower is the warm-standby half of disaster recovery (ROADMAP item 3,
// in the spirit of Taurus's log-is-the-database replicas): it continuously
// tails the cloud bucket — incremental LIST diffing through a listTracker,
// parallel prefetch through prefetchInOrder, strict-order apply — into a
// warm local replica, so that Promote finishes recovery in O(replication
// lag) instead of O(database size).
//
// Apply order mirrors cold recovery exactly: complete DB objects in
// (Ts, Gen) order, and WAL objects only as a consecutive-timestamp run
// from the applied frontier (parallel uploaders land WAL out of order, so
// gapped timestamps wait in pending until the gap fills — or until a
// checkpoint covering them arrives, which skips the frontier past the gap
// just as a cold restore would). WAL and DB objects touch disjoint file
// classes, so interleaving the two streams cannot corrupt the replica.
//
// Lifecycle: NewFollower → Start (initial full sync + tail loop) → either
// Promote (disaster: final catch-up, then a started *Ginja on the warm
// files) or Close.
type Follower struct {
	localFS vfs.FS
	store   cloud.ObjectStore
	proc    dbevent.Processor
	params  Params
	seal    *sealer.Sealer
	clk     simclock.Clock

	ctx      context.Context
	cancel   context.CancelFunc
	done     chan struct{}
	looping  atomic.Bool // true once loop() was launched (f.done will close)
	started  atomic.Bool
	promoted atomic.Bool

	// mu guards the tail state: the LIST tracker, the pending queues, the
	// applied frontier and the catch-up watermark. The apply path is
	// single-goroutine (tail loop or Promote, never both); the lock exists
	// for Stats/metrics readers.
	mu         sync.Mutex
	tracker    *listTracker
	pendingWAL map[int64]WALObjectInfo
	pendingDB  []DBObjectInfo
	appliedDBs []DBObjectInfo // DB objects applied, in (Ts, Gen) order
	appliedTs  int64          // WAL frontier: every ts ≤ this is reflected locally
	// appliedWALs remembers the WAL objects applied beyond the newest
	// applied DB object (entries at or below it are pruned: the DB object
	// covers them). They exist so an out-of-order DB repair — which
	// clobbers the local WAL files with older whole-file images — can
	// re-queue and replay the run instead of silently losing it.
	appliedWALs map[int64]WALObjectInfo
	caughtUpAt  time.Time // last instant the replica held everything listed

	polls      atomic.Int64
	listErrs   atomic.Int64
	appliedWAL atomic.Int64
	appliedDB  atomic.Int64
	watermark  atomic.Int64 // appliedTs mirror for the lock-free gauge

	recFetch *obs.Histogram

	errMu sync.Mutex
	err   error
}

// FollowerStats is a snapshot of a Follower's tailing activity.
type FollowerStats struct {
	// Polls counts LIST cycles (the initial sync included); ListErrors
	// counts the transient LIST failures the tail loop absorbed.
	Polls      int64
	ListErrors int64
	// AppliedWALObjects / AppliedDBObjects count objects replayed into the
	// warm replica.
	AppliedWALObjects int64
	AppliedDBObjects  int64
	// AppliedTs is the WAL frontier watermark: every timestamp up to and
	// including it is reflected in the local files.
	AppliedTs int64
	// PendingWAL is how many listed WAL objects are gap-blocked (waiting
	// for a missing timestamp or a superseding checkpoint).
	PendingWAL int
	// Lag is how long ago the replica last held everything the bucket
	// listed — the ginja_follower_lag_seconds watermark, and the bound on
	// Promote's catch-up work.
	Lag time.Duration
	// Promoted reports whether Promote has been called.
	Promoted bool
	// LastError is the fatal tail error, if any ("" while healthy).
	LastError string
}

// NewFollower creates a warm-standby follower replicating the bucket in
// store into localFS. params wants the same knobs as the primary (the
// sealer configuration must match or nothing will open); FollowInterval
// sets the poll cadence and UploadRetries/RetryBaseDelay govern how
// Promote's final catch-up rides an outage out.
func NewFollower(localFS vfs.FS, store cloud.ObjectStore, proc dbevent.Processor, params Params) (*Follower, error) {
	params, err := params.Validate()
	if err != nil {
		return nil, err
	}
	// Tail the same per-tenant subtree the primary writes: with a Prefix
	// set the follower's LIST diffing sees only this tenant's objects.
	store = cloud.NewPrefixStore(store, params.Prefix)
	seal, err := sealer.New(sealer.Options{
		Compress: params.Compress,
		Encrypt:  params.Encrypt,
		Password: params.Password,
	})
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	f := &Follower{
		localFS:     localFS,
		store:       store,
		proc:        proc,
		params:      params,
		seal:        seal,
		clk:         params.clock(),
		ctx:         ctx,
		cancel:      cancel,
		done:        make(chan struct{}),
		tracker:     newListTracker(),
		pendingWAL:  make(map[int64]WALObjectInfo),
		appliedWALs: make(map[int64]WALObjectInfo),
	}
	f.caughtUpAt = f.clk.Now()
	if reg := params.Metrics; reg != nil {
		f.recFetch = reg.Histogram(metricRecoveryFetch,
			"Per-object GET duration during recovery prefetch in seconds.", nil, nil)
		reg.GaugeFunc(metricFollowerLag,
			"Warm-standby replication lag in seconds: how long ago the follower last held everything the bucket listed.",
			nil, func() float64 { return f.Lag().Seconds() })
		reg.GaugeFunc(metricFollowerAppliedTs,
			"Warm-standby applied-WAL-timestamp watermark: every ts up to this is reflected in the replica.",
			nil, func() float64 { return float64(f.watermark.Load()) })
	}
	return f, nil
}

// Start performs the initial full sync (the cold-restore equivalent:
// dump, checkpoints, consecutive WAL, all through the same tail path) and
// then launches the poll loop on the configured clock. It returns once
// the replica holds everything currently listed.
func (f *Follower) Start(ctx context.Context) error {
	if !f.started.CompareAndSwap(false, true) {
		return errors.New("core: follower already started")
	}
	infos, err := storeListWithRetry(ctx, f.store, f.params)
	if err != nil {
		// Reset started so a failed Start can be retried and so Promote
		// reports ErrNotStarted instead of waiting on a loop that never
		// launched (f.done only closes once loop() runs).
		f.started.Store(false)
		return fmt.Errorf("core: follower initial list: %w", err)
	}
	f.polls.Add(1)
	if err := f.ingestAndApply(ctx, infos, nil); err != nil {
		f.started.Store(false)
		return fmt.Errorf("core: follower initial sync: %w", err)
	}
	f.params.logger().Info("follower started",
		"applied_ts", f.watermark.Load(), "poll_interval", f.params.FollowInterval)
	f.looping.Store(true)
	go f.loop()
	return nil
}

func (f *Follower) loop() {
	defer close(f.done)
	for {
		if simclock.SleepCtx(f.ctx, f.clk, f.params.FollowInterval) != nil {
			return
		}
		start := f.clk.Now()
		infos, err := f.store.List(f.ctx, "")
		if err != nil {
			if f.ctx.Err() != nil {
				return
			}
			// A failed LIST is the cloud being a cloud: count it and let
			// the next tick retry. The poll cadence is the retry policy.
			f.listErrs.Add(1)
			continue
		}
		f.polls.Add(1)
		applied := f.appliedWAL.Load() + f.appliedDB.Load()
		if err := f.ingestAndApply(f.ctx, infos, nil); err != nil {
			if f.ctx.Err() != nil {
				return
			}
			f.fail(err)
			return
		}
		if reg := f.params.Metrics; reg != nil {
			if n := f.appliedWAL.Load() + f.appliedDB.Load() - applied; n > 0 {
				reg.Spans().Record(obs.Span{
					Name: "follower:apply", ID: f.watermark.Load(), Extra: n,
					Start: start, Duration: f.clk.Since(start),
				})
			}
		}
	}
}

// ingestAndApply diffs one listing into the pending queues and drains
// whatever became applicable. bd, when non-nil (Promote), accumulates
// recovery-phase timings and counts.
func (f *Follower) ingestAndApply(ctx context.Context, infos []cloud.ObjectInfo, bd *RecoveryBreakdown) error {
	f.mu.Lock()
	walNew, dbNew, err := f.tracker.observe(infos)
	if err != nil {
		f.mu.Unlock()
		return err
	}
	for _, w := range walNew {
		if w.Ts > f.appliedTs {
			f.pendingWAL[w.Ts] = w
		}
	}
	if len(dbNew) > 0 {
		f.pendingDB = append(f.pendingDB, dbNew...)
		sort.Slice(f.pendingDB, func(i, j int) bool { return f.pendingDB[i].Before(f.pendingDB[j]) })
	}
	f.mu.Unlock()
	if err := f.applyReady(ctx, bd); err != nil {
		return err
	}
	f.mu.Lock()
	if len(f.pendingWAL) == 0 && len(f.pendingDB) == 0 {
		f.caughtUpAt = f.clk.Now()
	}
	f.mu.Unlock()
	return nil
}

// applyReady drains the pending queues in recovery order: DB objects by
// (Ts, Gen) first, then the consecutive WAL run from the applied
// frontier. Applying a DB object with Ts = T advances the frontier to T
// and discards pending WAL ≤ T — exactly the cold-recovery rule that
// replays WAL only past the newest checkpoint. An object that vanished
// between LIST and GET (the primary's GC won the race) is dropped; its
// superseding object is already in, or on its way into, a later listing.
func (f *Follower) applyReady(ctx context.Context, bd *RecoveryBreakdown) error {
	for {
		f.mu.Lock()
		if len(f.pendingDB) > 0 {
			d := f.pendingDB[0]
			f.pendingDB = f.pendingDB[1:]
			outOfOrder := len(f.appliedDBs) > 0 && d.Before(f.appliedDBs[len(f.appliedDBs)-1])
			f.mu.Unlock()
			if err := f.applyDB(ctx, d, bd); err != nil {
				if errors.Is(err, cloud.ErrNotFound) {
					continue // GC'd under us: superseded, skip
				}
				return err
			}
			if outOfOrder {
				// A listing revealed an older DB object after a newer one was
				// already applied (read-after-write list lag). Its page images
				// are stale now; re-apply the newer objects on top so the
				// replica ends at the newest applied state again.
				if err := f.reapplyNewerThan(ctx, d, bd); err != nil {
					return err
				}
			}
			f.mu.Lock()
			f.appliedDBs = append(f.appliedDBs, d)
			sort.Slice(f.appliedDBs, func(i, j int) bool { return f.appliedDBs[i].Before(f.appliedDBs[j]) })
			if d.Ts > f.appliedTs {
				f.appliedTs = d.Ts
				f.watermark.Store(d.Ts)
				for ts := range f.pendingWAL {
					if ts <= f.appliedTs {
						delete(f.pendingWAL, ts)
					}
				}
				for ts := range f.appliedWALs {
					if ts <= f.appliedTs {
						delete(f.appliedWALs, ts)
					}
				}
			} else if outOfOrder {
				// The out-of-order apply wrote d's older whole-file images —
				// including its snapshot of the WAL files — and the re-apply
				// above restored only the newer DB objects, not the WAL run
				// applied past them. Roll the frontier back to the newest
				// applied DB Ts and re-queue that run from appliedWALs so the
				// normal drain below replays it; until then the watermark must
				// not claim timestamps the files no longer hold.
				top := f.appliedDBs[len(f.appliedDBs)-1].Ts
				if f.appliedTs > top {
					for ts := top + 1; ts <= f.appliedTs; ts++ {
						if w, ok := f.appliedWALs[ts]; ok {
							f.pendingWAL[ts] = w
						}
					}
					f.appliedTs = top
					f.watermark.Store(top)
				}
			}
			f.mu.Unlock()
			f.appliedDB.Add(1)
			continue
		}
		var run []WALObjectInfo
		for ts := f.appliedTs + 1; ; ts++ {
			w, ok := f.pendingWAL[ts]
			if !ok {
				break
			}
			run = append(run, w)
		}
		f.mu.Unlock()
		if len(run) == 0 {
			return nil
		}
		applied, err := f.applyWALRun(ctx, run, bd)
		f.mu.Lock()
		for _, w := range run[:applied] {
			delete(f.pendingWAL, w.Ts)
			f.appliedWALs[w.Ts] = w
			f.appliedTs = w.Ts
		}
		f.watermark.Store(f.appliedTs)
		f.mu.Unlock()
		f.appliedWAL.Add(int64(applied))
		if err != nil {
			if errors.Is(err, cloud.ErrNotFound) && applied < len(run) {
				// The first unapplied object was GC'd: a checkpoint covering
				// it exists (or is about to be listed) and will skip the
				// frontier past it. Drop it and wait.
				f.mu.Lock()
				delete(f.pendingWAL, run[applied].Ts)
				f.mu.Unlock()
				continue
			}
			return err
		}
	}
}

// reapplyNewerThan replays every already-applied DB object after d, in
// order, restoring the newest-state invariant after an out-of-order apply.
func (f *Follower) reapplyNewerThan(ctx context.Context, d DBObjectInfo, bd *RecoveryBreakdown) error {
	f.mu.Lock()
	var newer []DBObjectInfo
	for _, a := range f.appliedDBs {
		if d.Before(a) {
			newer = append(newer, a)
		}
	}
	f.mu.Unlock()
	for _, a := range newer {
		if err := f.applyDB(ctx, a, bd); err != nil && !errors.Is(err, cloud.ErrNotFound) {
			return err
		}
	}
	return nil
}

// applyDB fetches all parts of one complete DB object through
// prefetchInOrder and applies them in part order (a whole-file head chunk
// truncates before its continuation chunks append, as in restoreTo).
func (f *Follower) applyDB(ctx context.Context, d DBObjectInfo, bd *RecoveryBreakdown) error {
	names := d.PartNames()
	var sealed []byte
	apply := func(i int, data []byte) error {
		if d.PartSealed() {
			return f.openAndApply(fmt.Sprintf("DB ts=%d", d.Ts), data, bd)
		}
		sealed = append(sealed, data...)
		if i+1 < len(names) {
			return nil
		}
		return f.openAndApply(fmt.Sprintf("DB ts=%d", d.Ts), sealed, bd)
	}
	return prefetchInOrder(ctx, f.params.RecoveryFetchers, names, f.fetch(bd), apply)
}

// applyWALRun fetches and applies a consecutive WAL run, returning how
// many objects of the run's prefix were fully applied before any error.
func (f *Follower) applyWALRun(ctx context.Context, run []WALObjectInfo, bd *RecoveryBreakdown) (int, error) {
	names := make([]string, len(run))
	for i, w := range run {
		names[i] = w.Name()
	}
	applied := 0
	apply := func(i int, data []byte) error {
		if err := f.openAndApply(names[i], data, bd); err != nil {
			return err
		}
		applied++
		if bd != nil {
			bd.WALObjects++
		}
		return nil
	}
	err := prefetchInOrder(ctx, f.params.RecoveryFetchers, names, f.fetch(bd), apply)
	return applied, err
}

// fetch returns the prefetch closure: GET with the shared retry policy,
// timed into the recovery-fetch histogram and, when bd is set, into the
// promote breakdown.
func (f *Follower) fetch(bd *RecoveryBreakdown) func(ctx context.Context, name string) ([]byte, error) {
	return func(ctx context.Context, name string) ([]byte, error) {
		start := f.clk.Now()
		data, err := storeGetWithRetry(ctx, f.store, f.params, name)
		if err != nil {
			return nil, fmt.Errorf("core: follower fetch %s: %w", name, err)
		}
		d := f.clk.Since(start)
		if f.recFetch != nil {
			f.recFetch.ObserveDuration(d)
		}
		if bd != nil {
			f.mu.Lock()
			bd.Fetch += d
			bd.Bytes += int64(len(data))
			bd.Objects++
			f.mu.Unlock()
		}
		return data, nil
	}
}

func (f *Follower) openAndApply(label string, env []byte, bd *RecoveryBreakdown) error {
	decStart := f.clk.Now()
	payload, err := f.seal.Open(env)
	if err != nil {
		return fmt.Errorf("core: follower apply %s: %w", label, err)
	}
	writes, err := DecodeWrites(payload)
	if err != nil {
		return fmt.Errorf("core: follower apply %s: %w", label, err)
	}
	applyStart := f.clk.Now()
	err = applyWrites(f.localFS, writes)
	if bd != nil {
		bd.Decode += applyStart.Sub(decStart)
		bd.Apply += f.clk.Since(applyStart)
	}
	return err
}

// Promote turns the warm replica into the live site: it stops the tail
// loop, performs one final catch-up (LIST under the retry policy — an
// ongoing outage is ridden out — then applies the lag), and returns a
// started *Ginja on the warm files, ready for the DBMS to open via FS().
// The whole handoff is O(replication lag): no second LIST, no database
// re-download — the final listing seeds the new instance's CloudView
// directly. The promote RTO is published like any recovery (Mode
// "promote" in Stats.LastRecovery, ginja_recovery_phase_seconds,
// recovery:* and follower:promote spans).
func (f *Follower) Promote(ctx context.Context) (*Ginja, error) {
	if !f.started.Load() {
		return nil, ErrNotStarted
	}
	if !f.promoted.CompareAndSwap(false, true) {
		return nil, errors.New("core: follower already promoted")
	}
	f.cancel()
	if f.looping.Load() {
		<-f.done
	}
	if err := f.Err(); err != nil {
		return nil, fmt.Errorf("core: promote after fatal tail error: %w", err)
	}
	started := f.clk.Now()
	bd := &RecoveryBreakdown{Mode: "promote"}
	t := f.clk.Now()
	infos, err := storeListWithRetry(ctx, f.store, f.params)
	if err != nil {
		return nil, fmt.Errorf("core: promote list: %w", err)
	}
	bd.List = f.clk.Since(t)
	f.polls.Add(1)
	if err := f.ingestAndApply(ctx, infos, bd); err != nil {
		return nil, fmt.Errorf("core: promote catch-up: %w", err)
	}
	g, err := New(f.localFS, f.store, f.proc, f.params)
	if err != nil {
		return nil, err
	}
	t = f.clk.Now()
	if err := g.view.LoadFromList(infos); err != nil {
		return nil, err
	}
	bd.ViewBuild = f.clk.Since(t)
	t = f.clk.Now()
	files, bytes, err := verifyRestore(f.localFS)
	if err != nil {
		return nil, fmt.Errorf("core: promote verify: %w", err)
	}
	bd.Verify = f.clk.Since(t)
	bd.VerifiedFiles, bd.VerifiedBytes = files, bytes
	if d, ok := g.view.LatestDump(); ok {
		bd.DumpTs = d.Ts
	}
	bd.Total = f.clk.Since(started)
	g.lastRecovery.Store(bd)
	observeRecovery(f.params.Metrics, bd, started)
	if reg := f.params.Metrics; reg != nil {
		reg.Spans().Record(obs.Span{
			Name: "follower:promote", ID: bd.DumpTs, Extra: int64(bd.Objects),
			Start: started, Duration: bd.Total,
		})
	}
	f.params.logger().Info("follower promoted",
		"rto_ms", bd.Total.Milliseconds(), "caught_up_objects", bd.Objects,
		"applied_ts", f.watermark.Load())
	g.start()
	return g, nil
}

// Lag reports how long ago the replica last held everything the bucket
// listed (the ginja_follower_lag_seconds watermark).
func (f *Follower) Lag() time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.clk.Since(f.caughtUpAt)
}

// Stats returns a snapshot of the follower's activity.
func (f *Follower) Stats() FollowerStats {
	f.mu.Lock()
	pending := len(f.pendingWAL)
	lag := f.clk.Since(f.caughtUpAt)
	f.mu.Unlock()
	s := FollowerStats{
		Polls:             f.polls.Load(),
		ListErrors:        f.listErrs.Load(),
		AppliedWALObjects: f.appliedWAL.Load(),
		AppliedDBObjects:  f.appliedDB.Load(),
		AppliedTs:         f.watermark.Load(),
		PendingWAL:        pending,
		Lag:               lag,
		Promoted:          f.promoted.Load(),
	}
	if err := f.Err(); err != nil {
		s.LastError = err.Error()
	}
	return s
}

// Err returns the fatal tail error, if any. Transient LIST failures are
// absorbed (FollowerStats.ListErrors); only unrecoverable conditions — a
// foreign object in the bucket, a failed apply — land here.
func (f *Follower) Err() error {
	f.errMu.Lock()
	defer f.errMu.Unlock()
	return f.err
}

func (f *Follower) fail(err error) {
	f.errMu.Lock()
	if f.err == nil {
		f.err = err
	}
	f.errMu.Unlock()
	f.params.logger().Error("follower tail failed", "err", err)
}

// Close stops the tail loop without promoting. A promoted follower is
// already stopped; Close is then a no-op.
func (f *Follower) Close() error {
	f.cancel()
	if f.looping.Load() {
		<-f.done
	}
	return f.Err()
}
