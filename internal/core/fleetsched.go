package core

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/obs"
	"github.com/ginja-dr/ginja/internal/simclock"
)

// opClass classifies a cloud operation for the fleet's shared-pool
// scheduler. The class decides which pool the operation draws from and
// how it is ordered against other tenants' traffic.
type opClass int

const (
	// classSafety is a commit-path WAL PUT: the operation a database is
	// (or soon will be) blocked on via the Safety contract. Dispatched
	// earliest-deadline-first from the upload pool, exempt from the
	// per-tenant cap, and counted as a starvation event if it out-waits
	// its TS deadline in the queue.
	classSafety opClass = iota
	// classBulk is checkpoint-path traffic — DB-object PUTs and GC
	// DELETEs. It is what a dumping or compacting antagonist tenant
	// floods the pool with, so it is capped per tenant and yields to
	// Safety traffic (with aging, so it always progresses).
	classBulk
	// classFetch is read traffic — GETs and LISTs from recovery, Verify
	// and followers. Drawn from the separate fetch pool so a recovery
	// storm cannot consume upload slots, capped per tenant.
	classFetch
)

var opClassNames = [3]string{"safety", "bulk", "fetch"}

// fleetScheduler arbitrates two bounded pools of concurrent cloud
// operations — uploads (PUT/DELETE) and fetches (GET/LIST) — across the
// tenants of a Fleet. The policy guarantees the property the fleet bench
// gates on: an antagonist tenant saturating the bulk path cannot starve
// other tenants' Safety windows.
//
//   - Safety-class operations dispatch earliest-deadline-first (the
//     deadline is enqueue time + the tenant's TS) and are exempt from
//     the per-tenant cap: commit availability is the contract.
//   - Bulk operations are FIFO, capped per tenant (an antagonist can
//     hold at most tenantCap upload slots no matter how many dump parts
//     it has ready), and yield to Safety — except once a bulk waiter has
//     aged past bulkAgingAfter, when it dispatches ahead of fetch
//     traffic so checkpoints always complete.
//   - Fetch operations are FIFO, capped per tenant, on their own pool.
//
// Queues are plain slices scanned at dispatch: the scan is O(waiters),
// and the waiter population is bounded by the fleet's total worker count
// (tenants × uploaders), which keeps dispatch far off any hot path.
type fleetScheduler struct {
	clk simclock.Clock

	uploadSlots    int
	fetchSlots     int
	tenantCap      int
	bulkAgingAfter time.Duration

	mu           sync.Mutex
	uploadInUse  int
	fetchInUse   int
	perTenantCap map[string]int // capped (bulk+fetch) ops in flight per tenant
	safetyQ      []*schedWaiter
	bulkQ        []*schedWaiter
	fetchQ       []*schedWaiter

	inflightByClass [3]atomic.Int64
	starved         atomic.Int64

	waitHist [3]*obs.Histogram
	opsTotal [3]*obs.Counter
	starvedC *obs.Counter
}

// schedWaiter is one blocked acquire.
type schedWaiter struct {
	tenant   string
	class    opClass
	deadline time.Time // Safety only: the TS budget
	enq      time.Time
	ch       chan struct{}
	granted  bool
	removed  bool
}

func newFleetScheduler(clk simclock.Clock, uploadSlots, fetchSlots, tenantCap int,
	bulkAgingAfter time.Duration, reg *obs.Registry) *fleetScheduler {
	s := &fleetScheduler{
		clk:            clk,
		uploadSlots:    uploadSlots,
		fetchSlots:     fetchSlots,
		tenantCap:      tenantCap,
		bulkAgingAfter: bulkAgingAfter,
		perTenantCap:   make(map[string]int),
	}
	if reg != nil {
		for i, name := range opClassNames {
			i := i
			s.waitHist[i] = reg.Histogram(metricFleetSchedWait,
				"Time cloud operations spent queued in the fleet scheduler before dispatch, by class.",
				obs.Labels{"class": name}, nil)
			s.opsTotal[i] = reg.Counter(metricFleetOps,
				"Cloud operations dispatched through the fleet scheduler, by class.",
				obs.Labels{"class": name})
			reg.GaugeFunc(metricFleetInflight,
				"Cloud operations currently holding a fleet-pool slot, by class.",
				obs.Labels{"class": name},
				func() float64 { return float64(s.inflightByClass[i].Load()) })
		}
		s.starvedC = reg.Counter(metricFleetStarvation,
			"Safety-class operations that out-waited their TS deadline in the fleet scheduler queue — each one is a commit window the scheduler failed to protect.", nil)
	}
	return s
}

// starvationCount returns how many Safety-class operations have waited
// past their deadline so far (the fleet bench's zero-miss gate).
func (s *fleetScheduler) starvationCount() int64 { return s.starved.Load() }

// acquire blocks until the operation is granted a slot (or ctx ends).
// Every grant must be paired with a release.
func (s *fleetScheduler) acquire(ctx context.Context, tenant string, class opClass, deadline time.Time) error {
	w := &schedWaiter{
		tenant:   tenant,
		class:    class,
		deadline: deadline,
		enq:      s.clk.Now(),
		ch:       make(chan struct{}),
	}
	s.mu.Lock()
	switch class {
	case classSafety:
		s.safetyQ = append(s.safetyQ, w)
	case classBulk:
		s.bulkQ = append(s.bulkQ, w)
	default:
		s.fetchQ = append(s.fetchQ, w)
	}
	s.dispatchLocked()
	s.mu.Unlock()

	select {
	case <-w.ch:
	case <-ctx.Done():
		s.mu.Lock()
		if w.granted {
			// Lost the race: the slot was granted as the context died.
			// Hand it straight back.
			s.releaseLocked(w.tenant, w.class)
			s.mu.Unlock()
			return ctx.Err()
		}
		w.removed = true
		s.mu.Unlock()
		return ctx.Err()
	}

	wait := s.clk.Since(w.enq)
	if h := s.waitHist[class]; h != nil {
		h.ObserveDuration(wait)
	}
	if c := s.opsTotal[class]; c != nil {
		c.Add(1)
	}
	if class == classSafety && !w.deadline.IsZero() && s.clk.Now().After(w.deadline) {
		s.starved.Add(1)
		if s.starvedC != nil {
			s.starvedC.Add(1)
		}
	}
	return nil
}

// release returns a slot to the pool and dispatches waiters.
func (s *fleetScheduler) release(tenant string, class opClass) {
	s.mu.Lock()
	s.releaseLocked(tenant, class)
	s.dispatchLocked()
	s.mu.Unlock()
}

func (s *fleetScheduler) releaseLocked(tenant string, class opClass) {
	if class == classFetch {
		s.fetchInUse--
	} else {
		s.uploadInUse--
	}
	if class != classSafety {
		if n := s.perTenantCap[tenant] - 1; n > 0 {
			s.perTenantCap[tenant] = n
		} else {
			delete(s.perTenantCap, tenant)
		}
	}
	s.inflightByClass[class].Add(-1)
}

// dispatchLocked grants slots to eligible waiters until the pools are
// full or no waiter is eligible. Upload-pool priority per free slot:
// aged bulk (waited past bulkAgingAfter, under cap) > Safety EDF > bulk.
// Aged bulk jumping ahead of Safety cannot starve commits because bulk
// is still per-tenant capped — a handful of slots at most — while
// Safety has the run of the pool.
func (s *fleetScheduler) dispatchLocked() {
	var now time.Time // sampled once, only if aging is checked
	for s.uploadInUse < s.uploadSlots {
		if len(s.bulkQ) > 0 && s.bulkAgingAfter > 0 {
			if now.IsZero() {
				now = s.clk.Now()
			}
			if w := s.pickAgedBulkLocked(now); w != nil {
				s.grantLocked(w)
				continue
			}
		}
		if w := s.pickSafetyLocked(); w != nil {
			s.grantLocked(w)
			continue
		}
		if w := s.pickCappedLocked(&s.bulkQ); w != nil {
			s.grantLocked(w)
			continue
		}
		break
	}
	for s.fetchInUse < s.fetchSlots {
		w := s.pickCappedLocked(&s.fetchQ)
		if w == nil {
			break
		}
		s.grantLocked(w)
	}
}

// pickAgedBulkLocked removes and returns the oldest bulk waiter that
// has been queued longer than bulkAgingAfter and is under the tenant
// cap, or nil.
func (s *fleetScheduler) pickAgedBulkLocked(now time.Time) *schedWaiter {
	for i, w := range s.bulkQ {
		if w.removed || s.perTenantCap[w.tenant] >= s.tenantCap {
			continue
		}
		if now.Sub(w.enq) < s.bulkAgingAfter {
			// FIFO queue: everything after this waiter is younger.
			return nil
		}
		s.bulkQ = append(s.bulkQ[:i], s.bulkQ[i+1:]...)
		return w
	}
	return nil
}

// pickSafetyLocked removes and returns the earliest-deadline Safety
// waiter, or nil.
func (s *fleetScheduler) pickSafetyLocked() *schedWaiter {
	best := -1
	for i, w := range s.safetyQ {
		if w.removed {
			continue
		}
		if best == -1 || w.deadline.Before(s.safetyQ[best].deadline) {
			best = i
		}
	}
	if best == -1 {
		s.safetyQ = s.safetyQ[:0]
		return nil
	}
	w := s.safetyQ[best]
	s.safetyQ = append(s.safetyQ[:best], s.safetyQ[best+1:]...)
	return w
}

// pickCappedLocked removes and returns the first waiter in q whose
// tenant is under the per-tenant cap, or nil.
func (s *fleetScheduler) pickCappedLocked(q *[]*schedWaiter) *schedWaiter {
	for i, w := range *q {
		if w.removed {
			continue
		}
		if s.perTenantCap[w.tenant] >= s.tenantCap {
			continue
		}
		*q = append((*q)[:i], (*q)[i+1:]...)
		return w
	}
	// Compact away removed waiters so dead entries don't accumulate.
	kept := (*q)[:0]
	for _, w := range *q {
		if !w.removed {
			kept = append(kept, w)
		}
	}
	*q = kept
	return nil
}

func (s *fleetScheduler) grantLocked(w *schedWaiter) {
	if w.class == classFetch {
		s.fetchInUse++
	} else {
		s.uploadInUse++
	}
	if w.class != classSafety {
		s.perTenantCap[w.tenant]++
	}
	s.inflightByClass[w.class].Add(1)
	w.granted = true
	close(w.ch)
}

// schedStore routes one tenant's cloud operations through the fleet
// scheduler. It wraps the SHARED store (core.New layers the tenant's
// PrefixStore on top), so the names it sees are fully prefixed; the
// class is derived from the logical name under the tenant's prefix.
type schedStore struct {
	inner         cloud.ObjectStore
	sched         *fleetScheduler
	tenant        string
	prefix        string // the tenant's "/"-terminated prefix ("" = none)
	safetyTimeout time.Duration
	clk           simclock.Clock
}

var _ cloud.ObjectStore = (*schedStore)(nil)

func (s *schedStore) putClass(name string) (opClass, time.Time) {
	logical := strings.TrimPrefix(name, s.prefix)
	if strings.HasPrefix(logical, walPrefix) {
		// The deadline is the Safety contract: if this PUT has not even
		// DISPATCHED within TS, commits on this tenant are blocking.
		return classSafety, s.clk.Now().Add(s.safetyTimeout)
	}
	return classBulk, time.Time{}
}

// Put implements cloud.ObjectStore.
func (s *schedStore) Put(ctx context.Context, name string, data []byte) error {
	class, deadline := s.putClass(name)
	if err := s.sched.acquire(ctx, s.tenant, class, deadline); err != nil {
		return err
	}
	defer s.sched.release(s.tenant, class)
	return s.inner.Put(ctx, name, data)
}

// Get implements cloud.ObjectStore.
func (s *schedStore) Get(ctx context.Context, name string) ([]byte, error) {
	if err := s.sched.acquire(ctx, s.tenant, classFetch, time.Time{}); err != nil {
		return nil, err
	}
	defer s.sched.release(s.tenant, classFetch)
	return s.inner.Get(ctx, name)
}

// List implements cloud.ObjectStore.
func (s *schedStore) List(ctx context.Context, prefix string) ([]cloud.ObjectInfo, error) {
	if err := s.sched.acquire(ctx, s.tenant, classFetch, time.Time{}); err != nil {
		return nil, err
	}
	defer s.sched.release(s.tenant, classFetch)
	return s.inner.List(ctx, prefix)
}

// Delete implements cloud.ObjectStore.
func (s *schedStore) Delete(ctx context.Context, name string) error {
	if err := s.sched.acquire(ctx, s.tenant, classBulk, time.Time{}); err != nil {
		return err
	}
	defer s.sched.release(s.tenant, classBulk)
	return s.inner.Delete(ctx, name)
}
