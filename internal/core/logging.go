package core

import (
	"context"
	"log/slog"
)

// nopHandler discards every record; used when Params.Logger is nil so the
// rest of the code can log unconditionally.
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (h nopHandler) WithAttrs([]slog.Attr) slog.Handler      { return h }
func (h nopHandler) WithGroup(string) slog.Handler           { return h }

// logger returns the configured logger or a no-op one.
func (p Params) logger() *slog.Logger {
	if p.Logger != nil {
		return p.Logger
	}
	return slog.New(nopHandler{})
}
