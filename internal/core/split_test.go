package core_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/core"
	"github.com/ginja-dr/ginja/internal/minidb"
	"github.com/ginja-dr/ginja/internal/vfs"
)

// TestDBObjectSplitEndToEnd forces dumps bigger than MaxObjectSize so DB
// objects are uploaded in parts, then recovers and verifies through the
// multipart path.
func TestDBObjectSplitEndToEnd(t *testing.T) {
	params := fastParams()
	params.MaxObjectSize = 4096 // tiny cap → every dump splits
	r := pgRig(t, params)
	if err := r.db.CreateTable("kv", 16); err != nil {
		t.Fatal(err)
	}
	// ≈40 KiB of data so the dump spans ~10 parts.
	for i := 0; i < 40; i++ {
		r.put(t, "kv", fmt.Sprintf("k%02d", i), strings.Repeat("x", 512))
	}
	if !r.g.Flush(5 * time.Second) {
		t.Fatal("flush")
	}
	if err := r.db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	waitCheckpointUploaded(t, r.g, 1)

	// Force a dump by dropping the threshold and checkpointing again.
	// (The boot dump was empty; with the tiny cap the incremental
	// checkpoint itself may already have split — both paths are good.)
	infos, err := r.store.List(context.Background(), "DB/")
	if err != nil {
		t.Fatal(err)
	}
	parts := 0
	for _, info := range infos {
		if strings.Contains(info.Name, ".p") || strings.Contains(info.Name, ".s") {
			parts++
		}
	}
	if parts < 2 {
		t.Fatalf("expected split DB objects, listing: %+v", infos)
	}

	// Recovery must reassemble the parts.
	db2 := r.disasterRecover(t)
	for i := 0; i < 40; i++ {
		if _, err := db2.Get("kv", []byte(fmt.Sprintf("k%02d", i))); err != nil {
			t.Fatalf("k%02d lost through multipart recovery: %v", i, err)
		}
	}

	// Verification must also handle part sets.
	gv, err := core.New(vfs.NewMemFS(), r.store, r.proc(), params)
	if err != nil {
		t.Fatal(err)
	}
	res, err := gv.Verify(context.Background(), vfs.NewMemFS(),
		func(fsys vfs.FS) error {
			db, err := minidb.Open(fsys, r.engine(), minidb.Options{})
			if err != nil {
				return err
			}
			return db.Close()
		}, nil)
	if err != nil {
		t.Fatalf("Verify with multipart objects: %v", err)
	}
	if res.ObjectsChecked == 0 || !res.RestartOK {
		t.Fatalf("VerifyResult = %+v", res)
	}
}

// TestVerifyWithEncryptedBackup runs the verification procedure against a
// compressed + encrypted backup.
func TestVerifyWithEncryptedBackup(t *testing.T) {
	params := fastParams()
	params.Compress = true
	params.Encrypt = true
	params.Password = "verify-me"
	r := pgRig(t, params)
	if err := r.db.CreateTable("kv", 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		r.put(t, "kv", fmt.Sprintf("k%d", i), "v")
	}
	if !r.g.Flush(5 * time.Second) {
		t.Fatal("flush")
	}
	gv, err := core.New(vfs.NewMemFS(), r.store, r.proc(), params)
	if err != nil {
		t.Fatal(err)
	}
	res, err := gv.Verify(context.Background(), vfs.NewMemFS(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ObjectsChecked == 0 {
		t.Fatal("nothing checked")
	}
}

// TestRecoverAtTargetBounds pins RecoverAt's target semantics: an invalid
// target (< -1) errors, a timestamp far past the frontier recovers the
// newest consistent prefix (every retained commit ≤ ts, i.e. everything),
// and a timestamp before the oldest retained dump reports ErrNoDump.
func TestRecoverAtTargetBounds(t *testing.T) {
	r := pgRig(t, fastParams())
	if err := r.db.CreateTable("kv", 0); err != nil {
		t.Fatal(err)
	}
	r.put(t, "kv", "k", "v")
	if !r.g.Flush(5 * time.Second) {
		t.Fatal("flush")
	}
	gr, err := core.New(vfs.NewMemFS(), r.store, r.proc(), r.g.Params())
	if err != nil {
		t.Fatal(err)
	}
	if err := gr.RecoverAt(context.Background(), vfs.NewMemFS(), -2); err == nil {
		t.Fatal("RecoverAt(-2) succeeded; want invalid-target error")
	}
	// A ts far beyond the WAL frontier means "everything committed up to
	// ts": with nothing newer in the cloud that is simply the newest state.
	if err := gr.RecoverAt(context.Background(), vfs.NewMemFS(), 424242); err != nil {
		t.Fatalf("RecoverAt far past the frontier: %v", err)
	}
	// Boot's dump is at reserved ts 0, so no target can precede every dump
	// here; an impossible target must still surface ErrNoDump when no dump
	// qualifies. Simulate by asking a fresh empty bucket.
	empty, err := core.New(vfs.NewMemFS(), cloud.NewMemStore(), r.proc(), r.g.Params())
	if err != nil {
		t.Fatal(err)
	}
	if err := empty.RecoverAt(context.Background(), vfs.NewMemFS(), 5); !errors.Is(err, core.ErrNoDump) {
		t.Fatalf("RecoverAt on empty bucket: got %v, want ErrNoDump", err)
	}
}

// TestBatchTimeoutDrivesUploadsEndToEnd: a single commit with a huge B
// must still reach the cloud within TB.
func TestBatchTimeoutDrivesUploadsEndToEnd(t *testing.T) {
	params := fastParams()
	params.Batch = 1000 // never filled by one commit
	params.Safety = 10000
	params.BatchTimeout = 30 * time.Millisecond
	r := pgRig(t, params)
	if err := r.db.CreateTable("kv", 0); err != nil {
		t.Fatal(err)
	}
	r.put(t, "kv", "lonely", "commit")
	if !r.g.Flush(5 * time.Second) {
		t.Fatal("TB did not push the lonely commit out")
	}
	if r.g.Stats().WALObjectsUploaded == 0 {
		t.Fatal("nothing uploaded")
	}
}
