package core_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/core"
	"github.com/ginja-dr/ginja/internal/dbevent"
	"github.com/ginja-dr/ginja/internal/minidb"
	"github.com/ginja-dr/ginja/internal/minidb/pgengine"
	"github.com/ginja-dr/ginja/internal/vfs"
)

// fleetTenant bundles one admitted tenant database.
type fleetTenant struct {
	id string
	g  *core.Ginja
	db *minidb.DB
}

// admitTenant admits id into f, boots it and opens a database on it.
func admitTenant(t *testing.T, f *core.Fleet, id string) *fleetTenant {
	t.Helper()
	g, err := f.Admit(id, vfs.NewMemFS(), dbevent.NewPGProcessor(), fastParams())
	if err != nil {
		t.Fatalf("Admit(%s): %v", id, err)
	}
	if err := g.Boot(context.Background()); err != nil {
		t.Fatalf("Boot(%s): %v", id, err)
	}
	db, err := minidb.Open(g.FS(), pgengine.NewWithSizes(1024, 16*1024, 1024), minidb.Options{})
	if err != nil {
		t.Fatalf("Open(%s): %v", id, err)
	}
	return &fleetTenant{id: id, g: g, db: db}
}

func (ft *fleetTenant) put(t *testing.T, key, value string) {
	t.Helper()
	if err := ft.db.Update(func(tx *minidb.Txn) error {
		return tx.Put("kv", []byte(key), []byte(value))
	}); err != nil {
		t.Fatalf("put(%s): %v", ft.id, err)
	}
}

// TestFleetTwoTenantsShareBucketIsolated is the shared-bucket isolation
// property: two tenants write through one bucket; every object lands
// under its owner's prefix, each tenant's recovery sees only its own
// data, and evicting (or GC'ing) tenant A never deletes B's objects.
func TestFleetTwoTenantsShareBucketIsolated(t *testing.T) {
	shared := cloud.NewMemStore()
	f, err := core.NewFleet(core.FleetParams{Store: shared})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	a := admitTenant(t, f, "alpha")
	b := admitTenant(t, f, "beta")
	for i := 0; i < 30; i++ {
		a.put(t, "ka", strings.Repeat("A", 64))
		b.put(t, "kb", strings.Repeat("B", 64))
	}
	if !a.g.Flush(10*time.Second) || !b.g.Flush(10*time.Second) {
		t.Fatal("flush timed out")
	}

	// Every object in the shared bucket belongs to exactly one tenant
	// prefix.
	objs, err := shared.List(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) == 0 {
		t.Fatal("no objects in shared bucket")
	}
	var nA, nB int
	for _, o := range objs {
		switch {
		case strings.HasPrefix(o.Name, "tenants/alpha/"):
			nA++
		case strings.HasPrefix(o.Name, "tenants/beta/"):
			nB++
		default:
			t.Fatalf("object %q outside any tenant prefix", o.Name)
		}
	}
	if nA == 0 || nB == 0 {
		t.Fatalf("expected objects for both tenants, got alpha=%d beta=%d", nA, nB)
	}

	// Evict alpha: beta keeps running and alpha's cloud objects remain
	// for a later recovery.
	if err := f.Evict("alpha"); err != nil {
		t.Fatalf("Evict: %v", err)
	}
	b.put(t, "kb2", "still-alive")
	if !b.g.Flush(10 * time.Second) {
		t.Fatal("beta flush after eviction timed out")
	}
	objs, err = shared.List(context.Background(), "tenants/alpha/")
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) == 0 {
		t.Fatal("alpha's objects vanished on eviction")
	}

	// Recover alpha from the shared bucket into a fresh process-local
	// FS: it must see its own writes and must never have observed
	// beta's objects (core.New would fail on unrecognised names if the
	// prefix isolation leaked).
	g2, err := f.Admit("alpha", vfs.NewMemFS(), dbevent.NewPGProcessor(), fastParams())
	if err != nil {
		t.Fatalf("re-Admit: %v", err)
	}
	if err := g2.Recover(context.Background()); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	db2, err := minidb.Open(g2.FS(), pgengine.NewWithSizes(1024, 16*1024, 1024), minidb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := db2.Get("kv", []byte("ka"))
	if err != nil {
		t.Fatalf("read after recovery: %v", err)
	}
	if string(got) != strings.Repeat("A", 64) {
		t.Fatalf("recovered value = %q, want 64×A", got)
	}
	if _, err := db2.Get("kv", []byte("kb")); err == nil {
		t.Fatal("alpha's recovery observed beta's key")
	}
}

func TestFleetAdmitRejectsOverlappingPrefixes(t *testing.T) {
	f, err := core.NewFleet(core.FleetParams{Store: cloud.NewMemStore()})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	if _, err := f.Admit("a", vfs.NewMemFS(), dbevent.NewPGProcessor(), fastParams()); err != nil {
		t.Fatal(err)
	}
	cases := []core.Params{}
	nested := fastParams()
	nested.Prefix = "tenants/a/sub" // inside a's subtree
	cases = append(cases, nested)
	enclosing := fastParams()
	enclosing.Prefix = "tenants" // encloses a's subtree
	cases = append(cases, enclosing)
	same := fastParams()
	same.Prefix = "tenants/a"
	cases = append(cases, same)
	for _, p := range cases {
		if _, err := f.Admit("x-"+p.Prefix, vfs.NewMemFS(), dbevent.NewPGProcessor(), p); err == nil {
			t.Fatalf("Admit with prefix %q should have been rejected", p.Prefix)
		}
	}
	// Disjoint sibling is fine.
	ok := fastParams()
	ok.Prefix = "tenants/ab"
	if _, err := f.Admit("ab", vfs.NewMemFS(), dbevent.NewPGProcessor(), ok); err != nil {
		t.Fatalf("disjoint sibling prefix rejected: %v", err)
	}
	// Duplicate id rejected even with a fresh prefix.
	dup := fastParams()
	dup.Prefix = "elsewhere/a"
	if _, err := f.Admit("a", vfs.NewMemFS(), dbevent.NewPGProcessor(), dup); err == nil {
		t.Fatal("duplicate tenant id accepted")
	}
	// Invalid ids (would make invalid prefixes) rejected.
	for _, id := range []string{"", "a b", "../x", "a/"} {
		if _, err := f.Admit(id, vfs.NewMemFS(), dbevent.NewPGProcessor(), fastParams()); err == nil {
			t.Fatalf("Admit(%q) should have failed", id)
		}
	}
}

func TestFleetLifecycle(t *testing.T) {
	f, err := core.NewFleet(core.FleetParams{Store: cloud.NewMemStore()})
	if err != nil {
		t.Fatal(err)
	}
	a := admitTenant(t, f, "a")
	admitTenant(t, f, "b")

	if got := f.Tenants(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Tenants() = %v", got)
	}
	if f.Tenant("a") != a.g {
		t.Fatal("Tenant(a) returned wrong handle")
	}
	if f.Tenant("nope") != nil {
		t.Fatal("Tenant(nope) should be nil")
	}
	st := f.Stats()
	if st.Tenants != 2 {
		t.Fatalf("Stats().Tenants = %d, want 2", st.Tenants)
	}
	if st.SafetyDeadlineMisses != 0 {
		t.Fatalf("Stats().SafetyDeadlineMisses = %d, want 0", st.SafetyDeadlineMisses)
	}
	if err := f.Evict("zzz"); err == nil {
		t.Fatal("Evict of unknown tenant should error")
	}
	if err := f.Evict("a"); err != nil {
		t.Fatalf("Evict: %v", err)
	}
	if f.Tenant("a") != nil {
		t.Fatal("evicted tenant still resolvable")
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Closed fleet rejects admissions; double Close is a no-op.
	if _, err := f.Admit("c", vfs.NewMemFS(), dbevent.NewPGProcessor(), fastParams()); err == nil {
		t.Fatal("Admit after Close should fail")
	}
	if err := f.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestFleetAntagonistCannotStarveSafety drives a dumping antagonist
// tenant concurrently with a small hot tenant and asserts the hot
// tenant's commits keep flowing with zero Safety-deadline misses —
// the scheduler property the fleet bench gates on, in miniature.
func TestFleetAntagonistCannotStarveSafety(t *testing.T) {
	f, err := core.NewFleet(core.FleetParams{
		Store:       cloud.NewMemStore(),
		UploadSlots: 4,
		FetchSlots:  4,
		TenantCap:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	hot := admitTenant(t, f, "hot")
	anta := admitTenant(t, f, "antagonist")

	done := make(chan struct{})
	go func() {
		defer close(done)
		// A churn of near-page-size writes forces frequent
		// checkpoint/dump traffic.
		for i := 0; i < 200; i++ {
			anta.put(t, "big"+strings.Repeat("0", i%7), strings.Repeat("x", 800))
		}
	}()
	for i := 0; i < 100; i++ {
		hot.put(t, "k", "v")
	}
	if !hot.g.Flush(10 * time.Second) {
		t.Fatal("hot tenant flush timed out under antagonist load")
	}
	<-done
	if n := f.Stats().SafetyDeadlineMisses; n != 0 {
		t.Fatalf("SafetyDeadlineMisses = %d, want 0", n)
	}
}
