package core

import (
	"context"
	"errors"
	"testing"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/cloud/cloudsim"
)

func threeProviders() (*ReplicatedStore, *cloud.MemStore, *cloud.MemStore, *cloudsim.Store) {
	a := cloud.NewMemStore()
	b := cloud.NewMemStore()
	cBack := cloud.NewMemStore()
	c := cloudsim.New(cBack, cloudsim.Options{TimeScale: -1})
	repl, err := NewReplicatedStore(a, b, c)
	if err != nil {
		panic(err)
	}
	return repl, a, b, c
}

func TestReplicatedStoreNeedsBackends(t *testing.T) {
	if _, err := NewReplicatedStore(); err == nil {
		t.Fatal("empty replicated store accepted")
	}
}

func TestReplicatedPutThenGet(t *testing.T) {
	repl, _, _, _ := threeProviders()
	ctx := context.Background()
	if err := repl.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, err := repl.Get(ctx, "k")
	if err != nil || string(got) != "v" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	infos, err := repl.List(ctx, "")
	if err != nil || len(infos) != 1 {
		t.Fatalf("List = %v, %v", infos, err)
	}
}

func TestReplicatedPutFailsWithoutMajority(t *testing.T) {
	a := cloudsim.New(cloud.NewMemStore(), cloudsim.Options{TimeScale: -1})
	b := cloudsim.New(cloud.NewMemStore(), cloudsim.Options{TimeScale: -1})
	c := cloud.NewMemStore()
	repl, err := NewReplicatedStore(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	a.StartOutage()
	b.StartOutage()
	if err := repl.Put(context.Background(), "k", []byte("v")); err == nil {
		t.Fatal("Put succeeded with 2/3 providers down")
	}
}

func TestReplicatedDeleteBestEffort(t *testing.T) {
	repl, a, _, c := threeProviders()
	ctx := context.Background()
	if err := repl.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	c.StartOutage()
	if err := repl.Delete(ctx, "k"); err != nil {
		t.Fatalf("Delete with one provider down: %v", err)
	}
	if a.Len() != 0 {
		t.Fatal("provider A still holds the object")
	}
}

func TestRepairCopiesToLaggingProvider(t *testing.T) {
	repl, a, b, c := threeProviders()
	ctx := context.Background()

	// Provider C misses two writes during an outage.
	c.StartOutage()
	if err := repl.Put(ctx, "WAL/1_seg_0", []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := repl.Put(ctx, "WAL/2_seg_0", []byte("two")); err != nil {
		t.Fatal(err)
	}
	c.EndOutage()

	report, err := repl.Repair(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if report.Copied != 2 {
		t.Fatalf("Copied = %d, want 2", report.Copied)
	}
	// All three providers now hold both objects.
	for name, s := range map[string]cloud.ObjectStore{"a": a, "b": b, "c": c} {
		for _, key := range []string{"WAL/1_seg_0", "WAL/2_seg_0"} {
			if _, err := s.Get(ctx, key); err != nil {
				t.Fatalf("provider %s missing %s after repair: %v", name, key, err)
			}
		}
	}
}

func TestRepairRemovesMinorityGarbage(t *testing.T) {
	repl, a, b, c := threeProviders()
	ctx := context.Background()
	if err := repl.Put(ctx, "keep", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// A GC round deleted "old" everywhere except provider C (it was down
	// for the delete): simulate by writing it only to C's backing store.
	if err := c.Put(ctx, "old", []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	report, err := repl.Repair(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if report.Removed != 1 {
		t.Fatalf("Removed = %d, want 1", report.Removed)
	}
	if _, err := c.Get(ctx, "old"); !errors.Is(err, cloud.ErrNotFound) {
		t.Fatalf("garbage survived repair: %v", err)
	}
	// The quorum object is untouched.
	for _, s := range []cloud.ObjectStore{a, b, c} {
		if _, err := s.Get(ctx, "keep"); err != nil {
			t.Fatalf("repair damaged a healthy object: %v", err)
		}
	}
}

func TestRepairSkipsGarbageJudgementWhenProviderDown(t *testing.T) {
	repl, _, _, c := threeProviders()
	ctx := context.Background()
	if err := repl.Put(ctx, "keep", []byte("v")); err != nil {
		t.Fatal(err)
	}
	c.StartOutage()
	report, err := repl.Repair(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if report.Unreachable != 1 {
		t.Fatalf("Unreachable = %d, want 1", report.Unreachable)
	}
}

func TestRepairAllProvidersDown(t *testing.T) {
	a := cloudsim.New(cloud.NewMemStore(), cloudsim.Options{TimeScale: -1})
	repl, err := NewReplicatedStore(a)
	if err != nil {
		t.Fatal(err)
	}
	a.StartOutage()
	if _, err := repl.Repair(context.Background()); err == nil {
		t.Fatal("repair succeeded with every provider down")
	}
}
