package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/cloud/cloudsim"
	"github.com/ginja-dr/ginja/internal/dbevent"
	"github.com/ginja-dr/ginja/internal/minidb"
	"github.com/ginja-dr/ginja/internal/minidb/pgengine"
	"github.com/ginja-dr/ginja/internal/vfs"
)

func threeProviders() (*ReplicatedStore, *cloud.MemStore, *cloud.MemStore, *cloudsim.Store) {
	a := cloud.NewMemStore()
	b := cloud.NewMemStore()
	cBack := cloud.NewMemStore()
	c := cloudsim.New(cBack, cloudsim.Options{TimeScale: -1})
	repl, err := NewReplicatedStore(a, b, c)
	if err != nil {
		panic(err)
	}
	return repl, a, b, c
}

func TestReplicatedStoreNeedsBackends(t *testing.T) {
	if _, err := NewReplicatedStore(); err == nil {
		t.Fatal("empty replicated store accepted")
	}
}

func TestReplicatedPutThenGet(t *testing.T) {
	repl, _, _, _ := threeProviders()
	ctx := context.Background()
	if err := repl.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, err := repl.Get(ctx, "k")
	if err != nil || string(got) != "v" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	infos, err := repl.List(ctx, "")
	if err != nil || len(infos) != 1 {
		t.Fatalf("List = %v, %v", infos, err)
	}
}

func TestReplicatedPutFailsWithoutMajority(t *testing.T) {
	a := cloudsim.New(cloud.NewMemStore(), cloudsim.Options{TimeScale: -1})
	b := cloudsim.New(cloud.NewMemStore(), cloudsim.Options{TimeScale: -1})
	c := cloud.NewMemStore()
	repl, err := NewReplicatedStore(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	a.StartOutage()
	b.StartOutage()
	if err := repl.Put(context.Background(), "k", []byte("v")); err == nil {
		t.Fatal("Put succeeded with 2/3 providers down")
	}
}

func TestReplicatedDeleteBestEffort(t *testing.T) {
	repl, a, _, c := threeProviders()
	ctx := context.Background()
	if err := repl.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	c.StartOutage()
	if err := repl.Delete(ctx, "k"); err != nil {
		t.Fatalf("Delete with one provider down: %v", err)
	}
	if a.Len() != 0 {
		t.Fatal("provider A still holds the object")
	}
}

func TestRepairCopiesToLaggingProvider(t *testing.T) {
	repl, a, b, c := threeProviders()
	ctx := context.Background()

	// Provider C misses two writes during an outage.
	c.StartOutage()
	if err := repl.Put(ctx, "WAL/1_seg_0", []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := repl.Put(ctx, "WAL/2_seg_0", []byte("two")); err != nil {
		t.Fatal(err)
	}
	c.EndOutage()

	report, err := repl.Repair(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if report.Copied != 2 {
		t.Fatalf("Copied = %d, want 2", report.Copied)
	}
	// All three providers now hold both objects.
	for name, s := range map[string]cloud.ObjectStore{"a": a, "b": b, "c": c} {
		for _, key := range []string{"WAL/1_seg_0", "WAL/2_seg_0"} {
			if _, err := s.Get(ctx, key); err != nil {
				t.Fatalf("provider %s missing %s after repair: %v", name, key, err)
			}
		}
	}
}

func TestRepairRemovesMinorityGarbage(t *testing.T) {
	repl, a, b, c := threeProviders()
	ctx := context.Background()
	if err := repl.Put(ctx, "keep", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// A GC round deleted "old" everywhere except provider C (it was down
	// for the delete): simulate by writing it only to C's backing store.
	if err := c.Put(ctx, "old", []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	report, err := repl.Repair(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if report.Removed != 1 {
		t.Fatalf("Removed = %d, want 1", report.Removed)
	}
	if _, err := c.Get(ctx, "old"); !errors.Is(err, cloud.ErrNotFound) {
		t.Fatalf("garbage survived repair: %v", err)
	}
	// The quorum object is untouched.
	for _, s := range []cloud.ObjectStore{a, b, c} {
		if _, err := s.Get(ctx, "keep"); err != nil {
			t.Fatalf("repair damaged a healthy object: %v", err)
		}
	}
}

func TestRepairSkipsGarbageJudgementWhenProviderDown(t *testing.T) {
	repl, _, _, c := threeProviders()
	ctx := context.Background()
	if err := repl.Put(ctx, "keep", []byte("v")); err != nil {
		t.Fatal(err)
	}
	c.StartOutage()
	report, err := repl.Repair(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if report.Unreachable != 1 {
		t.Fatalf("Unreachable = %d, want 1", report.Unreachable)
	}
}

// TestReplicatedListMergesAfterOutage is the divergence bug: a replica
// that missed quorum writes during its outage answers the next LIST
// first. A first-responder listing would silently drop the missed
// objects; the health-aware merge must union them back in, and a Repair
// pass must restore the fast path.
func TestReplicatedListMergesAfterOutage(t *testing.T) {
	// The flaky replica is FIRST, so a naive first-responder List would
	// trust its stale listing.
	stale := cloudsim.New(cloud.NewMemStore(), cloudsim.Options{TimeScale: -1})
	b := cloud.NewMemStore()
	c := cloud.NewMemStore()
	repl, err := NewReplicatedStore(stale, b, c)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := repl.Put(ctx, "WAL/1_seg_0", []byte("one")); err != nil {
		t.Fatal(err)
	}
	stale.StartOutage()
	if err := repl.Put(ctx, "WAL/2_seg_0", []byte("two")); err != nil {
		t.Fatal(err)
	}
	stale.EndOutage()
	// Put returns on quorum; the failed replica's goroutine marks it
	// unhealthy in the background, so poll rather than assert instantly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		h := repl.Healthy()
		if !h[0] && h[1] && h[2] {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("health after outage = %v, want [false true true]", h)
		}
		time.Sleep(time.Millisecond)
	}
	infos, err := repl.List(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	names := make(map[string]bool, len(infos))
	for _, info := range infos {
		names[info.Name] = true
	}
	if !names["WAL/1_seg_0"] || !names["WAL/2_seg_0"] {
		t.Fatalf("merged listing dropped a quorum object: %v", names)
	}
	report, err := repl.Repair(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if report.Copied == 0 {
		t.Fatal("repair copied nothing to the lagging replica")
	}
	if h := repl.Healthy(); !h[0] || !h[1] || !h[2] {
		t.Fatalf("health after repair = %v, want all true", h)
	}
}

// TestReplicatedRecoveryAfterDivergentOutage drives the whole stack: a
// 2-of-3 write quorum survives one replica's outage across a checkpoint,
// and disaster recovery through the replicated store — with the stale
// replica answering LISTs first — still reaches the flushed frontier.
func TestReplicatedRecoveryAfterDivergentOutage(t *testing.T) {
	stale := cloudsim.New(cloud.NewMemStore(), cloudsim.Options{TimeScale: -1})
	repl, err := NewReplicatedStore(stale, cloud.NewMemStore(), cloud.NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	params := pitrParams()
	params.UploadRetries = 2
	g, err := New(vfs.NewMemFS(), repl, dbevent.NewPGProcessor(), params)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Boot(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	db, err := minidb.Open(g.FS(), pgengine.NewWithSizes(512, 8192, 1024), minidb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("kv", 0); err != nil {
		t.Fatal(err)
	}
	put := func(k, v string) {
		t.Helper()
		if err := db.Update(func(tx *minidb.Txn) error {
			return tx.Put("kv", []byte(k), []byte(v))
		}); err != nil {
			t.Fatal(err)
		}
	}
	put("pre", "outage")
	if !g.Flush(5 * time.Second) {
		t.Fatal("flush")
	}
	// Replica 0 goes dark across commits AND a checkpoint: everything in
	// this window exists only on the 2-of-3 quorum.
	stale.StartOutage()
	for i := 0; i < 8; i++ {
		put(fmt.Sprintf("during-%d", i), "quorum-only")
	}
	if !g.Flush(5 * time.Second) {
		t.Fatal("flush during outage")
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if !g.SyncCheckpoints(5 * time.Second) {
		t.Fatal("settle")
	}
	stale.EndOutage()
	if err := g.Err(); err != nil {
		t.Fatalf("replication failed despite quorum: %v", err)
	}

	// Disaster: recover on a fresh machine through the same replicated
	// store. The stale replica is reachable again and answers first.
	target := vfs.NewMemFS()
	gr, err := New(target, repl, dbevent.NewPGProcessor(), params)
	if err != nil {
		t.Fatal(err)
	}
	if err := gr.Recover(context.Background()); err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer gr.Close()
	db2, err := minidb.Open(gr.FS(), pgengine.NewWithSizes(512, 8192, 1024), minidb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db2.Get("kv", []byte("pre")); err != nil {
		t.Fatalf("pre-outage key lost: %v", err)
	}
	for i := 0; i < 8; i++ {
		v, err := db2.Get("kv", []byte(fmt.Sprintf("during-%d", i)))
		if err != nil || string(v) != "quorum-only" {
			t.Fatalf("during-%d: %q, %v — stale first responder leaked into recovery", i, v, err)
		}
	}
}

// countingStore counts LIST calls, to observe which replicas a
// ReplicatedStore.List actually consulted.
type countingStore struct {
	cloud.ObjectStore
	lists atomic.Int64
}

func (s *countingStore) List(ctx context.Context, prefix string) ([]cloud.ObjectInfo, error) {
	s.lists.Add(1)
	return s.ObjectStore.List(ctx, prefix)
}

// TestReplicatedListMergesOnFreshProcess is the boot-time half of the
// divergence bug: health flags live in memory, so a freshly started
// process (exactly the disaster-recovery case) sees every replica as
// healthy — even if replica 0 missed quorum writes during an outage
// observed only by the previous, now-dead process. A fresh store must
// merge listings until a Repair pass has verified full redundancy in
// this process; only then may a single first responder be trusted.
func TestReplicatedListMergesOnFreshProcess(t *testing.T) {
	ctx := context.Background()
	stale := &countingStore{ObjectStore: cloud.NewMemStore()}
	b := &countingStore{ObjectStore: cloud.NewMemStore()}
	c := &countingStore{ObjectStore: cloud.NewMemStore()}
	// A previous process wrote "WAL/1" to all three replicas, then
	// "WAL/2" to only the 2-of-3 quorum while replica 0 was down. That
	// process — and its health flags — are gone.
	for _, s := range []cloud.ObjectStore{stale, b, c} {
		if err := s.Put(ctx, "WAL/1_seg_0", []byte("one")); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range []cloud.ObjectStore{b, c} {
		if err := s.Put(ctx, "WAL/2_seg_0", []byte("two")); err != nil {
			t.Fatal(err)
		}
	}

	repl, err := NewReplicatedStore(stale, b, c)
	if err != nil {
		t.Fatal(err)
	}
	infos, err := repl.List(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	names := make(map[string]bool, len(infos))
	for _, info := range infos {
		names[info.Name] = true
	}
	if !names["WAL/1_seg_0"] || !names["WAL/2_seg_0"] {
		t.Fatalf("fresh-process listing trusted the stale first responder: %v", names)
	}
	if b.lists.Load() == 0 || c.lists.Load() == 0 {
		t.Fatal("fresh-process List did not fan out to every replica")
	}

	// A full Repair verifies redundancy; from then on the single-LIST
	// fast path is allowed again.
	if _, err := repl.Repair(ctx); err != nil {
		t.Fatal(err)
	}
	bBefore, cBefore := b.lists.Load(), c.lists.Load()
	if _, err := repl.List(ctx, ""); err != nil {
		t.Fatal(err)
	}
	if b.lists.Load() != bBefore || c.lists.Load() != cBefore {
		t.Fatal("verified healthy store still fans every LIST out")
	}
}

func TestRepairAllProvidersDown(t *testing.T) {
	a := cloudsim.New(cloud.NewMemStore(), cloudsim.Options{TimeScale: -1})
	repl, err := NewReplicatedStore(a)
	if err != nil {
		t.Fatal(err)
	}
	a.StartOutage()
	if _, err := repl.Repair(context.Background()); err == nil {
		t.Fatal("repair succeeded with every provider down")
	}
}
