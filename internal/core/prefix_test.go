package core

import (
	"strings"
	"testing"
)

func TestValidatePrefix(t *testing.T) {
	valid := []string{
		"",
		"a",
		"tenants/a",
		"tenants/acme-prod",
		"fleet/shard-01/db_7",
		"v1.2/tenant.name",
		"A-Z_0.9",
	}
	for _, p := range valid {
		if err := ValidatePrefix(p); err != nil {
			t.Errorf("ValidatePrefix(%q) = %v, want nil", p, err)
		}
	}
	invalid := []string{
		"..",                   // traversal
		"a/../b",               // traversal inside
		"a..b",                 // ".." anywhere is rejected outright
		"/a",                   // leading slash escapes the relative namespace
		"/",                    // leading slash and empty segment
		"a/",                   // trailing slash → empty segment
		"a//b",                 // empty segment
		"a b",                  // space outside the allowed alphabet
		"a\tb",                 // control character
		"ténant",               // non-ASCII
		"a*b",                  // shell metacharacter
		"WAL/x\x00",            // NUL
		strings.Repeat("é", 1), // multi-byte rune
	}
	for _, p := range invalid {
		if err := ValidatePrefix(p); err == nil {
			t.Errorf("ValidatePrefix(%q) = nil, want error", p)
		}
	}
}

func TestParamsValidateRejectsBadPrefix(t *testing.T) {
	p := DefaultParams()
	p.Prefix = "../escape"
	if _, err := p.Validate(); err == nil {
		t.Fatal("Validate accepted a traversal prefix")
	}
	p.Prefix = "tenants/a"
	q, err := p.Validate()
	if err != nil {
		t.Fatalf("Validate rejected a valid prefix: %v", err)
	}
	if q.Prefix != "tenants/a" {
		t.Fatalf("Validate rewrote the prefix to %q", q.Prefix)
	}
}
