package core

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/dbevent"
	"github.com/ginja-dr/ginja/internal/sealer"
	"github.com/ginja-dr/ginja/internal/simclock"
	"github.com/ginja-dr/ginja/internal/vfs"
)

func mkWrite(path string, off int64, n int, fill byte) FileWrite {
	data := bytes.Repeat([]byte{fill}, n)
	return FileWrite{Path: path, Offset: off, Data: data}
}

func planShape(plan [][]FileWrite) []int {
	shape := make([]int, len(plan))
	for i, g := range plan {
		shape[i] = len(g)
	}
	return shape
}

func TestPackWritesPlanner(t *testing.T) {
	for _, tc := range []struct {
		name    string
		writes  []FileWrite
		maxSize int64
		want    []int // writes per object
	}{
		{"empty", nil, 100, []int{}},
		{"single", []FileWrite{mkWrite("f", 0, 10, 'a')}, 100, []int{1}},
		{"all fit in one", []FileWrite{
			mkWrite("f", 0, 30, 'a'), mkWrite("g", 0, 30, 'b'), mkWrite("f", 100, 30, 'c'),
		}, 100, []int{3}},
		{"greedy fill", []FileWrite{
			mkWrite("f", 0, 40, 'a'), mkWrite("f", 100, 40, 'b'),
			mkWrite("f", 200, 40, 'c'), mkWrite("f", 300, 40, 'd'),
		}, 100, []int{2, 2}},
		{"no limit packs everything", []FileWrite{
			mkWrite("f", 0, 1000, 'a'), mkWrite("g", 0, 1000, 'b'),
		}, 0, []int{2}},
		{"oversized write split", []FileWrite{
			mkWrite("f", 0, 250, 'a'),
		}, 100, []int{1, 1, 1}},
		{"split tail shares object with next", []FileWrite{
			mkWrite("f", 0, 150, 'a'), mkWrite("g", 0, 40, 'b'),
		}, 100, []int{1, 2}},
		{"whole file never split", []FileWrite{
			{Path: "f", Whole: true, Data: bytes.Repeat([]byte{'w'}, 250)},
		}, 100, []int{1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			plan := PackWrites(tc.writes, tc.maxSize)
			if got := planShape(plan); len(got) != len(tc.want) || fmt.Sprint(got) != fmt.Sprint(tc.want) {
				t.Fatalf("plan shape = %v, want %v", got, tc.want)
			}
			// No object may exceed maxSize unless it holds a single
			// unsplittable (Whole) write.
			for _, group := range plan {
				var total int64
				for _, w := range group {
					total += int64(len(w.Data))
				}
				if tc.maxSize > 0 && total > tc.maxSize && !(len(group) == 1 && group[0].Whole) {
					t.Fatalf("object holds %d bytes > maxSize %d", total, tc.maxSize)
				}
			}
			// Concatenating the plan in order must reproduce the input
			// byte-for-byte (splits included).
			var wantBytes, gotBytes []byte
			for _, w := range tc.writes {
				wantBytes = append(wantBytes, w.Data...)
			}
			for _, group := range plan {
				for _, w := range group {
					gotBytes = append(gotBytes, w.Data...)
				}
			}
			if !bytes.Equal(wantBytes, gotBytes) {
				t.Fatal("plan does not preserve payload bytes in order")
			}
		})
	}
}

func TestAppendPackWritesReusesPlan(t *testing.T) {
	writes := []FileWrite{
		mkWrite("f", 0, 40, 'a'), mkWrite("f", 100, 40, 'b'), mkWrite("f", 200, 40, 'c'),
	}
	plan := AppendPackWrites(nil, writes, 100)
	if len(plan) != 2 {
		t.Fatalf("plan = %v objects, want 2", len(plan))
	}
	// Re-planning a smaller batch into the same plan must reuse the outer
	// and inner backing arrays, not grow them.
	outerCap, innerCap := cap(plan), cap(plan[0])
	plan = AppendPackWrites(plan, writes[:1], 100)
	if len(plan) != 1 || len(plan[0]) != 1 {
		t.Fatalf("re-plan shape = %v", planShape(plan))
	}
	if cap(plan) != outerCap || cap(plan[0]) != innerCap {
		t.Fatalf("re-plan reallocated: outer %d→%d inner %d→%d",
			outerCap, cap(plan), innerCap, cap(plan[0]))
	}
}

func TestAckRing(t *testing.T) {
	r := newAckRing(5, 64) // frontier = 4
	if got := r.advance(); got != 4 {
		t.Fatalf("empty advance = %d, want 4", got)
	}
	r.set(7) // out of order: frontier must not move
	r.set(6)
	if got := r.advance(); got != 4 {
		t.Fatalf("advance with gap at 5 = %d, want 4", got)
	}
	r.set(5) // gap filled: frontier jumps over the whole run
	if got := r.advance(); got != 7 {
		t.Fatalf("advance = %d, want 7", got)
	}
	r.set(3) // duplicate ack below the window is ignored
	r.set(8)
	if got := r.advance(); got != 8 {
		t.Fatalf("advance = %d, want 8", got)
	}
}

func TestAckRingGrowsBeyondWindow(t *testing.T) {
	r := newAckRing(1, 64) // one word
	if len(r.bits) != 1 {
		t.Fatalf("initial ring = %d words, want 1", len(r.bits))
	}
	// Consume a run first so start sits mid-word, then acknowledge a wide
	// span in reverse so the ring must grow while misaligned, exercising
	// the re-linearisation.
	for ts := int64(1); ts <= 40; ts++ {
		r.set(ts)
	}
	if got := r.advance(); got != 40 {
		t.Fatalf("advance = %d, want 40", got)
	}
	for ts := int64(300); ts >= 41; ts-- {
		r.set(ts)
	}
	if got := r.advance(); got != 300 {
		t.Fatalf("advance after growth = %d, want 300", got)
	}
	if r.set(301); r.advance() != 301 {
		t.Fatal("ring broken after growth")
	}
}

// TestPipelinePacksBatchIntoOnePut is the tentpole contract: a full batch
// of B small scattered writes becomes ONE sealed object and ONE cloud PUT
// whose body carries every write.
func TestPipelinePacksBatchIntoOnePut(t *testing.T) {
	store := cloud.NewMemStore()
	p := testParams(10, 100)
	pipe := startPipeline(t, store, p)
	for i := 0; i < 10; i++ {
		// Distinct files: aggregation cannot coalesce, only packing can
		// reduce the PUT count.
		if _, err := pipe.submit(fmt.Sprintf("pg_xlog/%04d", i), 0, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if !pipe.q.drain(2 * time.Second) {
		t.Fatal("queue did not drain")
	}
	if got := pipe.stats.walObjects.Load(); got != 1 {
		t.Fatalf("uploaded %d WAL objects, want 1 packed object", got)
	}
	if got := pipe.stats.packedObjects.Load(); got != 1 {
		t.Fatalf("packedObjects = %d, want 1", got)
	}
	infos, err := store.List(context.Background(), "WAL/")
	if err != nil || len(infos) != 1 {
		t.Fatalf("cloud listing = %v, %v", infos, err)
	}
	sealed, err := store.Get(context.Background(), infos[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	body, err := sealer.NewPlain().Open(sealed)
	if err != nil {
		t.Fatal(err)
	}
	writes, err := DecodeWrites(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(writes) != 10 {
		t.Fatalf("packed body carries %d writes, want 10", len(writes))
	}
	// Name-vs-body contract: the object is named after the first write.
	first := writes[0]
	if want := WALObjectName(1, first.Path, first.Offset); infos[0].Name != want {
		t.Fatalf("object name = %q, want %q (first write)", infos[0].Name, want)
	}
}

// TestPipelinePackingRespectsMaxObjectSize: a batch bigger than
// MaxObjectSize packs into ceil(batch bytes / MaxObjectSize) objects.
func TestPipelinePackingRespectsMaxObjectSize(t *testing.T) {
	store := cloud.NewMemStore()
	p := testParams(8, 100)
	p.MaxObjectSize = 1024
	pipe := startPipeline(t, store, p)
	for i := 0; i < 8; i++ { // 8 × 512 B on distinct files = 4 KiB → 4 objects
		if _, err := pipe.submit(fmt.Sprintf("pg_xlog/%04d", i), 0, make([]byte, 512)); err != nil {
			t.Fatal(err)
		}
	}
	if !pipe.q.drain(2 * time.Second) {
		t.Fatal("queue did not drain")
	}
	if got := pipe.stats.walObjects.Load(); got != 4 {
		t.Fatalf("uploaded %d objects, want 4 (= ceil(4096/1024))", got)
	}
}

// TestPipelineDisablePackingAblation: the ablation knob restores the
// one-object-per-write-run behaviour.
func TestPipelineDisablePackingAblation(t *testing.T) {
	store := cloud.NewMemStore()
	p := testParams(10, 100)
	p.DisablePacking = true
	pipe := startPipeline(t, store, p)
	for i := 0; i < 10; i++ {
		if _, err := pipe.submit(fmt.Sprintf("pg_xlog/%04d", i), 0, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if !pipe.q.drain(2 * time.Second) {
		t.Fatal("queue did not drain")
	}
	if got := pipe.stats.walObjects.Load(); got != 10 {
		t.Fatalf("uploaded %d objects with packing disabled, want 10", got)
	}
	if got := pipe.stats.packedObjects.Load(); got != 0 {
		t.Fatalf("packedObjects = %d with packing disabled, want 0", got)
	}
}

// TestPipelineRetryDelayFloorVirtualClock is the regression test for the
// putWithRetry hot-loop hazard: a caller that builds Params by hand
// (bypassing Validate's defaults) leaves RetryBaseDelay at 0, which used
// to double to 0 forever — a busy spin against a down provider. The floor
// must turn that into real (virtual) 1 ms → 2 ms → 4 ms backoff.
func TestPipelineRetryDelayFloorVirtualClock(t *testing.T) {
	clk := simclock.NewSim()
	stopPump := clk.Pump()
	defer stopPump()

	p := testParams(1, 10)
	p.Clock = clk
	p.RetryBaseDelay = 0 // deliberately NOT validated
	store := &flakyStore{ObjectStore: cloud.NewMemStore(), failFirst: 3}
	pipe := newPipeline(NewCloudView(), store, sealer.NewPlain(), p)
	start := clk.Now()
	pipe.start(0)
	defer pipe.drainAndStop(time.Second)

	if _, err := pipe.submit("pg_xlog/0001", 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, func() bool { return pipe.stats.walObjects.Load() == 1 })
	if got := pipe.stats.retries.Load(); got != 3 {
		t.Fatalf("retries = %d, want 3", got)
	}
	// Three failures back off nominally 1+2+4 ms of virtual time before
	// the fourth attempt succeeds. With retryJitter scaling each sleep
	// into [0.5, 1.0)× (and the floor re-applied) the minimum is
	// 1+1+2 = 4 ms and the maximum stays under 7 ms; zero elapsed virtual
	// time would mean the old spin.
	elapsed := clk.Since(start)
	if elapsed < 4*time.Millisecond {
		t.Fatalf("virtual backoff time = %v, want ≥ 4ms (jittered 1+2+4 floored)", elapsed)
	}
	if elapsed >= 7*time.Millisecond {
		t.Fatalf("virtual backoff time = %v, want < 7ms (jitter must shrink, never stretch)", elapsed)
	}
}

// TestPackedWALRoundTrip is the pack → seal → upload → disaster → recover
// property test: random write workloads (multi-write packed bodies, split
// oversized writes, rewrites) must recover byte-identical on a fresh
// machine.
func TestPackedWALRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			store := cloud.NewMemStore()
			localFS := vfs.NewMemFS()
			p := DefaultParams()
			p.Batch = 8
			p.Safety = 512
			p.BatchTimeout = 20 * time.Millisecond
			p.MaxObjectSize = 2048 // small: forces packing AND splitting
			p.RetryBaseDelay = time.Millisecond
			g, err := New(localFS, store, dbevent.NewPGProcessor(), p)
			if err != nil {
				t.Fatal(err)
			}
			if err := g.Boot(context.Background()); err != nil {
				t.Fatal(err)
			}
			fsys := g.FS()
			files := []string{"pg_xlog/0001", "pg_xlog/0002", "pg_xlog/0003"}
			for i := 0; i < 60; i++ {
				path := files[rng.Intn(len(files))]
				off := int64(rng.Intn(16)) * 512
				size := 1 + rng.Intn(4096) // some writes exceed MaxObjectSize
				data := make([]byte, size)
				rng.Read(data)
				if err := vfs.WriteAt(fsys, path, off, data); err != nil {
					t.Fatalf("write %d: %v", i, err)
				}
			}
			if !g.Flush(5 * time.Second) {
				t.Fatal("flush timed out")
			}
			if g.Stats().PackedWALObjects == 0 {
				t.Fatal("workload produced no packed objects; property not exercised")
			}
			if err := g.Close(); err != nil {
				t.Fatal(err)
			}

			freshFS := vfs.NewMemFS()
			g2, err := New(freshFS, store, dbevent.NewPGProcessor(), p)
			if err != nil {
				t.Fatal(err)
			}
			if err := g2.Recover(context.Background()); err != nil {
				t.Fatalf("Recover: %v", err)
			}
			defer g2.Close()
			for _, path := range files {
				want, err1 := vfs.ReadFile(localFS, path)
				got, err2 := vfs.ReadFile(freshFS, path)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("%s: original err=%v recovered err=%v", path, err1, err2)
				}
				if !bytes.Equal(want, got) {
					t.Fatalf("%s differs after recovery: %d vs %d bytes", path, len(want), len(got))
				}
			}
		})
	}
}

// TestCrashMidPackedBatch: a batch packs into three objects; the middle
// one (ts=2) never reaches the cloud before the crash. Recovery must apply
// only the consecutive-ts prefix (ts=1) — not the already-uploaded ts=3 —
// and the loss stays within the Safety bound.
func TestCrashMidPackedBatch(t *testing.T) {
	mem := cloud.NewMemStore()
	gs := &gatedStore{ObjectStore: mem, blocked: make(map[string]chan struct{})}
	gs.block("WAL/2_")

	localFS := vfs.NewMemFS()
	p := DefaultParams()
	p.Batch = 6
	p.Safety = 64
	p.BatchTimeout = 20 * time.Millisecond
	p.MaxObjectSize = 200 // 6 × 100 B writes → 3 packed objects (ts 1,2,3)
	p.RetryBaseDelay = time.Millisecond
	g, err := New(localFS, gs, dbevent.NewPGProcessor(), p)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Boot(context.Background()); err != nil {
		t.Fatal(err)
	}
	fsys := g.FS()
	for i := 0; i < 6; i++ {
		data := bytes.Repeat([]byte{'a' + byte(i)}, 100)
		if err := vfs.WriteAt(fsys, "pg_xlog/0001", int64(i)*100, data); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for ts=1 and ts=3 to land; ts=2 is stuck behind the gate.
	waitUntil(t, func() bool {
		infos, err := mem.List(context.Background(), "WAL/")
		return err == nil && len(infos) >= 2
	})
	// Crash: abort in-flight uploads without draining (the gated PUT is
	// cancelled, ts=2 is lost with the machine).
	g.pipe.drainAndStop(10 * time.Millisecond) //nolint:errcheck

	freshFS := vfs.NewMemFS()
	g2, err := New(freshFS, mem, dbevent.NewPGProcessor(), p)
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.Recover(context.Background()); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer g2.Close()
	got, err := vfs.ReadFile(freshFS, "pg_xlog/0001")
	if err != nil {
		t.Fatalf("recovered WAL missing: %v", err)
	}
	// ts=1 carried writes 0 and 1 (offsets 0–199): they must be present.
	want := append(bytes.Repeat([]byte{'a'}, 100), bytes.Repeat([]byte{'b'}, 100)...)
	if len(got) < 200 || !bytes.Equal(got[:200], want) {
		t.Fatalf("consecutive prefix (ts=1) not recovered: %d bytes", len(got))
	}
	// ts=3 (offsets 400–599) is beyond the ts=2 gap: applying it would
	// break the prefix rule and fabricate a state the DBMS never had.
	if len(got) > 400 {
		t.Fatalf("recovered %d bytes: ts=3 applied past the ts=2 gap", len(got))
	}
	// Loss accounting: 4 updates (writes 2–5) ≤ S.
	if lost := 6 - 2; lost > p.Safety {
		t.Fatalf("lost %d updates > Safety %d", lost, p.Safety)
	}
}
