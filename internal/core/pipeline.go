package core

import (
	"cmp"
	"context"
	"fmt"
	"log/slog"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/obs"
	"github.com/ginja-dr/ginja/internal/sealer"
	"github.com/ginja-dr/ginja/internal/simclock"
)

// walUpload is one WAL object headed for the cloud. batch identifies the
// Aggregator batch that produced it, so a trace can follow a commit from
// FS interception to cloud ack. writes is the packed write list forming
// the object body, leased from walWritesPool; the uploader returns it to
// the pool once the body is encoded.
type walUpload struct {
	ts     int64
	batch  int64
	writes *[]FileWrite
}

// walWritesPool recycles the per-object write lists the Aggregator hands
// to the Uploader pool, so planning a batch into packed objects allocates
// nothing in steady state.
var walWritesPool = sync.Pool{New: func() any { return new([]FileWrite) }}

// sealedUpload is one encoded+sealed WAL object crossing from the seal
// stage to the PUT stage of the pipelined uploader. The sealed buffer is
// freshly produced by Seal (never pooled, never aliased by the encode
// scratch), so handing it between goroutines is safe; by the time it is
// minted the leased write list is already back in walWritesPool.
type sealedUpload struct {
	ts      int64
	batch   int64
	file    string
	off     int64
	name    string
	sealed  []byte
	rawLen  int
	nWrites int
	t0      time.Time // seal-stage start; zero when nothing is timing
}

// batchRec tracks one Aggregator batch so the Unlocker can release its
// updates from the CommitQueue once all its objects are durable, and so
// the batch's trace span can be closed with end-to-end timings.
type batchRec struct {
	id           int64
	count        int   // updates in the batch
	objects      int   // WAL objects produced
	maxTs        int64 // highest WAL timestamp the batch produced
	enqueuedAt   time.Time
	aggregatedAt time.Time
}

// pipelineStats are the commit-path counters behind Table 3.
type pipelineStats struct {
	walObjects    atomic.Int64
	walBytes      atomic.Int64 // sealed (uploaded) bytes
	rawBytes      atomic.Int64 // pre-seal payload bytes
	batches       atomic.Int64
	updates       atomic.Int64
	retries       atomic.Int64
	packedObjects atomic.Int64 // WAL objects carrying more than one write
	splitWrites   atomic.Int64 // writes split across objects (> MaxObjectSize)
}

// pipeline wires the CommitQueue to the cloud: Aggregator → Uploader pool
// → Unlocker (paper Figure 3, implementing Algorithm 2).
type pipeline struct {
	q      *commitQueue
	clk    simclock.Clock
	view   *CloudView
	store  cloud.ObjectStore
	seal   *sealer.Sealer
	params Params

	uploadCh chan walUpload
	// sealedCh feeds sealed objects from the seal stage to the PUT stage;
	// nil when DisablePipelining collapses both into one sequential loop.
	sealedCh chan sealedUpload
	ackCh    chan int64
	batchCh  chan batchRec

	// tuner is the adaptive (B, TB) controller; nil unless
	// Params.AdaptiveBatching.
	tuner *tuner

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	stats       pipelineStats
	metrics     *pipelineMetrics
	putInflight *inflight
	batchSeq    atomic.Int64
	trace       bool // emit per-batch/per-object spans via params.Logger
	// spans is the obs span ring: per-batch/per-object spans are recorded
	// here whenever a metrics registry is attached, independent of the
	// logger's level (slog emission stays Debug-gated via trace). Recording
	// is a mutex + struct copy — nothing the allocator sees — so the packed
	// commit hot path stays at 0 allocs/op with spans flowing.
	spans *obs.SpanRing

	// Aggregator scratch, reused across batches (the Aggregator is a
	// single goroutine). Together with the pooled submit copies and
	// per-object write lists this keeps the steady-state commit hot path
	// allocation-free.
	batchBuf  []update
	writesBuf []FileWrite
	sortIdx   []int32
	mergedBuf []FileWrite
	plan      [][]FileWrite

	errMu sync.Mutex
	err   error
}

func newPipeline(view *CloudView, store cloud.ObjectStore, seal *sealer.Sealer, params Params) *pipeline {
	ctx, cancel := context.WithCancel(context.Background())
	p := &pipeline{
		q:           newCommitQueue(params),
		clk:         params.clock(),
		view:        view,
		store:       store,
		seal:        seal,
		params:      params,
		metrics:     newPipelineMetrics(params.Metrics),
		putInflight: newInflight(params.Metrics, "put", "wal"),
		trace:       params.Logger != nil && params.Logger.Enabled(context.Background(), slog.LevelDebug),
		uploadCh:    make(chan walUpload, params.Uploaders),
		ackCh:       make(chan int64, params.Uploaders),
		batchCh:     make(chan batchRec, 64),
		ctx:         ctx,
		cancel:      cancel,
	}
	if params.Metrics != nil {
		p.spans = params.Metrics.Spans()
		p.q.lossHist = p.metrics.lossWindow
	}
	if !params.DisablePipelining {
		p.sealedCh = make(chan sealedUpload, params.Uploaders)
	}
	if params.AdaptiveBatching {
		p.tuner = newTuner(p.q, params, p.stats.updates.Load)
	}
	return p
}

// start launches the Aggregator, the Uploader pool and the Unlocker.
// initialFrontier is the highest WAL timestamp already known durable
// (everything the view held at start).
func (p *pipeline) start(initialFrontier int64) {
	if reg := p.params.Metrics; reg != nil {
		// Re-registering rebinds the sampling closures to this pipeline,
		// so a registry outliving a Ginja instance keeps reading live
		// state instead of a stopped pipeline's.
		reg.GaugeFunc(metricQueueDepth,
			"Unacknowledged updates in the CommitQueue (bounded by Safety).",
			nil, func() float64 { return float64(p.q.size()) })
		reg.GaugeFunc(metricUploadChDepth,
			"WAL objects buffered between the Aggregator and the Uploader pool.",
			nil, func() float64 { return float64(len(p.uploadCh)) })
		// The live RPO watermark: how stale a restore would be if the
		// disaster struck at scrape time. Zero whenever the cloud holds
		// everything committed.
		reg.GaugeFunc(metricRPOSeconds,
			"Age in seconds of the oldest update not yet acknowledged by the cloud (live RPO; 0 when fully synchronized).",
			nil, func() float64 {
				at, ok := p.q.oldestPendingAt()
				if !ok {
					return 0
				}
				return p.clk.Since(at).Seconds()
			})
		// The configured Safety bounds, exported beside the watermark so a
		// dashboard (or /statusz reader) sees the contract next to the
		// realized value.
		reg.Gauge(metricSafetyLimit,
			"Configured Safety limit S: maximum updates allowed pending cloud acknowledgement.",
			nil).Set(float64(p.params.Safety))
		reg.Gauge(metricSafetyTimeout,
			"Configured Safety timeout TS in seconds: maximum age of a pending update before commits block.",
			nil).Set(p.params.SafetyTimeout.Seconds())
		// The effective knobs: what the commit path is actually running —
		// the controller's live choice under AdaptiveBatching, the
		// configured statics otherwise — plus the fitted latency curve so
		// a dashboard can see what the controller sees.
		reg.GaugeFunc(metricEffectiveBatch,
			"Effective Batch size B the Aggregator is cutting (adaptive controller's choice, or the configured Batch).",
			nil, func() float64 {
				if t := p.tuner; t != nil {
					return float64(t.snapshot().batch)
				}
				return float64(p.params.Batch)
			})
		reg.GaugeFunc(metricEffectiveBatchTimeout,
			"Effective Batch timeout TB in seconds (adaptive controller's choice, or the configured BatchTimeout).",
			nil, func() float64 {
				if t := p.tuner; t != nil {
					return t.snapshot().timeout.Seconds()
				}
				return p.params.BatchTimeout.Seconds()
			})
		reg.GaugeFunc(metricFitBase,
			"Fixed-latency intercept of the controller's fitted PUT latency-vs-size curve, in seconds (0 until fitted).",
			nil, func() float64 {
				if t := p.tuner; t != nil {
					return t.snapshot().fitBase
				}
				return 0
			})
		reg.GaugeFunc(metricFitPerByte,
			"Per-byte slope of the controller's fitted PUT latency-vs-size curve, in seconds per sealed byte (0 until fitted).",
			nil, func() float64 {
				if t := p.tuner; t != nil {
					return t.snapshot().fitPerByte
				}
				return 0
			})
	}
	// The last worker leaving a stage closes the downstream channel
	// (atomic countdown) — no WaitGroup-then-close watcher goroutines.
	// At one instance the two watchers were noise; across a fleet of
	// thousands of tenants they were two goroutines per database.
	if p.params.DisablePipelining {
		var uploadersLeft atomic.Int32
		uploadersLeft.Store(int32(p.params.Uploaders))
		for i := 0; i < p.params.Uploaders; i++ {
			p.wg.Add(1)
			go func() {
				defer p.wg.Done()
				defer func() {
					if uploadersLeft.Add(-1) == 0 {
						close(p.ackCh)
					}
				}()
				p.uploader()
			}()
		}
	} else {
		// Two-stage uploader: seal workers encode+seal batch N+1 while the
		// PUT workers hold batch N's upload in flight. Acks still flow
		// through the same ackRing/unlocker, so release order (and the
		// Safety bound) is exactly as in the sequential path.
		var sealersLeft, puttersLeft atomic.Int32
		sealersLeft.Store(int32(p.params.Uploaders))
		puttersLeft.Store(int32(p.params.Uploaders))
		for i := 0; i < p.params.Uploaders; i++ {
			p.wg.Add(2)
			go func() {
				defer p.wg.Done()
				defer func() {
					if sealersLeft.Add(-1) == 0 {
						close(p.sealedCh)
					}
				}()
				p.sealStage()
			}()
			go func() {
				defer p.wg.Done()
				defer func() {
					if puttersLeft.Add(-1) == 0 {
						close(p.ackCh)
					}
				}()
				p.putStage()
			}()
		}
	}
	if p.tuner != nil {
		p.tuner.start()
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.aggregator()
	}()
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.unlocker(initialFrontier)
	}()
}

// submit is called from the intercepted WAL write; it blocks per the
// Safety contract and returns the time spent blocked. The payload is
// copied into a pooled buffer that the CommitQueue recycles once the
// update's object is durable, so steady-state submission allocates
// nothing.
func (p *pipeline) submit(path string, off int64, data []byte) (time.Duration, error) {
	if err := p.lastErr(); err != nil {
		return 0, err
	}
	p.stats.updates.Add(1)
	bp := walBufPool.Get().(*[]byte)
	*bp = append((*bp)[:0], data...)
	blocked, err := p.q.put(update{path: path, off: off, data: *bp, pooled: bp})
	if m := p.metrics; m != nil {
		m.updates.Inc()
		if blocked > 0 {
			m.blockedSeconds.AddDuration(blocked)
			m.blocks.Inc()
		}
	}
	return blocked, err
}

// coalesce merges one batch's writes without copying payload bytes: an
// index sort orders them by (path, offset) — stable, so writes to the
// same region keep their arrival order — exact page rewrites keep only
// the newest copy, and a later write fully covering an earlier one
// supersedes it in place. Any other overlap shape (partial overlaps,
// whole-file entries) returns nil and the caller falls back to the
// general copying MergeWrites; the result is identical, only the
// allocation profile differs. WAL workloads are appends and whole-page
// rewrites, so the zero-copy path is the one that runs in practice.
func (p *pipeline) coalesce(ws []FileWrite) []FileWrite {
	idx := p.sortIdx[:0]
	for i := range ws {
		idx = append(idx, int32(i))
	}
	slices.SortStableFunc(idx, func(a, b int32) int {
		wa, wb := &ws[a], &ws[b]
		if c := strings.Compare(wa.Path, wb.Path); c != 0 {
			return c
		}
		return cmp.Compare(wa.Offset, wb.Offset)
	})
	p.sortIdx = idx
	merged := p.mergedBuf[:0]
	defer func() { p.mergedBuf = merged[:0] }()
	for _, i := range idx {
		w := ws[i]
		if w.Whole {
			return nil
		}
		if n := len(merged); n > 0 {
			prev := &merged[n-1]
			if prev.Path == w.Path && w.Offset < prev.End() {
				if w.Offset == prev.Offset && len(w.Data) >= len(prev.Data) {
					// The newer write covers the older one completely:
					// last-writer-wins without touching any bytes.
					*prev = w
					continue
				}
				return nil // partial overlap: needs byte-level composition
			}
		}
		merged = append(merged, w)
	}
	return merged
}

// appendUnpacked plans one single-write object per split piece — the
// pre-packing behaviour, kept for the DisablePacking/DisableAggregation
// ablations that quantify what packing saves.
func appendUnpacked(dst [][]FileWrite, writes []FileWrite, maxSize int64) [][]FileWrite {
	plan := dst[:0]
	add := func(w FileWrite) {
		if k := len(plan); k < cap(plan) {
			plan = plan[:k+1]
			plan[k] = append(plan[k][:0], w)
		} else {
			plan = append(plan, []FileWrite{w})
		}
	}
	for _, w := range writes {
		if maxSize <= 0 || int64(len(w.Data)) <= maxSize || w.Whole {
			add(w)
			continue
		}
		for start := int64(0); start < int64(len(w.Data)); start += maxSize {
			end := start + maxSize
			if end > int64(len(w.Data)) {
				end = int64(len(w.Data))
			}
			add(FileWrite{Path: w.Path, Offset: w.Offset + start, Data: w.Data[start:end]})
		}
	}
	return plan
}

// aggregator implements the Aggregator thread: read batches of up to B
// updates, coalesce page rewrites, pack the batch into the minimum number
// of WAL objects (up to MaxObjectSize each), stamp timestamps and hand
// the objects to the uploaders (Algorithm 2 lines 9-16). A full batch of
// B scattered small commits becomes ceil(batch bytes / MaxObjectSize)
// objects — usually one — instead of one per write-run.
func (p *pipeline) aggregator() {
	defer close(p.uploadCh)
	defer close(p.batchCh)
	for {
		updates, ok := p.q.nextBatch(p.batchBuf)
		if !ok {
			return
		}
		p.batchBuf = updates // keep the grown capacity for the next batch
		m := p.metrics
		var aggStart time.Time
		if m != nil || p.trace {
			aggStart = p.clk.Now()
		}
		if m != nil {
			for _, u := range updates {
				m.queueWait.ObserveDuration(aggStart.Sub(u.at))
			}
		}
		writes := p.writesBuf[:0]
		for _, u := range updates {
			writes = append(writes, FileWrite{Path: u.path, Offset: u.off, Data: u.data})
		}
		p.writesBuf = writes
		merged := writes
		if !p.params.DisableAggregation {
			if merged = p.coalesce(writes); merged == nil {
				merged = MergeWrites(writes)
			}
		}
		maxSize := p.params.MaxObjectSize
		if maxSize > 0 {
			for _, w := range merged {
				if !w.Whole && int64(len(w.Data)) > maxSize {
					p.stats.splitWrites.Add(1)
				}
			}
		}
		// DisableAggregation keeps its documented "one object per
		// intercepted write" contract, so it implies unpacked planning.
		if p.params.DisablePacking || p.params.DisableAggregation {
			p.plan = appendUnpacked(p.plan, merged, maxSize)
		} else {
			p.plan = AppendPackWrites(p.plan, merged, maxSize)
		}
		batchID := p.batchSeq.Add(1)
		var maxTs int64
		for _, group := range p.plan {
			ts := p.view.NextWALTs()
			maxTs = ts
			if len(group) > 1 {
				p.stats.packedObjects.Add(1)
			}
			if m != nil {
				m.writesPerObject.Observe(float64(len(group)))
			}
			ws := walWritesPool.Get().(*[]FileWrite)
			*ws = append((*ws)[:0], group...)
			select {
			case p.uploadCh <- walUpload{ts: ts, batch: batchID, writes: ws}:
			case <-p.ctx.Done():
				*ws = (*ws)[:0]
				walWritesPool.Put(ws)
				return
			}
		}
		p.stats.batches.Add(1)
		if m != nil {
			m.batches.Inc()
			m.putsPerBatch.Observe(float64(len(p.plan)))
			m.aggregate.ObserveDuration(p.clk.Since(aggStart))
		}
		if p.spans != nil {
			// spans != nil implies metrics != nil, so aggStart is set.
			p.spans.Record(obs.Span{
				Name: "aggregate", ID: batchID, Extra: int64(len(updates)),
				Start: aggStart, Duration: p.clk.Since(aggStart),
			})
		}
		rec := batchRec{
			id:           batchID,
			count:        len(updates),
			objects:      len(p.plan),
			maxTs:        maxTs,
			enqueuedAt:   updates[0].at,
			aggregatedAt: p.clk.Now(),
		}
		if p.trace {
			p.params.logger().Debug("batch aggregated",
				"batch", batchID, "updates", rec.count, "objects", rec.objects,
				"max_ts", maxTs, "queue_wait_ms", aggStart.Sub(rec.enqueuedAt).Milliseconds())
		}
		select {
		case p.batchCh <- rec:
		case <-p.ctx.Done():
			return
		}
	}
}

// sealOne encodes and seals one WAL object. Each worker passes its
// private encode buffer through enc: at high update rates the per-object
// encode+seal would otherwise be allocation-bound (Seal never retains its
// input, so reuse across iterations is safe). The leased write list goes
// back to walWritesPool as soon as the body is encoded — before any PUT
// starts — and the sealed buffer Seal returns is fresh, so the result can
// safely outlive this call in another goroutine.
func (p *pipeline) sealOne(u walUpload, enc *[]byte) (sealedUpload, bool) {
	m := p.metrics
	var t0 time.Time
	if m != nil || p.trace {
		t0 = p.clk.Now()
	}
	ws := *u.writes
	first := ws[0]
	nWrites := len(ws)
	*enc = EncodeWritesInto((*enc)[:0], ws)
	*u.writes = ws[:0]
	walWritesPool.Put(u.writes)
	sealed, err := p.seal.Seal(*enc)
	if err != nil {
		p.fail(fmt.Errorf("core: seal WAL object ts=%d: %w", u.ts, err))
		return sealedUpload{}, false
	}
	if m != nil {
		m.seal.ObserveDuration(p.clk.Since(t0))
	}
	return sealedUpload{
		ts:      u.ts,
		batch:   u.batch,
		file:    first.Path,
		off:     first.Offset,
		name:    WALObjectName(u.ts, first.Path, first.Offset),
		sealed:  sealed,
		rawLen:  len(*enc),
		nWrites: nWrites,
		t0:      t0,
	}, true
}

// putSealed uploads one sealed object, records telemetry, feeds the
// adaptive controller's latency fit and acknowledges the timestamp.
// Returns false when the pipeline is shutting down or has failed.
func (p *pipeline) putSealed(su sealedUpload) bool {
	m := p.metrics
	var upStart time.Time
	if m != nil || p.trace || p.tuner != nil {
		upStart = p.clk.Now()
	}
	p.putInflight.enter()
	err := p.putWithRetry(su.name, su.sealed)
	p.putInflight.exit()
	if err != nil {
		p.fail(fmt.Errorf("core: upload %s: %w", su.name, err))
		return false
	}
	var putDur time.Duration
	if !upStart.IsZero() {
		putDur = p.clk.Since(upStart)
	}
	if t := p.tuner; t != nil {
		t.observePut(len(su.sealed), putDur)
	}
	p.view.AddWAL(WALObjectInfo{
		Ts: su.ts, Filename: su.file, Offset: su.off, Size: int64(len(su.sealed)),
	})
	p.stats.walObjects.Add(1)
	p.stats.walBytes.Add(int64(len(su.sealed)))
	p.stats.rawBytes.Add(int64(su.rawLen))
	if m != nil {
		m.upload.ObserveDuration(putDur)
		m.observeWALPut(len(su.sealed), putDur)
		m.walObjects.Inc()
		m.walBytes.Add(float64(len(su.sealed)))
		m.rawBytes.Add(float64(su.rawLen))
		m.objectBytes.Observe(float64(len(su.sealed)))
	}
	if p.spans != nil {
		// Seal + PUT (retries included) of one WAL object; ID is the
		// object timestamp, Extra the sealed bytes shipped. Under the
		// pipelined uploader the span covers the wait in sealedCh too —
		// time the object genuinely spent between intercept and durability.
		p.spans.Record(obs.Span{
			Name: "wal_put", ID: su.ts, Extra: int64(len(su.sealed)),
			Start: su.t0, Duration: p.clk.Since(su.t0),
		})
	}
	if p.trace {
		p.params.logger().Debug("wal object uploaded",
			"batch", su.batch, "ts", su.ts, "writes", su.nWrites, "bytes", len(su.sealed),
			"upload_ms", putDur.Milliseconds())
	}
	select {
	case p.ackCh <- su.ts:
	case <-p.ctx.Done():
		return false
	}
	return true
}

// uploader is one sequential Uploader thread (the DisablePipelining
// ablation): seal and PUT each WAL object back to back.
func (p *pipeline) uploader() {
	var enc []byte
	for u := range p.uploadCh {
		su, ok := p.sealOne(u, &enc)
		if !ok {
			return
		}
		if !p.putSealed(su) {
			return
		}
	}
}

// sealStage is the first half of the pipelined uploader: it seals the
// next object while the PUT stage holds the previous one in flight, so
// encode+seal CPU time hides under cloud RTT.
func (p *pipeline) sealStage() {
	var enc []byte
	for u := range p.uploadCh {
		su, ok := p.sealOne(u, &enc)
		if !ok {
			return
		}
		select {
		case p.sealedCh <- su:
		case <-p.ctx.Done():
			return
		}
	}
}

// putStage is the second half of the pipelined uploader. A sealed object
// that never reaches the ack (crash, outage-failure) is simply absent
// from the cloud: the unlocker's consecutive-frontier rule already
// refuses to release anything at or beyond the gap, so a
// sealed-but-unPUT object can never be acknowledged to the DBMS.
func (p *pipeline) putStage() {
	for su := range p.sealedCh {
		if !p.putSealed(su) {
			return
		}
	}
}

// putWithRetry uploads with exponential backoff. UploadRetries = 0 retries
// until the pipeline shuts down — a transient cloud hiccup must delay, not
// lose, the backup. The delay is floored at minRetryDelay: a zero
// RetryBaseDelay (a caller bypassing Validate's defaults) would otherwise
// stay zero through every doubling and turn the retry loop into a hot
// spin against a down provider. Each sleep is jittered (retryJitter) so
// the many objects an outage strands don't hammer the recovering store in
// lockstep waves.
func (p *pipeline) putWithRetry(name string, data []byte) error {
	delay := p.params.RetryBaseDelay
	if delay < minRetryDelay {
		delay = minRetryDelay
	}
	for attempt := 0; ; attempt++ {
		err := p.store.Put(p.ctx, name, data)
		if err == nil {
			return nil
		}
		if p.ctx.Err() != nil {
			return err
		}
		if p.params.UploadRetries > 0 && attempt+1 >= p.params.UploadRetries {
			return err
		}
		p.stats.retries.Add(1)
		if m := p.metrics; m != nil {
			m.retries.Inc()
		}
		if simclock.SleepCtx(p.ctx, p.clk, retryJitter(delay, name, attempt, p.clk.Now())) != nil {
			return err
		}
		if delay < maxRetryDelay {
			delay *= 2
		}
	}
}

// ackRing tracks acknowledged WAL timestamps beyond the consecutive
// frontier in a ring bitmap. The window it needs is bounded by the
// objects simultaneously in flight (uploadCh buffer plus one per
// uploader): the Aggregator blocks minting further timestamps once the
// channel is full, so an unbounded acked-timestamp map — which under a
// long outage with parallel uploaders grows without limit — is never
// necessary. The ring still grows (doubling) if an ack lands beyond the
// window, so sizing is a fast path, not a correctness assumption.
type ackRing struct {
	bits  []uint64
	start int   // ring bit index of base
	base  int64 // first timestamp the window covers (frontier+1)
}

func newAckRing(base int64, minBits int) *ackRing {
	words := 1
	for words*64 < minBits {
		words *= 2
	}
	return &ackRing{bits: make([]uint64, words), base: base}
}

func (r *ackRing) capBits() int { return len(r.bits) * 64 }

// set marks ts acknowledged. Timestamps below the window base (duplicate
// acks of released objects) are ignored.
func (r *ackRing) set(ts int64) {
	if ts < r.base {
		return
	}
	for int(ts-r.base) >= r.capBits() {
		r.grow()
	}
	pos := (r.start + int(ts-r.base)) % r.capBits()
	r.bits[pos/64] |= 1 << (pos % 64)
}

func (r *ackRing) grow() {
	nb := make([]uint64, len(r.bits)*2)
	for i := 0; i < r.capBits(); i++ {
		pos := (r.start + i) % r.capBits()
		if r.bits[pos/64]&(1<<(pos%64)) != 0 {
			nb[i/64] |= 1 << (i % 64)
		}
	}
	r.bits = nb
	r.start = 0
}

// advance consumes the contiguous acknowledged run at the window base and
// returns the new frontier (the last consecutive acknowledged timestamp).
func (r *ackRing) advance() int64 {
	for {
		pos := r.start
		if r.bits[pos/64]&(1<<(pos%64)) == 0 {
			return r.base - 1
		}
		r.bits[pos/64] &^= 1 << (pos % 64)
		r.start = (r.start + 1) % r.capBits()
		r.base++
	}
}

// unlocker implements the Unlocker thread: advance the contiguous-
// timestamp frontier as acknowledgements arrive and release batches from
// the CommitQueue in FIFO order. Releasing only up to the *consecutive*
// frontier is what bounds data loss to S even with parallel, out-of-order
// uploads (§5.3: "Ginja blocks the DBMS until all WAL objects with
// consecutive ts values are uploaded").
func (p *pipeline) unlocker(frontier int64) {
	acked := newAckRing(frontier+1, 4*p.params.Uploaders+64)
	var pending []batchRec
	ackCh := p.ackCh
	batchCh := p.batchCh
	for ackCh != nil || batchCh != nil {
		select {
		case ts, ok := <-ackCh:
			if !ok {
				ackCh = nil
				continue
			}
			acked.set(ts)
			frontier = acked.advance()
		case b, ok := <-batchCh:
			if !ok {
				batchCh = nil
				continue
			}
			pending = append(pending, b)
		}
		for len(pending) > 0 && pending[0].maxTs <= frontier {
			rec := pending[0]
			p.q.removeFront(rec.count)
			if m := p.metrics; m != nil {
				now := p.clk.Now()
				m.durableWait.ObserveDuration(now.Sub(rec.aggregatedAt))
				m.batchTotal.ObserveDuration(now.Sub(rec.enqueuedAt))
				if p.spans != nil {
					// End-to-end batch span: oldest enqueue → durable release.
					p.spans.Record(obs.Span{
						Name: "batch", ID: rec.id, Extra: int64(rec.count),
						Start: rec.enqueuedAt, Duration: now.Sub(rec.enqueuedAt),
					})
				}
			}
			if p.trace {
				p.params.logger().Debug("batch durable",
					"batch", rec.id, "updates", rec.count, "objects", rec.objects,
					"max_ts", rec.maxTs, "total_ms", p.clk.Since(rec.enqueuedAt).Milliseconds())
			}
			pending = pending[1:]
		}
	}
}

func (p *pipeline) fail(err error) {
	p.errMu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.errMu.Unlock()
	p.params.logger().Error("ginja replication failed; commits will be rejected", "err", err)
	// A failed uploader means the Safety contract can no longer be
	// honoured: shut the pipeline down so blocked commits surface the
	// error instead of hanging forever.
	if p.tuner != nil {
		p.tuner.close()
	}
	p.q.close()
	p.cancel()
}

func (p *pipeline) lastErr() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.err
}

// drainAndStop flushes pending uploads (bounded by timeout) and stops all
// goroutines. A pipeline that already failed fatally can never drain —
// fail() closed the queue and stopped the workers — so waiting out the
// timeout would only stall shutdown.
func (p *pipeline) drainAndStop(timeout time.Duration) error {
	if p.lastErr() == nil {
		p.q.drain(timeout)
	}
	if p.tuner != nil {
		p.tuner.close()
	}
	p.q.close()
	p.cancel()
	p.wg.Wait()
	return p.lastErr()
}
