package core

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/sealer"
	"github.com/ginja-dr/ginja/internal/simclock"
)

// walUpload is one WAL object headed for the cloud. batch identifies the
// Aggregator batch that produced it, so a trace can follow a commit from
// FS interception to cloud ack.
type walUpload struct {
	ts    int64
	batch int64
	write FileWrite
}

// batchRec tracks one Aggregator batch so the Unlocker can release its
// updates from the CommitQueue once all its objects are durable, and so
// the batch's trace span can be closed with end-to-end timings.
type batchRec struct {
	id           int64
	count        int   // updates in the batch
	objects      int   // WAL objects produced
	maxTs        int64 // highest WAL timestamp the batch produced
	enqueuedAt   time.Time
	aggregatedAt time.Time
}

// pipelineStats are the commit-path counters behind Table 3.
type pipelineStats struct {
	walObjects atomic.Int64
	walBytes   atomic.Int64 // sealed (uploaded) bytes
	rawBytes   atomic.Int64 // pre-seal payload bytes
	batches    atomic.Int64
	updates    atomic.Int64
	retries    atomic.Int64
}

// pipeline wires the CommitQueue to the cloud: Aggregator → Uploader pool
// → Unlocker (paper Figure 3, implementing Algorithm 2).
type pipeline struct {
	q      *commitQueue
	clk    simclock.Clock
	view   *CloudView
	store  cloud.ObjectStore
	seal   *sealer.Sealer
	params Params

	uploadCh chan walUpload
	ackCh    chan int64
	batchCh  chan batchRec

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	stats       pipelineStats
	metrics     *pipelineMetrics
	putInflight *inflight
	batchSeq    atomic.Int64
	trace       bool // emit per-batch/per-object spans via params.Logger

	errMu sync.Mutex
	err   error
}

func newPipeline(view *CloudView, store cloud.ObjectStore, seal *sealer.Sealer, params Params) *pipeline {
	ctx, cancel := context.WithCancel(context.Background())
	return &pipeline{
		q:           newCommitQueue(params),
		clk:         params.clock(),
		view:        view,
		store:       store,
		seal:        seal,
		params:      params,
		metrics:     newPipelineMetrics(params.Metrics),
		putInflight: newInflight(params.Metrics, "put", "wal"),
		trace:       params.Logger != nil && params.Logger.Enabled(context.Background(), slog.LevelDebug),
		uploadCh:    make(chan walUpload, params.Uploaders),
		ackCh:       make(chan int64, params.Uploaders),
		batchCh:     make(chan batchRec, 64),
		ctx:         ctx,
		cancel:      cancel,
	}
}

// start launches the Aggregator, the Uploader pool and the Unlocker.
// initialFrontier is the highest WAL timestamp already known durable
// (everything the view held at start).
func (p *pipeline) start(initialFrontier int64) {
	if reg := p.params.Metrics; reg != nil {
		// Re-registering rebinds the sampling closures to this pipeline,
		// so a registry outliving a Ginja instance keeps reading live
		// state instead of a stopped pipeline's.
		reg.GaugeFunc(metricQueueDepth,
			"Unacknowledged updates in the CommitQueue (bounded by Safety).",
			nil, func() float64 { return float64(p.q.size()) })
		reg.GaugeFunc(metricUploadChDepth,
			"WAL objects buffered between the Aggregator and the Uploader pool.",
			nil, func() float64 { return float64(len(p.uploadCh)) })
	}
	var uploaderWG sync.WaitGroup
	for i := 0; i < p.params.Uploaders; i++ {
		uploaderWG.Add(1)
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			defer uploaderWG.Done()
			p.uploader()
		}()
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		uploaderWG.Wait()
		close(p.ackCh)
	}()
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.aggregator()
	}()
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.unlocker(initialFrontier)
	}()
}

// submit is called from the intercepted WAL write; it blocks per the
// Safety contract and returns the time spent blocked.
func (p *pipeline) submit(path string, off int64, data []byte) (time.Duration, error) {
	if err := p.lastErr(); err != nil {
		return 0, err
	}
	p.stats.updates.Add(1)
	cp := make([]byte, len(data))
	copy(cp, data)
	blocked, err := p.q.put(update{path: path, off: off, data: cp})
	if m := p.metrics; m != nil {
		m.updates.Inc()
		if blocked > 0 {
			m.blockedSeconds.AddDuration(blocked)
			m.blocks.Inc()
		}
	}
	return blocked, err
}

// aggregator implements the Aggregator thread: read batches of up to B
// updates, coalesce page rewrites, split oversized runs, stamp timestamps
// and hand the objects to the uploaders (Algorithm 2 lines 9-16).
func (p *pipeline) aggregator() {
	defer close(p.uploadCh)
	defer close(p.batchCh)
	for {
		updates, ok := p.q.nextBatch()
		if !ok {
			return
		}
		m := p.metrics
		var aggStart time.Time
		if m != nil || p.trace {
			aggStart = p.clk.Now()
		}
		if m != nil {
			for _, u := range updates {
				m.queueWait.ObserveDuration(aggStart.Sub(u.at))
			}
		}
		writes := make([]FileWrite, len(updates))
		for i, u := range updates {
			writes[i] = FileWrite{Path: u.path, Offset: u.off, Data: u.data}
		}
		merged := writes
		if !p.params.DisableAggregation {
			merged = MergeWrites(writes)
		}
		var pieces []FileWrite
		for _, w := range merged {
			pieces = append(pieces, SplitWrite(w, p.params.MaxObjectSize)...)
		}
		batchID := p.batchSeq.Add(1)
		var maxTs int64
		for _, w := range pieces {
			ts := p.view.NextWALTs()
			maxTs = ts
			select {
			case p.uploadCh <- walUpload{ts: ts, batch: batchID, write: w}:
			case <-p.ctx.Done():
				return
			}
		}
		p.stats.batches.Add(1)
		if m != nil {
			m.batches.Inc()
			m.aggregate.ObserveDuration(p.clk.Since(aggStart))
		}
		rec := batchRec{
			id:           batchID,
			count:        len(updates),
			objects:      len(pieces),
			maxTs:        maxTs,
			enqueuedAt:   updates[0].at,
			aggregatedAt: p.clk.Now(),
		}
		if p.trace {
			p.params.logger().Debug("batch aggregated",
				"batch", batchID, "updates", rec.count, "objects", rec.objects,
				"max_ts", maxTs, "queue_wait_ms", aggStart.Sub(rec.enqueuedAt).Milliseconds())
		}
		select {
		case p.batchCh <- rec:
		case <-p.ctx.Done():
			return
		}
	}
}

// uploader is one Uploader thread: seal and PUT WAL objects, retrying with
// exponential backoff, then acknowledge the timestamp. Each uploader keeps
// a private encode buffer: at high update rates the per-object
// encode+seal would otherwise be allocation-bound (Seal never retains its
// input, so reuse across iterations is safe).
func (p *pipeline) uploader() {
	var (
		enc     []byte
		scratch [1]FileWrite
	)
	for u := range p.uploadCh {
		m := p.metrics
		var t0 time.Time
		if m != nil || p.trace {
			t0 = p.clk.Now()
		}
		scratch[0] = u.write
		enc = EncodeWritesInto(enc[:0], scratch[:])
		payload := enc
		sealed, err := p.seal.Seal(payload)
		if err != nil {
			p.fail(fmt.Errorf("core: seal WAL object ts=%d: %w", u.ts, err))
			return
		}
		var upStart time.Time
		if m != nil || p.trace {
			upStart = p.clk.Now()
			if m != nil {
				m.seal.ObserveDuration(upStart.Sub(t0))
			}
		}
		name := WALObjectName(u.ts, u.write.Path, u.write.Offset)
		p.putInflight.enter()
		err = p.putWithRetry(name, sealed)
		p.putInflight.exit()
		if err != nil {
			p.fail(fmt.Errorf("core: upload %s: %w", name, err))
			return
		}
		p.view.AddWAL(WALObjectInfo{
			Ts: u.ts, Filename: u.write.Path, Offset: u.write.Offset, Size: int64(len(sealed)),
		})
		p.stats.walObjects.Add(1)
		p.stats.walBytes.Add(int64(len(sealed)))
		p.stats.rawBytes.Add(int64(len(payload)))
		if m != nil {
			m.upload.ObserveDuration(p.clk.Since(upStart))
			m.walObjects.Inc()
			m.walBytes.Add(float64(len(sealed)))
			m.rawBytes.Add(float64(len(payload)))
			m.objectBytes.Observe(float64(len(sealed)))
		}
		if p.trace {
			p.params.logger().Debug("wal object uploaded",
				"batch", u.batch, "ts", u.ts, "bytes", len(sealed),
				"upload_ms", p.clk.Since(upStart).Milliseconds())
		}
		select {
		case p.ackCh <- u.ts:
		case <-p.ctx.Done():
			return
		}
	}
}

// putWithRetry uploads with exponential backoff. UploadRetries = 0 retries
// until the pipeline shuts down — a transient cloud hiccup must delay, not
// lose, the backup.
func (p *pipeline) putWithRetry(name string, data []byte) error {
	delay := p.params.RetryBaseDelay
	for attempt := 0; ; attempt++ {
		err := p.store.Put(p.ctx, name, data)
		if err == nil {
			return nil
		}
		if p.ctx.Err() != nil {
			return err
		}
		if p.params.UploadRetries > 0 && attempt+1 >= p.params.UploadRetries {
			return err
		}
		p.stats.retries.Add(1)
		if m := p.metrics; m != nil {
			m.retries.Inc()
		}
		if simclock.SleepCtx(p.ctx, p.clk, delay) != nil {
			return err
		}
		if delay < maxRetryDelay {
			delay *= 2
		}
	}
}

// unlocker implements the Unlocker thread: advance the contiguous-
// timestamp frontier as acknowledgements arrive and release batches from
// the CommitQueue in FIFO order. Releasing only up to the *consecutive*
// frontier is what bounds data loss to S even with parallel, out-of-order
// uploads (§5.3: "Ginja blocks the DBMS until all WAL objects with
// consecutive ts values are uploaded").
func (p *pipeline) unlocker(frontier int64) {
	acked := make(map[int64]bool)
	var pending []batchRec
	ackCh := p.ackCh
	batchCh := p.batchCh
	for ackCh != nil || batchCh != nil {
		select {
		case ts, ok := <-ackCh:
			if !ok {
				ackCh = nil
				continue
			}
			acked[ts] = true
			for acked[frontier+1] {
				frontier++
				delete(acked, frontier)
			}
		case b, ok := <-batchCh:
			if !ok {
				batchCh = nil
				continue
			}
			pending = append(pending, b)
		}
		for len(pending) > 0 && pending[0].maxTs <= frontier {
			rec := pending[0]
			p.q.removeFront(rec.count)
			if m := p.metrics; m != nil {
				now := p.clk.Now()
				m.durableWait.ObserveDuration(now.Sub(rec.aggregatedAt))
				m.batchTotal.ObserveDuration(now.Sub(rec.enqueuedAt))
			}
			if p.trace {
				p.params.logger().Debug("batch durable",
					"batch", rec.id, "updates", rec.count, "objects", rec.objects,
					"max_ts", rec.maxTs, "total_ms", p.clk.Since(rec.enqueuedAt).Milliseconds())
			}
			pending = pending[1:]
		}
	}
}

func (p *pipeline) fail(err error) {
	p.errMu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.errMu.Unlock()
	p.params.logger().Error("ginja replication failed; commits will be rejected", "err", err)
	// A failed uploader means the Safety contract can no longer be
	// honoured: shut the pipeline down so blocked commits surface the
	// error instead of hanging forever.
	p.q.close()
	p.cancel()
}

func (p *pipeline) lastErr() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.err
}

// drainAndStop flushes pending uploads (bounded by timeout) and stops all
// goroutines. A pipeline that already failed fatally can never drain —
// fail() closed the queue and stopped the workers — so waiting out the
// timeout would only stall shutdown.
func (p *pipeline) drainAndStop(timeout time.Duration) error {
	if p.lastErr() == nil {
		p.q.drain(timeout)
	}
	p.q.close()
	p.cancel()
	p.wg.Wait()
	return p.lastErr()
}
