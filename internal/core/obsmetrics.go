package core

import (
	"sync/atomic"
	"time"

	"github.com/ginja-dr/ginja/internal/obs"
)

// Metric names exported when Params.Metrics is set. DESIGN.md maps them
// to the paper's Table 3/4 quantities; README.md carries the catalogue.
const (
	metricUpdates        = "ginja_updates_total"
	metricBatches        = "ginja_batches_total"
	metricWALObjects     = "ginja_wal_objects_uploaded_total"
	metricWALBytes       = "ginja_wal_bytes_uploaded_total"
	metricWALBytesRaw    = "ginja_wal_bytes_raw_total"
	metricRetries        = "ginja_upload_retries_total"
	metricBlockedSeconds = "ginja_safety_blocked_seconds_total"
	metricBlocks         = "ginja_safety_blocks_total"
	metricStageSeconds   = "ginja_pipeline_stage_seconds"
	metricBatchSeconds   = "ginja_commit_batch_seconds"
	metricObjectBytes    = "ginja_wal_object_bytes"
	metricQueueDepth     = "ginja_commit_queue_depth"
	metricUploadChDepth  = "ginja_upload_channel_depth"
	metricWritesPerObj   = "ginja_wal_writes_per_object"
	metricPutsPerBatch   = "ginja_wal_puts_per_batch"

	metricCheckpoints    = "ginja_checkpoints_total"
	metricDBObjects      = "ginja_db_objects_uploaded_total"
	metricDBBytes        = "ginja_db_bytes_uploaded_total"
	metricGCDeleted      = "ginja_gc_deleted_total"
	metricCkptBuild      = "ginja_checkpoint_build_seconds"
	metricCkptUpload     = "ginja_checkpoint_upload_seconds"
	metricCkptQueueLen   = "ginja_checkpoint_queue_depth"
	metricCkptQueueBytes = "ginja_checkpoint_queue_bytes"
	metricStreamBytes    = "ginja_db_stream_inflight_bytes"
	metricDBSeal         = "ginja_db_seal_seconds"

	metricCloudInflight = "ginja_cloud_inflight_requests"
	metricDBPartPut     = "ginja_db_part_put_seconds"
	metricRecoveryFetch = "ginja_recovery_fetch_seconds"

	// Delta-checkpoint telemetry: durable checkpoint bytes broken down by
	// object kind (base dumps vs. deltas vs. incremental checkpoints), the
	// live delta-chain length, and the time DBMS writes actually spent
	// blocked on the (now path-precise) dump gate.
	metricCkptBytes     = "ginja_checkpoint_bytes_total"
	metricDeltaChainLen = "ginja_delta_chain_length"
	metricGateBlocked   = "ginja_dump_gate_blocked_seconds"

	// Durability telemetry: the live RPO watermark (age of the oldest
	// update not yet acked by the cloud), the realized data-loss window of
	// each released update, the configured Safety bounds beside them, and
	// the per-phase RTO breakdown of the most recent recovery.
	metricRPOSeconds    = "ginja_rpo_seconds"
	metricLossWindow    = "ginja_data_loss_window_seconds"
	metricSafetyLimit   = "ginja_safety_limit_updates"
	metricSafetyTimeout = "ginja_safety_timeout_seconds"
	metricRecoveryPhase = "ginja_recovery_phase_seconds"

	// Warm-standby telemetry: how far the follower's replica trails the
	// bucket, and the applied-WAL-timestamp watermark it has reached.
	metricFollowerLag       = "ginja_follower_lag_seconds"
	metricFollowerAppliedTs = "ginja_follower_applied_ts"

	// Adaptive-batching telemetry: the effective knobs the commit path is
	// running, the controller's fitted PUT latency-vs-size curve, and the
	// size-bucketed PUT latency histogram that exposes the raw curve the
	// fit is drawn from.
	metricEffectiveBatch        = "ginja_effective_batch"
	metricEffectiveBatchTimeout = "ginja_effective_batch_timeout_seconds"
	metricFitBase               = "ginja_put_latency_fit_base_seconds"
	metricFitPerByte            = "ginja_put_latency_fit_per_byte_seconds"
	metricWALPutSeconds         = "ginja_wal_put_seconds"

	// Fleet telemetry: tenant census, shared-pool scheduler behaviour
	// (queue wait by class, live occupancy), and the starvation proof —
	// Safety-class operations that out-waited their TS deadline in the
	// scheduler queue. A fleet with a dumping antagonist and zero deadline
	// misses is a fleet whose fairness policy is working.
	metricFleetTenants    = "ginja_fleet_tenants"
	metricFleetSchedWait  = "ginja_fleet_sched_wait_seconds"
	metricFleetInflight   = "ginja_fleet_inflight_ops"
	metricFleetStarvation = "ginja_fleet_safety_deadline_misses_total"
	metricFleetOps        = "ginja_fleet_ops_total"
	metricFleetAdmitted   = "ginja_fleet_admitted_total"
	metricFleetEvicted    = "ginja_fleet_evicted_total"
)

// walPutSizeClasses label the size-bucketed WAL PUT latency histogram:
// each sealed object's PUT duration is observed under its size class, so
// /metrics exposes latency-vs-size — the same curve the adaptive
// controller fits online.
var walPutSizeClasses = [4]string{"lt16k", "lt256k", "lt4m", "ge4m"}

// walPutSizeClass maps a sealed object size to its class index.
func walPutSizeClass(sealedBytes int) int {
	switch {
	case sealedBytes < 16<<10:
		return 0
	case sealedBytes < 256<<10:
		return 1
	case sealedBytes < 4<<20:
		return 2
	default:
		return 3
	}
}

// inflight tracks the cloud requests currently in flight on one
// (op, path) pair, exported as a gauge sampled at scrape time. A nil
// *inflight (observability disabled) counts nothing.
type inflight struct{ n atomic.Int64 }

func newInflight(reg *obs.Registry, op, path string) *inflight {
	if reg == nil {
		return nil
	}
	f := &inflight{}
	reg.GaugeFunc(metricCloudInflight,
		"Cloud requests currently in flight, by operation and data path.",
		obs.Labels{"op": op, "path": path},
		func() float64 { return float64(f.n.Load()) })
	return f
}

func (f *inflight) enter() {
	if f != nil {
		f.n.Add(1)
	}
}

func (f *inflight) exit() {
	if f != nil {
		f.n.Add(-1)
	}
}

// pipelineMetrics bundles the commit-path instruments. A nil
// *pipelineMetrics means observability is disabled; every call site
// guards with a nil check so the disabled cost is one predictable branch.
type pipelineMetrics struct {
	updates        *obs.Counter
	batches        *obs.Counter
	walObjects     *obs.Counter
	walBytes       *obs.Counter
	rawBytes       *obs.Counter
	retries        *obs.Counter
	blockedSeconds *obs.Counter
	blocks         *obs.Counter

	queueWait   *obs.Histogram // submit → aggregator pickup, per update
	aggregate   *obs.Histogram // merge+split+stamp, per batch
	seal        *obs.Histogram // per object
	upload      *obs.Histogram // per object, retries included
	durableWait *obs.Histogram // aggregator handoff → unlocker release, per batch
	batchTotal  *obs.Histogram // oldest submit → unlocker release, per batch
	objectBytes *obs.Histogram // sealed WAL object sizes

	writesPerObject *obs.Histogram // writes packed into each WAL object
	putsPerBatch    *obs.Histogram // WAL objects (PUTs) minted per batch

	lossWindow *obs.Histogram // realized data-loss window per released update

	putBySize [len(walPutSizeClasses)]*obs.Histogram // PUT latency by sealed-size class
}

// observeWALPut records one WAL PUT duration under its sealed-size class.
func (m *pipelineMetrics) observeWALPut(sealedBytes int, d time.Duration) {
	m.putBySize[walPutSizeClass(sealedBytes)].ObserveDuration(d)
}

// countBuckets returns power-of-two boundaries suited to small counts
// (writes per object, PUTs per batch): 1, 2, 4, … 1024.
func countBuckets() []float64 {
	b := make([]float64, 0, 11)
	for v := float64(1); v <= 1024; v *= 2 {
		b = append(b, v)
	}
	return b
}

func newPipelineMetrics(reg *obs.Registry) *pipelineMetrics {
	if reg == nil {
		return nil
	}
	stage := func(name string) *obs.Histogram {
		return reg.Histogram(metricStageSeconds,
			"Commit-pipeline per-stage latency in seconds (submit → aggregate → seal → upload → ack).",
			obs.Labels{"stage": name}, nil)
	}
	var putBySize [len(walPutSizeClasses)]*obs.Histogram
	for i, cls := range walPutSizeClasses {
		putBySize[i] = reg.Histogram(metricWALPutSeconds,
			"WAL object PUT duration in seconds by sealed-size class — the latency-vs-size curve the adaptive controller fits.",
			obs.Labels{"size": cls}, nil)
	}
	return &pipelineMetrics{
		putBySize:      putBySize,
		updates:        reg.Counter(metricUpdates, "Intercepted WAL updates (database commits).", nil),
		batches:        reg.Counter(metricBatches, "Cloud synchronizations performed (paper Table 3 batches).", nil),
		walObjects:     reg.Counter(metricWALObjects, "WAL objects uploaded (paper Table 3 #PUTs, commit path).", nil),
		walBytes:       reg.Counter(metricWALBytes, "Sealed WAL bytes uploaded.", nil),
		rawBytes:       reg.Counter(metricWALBytesRaw, "Pre-seal WAL payload bytes (compression input).", nil),
		retries:        reg.Counter(metricRetries, "Transient cloud failures absorbed by upload retries.", nil),
		blockedSeconds: reg.Counter(metricBlockedSeconds, "Cumulative seconds DBMS commits spent blocked on the Safety contract.", nil),
		blocks:         reg.Counter(metricBlocks, "Commits that blocked on the Safety contract at least once.", nil),
		queueWait:      stage("queue_wait"),
		aggregate:      stage("aggregate"),
		seal:           stage("seal"),
		upload:         stage("upload"),
		durableWait:    stage("durable_wait"),
		batchTotal: reg.Histogram(metricBatchSeconds,
			"End-to-end commit batch latency: oldest submit to durable release.", nil, nil),
		objectBytes: reg.Histogram(metricObjectBytes,
			"Sealed WAL object sizes in bytes (paper Table 3 object size).", nil, obs.SizeBuckets()),
		writesPerObject: reg.Histogram(metricWritesPerObj,
			"WAL writes packed into each uploaded object (1 = unpacked).", nil, countBuckets()),
		putsPerBatch: reg.Histogram(metricPutsPerBatch,
			"WAL objects (cloud PUTs) minted per Aggregator batch.", nil, countBuckets()),
		lossWindow: reg.Histogram(metricLossWindow,
			"Realized data-loss window per update: enqueue to cloud acknowledgement in seconds. "+
				"Had a disaster struck while the update was pending, this is how stale the restored copy would have been.",
			nil, nil),
	}
}

// checkpointMetrics bundles the checkpoint-path instruments; nil when
// observability is disabled.
type checkpointMetrics struct {
	checkpoints *obs.Counter
	dumps       *obs.Counter
	deltas      *obs.Counter
	dbObjects   *obs.Counter
	dbBytes     *obs.Counter
	walDeleted  *obs.Counter
	dbDeleted   *obs.Counter

	// Durable checkpoint-path bytes by object kind: base full dumps,
	// delta chain elements, incremental checkpoints.
	baseBytes  *obs.Counter
	deltaBytes *obs.Counter
	ckptBytes  *obs.Counter

	build       *obs.Histogram // dump plan construction duration
	uploadCkpt  *obs.Histogram
	uploadDump  *obs.Histogram
	uploadDelta *obs.Histogram
	partPut     *obs.Histogram // per-part DB PUT, retries included
	sealPart    *obs.Histogram // per-part seal stage (streamed data path)
	gateBlocked *obs.Histogram // per-write dump-gate blocked duration
}

func newCheckpointMetrics(reg *obs.Registry) *checkpointMetrics {
	if reg == nil {
		return nil
	}
	return &checkpointMetrics{
		checkpoints: reg.Counter(metricCheckpoints, "DB objects uploaded by type.", obs.Labels{"type": "checkpoint"}),
		dumps:       reg.Counter(metricCheckpoints, "DB objects uploaded by type.", obs.Labels{"type": "dump"}),
		deltas:      reg.Counter(metricCheckpoints, "DB objects uploaded by type.", obs.Labels{"type": "delta"}),
		dbObjects:   reg.Counter(metricDBObjects, "DB object parts uploaded (checkpoint path PUTs).", nil),
		dbBytes:     reg.Counter(metricDBBytes, "Sealed DB bytes uploaded.", nil),
		walDeleted:  reg.Counter(metricGCDeleted, "Objects removed by garbage collection.", obs.Labels{"kind": "wal"}),
		dbDeleted:   reg.Counter(metricGCDeleted, "Objects removed by garbage collection.", obs.Labels{"kind": "db"}),
		baseBytes:   reg.Counter(metricCkptBytes, "Durable checkpoint-path bytes by object kind.", obs.Labels{"kind": "base"}),
		deltaBytes:  reg.Counter(metricCkptBytes, "Durable checkpoint-path bytes by object kind.", obs.Labels{"kind": "delta"}),
		ckptBytes:   reg.Counter(metricCkptBytes, "Durable checkpoint-path bytes by object kind.", obs.Labels{"kind": "checkpoint"}),
		build: reg.Histogram(metricCkptBuild,
			"Full-dump construction duration in seconds.", nil, nil),
		uploadCkpt: reg.Histogram(metricCkptUpload,
			"DB object seal+upload duration in seconds by type.", obs.Labels{"type": "checkpoint"}, nil),
		uploadDump: reg.Histogram(metricCkptUpload,
			"DB object seal+upload duration in seconds by type.", obs.Labels{"type": "dump"}, nil),
		uploadDelta: reg.Histogram(metricCkptUpload,
			"DB object seal+upload duration in seconds by type.", obs.Labels{"type": "delta"}, nil),
		partPut: reg.Histogram(metricDBPartPut,
			"Per-part DB object PUT duration in seconds, retries included.", nil, nil),
		sealPart: reg.Histogram(metricDBSeal,
			"Per-part compress+seal duration on the streamed DB data path in seconds.", nil, nil),
		gateBlocked: reg.Histogram(metricGateBlocked,
			"Duration DBMS writes spent blocked on the stop-writes dump gate, per blocked write.", nil, nil),
	}
}
