package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/ginja-dr/ginja/internal/cloud"
)

// WALObjectInfo describes one WAL object Ginja knows to be in the cloud.
type WALObjectInfo struct {
	Ts       int64
	Filename string
	Offset   int64
	Size     int64
}

// Name returns the cloud object key.
func (w WALObjectInfo) Name() string { return WALObjectName(w.Ts, w.Filename, w.Offset) }

// DBObjectInfo describes one DB object (all its parts) in the cloud.
// (Ts, Gen) totally orders DB objects: Ts is the WAL timestamp captured at
// checkpoint begin and Gen disambiguates objects sharing a Ts.
type DBObjectInfo struct {
	Ts   int64
	Gen  int
	Type DBObjectType
	Size int64
	// Parts is the number of split parts; 0 means a single unsplit object.
	Parts int
	// PartSizes holds the per-part sealed sizes of a part-sealed object
	// (len == Parts); nil for unsplit objects and legacy whole-sealed
	// splits, whose part names carry the total size instead.
	PartSizes []int64
	// BaseTs/BaseGen identify the chain predecessor of a Delta object
	// (meaningful only when Type is Delta). The base is part of the
	// object's identity: parts naming different bases can never merge into
	// one record.
	BaseTs  int64
	BaseGen int
}

// PartSealed reports whether this object uses the part-sealed format
// (every part an independently sealed write list).
func (d DBObjectInfo) PartSealed() bool { return len(d.PartSizes) > 0 }

// Before orders DB objects by (Ts, Gen).
func (d DBObjectInfo) Before(o DBObjectInfo) bool {
	if d.Ts != o.Ts {
		return d.Ts < o.Ts
	}
	return d.Gen < o.Gen
}

// name builds the DBName for one part (or the unsplit whole) of this
// object, carrying the base linkage when the object is a delta.
func (d DBObjectInfo) name(size int64, part int, sealed bool, count int) DBName {
	return DBName{Ts: d.Ts, Gen: d.Gen, Type: d.Type, Size: size,
		Part: part, Sealed: sealed, Count: count,
		BaseTs: d.BaseTs, BaseGen: d.BaseGen, HasBase: d.Type == Delta}
}

// PartNames returns the cloud keys holding this object's payload, in order.
func (d DBObjectInfo) PartNames() []string {
	if d.Parts == 0 {
		return []string{d.name(d.Size, -1, false, 0).String()}
	}
	names := make([]string, d.Parts)
	if d.PartSealed() {
		for i := range names {
			count := 0
			if i == d.Parts-1 {
				count = d.Parts
			}
			names[i] = d.name(d.PartSizes[i], i, true, count).String()
		}
		return names
	}
	for i := range names {
		names[i] = d.name(d.Size, i, false, 0).String()
	}
	return names
}

type dbKey struct {
	ts  int64
	gen int
}

// OrphanPart is one cloud object recorded by LoadFromList as belonging to
// an incomplete DB object — the leftover of an upload interrupted mid-way
// by a crash or outage. Orphans never enter the view proper (recovery
// ignores them), but they are remembered for two reasons: NextDBGen must
// never re-issue an orphaned generation (a reuse would let a fresh
// object share its (ts, gen) slot with orphan parts of a different size),
// and the next dump's garbage collection deletes them by name.
type OrphanPart struct {
	Name string
	Ts   int64
	Gen  int
}

// CloudView is Ginja's local bookkeeping of the objects currently in the
// cloud (Algorithm 1 line 1). It also owns the WAL timestamp counter that
// totally orders uploads.
type CloudView struct {
	mu     sync.Mutex
	wal    map[int64]WALObjectInfo
	db     map[dbKey]*DBObjectInfo
	nextTs int64
	dbSize int64

	// retired marks DB objects superseded by a newer dump but kept in the
	// cloud by the point-in-time retention window (Params.RetainFor). They
	// stay listed (RecoverAt needs them) but leave the 150 %-rule size
	// accounting: retained history must not count as live cloud state, or
	// every checkpoint after the first retirement would trigger a dump.
	retired map[dbKey]bool

	// orphans holds the parts of incomplete DB objects found by
	// LoadFromList, keyed by object name, until GC deletes them.
	orphans map[string]OrphanPart
	// orphanGen is the per-ts generation floor imposed by orphans: the
	// next generation NextDBGen may hand out for that ts, so orphaned
	// generations are never reused even though they are not in db.
	orphanGen map[int64]int
}

// NewCloudView returns an empty view. The WAL timestamp counter starts at
// 1: timestamp 0 is reserved for the Boot dump so that recovery's
// "WAL objects newer than the last DB object" rule also covers the boot
// segments (see Boot).
func NewCloudView() *CloudView {
	return &CloudView{
		wal:       make(map[int64]WALObjectInfo),
		db:        make(map[dbKey]*DBObjectInfo),
		retired:   make(map[dbKey]bool),
		orphans:   make(map[string]OrphanPart),
		orphanGen: make(map[int64]int),
		nextTs:    1,
	}
}

// NextWALTs allocates the next WAL timestamp.
func (v *CloudView) NextWALTs() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	ts := v.nextTs
	v.nextTs++
	return ts
}

// LastWALTs returns the most recently allocated WAL timestamp (0 if none).
func (v *CloudView) LastWALTs() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.nextTs - 1
}

// NextDBGen returns the next free generation number for DB objects with
// timestamp ts. Generations consumed by orphans (incomplete objects found
// in the cloud listing) count as taken: reusing one would let a fresh
// object's parts coexist in the bucket with orphan parts of a different
// size under the same (ts, gen).
func (v *CloudView) NextDBGen(ts int64) int {
	v.mu.Lock()
	defer v.mu.Unlock()
	gen := 0
	for k := range v.db {
		if k.ts == ts && k.gen >= gen {
			gen = k.gen + 1
		}
	}
	if g, ok := v.orphanGen[ts]; ok && g > gen {
		gen = g
	}
	return gen
}

// AddWAL records a WAL object as present in the cloud.
func (v *CloudView) AddWAL(info WALObjectInfo) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.wal[info.Ts] = info
	if info.Ts >= v.nextTs {
		v.nextTs = info.Ts + 1
	}
}

// AddDB records a DB object (or one part of it). Re-adding an existing
// (Ts, Gen) is only legal for the same object — identical Size and Type;
// a mismatch means two distinct objects claim the same slot (a generation
// collision), and merging their part counts would fabricate a chimeric
// record, so it is reported instead.
func (v *CloudView) AddDB(info DBObjectInfo) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	key := dbKey{ts: info.Ts, gen: info.Gen}
	if existing, ok := v.db[key]; ok {
		if existing.Size != info.Size || existing.Type != info.Type ||
			existing.BaseTs != info.BaseTs || existing.BaseGen != info.BaseGen {
			return fmt.Errorf(
				"core: conflicting DB objects at ts=%d gen=%d: have %s size=%d base=%d-%d, got %s size=%d base=%d-%d",
				info.Ts, info.Gen, existing.Type, existing.Size, existing.BaseTs, existing.BaseGen,
				info.Type, info.Size, info.BaseTs, info.BaseGen)
		}
		if info.Parts > existing.Parts {
			existing.Parts = info.Parts
			existing.PartSizes = info.PartSizes
		}
		return nil
	}
	cp := info
	v.db[key] = &cp
	v.dbSize += info.Size
	if info.Ts >= v.nextTs {
		v.nextTs = info.Ts + 1
	}
	return nil
}

// DeleteWAL forgets a WAL object (after its cloud DELETE).
func (v *CloudView) DeleteWAL(ts int64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.wal, ts)
}

// DeleteDB forgets a DB object.
// MarkDBRetired flags a DB object as superseded-but-retained: it stays in
// DBObjects (point-in-time recovery can still use it) but stops counting
// toward TotalDBSize. Idempotent; unknown keys are ignored.
func (v *CloudView) MarkDBRetired(ts int64, gen int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	key := dbKey{ts: ts, gen: gen}
	if d, ok := v.db[key]; ok && !v.retired[key] {
		v.retired[key] = true
		v.dbSize -= d.Size
	}
}

func (v *CloudView) DeleteDB(ts int64, gen int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	key := dbKey{ts: ts, gen: gen}
	if d, ok := v.db[key]; ok {
		if !v.retired[key] {
			v.dbSize -= d.Size
		}
		delete(v.db, key)
		delete(v.retired, key)
	}
}

// TotalDBSize returns the summed payload size of all DB objects — the
// quantity compared against 150 % of the local database size to decide
// between an incremental checkpoint and a new dump (Algorithm 3 line 9).
func (v *CloudView) TotalDBSize() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.dbSize
}

// WALObjects returns the known WAL objects sorted by timestamp.
func (v *CloudView) WALObjects() []WALObjectInfo {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]WALObjectInfo, 0, len(v.wal))
	for _, w := range v.wal {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ts < out[j].Ts })
	return out
}

// DBObjects returns the known DB objects sorted by (Ts, Gen).
func (v *CloudView) DBObjects() []DBObjectInfo {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]DBObjectInfo, 0, len(v.db))
	for _, d := range v.db {
		out = append(out, *d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out
}

// LatestDump returns the most recent dump object, if any.
func (v *CloudView) LatestDump() (DBObjectInfo, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	var best *DBObjectInfo
	for _, d := range v.db {
		if d.Type != Dump {
			continue
		}
		if best == nil || best.Before(*d) {
			best = d
		}
	}
	if best == nil {
		return DBObjectInfo{}, false
	}
	return *best, true
}

// OrphanParts returns the orphan parts recorded by the last LoadFromList
// that have not been garbage-collected yet, sorted by name.
func (v *CloudView) OrphanParts() []OrphanPart {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]OrphanPart, 0, len(v.orphans))
	for _, o := range v.orphans {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// DropOrphan forgets one orphan part after its cloud DELETE. The
// generation floor for its ts is kept: the name is gone, but never
// re-issuing an orphaned generation is cheap insurance against a sweep
// that deleted only some of an orphan set before being interrupted.
func (v *CloudView) DropOrphan(name string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.orphans, name)
}

// LoadFromList rebuilds the view from a cloud listing (Reboot and Recovery
// modes, Algorithm 1 lines 19–26). Unknown object names are reported as an
// error — a foreign object in the bucket is a configuration problem worth
// surfacing, not skipping silently.
//
// DB listings are grouped by (ts, gen, declared size) before any of them
// reaches the view: the size in the name is part of an object's identity,
// so parts of differently-sized objects that collide on (ts, gen) — say a
// fresh upload whose slot is shared with the orphan of an interrupted one
// — can never mix into one chimeric record or veto each other's
// completeness check.
//
// A group whose listed bytes add up to its declared size is complete and
// enters the view (two complete objects on one (ts, gen) is genuine
// corruption and surfaces as an AddDB conflict error). Incomplete groups
// are the leftovers of an upload interrupted mid-way (a crash or outage
// between part PUTs — the local view never learned about them, so
// recovery must not either): their parts are recorded as orphans so that
// NextDBGen never re-issues their generation and the next dump's garbage
// collection deletes them from the bucket (checkpointer.collectOldDBObjects).
//
// Delta objects face one more gate after part-completeness: the chain
// rule. A delta enters the view only if its ".b" back-pointers resolve —
// through complete, strictly older deltas — to a complete dump. A broken
// chain can only be the residue of garbage collection that ran after a
// newer fold dump became durable (the delta's uploader deletes nothing
// until its own object is complete), so orphaning the stranded deltas is
// always safe: the fold dump already carries their state.
func (v *CloudView) LoadFromList(infos []cloud.ObjectInfo) error {
	v.mu.Lock()
	v.wal = make(map[int64]WALObjectInfo, len(infos))
	v.db = make(map[dbKey]*DBObjectInfo)
	v.retired = make(map[dbKey]bool)
	v.orphans = make(map[string]OrphanPart)
	v.orphanGen = make(map[int64]int)
	v.nextTs = 1
	v.dbSize = 0
	v.mu.Unlock()

	type sizedKey struct {
		ts      int64
		gen     int
		size    int64
		baseTs  int64
		baseGen int
		hasBase bool
	}
	type dbGroup struct {
		typ DBObjectType
		// The unsplit (part < 0) listing, if any — its name is fully
		// determined by the key, so there is at most one.
		unsplitName  string
		unsplitBytes int64
		// The split (".p<N>") listings.
		splitNames []string
		splitBytes int64 // summed on-cloud bytes across split parts
		maxPart    int
	}
	// Part-sealed groups: each part's name declares that part's own sealed
	// size, so the grouping key is just (ts, gen) and identity conflicts
	// show up as duplicate part indices instead.
	type sealedPart struct {
		name     string
		declared int64 // sealed size from the name
		listed   int64 // bytes in the cloud listing
		count    int   // > 0 on the final (commit-marker) part
	}
	type sealedGroup struct {
		typ     DBObjectType
		baseTs  int64
		baseGen int
		hasBase bool
		invalid bool // mixed types/bases or duplicate indices: never complete
		parts   map[int]sealedPart
		names   []string // every listed name in the group, for orphaning
	}
	groups := make(map[sizedKey]*dbGroup)
	sealedGroups := make(map[dbKey]*sealedGroup)
	var (
		order       []sizedKey
		sealedOrder []dbKey
	)
	for _, info := range infos {
		switch {
		case strings.HasPrefix(info.Name, walPrefix):
			ts, filename, offset, err := ParseWALObjectName(info.Name)
			if err != nil {
				return err
			}
			v.AddWAL(WALObjectInfo{Ts: ts, Filename: filename, Offset: offset, Size: info.Size})
		case strings.HasPrefix(info.Name, dbPrefix):
			n, err := ParseDBObjectName(info.Name)
			if err != nil {
				return err
			}
			if n.Sealed {
				k := dbKey{ts: n.Ts, gen: n.Gen}
				g := sealedGroups[k]
				if g == nil {
					g = &sealedGroup{typ: n.Type, baseTs: n.BaseTs, baseGen: n.BaseGen,
						hasBase: n.HasBase, parts: make(map[int]sealedPart)}
					sealedGroups[k] = g
					sealedOrder = append(sealedOrder, k)
				}
				g.names = append(g.names, info.Name)
				if n.Type != g.typ || n.HasBase != g.hasBase ||
					n.BaseTs != g.baseTs || n.BaseGen != g.baseGen {
					g.invalid = true
				}
				if _, dup := g.parts[n.Part]; dup {
					g.invalid = true
				} else {
					g.parts[n.Part] = sealedPart{
						name: info.Name, declared: n.Size, listed: info.Size, count: n.Count}
				}
				continue
			}
			k := sizedKey{ts: n.Ts, gen: n.Gen, size: n.Size,
				baseTs: n.BaseTs, baseGen: n.BaseGen, hasBase: n.HasBase}
			g := groups[k]
			if g == nil {
				g = &dbGroup{typ: n.Type, maxPart: -1}
				groups[k] = g
				order = append(order, k)
			}
			if n.Part < 0 {
				g.unsplitName = info.Name
				g.unsplitBytes = info.Size
			} else {
				g.splitNames = append(g.splitNames, info.Name)
				g.splitBytes += info.Size
				if n.Part > g.maxPart {
					g.maxPart = n.Part
				}
			}
		default:
			return fmt.Errorf("core: unrecognised object %q in cloud listing", info.Name)
		}
	}
	// recordOrphans remembers an incomplete group's names so GC can delete
	// them and NextDBGen never re-issues their generation.
	recordOrphans := func(ts int64, gen int, names []string) {
		if len(names) == 0 {
			return
		}
		v.mu.Lock()
		for _, name := range names {
			v.orphans[name] = OrphanPart{Name: name, Ts: ts, Gen: gen}
		}
		if gen+1 > v.orphanGen[ts] {
			v.orphanGen[ts] = gen + 1
		}
		// The orphan's ts proves a WAL timestamp at least that high was
		// once allocated; never re-issue it.
		if ts >= v.nextTs {
			v.nextTs = ts + 1
		}
		v.mu.Unlock()
	}
	// Part-complete objects are collected as candidates first: deltas must
	// additionally pass the chain rule below before entering the view, and
	// a failing delta's parts must be orphanable as a unit.
	type candidate struct {
		info  DBObjectInfo
		names []string
	}
	var cands []candidate
	for _, k := range order {
		g := groups[k]
		// Completeness: an unsplit object is complete when its stored
		// bytes match its declared size; a split set is complete when its
		// parts sum to the declared size (parts of one upload are disjoint
		// chunks of exactly that many bytes, so any missing or truncated
		// part falls short). Whichever form is complete becomes a
		// candidate; everything else in the group becomes an orphan.
		info := DBObjectInfo{Ts: k.ts, Gen: k.gen, Type: g.typ, Size: k.size,
			BaseTs: k.baseTs, BaseGen: k.baseGen}
		var orphanNames []string
		switch {
		case g.unsplitName != "" && g.unsplitBytes == k.size:
			cands = append(cands, candidate{info: info, names: []string{g.unsplitName}})
			orphanNames = g.splitNames
		case g.maxPart >= 0 && g.splitBytes == k.size:
			info.Parts = g.maxPart + 1
			cands = append(cands, candidate{info: info, names: g.splitNames})
			if g.unsplitName != "" {
				orphanNames = []string{g.unsplitName}
			}
		default:
			orphanNames = g.splitNames
			if g.unsplitName != "" {
				orphanNames = append(orphanNames, g.unsplitName)
			}
		}
		recordOrphans(k.ts, k.gen, orphanNames)
	}
	for _, k := range sealedOrder {
		g := sealedGroups[k]
		// Completeness for a part-sealed set: exactly one commit marker
		// (".n<count>" on the final part), indices contiguous 0..count-1,
		// and every part's stored bytes matching its name-declared sealed
		// size. The final part is PUT only by the worker that drew the last
		// index, but parts upload concurrently — the marker's presence
		// proves every sibling was handed to the pool, not that every PUT
		// landed, hence the per-index checks.
		count := 0
		markers := 0
		for _, p := range g.parts {
			if p.count > 0 {
				markers++
				count = p.count
			}
		}
		ok := !g.invalid && markers == 1 && len(g.parts) == count
		var sizes []int64
		var total int64
		if ok {
			sizes = make([]int64, count)
			for i := 0; i < count && ok; i++ {
				p, present := g.parts[i]
				ok = present && p.listed == p.declared
				if ok {
					sizes[i] = p.declared
					total += p.declared
				}
			}
		}
		if !ok {
			recordOrphans(k.ts, k.gen, g.names)
			continue
		}
		cands = append(cands, candidate{
			info: DBObjectInfo{Ts: k.ts, Gen: k.gen, Type: g.typ,
				Size: total, Parts: count, PartSizes: sizes,
				BaseTs: g.baseTs, BaseGen: g.baseGen},
			names: g.names,
		})
	}
	// The chain rule: a delta is usable only if its back-pointer resolves
	// to another candidate — a strictly older delta or a dump — and so on
	// until a dump roots the chain. Stranded deltas (base missing,
	// incomplete, newer, or of the wrong type) are orphaned whole; the
	// strictly-older requirement also makes pointer loops impossible.
	byKey := make(map[dbKey]*candidate, len(cands))
	for i := range cands {
		c := &cands[i]
		k := dbKey{ts: c.info.Ts, gen: c.info.Gen}
		if byKey[k] == nil {
			byKey[k] = c
		}
	}
	chainState := make(map[dbKey]int, len(cands)) // 1 rooted, 2 broken
	var rooted func(c *candidate) bool
	rooted = func(c *candidate) bool {
		if c.info.Type != Delta {
			return true
		}
		k := dbKey{ts: c.info.Ts, gen: c.info.Gen}
		if s := chainState[k]; s != 0 {
			return s == 1
		}
		base := byKey[dbKey{ts: c.info.BaseTs, gen: c.info.BaseGen}]
		ok := base != nil &&
			(base.info.Type == Dump || base.info.Type == Delta) &&
			base.info.Before(c.info) &&
			rooted(base)
		if ok {
			chainState[k] = 1
		} else {
			chainState[k] = 2
		}
		return ok
	}
	for i := range cands {
		c := &cands[i]
		if rooted(c) {
			if err := v.AddDB(c.info); err != nil {
				return err
			}
		} else {
			recordOrphans(c.info.Ts, c.info.Gen, c.names)
		}
	}
	return nil
}
