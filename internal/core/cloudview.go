package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/ginja-dr/ginja/internal/cloud"
)

// WALObjectInfo describes one WAL object Ginja knows to be in the cloud.
type WALObjectInfo struct {
	Ts       int64
	Filename string
	Offset   int64
	Size     int64
}

// Name returns the cloud object key.
func (w WALObjectInfo) Name() string { return WALObjectName(w.Ts, w.Filename, w.Offset) }

// DBObjectInfo describes one DB object (all its parts) in the cloud.
// (Ts, Gen) totally orders DB objects: Ts is the WAL timestamp captured at
// checkpoint begin and Gen disambiguates objects sharing a Ts.
type DBObjectInfo struct {
	Ts   int64
	Gen  int
	Type DBObjectType
	Size int64
	// Parts is the number of split parts; 0 means a single unsplit object.
	Parts int
}

// Before orders DB objects by (Ts, Gen).
func (d DBObjectInfo) Before(o DBObjectInfo) bool {
	if d.Ts != o.Ts {
		return d.Ts < o.Ts
	}
	return d.Gen < o.Gen
}

// PartNames returns the cloud keys holding this object's payload, in order.
func (d DBObjectInfo) PartNames() []string {
	if d.Parts == 0 {
		return []string{DBObjectName(d.Ts, d.Gen, d.Type, d.Size, -1)}
	}
	names := make([]string, d.Parts)
	for i := range names {
		names[i] = DBObjectName(d.Ts, d.Gen, d.Type, d.Size, i)
	}
	return names
}

type dbKey struct {
	ts  int64
	gen int
}

// CloudView is Ginja's local bookkeeping of the objects currently in the
// cloud (Algorithm 1 line 1). It also owns the WAL timestamp counter that
// totally orders uploads.
type CloudView struct {
	mu     sync.Mutex
	wal    map[int64]WALObjectInfo
	db     map[dbKey]*DBObjectInfo
	nextTs int64
	dbSize int64
}

// NewCloudView returns an empty view. The WAL timestamp counter starts at
// 1: timestamp 0 is reserved for the Boot dump so that recovery's
// "WAL objects newer than the last DB object" rule also covers the boot
// segments (see Boot).
func NewCloudView() *CloudView {
	return &CloudView{
		wal:    make(map[int64]WALObjectInfo),
		db:     make(map[dbKey]*DBObjectInfo),
		nextTs: 1,
	}
}

// NextWALTs allocates the next WAL timestamp.
func (v *CloudView) NextWALTs() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	ts := v.nextTs
	v.nextTs++
	return ts
}

// LastWALTs returns the most recently allocated WAL timestamp (0 if none).
func (v *CloudView) LastWALTs() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.nextTs - 1
}

// NextDBGen returns the next free generation number for DB objects with
// timestamp ts.
func (v *CloudView) NextDBGen(ts int64) int {
	v.mu.Lock()
	defer v.mu.Unlock()
	gen := 0
	for k := range v.db {
		if k.ts == ts && k.gen >= gen {
			gen = k.gen + 1
		}
	}
	return gen
}

// AddWAL records a WAL object as present in the cloud.
func (v *CloudView) AddWAL(info WALObjectInfo) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.wal[info.Ts] = info
	if info.Ts >= v.nextTs {
		v.nextTs = info.Ts + 1
	}
}

// AddDB records a DB object (or one part of it).
func (v *CloudView) AddDB(info DBObjectInfo) {
	v.mu.Lock()
	defer v.mu.Unlock()
	key := dbKey{ts: info.Ts, gen: info.Gen}
	if existing, ok := v.db[key]; ok {
		if info.Parts > existing.Parts {
			existing.Parts = info.Parts
		}
		return
	}
	cp := info
	v.db[key] = &cp
	v.dbSize += info.Size
	if info.Ts >= v.nextTs {
		v.nextTs = info.Ts + 1
	}
}

// DeleteWAL forgets a WAL object (after its cloud DELETE).
func (v *CloudView) DeleteWAL(ts int64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.wal, ts)
}

// DeleteDB forgets a DB object.
func (v *CloudView) DeleteDB(ts int64, gen int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	key := dbKey{ts: ts, gen: gen}
	if d, ok := v.db[key]; ok {
		v.dbSize -= d.Size
		delete(v.db, key)
	}
}

// TotalDBSize returns the summed payload size of all DB objects — the
// quantity compared against 150 % of the local database size to decide
// between an incremental checkpoint and a new dump (Algorithm 3 line 9).
func (v *CloudView) TotalDBSize() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.dbSize
}

// WALObjects returns the known WAL objects sorted by timestamp.
func (v *CloudView) WALObjects() []WALObjectInfo {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]WALObjectInfo, 0, len(v.wal))
	for _, w := range v.wal {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ts < out[j].Ts })
	return out
}

// DBObjects returns the known DB objects sorted by (Ts, Gen).
func (v *CloudView) DBObjects() []DBObjectInfo {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]DBObjectInfo, 0, len(v.db))
	for _, d := range v.db {
		out = append(out, *d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out
}

// LatestDump returns the most recent dump object, if any.
func (v *CloudView) LatestDump() (DBObjectInfo, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	var best *DBObjectInfo
	for _, d := range v.db {
		if d.Type != Dump {
			continue
		}
		if best == nil || best.Before(*d) {
			best = d
		}
	}
	if best == nil {
		return DBObjectInfo{}, false
	}
	return *best, true
}

// LoadFromList rebuilds the view from a cloud listing (Reboot and Recovery
// modes, Algorithm 1 lines 19–26). Unknown object names are reported as an
// error — a foreign object in the bucket is a configuration problem worth
// surfacing, not skipping silently.
//
// DB objects whose listed parts do not add up to the size declared in
// their name are pruned: they are the leftovers of an upload interrupted
// mid-way (a crash or outage between part PUTs — the local view never
// learned about them, so recovery must not either). Keeping them would
// make restoreTo fail on a missing part or a MAC mismatch; pruning
// restores the "view only holds fully durable objects" invariant. The
// orphan parts themselves stay in the bucket until GC sweeps them.
func (v *CloudView) LoadFromList(infos []cloud.ObjectInfo) error {
	v.mu.Lock()
	v.wal = make(map[int64]WALObjectInfo, len(infos))
	v.db = make(map[dbKey]*DBObjectInfo)
	v.nextTs = 1
	v.dbSize = 0
	v.mu.Unlock()
	listed := make(map[dbKey]int64) // summed on-cloud bytes per DB object
	for _, info := range infos {
		switch {
		case strings.HasPrefix(info.Name, walPrefix):
			ts, filename, offset, err := ParseWALObjectName(info.Name)
			if err != nil {
				return err
			}
			v.AddWAL(WALObjectInfo{Ts: ts, Filename: filename, Offset: offset, Size: info.Size})
		case strings.HasPrefix(info.Name, dbPrefix):
			ts, gen, typ, size, part, err := ParseDBObjectName(info.Name)
			if err != nil {
				return err
			}
			parts := 0
			if part >= 0 {
				parts = part + 1
			}
			v.AddDB(DBObjectInfo{Ts: ts, Gen: gen, Type: typ, Size: size, Parts: parts})
			listed[dbKey{ts: ts, gen: gen}] += info.Size
		default:
			return fmt.Errorf("core: unrecognised object %q in cloud listing", info.Name)
		}
	}
	for _, d := range v.DBObjects() {
		if listed[dbKey{ts: d.Ts, gen: d.Gen}] != d.Size {
			v.DeleteDB(d.Ts, d.Gen)
		}
	}
	return nil
}
