package core

import (
	"testing"

	"github.com/ginja-dr/ginja/internal/cloud"
)

// sealedListing builds the cloud listing of one part-sealed DB object:
// every part's name declares that part's own sealed size, the final part
// carries the ".n<count>" commit marker, and the listed bytes match the
// declared sizes.
func sealedListing(ts int64, gen int, typ DBObjectType, sizes []int64) []cloud.ObjectInfo {
	infos := make([]cloud.ObjectInfo, len(sizes))
	for i, sz := range sizes {
		count := 0
		if i == len(sizes)-1 {
			count = len(sizes)
		}
		infos[i] = cloud.ObjectInfo{Name: DBPartName(ts, gen, typ, sz, i, count), Size: sz}
	}
	return infos
}

func loadView(t *testing.T, infos []cloud.ObjectInfo) *CloudView {
	t.Helper()
	v := NewCloudView()
	if err := v.LoadFromList(infos); err != nil {
		t.Fatalf("LoadFromList: %v", err)
	}
	return v
}

// TestLoadFromListSealedComplete: a complete part-sealed set enters the
// view as one object whose size is the sum of its parts and whose
// PartSizes allow per-part fetch+decode on recovery.
func TestLoadFromListSealedComplete(t *testing.T) {
	sizes := []int64{100, 200, 50}
	v := loadView(t, sealedListing(7, 0, Dump, sizes))
	objs := v.DBObjects()
	if len(objs) != 1 {
		t.Fatalf("DBObjects = %+v, want one", objs)
	}
	d := objs[0]
	if d.Ts != 7 || d.Gen != 0 || d.Type != Dump || d.Size != 350 || d.Parts != 3 || !d.PartSealed() {
		t.Fatalf("loaded object = %+v", d)
	}
	for i, sz := range sizes {
		if d.PartSizes[i] != sz {
			t.Fatalf("PartSizes = %v, want %v", d.PartSizes, sizes)
		}
	}
	if orphans := v.OrphanParts(); len(orphans) != 0 {
		t.Fatalf("complete set recorded orphans: %+v", orphans)
	}
	// PartNames must reproduce the exact listing so GC and recovery address
	// the same objects the uploader wrote.
	names := d.PartNames()
	for i, info := range sealedListing(7, 0, Dump, sizes) {
		if names[i] != info.Name {
			t.Fatalf("PartNames[%d] = %q, want %q", i, names[i], info.Name)
		}
	}
}

// TestLoadFromListSealedIncomplete: every way a crashed upload can strand
// a partial part-sealed set must keep the object out of the view and
// record its parts as orphans, with the generation slot retired.
func TestLoadFromListSealedIncomplete(t *testing.T) {
	full := func() []cloud.ObjectInfo { return sealedListing(9, 1, Dump, []int64{100, 200, 50}) }
	for _, tc := range []struct {
		name    string
		listing []cloud.ObjectInfo
	}{
		{"missing commit marker", full()[:2]},
		{"missing middle part", []cloud.ObjectInfo{full()[0], full()[2]}},
		{"truncated part bytes", func() []cloud.ObjectInfo {
			l := full()
			l[1].Size-- // listed bytes fall short of the name-declared sealed size
			return l
		}()},
		{"duplicate part index", append(full(),
			cloud.ObjectInfo{Name: DBPartName(9, 1, Dump, 777, 1, 0), Size: 777})},
		{"mixed types on one slot", append(full(),
			cloud.ObjectInfo{Name: DBPartName(9, 1, Checkpoint, 60, 3, 0), Size: 60})},
		{"two commit markers", append(full()[:2],
			cloud.ObjectInfo{Name: DBPartName(9, 1, Dump, 50, 2, 3), Size: 50},
			cloud.ObjectInfo{Name: DBPartName(9, 1, Dump, 60, 3, 4), Size: 60})},
	} {
		t.Run(tc.name, func(t *testing.T) {
			v := loadView(t, tc.listing)
			if objs := v.DBObjects(); len(objs) != 0 {
				t.Fatalf("incomplete set entered the view: %+v", objs)
			}
			orphans := v.OrphanParts()
			if len(orphans) != len(tc.listing) {
				t.Fatalf("recorded %d orphans, want every listed part (%d): %+v",
					len(orphans), len(tc.listing), orphans)
			}
			// The orphaned generation must never be handed out again while
			// its parts are still in the bucket.
			if gen := v.NextDBGen(9); gen != 2 {
				t.Fatalf("NextDBGen(9) = %d, want 2 (orphan held gen 1)", gen)
			}
		})
	}
}

// TestLoadFromListSealedAndLegacyCoexist: a bucket written by two code
// generations — a legacy whole-sealed split object and a part-sealed one —
// must load both, and an incomplete sealed set must not shadow a complete
// legacy object on a different slot.
func TestLoadFromListSealedAndLegacyCoexist(t *testing.T) {
	listing := []cloud.ObjectInfo{
		// Legacy: one object sealed whole (declared size 300), split into
		// two raw chunks that sum to it.
		{Name: DBObjectName(3, 0, Dump, 300, 0), Size: 256},
		{Name: DBObjectName(3, 0, Dump, 300, 1), Size: 44},
	}
	listing = append(listing, sealedListing(7, 0, Checkpoint, []int64{128, 64})...)
	// And a stranded sealed upload on its own slot.
	listing = append(listing, cloud.ObjectInfo{Name: DBPartName(8, 0, Checkpoint, 99, 0, 0), Size: 99})

	v := loadView(t, listing)
	objs := v.DBObjects()
	if len(objs) != 2 {
		t.Fatalf("DBObjects = %+v, want legacy dump + sealed checkpoint", objs)
	}
	var sawLegacy, sawSealed bool
	for _, d := range objs {
		switch {
		case d.Ts == 3 && d.Type == Dump && d.Size == 300 && d.Parts == 2 && !d.PartSealed():
			sawLegacy = true
		case d.Ts == 7 && d.Type == Checkpoint && d.Size == 192 && d.Parts == 2 && d.PartSealed():
			sawSealed = true
		}
	}
	if !sawLegacy || !sawSealed {
		t.Fatalf("legacy=%v sealed=%v, objects: %+v", sawLegacy, sawSealed, objs)
	}
	if orphans := v.OrphanParts(); len(orphans) != 1 {
		t.Fatalf("orphans = %+v, want just the stranded ts-8 part", orphans)
	}
}
