package core

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/sealer"
)

// gatedStore blocks selected Puts until released, for deterministic
// pipeline tests.
type gatedStore struct {
	cloud.ObjectStore

	mu      sync.Mutex
	blocked map[string]chan struct{} // substring -> release channel
}

func newGatedStore() *gatedStore {
	return &gatedStore{ObjectStore: cloud.NewMemStore(), blocked: make(map[string]chan struct{})}
}

// block makes every Put whose name contains substr wait until release.
func (g *gatedStore) block(substr string) chan struct{} {
	ch := make(chan struct{})
	g.mu.Lock()
	g.blocked[substr] = ch
	g.mu.Unlock()
	return ch
}

func (g *gatedStore) Put(ctx context.Context, name string, data []byte) error {
	g.mu.Lock()
	var gate chan struct{}
	for substr, ch := range g.blocked {
		if strings.Contains(name, substr) {
			gate = ch
			break
		}
	}
	g.mu.Unlock()
	if gate != nil {
		select {
		case <-gate:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return g.ObjectStore.Put(ctx, name, data)
}

func testParams(b, s int) Params {
	p := DefaultParams()
	p.Batch = b
	p.Safety = s
	p.BatchTimeout = 50 * time.Millisecond
	p.SafetyTimeout = 10 * time.Second
	p.Uploaders = 3
	return p
}

func startPipeline(t *testing.T, store cloud.ObjectStore, p Params) *pipeline {
	t.Helper()
	params, err := p.Validate()
	if err != nil {
		t.Fatal(err)
	}
	pipe := newPipeline(NewCloudView(), store, sealer.NewPlain(), params)
	pipe.start(0)
	t.Cleanup(func() { pipe.drainAndStop(time.Second) })
	return pipe
}

func submitN(t *testing.T, pipe *pipeline, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		// Distinct offsets so aggregation does not collapse them.
		if _, err := pipe.submit("pg_xlog/0001", int64(i)*8192, []byte("page")); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
}

func TestPipelineUploadsBatches(t *testing.T) {
	store := cloud.NewMemStore()
	pipe := startPipeline(t, store, testParams(2, 100))
	submitN(t, pipe, 10)
	if !pipe.q.drain(2 * time.Second) {
		t.Fatal("queue did not drain")
	}
	infos, err := store.List(context.Background(), "WAL/")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) == 0 {
		t.Fatal("no WAL objects uploaded")
	}
	if got := pipe.stats.batches.Load(); got < 5 {
		t.Fatalf("batches = %d, want ≥ 5 for 10 updates at B=2", got)
	}
}

func TestPipelineAggregationCoalescesSamePage(t *testing.T) {
	// 10 rewrites of the SAME page within one batch must produce a single
	// WAL object (the PUT-cost reduction of §5.3).
	store := cloud.NewMemStore()
	pipe := startPipeline(t, store, testParams(10, 100))
	for i := 0; i < 10; i++ {
		if _, err := pipe.submit("pg_xlog/0001", 0, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if !pipe.q.drain(2 * time.Second) {
		t.Fatal("queue did not drain")
	}
	if got := pipe.stats.walObjects.Load(); got != 1 {
		t.Fatalf("uploaded %d WAL objects, want 1 (aggregated)", got)
	}
}

func TestPipelineBatchTimeoutFlushesPartialBatch(t *testing.T) {
	// B=100 but only 3 updates: TB must flush them.
	store := cloud.NewMemStore()
	p := testParams(100, 1000)
	p.BatchTimeout = 30 * time.Millisecond
	pipe := startPipeline(t, store, p)
	submitN(t, pipe, 3)
	if !pipe.q.drain(2 * time.Second) {
		t.Fatal("TB did not flush the partial batch")
	}
	if got := pipe.stats.walObjects.Load(); got == 0 {
		t.Fatal("nothing uploaded")
	}
}

func TestPipelineSafetyBlocksCommits(t *testing.T) {
	// Figure 2 semantics: with S pending un-acknowledged updates, the
	// next submit blocks until the cloud acknowledges.
	store := newGatedStore()
	release := store.block("WAL/")
	p := testParams(2, 4)
	pipe := startPipeline(t, store, p)

	for i := 0; i < 4; i++ { // fill to S; none of these may block long
		done := make(chan struct{})
		go func(i int) {
			defer close(done)
			pipe.submit("pg_xlog/0001", int64(i)*8192, []byte("x")) //nolint:errcheck
		}(i)
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Fatalf("submit %d blocked below S", i)
		}
	}

	blocked := make(chan struct{})
	go func() {
		defer close(blocked)
		pipe.submit("pg_xlog/0001", 5*8192, []byte("x")) //nolint:errcheck
	}()
	select {
	case <-blocked:
		t.Fatal("submit beyond S returned while uploads were blocked")
	case <-time.After(100 * time.Millisecond):
	}

	close(release) // cloud comes back; everything drains and unblocks
	select {
	case <-blocked:
	case <-time.After(5 * time.Second):
		t.Fatal("submit did not unblock after uploads completed")
	}
	if pipe.q.blockedDuration() == 0 {
		t.Fatal("blocked time not recorded")
	}
}

func TestPipelineConsecutiveTsUnlock(t *testing.T) {
	// Three batches upload in parallel; the FIRST one's PUT is stalled.
	// Even when later timestamps are acknowledged, the queue must not
	// release anything (the consecutive-ts rule of §5.3) — otherwise a
	// disaster now would lose acknowledged-but-unrecoverable updates.
	store := newGatedStore()
	release := store.block("WAL/1_") // stall ts=1 only
	p := testParams(1, 100)          // B=1: each update is its own object
	pipe := startPipeline(t, store, p)

	submitN(t, pipe, 3) // ts 1, 2, 3 (none blocks: S=100)

	// Wait until ts 2 and 3 are in the cloud.
	deadline := time.Now().Add(2 * time.Second)
	for store.countUploaded() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if store.countUploaded() < 2 {
		t.Fatal("later objects never uploaded")
	}
	if got := pipe.q.size(); got != 3 {
		t.Fatalf("queue size = %d, want 3 (nothing released before ts=1 lands)", got)
	}
	close(release)
	if !pipe.q.drain(2 * time.Second) {
		t.Fatal("queue did not drain after ts=1 released")
	}
}

func (g *gatedStore) countUploaded() int {
	infos, err := g.ObjectStore.List(context.Background(), "WAL/")
	if err != nil {
		return 0
	}
	return len(infos)
}

func TestPipelineRetriesTransientFailures(t *testing.T) {
	store := &flakyStore{ObjectStore: cloud.NewMemStore(), failFirst: 3}
	p := testParams(1, 10)
	p.RetryBaseDelay = time.Millisecond
	pipe := startPipeline(t, store, p)
	submitN(t, pipe, 1)
	if !pipe.q.drain(2 * time.Second) {
		t.Fatal("queue did not drain despite retries")
	}
	if pipe.stats.retries.Load() == 0 {
		t.Fatal("no retries recorded")
	}
	if err := pipe.lastErr(); err != nil {
		t.Fatalf("pipeline error = %v", err)
	}
}

func TestPipelineFailsAfterRetryBudget(t *testing.T) {
	store := &flakyStore{ObjectStore: cloud.NewMemStore(), failFirst: 1 << 30}
	p := testParams(1, 2)
	p.UploadRetries = 2
	p.RetryBaseDelay = time.Millisecond
	pipe := startPipeline(t, store, p)
	pipe.submit("pg_xlog/0001", 0, []byte("x")) //nolint:errcheck
	deadline := time.Now().Add(2 * time.Second)
	for pipe.lastErr() == nil && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if pipe.lastErr() == nil {
		t.Fatal("pipeline did not surface the persistent failure")
	}
	// Subsequent submits must return the error instead of hanging.
	if _, err := pipe.submit("pg_xlog/0001", 8192, []byte("x")); err == nil {
		t.Fatal("submit after failure returned nil")
	}
}

type flakyStore struct {
	cloud.ObjectStore

	mu        sync.Mutex
	calls     int
	failFirst int
}

func (f *flakyStore) Put(ctx context.Context, name string, data []byte) error {
	f.mu.Lock()
	f.calls++
	fail := f.calls <= f.failFirst
	f.mu.Unlock()
	if fail {
		return context.DeadlineExceeded
	}
	return f.ObjectStore.Put(ctx, name, data)
}

func TestPipelineSplitsOversizedObjects(t *testing.T) {
	store := cloud.NewMemStore()
	p := testParams(4, 100)
	p.MaxObjectSize = 1024
	pipe := startPipeline(t, store, p)
	// Four contiguous 1 KiB pages merge into one 4 KiB run, which must be
	// split back into 4 objects of ≤ 1 KiB.
	for i := 0; i < 4; i++ {
		if _, err := pipe.submit("pg_xlog/0001", int64(i)*1024, make([]byte, 1024)); err != nil {
			t.Fatal(err)
		}
	}
	if !pipe.q.drain(2 * time.Second) {
		t.Fatal("queue did not drain")
	}
	if got := pipe.stats.walObjects.Load(); got != 4 {
		t.Fatalf("uploaded %d objects, want 4 after split", got)
	}
}

func TestPipelineNoLossConfiguration(t *testing.T) {
	// S = B = 1: every submit must wait for its own upload (synchronous
	// replication, the paper's No-Loss column).
	store := cloud.NewMemStore()
	pipe := startPipeline(t, store, testParams(1, 1))
	for i := 0; i < 5; i++ {
		if _, err := pipe.submit("pg_xlog/0001", int64(i)*8192, []byte("x")); err != nil {
			t.Fatal(err)
		}
		// Hmm: with S=1, put blocks while len(items) > 1; a single item
		// does not block, so after submit returns there may be ≤ 1
		// pending. The durability point is the *next* submit. Verify the
		// queue never holds more than 1.
		if got := pipe.q.size(); got > 1 {
			t.Fatalf("queue size %d with S=1", got)
		}
	}
	if !pipe.q.drain(2 * time.Second) {
		t.Fatal("queue did not drain")
	}
}

func TestPipelineSafetyTimeoutBlocks(t *testing.T) {
	// TS expires with one pending update whose upload is stalled: the
	// next submit must block even though size ≤ S.
	store := newGatedStore()
	release := store.block("WAL/")
	p := testParams(1, 100)
	p.SafetyTimeout = 30 * time.Millisecond
	pipe := startPipeline(t, store, p)

	if _, err := pipe.submit("pg_xlog/0001", 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(80 * time.Millisecond) // let TS fire

	blocked := make(chan struct{})
	go func() {
		defer close(blocked)
		pipe.submit("pg_xlog/0001", 8192, []byte("x")) //nolint:errcheck
	}()
	select {
	case <-blocked:
		t.Fatal("submit returned although TS had expired with pending uploads")
	case <-time.After(100 * time.Millisecond):
	}
	close(release)
	select {
	case <-blocked:
	case <-time.After(5 * time.Second):
		t.Fatal("submit did not unblock after uploads completed")
	}
}

func TestCommitQueueDrainEmpty(t *testing.T) {
	q := newCommitQueue(DefaultParams())
	defer q.close()
	if !q.drain(10 * time.Millisecond) {
		t.Fatal("empty queue must drain immediately")
	}
}

func TestCommitQueuePutAfterClose(t *testing.T) {
	q := newCommitQueue(DefaultParams())
	q.close()
	if _, err := q.put(update{path: "f"}); err != ErrQueueClosed {
		t.Fatalf("put after close = %v", err)
	}
}
