package core_test

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/core"
	"github.com/ginja-dr/ginja/internal/dbevent"
	"github.com/ginja-dr/ginja/internal/sealer"
	"github.com/ginja-dr/ginja/internal/vfs"
)

// TestSingleFileBiggerThanMaxObjectSizeStreams grows one data file well
// past MaxObjectSize, forces a dump, and takes it through disaster
// recovery: the streaming data path must split that single file across
// several independently sealed parts (".s<part>" names with a final
// ".n<count>" commit marker) and recovery must decode each part as it
// arrives, reproducing every row.
func TestSingleFileBiggerThanMaxObjectSizeStreams(t *testing.T) {
	params := fastParams()
	params.MaxObjectSize = 2048
	params.DumpThreshold = 1.0 // the first checkpoint becomes a dump
	params.CheckpointUploaders = 3
	r := pgRig(t, params)
	if err := r.db.CreateTable("big", 16); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		r.put(t, "big", fmt.Sprintf("k%02d", i), strings.Repeat("v", 512))
	}
	if !r.g.Flush(5 * time.Second) {
		t.Fatal("flush timed out")
	}
	if err := r.db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	waitCheckpointUploaded(t, r.g, 1)

	// The premise: at least one data-class file really is bigger than
	// MaxObjectSize, so a single file must span parts.
	proc := dbevent.NewPGProcessor()
	files, err := vfs.Walk(r.localFS, "")
	if err != nil {
		t.Fatal(err)
	}
	var biggest int64
	for _, p := range files {
		if proc.FileKind(p) != dbevent.KindData {
			continue
		}
		if fi, err := r.localFS.Stat(p); err == nil && fi.Size() > biggest {
			biggest = fi.Size()
		}
	}
	if biggest <= params.MaxObjectSize {
		t.Fatalf("largest data file is %d B, not above MaxObjectSize %d — test premise broken",
			biggest, params.MaxObjectSize)
	}

	// The dump must be in the part-sealed format: ".s" parts and exactly
	// one ".n" commit marker per multi-part object.
	infos, err := r.store.List(context.Background(), "DB/")
	if err != nil {
		t.Fatal(err)
	}
	sealedParts, markers := 0, 0
	for _, info := range infos {
		n, err := core.ParseDBObjectName(info.Name)
		if err != nil {
			t.Fatalf("unparseable name %q: %v", info.Name, err)
		}
		if n.Sealed {
			sealedParts++
			if n.Count > 0 {
				markers++
			}
			if info.Size != n.Size {
				t.Fatalf("part %q lists %d B, name declares %d", info.Name, info.Size, n.Size)
			}
		}
	}
	if sealedParts < 2 || markers == 0 {
		t.Fatalf("dump not part-sealed: %d sealed parts, %d markers, listing %+v",
			sealedParts, markers, infos)
	}

	db2 := r.disasterRecover(t)
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("k%02d", i)
		v, err := db2.Get("big", []byte(key))
		if err != nil {
			t.Fatalf("recovered Get(%s): %v", key, err)
		}
		if string(v) != strings.Repeat("v", 512) {
			t.Fatalf("recovered %s corrupted (%d bytes)", key, len(v))
		}
	}
}

// TestLegacyWholeSealedBigFileRecovery hand-builds the pre-streaming
// format — a single file far bigger than MaxObjectSize encoded and sealed
// as ONE envelope, then chopped into raw ".p<part>" chunks whose names all
// carry the total sealed size — and verifies a current build recovers it
// byte-identically. Buckets written by older versions must keep restoring.
func TestLegacyWholeSealedBigFileRecovery(t *testing.T) {
	const maxObj = 4096
	params := core.DefaultParams()
	params.MaxObjectSize = maxObj
	seal, err := sealer.New(sealer.Options{
		Compress: params.Compress,
		Encrypt:  params.Encrypt,
		Password: params.Password,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Incompressible deterministic content so the sealed envelope really
	// spans several chunks even with compression on.
	big := make([]byte, 3*maxObj)
	x := uint32(88172645)
	for i := range big {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		big[i] = byte(x)
	}
	writes := []core.FileWrite{
		{Path: "base/1/huge", Data: big, Whole: true},
		{Path: "base/1/marker", Data: []byte("legacy-whole-sealed"), Whole: true},
	}
	sealed, err := seal.Seal(core.EncodeWrites(writes))
	if err != nil {
		t.Fatal(err)
	}
	size := int64(len(sealed))
	nParts := int((size + maxObj - 1) / maxObj)
	if nParts < 2 {
		t.Fatalf("sealed payload (%d B) did not span MaxObjectSize %d", size, maxObj)
	}
	ctx := context.Background()
	store := cloud.NewMemStore()
	for i := 0; i < nParts; i++ {
		lo := int64(i) * maxObj
		hi := min(lo+maxObj, size)
		if err := store.Put(ctx, core.DBObjectName(0, 0, core.Dump, size, i), sealed[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}

	g, err := core.New(vfs.NewMemFS(), store, dbevent.NewPGProcessor(), params)
	if err != nil {
		t.Fatal(err)
	}
	target := vfs.NewMemFS()
	if err := g.RecoverAt(ctx, target, -1); err != nil {
		t.Fatalf("legacy-format recovery: %v", err)
	}
	for _, w := range writes {
		got, err := vfs.ReadFile(target, w.Path)
		if err != nil {
			t.Fatalf("recovered %s: %v", w.Path, err)
		}
		if !bytes.Equal(got, w.Data) {
			t.Fatalf("recovered %s differs (%d B vs %d B)", w.Path, len(got), len(w.Data))
		}
	}
}
