package core

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"testing"
	"time"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/dbevent"
	"github.com/ginja-dr/ginja/internal/minidb"
	"github.com/ginja-dr/ginja/internal/minidb/pgengine"
	"github.com/ginja-dr/ginja/internal/vfs"
)

// deltaParams tunes the checkpointer so a small test workload actually
// exercises delta chains: per-commit WAL objects (exact recovery points),
// no compression and a near-1 DumpThreshold so cloud WAL bytes cross the
// re-dump rule every few commits, and a short MaxDeltaChain so the run
// also folds chains back into full dumps.
func deltaParams(deltas bool) Params {
	p := pitrParams()
	p.Compress = false
	p.DumpThreshold = 1.0
	if deltas {
		p.DeltaCheckpoints = true
		p.MaxDeltaChain = 4
	}
	return p
}

// deltaOp is one step of the deterministic workload shared by the paired
// delta/full runs in the chain-prefix property.
type deltaOp struct {
	key, val string
	del      bool
	ckpt     bool // checkpoint + settle after this commit
}

// deltaWorkload derives the op sequence from the seed alone so two
// instances can execute byte-identical histories: a bulk fill that forms
// a mostly-clean base, then rounds of small updates (the ~1 % dirty
// pattern deltas exist for) with periodic checkpoints to surface them.
func deltaWorkload(seed int64) []deltaOp {
	rng := rand.New(rand.NewSource(seed))
	var ops []deltaOp
	for i := 0; i < 32; i++ {
		ops = append(ops, deltaOp{
			key:  fmt.Sprintf("bulk-%02d", i),
			val:  fmt.Sprintf("fill-%d-%d", i, rng.Intn(1000)),
			ckpt: i == 31,
		})
	}
	hot := []string{"hot-a", "hot-b", "hot-c"}
	steps := 56 + rng.Intn(8)
	for step := 0; step < steps; step++ {
		// Alternate a hot key with a random bulk row so each checkpoint
		// dirties a few distinct pages — enough cloud DB bytes to cross
		// the re-dump rule repeatedly without rewriting the whole base.
		key := hot[rng.Intn(len(hot))]
		if step%2 == 1 {
			key = fmt.Sprintf("bulk-%02d", rng.Intn(32))
		}
		op := deltaOp{key: key, ckpt: step%2 == 1}
		if rng.Intn(6) == 0 {
			op.del = true
		} else {
			op.val = fmt.Sprintf("s%d-v%d", step, rng.Intn(1000))
		}
		ops = append(ops, op)
	}
	return ops
}

// deltaRunResult is one instance's history: the store its objects live
// in, plus a recovery point (WAL frontier ts + expected logical state)
// recorded after every committed op.
type deltaRunResult struct {
	store *cloud.MemStore
	ts    []int64
	snaps []map[string]string
}

func runDeltaHistory(t *testing.T, ops []deltaOp, deltas bool) *deltaRunResult {
	t.Helper()
	params := deltaParams(deltas)
	store := cloud.NewMemStore()
	g, err := New(vfs.NewMemFS(), store, dbevent.NewPGProcessor(), params)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Boot(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	db, err := minidb.Open(g.FS(), pgengine.NewWithSizes(512, 8192, 1024), minidb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("kv", 0); err != nil {
		t.Fatal(err)
	}
	res := &deltaRunResult{store: store}
	cur := map[string]string{}
	for _, op := range ops {
		if op.del {
			if err := db.Update(func(tx *minidb.Txn) error {
				return tx.Delete("kv", []byte(op.key))
			}); err != nil {
				t.Fatal(err)
			}
			delete(cur, op.key)
		} else {
			if err := db.Update(func(tx *minidb.Txn) error {
				return tx.Put("kv", []byte(op.key), []byte(op.val))
			}); err != nil {
				t.Fatal(err)
			}
			cur[op.key] = op.val
		}
		if !g.Flush(5 * time.Second) {
			t.Fatal("flush")
		}
		snap := make(map[string]string, len(cur))
		for k, v := range cur {
			snap[k] = v
		}
		res.ts = append(res.ts, g.view.LastWALTs())
		res.snaps = append(res.snaps, snap)
		if op.ckpt {
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			if !g.SyncCheckpoints(5 * time.Second) {
				t.Fatal("checkpoint settle")
			}
		}
	}
	if deltas {
		st := g.Stats()
		if st.Deltas == 0 {
			t.Fatalf("workload shipped no delta checkpoints (stats %+v) — property not exercised", st)
		}
		if st.Dumps < 2 {
			t.Fatalf("workload never folded a chain into a fresh base (dumps=%d)", st.Dumps)
		}
	}
	return res
}

// readTree flattens a recovered FS into path → contents for byte
// comparison.
func readTree(t *testing.T, fsys vfs.FS) map[string][]byte {
	t.Helper()
	paths, err := vfs.Walk(fsys, "")
	if err != nil {
		t.Fatal(err)
	}
	tree := make(map[string][]byte, len(paths))
	for _, p := range paths {
		f, err := fsys.OpenFile(p, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		size, err := f.Size()
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, size)
		if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		f.Close()
		tree[p] = buf
	}
	return tree
}

// TestDeltaHotPathAllocs pins the cost delta checkpoints add to the
// write hot path at zero: the WAL commit path exits OnBeforeWrite at the
// kind filter, a data write through an open gate is one mutex-guarded
// map check, and re-dirtying an already-tracked page coalesces into the
// existing range without allocating.
func TestDeltaHotPathAllocs(t *testing.T) {
	g, err := New(vfs.NewMemFS(), cloud.NewMemStore(), dbevent.NewPGProcessor(), deltaParams(true))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Boot(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if n := testing.AllocsPerRun(200, func() {
		g.OnBeforeWrite("pg_xlog/000000010000000000000001", 0, nil)
	}); n != 0 {
		t.Fatalf("WAL OnBeforeWrite allocates %.1f/op with delta checkpoints enabled, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		g.OnBeforeWrite("base/16384/kv", 0, nil)
	}); n != 0 {
		t.Fatalf("data OnBeforeWrite through an open gate allocates %.1f/op, want 0", n)
	}
	g.ckpt.dirty.markWrite("base/16384/kv", 0, 8192) // first mark inserts the range
	if n := testing.AllocsPerRun(200, func() {
		g.ckpt.dirty.markWrite("base/16384/kv", 0, 8192)
	}); n != 0 {
		t.Fatalf("re-marking a dirty page allocates %.1f/op, want 0", n)
	}
}

// TestDeltaChainPrefixProperty is the incremental-checkpoint correctness
// property: run the SAME deterministic workload twice — once with delta
// checkpoints (bases, chained deltas, folds) and once with classic full
// re-dumps — and require that recovery at EVERY recorded commit
// timestamp produces byte-identical file trees from both stores, and
// that the delta-side tree decodes to exactly the expected logical
// prefix. Any delta that misses a dirty page, any chain resolved in the
// wrong order, and any fold that drops state diverges the trees.
func TestDeltaChainPrefixProperty(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			ops := deltaWorkload(seed)
			withDeltas := runDeltaHistory(t, ops, true)
			withFull := runDeltaHistory(t, ops, false)
			if len(withDeltas.ts) != len(withFull.ts) {
				t.Fatalf("runs diverged: %d vs %d recovery points", len(withDeltas.ts), len(withFull.ts))
			}
			params := deltaParams(false)
			for i := range withDeltas.ts {
				dtFS, ffFS := vfs.NewMemFS(), vfs.NewMemFS()
				gd, err := New(vfs.NewMemFS(), withDeltas.store, dbevent.NewPGProcessor(), params)
				if err != nil {
					t.Fatal(err)
				}
				if err := gd.RecoverAt(context.Background(), dtFS, withDeltas.ts[i]); err != nil {
					t.Fatalf("delta-store RecoverAt(%d): %v", withDeltas.ts[i], err)
				}
				gf, err := New(vfs.NewMemFS(), withFull.store, dbevent.NewPGProcessor(), params)
				if err != nil {
					t.Fatal(err)
				}
				if err := gf.RecoverAt(context.Background(), ffFS, withFull.ts[i]); err != nil {
					t.Fatalf("full-store RecoverAt(%d): %v", withFull.ts[i], err)
				}
				dt, ff := readTree(t, dtFS), readTree(t, ffFS)
				if len(dt) != len(ff) {
					t.Fatalf("point %d: tree size differs: delta %d files, full %d files", i, len(dt), len(ff))
				}
				var names []string
				for p := range ff {
					names = append(names, p)
				}
				sort.Strings(names)
				for _, p := range names {
					if !bytes.Equal(dt[p], ff[p]) {
						t.Fatalf("point %d (ts %d): file %q differs between delta-chain and full-dump recovery (%d vs %d bytes)",
							i, withDeltas.ts[i], p, len(dt[p]), len(ff[p]))
					}
				}
				// The byte-identical tree must also decode to exactly the
				// recorded logical prefix.
				db2, err := minidb.Open(dtFS, pgengine.NewWithSizes(512, 8192, 1024), minidb.Options{})
				if err != nil {
					t.Fatalf("point %d: open recovered tree: %v", i, err)
				}
				snap := withDeltas.snaps[i]
				for k, want := range snap {
					got, gerr := db2.Get("kv", []byte(k))
					if gerr != nil || string(got) != want {
						t.Fatalf("point %d key %s: got %q, %v; want %q", i, k, got, gerr, want)
					}
				}
				for _, k := range []string{"hot-a", "hot-b", "hot-c"} {
					if _, exists := snap[k]; !exists {
						if got, gerr := db2.Get("kv", []byte(k)); gerr == nil {
							t.Fatalf("point %d key %s: present as %q; want absent", i, k, got)
						}
					}
				}
			}
		})
	}
}
