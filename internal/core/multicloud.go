package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/obs"
)

// ReplicatedStore replicates objects across several clouds for
// provider-scale fault tolerance (paper §6: "our system supports the
// replication of objects in multiple clouds, for tolerating
// provider-scale failures", in the spirit of DepSky [19]).
//
// Writes must reach a majority of providers; reads are served by the
// first provider that has the object; deletes are best-effort everywhere
// (a leftover object on a crashed provider is garbage, not a safety
// problem, and will be re-deleted by a later GC pass after Reboot).
//
// Listing is health-aware and pessimistic about history it has not
// observed. A fresh process starts with List fanning out to every
// reachable replica and merging the union of names: replica health flags
// live in memory, so a replica that missed quorum writes during an outage
// seen only by a previous (now dead) process looks healthy here — and a
// freshly started process is exactly the disaster-recovery case where a
// stale first responder means silent data loss. Only after a Repair pass
// in this process has verified full redundancy does List trust a single
// first responder; any subsequent failure marks the replica unhealthy —
// stickily, until the next successful Repair — and merging resumes. An
// object a stale replica still lists after a missed GC round is harmless
// garbage (recovery always picks the newest dump, and Repair removes
// minority leftovers), whereas an object missing from a stale first
// responder is silent data loss at recovery time.
type ReplicatedStore struct {
	stores []cloud.ObjectStore
	// unhealthy[i] is set when replica i fails any operation and cleared
	// only by a Repair pass that restored it to full redundancy.
	unhealthy []atomic.Bool
	// verified is set once a Repair pass in this process reached every
	// provider and restored full redundancy. Until then List always
	// merges: in-memory health flags say nothing about outages a previous
	// incarnation observed.
	verified atomic.Bool
}

var _ cloud.ObjectStore = (*ReplicatedStore)(nil)

// NewReplicatedStore combines the given stores. At least one is required.
func NewReplicatedStore(stores ...cloud.ObjectStore) (*ReplicatedStore, error) {
	if len(stores) == 0 {
		return nil, errors.New("core: replicated store needs at least one backend")
	}
	return &ReplicatedStore{stores: stores, unhealthy: make([]atomic.Bool, len(stores))}, nil
}

// NewObservedReplicatedStore is NewReplicatedStore with every provider
// wrapped in an obs.InstrumentedStore (backend labels "replica-0",
// "replica-1", ...), so /metrics carries per-replica op latency/error
// counters and /healthz reports each replica's reachability — the
// per-provider availability view of the paper's multi-cloud mode (§6).
func NewObservedReplicatedStore(reg *obs.Registry, stores ...cloud.ObjectStore) (*ReplicatedStore, error) {
	if reg == nil {
		return NewReplicatedStore(stores...)
	}
	wrapped := make([]cloud.ObjectStore, len(stores))
	for i, s := range stores {
		wrapped[i] = obs.InstrumentStore(s, reg, fmt.Sprintf("replica-%d", i))
	}
	return NewReplicatedStore(wrapped...)
}

// majority returns the write quorum size.
func (r *ReplicatedStore) majority() int { return len(r.stores)/2 + 1 }

// Put implements cloud.ObjectStore: success on a majority of providers.
func (r *ReplicatedStore) Put(ctx context.Context, name string, data []byte) error {
	type result struct{ err error }
	results := make(chan result, len(r.stores))
	for i, s := range r.stores {
		go func(i int, s cloud.ObjectStore) {
			err := s.Put(ctx, name, data)
			if err != nil {
				r.unhealthy[i].Store(true)
			}
			results <- result{err: err}
		}(i, s)
	}
	oks := 0
	var firstErr error
	for range r.stores {
		res := <-results
		if res.err == nil {
			oks++
			if oks >= r.majority() {
				return nil
			}
		} else if firstErr == nil {
			firstErr = res.err
		}
	}
	return fmt.Errorf("core: replicated put %s reached %d/%d providers: %w",
		name, oks, len(r.stores), firstErr)
}

// Get implements cloud.ObjectStore: first provider that has the object.
// A replica answering ErrNotFound is lagging, not down, so only other
// failures mark it unhealthy.
func (r *ReplicatedStore) Get(ctx context.Context, name string) ([]byte, error) {
	var firstErr error
	for i, s := range r.stores {
		data, err := s.Get(ctx, name)
		if err == nil {
			return data, nil
		}
		if !errors.Is(err, cloud.ErrNotFound) {
			r.unhealthy[i].Store(true)
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return nil, firstErr
}

// List implements cloud.ObjectStore: the union of all reachable listings
// until a Repair pass in this process has verified full redundancy, and
// again whenever any replica is marked unhealthy afterwards (its listing
// may miss quorum-only writes, and a stale first responder at recovery
// time is silent data loss — see the type comment). Only a
// verified-and-healthy store serves the single-LIST fast path.
func (r *ReplicatedStore) List(ctx context.Context, prefix string) ([]cloud.ObjectInfo, error) {
	if r.verified.Load() && r.allHealthy() {
		infos, err := r.stores[0].List(ctx, prefix)
		if err == nil {
			return infos, nil
		}
		r.unhealthy[0].Store(true)
	}
	return r.listMerged(ctx, prefix)
}

// listMerged fans the listing out to every replica and merges the union
// of names. Objects are written once and never overwritten, so on a size
// disagreement the larger (complete) copy wins over a truncated one.
func (r *ReplicatedStore) listMerged(ctx context.Context, prefix string) ([]cloud.ObjectInfo, error) {
	type result struct {
		idx   int
		infos []cloud.ObjectInfo
		err   error
	}
	results := make(chan result, len(r.stores))
	for i, s := range r.stores {
		go func(i int, s cloud.ObjectStore) {
			infos, err := s.List(ctx, prefix)
			results <- result{idx: i, infos: infos, err: err}
		}(i, s)
	}
	merged := make(map[string]cloud.ObjectInfo)
	oks := 0
	var firstErr error
	for range r.stores {
		res := <-results
		if res.err != nil {
			r.unhealthy[res.idx].Store(true)
			if firstErr == nil {
				firstErr = res.err
			}
			continue
		}
		oks++
		for _, info := range res.infos {
			if prev, ok := merged[info.Name]; !ok || info.Size > prev.Size {
				merged[info.Name] = info
			}
		}
	}
	if oks == 0 {
		return nil, firstErr
	}
	out := make([]cloud.ObjectInfo, 0, len(merged))
	for _, info := range merged {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// allHealthy reports whether no replica is currently marked unhealthy.
func (r *ReplicatedStore) allHealthy() bool {
	for i := range r.unhealthy {
		if r.unhealthy[i].Load() {
			return false
		}
	}
	return true
}

// Healthy returns the per-replica health flags (true = healthy), for
// operators and tests.
func (r *ReplicatedStore) Healthy() []bool {
	out := make([]bool, len(r.unhealthy))
	for i := range r.unhealthy {
		out[i] = !r.unhealthy[i].Load()
	}
	return out
}

// Delete implements cloud.ObjectStore: best-effort on every provider;
// succeeds if any provider deleted the object.
func (r *ReplicatedStore) Delete(ctx context.Context, name string) error {
	oks := 0
	var firstErr error
	for i, s := range r.stores {
		err := s.Delete(ctx, name)
		if err == nil || errors.Is(err, cloud.ErrNotFound) {
			oks++
			continue
		}
		r.unhealthy[i].Store(true)
		if firstErr == nil {
			firstErr = err
		}
	}
	if oks > 0 {
		return nil
	}
	return firstErr
}

// RepairReport summarises one anti-entropy pass.
type RepairReport struct {
	// Copied counts objects re-replicated to lagging providers.
	Copied int
	// Removed counts leftover objects deleted from providers that missed
	// a garbage-collection round.
	Removed int
	// Unreachable counts providers that could not be repaired this pass.
	Unreachable int
}

// Repair runs anti-entropy across the providers: objects present on a
// majority are copied to providers missing them, and objects present
// only on a minority (garbage a dead provider missed deleting) are
// removed. Run it after a provider recovers from an outage so the write
// quorum regains full redundancy.
func (r *ReplicatedStore) Repair(ctx context.Context) (RepairReport, error) {
	var report RepairReport
	type listing struct {
		store cloud.ObjectStore
		names map[string]struct{}
		ok    bool
	}
	listings := make([]listing, len(r.stores))
	presence := make(map[string]int)
	reachable := 0
	for i, s := range r.stores {
		infos, err := s.List(ctx, "")
		if err != nil {
			listings[i] = listing{store: s}
			r.unhealthy[i].Store(true)
			report.Unreachable++
			continue
		}
		names := make(map[string]struct{}, len(infos))
		for _, info := range infos {
			names[info.Name] = struct{}{}
			presence[info.Name]++
		}
		listings[i] = listing{store: s, names: names, ok: true}
		reachable++
	}
	if reachable == 0 {
		return report, errors.New("core: repair: no provider reachable")
	}
	quorum := r.majority()
	for name, count := range presence {
		if count >= quorum {
			// Canonical object: copy to reachable providers missing it.
			var data []byte
			for i, l := range listings {
				if !l.ok {
					continue
				}
				if _, has := l.names[name]; !has {
					if data == nil {
						var err error
						data, err = r.Get(ctx, name)
						if err != nil {
							return report, fmt.Errorf("core: repair read %s: %w", name, err)
						}
					}
					if err := l.store.Put(ctx, name, data); err != nil {
						r.unhealthy[i].Store(true)
						return report, fmt.Errorf("core: repair write %s: %w", name, err)
					}
					report.Copied++
				}
			}
			continue
		}
		// Minority object: garbage from a missed GC round. Only safe to
		// judge when every provider answered this pass.
		if reachable < len(r.stores) {
			continue
		}
		for i, l := range listings {
			if _, has := l.names[name]; has {
				if err := l.store.Delete(ctx, name); err != nil && !errors.Is(err, cloud.ErrNotFound) {
					r.unhealthy[i].Store(true)
					return report, fmt.Errorf("core: repair delete %s: %w", name, err)
				}
				report.Removed++
			}
		}
	}
	// Every reachable replica now holds exactly the quorum state: clear
	// their sticky unhealthy flags. Unreachable replicas stay flagged, so
	// List keeps merging until a later Repair restores them.
	for i, l := range listings {
		if l.ok {
			r.unhealthy[i].Store(false)
		}
	}
	// Full redundancy verified in this process only when every provider
	// took part in the pass; from here List may trust a first responder
	// until the next failure.
	if report.Unreachable == 0 {
		r.verified.Store(true)
	}
	return report, nil
}
