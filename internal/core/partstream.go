package core

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/ginja-dr/ginja/internal/dbevent"
	"github.com/ginja-dr/ginja/internal/obs"
	"github.com/ginja-dr/ginja/internal/sealer"
	"github.com/ginja-dr/ginja/internal/simclock"
	"github.com/ginja-dr/ginja/internal/vfs"
)

// This file is the streaming DB-object data path: instead of snapshotting
// the whole database into memory, encoding it into one buffer and sealing
// it once (O(DB) resident bytes, serial CPU), a dump or checkpoint is
// first *planned* — split into ≤ partBudget payload slices, each entry
// either an in-memory write or a lazy (path, offset, length) range of a
// local file — and the plan is then executed by a bounded worker pool:
// each worker reads+encodes its part into a pooled buffer, seals it with
// a dedicated per-worker sealer.Ctx and PUTs it. At most
// CheckpointUploaders parts are resident at any moment, so memory is
// bounded by CheckpointUploaders × (payload + sealed) ≤
// 2 × CheckpointUploaders × MaxObjectSize regardless of database size,
// and sealing parallelizes across the pool instead of running once over
// the whole object.

// planEntry is one slice of a planned part: either carries its bytes
// (data non-nil — collected checkpoint writes, dump extras) or names a
// range of a local file to be read at upload time (data nil).
type planEntry struct {
	path   string
	offset int64
	length int64
	whole  bool
	data   []byte
}

// Per-entry wire overhead: flags(1) + pathLen(2) + offset(8) + dataLen(8)
// plus the path bytes; partHeaderSize is the write-list header.
const (
	entryOverhead  = 1 + 2 + 8 + 8
	partHeaderSize = 8
)

// partBudget is the payload budget per part: enough below MaxObjectSize
// that a sealed part (envelope + MAC + IV + zlib stored-block worst case)
// still fits in one cloud object.
func partBudget(maxObj int64) int64 {
	if maxObj <= 0 {
		return 1 << 20 // no object-size cap: any finite budget works
	}
	b := maxObj - maxObj/32 - 128
	if b < 512 {
		b = 512
	}
	return b
}

// splitEntry cuts e after n payload bytes. The head keeps e's whole flag
// (a truncating whole write recreates the file's first n bytes); the tail
// continues positionally so that applying head then tail reassembles the
// original range in order.
func splitEntry(e planEntry, n int64) (head, tail planEntry) {
	head, tail = e, e
	head.length = n
	tail.offset = e.offset + n
	tail.length = e.length - n
	tail.whole = false
	if e.data != nil {
		head.data = e.data[:n]
		tail.data = e.data[n:]
	}
	return head, tail
}

// planParts greedily packs entries into parts of at most budget encoded
// bytes, splitting entries that do not fit (the head chunk fills the
// current part exactly). Always returns at least one part so that even an
// empty database produces a dump object.
func planParts(entries []planEntry, budget int64) [][]planEntry {
	var parts [][]planEntry
	var cur []planEntry
	curBytes := int64(partHeaderSize)
	flush := func() {
		parts = append(parts, cur)
		cur = nil
		curBytes = partHeaderSize
	}
	for _, e := range entries {
		overhead := int64(entryOverhead + len(e.path))
		rem := e
		for {
			room := budget - curBytes - overhead
			if rem.length <= room || (len(cur) == 0 && room < 1) {
				// Fits — or cannot be made to fit (overhead alone exceeds
				// the budget): take it whole rather than degenerate into
				// byte-sized parts.
				cur = append(cur, rem)
				curBytes += overhead + rem.length
				break
			}
			if room < 1 {
				flush()
				continue
			}
			head, tail := splitEntry(rem, room)
			cur = append(cur, head)
			flush()
			rem = tail
		}
	}
	if len(cur) > 0 || len(parts) == 0 {
		flush()
	}
	return parts
}

// entriesFromWrites converts an in-memory write list (a finished
// checkpoint collection) into plan entries.
func entriesFromWrites(writes []FileWrite) []planEntry {
	entries := make([]planEntry, len(writes))
	for i, w := range writes {
		entries[i] = planEntry{path: w.Path, offset: w.Offset, length: int64(len(w.Data)), whole: w.Whole, data: w.Data}
	}
	return entries
}

// extrasEntries reads the processor's extra regions (e.g. the InnoDB log
// header) eagerly — they live in WAL-class files that keep moving while
// the object streams, so their bytes must be captured now, while the DBMS
// is paused inside its checkpoint-end write. A missing extras file just
// means no WAL was written yet; every other error is a real read failure
// that would silently truncate the object.
func extrasEntries(fsys vfs.FS, proc dbevent.Processor) ([]planEntry, error) {
	var entries []planEntry
	for _, region := range proc.DumpExtras() {
		f, err := fsys.OpenFile(region.Path, os.O_RDONLY, 0)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				continue
			}
			return nil, err
		}
		buf := make([]byte, region.Length)
		n, err := f.ReadAt(buf, region.Offset)
		f.Close()
		if err != nil && !errors.Is(err, io.EOF) {
			return nil, err
		}
		if n > 0 {
			entries = append(entries, planEntry{path: region.Path, offset: region.Offset, length: int64(n), data: buf[:n]})
		}
	}
	return entries, nil
}

// planDump plans a full dump (Algorithm 3 line 10) without reading the
// data files: every data-class file becomes a lazy whole-file entry whose
// bytes the uploader reads chunk by chunk. Only the extras regions are
// read eagerly (see extrasEntries).
func planDump(fsys vfs.FS, proc dbevent.Processor, budget int64) ([][]planEntry, error) {
	files, err := vfs.Walk(fsys, "")
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	var entries []planEntry
	for _, p := range files {
		if proc.FileKind(p) != dbevent.KindData {
			continue
		}
		fi, err := fsys.Stat(p)
		if err != nil {
			return nil, err
		}
		entries = append(entries, planEntry{path: p, length: fi.Size(), whole: true})
	}
	extras, err := extrasEntries(fsys, proc)
	if err != nil {
		return nil, err
	}
	return planParts(append(entries, extras...), budget), nil
}

// planDelta plans a delta object from the dirty map accumulated since the
// last chain element: lazy entries covering only the dirtied page ranges
// of each file (clamped to the file's current size — a range past EOF was
// superseded by a truncate, which forces a whole-file entry anyway), plus
// the eager extras regions every chain element recaptures. Like planDump
// it runs at the consistent cut point, inside the DBMS's checkpoint-end
// write, and reads no data-file bytes itself.
func planDelta(fsys vfs.FS, proc dbevent.Processor, dirty map[string]*dirtyFile, budget int64) ([][]planEntry, error) {
	paths := make([]string, 0, len(dirty))
	for p := range dirty {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var entries []planEntry
	for _, p := range paths {
		fi, err := fsys.Stat(p)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				// The file vanished after being dirtied; checkpoints do not
				// replicate deletions either, so the delta simply has nothing
				// to ship for it.
				continue
			}
			return nil, err
		}
		size := fi.Size()
		df := dirty[p]
		if df.Whole {
			entries = append(entries, planEntry{path: p, length: size, whole: true})
			continue
		}
		for _, r := range df.Ranges {
			off, end := r.Off, r.End
			if end > size {
				end = size
			}
			if off >= end {
				continue
			}
			entries = append(entries, planEntry{path: p, offset: off, length: end - off})
		}
	}
	extras, err := extrasEntries(fsys, proc)
	if err != nil {
		return nil, err
	}
	return planParts(append(entries, extras...), budget), nil
}

// planPayloadBytes is the total payload a plan will ship (lazy ranges
// included) — the quantity the fold decision weighs against the local
// database size.
func planPayloadBytes(parts [][]planEntry) int64 {
	var n int64
	for _, part := range parts {
		for _, e := range part {
			n += e.length
		}
	}
	return n
}

// planLazyPaths is the set of files a plan reads at upload time — the
// files the dump gate must freeze until the plan's reads complete. Eager
// entries (extras, collected writes) carry their bytes already and need
// no freezing.
func planLazyPaths(parts [][]planEntry) map[string]struct{} {
	paths := make(map[string]struct{})
	for _, part := range parts {
		for _, e := range part {
			if e.data == nil {
				paths[e.path] = struct{}{}
			}
		}
	}
	return paths
}

// planInMemBytes is the payload held in memory by a plan (the lazy
// entries cost nothing until a worker streams them).
func planInMemBytes(parts [][]planEntry) int64 {
	var n int64
	for _, part := range parts {
		for _, e := range part {
			n += int64(len(e.data))
		}
	}
	return n
}

// encodePart serializes one part's entries into buf (usually pooled
// scratch[:0]) as a self-framing write list — the same wire format
// DecodeWrites reads — streaming lazy entries straight from the local
// file into the encode buffer at their final position (no intermediate
// copy).
func encodePart(fsys vfs.FS, entries []planEntry, buf []byte) ([]byte, error) {
	buf = append(buf, writeListMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(entries)))
	var (
		curFile vfs.File
		curPath string
	)
	defer func() {
		if curFile != nil {
			curFile.Close()
		}
	}()
	for _, e := range entries {
		var flags byte
		if e.whole {
			flags = 1
		}
		buf = append(buf, flags)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(e.path)))
		buf = append(buf, e.path...)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.offset))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.length))
		if e.data != nil {
			buf = append(buf, e.data...)
			continue
		}
		if e.length == 0 {
			continue
		}
		if curFile == nil || curPath != e.path {
			if curFile != nil {
				curFile.Close()
			}
			f, err := fsys.OpenFile(e.path, os.O_RDONLY, 0)
			if err != nil {
				return nil, err
			}
			curFile, curPath = f, e.path
		}
		pos := len(buf)
		need := pos + int(e.length)
		if cap(buf) < need {
			grown := make([]byte, pos, need)
			copy(grown, buf)
			buf = grown
		}
		buf = buf[:need]
		n, err := curFile.ReadAt(buf[pos:], e.offset)
		if n != int(e.length) {
			if err == nil || errors.Is(err, io.EOF) {
				err = fmt.Errorf("core: %s shrank under a streaming dump (read %d of %d at offset %d)",
					e.path, n, e.length, e.offset)
			}
			return nil, err
		}
	}
	return buf, nil
}

// streamTracker accounts the payload+sealed bytes currently resident in
// the streaming data path, with a high-water mark — the deterministic
// measurement behind the O(CheckpointUploaders × MaxObjectSize) memory
// bound (GC-noise-free, unlike heap sampling).
type streamTracker struct {
	cur  atomic.Int64
	peak atomic.Int64
}

func (t *streamTracker) add(n int64) {
	if t == nil {
		return
	}
	v := t.cur.Add(n)
	for {
		p := t.peak.Load()
		if v <= p || t.peak.CompareAndSwap(p, v) {
			return
		}
	}
}

func (t *streamTracker) sub(n int64) {
	if t != nil {
		t.cur.Add(-n)
	}
}

// partUploader executes a part plan: read→encode→seal→PUT per part, up to
// CheckpointUploaders parts in flight. Encode buffers come from a
// process-wide shared pool and are bounded at MaxObjectSize; each worker
// seals with a dedicated sealer.Ctx (key-dependent, so per instance).
// Safe for concurrent use by one upload at a time per object (the
// checkpointer serializes objects; Boot runs alone).
type partUploader struct {
	fs      vfs.FS
	seal    *sealer.Sealer
	params  Params
	clk     simclock.Clock
	put     func(ctx context.Context, name string, data []byte) error
	tracker *streamTracker

	// Optional instruments (nil when observability is disabled).
	sealHist    *obs.Histogram
	putHist     *obs.Histogram
	putInflight *inflight

	ctxs sync.Pool // *sealer.Ctx per-worker seal state
}

// partBufs is the process-wide encode-scratch pool, shared by every
// partUploader (every tenant in a fleet): the live buffer count tracks
// the fleet's CONCURRENT part uploads — bounded by the uploader pools —
// instead of one retained buffer per database instance. Capacities vary
// with each instance's MaxObjectSize; getPartBuf tops up undersized
// pool hits by growing on append, and release drops buffers that exceed
// the releasing instance's bound.
var partBufs sync.Pool

func getPartBuf(budget int64) *[]byte {
	if bp, ok := partBufs.Get().(*[]byte); ok {
		return bp
	}
	b := make([]byte, 0, budget)
	return &b
}

func newPartUploader(fsys vfs.FS, seal *sealer.Sealer, params Params, tracker *streamTracker,
	put func(ctx context.Context, name string, data []byte) error) *partUploader {
	u := &partUploader{fs: fsys, seal: seal, params: params, clk: params.clock(), put: put, tracker: tracker}
	u.ctxs.New = func() any { return seal.NewCtx() }
	return u
}

// release returns an encode buffer to the shared pool unless it grew
// past the object-size bound (a pathological plan entry) — an oversized
// buffer retained in the pool would defeat the memory bound.
func (u *partUploader) release(bp *[]byte) {
	if u.params.MaxObjectSize > 0 && int64(cap(*bp)) > u.params.MaxObjectSize {
		return
	}
	*bp = (*bp)[:0]
	partBufs.Put(bp)
}

// upload streams every planned part and returns the sealed size of each,
// in part order. ident carries the object's identity — (Ts, Gen, Type)
// plus the base linkage when the object is a delta — from which every
// part name is built. readsDone (optional) fires once, as soon as the
// last part's local reads completed — the signal that the database files
// are no longer needed and frozen writers may resume; on failure the
// caller's own release path must cover it. A single-part object is
// uploaded under the legacy unsplit name (the formats are byte-identical
// there), so small checkpoints stay readable by legacy readers.
func (u *partUploader) upload(ctx context.Context, ident DBObjectInfo,
	parts [][]planEntry, readsDone func()) ([]int64, error) {
	ts, gen := ident.Ts, ident.Gen
	sizes := make([]int64, len(parts))
	var readsLeft atomic.Int64
	readsLeft.Store(int64(len(parts)))
	err := runLimited(ctx, u.params.CheckpointUploaders, len(parts), func(ctx context.Context, i int) error {
		bp := getPartBuf(partBudget(u.params.MaxObjectSize))
		payload, err := encodePart(u.fs, parts[i], (*bp)[:0])
		if err != nil {
			u.release(bp)
			return fmt.Errorf("core: build DB part ts=%d gen=%d part=%d: %w", ts, gen, i, err)
		}
		if readsLeft.Add(-1) == 0 && readsDone != nil {
			readsDone()
		}
		u.tracker.add(int64(len(payload)))
		sealStart := u.clk.Now()
		sctx := u.ctxs.Get().(*sealer.Ctx)
		sealed, err := sctx.Seal(payload)
		u.ctxs.Put(sctx)
		// Both buffers exist until the payload scratch is released, so the
		// sealed bytes enter the tracker first — the measured peak covers
		// the overlap honestly.
		u.tracker.add(int64(len(sealed)))
		*bp = payload
		u.release(bp)
		u.tracker.sub(int64(len(payload)))
		if err != nil {
			u.tracker.sub(int64(len(sealed)))
			return fmt.Errorf("core: seal DB part ts=%d gen=%d part=%d: %w", ts, gen, i, err)
		}
		if u.sealHist != nil {
			u.sealHist.ObserveDuration(u.clk.Since(sealStart))
		}
		sizes[i] = int64(len(sealed))
		var name string
		if len(parts) == 1 {
			name = ident.name(int64(len(sealed)), -1, false, 0).String()
		} else {
			count := 0
			if i == len(parts)-1 {
				count = len(parts)
			}
			name = ident.name(int64(len(sealed)), i, true, count).String()
		}
		putStart := u.clk.Now()
		u.putInflight.enter()
		err = u.put(ctx, name, sealed)
		u.putInflight.exit()
		u.tracker.sub(int64(len(sealed)))
		if err != nil {
			return fmt.Errorf("core: upload %s: %w", name, err)
		}
		if u.putHist != nil {
			u.putHist.ObserveDuration(u.clk.Since(putStart))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sizes, nil
}
