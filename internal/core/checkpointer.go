package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/dbevent"
	"github.com/ginja-dr/ginja/internal/sealer"
	"github.com/ginja-dr/ginja/internal/simclock"
	"github.com/ginja-dr/ginja/internal/vfs"
)

// dbObject is one finished checkpoint, delta or dump awaiting upload. A
// checkpoint carries its collected writes in memory; dumps and deltas
// carry a part plan whose lazy entries the uploader streams from the
// local files (gated: database writes to the planned files are frozen
// until the plan's reads complete).
type dbObject struct {
	ts     int64
	gen    int
	typ    DBObjectType
	writes []FileWrite
	plan   [][]planEntry
	// baseTs/baseGen link a Delta object to its chain predecessor.
	baseTs  int64
	baseGen int
	// bufBytes is the in-memory payload this object pins until its upload
	// finishes (the checkpoint-queue memory-pressure gauge).
	bufBytes int64
	// savedBytes is what shipping a delta saved over the full re-dump it
	// replaced (local DB size minus delta payload), counted into
	// Stats.CheckpointBytesSaved once the delta is durable.
	savedBytes int64
	hold       *gateHold
}

// gateHold is one dump/delta upload's claim on the dump gate: writes to
// the covered paths block until the plan's local reads complete. A nil
// paths set covers every path (conservative hold).
type gateHold struct {
	paths map[string]struct{}
}

func (h *gateHold) covers(path string) bool {
	if h.paths == nil {
		return true
	}
	_, ok := h.paths[path]
	return ok
}

// checkpointStats are the checkpoint-path counters.
type checkpointStats struct {
	checkpoints atomic.Int64
	dumps       atomic.Int64
	deltas      atomic.Int64
	dbObjects   atomic.Int64 // uploaded parts
	dbBytes     atomic.Int64 // sealed bytes
	walDeleted  atomic.Int64
	dbDeleted   atomic.Int64
	// bytesSaved is the cumulative payload a delta shipped instead of the
	// full re-dump the 150 % rule would otherwise have triggered.
	bytesSaved atomic.Int64
	// gateBlockedNanos is the cumulative time DBMS writes spent blocked on
	// the dump gate (only writes actually covered by a hold count).
	gateBlockedNanos atomic.Int64
}

// checkpointer implements Algorithm 3: collect the writes of a local
// checkpoint as they happen, and when the checkpoint finishes locally,
// ship them to the cloud from a separate thread (decoupling the DBMS's
// checkpoint from the upload, §5.3), then garbage-collect superseded
// objects.
type checkpointer struct {
	localFS vfs.FS
	proc    dbevent.Processor
	view    *CloudView
	store   cloud.ObjectStore
	seal    *sealer.Sealer
	params  Params
	clk     simclock.Clock

	mu         sync.Mutex
	collecting bool
	tsAtBegin  int64
	writes     []FileWrite

	// genAlloc holds the highest generation handed out per ts, under its
	// own lock: the upload goroutine prunes entries while the DBMS thread
	// may be blocked on the upload queue with c.mu held — sharing c.mu
	// here would deadlock.
	genMu    sync.Mutex
	genAlloc map[int64]int

	queue  chan dbObject
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	// uploader streams part plans to the cloud with bounded memory.
	uploader *partUploader

	// bufBytes is the in-memory payload currently collected or queued for
	// upload (Stats.CheckpointBytesBuffered / ginja_checkpoint_queue_bytes).
	bufBytes atomic.Int64

	// The dump gate: while a hold is active, database writes to the files
	// that hold's plan reads lazily block in Ginja.OnBeforeWrite — a
	// streaming dump or delta is reading the planned ranges, and those
	// files must not move under it (§5.3: Ginja stops local DB writes
	// during dump creation). Each hold carries the path set its plan
	// covers, so writes to files outside any active plan sail through.
	// Acquired on the DBMS thread when the plan is cut, released by the
	// uploader as soon as the plan's local reads complete (the PUTs may
	// still be running).
	gateMu    sync.Mutex
	gateHolds map[*gateHold]struct{}
	gateCh    chan struct{}

	// dirty tracks the byte ranges dirtied per file since the last chain
	// element (dump or delta); nil unless Params.DeltaCheckpoints.
	dirty *dirtyMap

	// The delta chain this process is extending: tip identity, length and
	// summed payload since the base dump. chainValid means the tip was
	// planned by THIS process while the dirty map was live — a rebooted
	// process starts invalid (its dirty map missed whatever the previous
	// incarnation wrote) and re-validates with its first full dump.
	chainMu     sync.Mutex
	chainValid  bool
	chainTipTs  int64
	chainTipGen int
	chainLen    int
	chainBytes  int64

	stats       checkpointStats
	metrics     *checkpointMetrics
	putInflight *inflight
	delInflight *inflight

	// The settle hook: enqueuedN counts objects handed to the upload queue,
	// processedN counts upload() calls that finished — including their GC
	// sweep, which runs before the deferred noteProcessed. sync waits for
	// processedN to catch up, giving tests and operators a deterministic
	// "everything you triggered is durable and swept" barrier instead of
	// polling counters that move mid-sweep.
	settleMu   sync.Mutex
	enqueuedN  int64
	processedN int64
	settleCh   chan struct{}

	// The point-in-time retention window (Params.RetainFor): superseded
	// objects are stamped here instead of deleted, first stamp wins (a
	// re-marked victim must not have its window restarted), and the trimmer
	// deletes them once the window expires or the RetainObjects cap evicts
	// the oldest-superseded early.
	retMu      sync.Mutex
	walRetired map[int64]retiredObject
	dbRetired  map[dbKey]retiredObject
	trimMu     sync.Mutex

	// Trimmer tick state: the periodic retention trim is driven by a
	// clock AfterFunc (one entry on the shared tick wheel in fleet mode,
	// a runtime timer otherwise) instead of a dedicated sleeper goroutine,
	// so N instances cost N heap entries, not N goroutines. The timer
	// callback only spawns the transient trim goroutine — cloud I/O never
	// runs on the timer goroutine itself.
	trimTickMu  sync.Mutex
	trimTimer   simclock.Timer
	trimStopped bool
	trimWG      sync.WaitGroup

	errMu sync.Mutex
	err   error
}

// retiredObject is one superseded-but-retained cloud object: the stamp is
// when supersession happened, which starts its RetainFor window.
type retiredObject struct {
	wal WALObjectInfo
	db  DBObjectInfo
	at  time.Time
}

func newCheckpointer(localFS vfs.FS, proc dbevent.Processor, view *CloudView,
	store cloud.ObjectStore, seal *sealer.Sealer, params Params, tracker *streamTracker) *checkpointer {
	ctx, cancel := context.WithCancel(context.Background())
	c := &checkpointer{
		localFS:     localFS,
		proc:        proc,
		view:        view,
		store:       store,
		seal:        seal,
		params:      params,
		clk:         params.clock(),
		metrics:     newCheckpointMetrics(params.Metrics),
		putInflight: newInflight(params.Metrics, "put", "checkpoint"),
		delInflight: newInflight(params.Metrics, "delete", "gc"),
		genAlloc:    make(map[int64]int),
		walRetired:  make(map[int64]retiredObject),
		dbRetired:   make(map[dbKey]retiredObject),
		gateHolds:   make(map[*gateHold]struct{}),
		queue:       make(chan dbObject, 4),
		ctx:         ctx,
		cancel:      cancel,
		done:        make(chan struct{}),
	}
	if params.DeltaCheckpoints {
		c.dirty = newDirtyMap()
	}
	c.uploader = newPartUploader(localFS, seal, params, tracker, c.putWithRetry)
	c.uploader.putInflight = c.putInflight
	if c.metrics != nil {
		c.uploader.sealHist = c.metrics.sealPart
		c.uploader.putHist = c.metrics.partPut
	}
	return c
}

// acquireGate freezes database writes to the given path set (nil freezes
// everything) and returns the hold; holds nest if a second plan is cut
// before the first one's reads finish.
func (c *checkpointer) acquireGate(paths map[string]struct{}) *gateHold {
	h := &gateHold{paths: paths}
	c.gateMu.Lock()
	c.gateHolds[h] = struct{}{}
	if c.gateCh == nil {
		c.gateCh = make(chan struct{})
	}
	c.gateMu.Unlock()
	return h
}

// releaseGate drops one hold; every release wakes the blocked writers so
// they can re-evaluate which holds still cover them.
func (c *checkpointer) releaseGate(h *gateHold) {
	c.gateMu.Lock()
	delete(c.gateHolds, h)
	if c.gateCh != nil {
		close(c.gateCh)
		c.gateCh = nil
	}
	c.gateMu.Unlock()
}

// waitGate blocks the calling (DBMS) thread while any active hold covers
// path, and records the blocked time when it actually blocked. A
// cancelled checkpointer (shutdown or fatal replication error) never
// blocks writers: the database keeps running locally even when
// replication is gone.
func (c *checkpointer) waitGate(path string) {
	var blockedFrom time.Time
	for {
		c.gateMu.Lock()
		covered := false
		for h := range c.gateHolds {
			if h.covers(path) {
				covered = true
				break
			}
		}
		if !covered {
			c.gateMu.Unlock()
			if !blockedFrom.IsZero() {
				d := c.clk.Since(blockedFrom)
				c.stats.gateBlockedNanos.Add(int64(d))
				if c.metrics != nil {
					c.metrics.gateBlocked.ObserveDuration(d)
				}
			}
			return
		}
		if c.gateCh == nil {
			c.gateCh = make(chan struct{})
		}
		ch := c.gateCh
		c.gateMu.Unlock()
		if blockedFrom.IsZero() {
			blockedFrom = c.clk.Now()
		}
		select {
		case <-ch:
		case <-c.ctx.Done():
			return
		}
	}
}

func (c *checkpointer) start() {
	if reg := c.params.Metrics; reg != nil {
		reg.GaugeFunc(metricCkptQueueLen,
			"Finished checkpoints/dumps awaiting upload by the CheckpointThread.",
			nil, func() float64 { return float64(len(c.queue)) })
		reg.GaugeFunc(metricCkptQueueBytes,
			"In-memory payload bytes collected or queued on the checkpoint path (memory pressure while blocked on uploads).",
			nil, func() float64 { return float64(c.bufBytes.Load()) })
		if c.params.DeltaCheckpoints {
			reg.GaugeFunc(metricDeltaChainLen,
				"Length of the current delta chain (deltas since the last full base dump).",
				nil, func() float64 { return float64(c.deltaChainLen()) })
		}
	}
	go func() {
		defer close(c.done)
		for obj := range c.queue {
			if err := c.upload(obj); err != nil {
				c.fail(err)
				return
			}
		}
	}()
	if c.params.RetainFor > 0 {
		// Background trimmer: enforce the retention window even when no
		// dump happens to run GC — a quiet database must still converge to
		// its bounded chain. Driven by AfterFunc ticks rather than a
		// dedicated sleeper goroutine (see the trimTick fields).
		interval := c.params.RetainFor / 4
		if interval <= 0 {
			interval = time.Second
		}
		c.armTrimTick(interval)
	}
}

// armTrimTick schedules the next retention trim, unless the trimmer has
// been stopped. The AfterFunc callback must stay brief (it may run on a
// shared tick wheel), so the trim itself — cloud deletes with retries —
// runs on a transient goroutine tracked by trimWG.
func (c *checkpointer) armTrimTick(interval time.Duration) {
	c.trimTickMu.Lock()
	defer c.trimTickMu.Unlock()
	if c.trimStopped || c.ctx.Err() != nil {
		return
	}
	c.trimTimer = c.clk.AfterFunc(interval, func() {
		c.trimTickMu.Lock()
		if c.trimStopped || c.ctx.Err() != nil {
			c.trimTickMu.Unlock()
			return
		}
		c.trimWG.Add(1)
		c.trimTickMu.Unlock()
		go func() {
			defer c.trimWG.Done()
			if err := c.trimRetention(); err != nil {
				// stop() cancelling the context mid-trim is a clean
				// shutdown, not a checkpointer failure (mirrors the
				// follower's loop).
				if c.ctx.Err() == nil {
					c.fail(err)
				}
				return
			}
			c.armTrimTick(interval)
		}()
	})
}

// stopTrimTick halts the trim cycle: no further ticks are armed, the
// pending timer is cancelled, and any in-flight trim is waited out (its
// context is already cancelled by stop, so it returns promptly).
func (c *checkpointer) stopTrimTick() {
	c.trimTickMu.Lock()
	c.trimStopped = true
	if c.trimTimer != nil {
		c.trimTimer.Stop()
	}
	c.trimTickMu.Unlock()
	c.trimWG.Wait()
}

// stop flushes the queue (bounded by timeout) and terminates the
// CheckpointThread. If the drain cannot finish — e.g. the cloud is gone
// and retries are unbounded — the context is cancelled so the upload loop
// exits instead of hanging shutdown forever.
func (c *checkpointer) stop(timeout time.Duration) error {
	close(c.queue)
	t := c.clk.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-c.done:
	case <-t.C():
	}
	c.cancel()
	<-c.done
	c.stopTrimTick()
	return c.lastErr()
}

// handle processes one classified checkpoint event on the DBMS thread
// (Algorithm 3 lines 3-16).
func (c *checkpointer) handle(ev dbevent.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch ev.Type {
	case dbevent.CheckpointBegin:
		// ts = timestamp of the last WAL object allocated before the
		// checkpoint began (line 5). Re-stamp even when an implicit
		// collection (stray data writes such as table creation) is
		// already open: the checkpoint flushes every page dirtied by
		// commits that completed before this event, so all WAL
		// timestamps allocated up to now are covered — and the stray
		// writes themselves carry no WAL dependency.
		c.collecting = true
		c.tsAtBegin = c.view.LastWALTs()
		c.appendWriteLocked(ev)
	case dbevent.CheckpointData:
		if !c.collecting {
			// Data write outside a detected checkpoint (e.g. a table
			// created mid-run): open an implicit collection so the write
			// still reaches the cloud with the next checkpoint.
			c.collecting = true
			c.tsAtBegin = c.view.LastWALTs()
		}
		c.appendWriteLocked(ev)
	case dbevent.CheckpointEnd:
		c.appendWriteLocked(ev)
		c.finalizeLocked()
	}
}

func (c *checkpointer) appendWriteLocked(ev dbevent.Event) {
	data := make([]byte, len(ev.Data))
	copy(data, ev.Data)
	c.writes = append(c.writes, FileWrite{Path: ev.Path, Offset: ev.Offset, Data: data})
	c.bufBytes.Add(int64(len(data)))
	// Every collected write also dirties its page range: the dirty map is
	// fed here — off the commit hot path — so the next delta covers every
	// byte the superseded checkpoints carried.
	c.dirty.markWrite(ev.Path, ev.Offset, int64(len(ev.Data)))
}

// handleTruncate records a truncate of a replicated file: byte ranges
// cannot express a shrink, so the next delta recaptures the file whole.
func (c *checkpointer) handleTruncate(path string) {
	c.dirty.markWhole(path)
}

// finalizeLocked closes the collection, decides dump vs incremental
// (the 150 % rule, lines 9-13) and enqueues the object for upload.
func (c *checkpointer) finalizeLocked() {
	rawBytes := estimateSize(c.writes)
	writes := MergeWrites(c.writes)
	c.writes = nil
	c.collecting = false

	// Generations must be unique even while earlier objects with the same
	// ts are still queued for upload (not yet in the view).
	c.genMu.Lock()
	gen := c.view.NextDBGen(c.tsAtBegin)
	if g, ok := c.genAlloc[c.tsAtBegin]; ok && g+1 > gen {
		gen = g + 1
	}
	c.genAlloc[c.tsAtBegin] = gen
	c.genMu.Unlock()
	obj := dbObject{ts: c.tsAtBegin, gen: gen, typ: Checkpoint, writes: writes, bufBytes: estimateSize(writes)}
	localSize, err := c.localDBSize()
	if err != nil {
		c.bufBytes.Add(-rawBytes)
		c.fail(fmt.Errorf("core: sizing local database: %w", err))
		return
	}
	if float64(c.view.TotalDBSize()+estimateSize(writes)) >= c.params.DumpThreshold*float64(localSize) {
		// Plan the next chain element synchronously: no database-file write
		// can race us here because the DBMS is still inside its
		// checkpoint-end write. The plan holds only file ranges plus the
		// eagerly-read extras — the file bytes stream at upload time, under
		// the dump gate (§5.3: Ginja stops local DB writes during dump
		// creation). The collected checkpoint writes are dropped: the dump
		// (or delta) re-reads the data ranges they already landed in.
		buildStart := c.clk.Now()
		chainObj, err := c.planChainElement(c.tsAtBegin, gen, localSize)
		if err != nil {
			c.bufBytes.Add(-rawBytes)
			c.fail(fmt.Errorf("core: planning %s: %w", chainObj.typ, err))
			return
		}
		if c.metrics != nil {
			c.metrics.build.ObserveDuration(c.clk.Since(buildStart))
		}
		obj = chainObj
	}
	c.bufBytes.Add(obj.bufBytes - rawBytes)
	select {
	case c.queue <- obj:
		c.noteEnqueued()
	case <-c.ctx.Done():
		c.bufBytes.Add(-obj.bufBytes)
		if obj.hold != nil {
			c.releaseGate(obj.hold)
		}
	}
}

// planChainElement serves one DumpThreshold crossing: a delta when the
// chain can safely absorb one more element, a full dump otherwise. The
// fold decision (Algorithm 3 line 9's re-dump, bounded BtrLog-style): a
// full dump is emitted when there is no live chain this process owns,
// when the chain would exceed MaxDeltaChain elements, or when its summed
// payload plus this delta would exceed DeltaCompactRatio of the local
// database size. Either way the dirty epoch resets — the new element
// covers everything recorded so far.
func (c *checkpointer) planChainElement(ts int64, gen int, localSize int64) (dbObject, error) {
	budget := partBudget(c.params.MaxObjectSize)
	if c.dirty != nil {
		c.chainMu.Lock()
		valid, tipTs, tipGen := c.chainValid, c.chainTipTs, c.chainTipGen
		chainLen, chainBytes := c.chainLen, c.chainBytes
		c.chainMu.Unlock()
		if valid && chainLen+1 <= c.params.MaxDeltaChain {
			plan, err := planDelta(c.localFS, c.proc, c.dirty.snapshotAndReset(), budget)
			if err != nil {
				return dbObject{typ: Delta}, err
			}
			deltaBytes := planPayloadBytes(plan)
			if float64(chainBytes+deltaBytes) <= c.params.DeltaCompactRatio*float64(localSize) {
				obj := dbObject{ts: ts, gen: gen, typ: Delta, plan: plan,
					baseTs: tipTs, baseGen: tipGen,
					bufBytes: planInMemBytes(plan), savedBytes: localSize - deltaBytes}
				if obj.savedBytes < 0 {
					obj.savedBytes = 0
				}
				obj.hold = c.acquireGate(planLazyPaths(plan))
				c.chainMu.Lock()
				c.chainTipTs, c.chainTipGen = ts, gen
				c.chainLen++
				c.chainBytes += deltaBytes
				c.chainMu.Unlock()
				return obj, nil
			}
			// The chain would outgrow the compact ratio: fold. The consumed
			// dirty epoch is covered by the full dump below.
		}
	}
	plan, err := planDump(c.localFS, c.proc, budget)
	if err != nil {
		return dbObject{typ: Dump}, err
	}
	if c.dirty != nil {
		c.dirty.snapshotAndReset()
	}
	obj := dbObject{ts: ts, gen: gen, typ: Dump, plan: plan, bufBytes: planInMemBytes(plan)}
	obj.hold = c.acquireGate(planLazyPaths(plan))
	c.chainMu.Lock()
	c.chainValid = c.dirty != nil
	c.chainTipTs, c.chainTipGen = ts, gen
	c.chainLen, c.chainBytes = 0, 0
	c.chainMu.Unlock()
	return obj, nil
}

// noteChainBase seeds the delta chain with a base dump uploaded outside
// the checkpointer's queue (Boot's ts-0 dump). The dirty map is empty at
// boot and sees every write from then on, so the first threshold
// crossing may already be served by a delta. A rebooted or recovered
// process must NOT seed from the cloud view: its dirty map missed
// whatever the previous incarnation wrote after the last chain element,
// so its first crossing emits a full dump instead.
func (c *checkpointer) noteChainBase(ts int64, gen int) {
	if c.dirty == nil {
		return
	}
	c.chainMu.Lock()
	c.chainValid = true
	c.chainTipTs, c.chainTipGen = ts, gen
	c.chainLen, c.chainBytes = 0, 0
	c.chainMu.Unlock()
}

// deltaChainLen reports the current chain length (deltas since the base
// dump) for Stats and the gauge.
func (c *checkpointer) deltaChainLen() int {
	c.chainMu.Lock()
	defer c.chainMu.Unlock()
	if !c.chainValid {
		return 0
	}
	return c.chainLen
}

// localDBSize sums the sizes of all data-class files (the "local DB size"
// of the 150 % rule).
func (c *checkpointer) localDBSize() (int64, error) {
	files, err := vfs.Walk(c.localFS, "")
	if err != nil {
		return 0, err
	}
	var total int64
	for _, p := range files {
		if c.proc.FileKind(p) != dbevent.KindData {
			continue
		}
		fi, err := c.localFS.Stat(p)
		if err != nil {
			return 0, err
		}
		total += fi.Size()
	}
	return total, nil
}

// upload runs on the CheckpointThread (Algorithm 3 lines 17-29): stream
// the DB object's part plan — each ≤ MaxObjectSize part independently
// encoded, sealed and PUT by up to CheckpointUploaders workers, so
// resident memory stays bounded by the uploader window, not the database
// size — record it, then delete the WAL objects it supersedes and, for
// dumps, older DB objects subject to the point-in-time retention policy.
// The view learns about the object only after every part is durable, so a
// failure mid-upload leaves at most orphan parts in the bucket; after a
// restart, LoadFromList records them as orphans (never surfacing them to
// recovery) and the next dump's GC deletes them (collectOldDBObjects
// sweeps view.OrphanParts).
func (c *checkpointer) upload(obj dbObject) error {
	defer c.noteProcessed() // runs last: GC and retention trimming included
	defer c.bufBytes.Add(-obj.bufBytes)
	var gateOnce sync.Once
	release := func() {
		if obj.hold != nil {
			gateOnce.Do(func() { c.releaseGate(obj.hold) })
		}
	}
	defer release()
	uploadStart := c.clk.Now()
	parts := obj.plan
	if parts == nil {
		parts = planParts(entriesFromWrites(obj.writes), partBudget(c.params.MaxObjectSize))
	}
	ident := DBObjectInfo{Ts: obj.ts, Gen: obj.gen, Type: obj.typ,
		BaseTs: obj.baseTs, BaseGen: obj.baseGen}
	sizes, err := c.uploader.upload(c.ctx, ident, parts, release)
	if err != nil {
		return err
	}
	var size int64
	for _, s := range sizes {
		size += s
	}
	// Durable-data counters move only once the whole object landed: a
	// sibling part failure abandons the object, and parts that did make it
	// are orphans, not durable data.
	c.stats.dbObjects.Add(int64(len(parts)))
	c.stats.dbBytes.Add(size)
	if c.metrics != nil {
		c.metrics.dbObjects.Add(float64(len(parts)))
		c.metrics.dbBytes.Add(float64(size))
	}
	info := ident
	info.Size = size
	if len(parts) > 1 {
		info.Parts = len(parts)
		info.PartSizes = sizes
	}
	if err := c.view.AddDB(info); err != nil {
		return err
	}
	// The view now knows about this (ts, gen): NextDBGen covers it, so the
	// collision-avoidance entry is no longer needed (and would otherwise
	// accumulate one entry per checkpoint forever).
	c.genMu.Lock()
	if g, ok := c.genAlloc[obj.ts]; ok && g <= obj.gen {
		delete(c.genAlloc, obj.ts)
	}
	c.genMu.Unlock()
	switch obj.typ {
	case Dump:
		c.stats.dumps.Add(1)
	case Delta:
		c.stats.deltas.Add(1)
		c.stats.bytesSaved.Add(obj.savedBytes)
	default:
		c.stats.checkpoints.Add(1)
	}
	if c.metrics != nil {
		switch obj.typ {
		case Dump:
			c.metrics.dumps.Inc()
			c.metrics.baseBytes.Add(float64(size))
			c.metrics.uploadDump.ObserveDuration(c.clk.Since(uploadStart))
		case Delta:
			c.metrics.deltas.Inc()
			c.metrics.deltaBytes.Add(float64(size))
			c.metrics.uploadDelta.ObserveDuration(c.clk.Since(uploadStart))
		default:
			c.metrics.checkpoints.Inc()
			c.metrics.ckptBytes.Add(float64(size))
			c.metrics.uploadCkpt.ObserveDuration(c.clk.Since(uploadStart))
		}
	}
	c.params.logger().Info("db object uploaded",
		"type", string(obj.typ), "ts", obj.ts, "gen", obj.gen,
		"bytes", size, "parts", len(parts))

	// Garbage collection (lines 23-29). Deletes go through the same
	// bounded pool: each success is recorded in the view individually, so
	// a failure mid-GC leaves the view accurate about what still exists.
	var victims []WALObjectInfo
	for _, w := range c.view.WALObjects() {
		if w.Ts <= obj.ts {
			victims = append(victims, w)
		}
	}
	if c.params.RetainFor > 0 {
		// Point-in-time retention: stamp the supersession instead of
		// deleting. The WAL stays in the cloud (and in the view, so
		// RecoverAt can replay it) until the window expires.
		now := c.clk.Now()
		c.retMu.Lock()
		marked := 0
		for _, w := range victims {
			if _, ok := c.walRetired[w.Ts]; !ok {
				c.walRetired[w.Ts] = retiredObject{wal: w, at: now}
				marked++
			}
		}
		c.retMu.Unlock()
		if marked > 0 {
			c.params.logger().Debug("retained superseded WAL objects",
				"count", marked, "up_to_ts", obj.ts, "window", c.params.RetainFor)
		}
	} else {
		err = runLimited(c.ctx, c.params.CheckpointUploaders, len(victims), func(ctx context.Context, i int) error {
			w := victims[i]
			c.delInflight.enter()
			err := c.deleteObject(ctx, w.Name())
			c.delInflight.exit()
			if err != nil {
				return err
			}
			c.view.DeleteWAL(w.Ts)
			c.stats.walDeleted.Add(1)
			if c.metrics != nil {
				c.metrics.walDeleted.Inc()
			}
			return nil
		})
		if err != nil {
			return err
		}
		if len(victims) > 0 {
			c.params.logger().Debug("garbage-collected WAL objects",
				"count", len(victims), "up_to_ts", obj.ts)
		}
	}
	if obj.typ == Dump {
		if err := c.collectOldDBObjects(); err != nil {
			return err
		}
	}
	if obj.typ == Delta {
		if err := c.collectSupersededCheckpoints(obj); err != nil {
			return err
		}
	}
	if c.params.RetainFor > 0 {
		// Trim inline too: the cap (RetainObjects) must hold even between
		// trimmer ticks, and an expired window should not wait for one.
		if err := c.trimRetention(); err != nil {
			return err
		}
	}
	return nil
}

// collectOldDBObjects deletes DB objects superseded by the newest dump,
// plus any orphan parts recorded at LoadFromList time (leftovers of
// uploads a previous incarnation never finished). With
// PITRGenerations = N, the N most recent dump generations (each dump and
// its incremental checkpoints) are retained as recovery points (§5.4,
// point-in-time recovery).
func (c *checkpointer) collectOldDBObjects() error {
	objs := c.view.DBObjects() // sorted by (Ts, Gen)
	var dumps []DBObjectInfo
	for _, d := range objs {
		if d.Type == Dump {
			dumps = append(dumps, d)
		}
	}
	// Flatten every victim's part names into one work list so the pool
	// stays saturated across object boundaries; a victim leaves the view
	// only once its last part is gone, so an interrupted GC leaves the
	// view conservative (object still listed, next dump retries).
	type dbVictim struct {
		d         DBObjectInfo
		remaining atomic.Int64
	}
	var (
		names  []string
		owners []*dbVictim // nil entry = orphan part, not a view object
	)
	if len(dumps) > 0 {
		// The cutoff is the oldest dump that must survive: keep the newest
		// dump plus PITRGenerations older ones.
		keep := 1 + c.params.PITRGenerations
		if keep > len(dumps) {
			keep = len(dumps)
		}
		cutoff := dumps[len(dumps)-keep]
		for _, d := range objs {
			if !d.Before(cutoff) {
				continue
			}
			if c.params.RetainFor > 0 {
				// Retention window: retire instead of delete. The object
				// stays listed for RecoverAt but leaves the 150 %-rule size
				// accounting; the trimmer deletes it when the window closes.
				now := c.clk.Now()
				c.retMu.Lock()
				k := dbKey{ts: d.Ts, gen: d.Gen}
				if _, ok := c.dbRetired[k]; !ok {
					c.dbRetired[k] = retiredObject{db: d, at: now}
				}
				c.retMu.Unlock()
				c.view.MarkDBRetired(d.Ts, d.Gen)
				continue
			}
			v := &dbVictim{d: d}
			pn := d.PartNames()
			v.remaining.Store(int64(len(pn)))
			for _, name := range pn {
				names = append(names, name)
				owners = append(owners, v)
			}
		}
	}
	// Orphan parts ride the same delete pool. They were never in the view,
	// so success just drops the orphan record — an interrupted sweep
	// retries the remainder on the next dump.
	orphans := c.view.OrphanParts()
	for _, o := range orphans {
		names = append(names, o.Name)
		owners = append(owners, nil)
	}
	err := runLimited(c.ctx, c.params.CheckpointUploaders, len(names), func(ctx context.Context, i int) error {
		c.delInflight.enter()
		err := c.deleteObject(ctx, names[i])
		c.delInflight.exit()
		if err != nil {
			return err
		}
		v := owners[i]
		if v == nil {
			c.view.DropOrphan(names[i])
			return nil
		}
		if v.remaining.Add(-1) == 0 {
			c.view.DeleteDB(v.d.Ts, v.d.Gen)
			c.stats.dbDeleted.Add(1)
			if c.metrics != nil {
				c.metrics.dbDeleted.Inc()
			}
		}
		return nil
	})
	if err == nil && len(orphans) > 0 {
		c.params.logger().Info("garbage-collected orphan DB parts",
			"count", len(orphans))
	}
	return err
}

// collectSupersededCheckpoints deletes (or retires, under a retention
// window) the incremental Checkpoint objects a freshly durable delta
// supersedes: every Checkpoint strictly between the delta's base and the
// delta itself. The delta recaptured every range those checkpoints
// dirtied (the dirty map is fed from the same collected writes), so they
// add nothing to recovery once the delta is durable — and removing them
// is what keeps the chain self-describing for LoadFromList, which never
// needs intervening checkpoints to materialize a chain.
func (c *checkpointer) collectSupersededCheckpoints(obj dbObject) error {
	base := DBObjectInfo{Ts: obj.baseTs, Gen: obj.baseGen}
	self := DBObjectInfo{Ts: obj.ts, Gen: obj.gen}
	type dbVictim struct {
		d         DBObjectInfo
		remaining atomic.Int64
	}
	var (
		names  []string
		owners []*dbVictim
	)
	for _, d := range c.view.DBObjects() {
		if d.Type != Checkpoint || !base.Before(d) || !d.Before(self) {
			continue
		}
		if c.params.RetainFor > 0 {
			now := c.clk.Now()
			c.retMu.Lock()
			k := dbKey{ts: d.Ts, gen: d.Gen}
			if _, ok := c.dbRetired[k]; !ok {
				c.dbRetired[k] = retiredObject{db: d, at: now}
			}
			c.retMu.Unlock()
			c.view.MarkDBRetired(d.Ts, d.Gen)
			continue
		}
		v := &dbVictim{d: d}
		pn := d.PartNames()
		v.remaining.Store(int64(len(pn)))
		for _, name := range pn {
			names = append(names, name)
			owners = append(owners, v)
		}
	}
	err := runLimited(c.ctx, c.params.CheckpointUploaders, len(names), func(ctx context.Context, i int) error {
		c.delInflight.enter()
		err := c.deleteObject(ctx, names[i])
		c.delInflight.exit()
		if err != nil {
			return err
		}
		v := owners[i]
		if v.remaining.Add(-1) == 0 {
			c.view.DeleteDB(v.d.Ts, v.d.Gen)
			c.stats.dbDeleted.Add(1)
			if c.metrics != nil {
				c.metrics.dbDeleted.Inc()
			}
		}
		return nil
	})
	if err == nil && len(owners) > 0 {
		c.params.logger().Debug("garbage-collected superseded checkpoints",
			"delta_ts", obj.ts, "delta_gen", obj.gen)
	}
	return err
}

func (c *checkpointer) deleteObject(ctx context.Context, name string) error {
	delay := c.params.RetryBaseDelay
	for attempt := 0; ; attempt++ {
		err := c.store.Delete(ctx, name)
		if err == nil || errors.Is(err, cloud.ErrNotFound) {
			return nil
		}
		if ctx.Err() != nil {
			return fmt.Errorf("core: delete %s: %w", name, err)
		}
		if c.params.UploadRetries > 0 && attempt+1 >= c.params.UploadRetries {
			return fmt.Errorf("core: delete %s: %w", name, err)
		}
		if simclock.SleepCtx(ctx, c.clk, delay) != nil {
			return fmt.Errorf("core: delete %s: %w", name, err)
		}
		if delay < maxRetryDelay {
			delay *= 2
		}
	}
}

func (c *checkpointer) putWithRetry(ctx context.Context, name string, data []byte) error {
	delay := c.params.RetryBaseDelay
	for attempt := 0; ; attempt++ {
		err := c.store.Put(ctx, name, data)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return err
		}
		if c.params.UploadRetries > 0 && attempt+1 >= c.params.UploadRetries {
			return err
		}
		if simclock.SleepCtx(ctx, c.clk, delay) != nil {
			return err
		}
		if delay < maxRetryDelay {
			delay *= 2
		}
	}
}

// trimRetention deletes retired objects whose RetainFor window has
// closed, plus — BtrLog-style bounded chain length — the oldest-superseded
// entries beyond the RetainObjects cap, even if their window is still
// open. Runs from the background trimmer and inline after each upload's
// GC; trimMu keeps the two from racing each other.
func (c *checkpointer) trimRetention() error {
	c.trimMu.Lock()
	defer c.trimMu.Unlock()
	now := c.clk.Now()

	type victim struct {
		at    time.Time
		isWAL bool
		wal   WALObjectInfo
		db    DBObjectInfo
	}
	c.retMu.Lock()
	all := make([]victim, 0, len(c.walRetired)+len(c.dbRetired))
	for _, r := range c.walRetired {
		all = append(all, victim{at: r.at, isWAL: true, wal: r.wal})
	}
	for _, r := range c.dbRetired {
		all = append(all, victim{at: r.at, db: r.db})
	}
	c.retMu.Unlock()
	sort.Slice(all, func(i, j int) bool {
		if !all[i].at.Equal(all[j].at) {
			return all[i].at.Before(all[j].at)
		}
		// Same stamp (one GC sweep): trim WAL before the checkpoint that
		// superseded it, and older timestamps first, for determinism.
		if all[i].isWAL != all[j].isWAL {
			return all[i].isWAL
		}
		if all[i].isWAL {
			return all[i].wal.Ts < all[j].wal.Ts
		}
		return all[i].db.Before(all[j].db)
	})
	overflow := len(all) - c.params.RetainObjects
	var victims []victim
	for i, v := range all {
		if i < overflow || !now.Before(v.at.Add(c.params.RetainFor)) {
			victims = append(victims, v)
		}
	}
	if len(victims) == 0 {
		return nil
	}
	err := runLimited(c.ctx, c.params.CheckpointUploaders, len(victims), func(ctx context.Context, i int) error {
		v := victims[i]
		if v.isWAL {
			c.delInflight.enter()
			err := c.deleteObject(ctx, v.wal.Name())
			c.delInflight.exit()
			if err != nil {
				return err
			}
			c.view.DeleteWAL(v.wal.Ts)
			c.stats.walDeleted.Add(1)
			if c.metrics != nil {
				c.metrics.walDeleted.Inc()
			}
			c.retMu.Lock()
			delete(c.walRetired, v.wal.Ts)
			c.retMu.Unlock()
			return nil
		}
		for _, name := range v.db.PartNames() {
			c.delInflight.enter()
			err := c.deleteObject(ctx, name)
			c.delInflight.exit()
			if err != nil {
				return err
			}
		}
		c.view.DeleteDB(v.db.Ts, v.db.Gen)
		c.stats.dbDeleted.Add(1)
		if c.metrics != nil {
			c.metrics.dbDeleted.Inc()
		}
		c.retMu.Lock()
		delete(c.dbRetired, dbKey{ts: v.db.Ts, gen: v.db.Gen})
		c.retMu.Unlock()
		return nil
	})
	if err == nil {
		c.params.logger().Debug("trimmed retention window",
			"deleted", len(victims), "retained", len(all)-len(victims))
	}
	return err
}

func (c *checkpointer) noteEnqueued() {
	c.settleMu.Lock()
	c.enqueuedN++
	c.settleMu.Unlock()
}

func (c *checkpointer) noteProcessed() {
	c.settleMu.Lock()
	c.processedN++
	if c.processedN >= c.enqueuedN && c.settleCh != nil {
		close(c.settleCh)
		c.settleCh = nil
	}
	c.settleMu.Unlock()
}

// sync blocks until every checkpoint/dump enqueued so far has been fully
// processed — uploaded, recorded in the view, and its GC sweep finished —
// or until the timeout (false). A failed checkpointer returns false
// immediately: its queue will never drain.
func (c *checkpointer) sync(timeout time.Duration) bool {
	t := c.clk.NewTimer(timeout)
	defer t.Stop()
	for {
		c.settleMu.Lock()
		if c.processedN >= c.enqueuedN {
			c.settleMu.Unlock()
			return true
		}
		if c.settleCh == nil {
			c.settleCh = make(chan struct{})
		}
		ch := c.settleCh
		c.settleMu.Unlock()
		select {
		case <-ch:
		case <-t.C():
			return false
		case <-c.ctx.Done():
			return false
		}
	}
}

func (c *checkpointer) fail(err error) {
	c.errMu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.errMu.Unlock()
	c.cancel()
}

func (c *checkpointer) lastErr() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.err
}

func estimateSize(writes []FileWrite) int64 {
	var n int64
	for _, w := range writes {
		n += int64(len(w.Data))
	}
	return n
}

// splitBytes chops b into chunks of at most max bytes (at least one
// chunk). Chunks are copies, not sub-slices: a retained part must not pin
// the whole multi-part sealed buffer (think one 20 MiB part keeping a
// multi-GB dump alive in a store or retry queue). The single-chunk case
// returns b itself — the part IS the whole buffer, nothing extra is pinned.
func splitBytes(b []byte, max int64) [][]byte {
	if max <= 0 || int64(len(b)) <= max {
		return [][]byte{b}
	}
	var out [][]byte
	for start := int64(0); start < int64(len(b)); start += max {
		end := start + max
		if end > int64(len(b)) {
			end = int64(len(b))
		}
		part := make([]byte, end-start)
		copy(part, b[start:end])
		out = append(out, part)
	}
	return out
}
