package core_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/core"
	"github.com/ginja-dr/ginja/internal/dbevent"
	"github.com/ginja-dr/ginja/internal/minidb"
	"github.com/ginja-dr/ginja/internal/minidb/innoengine"
	"github.com/ginja-dr/ginja/internal/minidb/pgengine"
	"github.com/ginja-dr/ginja/internal/vfs"
)

// rig bundles one protected database for tests.
type rig struct {
	localFS vfs.FS
	store   cloud.ObjectStore
	g       *core.Ginja
	db      *minidb.DB
	engine  func() minidb.Engine
	proc    func() dbevent.Processor
}

func fastParams() core.Params {
	p := core.DefaultParams()
	p.Batch = 4
	p.Safety = 64
	p.BatchTimeout = 20 * time.Millisecond
	p.SafetyTimeout = 5 * time.Second
	p.RetryBaseDelay = time.Millisecond
	return p
}

// newRig boots Ginja over a fresh database.
func newRig(t *testing.T, store cloud.ObjectStore, params core.Params,
	engine func() minidb.Engine, proc func() dbevent.Processor) *rig {
	t.Helper()
	localFS := vfs.NewMemFS()
	g, err := core.New(localFS, store, proc(), params)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Boot(context.Background()); err != nil {
		t.Fatalf("Boot: %v", err)
	}
	db, err := minidb.Open(g.FS(), engine(), minidb.Options{})
	if err != nil {
		t.Fatalf("Open DB: %v", err)
	}
	r := &rig{localFS: localFS, store: store, g: g, db: db, engine: engine, proc: proc}
	t.Cleanup(func() { r.g.Close() })
	return r
}

func pgRig(t *testing.T, params core.Params) *rig {
	return newRig(t, cloud.NewMemStore(), params,
		func() minidb.Engine { return pgengine.NewWithSizes(1024, 16*1024, 1024) },
		func() dbevent.Processor { return dbevent.NewPGProcessor() })
}

func innoRig(t *testing.T, params core.Params) *rig {
	return newRig(t, cloud.NewMemStore(), params,
		func() minidb.Engine { return innoengine.NewWithSizes(512, 2048+512*128, 1024, 4) },
		func() dbevent.Processor { return dbevent.NewInnoProcessor() })
}

func (r *rig) put(t *testing.T, table, key, value string) {
	t.Helper()
	if err := r.db.Update(func(tx *minidb.Txn) error {
		return tx.Put(table, []byte(key), []byte(value))
	}); err != nil {
		t.Fatalf("put: %v", err)
	}
}

// disasterRecover simulates losing the primary: a brand-new machine
// (fresh FS, fresh Ginja) recovers from the cloud and reopens the DBMS.
func (r *rig) disasterRecover(t *testing.T) *minidb.DB {
	t.Helper()
	freshFS := vfs.NewMemFS()
	g2, err := core.New(freshFS, r.store, r.proc(), r.g.Params())
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.Recover(context.Background()); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	t.Cleanup(func() { g2.Close() })
	db2, err := minidb.Open(g2.FS(), r.engine(), minidb.Options{})
	if err != nil {
		t.Fatalf("reopen DB after recovery: %v", err)
	}
	return db2
}

func TestEndToEndDisasterRecovery(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(*testing.T, core.Params) *rig
	}{
		{"postgresql", pgRig},
		{"mysql", innoRig},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := tc.mk(t, fastParams())
			if err := r.db.CreateTable("accounts", 0); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 50; i++ {
				r.put(t, "accounts", fmt.Sprintf("acct-%03d", i), fmt.Sprintf("balance-%d", i*100))
			}
			if !r.g.Flush(5 * time.Second) {
				t.Fatal("flush timed out")
			}
			db2 := r.disasterRecover(t)
			for i := 0; i < 50; i++ {
				v, err := db2.Get("accounts", []byte(fmt.Sprintf("acct-%03d", i)))
				if err != nil {
					t.Fatalf("acct-%03d lost in disaster: %v", i, err)
				}
				if string(v) != fmt.Sprintf("balance-%d", i*100) {
					t.Fatalf("acct-%03d = %q", i, v)
				}
			}
		})
	}
}

func TestRecoveryAfterCheckpointGC(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(*testing.T, core.Params) *rig
	}{
		{"postgresql", pgRig},
		{"mysql", innoRig},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := tc.mk(t, fastParams())
			if err := r.db.CreateTable("kv", 0); err != nil {
				t.Fatal(err)
			}
			for round := 0; round < 3; round++ {
				for i := 0; i < 20; i++ {
					r.put(t, "kv", fmt.Sprintf("r%d-k%02d", round, i), "v")
				}
				if !r.g.Flush(5 * time.Second) {
					t.Fatal("flush timed out")
				}
				if err := r.db.Checkpoint(); err != nil {
					t.Fatal(err)
				}
				waitCheckpointUploaded(t, r.g, int64(round+1))
			}
			// Post-checkpoint commits (will live only in WAL objects).
			for i := 0; i < 10; i++ {
				r.put(t, "kv", fmt.Sprintf("tail-%02d", i), "v")
			}
			if !r.g.Flush(5 * time.Second) {
				t.Fatal("flush timed out")
			}

			// GC must have removed WAL objects covered by checkpoints.
			if s := r.g.Stats(); s.WALObjectsDeleted == 0 {
				t.Fatal("no WAL garbage collection happened")
			}
			db2 := r.disasterRecover(t)
			for round := 0; round < 3; round++ {
				for i := 0; i < 20; i++ {
					if _, err := db2.Get("kv", []byte(fmt.Sprintf("r%d-k%02d", round, i))); err != nil {
						t.Fatalf("r%d-k%02d lost: %v", round, i, err)
					}
				}
			}
			for i := 0; i < 10; i++ {
				if _, err := db2.Get("kv", []byte(fmt.Sprintf("tail-%02d", i))); err != nil {
					t.Fatalf("tail-%02d lost: %v", i, err)
				}
			}
		})
	}
}

func waitCheckpointUploaded(t *testing.T, g *core.Ginja, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s := g.Stats()
		if s.Checkpoints+s.Dumps >= want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("checkpoint %d never uploaded (stats: %+v, err: %v)", want, g.Stats(), g.Err())
}

func TestDumpTriggeredAt150Percent(t *testing.T) {
	r := pgRig(t, fastParams())
	if err := r.db.CreateTable("kv", 0); err != nil {
		t.Fatal(err)
	}
	// Repeatedly rewrite the same keys and checkpoint: cloud DB objects
	// accumulate until the 150 % rule forces a dump.
	var ckpts int64
	for round := 0; round < 40 && r.g.Stats().Dumps == 0; round++ {
		for i := 0; i < 10; i++ {
			r.put(t, "kv", fmt.Sprintf("k%02d", i), fmt.Sprintf("round-%d", round))
		}
		if !r.g.Flush(5 * time.Second) {
			t.Fatal("flush timed out")
		}
		if err := r.db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		ckpts++
		waitCheckpointUploaded(t, r.g, ckpts)
	}
	s := r.g.Stats()
	if s.Dumps == 0 {
		t.Fatalf("150%% rule never produced a dump (stats %+v)", s)
	}
	// The dump is counted when its parts are durable, before its GC sweep
	// runs on the checkpoint worker; SyncCheckpoints is the deterministic
	// barrier for "uploaded AND swept", so no polling is needed.
	if !r.g.SyncCheckpoints(5 * time.Second) {
		t.Fatal("checkpoint queue did not settle")
	}
	if r.g.Stats().DBObjectsDeleted == 0 {
		t.Fatal("dump did not garbage-collect older DB objects")
	}
	// And the database remains recoverable afterwards.
	db2 := r.disasterRecover(t)
	for i := 0; i < 10; i++ {
		if _, err := db2.Get("kv", []byte(fmt.Sprintf("k%02d", i))); err != nil {
			t.Fatalf("k%02d lost after dump: %v", i, err)
		}
	}
}

func TestRebootResumesProtection(t *testing.T) {
	store := cloud.NewMemStore()
	r := newRig(t, store, fastParams(),
		func() minidb.Engine { return pgengine.NewWithSizes(1024, 16*1024, 1024) },
		func() dbevent.Processor { return dbevent.NewPGProcessor() })
	if err := r.db.CreateTable("kv", 0); err != nil {
		t.Fatal(err)
	}
	r.put(t, "kv", "before", "stop")
	if !r.g.Flush(5 * time.Second) {
		t.Fatal("flush")
	}
	// Safe stop.
	if err := r.db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.g.Close(); err != nil {
		t.Fatal(err)
	}

	// Reboot on the same local files + same cloud.
	g2, err := core.New(r.localFS, store, dbevent.NewPGProcessor(), fastParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.Reboot(context.Background()); err != nil {
		t.Fatalf("Reboot: %v", err)
	}
	defer g2.Close()
	db2, err := minidb.Open(g2.FS(), pgengine.NewWithSizes(1024, 16*1024, 1024), minidb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db2.Update(func(tx *minidb.Txn) error {
		return tx.Put("kv", []byte("after"), []byte("reboot"))
	}); err != nil {
		t.Fatal(err)
	}
	if !g2.Flush(5 * time.Second) {
		t.Fatal("flush after reboot")
	}

	// Disaster after reboot: both writes must be recoverable.
	freshFS := vfs.NewMemFS()
	g3, err := core.New(freshFS, store, dbevent.NewPGProcessor(), fastParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := g3.Recover(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer g3.Close()
	db3, err := minidb.Open(g3.FS(), pgengine.NewWithSizes(1024, 16*1024, 1024), minidb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"before", "after"} {
		if _, err := db3.Get("kv", []byte(key)); err != nil {
			t.Fatalf("%s lost across reboot: %v", key, err)
		}
	}
}

func TestRecoverEmptyCloudFails(t *testing.T) {
	g, err := core.New(vfs.NewMemFS(), cloud.NewMemStore(), dbevent.NewPGProcessor(), fastParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Recover(context.Background()); !errors.Is(err, core.ErrNoDump) {
		t.Fatalf("Recover on empty cloud = %v, want ErrNoDump", err)
	}
}

func TestCompressionAndEncryptionEndToEnd(t *testing.T) {
	for _, cfg := range []struct {
		name     string
		compress bool
		encrypt  bool
	}{
		{"comp", true, false},
		{"crypt", false, true},
		{"c+c", true, true},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			p := fastParams()
			p.Compress = cfg.compress
			p.Encrypt = cfg.encrypt
			if cfg.encrypt {
				p.Password = "correct horse battery staple"
			}
			r := pgRig(t, p)
			if err := r.db.CreateTable("kv", 0); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 30; i++ {
				r.put(t, "kv", fmt.Sprintf("k%02d", i), fmt.Sprintf("v%02d", i))
			}
			if !r.g.Flush(5 * time.Second) {
				t.Fatal("flush")
			}
			db2 := r.disasterRecover(t)
			for i := 0; i < 30; i++ {
				v, err := db2.Get("kv", []byte(fmt.Sprintf("k%02d", i)))
				if err != nil || string(v) != fmt.Sprintf("v%02d", i) {
					t.Fatalf("k%02d = %q, %v", i, v, err)
				}
			}
			if cfg.compress {
				s := r.g.Stats()
				if s.WALBytesUploaded >= s.WALBytesRaw {
					t.Fatalf("compression did not shrink uploads: %d ≥ %d",
						s.WALBytesUploaded, s.WALBytesRaw)
				}
			}
		})
	}
}

func TestWrongPasswordCannotRecover(t *testing.T) {
	p := fastParams()
	p.Encrypt = true
	p.Password = "right"
	r := pgRig(t, p)
	if err := r.db.CreateTable("kv", 0); err != nil {
		t.Fatal(err)
	}
	r.put(t, "kv", "k", "v")
	if !r.g.Flush(5 * time.Second) {
		t.Fatal("flush")
	}
	bad := p
	bad.Password = "wrong"
	g2, err := core.New(vfs.NewMemFS(), r.store, dbevent.NewPGProcessor(), bad)
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.Recover(context.Background()); err == nil {
		t.Fatal("recovery with the wrong password succeeded")
	}
}

func TestSafetyBoundsDataLoss(t *testing.T) {
	// With uploads stalled, commit N updates (< S so nothing blocks),
	// then a disaster strikes: recovery must restore the pre-stall state
	// and lose at most S updates — here, exactly the stalled tail.
	store := newBlockableStore()
	params := fastParams()
	params.Batch = 2
	params.Safety = 16
	r := newRig(t, store, params,
		func() minidb.Engine { return pgengine.NewWithSizes(1024, 16*1024, 1024) },
		func() dbevent.Processor { return dbevent.NewPGProcessor() })
	if err := r.db.CreateTable("kv", 0); err != nil {
		t.Fatal(err)
	}
	r.put(t, "kv", "durable", "yes")
	if !r.g.Flush(5 * time.Second) {
		t.Fatal("flush")
	}

	release := store.block()  // cloud outage starts
	for i := 0; i < 10; i++ { // 10 < S: commits proceed locally
		r.put(t, "kv", fmt.Sprintf("lost-%02d", i), "maybe")
	}
	close(release) // irrelevant: disaster already "happened"; recover from what's durable

	db2 := r.disasterRecover(t)
	if _, err := db2.Get("kv", []byte("durable")); err != nil {
		t.Fatalf("durable key lost: %v", err)
	}
	// The stalled updates may or may not have made it (the release let
	// some through); the invariant is bounded loss, not exact content:
	lost := 0
	for i := 0; i < 10; i++ {
		if _, err := db2.Get("kv", []byte(fmt.Sprintf("lost-%02d", i))); err != nil {
			lost++
		}
	}
	if lost > params.Safety {
		t.Fatalf("lost %d updates, Safety promised ≤ %d", lost, params.Safety)
	}
}

func TestPITRGenerationsRetained(t *testing.T) {
	p := fastParams()
	p.PITRGenerations = 2
	p.DumpThreshold = 1.0 // dump as soon as cloud DB size reaches local size
	r := pgRig(t, p)
	// A tiny table (4 buckets) keeps the local size small so the dump
	// threshold trips after a few checkpoints.
	if err := r.db.CreateTable("kv", 4); err != nil {
		t.Fatal(err)
	}
	var uploads int64
	for round := 0; round < 10; round++ {
		r.put(t, "kv", "version", fmt.Sprintf("gen-%d-%s", round, string(make([]byte, 500))))
		if !r.g.Flush(5 * time.Second) {
			t.Fatal("flush")
		}
		if err := r.db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		uploads++
		waitCheckpointUploaded(t, r.g, uploads)
	}
	if r.g.Stats().Dumps < 3 {
		t.Fatalf("only %d dumps happened; the test needs ≥ 3 generations", r.g.Stats().Dumps)
	}
	dumps := 0
	for _, d := range r.g.View().DBObjects() {
		if d.Type == core.Dump {
			dumps++
		}
	}
	// Latest + 2 retained generations.
	if dumps != 3 {
		t.Fatalf("retained %d dumps, want 3 (1 current + 2 PITR)", dumps)
	}

	// Restore the OLDEST retained generation and check it shows an older
	// version of the row.
	var gens []int64
	for _, d := range r.g.View().DBObjects() {
		if d.Type == core.Dump {
			gens = append(gens, d.Ts)
		}
	}
	oldest := gens[0]
	for _, ts := range gens {
		if ts < oldest {
			oldest = ts
		}
	}
	target := vfs.NewMemFS()
	gr, err := core.New(vfs.NewMemFS(), r.store, dbevent.NewPGProcessor(), p)
	if err != nil {
		t.Fatal(err)
	}
	if err := gr.RecoverAt(context.Background(), target, oldest); err != nil {
		t.Fatalf("RecoverAt: %v", err)
	}
	dbOld, err := minidb.Open(target, pgengine.NewWithSizes(1024, 16*1024, 1024), minidb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := dbOld.Get("kv", []byte("version"))
	if err != nil {
		t.Fatalf("version missing in PITR restore: %v", err)
	}
	latest, err := r.db.Get("kv", []byte("version"))
	if err != nil {
		t.Fatal(err)
	}
	if string(v) == string(latest) {
		t.Fatalf("PITR restore shows the latest version %q, want an older one", v)
	}
}

func TestBackupVerification(t *testing.T) {
	r := pgRig(t, fastParams())
	if err := r.db.CreateTable("kv", 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		r.put(t, "kv", fmt.Sprintf("k%02d", i), "v")
	}
	if !r.g.Flush(5 * time.Second) {
		t.Fatal("flush")
	}

	gv, err := core.New(vfs.NewMemFS(), r.store, dbevent.NewPGProcessor(), fastParams())
	if err != nil {
		t.Fatal(err)
	}
	target := vfs.NewMemFS()
	res, err := gv.Verify(context.Background(), target,
		func(fsys vfs.FS) error { // step 2: DBMS restart
			db, err := minidb.Open(fsys, pgengine.NewWithSizes(1024, 16*1024, 1024), minidb.Options{})
			if err != nil {
				return err
			}
			return db.Close()
		},
		func(fsys vfs.FS) error { // step 3: probe queries
			db, err := minidb.Open(fsys, pgengine.NewWithSizes(1024, 16*1024, 1024), minidb.Options{})
			if err != nil {
				return err
			}
			if _, err := db.Get("kv", []byte("k00")); err != nil {
				return err
			}
			return nil
		})
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if res.ObjectsChecked == 0 || !res.RestartOK || !res.ProbeOK {
		t.Fatalf("VerifyResult = %+v", res)
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	r := pgRig(t, fastParams())
	if err := r.db.CreateTable("kv", 0); err != nil {
		t.Fatal(err)
	}
	r.put(t, "kv", "k", "v")
	if !r.g.Flush(5 * time.Second) {
		t.Fatal("flush")
	}
	// Corrupt one object in the cloud.
	ctx := context.Background()
	infos, err := r.store.List(ctx, "WAL/")
	if err != nil || len(infos) == 0 {
		t.Fatalf("list: %v (%d objects)", err, len(infos))
	}
	data, err := r.store.Get(ctx, infos[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := r.store.Put(ctx, infos[0].Name, data); err != nil {
		t.Fatal(err)
	}

	gv, err := core.New(vfs.NewMemFS(), r.store, dbevent.NewPGProcessor(), fastParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gv.Verify(ctx, vfs.NewMemFS(), nil, nil); err == nil {
		t.Fatal("verification accepted a tampered object")
	}
}

func TestMultiCloudSurvivesProviderOutage(t *testing.T) {
	s1, s2, s3 := cloud.NewMemStore(), cloud.NewMemStore(), cloud.NewMemStore()
	dead := &failingStore{} // provider 3 is down from the start
	repl, err := core.NewReplicatedStore(s1, s2, dead)
	if err != nil {
		t.Fatal(err)
	}
	_ = s3
	r := newRig(t, repl, fastParams(),
		func() minidb.Engine { return pgengine.NewWithSizes(1024, 16*1024, 1024) },
		func() dbevent.Processor { return dbevent.NewPGProcessor() })
	if err := r.db.CreateTable("kv", 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		r.put(t, "kv", fmt.Sprintf("k%02d", i), "v")
	}
	if !r.g.Flush(5 * time.Second) {
		t.Fatal("flush with one dead provider")
	}
	db2 := r.disasterRecover(t)
	for i := 0; i < 20; i++ {
		if _, err := db2.Get("kv", []byte(fmt.Sprintf("k%02d", i))); err != nil {
			t.Fatalf("k%02d lost: %v", i, err)
		}
	}
}

// blockableStore stalls every Put while the gate is armed.
type blockableStore struct {
	cloud.ObjectStore

	mu   chan struct{} // nil when open
	gate chan struct{}
}

func newBlockableStore() *blockableStore {
	return &blockableStore{ObjectStore: cloud.NewMemStore()}
}

func (b *blockableStore) block() chan struct{} {
	b.gate = make(chan struct{})
	return b.gate
}

func (b *blockableStore) Put(ctx context.Context, name string, data []byte) error {
	if g := b.gate; g != nil {
		select {
		case <-g:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return b.ObjectStore.Put(ctx, name, data)
}

type failingStore struct{}

var _ cloud.ObjectStore = failingStore{}

func (failingStore) Put(context.Context, string, []byte) error { return errors.New("provider down") }
func (failingStore) Get(context.Context, string) ([]byte, error) {
	return nil, errors.New("provider down")
}
func (failingStore) List(context.Context, string) ([]cloud.ObjectInfo, error) {
	return nil, errors.New("provider down")
}
func (failingStore) Delete(context.Context, string) error { return errors.New("provider down") }

func TestStatsAccounting(t *testing.T) {
	r := pgRig(t, fastParams())
	if err := r.db.CreateTable("kv", 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		r.put(t, "kv", fmt.Sprintf("k%02d", i), "v")
	}
	if !r.g.Flush(5 * time.Second) {
		t.Fatal("flush")
	}
	s := r.g.Stats()
	if s.UpdatesObserved < 16 {
		t.Fatalf("UpdatesObserved = %d, want ≥ 16", s.UpdatesObserved)
	}
	if s.WALObjectsUploaded == 0 || s.WALBytesUploaded == 0 {
		t.Fatalf("upload stats empty: %+v", s)
	}
	if s.Batches == 0 {
		t.Fatal("no batches recorded")
	}
	if r.g.PendingUpdates() != 0 {
		t.Fatalf("PendingUpdates = %d after flush", r.g.PendingUpdates())
	}
}
