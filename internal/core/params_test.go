package core

import (
	"testing"
	"time"
)

func TestParamsValidateFillsDefaults(t *testing.T) {
	p, err := Params{}.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if p.Batch != DefaultBatch || p.Safety != DefaultSafety {
		t.Fatalf("B/S = %d/%d", p.Batch, p.Safety)
	}
	if p.Uploaders != DefaultUploaders {
		t.Fatalf("Uploaders = %d", p.Uploaders)
	}
	if p.MaxObjectSize != DefaultMaxObjectSize {
		t.Fatalf("MaxObjectSize = %d", p.MaxObjectSize)
	}
	if p.DumpThreshold != DefaultDumpThreshold {
		t.Fatalf("DumpThreshold = %v", p.DumpThreshold)
	}
	if p.BatchTimeout != DefaultBatchTimeout || p.SafetyTimeout != DefaultSafetyTimeout {
		t.Fatalf("timeouts = %v/%v", p.BatchTimeout, p.SafetyTimeout)
	}
}

func TestParamsValidateRejectsBadConfigs(t *testing.T) {
	tests := []struct {
		name string
		p    Params
	}{
		{"negative batch", Params{Batch: -1}},
		{"safety below batch", Params{Batch: 100, Safety: 10}},
		{"negative uploaders", Params{Uploaders: -2}},
		{"dump threshold below 1", Params{DumpThreshold: 0.5}},
		{"encrypt without password", Params{Encrypt: true}},
		{"negative PITR", Params{PITRGenerations: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := tt.p.Validate(); err == nil {
				t.Fatalf("accepted %+v", tt.p)
			}
		})
	}
}

func TestParamsPaperRecommendation(t *testing.T) {
	// §5.1: "Ideally, B should be substantially lower than S".
	p := DefaultParams()
	if p.Batch*2 > p.Safety {
		t.Fatalf("defaults violate the paper's B ≪ S guidance: B=%d S=%d", p.Batch, p.Safety)
	}
}

func TestNoLossParams(t *testing.T) {
	p, err := NoLoss().Validate()
	if err != nil {
		t.Fatal(err)
	}
	if p.Batch != 1 || p.Safety != 1 {
		t.Fatalf("NoLoss = B=%d S=%d", p.Batch, p.Safety)
	}
}

func TestParamsCustomValuesPreserved(t *testing.T) {
	in := Params{
		Batch:           7,
		Safety:          70,
		BatchTimeout:    3 * time.Second,
		SafetyTimeout:   9 * time.Second,
		Uploaders:       2,
		MaxObjectSize:   1 << 20,
		DumpThreshold:   2.0,
		Compress:        true,
		PITRGenerations: 4,
	}
	out, err := in.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if out.Batch != 7 || out.Safety != 70 || out.Uploaders != 2 ||
		out.MaxObjectSize != 1<<20 || out.DumpThreshold != 2.0 ||
		!out.Compress || out.PITRGenerations != 4 {
		t.Fatalf("custom values clobbered: %+v", out)
	}
}
