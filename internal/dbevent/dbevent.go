// Package dbevent classifies intercepted file writes into the three DBMS
// events Ginja needs (paper §4, Table 1): update commits (synchronous WAL
// writes), checkpoint begins, and checkpoint ends — plus the data-file
// writes in between that make up the checkpoint's content.
//
// A Processor is the only DBMS-specific part of Ginja (paper §6: "there
// are only two small modules that are specific for processing I/O from
// PostgreSQL and MySQL"); supporting another database means writing
// another Processor.
package dbevent

import (
	"strings"
	"sync"

	"github.com/ginja-dr/ginja/internal/minidb/innoengine"
	"github.com/ginja-dr/ginja/internal/minidb/pgengine"
)

// Type is the semantic kind of an intercepted write.
type Type int

// Event types, per paper Table 1.
const (
	// Other is a write Ginja does not replicate (temp files etc.).
	Other Type = iota
	// UpdateCommit is a synchronous write to a WAL segment.
	UpdateCommit
	// CheckpointBegin is the first write of a checkpoint. The carried
	// write is part of the checkpoint's data.
	CheckpointBegin
	// CheckpointData is a database-file write inside a checkpoint.
	CheckpointData
	// CheckpointEnd is the write after which old WAL entries are disposable.
	// The carried write is part of the checkpoint's data.
	CheckpointEnd
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case Other:
		return "other"
	case UpdateCommit:
		return "update-commit"
	case CheckpointBegin:
		return "checkpoint-begin"
	case CheckpointData:
		return "checkpoint-data"
	case CheckpointEnd:
		return "checkpoint-end"
	default:
		return "unknown"
	}
}

// Event is one classified write.
type Event struct {
	Type   Type
	Path   string
	Offset int64
	Data   []byte
}

// Kind is the static class of a database file, independent of any
// in-flight checkpoint state. Ginja uses it to decide which files belong
// in a dump and to measure the local database size (the 150 % rule).
type Kind int

// File kinds.
const (
	// KindOther files are not replicated (pid files, logs...).
	KindOther Kind = iota
	// KindWAL files hold the write-ahead log; they are replicated as WAL
	// objects and excluded from dumps.
	KindWAL
	// KindData files hold database state; dumps copy them whole.
	KindData
)

// Region is a byte range of a file.
type Region struct {
	Path   string
	Offset int64
	Length int64
}

// Processor classifies the write stream of one DBMS. Implementations may
// be stateful (InnoDB checkpoint detection is) and must be safe for
// concurrent use.
type Processor interface {
	// Name identifies the DBMS this processor understands.
	Name() string
	// Classify labels one intercepted write. The data slice is only valid
	// for the duration of the call.
	Classify(path string, off int64, data []byte) Event
	// FileKind statically classes a file path. Unlike Classify it never
	// mutates processor state.
	FileKind(path string) Kind
	// DumpExtras lists regions of non-data files that a dump must include
	// anyway. InnoDB keeps its checkpoint blocks inside ib_logfile0's
	// header, so that region must ride along with every dump.
	DumpExtras() []Region
}

// PGProcessor detects PostgreSQL's events (paper Table 1, left column):
// commit = sync write to a pg_xlog file; checkpoint begin = sync write to
// a pg_clog file; checkpoint end = sync write to global/pg_control.
type PGProcessor struct {
	mu     sync.Mutex
	inCkpt bool
}

var _ Processor = (*PGProcessor)(nil)

// NewPGProcessor returns a processor for the PostgreSQL write pattern.
func NewPGProcessor() *PGProcessor { return &PGProcessor{} }

// Name implements Processor.
func (*PGProcessor) Name() string { return "postgresql" }

// Classify implements Processor.
func (p *PGProcessor) Classify(path string, off int64, data []byte) Event {
	ev := Event{Path: path, Offset: off, Data: data}
	switch {
	case strings.HasPrefix(path, pgengine.WALDir+"/"):
		ev.Type = UpdateCommit
	case strings.HasPrefix(path, "pg_clog/"):
		p.mu.Lock()
		if p.inCkpt {
			ev.Type = CheckpointData
		} else {
			p.inCkpt = true
			ev.Type = CheckpointBegin
		}
		p.mu.Unlock()
	case path == pgengine.ControlPath:
		p.mu.Lock()
		p.inCkpt = false
		p.mu.Unlock()
		ev.Type = CheckpointEnd
	case strings.HasPrefix(path, "base/"), strings.HasPrefix(path, "global/"):
		ev.Type = CheckpointData
	default:
		ev.Type = Other
	}
	return ev
}

// FileKind implements Processor.
func (*PGProcessor) FileKind(path string) Kind {
	switch {
	case strings.HasPrefix(path, pgengine.WALDir+"/"):
		return KindWAL
	case strings.HasPrefix(path, "pg_clog/"),
		strings.HasPrefix(path, "base/"),
		strings.HasPrefix(path, "global/"):
		return KindData
	default:
		return KindOther
	}
}

// DumpExtras implements Processor: PostgreSQL keeps everything recovery
// needs in ordinary data files, so there are no extra regions.
func (*PGProcessor) DumpExtras() []Region { return nil }

// InnoProcessor detects MySQL/InnoDB's events (paper Table 1, right
// column): commit = sync write in an ib_logfile (except the header of
// ib_logfile0); checkpoint begin = sync write to one of the data files
// (ibdata, .ibd, .frm); checkpoint end = sync write at offset 512 and/or
// 1536 of ib_logfile0.
type InnoProcessor struct {
	mu     sync.Mutex
	inCkpt bool
}

var _ Processor = (*InnoProcessor)(nil)

// NewInnoProcessor returns a processor for the InnoDB write pattern.
func NewInnoProcessor() *InnoProcessor { return &InnoProcessor{} }

// Name implements Processor.
func (*InnoProcessor) Name() string { return "mysql" }

// Classify implements Processor.
func (p *InnoProcessor) Classify(path string, off int64, data []byte) Event {
	ev := Event{Path: path, Offset: off, Data: data}
	switch {
	case strings.HasPrefix(path, "ib_logfile"):
		if path == innoengine.LogFile0 && off < innoengine.HeaderSize {
			if off == innoengine.CheckpointOffset1 || off == innoengine.CheckpointOffset2 {
				p.mu.Lock()
				p.inCkpt = false
				p.mu.Unlock()
				ev.Type = CheckpointEnd
				return ev
			}
			ev.Type = Other // other header writes (file creation)
			return ev
		}
		if off < innoengine.HeaderSize {
			ev.Type = Other // ib_logfile1 header region
			return ev
		}
		ev.Type = UpdateCommit
	case isInnoDataFile(path):
		p.mu.Lock()
		if p.inCkpt {
			ev.Type = CheckpointData
		} else {
			p.inCkpt = true
			ev.Type = CheckpointBegin
		}
		p.mu.Unlock()
	default:
		ev.Type = Other
	}
	return ev
}

// FileKind implements Processor.
func (*InnoProcessor) FileKind(path string) Kind {
	switch {
	case strings.HasPrefix(path, "ib_logfile"):
		return KindWAL
	case isInnoDataFile(path):
		return KindData
	default:
		return KindOther
	}
}

// DumpExtras implements Processor: the checkpoint blocks (offsets 512 and
// 1536) live in ib_logfile0's 2048-byte header, so a dump must carry that
// region for the restored database to find its last checkpoint.
func (*InnoProcessor) DumpExtras() []Region {
	return []Region{{Path: innoengine.LogFile0, Offset: 0, Length: innoengine.HeaderSize}}
}

func isInnoDataFile(path string) bool {
	return strings.HasSuffix(path, ".ibd") ||
		strings.HasSuffix(path, ".frm") ||
		strings.HasPrefix(path, "ibdata")
}

// ForEngine returns the processor matching a minidb engine name
// ("postgresql" or "mysql"), or nil for unknown engines.
func ForEngine(name string) Processor {
	switch name {
	case "postgresql":
		return NewPGProcessor()
	case "mysql":
		return NewInnoProcessor()
	default:
		return nil
	}
}
