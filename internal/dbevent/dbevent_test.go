package dbevent

import (
	"testing"

	"github.com/ginja-dr/ginja/internal/minidb"
	"github.com/ginja-dr/ginja/internal/minidb/innoengine"
	"github.com/ginja-dr/ginja/internal/minidb/pgengine"
	"github.com/ginja-dr/ginja/internal/vfs"
)

func TestPGClassifyTable1(t *testing.T) {
	p := NewPGProcessor()
	tests := []struct {
		path string
		off  int64
		want Type
	}{
		{"pg_xlog/000000010000000000000000", 0, UpdateCommit},
		{"pg_xlog/000000010000000000000003", 8192, UpdateCommit},
		{"pg_clog/0000", 0, CheckpointBegin}, // first clog write begins the checkpoint
		{"base/16384/warehouse", 1024, CheckpointData},
		{"pg_clog/0000", 256, CheckpointData}, // clog writes inside the checkpoint are data
		{"global/pg_control", 0, CheckpointEnd},
		{"pg_clog/0000", 0, CheckpointBegin}, // next cycle begins again
		{"global/pg_control", 0, CheckpointEnd},
		{"postmaster.pid", 0, Other},
	}
	for i, tt := range tests {
		got := p.Classify(tt.path, tt.off, nil)
		if got.Type != tt.want {
			t.Errorf("step %d: Classify(%s, %d) = %v, want %v", i, tt.path, tt.off, got.Type, tt.want)
		}
	}
}

func TestInnoClassifyTable1(t *testing.T) {
	p := NewInnoProcessor()
	tests := []struct {
		path string
		off  int64
		want Type
	}{
		{"ib_logfile0", 2048, UpdateCommit}, // log data region
		{"ib_logfile0", 4096, UpdateCommit},
		{"ib_logfile1", 2048, UpdateCommit},
		{"ib_logfile0", 0, Other},         // file header (creation), not checkpoint
		{"ib_logfile1", 512, Other},       // header region of file1 is not a checkpoint block
		{"stock.ibd", 0, CheckpointBegin}, // first data write begins the fuzzy checkpoint
		{"orders.ibd", 16384, CheckpointData},
		{"ibdata1", 0, CheckpointData},
		{"ib_logfile0", 512, CheckpointEnd},
		{"customer.ibd", 0, CheckpointBegin}, // next cycle
		{"ib_logfile0", 1536, CheckpointEnd}, // alternate checkpoint block
		{"mysql.err", 0, Other},
	}
	for i, tt := range tests {
		got := p.Classify(tt.path, tt.off, nil)
		if got.Type != tt.want {
			t.Errorf("step %d: Classify(%s, %d) = %v, want %v", i, tt.path, tt.off, got.Type, tt.want)
		}
	}
}

func TestForEngine(t *testing.T) {
	if p := ForEngine("postgresql"); p == nil || p.Name() != "postgresql" {
		t.Fatalf("ForEngine(postgresql) = %v", p)
	}
	if p := ForEngine("mysql"); p == nil || p.Name() != "mysql" {
		t.Fatalf("ForEngine(mysql) = %v", p)
	}
	if p := ForEngine("oracle"); p != nil {
		t.Fatalf("ForEngine(oracle) = %v, want nil", p)
	}
}

// classifyRecorder tallies events per type from a live DB run.
type classifyRecorder struct {
	vfs.NopObserver

	proc   Processor
	counts map[Type]int
}

func (c *classifyRecorder) OnWrite(path string, off int64, data []byte) {
	ev := c.proc.Classify(path, off, data)
	c.counts[ev.Type]++
}

// TestLiveClassification runs a real minidb workload on each engine and
// checks the processor sees the full event cycle: commits, then a
// checkpoint begin → data → end sequence.
func TestLiveClassification(t *testing.T) {
	cases := []struct {
		name   string
		engine minidb.Engine
		proc   Processor
	}{
		{"postgresql", pgengine.NewWithSizes(1024, 16*1024, 1024), NewPGProcessor()},
		{"mysql", innoengine.NewWithSizes(512, 2048+512*64, 1024, 4), NewInnoProcessor()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := &classifyRecorder{proc: tc.proc, counts: make(map[Type]int)}
			fsys := vfs.NewInterceptFS(vfs.NewMemFS(), rec)
			db, err := minidb.Open(fsys, tc.engine, minidb.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := db.CreateTable("kv", 0); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 20; i++ {
				if err := db.Update(func(tx *minidb.Txn) error {
					return tx.Put("kv", []byte{byte('a' + i)}, []byte("value"))
				}); err != nil {
					t.Fatal(err)
				}
			}
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			if rec.counts[UpdateCommit] < 20 {
				t.Errorf("UpdateCommit = %d, want ≥ 20", rec.counts[UpdateCommit])
			}
			if rec.counts[CheckpointBegin] == 0 {
				t.Error("no CheckpointBegin observed")
			}
			if rec.counts[CheckpointEnd] == 0 {
				t.Error("no CheckpointEnd observed")
			}
			if rec.counts[CheckpointData] == 0 {
				t.Error("no CheckpointData observed")
			}
		})
	}
}

// TestLiveBeginBeforeEnd verifies event ordering on a live run: every
// CheckpointEnd is preceded by a matching CheckpointBegin.
func TestLiveBeginBeforeEnd(t *testing.T) {
	var seq []Type
	proc := NewPGProcessor()
	obs := &orderRecorder{proc: proc, seq: &seq}
	fsys := vfs.NewInterceptFS(vfs.NewMemFS(), obs)
	db, err := minidb.Open(fsys, pgengine.NewWithSizes(1024, 16*1024, 1024), minidb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("kv", 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := db.Update(func(tx *minidb.Txn) error {
			return tx.Put("kv", []byte{byte(i)}, []byte("v"))
		}); err != nil {
			t.Fatal(err)
		}
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	depth := 0
	for i, typ := range seq {
		switch typ {
		case CheckpointBegin:
			if depth != 0 {
				t.Fatalf("event %d: nested CheckpointBegin", i)
			}
			depth = 1
		case CheckpointEnd:
			if depth != 1 {
				t.Fatalf("event %d: CheckpointEnd without Begin", i)
			}
			depth = 0
		}
	}
}

type orderRecorder struct {
	vfs.NopObserver

	proc Processor
	seq  *[]Type
}

func (o *orderRecorder) OnWrite(path string, off int64, data []byte) {
	ev := o.proc.Classify(path, off, data)
	if ev.Type != Other && ev.Type != UpdateCommit {
		*o.seq = append(*o.seq, ev.Type)
	}
}

func TestPGFileKind(t *testing.T) {
	p := NewPGProcessor()
	tests := []struct {
		path string
		want Kind
	}{
		{"pg_xlog/000000010000000000000001", KindWAL},
		{"pg_clog/0000", KindData},
		{"base/16384/warehouse", KindData},
		{"global/pg_control", KindData},
		{"postmaster.pid", KindOther},
		{"server.log", KindOther},
	}
	for _, tt := range tests {
		if got := p.FileKind(tt.path); got != tt.want {
			t.Errorf("FileKind(%s) = %v, want %v", tt.path, got, tt.want)
		}
	}
	if extras := p.DumpExtras(); len(extras) != 0 {
		t.Fatalf("PostgreSQL DumpExtras = %v, want none", extras)
	}
}

func TestInnoFileKind(t *testing.T) {
	p := NewInnoProcessor()
	tests := []struct {
		path string
		want Kind
	}{
		{"ib_logfile0", KindWAL},
		{"ib_logfile1", KindWAL},
		{"stock.ibd", KindData},
		{"table.frm", KindData},
		{"ibdata1", KindData},
		{"mysql.err", KindOther},
	}
	for _, tt := range tests {
		if got := p.FileKind(tt.path); got != tt.want {
			t.Errorf("FileKind(%s) = %v, want %v", tt.path, got, tt.want)
		}
	}
	// InnoDB must carry its checkpoint header region in dumps.
	extras := p.DumpExtras()
	if len(extras) != 1 || extras[0].Path != "ib_logfile0" || extras[0].Offset != 0 || extras[0].Length != 2048 {
		t.Fatalf("DumpExtras = %+v, want ib_logfile0[0:2048]", extras)
	}
}

func TestTypeStrings(t *testing.T) {
	for typ, want := range map[Type]string{
		Other:           "other",
		UpdateCommit:    "update-commit",
		CheckpointBegin: "checkpoint-begin",
		CheckpointData:  "checkpoint-data",
		CheckpointEnd:   "checkpoint-end",
		Type(99):        "unknown",
	} {
		if got := typ.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", typ, got, want)
		}
	}
}
